(* Dcn_serve: event wire format, schedule deltas, session admission,
   incremental re-solve, per-epoch certification and jobs-invariance. *)

module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Graph = Dcn_topology.Graph
module Builders = Dcn_topology.Builders
module Paths = Dcn_topology.Paths
module Model = Dcn_power.Model
module Flow = Dcn_flow.Flow
module Schedule = Dcn_sched.Schedule
module Schedule_delta = Dcn_sched.Schedule_delta
module Event = Dcn_serve.Event
module Session = Dcn_serve.Session
module Repair = Dcn_resilience.Repair

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_lines name =
  String.split_on_char '\n' (read_file ("corpus/" ^ name))
  |> List.filter (fun l -> String.trim l <> "")

let flow ?(src = 0) ?(dst = 4) ~id ~volume ~release ~deadline () =
  Flow.make ~id ~src ~dst ~volume ~release ~deadline

let arrival ?src ?dst ~id ~volume ~release ~deadline () =
  Event.Flow_arrival (flow ?src ?dst ~id ~volume ~release ~deadline ())

let session ?(cap = 6.) ?(sigma = 1.) ?(policy = Repair.Drop_latest_deadline)
    ?(pool = Pool.sequential) ?(seed = 42) () =
  Session.create ~pool ~graph:(Builders.line 5)
    ~power:(Model.make ~sigma ~mu:1. ~alpha:2. ~cap ())
    ~policy ~seed ()

(* ------------------------------ events ----------------------------- *)

let test_event_round_trip () =
  let events =
    [
      arrival ~id:7 ~volume:6. ~release:0.5 ~deadline:4.25 ();
      Event.Flow_cancel { flow = 7 };
      Event.Advance_clock { clock = 2.5 };
    ]
  in
  List.iter
    (fun e ->
      match Event.of_json (Event.to_json e) with
      | Ok e' ->
        Alcotest.(check string)
          "round trip"
          (Json.to_string (Event.to_json e))
          (Json.to_string (Event.to_json e'))
      | Error m -> Alcotest.failf "round trip failed: %s" m)
    events

let test_event_of_json_total () =
  let bad =
    [
      Json.Str "arrival";
      Json.Obj [ ("event", Json.Str "teleport") ];
      Json.Obj [ ("event", Json.Int 3) ];
      Json.Obj [ ("event", Json.Str "cancel") ];
      Json.Obj [ ("event", Json.Str "advance"); ("to", Json.Str "soon") ];
      (* Flow.make rejects: empty window, equal endpoints, volume <= 0 *)
      Event.to_json (arrival ~id:1 ~volume:1. ~release:0. ~deadline:4. ())
      |> (function
           | Json.Obj fs ->
             Json.Obj
               (List.map
                  (fun (k, v) -> if k = "deadline" then (k, Json.Float 0.) else (k, v))
                  fs)
           | j -> j);
    ]
  in
  List.iter
    (fun j ->
      match Event.of_json j with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "accepted %s as %s" (Json.to_string j) (Event.kind e))
    bad

(* The malformed-stream corpus: every line after the first valid event
   is rejected in a typed way — Json.parse reports a byte offset for
   truncated JSON, Event.of_json a message for well-formed JSON of the
   wrong shape. *)
let test_truncated_corpus () =
  let lines = corpus_lines "serve-truncated.events" in
  Alcotest.(check int) "fixture lines" 7 (List.length lines);
  let classify line =
    match Json.parse line with
    | Error e ->
      Alcotest.(check bool) "offset within line" true
        (e.Json.offset >= 0 && e.Json.offset <= String.length line);
      `Parse_error
    | Ok json -> (
      match Event.of_json json with Ok _ -> `Event | Error _ -> `Bad_shape)
  in
  Alcotest.(check (list string))
    "line classes"
    [ "event"; "parse"; "shape"; "shape"; "shape"; "shape"; "event" ]
    (List.map
       (fun l ->
         match classify l with
         | `Event -> "event"
         | `Parse_error -> "parse"
         | `Bad_shape -> "shape")
       lines)

(* --------------------------- schedule deltas ----------------------- *)

let schedule_of plans ~horizon =
  Schedule.make ~graph:(Builders.line 5)
    ~power:(Model.make ~sigma:1. ~mu:1. ~alpha:2. ())
    ~horizon plans

let density_plan f =
  let path =
    Option.get (Paths.shortest_path (Builders.line 5) ~src:f.Flow.src ~dst:f.Flow.dst)
  in
  {
    Schedule.flow = f;
    path;
    slots =
      [
        {
          Schedule.start = f.Flow.release;
          stop = f.Flow.deadline;
          rate = f.Flow.volume /. (f.Flow.deadline -. f.Flow.release);
        };
      ];
  }

let test_delta_round_trip () =
  let f1 = flow ~id:1 ~volume:6. ~release:0. ~deadline:4. () in
  let f2 = flow ~id:2 ~src:1 ~dst:3 ~volume:4. ~release:1. ~deadline:3. () in
  let f2' = flow ~id:2 ~src:1 ~dst:3 ~volume:2. ~release:1. ~deadline:3. () in
  let f3 = flow ~id:3 ~src:0 ~dst:2 ~volume:2. ~release:2. ~deadline:6. () in
  let before =
    Some (schedule_of [ density_plan f1; density_plan f2 ] ~horizon:(0., 4.))
  in
  let after =
    Some (schedule_of [ density_plan f2'; density_plan f3 ] ~horizon:(1., 6.))
  in
  let delta = Schedule_delta.diff ~before ~after in
  Alcotest.(check int) "added" 1 (List.length delta.Schedule_delta.added);
  Alcotest.(check int) "removed" 1 (List.length delta.Schedule_delta.removed);
  Alcotest.(check int) "changed" 1 (List.length delta.Schedule_delta.changed);
  (* Applying the diff to the before-state reproduces the after-state. *)
  let graph = Builders.line 5 in
  let power = Model.make ~sigma:1. ~mu:1. ~alpha:2. () in
  (match Schedule_delta.apply ~graph ~power ~before delta with
  | Error m -> Alcotest.failf "apply failed: %s" m
  | Ok got ->
    let plans s =
      match s with
      | None -> []
      | Some (s : Schedule.t) ->
        List.map
          (fun (p : Schedule.plan) -> (p.Schedule.flow.Flow.id, p))
          s.Schedule.plans
        |> List.sort compare
    in
    Alcotest.(check int) "same plan count" (List.length (plans after))
      (List.length (plans got));
    List.iter2
      (fun (i, p) (j, q) ->
        Alcotest.(check int) "same flow" i j;
        Alcotest.(check bool) "same plan" true (Schedule_delta.equal_plan p q))
      (plans after) (plans got));
  (* Applying against the wrong before-state is a typed error, and the
     empty diff is identity. *)
  (match Schedule_delta.apply ~graph ~power ~before:after delta with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "applied a delta against the wrong base");
  let empty = Schedule_delta.diff ~before ~after:before in
  Alcotest.(check bool) "self diff empty" true (Schedule_delta.is_empty empty)

let test_delta_json_shape () =
  let f1 = flow ~id:1 ~volume:6. ~release:0. ~deadline:4. () in
  let before = None
  and after = Some (schedule_of [ density_plan f1 ] ~horizon:(0., 4.)) in
  let j = Schedule_delta.to_json (Schedule_delta.diff ~before ~after) in
  match (Json.member "added" j, Json.member "removed" j, Json.member "horizon" j) with
  | Some (Json.List [ _ ]), Some (Json.List []), Some (Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.failf "unexpected delta json: %s" (Json.to_string j)

(* ------------------------- admission edge cases -------------------- *)

let reason = function
  | Session.Rejected { reason } -> reason
  | o -> Alcotest.failf "expected rejection, got %s" (Session.outcome_kind o)

let test_admission_edges () =
  let s = session () in
  (* Arrivals in a fresh session. *)
  ignore (reason (Session.apply s (Event.Flow_cancel { flow = 9 })));
  (match Session.apply s (arrival ~id:1 ~volume:6. ~release:0. ~deadline:4. ()) with
  | Session.Committed d ->
    Alcotest.(check bool) "certified" true (d.Session.violations = []);
    Alcotest.(check int) "solved something" 1 d.Session.resolved_intervals
  | o -> Alcotest.failf "first arrival not committed: %s" (Session.outcome_kind o));
  (* Duplicate id. *)
  ignore (reason (Session.apply s (arrival ~id:1 ~volume:1. ~release:0. ~deadline:4. ())));
  (* Advance, then an arrival whose deadline already passed. *)
  (match Session.apply s (Event.Advance_clock { clock = 2. }) with
  | Session.Committed _ -> ()
  | o -> Alcotest.failf "advance failed: %s" (Session.outcome_kind o));
  Alcotest.(check (float 0.)) "clock" 2. (Session.clock s);
  ignore (reason (Session.apply s (arrival ~id:2 ~volume:1. ~release:0. ~deadline:1.5 ())));
  (* Clock never moves backwards. *)
  ignore (reason (Session.apply s (Event.Advance_clock { clock = 1. })));
  Alcotest.(check (float 0.)) "clock unchanged" 2. (Session.clock s);
  (* A release in the past is clamped to the clock on admission. *)
  (match Session.apply s (arrival ~id:3 ~src:1 ~dst:2 ~volume:1. ~release:0. ~deadline:5. ()) with
  | Session.Committed _ ->
    let f =
      List.find (fun (f : Flow.t) -> f.id = 3) (Session.active_flows s)
    in
    Alcotest.(check (float 1e-9)) "release clamped" 2. f.Flow.release
  | o -> Alcotest.failf "late-release arrival: %s" (Session.outcome_kind o));
  (* The committed state survives every rejection above. *)
  Alcotest.(check int) "two committed flows" 2
    (List.length (Session.active_flows s));
  Alcotest.(check bool) "all epochs certified" true (Session.ok s)

let test_admission_degrades_and_rejects () =
  (* line:3, cap 5: two committed flows, then a tight heavy arrival.
     drop-latest-deadline sheds the id-2 flow (deadline 10); reject-new
     refuses the arrival and keeps the committed pair. *)
  let graph = Builders.line 3 in
  let power = Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap:5. () in
  let run policy =
    let s =
      Session.create ~graph ~power ~policy ~seed:42 ()
    in
    let c1 =
      Session.apply s (arrival ~dst:2 ~id:1 ~volume:8. ~release:0. ~deadline:8. ())
    in
    let c2 =
      Session.apply s (arrival ~dst:2 ~id:2 ~volume:8. ~release:0. ~deadline:10. ())
    in
    Alcotest.(check string) "c1" "committed" (Session.outcome_kind c1);
    Alcotest.(check string) "c2" "committed" (Session.outcome_kind c2);
    (s, Session.apply s (arrival ~dst:2 ~id:3 ~volume:11.9 ~release:0. ~deadline:3. ()))
  in
  (match run Repair.Drop_latest_deadline with
  | s, Session.Degraded d ->
    Alcotest.(check (list int))
      "victim is the latest deadline"
      [ 2 ]
      (List.map (fun (f : Flow.t) -> f.Flow.id) d.Session.dropped);
    Alcotest.(check bool) "certified" true (d.Session.violations = []);
    Alcotest.(check (list int)) "flows now 1,3" [ 1; 3 ]
      (List.map (fun (f : Flow.t) -> f.Flow.id) (Session.active_flows s))
  | _, o -> Alcotest.failf "expected degraded, got %s" (Session.outcome_kind o));
  match run Repair.Reject_new with
  | s, Session.Rejected _ ->
    Alcotest.(check (list int)) "committed flows untouched" [ 1; 2 ]
      (List.map (fun (f : Flow.t) -> f.Flow.id) (Session.active_flows s))
  | _, o -> Alcotest.failf "expected rejected, got %s" (Session.outcome_kind o)

(* ------------------------ replay the corpus log -------------------- *)

let replay_corpus ?pool ?seed () =
  let s = session ?pool ?seed () in
  let outcomes =
    List.map
      (fun line ->
        match Event.of_json (Json.of_string line) with
        | Error m -> Alcotest.failf "corpus line rejected: %s" m
        | Ok e -> Session.apply s e)
      (corpus_lines "serve-100.events")
  in
  (s, outcomes)

let test_replay_every_epoch_certifies () =
  let s, outcomes = replay_corpus () in
  Alcotest.(check int) "100 events" 100 (List.length outcomes);
  List.iter
    (fun o ->
      match o with
      | Session.Committed d | Session.Degraded d ->
        Alcotest.(check (list string)) "epoch certificate clean" []
          (List.map Dcn_check.Certify.kind d.Session.violations)
      | Session.Rejected _ -> ())
    outcomes;
  Alcotest.(check bool) "session ok" true (Session.ok s);
  (* The incremental path did real work: across the log, strictly fewer
     intervals were re-solved than a from-scratch solve of every epoch
     would have needed (each epoch's timeline has resolved + reused
     intervals). *)
  let resolved, naive =
    List.fold_left
      (fun (r, n) o ->
        match o with
        | Session.Committed d | Session.Degraded d ->
          ( r + d.Session.resolved_intervals,
            n + d.Session.resolved_intervals + d.Session.reused_intervals )
        | Session.Rejected _ -> (r, n))
      (0, 0) outcomes
  in
  Alcotest.(check bool) "incremental strictly below total" true
    (resolved < naive)

let test_replay_jobs_invariant () =
  let report pool =
    let s, outcomes = replay_corpus ~pool () in
    ( Json.to_string (Session.report s),
      List.map (fun o -> Json.to_string (Session.outcome_to_json o)) outcomes )
  in
  let seq = report Pool.sequential in
  let par = Pool.with_pool ~jobs:4 (fun pool -> report pool) in
  Alcotest.(check string) "report byte-identical" (fst seq) (fst par);
  List.iter2
    (Alcotest.(check string) "outcome byte-identical")
    (snd seq) (snd par)

let test_replay_deterministic_and_seeded () =
  let a, _ = replay_corpus ~seed:42 () in
  let b, _ = replay_corpus ~seed:42 () in
  Alcotest.(check string) "same seed, same report"
    (Json.to_string (Session.report a))
    (Json.to_string (Session.report b));
  (* Path draws change with the seed, but the event accounting is a
     function of the admission decisions only; check a field that must
     not depend on rng state at all. *)
  let c, _ = replay_corpus ~seed:7 () in
  match (Session.report a, Session.report c) with
  | Json.Obj fa, Json.Obj fc ->
    Alcotest.(check bool) "both replays certify" true
      (List.assoc "ok" fa = Json.Bool true && List.assoc "ok" fc = Json.Bool true)
  | _ -> Alcotest.fail "report is not an object"

let test_drain_clears_state () =
  let s = session () in
  ignore (Session.apply s (arrival ~id:1 ~volume:2. ~release:0. ~deadline:2. ()));
  Alcotest.(check bool) "schedule present" true
    (Option.is_some (Session.schedule s));
  Alcotest.(check bool) "intervals present" true (Session.total_intervals s > 0);
  (match Session.apply s (Event.Flow_cancel { flow = 1 }) with
  | Session.Committed d ->
    Alcotest.(check int) "delta removes the plan" 1
      (List.length d.Session.delta.Schedule_delta.removed)
  | o -> Alcotest.failf "cancel failed: %s" (Session.outcome_kind o));
  Alcotest.(check bool) "drained schedule" true
    (Option.is_none (Session.schedule s));
  Alcotest.(check int) "drained timeline" 0 (Session.total_intervals s);
  (* A drained session accepts new work from scratch. *)
  Alcotest.(check string) "re-arms" "committed"
    (Session.outcome_kind
       (Session.apply s (arrival ~id:2 ~volume:2. ~release:0. ~deadline:2. ())))

let suite =
  [
    ( "serve.event",
      [
        Alcotest.test_case "round trip" `Quick test_event_round_trip;
        Alcotest.test_case "of_json is total" `Quick test_event_of_json_total;
        Alcotest.test_case "truncated corpus" `Quick test_truncated_corpus;
      ] );
    ( "serve.delta",
      [
        Alcotest.test_case "diff/apply round trip" `Quick test_delta_round_trip;
        Alcotest.test_case "json shape" `Quick test_delta_json_shape;
      ] );
    ( "serve.session",
      [
        Alcotest.test_case "admission edge cases" `Quick test_admission_edges;
        Alcotest.test_case "degrade and reject-new" `Quick
          test_admission_degrades_and_rejects;
        Alcotest.test_case "drain clears state" `Quick test_drain_clears_state;
      ] );
    ( "serve.replay",
      [
        Alcotest.test_case "every epoch certifies" `Quick
          test_replay_every_epoch_certifies;
        Alcotest.test_case "jobs-invariant" `Quick test_replay_jobs_invariant;
        Alcotest.test_case "deterministic" `Quick
          test_replay_deterministic_and_seeded;
      ] );
  ]
