(* Shape validator for the trace-analytics outputs, run from the root
   `check-profile` alias (itself a `runtest` dependency): a Chrome
   trace-event export produced by `dcn trace export --format chrome`
   from a `dcn solve --trace` run must parse strictly and carry the
   solver's instrumentation.

   Usage: check_profile.exe CHROME.json *)

module Json = Dcn_engine.Json
module Profile = Dcn_engine.Profile

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("check-profile: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path =
    match Sys.argv with
    | [| _; chrome |] -> chrome
    | _ ->
      prerr_endline "usage: check_profile.exe CHROME.json";
      exit 2
  in
  let json =
    try Json.of_string (read_file path)
    with Failure m -> fail "%s: not valid JSON: %s" path m
  in
  (match Profile.validate_chrome json with
  | Ok () -> ()
  | Error m -> fail "%s: invalid Chrome trace: %s" path m);
  let events = Json.to_list (Json.get "traceEvents" json) in
  let with_ph ph =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.Str ph))
      events
  in
  let b = with_ph "B" and e = with_ph "E" in
  if List.length b = 0 then fail "%s: no B span events" path;
  if List.length b <> List.length e then
    fail "%s: %d B events vs %d E events" path (List.length b) (List.length e);
  if with_ph "C" = [] then fail "%s: no C counter events" path;
  (* The spans a `solve` run opens must survive the export. *)
  let names =
    List.filter_map (fun ev -> Option.map Json.to_str (Json.member "name" ev)) b
  in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        fail "%s: no %S span — solver instrumentation lost in export" path required)
    [ "rs.solve"; "fw.solve"; "mcf.solve" ];
  Printf.printf "check-profile: %s OK (%d trace events)\n" path (List.length events)
