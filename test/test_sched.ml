(* Tests for Dcn_sched: rate profiles, schedule energy accounting
   (Eq. 5) and the feasibility checkers. *)

open Dcn_sched
module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Profile                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_empty () =
  Alcotest.(check bool) "idle" true (Profile.is_idle Profile.empty);
  check_float "busy" 0. (Profile.busy_time Profile.empty);
  check_float "rate" 0. (Profile.rate_at Profile.empty 1.)

let test_profile_single_slot () =
  let p = Profile.of_slots [ (1., 3., 2.) ] in
  check_float "rate inside" 2. (Profile.rate_at p 2.);
  check_float "rate outside" 0. (Profile.rate_at p 3.5);
  check_float "busy" 2. (Profile.busy_time p);
  check_float "volume" 4. (Profile.volume p);
  check_float "max" 2. (Profile.max_rate p)

let test_profile_overlap_additive () =
  let p = Profile.of_slots [ (0., 2., 1.); (1., 3., 2.) ] in
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) (float 1e-9))))
    "segments" [ (0., 1., 1.); (1., 2., 3.); (2., 3., 2.) ] (Profile.segments p);
  check_float "volume" 6. (Profile.volume p)

let test_profile_gap () =
  let p = Profile.of_slots [ (0., 1., 1.); (2., 3., 1.) ] in
  check_float "idle in gap" 0. (Profile.rate_at p 1.5);
  check_float "busy skips gap" 2. (Profile.busy_time p)

let test_profile_coalesce () =
  let p = Profile.of_slots [ (0., 1., 2.); (1., 2., 2.) ] in
  Alcotest.(check int) "coalesced" 1 (List.length (Profile.segments p))

let test_profile_zero_rate_ignored () =
  let p = Profile.of_slots [ (0., 5., 0.) ] in
  Alcotest.(check bool) "idle" true (Profile.is_idle p)

let test_profile_cancellation () =
  (* Two identical slots sum; the sweep must not leave phantom
     segments after both end. *)
  let p = Profile.of_slots [ (0., 1., 1.); (0., 1., 1.) ] in
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) (float 1e-9))))
    "one segment at rate 2" [ (0., 1., 2.) ] (Profile.segments p)

let test_profile_dynamic_energy () =
  let p = Profile.of_slots [ (0., 2., 3.) ] in
  check_float "mu x^2 * t" 18. (Profile.dynamic_energy Model.quadratic p)

let test_profile_invalid () =
  Alcotest.(check bool) "negative rate" true
    (try ignore (Profile.of_slots [ (0., 1., -1.) ]); false
     with Invalid_argument _ -> true)

let prop_profile_volume_conserved =
  QCheck.Test.make ~name:"profile: volume equals sum of slot volumes" ~count:300
    QCheck.(
      small_list
        (triple (float_bound_inclusive 5.) (float_bound_inclusive 5.)
           (float_bound_inclusive 4.)))
    (fun raw ->
      let slots = List.map (fun (a, len, r) -> (a, a +. len, r)) raw in
      let p = Profile.of_slots slots in
      let expect =
        List.fold_left (fun acc (a, b, r) -> acc +. ((b -. a) *. r)) 0. slots
      in
      Float.abs (Profile.volume p -. expect) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Schedule                                                           *)
(* ------------------------------------------------------------------ *)

let line3 = Builders.line 3

let flow ?(id = 0) ?(src = 0) ?(dst = 2) ?(volume = 4.) ?(release = 0.) ?(deadline = 4.) ()
    =
  Flow.make ~id ~src ~dst ~volume ~release ~deadline

let path_of g ~src ~dst =
  match Dcn_topology.Paths.shortest_path g ~src ~dst with
  | Some p -> p
  | None -> Alcotest.fail "no path"

let simple_schedule ?(power = Model.quadratic) ?(rate = 1.) () =
  let f = flow () in
  let plan =
    {
      Schedule.flow = f;
      path = path_of line3 ~src:0 ~dst:2;
      slots = [ { Schedule.start = 0.; stop = 4.; rate } ];
    }
  in
  Schedule.make ~graph:line3 ~power ~horizon:(0., 4.) [ plan ]

let test_schedule_energy_eq5 () =
  (* One flow at rate 1 for 4s over 2 links, f = x^2:
     dynamic = 2 links * 1^2 * 4 = 8; sigma = 0. *)
  let s = simple_schedule () in
  check_float "dynamic" 8. (Schedule.dynamic_energy s);
  check_float "idle" 0. (Schedule.idle_energy s);
  check_float "total" 8. (Schedule.energy s)

let test_schedule_idle_energy () =
  let power = Model.make ~sigma:2. ~mu:1. ~alpha:2. () in
  let s = simple_schedule ~power () in
  (* 2 active directed links * sigma 2 * horizon 4 = 16. *)
  check_float "idle" 16. (Schedule.idle_energy s);
  check_float "total" 24. (Schedule.energy s)

let test_schedule_active_links () =
  let s = simple_schedule () in
  Alcotest.(check int) "two active links" 2 (List.length (Schedule.active_links s));
  Alcotest.(check int) "profiles align" 2 (Array.length (Schedule.profiles s))

let test_schedule_delivered () =
  let s = simple_schedule () in
  check_float "delivered" 4.
    (Schedule.delivered (Option.get (Schedule.find_plan s 0)))

let test_schedule_invalid_path () =
  let f = flow () in
  let bad = path_of line3 ~src:0 ~dst:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
            [ { Schedule.flow = f; path = bad; slots = [] } ]);
       false
     with Invalid_argument _ -> true)

let test_schedule_duplicate_flows () =
  let f = flow () in
  let p = path_of line3 ~src:0 ~dst:2 in
  let plan = { Schedule.flow = f; path = p; slots = [] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
            [ plan; plan ]);
       false
     with Invalid_argument _ -> true)

let test_check_deadlines_ok () =
  let s = simple_schedule () in
  Alcotest.(check int) "no violations" 0 (List.length (Schedule.Check.deadlines s))

let test_check_wrong_volume () =
  let s = simple_schedule ~rate:0.5 () in
  (* delivers 2 of 4 *)
  match Schedule.Check.deadlines s with
  | [ Schedule.Check.Wrong_volume { flow = 0; delivered = d; expected = 4. } ] ->
    check_float "half delivered" 2. d
  | other -> Alcotest.failf "unexpected: %d violations" (List.length other)

let test_check_slot_outside_span () =
  let f = flow ~release:1. () in
  let plan =
    {
      Schedule.flow = f;
      path = path_of line3 ~src:0 ~dst:2;
      slots = [ { Schedule.start = 0.; stop = 4.; rate = 1. } ];
    }
  in
  let s = Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.) [ plan ] in
  Alcotest.(check bool) "slot-outside-span reported" true
    (List.exists
       (function Schedule.Check.Slot_outside_span _ -> true | _ -> false)
       (Schedule.Check.deadlines s))

let test_check_capacity () =
  let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:0.5 () in
  let s = simple_schedule ~power () in
  Alcotest.(check int) "both links over capacity" 2
    (List.length (Schedule.Check.capacity s));
  Alcotest.(check bool) "not feasible" false
    (Schedule.Check.is_feasible ~exclusive:false s)

let test_check_exclusive () =
  let f1 = flow ~id:0 ~dst:1 ~volume:2. () in
  let f2 = flow ~id:1 ~dst:1 ~volume:2. () in
  let p = path_of line3 ~src:0 ~dst:1 in
  let mk slots1 slots2 =
    Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
      [
        { Schedule.flow = f1; path = p; slots = slots1 };
        { Schedule.flow = f2; path = p; slots = slots2 };
      ]
  in
  let overlapping =
    mk
      [ { Schedule.start = 0.; stop = 2.; rate = 1. } ]
      [ { Schedule.start = 1.; stop = 3.; rate = 1. } ]
  in
  Alcotest.(check bool) "conflict detected" true
    (Schedule.Check.exclusive overlapping <> []);
  let serial =
    mk
      [ { Schedule.start = 0.; stop = 2.; rate = 1. } ]
      [ { Schedule.start = 2.; stop = 4.; rate = 1. } ]
  in
  Alcotest.(check int) "serial is exclusive" 0
    (List.length (Schedule.Check.exclusive serial));
  (* Non-adjacent overlap: a long slot must conflict with a later short
     one even when another same-flow slot sits between them. *)
  let long_vs_short =
    mk
      [ { Schedule.start = 0.; stop = 4.; rate = 1. } ]
      [ { Schedule.start = 2.5; stop = 3.; rate = 1. } ]
  in
  Alcotest.(check bool) "long-slot conflict found" true
    (Schedule.Check.exclusive long_vs_short <> [])

let test_interval_density_style () =
  (* Random-Schedule style: two flows share a link at their densities;
     exclusive check must flag it, other checks pass. *)
  let f1 = flow ~id:0 ~dst:1 ~volume:4. () in
  let f2 = flow ~id:1 ~dst:1 ~volume:8. () in
  let p = path_of line3 ~src:0 ~dst:1 in
  let plan f =
    {
      Schedule.flow = f;
      path = p;
      slots =
        [
          {
            Schedule.start = f.Flow.release;
            stop = f.Flow.deadline;
            rate = Flow.density f;
          };
        ];
    }
  in
  let s =
    Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
      [ plan f1; plan f2 ]
  in
  Alcotest.(check int) "deadline violations" 0 (List.length (Schedule.Check.deadlines s));
  (* link rate = 1 + 2 = 3 for 4s on one link: energy = 9 * 4 = 36 *)
  check_float "energy" 36. (Schedule.energy s);
  Alcotest.(check bool) "not exclusive (by design)" true
    (Schedule.Check.exclusive s <> [])

(* ------------------------------------------------------------------ *)
(* Quantize                                                           *)
(* ------------------------------------------------------------------ *)

let test_quantize_exact_levels () =
  (* Fluid rate 1 with a level at exactly 1: no overhead at all. *)
  let s = simple_schedule () in
  let ladder = Dcn_power.Discrete.make Model.quadratic ~levels:[ 1.; 2. ] in
  let q = Quantize.report ladder s in
  Alcotest.(check bool) "feasible" true q.Quantize.feasible;
  check_float "hold = fluid" q.Quantize.fluid_energy q.Quantize.hold_energy;
  check_float "work = fluid" q.Quantize.fluid_energy q.Quantize.work_energy

let test_quantize_rounding_up () =
  (* Fluid rate 1, only level 2 available: hold runs 2^2 for the whole
     4s over 2 links = 32 (vs fluid 8); work ships 4 volume per link at
     speed 2 -> 2s at power 4 -> 16. *)
  let s = simple_schedule () in
  let ladder = Dcn_power.Discrete.make Model.quadratic ~levels:[ 2. ] in
  let q = Quantize.report ladder s in
  Alcotest.(check bool) "feasible" true q.Quantize.feasible;
  check_float "hold" 32. q.Quantize.hold_energy;
  check_float "work" 16. q.Quantize.work_energy;
  check_float "hold overhead 4x" 4. q.Quantize.hold_overhead;
  check_float "work overhead 2x" 2. q.Quantize.work_overhead

let test_quantize_infeasible_top () =
  let s = simple_schedule () in
  let ladder = Dcn_power.Discrete.make Model.quadratic ~levels:[ 0.5 ] in
  let q = Quantize.report ladder s in
  Alcotest.(check bool) "not feasible" false q.Quantize.feasible

let test_quantize_finer_is_cheaper () =
  let s = simple_schedule ~rate:0.9 () in
  let overhead count =
    let ladder = Dcn_power.Discrete.geometric Model.quadratic ~count ~top:2. in
    (Quantize.report ladder s).Quantize.hold_overhead
  in
  Alcotest.(check bool) "more levels, less overhead" true (overhead 8 <= overhead 2 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Gantt                                                              *)
(* ------------------------------------------------------------------ *)

let test_gantt_renders () =
  let s = simple_schedule () in
  let chart = Gantt.render ~width:32 s in
  let lines = String.split_on_char '\n' chart in
  (* header + 2 link rows + trailing newline *)
  Alcotest.(check int) "rows" 4 (List.length lines);
  Alcotest.(check bool) "busy cells shown" true
    (String.exists (fun c -> c = '0') chart);
  let flows_chart = Gantt.render_flows ~width:32 s in
  Alcotest.(check bool) "transmitting marks" true
    (String.exists (fun c -> c = '=') flows_chart)

let test_gantt_conflict_marker () =
  (* Two flows overlapping on a link show '#'. *)
  let f1 = flow ~id:1 ~dst:1 ~volume:4. () in
  let f2 = flow ~id:2 ~dst:1 ~volume:4. () in
  let p = path_of line3 ~src:0 ~dst:1 in
  let s =
    Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
      [
        { Schedule.flow = f1; path = p; slots = [ { Schedule.start = 0.; stop = 4.; rate = 1. } ] };
        { Schedule.flow = f2; path = p; slots = [ { Schedule.start = 0.; stop = 4.; rate = 1. } ] };
      ]
  in
  Alcotest.(check bool) "overlap marked" true
    (String.exists (fun c -> c = '#') (Gantt.render ~width:16 s))

let test_gantt_truncation () =
  let f = flow () in
  let s =
    Schedule.make ~graph:line3 ~power:Model.quadratic ~horizon:(0., 4.)
      [
        {
          Schedule.flow = f;
          path = path_of line3 ~src:0 ~dst:2;
          slots = [ { Schedule.start = 0.; stop = 4.; rate = 1. } ];
        };
      ]
  in
  let chart = Gantt.render ~max_links:1 s in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "ellipsis" true (contains chart "more links")

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "sched/quantize",
      [
        Alcotest.test_case "exact levels" `Quick test_quantize_exact_levels;
        Alcotest.test_case "rounding up" `Quick test_quantize_rounding_up;
        Alcotest.test_case "infeasible top" `Quick test_quantize_infeasible_top;
        Alcotest.test_case "finer is cheaper" `Quick test_quantize_finer_is_cheaper;
      ] );
    ( "sched/gantt",
      [
        Alcotest.test_case "renders" `Quick test_gantt_renders;
        Alcotest.test_case "conflict marker" `Quick test_gantt_conflict_marker;
        Alcotest.test_case "truncation" `Quick test_gantt_truncation;
      ] );
    ( "sched/profile",
      [
        Alcotest.test_case "empty" `Quick test_profile_empty;
        Alcotest.test_case "single slot" `Quick test_profile_single_slot;
        Alcotest.test_case "overlap additive" `Quick test_profile_overlap_additive;
        Alcotest.test_case "gap" `Quick test_profile_gap;
        Alcotest.test_case "coalesce" `Quick test_profile_coalesce;
        Alcotest.test_case "zero rate ignored" `Quick test_profile_zero_rate_ignored;
        Alcotest.test_case "cancellation" `Quick test_profile_cancellation;
        Alcotest.test_case "dynamic energy" `Quick test_profile_dynamic_energy;
        Alcotest.test_case "invalid" `Quick test_profile_invalid;
        qt prop_profile_volume_conserved;
      ] );
    ( "sched/schedule",
      [
        Alcotest.test_case "energy Eq.5" `Quick test_schedule_energy_eq5;
        Alcotest.test_case "idle energy" `Quick test_schedule_idle_energy;
        Alcotest.test_case "active links" `Quick test_schedule_active_links;
        Alcotest.test_case "delivered" `Quick test_schedule_delivered;
        Alcotest.test_case "invalid path" `Quick test_schedule_invalid_path;
        Alcotest.test_case "duplicate flows" `Quick test_schedule_duplicate_flows;
        Alcotest.test_case "deadlines ok" `Quick test_check_deadlines_ok;
        Alcotest.test_case "wrong volume" `Quick test_check_wrong_volume;
        Alcotest.test_case "slot outside span" `Quick test_check_slot_outside_span;
        Alcotest.test_case "capacity" `Quick test_check_capacity;
        Alcotest.test_case "exclusive" `Quick test_check_exclusive;
        Alcotest.test_case "interval-density style" `Quick test_interval_density_style;
      ] );
  ]
