(* Fourth batch: identifier-space assumptions, boundary semantics and
   parameter variations. *)

module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Profile = Dcn_sched.Profile
module Prng = Dcn_util.Prng
module Iset = Dcn_util.Interval_set
open Dcn_core

let check_float = Alcotest.(check (float 1e-6))

(* Nothing in the API promises dense flow ids; the algorithms must not
   assume them. *)
let sparse_example1 () =
  let graph = Builders.line 3 in
  let f1 = Flow.make ~id:1000 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Flow.make ~id:7 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ]

let test_sparse_ids_mcf () =
  let res = Baselines.sp_mcf (sparse_example1 ()) in
  let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
  let rate id =
    match Most_critical_first.find_rate res id with
    | Some r -> r
    | None -> Alcotest.failf "no rate recorded for flow %d" id
  in
  check_float "s2 under sparse ids" s2 (rate 7);
  check_float "s1 under sparse ids" (s2 /. sqrt 2.) (rate 1000);
  check_float "energy" (((8. +. (6. *. sqrt 2.)) ** 2.) /. 3.)
    res.Solution.energy

let test_sparse_ids_rs_and_friends () =
  let inst = sparse_example1 () in
  let rng = Prng.create 42 in
  let rs = Random_schedule.solve ~instance:inst ~workspace:(Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  check_float "RS energy" 92. rs.Solution.energy;
  let ear = Greedy_ear.solve ~instance:inst ~workspace:(Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never () in
  check_float "EAR energy" 92. ear.Solution.energy;
  let online = Online.solve ~instance:inst ~workspace:(Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never () in
  Alcotest.(check (list int)) "online accepts both" [ 7; 1000 ] (Solution.accepted online);
  let back = Serialize.instance_of_string (Serialize.instance_to_string inst) in
  Alcotest.(check int) "serialize keeps ids" 1000 (Option.get (Instance.find_flow_opt back 1000)).Flow.id

(* Profile boundary semantics: right-continuous at starts, open at stops. *)
let test_profile_boundary_semantics () =
  let p = Profile.of_slots [ (1., 2., 3.) ] in
  check_float "at start" 3. (Profile.rate_at p 1.);
  check_float "at stop" 0. (Profile.rate_at p 2.);
  check_float "before" 0. (Profile.rate_at p 0.999)

(* Interval set no-op and degenerate queries. *)
let test_iset_degenerate () =
  let s = Iset.add Iset.empty ~lo:1. ~hi:3. in
  let s' = Iset.add s ~lo:1.5 ~hi:2.5 in
  Alcotest.(check (list (pair (float 1e-12) (float 1e-12))))
    "subsumed add is a no-op" [ (1., 3.) ] (Iset.intervals s');
  check_float "empty window" 0. (Iset.covered_within s ~lo:5. ~hi:5.);
  check_float "reversed window" 0. (Iset.available_within s ~lo:5. ~hi:4.)

(* YDS scales with mu in the energy functional only. *)
let test_yds_mu_scaling () =
  let open Dcn_speed_scaling in
  let jobs = [ Job.make ~id:0 ~weight:4. ~release:0. ~deadline:2. ] in
  let res = Yds.schedule jobs in
  check_float "mu=1" 8. (Yds.energy ~mu:1. ~alpha:2. jobs res);
  check_float "mu=3 scales linearly" 24. (Yds.energy ~mu:3. ~alpha:2. jobs res)

(* Fluid: early completion is reported before the deadline. *)
let test_fluid_early_completion () =
  let graph = Builders.line 2 in
  let f = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:10. in
  let plan =
    {
      Schedule.flow = f;
      path = Option.get (Dcn_topology.Paths.shortest_path graph ~src:0 ~dst:1);
      slots = [ { Schedule.start = 0.; stop = 1.; rate = 2. } ];
    }
  in
  let s = Schedule.make ~graph ~power:Model.quadratic ~horizon:(0., 10.) [ plan ] in
  let r = Dcn_sim.Fluid.run s in
  match r.Dcn_sim.Fluid.flow_stats with
  | [ fs ] -> (
    match fs.Dcn_sim.Fluid.completion with
    | Some t -> check_float "completes at 1" 1. t
    | None -> Alcotest.fail "no completion")
  | _ -> Alcotest.fail "one flow"

(* Serialize: corrupting the header always fails cleanly. *)
let prop_serialize_header_required =
  QCheck.Test.make ~name:"serialize: corrupt header rejected" ~count:20
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.star ~leaves:3 in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:3 () in
      let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
      let text = Serialize.instance_to_string inst in
      let corrupted = "x" ^ text in
      match Serialize.instance_of_string corrupted with
      | exception Failure _ -> true
      | _ -> false)

(* Quantize with the exact fluid rates as ladder levels: zero overhead
   regardless of instance. *)
let prop_quantize_exact_ladder_no_overhead =
  QCheck.Test.make ~name:"quantize: exact ladder has no overhead" ~count:10
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.fat_tree 4 in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:6 () in
      let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
      let rs = Random_schedule.solve ~instance:inst ~workspace:(Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
      let sched = rs.Solution.schedule in
      (* Collect every distinct positive segment rate as a level. *)
      let rates = ref [] in
      Array.iter
        (fun (_, p) ->
          List.iter (fun (_, _, r) -> if r > 0. then rates := r :: !rates)
            (Profile.segments p))
        (Schedule.profiles sched);
      match List.sort_uniq compare !rates with
      | [] -> true
      | levels ->
        let ladder = Dcn_power.Discrete.make Model.quadratic ~levels in
        let q = Dcn_sched.Quantize.report ladder sched in
        Float.abs (q.Dcn_sched.Quantize.hold_overhead -. 1.) < 1e-6
        && Float.abs (q.Dcn_sched.Quantize.work_overhead -. 1.) < 1e-6)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "more/identifiers-and-boundaries",
      [
        Alcotest.test_case "sparse ids: MCF" `Quick test_sparse_ids_mcf;
        Alcotest.test_case "sparse ids: RS/EAR/online/serialize" `Quick
          test_sparse_ids_rs_and_friends;
        Alcotest.test_case "profile boundaries" `Quick test_profile_boundary_semantics;
        Alcotest.test_case "interval set degenerate" `Quick test_iset_degenerate;
        Alcotest.test_case "yds mu scaling" `Quick test_yds_mu_scaling;
        Alcotest.test_case "fluid early completion" `Quick test_fluid_early_completion;
        qt prop_serialize_header_required;
        qt prop_quantize_exact_ladder_no_overhead;
      ] );
  ]
