(* Additional cross-cutting tests: corner cases and behaviours not
   covered by the per-module suites — export formats, determinism,
   boundary conditions. *)

module Graph = Dcn_topology.Graph
module Builders = Dcn_topology.Builders
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Prng = Dcn_util.Prng

let check_float = Alcotest.(check (float 1e-9))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

(* --- paths odds and ends ------------------------------------------- *)

let test_path_cost () =
  let g = Builders.line 4 in
  match Paths.shortest_path g ~src:0 ~dst:3 with
  | Some p ->
    check_float "hop cost" 3. (Paths.path_cost Paths.hop_weight p);
    check_float "custom weight" 6. (Paths.path_cost (fun _ -> 2.) p)
  | None -> Alcotest.fail "no path"

let test_k_shortest_costs_non_decreasing () =
  let g = Builders.fat_tree 4 in
  let paths = Paths.k_shortest g ~k:8 ~src:0 ~dst:2 in
  let costs = List.map (fun p -> Paths.path_cost Paths.hop_weight p) paths in
  let rec non_decreasing = function
    | a :: b :: rest -> a <= b && non_decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cost" true (non_decreasing costs);
  Alcotest.(check int) "no duplicates" (List.length paths)
    (List.length (List.sort_uniq compare paths))

let test_k_shortest_invalid () =
  let g = Builders.line 3 in
  Alcotest.(check bool) "k < 1 raises" true
    (try ignore (Paths.k_shortest g ~k:0 ~src:0 ~dst:2); false
     with Invalid_argument _ -> true)

(* --- prng split independence --------------------------------------- *)

let test_prng_split_streams_differ_from_parent () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let a = Array.init 32 (fun _ -> Prng.bits64 parent) in
  let b = Array.init 32 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "distinct streams" true (a <> b)

(* --- timeline corner cases ----------------------------------------- *)

let test_timeline_single_flow () =
  let f = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:1. ~release:3. ~deadline:7. in
  let tl = Dcn_flow.Timeline.make [ f ] in
  Alcotest.(check int) "one interval" 1 (Dcn_flow.Timeline.num_intervals tl);
  check_float "lambda 1" 1. (Dcn_flow.Timeline.lambda tl);
  check_float "beta 1" 1. (Dcn_flow.Timeline.beta tl 0)

let test_timeline_shared_breakpoints () =
  (* Two flows sharing a release instant produce 3 breakpoints, not 4. *)
  let f1 = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:1. ~release:0. ~deadline:2. in
  let f2 = Flow.make ~id:1 ~src:0 ~dst:1 ~volume:1. ~release:0. ~deadline:5. in
  let tl = Dcn_flow.Timeline.make [ f1; f2 ] in
  Alcotest.(check int) "two intervals" 2 (Dcn_flow.Timeline.num_intervals tl)

(* --- schedule lookups ---------------------------------------------- *)

let test_schedule_find_plan_missing () =
  let g = Builders.line 3 in
  let f = Flow.make ~id:3 ~src:0 ~dst:2 ~volume:1. ~release:0. ~deadline:1. in
  let p =
    {
      Schedule.flow = f;
      path = Option.get (Paths.shortest_path g ~src:0 ~dst:2);
      slots = [];
    }
  in
  let s = Schedule.make ~graph:g ~power:Model.quadratic ~horizon:(0., 1.) [ p ] in
  Alcotest.(check bool) "missing id is None" true
    (Schedule.find_plan s 99 = None);
  Alcotest.(check bool) "present id is found" true
    (match Schedule.find_plan s 3 with Some q -> q.Schedule.flow.Flow.id = 3 | None -> false)

(* --- serialization details ------------------------------------------ *)

let test_serialize_preserves_float_precision () =
  let g = Builders.line 3 in
  let volume = 10.000000000000123 in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume ~release:0.1 ~deadline:0.30000000000000004 in
  let inst = Dcn_core.Instance.make ~graph:g ~power:Model.quadratic ~flows:[ f ] in
  let back =
    Dcn_core.Serialize.instance_of_string (Dcn_core.Serialize.instance_to_string inst)
  in
  let f' = Option.get (Dcn_core.Instance.find_flow_opt back 0) in
  Alcotest.(check bool) "volume exact" true (f'.Flow.volume = volume);
  Alcotest.(check bool) "deadline exact" true (f'.Flow.deadline = f.Flow.deadline)

let test_fig2_csv () =
  let params =
    {
      (Dcn_experiments.Fig2.quick_params ~alpha:2.) with
      Dcn_experiments.Fig2.flow_counts = [ 8 ];
      seeds = [ 1001 ];
    }
  in
  let res = Dcn_experiments.Fig2.run params in
  let csv = Dcn_experiments.Fig2.to_csv res in
  Alcotest.(check bool) "header" true (contains csv "alpha,sigma,k,seeds,n,lb,rs");
  Alcotest.(check int) "two lines" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

(* --- determinism sweep ---------------------------------------------- *)

let test_frank_wolfe_deterministic () =
  let g = Builders.fat_tree 4 in
  let commodities =
    Array.init 5 (fun index ->
        Dcn_mcf.Commodity.make ~index ~src:index ~dst:(15 - index) ~demand:(1. +. float_of_int index))
  in
  let problem =
    {
      Dcn_mcf.Frank_wolfe.graph = g;
      commodities;
      cost = (fun x -> x *. x);
      cost_deriv = (fun x -> 2. *. x);
      capacity = infinity;
    }
  in
  let s1 = Dcn_mcf.Frank_wolfe.solve problem in
  let s2 = Dcn_mcf.Frank_wolfe.solve problem in
  check_float "same cost" s1.Dcn_mcf.Frank_wolfe.cost s2.Dcn_mcf.Frank_wolfe.cost;
  Alcotest.(check bool) "same loads" true
    (s1.Dcn_mcf.Frank_wolfe.loads = s2.Dcn_mcf.Frank_wolfe.loads)

let test_greedy_ear_deterministic () =
  let graph = Builders.fat_tree 4 in
  let rng = Prng.create 37 in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:12 () in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows in
  let e1 = (Dcn_core.Greedy_ear.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never ()).Dcn_core.Solution.energy in
  let e2 = (Dcn_core.Greedy_ear.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never ()).Dcn_core.Solution.energy in
  check_float "deterministic" e1 e2

let test_online_deterministic () =
  let graph = Builders.fat_tree 4 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:3. () in
  let rng = Prng.create 41 in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:15 () in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  let r1 = Dcn_core.Online.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never () and r2 = Dcn_core.Online.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never () in
  Alcotest.(check (list int)) "same accepted" (Dcn_core.Solution.accepted r1)
    (Dcn_core.Solution.accepted r2)

(* --- fluid simulator with fragmented slots --------------------------- *)

let test_fluid_multiple_slots () =
  let g = Builders.line 3 in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:3. ~release:0. ~deadline:6. in
  let plan =
    {
      Schedule.flow = f;
      path = Option.get (Paths.shortest_path g ~src:0 ~dst:2);
      slots =
        [
          { Schedule.start = 0.; stop = 1.; rate = 1. };
          { Schedule.start = 2.; stop = 3.; rate = 1. };
          { Schedule.start = 4.; stop = 5.; rate = 1. };
        ];
    }
  in
  let s = Schedule.make ~graph:g ~power:Model.quadratic ~horizon:(0., 6.) [ plan ] in
  let r = Dcn_sim.Fluid.run s in
  Alcotest.(check bool) "deadline met" true r.Dcn_sim.Fluid.all_deadlines_met;
  match r.Dcn_sim.Fluid.flow_stats with
  | [ fs ] -> (
    check_float "delivered 3" 3. fs.Dcn_sim.Fluid.delivered;
    match fs.Dcn_sim.Fluid.completion with
    | Some t -> check_float "completes at 5" 5. t
    | None -> Alcotest.fail "no completion")
  | _ -> Alcotest.fail "one flow expected"

(* --- gantt flows view ------------------------------------------------ *)

let test_gantt_flows_span_markers () =
  let g = Builders.line 3 in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:1. ~release:2. ~deadline:4. in
  let plan =
    {
      Schedule.flow = f;
      path = Option.get (Paths.shortest_path g ~src:0 ~dst:2);
      slots = [ { Schedule.start = 2.; stop = 3.; rate = 1. } ];
    }
  in
  let s = Schedule.make ~graph:g ~power:Model.quadratic ~horizon:(0., 8.) [ plan ] in
  let chart = Dcn_sched.Gantt.render_flows ~width:32 s in
  Alcotest.(check bool) "has waiting marker" true (contains chart "-");
  Alcotest.(check bool) "has transmit marker" true (contains chart "=")

(* --- packet sim under coarse packets --------------------------------- *)

let test_packet_single_huge_packet () =
  (* Packet bigger than the whole flow: exactly one packet. *)
  let g = Builders.line 2 in
  let f = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:3. ~release:0. ~deadline:3. in
  let plan =
    {
      Schedule.flow = f;
      path = Option.get (Paths.shortest_path g ~src:0 ~dst:1);
      slots = [ { Schedule.start = 0.; stop = 3.; rate = 1. } ];
    }
  in
  let s = Schedule.make ~graph:g ~power:Model.quadratic ~horizon:(0., 3.) [ plan ] in
  let r = Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size = 10. } s in
  match r.Dcn_sim.Packet.flow_reports with
  | [ fr ] ->
    Alcotest.(check int) "one packet" 1 fr.Dcn_sim.Packet.packets;
    Alcotest.(check int) "delivered" 1 fr.Dcn_sim.Packet.delivered
  | _ -> Alcotest.fail "one flow expected"

(* --- instance pretty printer ----------------------------------------- *)

let test_instance_pp () =
  let g = Builders.line 3 in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:1. ~release:0. ~deadline:1. in
  let inst = Dcn_core.Instance.make ~graph:g ~power:Model.quadratic ~flows:[ f ] in
  let s = Format.asprintf "%a" Dcn_core.Instance.pp inst in
  Alcotest.(check bool) "mentions flows" true (contains s "1 flows");
  Alcotest.(check bool) "mentions horizon" true (contains s "[0,1]")

let suite =
  [
    ( "more/misc",
      [
        Alcotest.test_case "path cost" `Quick test_path_cost;
        Alcotest.test_case "k-shortest sorted" `Quick test_k_shortest_costs_non_decreasing;
        Alcotest.test_case "k-shortest invalid" `Quick test_k_shortest_invalid;
        Alcotest.test_case "prng split streams" `Quick test_prng_split_streams_differ_from_parent;
        Alcotest.test_case "timeline single flow" `Quick test_timeline_single_flow;
        Alcotest.test_case "timeline shared breakpoints" `Quick
          test_timeline_shared_breakpoints;
        Alcotest.test_case "find_plan missing" `Quick test_schedule_find_plan_missing;
        Alcotest.test_case "serialize precision" `Quick
          test_serialize_preserves_float_precision;
        Alcotest.test_case "fig2 csv" `Slow test_fig2_csv;
        Alcotest.test_case "frank-wolfe deterministic" `Quick test_frank_wolfe_deterministic;
        Alcotest.test_case "greedy-ear deterministic" `Quick test_greedy_ear_deterministic;
        Alcotest.test_case "online deterministic" `Quick test_online_deterministic;
        Alcotest.test_case "fluid fragmented slots" `Quick test_fluid_multiple_slots;
        Alcotest.test_case "gantt flow markers" `Quick test_gantt_flows_span_markers;
        Alcotest.test_case "packet huge packet" `Quick test_packet_single_huge_packet;
        Alcotest.test_case "instance pp" `Quick test_instance_pp;
      ] );
  ]
