(* Tests for Dcn_sim.Fluid: the simulator must agree with the analytic
   energy accounting, verify Theorem 4 for Random-Schedule output, and
   catch broken schedules. *)

module Fluid = Dcn_sim.Fluid
module Schedule = Dcn_sched.Schedule
module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Prng = Dcn_util.Prng

let check_float = Alcotest.(check (float 1e-6))

let line3 = Builders.line 3

let path g ~src ~dst =
  match Dcn_topology.Paths.shortest_path g ~src ~dst with
  | Some p -> p
  | None -> Alcotest.fail "no path"

let mk_schedule ?(power = Model.quadratic) plans =
  Schedule.make ~graph:line3 ~power ~horizon:(0., 4.) plans

let full_plan ?(rate = 1.) f =
  {
    Schedule.flow = f;
    path = path line3 ~src:f.Flow.src ~dst:f.Flow.dst;
    slots = [ { Schedule.start = f.Flow.release; stop = f.Flow.deadline; rate } ];
  }

let test_sim_matches_analytic () =
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:4. ~release:0. ~deadline:4. in
  let s = mk_schedule [ full_plan f ] in
  let r = Fluid.run s in
  check_float "energy matches Schedule.energy" (Schedule.energy s) r.Fluid.energy;
  Alcotest.(check bool) "deadlines met" true r.Fluid.all_deadlines_met;
  Alcotest.(check int) "two active links" 2 (List.length r.Fluid.link_stats);
  check_float "max rate" 1. r.Fluid.max_rate

let test_sim_flow_stats () =
  let f = Flow.make ~id:7 ~src:0 ~dst:2 ~volume:4. ~release:0. ~deadline:4. in
  let s = mk_schedule [ full_plan f ] in
  let r = Fluid.run s in
  match r.Fluid.flow_stats with
  | [ fs ] ->
    Alcotest.(check int) "id" 7 fs.Fluid.flow_id;
    check_float "delivered" 4. fs.Fluid.delivered;
    (match fs.Fluid.completion with
    | Some t -> check_float "completes at deadline" 4. t
    | None -> Alcotest.fail "no completion");
    Alcotest.(check bool) "met" true fs.Fluid.met_deadline
  | _ -> Alcotest.fail "expected one flow stat"

let test_sim_detects_missed_deadline () =
  (* Rate too small: only half the volume arrives. *)
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:8. ~release:0. ~deadline:4. in
  let s = mk_schedule [ full_plan ~rate:1. f ] in
  let r = Fluid.run s in
  Alcotest.(check bool) "missed" false r.Fluid.all_deadlines_met;
  match r.Fluid.flow_stats with
  | [ fs ] ->
    check_float "delivered half" 4. fs.Fluid.delivered;
    Alcotest.(check bool) "no completion" true (fs.Fluid.completion = None)
  | _ -> Alcotest.fail "expected one flow stat"

let test_sim_capacity_flag () =
  let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:0.5 () in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:4. ~release:0. ~deadline:4. in
  let s = mk_schedule ~power [ full_plan f ] in
  let r = Fluid.run s in
  Alcotest.(check bool) "over capacity" false r.Fluid.capacity_respected

let test_sim_aggregates_link_rates () =
  (* Two flows overlap on the first link: peak = sum of rates. *)
  let f1 = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:4. in
  let f2 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:8. ~release:0. ~deadline:4. in
  let s = mk_schedule [ full_plan ~rate:1. f1; full_plan ~rate:2. f2 ] in
  let r = Fluid.run s in
  check_float "peak on shared link" 3. r.Fluid.max_rate;
  (* energy: link0 3^2*4 = 36, link1 2^2*4 = 16. *)
  check_float "energy" 52. r.Fluid.energy

let test_sim_idle_energy () =
  let power = Model.make ~sigma:1. ~mu:1. ~alpha:2. () in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:1. ~release:1. ~deadline:2. in
  let plan =
    {
      Schedule.flow = f;
      path = path line3 ~src:0 ~dst:2;
      slots = [ { Schedule.start = 1.; stop = 2.; rate = 1. } ];
    }
  in
  let s = Schedule.make ~graph:line3 ~power ~horizon:(0., 4.) [ plan ] in
  let r = Fluid.run s in
  (* sigma charged over the whole horizon for both active links. *)
  check_float "idle" 8. r.Fluid.idle_energy;
  check_float "dynamic" 2. r.Fluid.dynamic_energy

(* Agreement property: simulator and analytic accounting coincide on
   Most-Critical-First and Random-Schedule outputs. *)
let prop_sim_agrees_with_mcf =
  QCheck.Test.make ~name:"fluid sim: agrees with Most-Critical-First energy" ~count:20
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.fat_tree 4 in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:6 () in
      let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows in
      let res = Dcn_core.Baselines.sp_mcf inst in
      let r = Fluid.run res.Dcn_core.Solution.schedule in
      (not (Dcn_core.Solution.placement_complete res))
      || Dcn_util.Approx.close_rel ~rtol:1e-6 r.Fluid.energy
           res.Dcn_core.Solution.energy
         && r.Fluid.all_deadlines_met)

let prop_sim_rs_theorem4 =
  QCheck.Test.make ~name:"fluid sim: Random-Schedule meets deadlines (Theorem 4)"
    ~count:10
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.fat_tree 4 in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:8 () in
      let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:
            {
              Dcn_core.Random_schedule.attempts = 10;
              fw_config =
                { Dcn_mcf.Frank_wolfe.default_config with max_iters = 40 };
            }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let r = Fluid.run rs.Dcn_core.Solution.schedule in
      r.Fluid.all_deadlines_met
      && Dcn_util.Approx.close_rel ~rtol:1e-6 r.Fluid.energy
           rs.Dcn_core.Solution.energy)

(* ------------------------------------------------------------------ *)
(* Packet-level simulator                                             *)
(* ------------------------------------------------------------------ *)

let example1_schedule () =
  let graph = Builders.line 3 in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ] in
  (Dcn_core.Baselines.sp_mcf inst).Dcn_core.Solution.schedule

let test_packet_delivers_everything () =
  let r = Dcn_sim.Packet.run (example1_schedule ()) in
  Alcotest.(check bool) "all delivered" true r.Dcn_sim.Packet.all_delivered;
  List.iter
    (fun (fr : Dcn_sim.Packet.flow_report) ->
      Alcotest.(check int) "no loss" fr.packets fr.delivered)
    r.Dcn_sim.Packet.flow_reports

let test_packet_counts () =
  (* Volumes 6 and 8 at packet size 1.0: 6 + 8 packets. *)
  let r =
    Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size = 1.0 } (example1_schedule ())
  in
  let total = List.fold_left (fun acc (fr : Dcn_sim.Packet.flow_report) -> acc + fr.packets) 0 r.Dcn_sim.Packet.flow_reports in
  Alcotest.(check int) "14 packets" 14 total

let test_packet_lateness_shrinks_with_packet_size () =
  let sched = example1_schedule () in
  let late size =
    (Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size = size } sched)
      .Dcn_sim.Packet.max_lateness
  in
  let l1 = late 1.0 and l01 = late 0.1 in
  Alcotest.(check bool) "smaller packets, less lateness" true (l01 < l1);
  Alcotest.(check bool) "fluid limit approached" true (l01 < 0.1)

let test_packet_pipeline_bound () =
  let r = Dcn_sim.Packet.run (example1_schedule ()) in
  Alcotest.(check bool) "within pipeline slack" true
    r.Dcn_sim.Packet.within_pipeline_slack

let test_packet_priority_order () =
  (* Two flows share a single link, disjoint slot windows by MCF; the
     earlier-starting flow has priority (paper Section III: priority by
     r'_i).  At coarse packet size, its packets must never queue behind
     the later flow. *)
  let graph = Builders.line 2 in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:4. in
  let f2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:8. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ] in
  let sched = (Dcn_core.Baselines.sp_mcf inst).Dcn_core.Solution.schedule in
  let r = Dcn_sim.Packet.run sched in
  Alcotest.(check bool) "delivered" true r.Dcn_sim.Packet.all_delivered;
  Alcotest.(check bool) "bounded lateness" true r.Dcn_sim.Packet.within_pipeline_slack

let test_packet_invalid_size () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size = 0. }
            (example1_schedule ()));
       false
     with Invalid_argument _ -> true)

let prop_packet_conservation =
  QCheck.Test.make ~name:"packet sim: every packet of every flow arrives" ~count:15
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.fat_tree 4 in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:6 () in
      let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows in
      let res = Dcn_core.Baselines.sp_mcf inst in
      let r =
        Dcn_sim.Packet.run
          ~config:{ Dcn_sim.Packet.packet_size = 2.0 }
          res.Dcn_core.Solution.schedule
      in
      r.Dcn_sim.Packet.all_delivered)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "sim/packet",
      [
        Alcotest.test_case "delivers everything" `Quick test_packet_delivers_everything;
        Alcotest.test_case "packet counts" `Quick test_packet_counts;
        Alcotest.test_case "lateness shrinks" `Quick
          test_packet_lateness_shrinks_with_packet_size;
        Alcotest.test_case "pipeline bound" `Quick test_packet_pipeline_bound;
        Alcotest.test_case "priority order" `Quick test_packet_priority_order;
        Alcotest.test_case "invalid size" `Quick test_packet_invalid_size;
        qt prop_packet_conservation;
      ] );
    ( "sim/fluid",
      [
        Alcotest.test_case "matches analytic" `Quick test_sim_matches_analytic;
        Alcotest.test_case "flow stats" `Quick test_sim_flow_stats;
        Alcotest.test_case "missed deadline" `Quick test_sim_detects_missed_deadline;
        Alcotest.test_case "capacity flag" `Quick test_sim_capacity_flag;
        Alcotest.test_case "aggregates link rates" `Quick test_sim_aggregates_link_rates;
        Alcotest.test_case "idle energy" `Quick test_sim_idle_energy;
        qt prop_sim_agrees_with_mcf;
        qt prop_sim_rs_theorem4;
      ] );
  ]
