(* Kernel differential + allocation harness (the @check-kernel alias).

   1. Differential: over seeded Dcn_check.Gen instances, the flat-kernel
      Frank-Wolfe engine and the boxed reference engine must produce
      BIT-IDENTICAL relaxations - same costs, bounds, overloads and
      weighted path decompositions.  This is the contract that lets
      Random_schedule round either engine's fractional solution into the
      same certified schedule.
   2. Allocation: after a warm-up solve, a kernel-engine solve must
      allocate (near) zero minor-heap words per FW iteration - the
      workspace arenas absorb the hot path.
   3. With --trace FILE, writes a traced kernel run (fw.kernel spans,
      ws.reuse/ws.grow counters) for check_json --kernel to validate.

   Exits 0 on success, 1 with a diagnostic on the first failure. *)

module Fw = Dcn_mcf.Frank_wolfe
module Model = Dcn_power.Model
module Relaxation = Dcn_core.Relaxation
module Gen = Dcn_check.Gen
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "check_kernel: FAIL %s\n%!" s)
    fmt

let fw_config = { Fw.default_config with max_iters = 60; gap_tol = 1e-3 }
let reference_config = { fw_config with Fw.engine = Fw.Reference }

let bits = Int64.bits_of_float

(* Bit-level float equality (compare conflates 0. and -0.). *)
let feq a b = Int64.equal (bits a) (bits b)

let same_weighted_paths (a : Dcn_mcf.Decompose.weighted_path list)
    (b : Dcn_mcf.Decompose.weighted_path list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Dcn_mcf.Decompose.weighted_path)
            (y : Dcn_mcf.Decompose.weighted_path) ->
         x.links = y.links && feq x.weight y.weight)
       a b

let check_relaxation label (k : Relaxation.t) (r : Relaxation.t) =
  if not (feq k.cost r.cost) then
    failf "%s: cost %h (kernel) <> %h (reference)" label k.cost r.cost;
  if not (feq k.lb r.lb) then
    failf "%s: lb %h (kernel) <> %h (reference)" label k.lb r.lb;
  if Array.length k.intervals <> Array.length r.intervals then
    failf "%s: interval counts differ" label
  else
    Array.iteri
      (fun i (ki : Relaxation.interval_solution) ->
        let ri = r.intervals.(i) in
        if not (feq ki.cost ri.cost) then
          failf "%s: interval %d cost %h <> %h" label i ki.cost ri.cost;
        if not (feq ki.max_overload ri.max_overload) then
          failf "%s: interval %d max_overload differs" label i;
        let ids l = List.map fst l in
        if ids ki.flow_paths <> ids ri.flow_paths then
          failf "%s: interval %d flow ids differ" label i
        else
          List.iter2
            (fun (id, kp) (_, rp) ->
              if not (same_weighted_paths kp rp) then
                failf "%s: interval %d flow %d paths differ" label i id)
            ki.flow_paths ri.flow_paths)
      k.intervals

let differential () =
  let cases = Gen.batch ~seed:20260808 ~n:12 in
  Array.iter
    (fun (case : Gen.case) ->
      let inst = case.instance in
      let k = Relaxation.solve ~fw_config inst in
      let r = Relaxation.solve ~fw_config:reference_config inst in
      check_relaxation (Printf.sprintf "case %d (%s)" case.index case.label) k r)
    cases;
  Printf.printf "check_kernel: differential ok (%d cases)\n%!" (Array.length cases)

(* A single-interval F-MCF at fat-tree k=4 with one commodity per host
   pair sample: big enough that a boxed iteration allocates megabytes,
   small enough to run in milliseconds. *)
let alloc_problem () =
  let g = Dcn_topology.Builders.fat_tree 4 in
  let hosts = Dcn_topology.Graph.hosts g in
  let nh = Array.length hosts in
  let commodities =
    Array.init 24 (fun i ->
        let src = hosts.(i mod nh) in
        let dst = hosts.((i + (nh / 2)) mod nh) in
        Dcn_mcf.Commodity.make ~index:i ~src ~dst ~demand:(1. +. (0.125 *. float_of_int i)))
  in
  let power = Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap:50. () in
  ( {
      Fw.graph = g;
      commodities;
      cost = Model.envelope power;
      cost_deriv = Model.envelope_deriv power;
      capacity = power.Model.cap;
    },
    Relaxation.piecewise_of power )

let allocation () =
  let problem, piecewise = alloc_problem () in
  let config = { Fw.default_config with max_iters = 40 } in
  (* Warm-up: sizes the arenas (and pays the copy-out allocations). *)
  let warm = Fw.solve ~config ~piecewise problem in
  let before = Gc.minor_words () in
  let sol = Fw.solve ~config ~piecewise problem in
  let after = Gc.minor_words () in
  if not (feq warm.Fw.cost sol.Fw.cost) then
    failf "allocation: warm-up and measured solves disagree";
  let refsol = Fw.solve_reference ~config problem in
  if not (feq refsol.Fw.cost sol.Fw.cost) then
    failf "allocation: kernel cost %h <> reference %h" sol.Fw.cost refsol.Fw.cost;
  if sol.Fw.iterations = 0 then failf "allocation: no iterations ran"
  else begin
    (* The measured delta includes the one-off copy-out of the solution
       (flows matrix + loads), which is per-solve, not per-iteration;
       subtracting it would need engine knowledge, so the budget simply
       covers it: the loop itself stays well under 1k words/iteration
       where a boxed iteration burns millions. *)
    let copy_out =
      float_of_int
        ((Array.length problem.Fw.commodities + 2)
        * (Dcn_topology.Graph.num_links problem.Fw.graph + 8))
    in
    let per_iter =
      Float.max 0. ((after -. before -. copy_out) /. float_of_int sol.Fw.iterations)
    in
    Printf.printf "check_kernel: %.0f minor words/iteration (%d iterations)\n%!"
      per_iter sol.Fw.iterations;
    if per_iter > 1024. then
      failf "allocation: %.0f minor words per FW iteration (budget 1024)" per_iter
  end

(* The telemetry layer's disabled contract: with the metrics registry
   off (this harness never enables it), every Dcn_obs update must
   return after a single branch without allocating.  The kernel loop
   increments a registry counter per FW iteration, so an allocating
   disabled path would also blow the per-iteration budget above — this
   checks the contract directly, on every update helper.  (Constant
   float arguments: caller-side boxing would be the caller's
   allocation, not the registry's.) *)
let registry_disabled_alloc () =
  if Dcn_obs.Registry.on () then
    failf "registry_disabled: registry unexpectedly enabled"
  else begin
    let c = Dcn_obs.Registry.counter "check.kernel.disabled" in
    let g = Dcn_obs.Registry.gauge "check.kernel.disabled_gauge" in
    let h = Dcn_obs.Registry.histogram "check.kernel.disabled_hist" in
    let before = Gc.minor_words () in
    for _ = 1 to 100_000 do
      Dcn_obs.Registry.incr c;
      Dcn_obs.Registry.add c 2.5;
      Dcn_obs.Registry.set g 1.5;
      Dcn_obs.Registry.observe h 0.25
    done;
    let delta = Gc.minor_words () -. before in
    if delta > 0. then
      failf "registry_disabled: %.0f minor words allocated while disabled" delta
    else
      Printf.printf "check_kernel: disabled-registry hot path allocation-free\n%!"
  end

let write_trace path =
  let t = Trace.create () in
  let problem, piecewise = alloc_problem () in
  let config = { Fw.default_config with max_iters = 20 } in
  Trace.with_trace t (fun () ->
      (* Two solves: the first grows the arenas (ws.grow), the second
         reuses them (ws.reuse). *)
      ignore (Fw.solve ~config ~piecewise problem);
      ignore (Fw.solve ~config ~piecewise problem));
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Trace.to_json t));
  output_char oc '\n';
  close_out oc;
  Printf.printf "check_kernel: trace written to %s\n%!" path

let () =
  let trace_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--trace" :: path :: rest ->
      trace_out := Some path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "check_kernel: unknown argument %s\n%!" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  differential ();
  allocation ();
  registry_disabled_alloc ();
  Option.iter write_trace !trace_out;
  if !failures > 0 then exit 1
