(* Dcn_coflow: grouping round-trips, sigma order, all-or-nothing
   admission edge cases, conjunction-certificate semantics, membership
   wire format, jobs-invariance and the coflow event-log corpus. *)

module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Builders = Dcn_topology.Builders
module Model = Dcn_power.Model
module Flow = Dcn_flow.Flow
module Workload = Dcn_flow.Workload
module Certify = Dcn_check.Certify
module Coflow = Dcn_coflow.Coflow
module Admission = Dcn_coflow.Admission
module Certificate = Dcn_coflow.Certificate
module Event = Dcn_serve.Event
module Session = Dcn_serve.Session
module Repair = Dcn_resilience.Repair

let flow ?(src = 0) ?(dst = 4) ~id ~volume ~release ~deadline () =
  Flow.make ~id ~src ~dst ~volume ~release ~deadline

let graph = Builders.fat_tree 4
let power ?(cap = infinity) () = Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap ()

(* ----------------------------- grouping ---------------------------- *)

let test_make_invariants () =
  let f1 = flow ~id:3 ~volume:2. ~release:0. ~deadline:4. () in
  let f2 = flow ~src:1 ~dst:5 ~id:1 ~volume:3. ~release:1. ~deadline:6. () in
  let c = Coflow.make ~id:7 ~flows:[ f1; f2 ] () in
  Alcotest.(check (list int)) "members ascend" [ 1; 3 ] (Coflow.member_ids c);
  Alcotest.(check (float 1e-9)) "collective deadline = max" 6. c.deadline;
  Alcotest.(check (float 1e-9)) "release = min" 0. (Coflow.release c);
  Alcotest.(check (float 1e-9)) "volume = sum" 5. (Coflow.volume c);
  Alcotest.(check (float 1e-9)) "slack" 3.5 (Coflow.slack c ~at:2.5);
  Alcotest.check_raises "empty members" (Invalid_argument "Coflow.make: empty member list")
    (fun () -> ignore (Coflow.make ~id:0 ~flows:[] ()));
  (match Coflow.make ~id:0 ~flows:[ f1; f1 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate member ids accepted")

let test_grouped_generators_round_trip () =
  let rng = Prng.create 5 in
  let job, flows =
    Workload.shuffle_grouped ~job:3 ~first_flow_id:10 ~rng ~graph ~mappers:3
      ~reducers:2 ()
  in
  Alcotest.(check int) "job id exported" 3 job;
  Alcotest.(check int) "mappers x reducers members" 6 (List.length flows);
  let c = Coflow.make ~id:job ~flows () in
  Alcotest.(check (list int))
    "membership by construction"
    (List.init 6 (fun i -> 10 + i))
    (Coflow.member_ids c);
  (* The flat view is exactly the grouped members. *)
  let rng' = Prng.create 5 in
  let flat = Workload.shuffle ~rng:rng' ~graph ~mappers:3 ~reducers:2 () in
  Alcotest.(check (list int))
    "flat view = snd grouped"
    (List.map (fun (f : Flow.t) -> f.id) (snd
       (Workload.shuffle_grouped ~rng:(Prng.create 5) ~graph ~mappers:3
          ~reducers:2 ())))
    (List.map (fun (f : Flow.t) -> f.id) flat)

let test_members_flatten_round_trip () =
  let mk id first =
    Coflow.make ~id
      ~flows:
        [
          flow ~id:first ~volume:1. ~release:0. ~deadline:2. ();
          flow ~src:1 ~dst:5 ~id:(first + 1) ~volume:1. ~release:0. ~deadline:3. ();
        ]
      ()
  in
  let cs = [ mk 0 0; mk 1 10 ] in
  Alcotest.(check (list (pair int (list int))))
    "membership table"
    [ (0, [ 0; 1 ]); (1, [ 10; 11 ]) ]
    (Coflow.members cs);
  Alcotest.(check (list int))
    "flatten ascending" [ 0; 1; 10; 11 ]
    (List.map (fun (f : Flow.t) -> f.id) (Coflow.flatten cs));
  (match Coflow.flatten [ mk 0 0; mk 1 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shared member ids accepted");
  (* JSON wire round trip, object wrapper and bare list both parse. *)
  let json = Coflow.members_to_json cs in
  (match Coflow.members_of_json json with
  | Ok table ->
    Alcotest.(check (list (pair int (list int))))
      "wire round trip" (Coflow.members cs) table
  | Error m -> Alcotest.failf "members_of_json: %s" m);
  (match Coflow.members_of_json (Json.member "coflows" json |> Option.get) with
  | Ok table ->
    Alcotest.(check (list (pair int (list int))))
      "bare list accepted" (Coflow.members cs) table
  | Error m -> Alcotest.failf "bare list: %s" m);
  match Coflow.members_of_json (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed membership accepted"

let test_sigma_order () =
  let mk id ~volume ~deadline =
    Coflow.make ~id
      ~flows:[ flow ~id:(100 + id) ~volume ~release:0. ~deadline () ]
      ()
  in
  let cs =
    [ mk 0 ~volume:9. ~deadline:5.; mk 1 ~volume:1. ~deadline:3.;
      mk 2 ~volume:4. ~deadline:3.; mk 3 ~volume:4. ~deadline:3. ]
  in
  Alcotest.(check (list int))
    "deadline, then volume, then id" [ 1; 2; 3; 0 ]
    (List.map (fun (c : Coflow.t) -> c.id) (Coflow.sigma_order cs))

let test_shuffle_trace_seeded () =
  let trace seed =
    Coflow.shuffle_trace ~rng:(Prng.create seed) ~graph ~jobs:6
      ~horizon:(0., 10.) ()
  in
  let show cs = Json.to_string (Json.List (List.map Coflow.to_json cs)) in
  Alcotest.(check string) "pure function of seed" (show (trace 9)) (show (trace 9));
  Alcotest.(check bool) "seed matters" true (show (trace 9) <> show (trace 10));
  let cs = trace 9 in
  let ids = List.concat_map Coflow.member_ids cs in
  Alcotest.(check int)
    "flow ids globally unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun (c : Coflow.t) ->
      Alcotest.(check bool) "deadline within horizon" true (c.deadline <= 10.))
    cs;
  match Coflow.shuffle_trace ~rng:(Prng.create 0) ~graph ~jobs:0 ~horizon:(0., 1.) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs = 0 accepted"

(* ---------------------------- admission ---------------------------- *)

let small_coflows () =
  (* Three jobs on the fat-tree; with infinite capacity all fit, with a
     tight capacity the big early-deadline shuffle cannot. *)
  let mk id ~first ~volume ~deadline pairs =
    Coflow.make ~id
      ~flows:
        (List.mapi
           (fun i (src, dst) ->
             flow ~src ~dst ~id:(first + i) ~volume ~release:0. ~deadline ())
           pairs)
      ()
  in
  [
    mk 0 ~first:0 ~volume:30. ~deadline:2. [ (0, 4); (1, 4); (2, 4) ];
    mk 1 ~first:10 ~volume:2. ~deadline:5. [ (5, 9); (6, 9) ];
    mk 2 ~first:20 ~volume:3. ~deadline:8. [ (10, 14); (11, 15) ];
  ]

let test_admission_all_or_nothing () =
  let cs = small_coflows () in
  List.iter
    (fun variant ->
      (* Loose capacity: everything fits. *)
      let adm = Admission.run ~variant ~graph ~power:(power ()) cs in
      Alcotest.(check (float 1e-9)) "all admitted" 1. adm.completion_rate;
      Alcotest.(check int) "no rejections" 0 (List.length adm.rejected);
      (* Tight capacity: the incast with volume 30 by t = 2 needs rate 45
         into one host link of capacity 6 — the whole group must go. *)
      let adm = Admission.run ~variant ~graph ~power:(power ~cap:6. ()) cs in
      let rejected_ids = List.map (fun ((c : Coflow.t), _) -> c.id) adm.rejected in
      Alcotest.(check (list int)) "whole group rejected" [ 0 ] rejected_ids;
      Alcotest.(check (float 1e-9)) "completion rate 2/3" (2. /. 3.)
        adm.completion_rate;
      (* No member of the rejected coflow appears in the final schedule. *)
      (match adm.solution with
      | None -> Alcotest.fail "admitted set has a schedule"
      | Some sol ->
        List.iter
          (fun id ->
            Alcotest.(check bool)
              (Printf.sprintf "flow %d of rejected coflow unplanned" id)
              false
              (List.exists
                 (fun (p : Dcn_sched.Schedule.plan) -> p.flow.id = id)
                 sol.schedule.plans))
          [ 0; 1; 2 ]);
      (* The admission certificate (bookkeeping included) holds. *)
      let cert =
        Certificate.admission_result ~coflows:cs ~graph ~power:(power ~cap:6. ())
          adm
      in
      Alcotest.(check bool) "certificate ok" true cert.ok)
    [ Admission.Baseline; Admission.Energy_aware ]

let test_admission_edge_cases () =
  let adm = Admission.run ~variant:Baseline ~graph ~power:(power ()) [] in
  Alcotest.(check (float 1e-9)) "empty workload completes" 1. adm.completion_rate;
  Alcotest.(check bool) "no solution" true (adm.solution = None);
  let cert = Certificate.admission_result ~coflows:[] ~graph ~power:(power ()) adm in
  Alcotest.(check bool) "empty certifies trivially" true cert.ok;
  (* An infeasible-by-construction member (deadline before any capacity
     could move the volume) rejects its whole coflow with a reason. *)
  let cs =
    [
      Coflow.make ~id:0
        ~flows:
          [
            flow ~id:0 ~volume:100. ~release:0. ~deadline:0.1 ();
            flow ~src:1 ~dst:5 ~id:1 ~volume:0.1 ~release:0. ~deadline:9. ();
          ]
        ();
    ]
  in
  let adm = Admission.run ~variant:Baseline ~graph ~power:(power ~cap:2. ()) cs in
  Alcotest.(check (float 1e-9)) "nothing admitted" 0. adm.completion_rate;
  (match adm.rejected with
  | [ (c, reason) ] ->
    Alcotest.(check int) "the whole coflow" 0 c.Coflow.id;
    Alcotest.(check bool) "has a reason" true (String.length reason > 0)
  | _ -> Alcotest.fail "expected exactly one rejection");
  Alcotest.(check bool) "no schedule" true (adm.solution = None)

let test_admission_deterministic_and_jobs_invariant () =
  let cs =
    Coflow.shuffle_trace ~rng:(Prng.create 3) ~graph ~jobs:5 ~horizon:(0., 10.) ()
  in
  let report pool =
    let adm =
      Admission.run ~seed:7 ~pool ~variant:Energy_aware ~graph
        ~power:(power ~cap:16. ()) cs
    in
    Json.to_string (Admission.to_json adm)
  in
  let seq = report Pool.sequential in
  Alcotest.(check string) "same seed, same outcome" seq (report Pool.sequential);
  let par = Pool.with_pool ~jobs:4 (fun pool -> report pool) in
  Alcotest.(check string) "jobs-invariant (1 vs 4)" seq par

(* --------------------------- certificate --------------------------- *)

let test_conjunction_semantics () =
  let cs = small_coflows () in
  let adm = Admission.run ~variant:Baseline ~graph ~power:(power ~cap:6. ()) cs in
  let sol = Option.get adm.solution in
  (* Against the FULL workload instance (rejected coflows included) the
     admitted-set schedule certifies under the default partial config:
     whole coflows may be absent, none may be split. *)
  let full = Dcn_core.Instance.make ~graph ~power:(power ~cap:6. ()) ~flows:(Coflow.flatten cs) in
  let report = Certificate.conjunction ~coflows:cs full sol.schedule in
  Alcotest.(check (list string)) "conjunction clean" []
    (List.map Certify.kind report.violations);
  (* Dropping one member of an admitted coflow flips exactly the
     admission clause: a typed Partial_coflow violation attributed to
     the owning coflow. *)
  let truncated =
    Dcn_sched.Schedule.make ~graph:sol.schedule.graph
      ~power:sol.schedule.power ~horizon:sol.schedule.horizon
      (List.filter
         (fun (p : Dcn_sched.Schedule.plan) -> p.flow.id <> 10)
         sol.schedule.plans)
  in
  let report = Certificate.conjunction ~coflows:cs full truncated in
  Alcotest.(check bool) "partial admission caught" false report.ok;
  (match
     List.find_opt
       (function Certify.Partial_coflow _ -> true | _ -> false)
       report.violations
   with
  | Some (Certify.Partial_coflow { coflow; planned; missing }) ->
    Alcotest.(check int) "owning coflow" 1 coflow;
    Alcotest.(check (list int)) "planned members" [ 11 ] planned;
    Alcotest.(check (list int)) "missing members" [ 10 ] missing
  | _ -> Alcotest.fail "expected a Partial_coflow violation");
  Alcotest.(check bool) "attributed to coflow 1" true
    (List.mem_assoc 1 report.per_coflow);
  (* Under a strict (partial = false) config the same absence is also a
     per-member Missing_flow — the conjunction tightens monotonically. *)
  let strict = { Certify.default with Certify.partial = false } in
  let report = Certificate.conjunction ~config:strict ~coflows:cs full truncated in
  Alcotest.(check bool) "strict config also fails" false report.ok;
  Alcotest.(check bool) "missing member clause" true
    (List.exists
       (function Certify.Missing_flow _ -> true | _ -> false)
       report.violations)

(* ------------------------------ corpus ----------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_events name =
  String.split_on_char '\n' (read_file ("corpus/" ^ name))
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match Json.parse line with
         | Ok json -> (
           match Event.of_json json with
           | Ok e -> e
           | Error m -> Alcotest.failf "corpus event: %s" m)
         | Error e ->
           Alcotest.failf "corpus json: %s" (Json.parse_error_to_string e))

let replay_corpus ?(pool = Pool.sequential) ?(seed = 11) () =
  let session =
    Session.create ~pool ~graph ~power:(power ())
      ~policy:Repair.Drop_latest_deadline ~seed ()
  in
  let outcomes = List.map (Session.apply session) (corpus_events "coflow-mix.events") in
  (session, outcomes)

let test_corpus_replay () =
  let s, outcomes = replay_corpus () in
  Alcotest.(check int) "19 events" 19 (List.length outcomes);
  (* The one plain cancel of a coflow member is refused; every other
     event commits (all-or-nothing groups land whole). *)
  let kinds = List.map Session.outcome_kind outcomes in
  Alcotest.(check int) "exactly one rejection" 1
    (List.length (List.filter (( = ) "rejected") kinds));
  Alcotest.(check string) "the member cancel" "rejected" (List.nth kinds 4);
  Alcotest.(check bool) "every epoch certified" true (Session.ok s);
  Alcotest.(check (list (pair int (list int))))
    "all coflows resolved by the end" [] (Session.active_coflows s);
  let member name =
    match Json.member name (Session.report s) with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "report field %s" name
  in
  Alcotest.(check int) "six coflows admitted" 6 (member "coflows_admitted");
  Alcotest.(check int) "none rejected" 0 (member "coflows_rejected")

let test_corpus_replay_jobs_invariant () =
  let report pool =
    let s, outcomes = replay_corpus ~pool () in
    ( Json.to_string (Session.report s),
      List.map (fun o -> Json.to_string (Session.outcome_to_json o)) outcomes )
  in
  let seq = report Pool.sequential in
  let par = Pool.with_pool ~jobs:4 (fun pool -> report pool) in
  Alcotest.(check string) "report byte-identical" (fst seq) (fst par);
  List.iter2
    (Alcotest.(check string) "outcome byte-identical")
    (snd seq) (snd par)

let test_mid_replay_consistency () =
  (* After every event, the live schedule honours the membership table:
     a committed coflow is never partially planned. *)
  let session =
    Session.create ~pool:Pool.sequential ~graph ~power:(power ())
      ~policy:Repair.Drop_latest_deadline ~seed:11 ()
  in
  List.iter
    (fun e ->
      ignore (Session.apply session e);
      match Session.schedule session with
      | None -> ()
      | Some sched ->
        Alcotest.(check (list string))
          "all-or-nothing at every epoch" []
          (List.map Certify.kind
             (Certify.coflow_consistency
                ~members:(Session.active_coflows session) sched)))
    (corpus_events "coflow-mix.events")

let suite =
  [
    ( "coflow",
      [
        Alcotest.test_case "make invariants" `Quick test_make_invariants;
        Alcotest.test_case "grouped generators" `Quick
          test_grouped_generators_round_trip;
        Alcotest.test_case "members/flatten round trip" `Quick
          test_members_flatten_round_trip;
        Alcotest.test_case "sigma order" `Quick test_sigma_order;
        Alcotest.test_case "shuffle trace seeded" `Quick
          test_shuffle_trace_seeded;
        Alcotest.test_case "all-or-nothing admission" `Quick
          test_admission_all_or_nothing;
        Alcotest.test_case "admission edge cases" `Quick
          test_admission_edge_cases;
        Alcotest.test_case "admission jobs-invariant" `Quick
          test_admission_deterministic_and_jobs_invariant;
        Alcotest.test_case "conjunction certificate" `Quick
          test_conjunction_semantics;
        Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
        Alcotest.test_case "corpus replay jobs-invariant" `Quick
          test_corpus_replay_jobs_invariant;
        Alcotest.test_case "mid-replay consistency" `Quick
          test_mid_replay_consistency;
      ] );
  ]
