(* Third batch: randomised end-to-end invariants tying several
   subsystems together. *)

module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Prng = Dcn_util.Prng
open Dcn_core

let quick_fw =
  { Dcn_mcf.Frank_wolfe.default_config with max_iters = 40; line_search_iters = 24 }

let seed_gen = QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))

let small_instance ?(n = 8) seed =
  let graph = Builders.fat_tree 4 in
  let rng = Prng.create seed in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n () in
  (Instance.make ~graph ~power:Model.quadratic ~flows, rng)

(* Theorem 2's structure holds for random solvable instances, not just
   the hand-picked one: enumeration always finds exactly the closed
   form. *)
let prop_gadget_random_instances =
  QCheck.Test.make ~name:"gadgets: exact = closed form on random yes-instances" ~count:5
    seed_gen (fun seed ->
      let rng = Prng.create seed in
      let tp = Gadgets.solvable_three_partition ~m:2 ~b:20 ~rng in
      let inst = Gadgets.three_partition_instance ~links:3 tp in
      let exact = (Exact.search ~max_combinations:100_000 inst).Exact.energy in
      Float.abs (exact -. Gadgets.three_partition_opt_energy tp) < 1e-6)

(* Serialisation is solver-transparent. *)
let prop_serialize_solver_transparent =
  QCheck.Test.make ~name:"serialize: reloaded instances solve identically" ~count:10
    seed_gen (fun seed ->
      let inst, _ = small_instance seed in
      let back = Serialize.instance_of_string (Serialize.instance_to_string inst) in
      let e1 = (Baselines.sp_mcf inst).Solution.energy in
      let e2 = (Baselines.sp_mcf back).Solution.energy in
      Float.abs (e1 -. e2) < 1e-9 *. Float.max 1. e1)

(* Schedules round-trip through the v1 text format: re-importing
   against the same instance reproduces the text verbatim (and hence
   the schedule, field by field). *)
let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"serialize: schedule_of_string inverts schedule_to_string"
    ~count:10 seed_gen (fun seed ->
      let inst, rng = small_instance seed in
      let rs =
        Random_schedule.solve
          ~config:{ Random_schedule.attempts = 3; fw_config = quick_fw }
          ~instance:inst
          ~workspace:(Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let text = Serialize.schedule_to_string rs.Solution.schedule in
      let back = Serialize.schedule_of_string inst text in
      Serialize.schedule_to_string back = text
      && Float.abs (Schedule.energy back -. Schedule.energy rs.Solution.schedule)
         < 1e-9 *. Float.max 1. (Schedule.energy rs.Solution.schedule))

(* The v1 parser rejects schedules that name flows the instance does
   not have. *)
let prop_schedule_roundtrip_unknown_flow =
  QCheck.Test.make ~name:"serialize: schedule parser rejects unknown flow ids"
    ~count:5 seed_gen (fun seed ->
      let inst, _ = small_instance ~n:4 seed in
      let text = "dcnsched-schedule v1\nplan 9999 0\nslot 0 1 1\n" in
      try
        ignore (Serialize.schedule_of_string inst text);
        false
      with Failure _ -> true)

(* Admission control partitions the flow set. *)
let prop_online_partitions =
  QCheck.Test.make ~name:"online: accepted and rejected partition the flows" ~count:15
    seed_gen (fun seed ->
      let graph = Builders.fat_tree 4 in
      let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:1.5 () in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:15 () in
      let inst = Instance.make ~graph ~power ~flows in
      let online = Online.solve ~instance:inst ~workspace:(Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never () in
      let all = List.sort compare (List.map (fun (f : Flow.t) -> f.id) flows) in
      List.sort compare (Solution.accepted online @ Solution.rejected online) = all)

(* Splitting leaves the fractional LB (per-interval demands) unchanged
   up to solver tolerance. *)
let prop_split_lb_invariant =
  QCheck.Test.make ~name:"split: fractional LB invariant under splitting" ~count:5
    seed_gen (fun seed ->
      let inst, _ = small_instance ~n:6 seed in
      let lb1 =
        (Lower_bound.compute ~fw_config:quick_fw inst).Lower_bound.fractional_cost
      in
      let split_flows = Dcn_flow.Split.workload inst.Instance.flows ~parts:2 in
      let inst2 =
        Instance.make ~graph:inst.Instance.graph ~power:inst.Instance.power
          ~flows:split_flows
      in
      let lb2 =
        (Lower_bound.compute ~fw_config:quick_fw inst2).Lower_bound.fractional_cost
      in
      Float.abs (lb1 -. lb2) /. Float.max 1. lb1 < 0.03)

(* The fluid simulator and the static checker agree on capacity. *)
let prop_sim_checker_capacity_agree =
  QCheck.Test.make ~name:"fluid sim: capacity verdict matches Schedule.Check" ~count:15
    seed_gen (fun seed ->
      let graph = Builders.fat_tree 4 in
      let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:1.2 () in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:10 () in
      let inst = Instance.make ~graph ~power ~flows in
      let rs = Random_schedule.solve ~config:{ Random_schedule.attempts = 3; fw_config = quick_fw } ~instance:inst ~workspace:(Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
      let s = rs.Solution.schedule in
      let sim = Dcn_sim.Fluid.run s in
      sim.Dcn_sim.Fluid.capacity_respected = (Schedule.Check.capacity s = []))

(* Greedy-EAR is never (materially) worse than deterministic SP under
   pure speed scaling: SP is in EAR's search space for every flow, so
   each greedy step picks something at most as expensive marginally.
   (Not a theorem for the final sum — allow generous slack and flag
   only large regressions.) *)
let prop_ear_not_catastrophic_vs_sp =
  QCheck.Test.make ~name:"greedy-ear: within 2x of SP+MCF on small instances" ~count:10
    seed_gen (fun seed ->
      let inst, _ = small_instance ~n:10 seed in
      let ear = (Greedy_ear.solve ~instance:inst ~workspace:(Solver_api.workspace ()) ~deadline:Dcn_engine.Deadline.never ()).Solution.energy in
      let sp = (Baselines.sp_mcf inst).Solution.energy in
      ear <= 2. *. sp)

(* Packetisation conserves data at several granularities. *)
let prop_packet_sizes_all_deliver =
  QCheck.Test.make ~name:"packet sim: delivery at multiple packet sizes" ~count:8
    seed_gen (fun seed ->
      let inst, _ = small_instance ~n:5 seed in
      let res = Baselines.sp_mcf inst in
      List.for_all
        (fun packet_size ->
          (Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size }
             res.Solution.schedule)
            .Dcn_sim.Packet.all_delivered)
        [ 5.0; 1.0; 0.25 ])

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "props/end-to-end",
      [
        qt prop_gadget_random_instances;
        qt prop_serialize_solver_transparent;
        qt prop_schedule_roundtrip;
        qt prop_schedule_roundtrip_unknown_flow;
        qt prop_online_partitions;
        qt prop_split_lb_invariant;
        qt prop_sim_checker_capacity_agree;
        qt prop_ear_not_catastrophic_vs_sp;
        qt prop_packet_sizes_all_deliver;
      ] );
  ]
