(* Dcn_obs: registry semantics, the zero-cost disabled contract,
   jobs-invariant snapshot totals, wire round-trips and totality on the
   malformed-snapshot corpus, Prometheus exposition, SLO derivation. *)

module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Prng = Dcn_util.Prng
module Builders = Dcn_topology.Builders
module Model = Dcn_power.Model
module Flow = Dcn_flow.Flow
module Event = Dcn_serve.Event
module Session = Dcn_serve.Session
module Repair = Dcn_resilience.Repair
module Registry = Dcn_obs.Registry
module Snapshot = Dcn_obs.Snapshot
module Slo = Dcn_obs.Slo
module Expose = Dcn_obs.Expose

(* The registry is process-global; every test that enables it must
   leave it disabled so the other suites keep the zero-cost default. *)
let with_registry f =
  Registry.enable ();
  Fun.protect ~finally:Registry.disable f

let feq = Alcotest.(check (float 1e-9))

(* ----------------------------- registry ---------------------------- *)

let test_counter_semantics () =
  with_registry @@ fun () ->
  let c = Registry.counter ~help:"test counter" "test.obs.count" in
  feq "starts at zero" 0. (Registry.value c);
  Registry.incr c;
  Registry.incr ~by:41 c;
  feq "incr accumulates" 42. (Registry.value c);
  Registry.add c 0.5;
  feq "add accumulates" 42.5 (Registry.value c);
  (* Registration is idempotent on (name, labels): same handle. *)
  let c' = Registry.counter "test.obs.count" in
  Registry.incr c';
  feq "same (name, labels) shares the total" 43.5 (Registry.value c);
  (* Distinct labels are a distinct metric. *)
  let cl = Registry.counter ~labels:[ ("k", "v") ] "test.obs.count" in
  Registry.incr ~by:7 cl;
  feq "labelled variant is separate" 43.5 (Registry.value c);
  feq "labelled total" 7. (Registry.value cl);
  (* A (name, labels) pair cannot change kind. *)
  (match Registry.gauge "test.obs.count" with
  | _ -> Alcotest.fail "kind conflict was not rejected"
  | exception Invalid_argument _ -> ());
  (* Reset zeroes totals but keeps registrations and enablement. *)
  Registry.reset ();
  Alcotest.(check bool) "still enabled" true (Registry.on ());
  feq "reset zeroes" 0. (Registry.value c);
  Registry.incr c;
  feq "counts again after reset" 1. (Registry.value c)

let test_gauge_and_histogram () =
  with_registry @@ fun () ->
  let g = Registry.gauge ~help:"test gauge" "test.obs.gauge" in
  Alcotest.(check bool) "unset gauge" true (Registry.gauge_value g = None);
  Registry.set g 2.5;
  Registry.set g 4.25;
  Alcotest.(check bool)
    "last write wins" true
    (Registry.gauge_value g = Some 4.25);
  let h = Registry.histogram ~help:"test hist" "test.obs.hist" in
  List.iter (Registry.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  let snap = Snapshot.scrape ~seq:1 () in
  (match Snapshot.dist snap "test.obs.hist" with
  | None -> Alcotest.fail "histogram missing from scrape"
  | Some d ->
    Alcotest.(check int) "observation count" 4 d.Registry.d_count;
    feq "sum" 15. d.Registry.d_sum;
    feq "min" 1. d.Registry.d_min;
    feq "max" 8. d.Registry.d_max);
  (* An unset gauge is skipped by the scrape; a set one appears. *)
  Alcotest.(check bool)
    "set gauge scraped" true
    (Snapshot.gauge_value snap "test.obs.gauge" = Some 4.25);
  let unset = Registry.gauge "test.obs.gauge_unset" in
  ignore unset;
  Alcotest.(check bool)
    "unset gauge skipped" true
    (Snapshot.find snap "test.obs.gauge_unset" = None)

let test_disabled_is_inert () =
  Alcotest.(check bool) "disabled by default" false (Registry.on ());
  let c = Registry.counter "test.obs.inert" in
  Registry.incr ~by:100 c;
  feq "disabled incr records nothing" 0. (Registry.value c);
  with_registry (fun () ->
      Registry.incr ~by:3 c;
      feq "enabled incr records" 3. (Registry.value c));
  Registry.incr ~by:100 c;
  feq "inert again after disable" 3. (Registry.value c)

(* The zero-cost contract: while disabled, every update helper returns
   after one branch without allocating.  Constant float arguments keep
   caller-side boxing out of the measurement. *)
let test_disabled_zero_allocation () =
  Alcotest.(check bool) "registry disabled" false (Registry.on ());
  let c = Registry.counter "test.obs.alloc" in
  let g = Registry.gauge "test.obs.alloc_gauge" in
  let h = Registry.histogram "test.obs.alloc_hist" in
  Registry.incr c;
  Registry.set g 1.;
  Registry.observe h 1.;
  let before = Gc.minor_words () in
  for _ = 1 to 50_000 do
    Registry.incr c;
    Registry.add c 2.5;
    Registry.set g 1.5;
    Registry.observe h 0.25
  done;
  feq "no minor allocation while disabled" 0. (Gc.minor_words () -. before)

(* ------------------------- jobs invariance ------------------------- *)

(* The bench/E13 synthetic stream, shrunk: arrivals, cancels and clock
   advances on line:5 under a finite cap. *)
let synthetic_events n =
  let rng = Prng.create 11 in
  let now = ref 0. and next_id = ref 1 and live = ref [] in
  List.init n (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
        let src = Prng.int rng 5 in
        let dst = (src + 1 + Prng.int rng 4) mod 5 in
        let release = !now +. Prng.float rng 0.5 in
        let deadline = release +. 1.5 +. Prng.float rng 4.5 in
        let f =
          Flow.make ~id:!next_id ~src ~dst
            ~volume:(0.5 +. Prng.float rng 5.5)
            ~release ~deadline
        in
        incr next_id;
        live := f.Flow.id :: !live;
        Event.Flow_arrival f
      | 6 | 7 when !live <> [] ->
        let i = Prng.int rng (List.length !live) in
        let id = List.nth !live i in
        live := List.filter (fun j -> j <> id) !live;
        Event.Flow_cancel { flow = id }
      | _ ->
        now := !now +. 0.3 +. Prng.float rng 1.2;
        Event.Advance_clock { clock = !now })

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The deterministic view of a sample: integer-valued counter totals,
   gauge values and histogram counts are bit-identical at every --jobs
   level; wall-clock seconds, GC words and latency bucket shapes are
   genuinely nondeterministic and excluded. *)
let comparable (s : Registry.sample) =
  if contains s.s_name "seconds" || contains s.s_name "minor_words" then None
  else
    match s.s_value with
    | Registry.Value v -> Some (s.s_name, s.s_labels, Printf.sprintf "%h" v)
    | Registry.Dist d ->
      Some (s.s_name, s.s_labels, Printf.sprintf "count=%d" d.Registry.d_count)

let run_session_with_jobs jobs =
  Registry.reset ();
  let events = synthetic_events 16 in
  Pool.with_pool ~jobs (fun pool ->
      let session =
        Session.create ~pool ~graph:(Builders.line 5)
          ~power:(Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap:6. ())
          ~policy:Repair.Drop_latest_deadline ~seed:7 ()
      in
      List.iter (fun e -> ignore (Session.apply session e)) events);
  let snap = Snapshot.scrape ~seq:1 () in
  (snap, List.filter_map comparable snap.Snapshot.metrics)

let test_jobs_invariance () =
  with_registry @@ fun () ->
  let snap1, seq_totals = run_session_with_jobs 1 in
  let _, par_totals = run_session_with_jobs 4 in
  Alcotest.(check bool)
    "session telemetry recorded" true
    (Snapshot.counter_total snap1 "serve.events" > 0.);
  Alcotest.(check int)
    "same metric set" (List.length seq_totals) (List.length par_totals);
  List.iter2
    (fun (n1, l1, v1) (n2, l2, v2) ->
      Alcotest.(check string) "metric name" n1 n2;
      Alcotest.(check bool) ("labels of " ^ n1) true (l1 = l2);
      Alcotest.(check string) ("total of " ^ n1) v1 v2)
    seq_totals par_totals

(* ------------------------------ wire ------------------------------- *)

let test_snapshot_round_trip () =
  with_registry @@ fun () ->
  Registry.incr ~by:3 (Registry.counter "test.obs.rt");
  Registry.incr (Registry.counter ~labels:[ ("k", "v") ] "test.obs.rt");
  Registry.set (Registry.gauge "test.obs.rt_gauge") 2.5;
  List.iter (Registry.observe (Registry.histogram "test.obs.rt_hist")) [ 1.; 2. ];
  let snap = Snapshot.scrape ~seq:5 () in
  (match Snapshot.of_json (Snapshot.to_json snap) with
  | Error m -> Alcotest.failf "bare round trip failed: %s" m
  | Ok back ->
    Alcotest.(check bool) "bare round trip is lossless" true (back = snap));
  match Json.of_string (Expose.wire_line snap) with
  | exception Failure m -> Alcotest.failf "wire line is not JSON: %s" m
  | json -> (
    (match Json.member "stats" json with
    | Some inner ->
      Alcotest.(check bool)
        "wire line carries the slo section" true
        (Json.member "slo" inner <> None)
    | None -> Alcotest.fail "wire line lost the stats wrapper");
    match Snapshot.of_json json with
    | Error m -> Alcotest.failf "wrapped round trip failed: %s" m
    | Ok back ->
      Alcotest.(check bool) "wrapped round trip is lossless" true (back = snap))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every line of the malformed corpus must yield a typed verdict —
   parse failure, Error, or Ok — never an exception. *)
let test_of_json_total_on_corpus () =
  let lines =
    String.split_on_char '\n' (read_file "corpus/stats-truncated.snapshots")
    |> List.filter (fun l -> String.trim l <> "")
  in
  let unparsable = ref 0 and ok = ref 0 and rejected = ref 0 in
  List.iter
    (fun line ->
      match Json.of_string line with
      | exception Failure _ -> incr unparsable
      | json -> (
        match Snapshot.of_json json with
        | Ok _ -> incr ok
        | Error m ->
          if String.trim m = "" then Alcotest.fail "empty error message";
          incr rejected))
    lines;
  Alcotest.(check int) "corpus lines" 10 (List.length lines);
  Alcotest.(check int) "unparsable lines" 2 !unparsable;
  Alcotest.(check int) "valid snapshots" 3 !ok;
  Alcotest.(check int) "typed rejections" 5 !rejected

(* --------------------------- prometheus ---------------------------- *)

let test_prometheus_exposition () =
  with_registry @@ fun () ->
  Registry.incr ~by:9
    (Registry.counter ~help:"escape\nme" ~labels:[ ("path", "a\"b\\c\nd") ]
       "test.obs.prom total");
  Registry.set (Registry.gauge "test.obs.prom_gauge") 1.5;
  List.iter
    (Registry.observe (Registry.histogram "test.obs.prom_hist"))
    [ 0.5; 1.5; 2.5 ];
  let text = Expose.prometheus (Snapshot.scrape ~seq:1 ()) in
  (match Expose.validate_prometheus text with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exposition failed validation: %s" m);
  let has sub = contains text sub in
  Alcotest.(check bool)
    "counter sanitised + _total suffix" true
    (has "dcn_test_obs_prom_total_total{path=\"a\\\"b\\\\c\\nd\"} 9");
  Alcotest.(check bool) "gauge family" true (has "# TYPE dcn_test_obs_prom_gauge gauge");
  Alcotest.(check bool)
    "histogram exposed as summary" true
    (has "# TYPE dcn_test_obs_prom_hist summary");
  Alcotest.(check bool)
    "summary quantiles" true
    (has "dcn_test_obs_prom_hist{quantile=\"0.5\"}");
  Alcotest.(check bool) "summary count" true (has "dcn_test_obs_prom_hist_count 3")

let test_validate_rejects_garbage () =
  List.iter
    (fun bad ->
      match Expose.validate_prometheus bad with
      | Ok () -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "dcn_ok 1\n";  (* sample without a preceding # TYPE *)
      "# TYPE dcn_x counter\n9dcn_x 1\n";  (* bad metric name *)
      "# TYPE dcn_x wat\ndcn_x 1\n";  (* unknown type *)
      "# TYPE dcn_x counter\ndcn_x notanumber\n";  (* bad value *)
    ]

(* ------------------------------- slo ------------------------------- *)

let test_slo_derivation () =
  with_registry @@ fun () ->
  let c ?labels name by = Registry.incr ~by (Registry.counter ?labels name) in
  c "serve.events" 10;
  c "serve.committed" 6;
  c "serve.degraded" 2;
  c "serve.rejected" 2;
  c "serve.resolved_intervals" 30;
  c "serve.reused_intervals" 10;
  c ~labels:[ ("engine", "kernel") ] "fw.iterations" 100;
  c ~labels:[ ("engine", "reference") ] "fw.iterations" 25;
  c "serve.certified" 8;
  Registry.add (Registry.counter "serve.apply_minor_words") 500.;
  Registry.set (Registry.gauge "serve.energy") 120.;
  Registry.set (Registry.gauge "serve.energy_lb") 100.;
  Registry.set (Registry.gauge "serve.min_slack") 0.75;
  List.iter (Registry.observe (Registry.histogram "serve.apply_ms")) [ 4.; 6. ];
  let slo = Slo.of_snapshot (Snapshot.scrape ~seq:1 ()) in
  Alcotest.(check int) "events" 10 slo.Slo.events;
  (match slo.Slo.commit_rate with
  | Some r -> feq "commit rate" 0.6 r
  | None -> Alcotest.fail "commit rate missing");
  (match slo.Slo.reuse_ratio with
  | Some r -> feq "reuse ratio" 0.25 r
  | None -> Alcotest.fail "reuse ratio missing");
  (match slo.Slo.energy_gap with
  | Some g -> feq "energy gap" 0.2 g
  | None -> Alcotest.fail "energy gap missing");
  Alcotest.(check int) "fw iterations sum labels" 125 slo.Slo.fw_iterations;
  (match slo.Slo.minor_words_per_event with
  | Some w -> feq "minor words per event" 50. w
  | None -> Alcotest.fail "minor words missing");
  Alcotest.(check int) "apply samples" 2 slo.Slo.apply_count;
  (match slo.Slo.min_slack with
  | Some s -> feq "min slack" 0.75 s
  | None -> Alcotest.fail "min slack missing");
  Alcotest.(check int) "uncertified defaults to zero" 0 slo.Slo.uncertified;
  (* The derived section must serialise without losing fields: the JSON
     carries every table row plus apply_count (the table folds the
     sample count into the latency rows). *)
  match Slo.to_json slo with
  | Json.Obj fields ->
    Alcotest.(check int)
      "slo json carries every indicator"
      (List.length (Slo.rows slo) + 1)
      (List.length fields);
    Alcotest.(check bool)
      "apply_count present" true
      (List.mem_assoc "apply_count" fields)
  | _ -> Alcotest.fail "slo json is not an object"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
        Alcotest.test_case "disabled registry is inert" `Quick
          test_disabled_is_inert;
        Alcotest.test_case "disabled hot path allocates nothing" `Quick
          test_disabled_zero_allocation;
        Alcotest.test_case "snapshot totals are jobs-invariant" `Slow
          test_jobs_invariance;
        Alcotest.test_case "snapshot wire round trip" `Quick
          test_snapshot_round_trip;
        Alcotest.test_case "of_json total on malformed corpus" `Quick
          test_of_json_total_on_corpus;
        Alcotest.test_case "prometheus exposition validates" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "prometheus validator rejects garbage" `Quick
          test_validate_rejects_garbage;
        Alcotest.test_case "slo derivation" `Quick test_slo_derivation;
      ] );
  ]
