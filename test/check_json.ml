(* Shape validator for the machine-readable outputs of
   [dcn solve --trace FILE --report FILE], run from the root `check-json`
   alias (itself a `runtest` dependency).  Exits non-zero with a message
   on the first violation, so a regression in the trace or report format
   fails tier-1.

   Usage: check_json.exe TRACE.json REPORT.json [CHROME.json] *)

module Json = Dcn_engine.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check-json: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  try Json.of_string (read_file path)
  with Failure m -> fail "%s: not valid JSON: %s" path m

let get path name json =
  match Json.member name json with
  | Some v -> v
  | None -> fail "%s: missing key %S" path name

let check_trace path =
  let json = parse path in
  (match Json.member "version" json with
  | Some (Json.Int 1) -> ()
  | _ -> fail "%s: version is not 1" path);
  let events = Json.to_list (get path "events" json) in
  if events = [] then fail "%s: no events recorded" path;
  (* Every record carries the envelope keys, and seq is strictly
     increasing (records are emitted sorted). *)
  let prev = ref (-1) in
  List.iter
    (fun e ->
      let seq = Json.to_int (get path "seq" e) in
      if seq <= !prev then fail "%s: seq %d out of order" path seq;
      prev := seq;
      ignore (Json.to_int (get path "t_ns" e));
      ignore (Json.to_int (get path "domain" e));
      ignore (Json.to_str (get path "type" e)))
    events;
  (* The solvers a `solve` run goes through must all have spoken up. *)
  let names =
    List.filter_map (fun e -> Option.map Json.to_str (Json.member "name" e)) events
  in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        fail "%s: no %S event — solver instrumentation lost" path required)
    [ "rs.solve"; "fw.iter"; "mcf.group"; "rs.attempt"; "pool.task" ];
  ignore (get path "counters" json)

let check_report path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "solve") -> ()
  | _ -> fail "%s: command is not \"solve\"" path);
  let solutions = Json.to_list (get path "solutions" json) in
  if List.length solutions <> 2 then
    fail "%s: expected 2 solutions (SP+MCF, RS), got %d" path (List.length solutions);
  List.iter
    (fun s ->
      ignore (Json.to_str (get path "algorithm" s));
      let energy = Json.to_float (get path "energy" s) in
      if not (Float.is_finite energy) || energy < 0. then
        fail "%s: non-finite or negative energy" path;
      ignore (Json.to_list (get path "rates" s)))
    solutions;
  let lb = Json.to_float (get path "lower_bound" json) in
  if not (Float.is_finite lb) then fail "%s: non-finite lower bound" path;
  ignore (get path "sim" json);
  (match get path "metrics" json with
  | Json.List (_ :: _) -> ()
  | _ -> fail "%s: metrics section empty" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* Report of `dcn fuzz --report FILE`: the envelope plus the batch
   summary — every case report carries per-solver certificates and the
   cross-solver verdicts, and the campaign must have certified. *)
let check_fuzz path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "fuzz") -> ()
  | _ -> fail "%s: command is not \"fuzz\"" path);
  let fuzz = get path "fuzz" json in
  let runs = Json.to_int (get path "runs" fuzz) in
  if runs < 1 then fail "%s: runs < 1" path;
  ignore (Json.to_int (get path "seed" fuzz));
  let batch = get path "batch" fuzz in
  let cases = Json.to_int (get path "cases" batch) in
  if cases <> runs then fail "%s: batch cases %d != runs %d" path cases runs;
  let reports = Json.to_list (get path "reports" batch) in
  if List.length reports <> runs then
    fail "%s: %d case report(s), expected %d" path (List.length reports) runs;
  List.iter
    (fun r ->
      ignore (Json.to_str (get path "label" r));
      let lb = Json.to_float (get path "lower_bound" r) in
      if not (Float.is_finite lb) then fail "%s: non-finite lower bound" path;
      let solvers = Json.to_list (get path "solvers" r) in
      if List.length solvers < 6 then
        fail "%s: only %d solver(s) in a case report" path (List.length solvers);
      List.iter
        (fun s ->
          ignore (Json.to_str (get path "solver" s));
          let energy = Json.to_float (get path "energy" s) in
          if not (Float.is_finite energy) || energy < 0. then
            fail "%s: non-finite or negative solver energy" path;
          ignore (Json.to_list (get path "violations" s)))
        solvers;
      ignore (Json.to_list (get path "cross" r)))
    reports;
  (match get path "batch" fuzz |> Json.member "ok" with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: fuzz campaign did not certify (batch.ok != true)" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* Report of `dcn resilience --report FILE`: a fault campaign — every
   scenario row carries the injected event, the watchdog's answer and a
   typed repair outcome, the counts partition the rows, and the
   campaign must have certified. *)
let check_resilience path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "resilience") -> ()
  | _ -> fail "%s: command is not \"resilience\"" path);
  let res = get path "resilience" json in
  ignore (Json.to_int (get path "seed" res));
  ignore (Json.to_str (get path "policy" res));
  let scenarios = Json.to_int (get path "scenarios" res) in
  if scenarios < 1 then fail "%s: scenarios < 1" path;
  let rows = Json.to_list (get path "rows" res) in
  if List.length rows <> scenarios then
    fail "%s: %d row(s), expected %d" path (List.length rows) scenarios;
  let count k = Json.to_int (get path k res) in
  if count "repaired" + count "degraded" + count "irreparable" <> scenarios then
    fail "%s: outcome counts do not partition the scenarios" path;
  List.iter
    (fun r ->
      ignore (Json.to_int (get path "index" r));
      ignore (Json.to_str (get path "label" r));
      let event = get path "event" r in
      ignore (Json.to_str (get path "kind" event));
      ignore (Json.to_float (get path "at" event));
      let watchdog = get path "watchdog" r in
      ignore (Json.to_str (get path "algorithm" watchdog));
      let energy = Json.to_float (get path "energy" watchdog) in
      if not (Float.is_finite energy) || energy < 0. then
        fail "%s: non-finite or negative watchdog energy" path;
      let attempts = Json.to_list (get path "attempts" watchdog) in
      if attempts = [] then fail "%s: watchdog recorded no attempts" path;
      List.iter
        (fun a ->
          ignore (Json.to_str (get path "stage" a));
          ignore (Json.to_str (get path "status" a)))
        attempts;
      ignore (Json.to_list (get path "timed_out" watchdog));
      let repair = get path "repair" r in
      let outcome = Json.to_str (get path "outcome" repair) in
      if not (List.mem outcome [ "repaired"; "degraded"; "irreparable" ]) then
        fail "%s: unknown repair outcome %S" path outcome;
      if outcome <> "irreparable" then begin
        ignore (Json.to_float (get path "salvaged" repair));
        ignore (Json.to_list (get path "dropped" repair));
        if Json.to_list (get path "violations" repair) <> [] then
          fail "%s: a %s schedule carries certifier violations" path outcome
      end)
    rows;
  (match Json.member "ok" res with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: fault campaign did not certify (resilience.ok != true)" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* Report of `dcn serve --report FILE` or `dcn replay EVENTS --report
   FILE`: the envelope plus the session's rolling report — outcome
   counts partition the events, interval accounting is consistent, and
   every committed epoch must have certified. *)
let check_serve path =
  let json = parse path in
  let command =
    match Json.member "command" json with
    | Some (Json.Str ("serve" as c)) | Some (Json.Str ("replay" as c)) -> c
    | _ -> fail "%s: command is neither \"serve\" nor \"replay\"" path
  in
  let serve = get path command json in
  (match get path "strict" serve with
  | Json.Bool _ -> ()
  | _ -> fail "%s: strict is not a bool" path);
  if Json.to_int (get path "parse_errors" serve) < 0 then
    fail "%s: negative parse_errors" path;
  let session = get path "session" serve in
  let count k =
    let n = Json.to_int (get path k session) in
    if n < 0 then fail "%s: negative session count %S" path k;
    n
  in
  let clock = Json.to_float (get path "clock" session) in
  if not (Float.is_finite clock) || clock < 0. then
    fail "%s: non-finite or negative clock" path;
  ignore (Json.to_str (get path "policy" session));
  let energy = Json.to_float (get path "energy" session) in
  if not (Float.is_finite energy) || energy < 0. then
    fail "%s: non-finite or negative energy" path;
  if count "committed" + count "degraded" + count "rejected" <> count "events"
  then fail "%s: outcome counts do not partition the events" path;
  if count "events" < 1 then fail "%s: session absorbed no events" path;
  if count "resolved_intervals" < 1 then
    fail "%s: session never solved an interval" path;
  (* The incremental path must have reused previous interval solutions —
     a session that re-solves everything has lost the warm-start. *)
  if count "reused_intervals" < 1 then
    fail "%s: no interval reuse — incremental re-solve regressed" path;
  if count "uncertified_epochs" <> 0 then
    fail "%s: %d committed epoch(s) failed certification" path
      (count "uncertified_epochs");
  (match Json.member "ok" session with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: session did not certify (session.ok != true)" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* Report of `dcn certify --instance FILE` (oracle mode). *)
let check_certify path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "certify") -> ()
  | _ -> fail "%s: command is not \"certify\"" path);
  let cert = get path "certify" json in
  (match Json.member "ok" cert with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: certify.ok != true" path);
  let solvers = Json.to_list (get path "solvers" cert) in
  if List.length solvers < 6 then
    fail "%s: only %d solver(s) certified" path (List.length solvers);
  if Json.to_list (get path "cross" cert) <> [] then
    fail "%s: unexpected cross-solver violations" path

(* Report of `dcn coflow solve --report FILE`: the seeded trace, one
   result per variant (admission + conjunction certificate, both of
   which must have certified), and the Pareto view pairing each
   variant's coflow completion rate with its Eq. (5) energy. *)
let check_coflow path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "coflow-solve") -> ()
  | _ -> fail "%s: command is not \"coflow-solve\"" path);
  let coflow = get path "coflow" json in
  let n = Json.to_int (get path "coflows" coflow) in
  if n < 1 then fail "%s: coflows < 1" path;
  ignore (Json.to_int (get path "seed" coflow));
  let trace = Json.to_list (get path "trace" coflow) in
  if List.length trace <> n then
    fail "%s: %d trace row(s), expected %d" path (List.length trace) n;
  List.iter
    (fun c ->
      ignore (Json.to_int (get path "id" c));
      ignore (Json.to_str (get path "label" c));
      let deadline = Json.to_float (get path "deadline" c) in
      if not (Float.is_finite deadline) then
        fail "%s: non-finite collective deadline" path;
      if Json.to_list (get path "flows" c) = [] then
        fail "%s: a coflow with no members" path)
    trace;
  let results = Json.to_list (get path "results" coflow) in
  if results = [] then fail "%s: no variant results" path;
  List.iter
    (fun r ->
      let adm = get path "admission" r in
      ignore (Json.to_str (get path "variant" adm));
      ignore (Json.to_str (get path "solver" adm));
      let rate = Json.to_float (get path "completion_rate" adm) in
      if not (rate >= 0. && rate <= 1.) then
        fail "%s: completion rate %g out of [0, 1]" path rate;
      let energy = Json.to_float (get path "energy" adm) in
      if not (Float.is_finite energy) || energy < 0. then
        fail "%s: non-finite or negative coflow energy" path;
      let admitted = List.length (Json.to_list (get path "admitted" adm)) in
      let rejected = List.length (Json.to_list (get path "rejected" adm)) in
      if admitted + rejected <> n then
        fail "%s: admitted + rejected (%d) do not partition the %d coflows"
          path (admitted + rejected) n;
      let cert = get path "certificate" r in
      (match Json.member "ok" cert with
      | Some (Json.Bool true) -> ()
      | _ -> fail "%s: a variant's conjunction certificate failed" path);
      if Json.to_list (get path "violations" cert) <> [] then
        fail "%s: certificate carries violations" path)
    results;
  let pareto = Json.to_list (get path "pareto" coflow) in
  if List.length pareto <> List.length results then
    fail "%s: pareto has %d point(s), expected %d" path (List.length pareto)
      (List.length results);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* Trace of `check_kernel.exe --trace FILE`: two back-to-back
   kernel-engine solves.  The flat engine must have traced its
   [fw.kernel] spans (every one closed), and the workspace counters
   must show both an arena growth (first solve) and a reuse (second
   solve) — losing either means the kernel ran boxed or the arenas are
   being rebuilt per solve. *)
let check_kernel_trace path =
  let json = parse path in
  (match Json.member "version" json with
  | Some (Json.Int 1) -> ()
  | _ -> fail "%s: version is not 1" path);
  let events = Json.to_list (get path "events" json) in
  if events = [] then fail "%s: no events recorded" path;
  let prev = ref (-1) in
  List.iter
    (fun e ->
      let seq = Json.to_int (get path "seq" e) in
      if seq <= !prev then fail "%s: seq %d out of order" path seq;
      prev := seq;
      ignore (Json.to_int (get path "t_ns" e));
      ignore (Json.to_int (get path "domain" e));
      ignore (Json.to_str (get path "type" e)))
    events;
  let typed ty e = Json.member "type" e = Some (Json.Str ty) in
  let named name e = Json.member "name" e = Some (Json.Str name) in
  let kernel_spans =
    List.filter (fun e -> typed "span_open" e && named "fw.kernel" e) events
  in
  if List.length kernel_spans < 2 then
    fail "%s: expected >= 2 fw.kernel spans, got %d" path
      (List.length kernel_spans);
  let closed_ids =
    List.filter_map
      (fun e ->
        if typed "span_close" e then Option.map Json.to_int (Json.member "id" e)
        else None)
      events
  in
  List.iter
    (fun s ->
      let id = Json.to_int (get path "id" s) in
      if not (List.mem id closed_ids) then
        fail "%s: fw.kernel span %d never closed" path id)
    kernel_spans;
  let counter_total name =
    List.fold_left
      (fun acc e ->
        if typed "counter" e && named name e then
          acc +. Json.to_float (get path "delta" e)
        else acc)
      0. events
  in
  if counter_total "ws.grow" < 1. then
    fail "%s: no ws.grow counter — arena growth untraced" path;
  if counter_total "ws.reuse" < 1. then
    fail "%s: no ws.reuse counter — workspace reuse regressed" path;
  if counter_total "fw.iters" < 1. then
    fail "%s: no fw.iters counter — the kernel loop went silent" path

(* Snapshot stream + Prometheus exposition of `dcn replay --stats-every
   --stats --metrics` (the @check-stats alias): every line a version-1
   snapshot with strictly increasing seq and monotone uptime, the final
   snapshot showing the serving path's live telemetry — events
   absorbed, apply latencies observed, interval reuse (losing it means
   the incremental path went dark), zero uncertified epochs — and the
   Prometheus file passing the strict text-exposition validator with
   the serving families present. *)
let check_stats snapshots prom =
  let module Snapshot = Dcn_obs.Snapshot in
  let module Slo = Dcn_obs.Slo in
  let snaps =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match Json.of_string line with
          | exception Failure m -> fail "%s: bad snapshot line: %s" snapshots m
          | json -> (
            match Snapshot.of_json json with
            | Ok s -> Some s
            | Error m -> fail "%s: %s" snapshots m))
      (String.split_on_char '\n' (read_file snapshots))
  in
  let last =
    match List.rev snaps with
    | [] -> fail "%s: no snapshot lines" snapshots
    | s :: _ -> s
  in
  let prev_seq = ref 0 and prev_up = ref (-1.) in
  List.iter
    (fun (s : Snapshot.t) ->
      if s.Snapshot.version <> Snapshot.wire_version then
        fail "%s: wire version %d, expected %d" snapshots s.Snapshot.version
          Snapshot.wire_version;
      if s.Snapshot.seq <= !prev_seq then
        fail "%s: snapshot seq %d out of order" snapshots s.Snapshot.seq;
      prev_seq := s.Snapshot.seq;
      if s.Snapshot.uptime_ms < !prev_up then
        fail "%s: uptime went backwards at seq %d" snapshots s.Snapshot.seq;
      prev_up := s.Snapshot.uptime_ms;
      if s.Snapshot.metrics = [] then
        fail "%s: snapshot #%d carries no metrics" snapshots s.Snapshot.seq)
    snaps;
  let slo = Slo.of_snapshot last in
  if slo.Slo.events < 1 then fail "%s: serve.events never incremented" snapshots;
  if slo.Slo.apply_count < 1 then
    fail "%s: no apply-latency observations" snapshots;
  if slo.Slo.reused_intervals < 1 then
    fail "%s: no interval reuse — incremental re-solve telemetry went dark"
      snapshots;
  (match slo.Slo.reuse_ratio with
  | Some r when r > 0. && r <= 1. -> ()
  | _ -> fail "%s: reuse ratio missing or out of range" snapshots);
  if slo.Slo.uncertified <> 0 then
    fail "%s: %d uncertified epoch(s) in telemetry" snapshots slo.Slo.uncertified;
  if slo.Slo.fw_iterations < 1 then
    fail "%s: fw.iterations never incremented" snapshots;
  let text = read_file prom in
  (match Dcn_obs.Expose.validate_prometheus text with
  | Ok () -> ()
  | Error m -> fail "%s: invalid Prometheus exposition: %s" prom m);
  List.iter
    (fun family ->
      if not (List.exists (fun l ->
          String.length l > String.length family + 7
          && String.sub l 0 7 = "# TYPE "
          && String.sub l 7 (String.length family) = family)
          (String.split_on_char '\n' text))
      then fail "%s: family %S missing from exposition" prom family)
    [
      "dcn_serve_events_total";
      "dcn_serve_apply_ms";
      "dcn_fw_iterations_total";
      "dcn_relaxation_intervals_reused_total";
    ]

(* Report of `dcn crash EVENTS --report FILE` (the @check-durable
   alias): a crash-injection campaign against the durable store — the
   gate demands a real campaign (>= 25 kills over a >= 100-event log),
   every row bit-identical, re-certified and with matching redelivered
   outcomes, every torn tail detected, and the recovery arithmetic
   (checkpoint seq + replayed records = kill point) consistent. *)
let check_durable path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "crash") -> ()
  | _ -> fail "%s: command is not \"crash\"" path);
  let crash = get path "crash" json in
  let events = Json.to_int (get path "events" crash) in
  if events < 100 then
    fail "%s: campaign log has %d event(s), the gate wants >= 100" path events;
  let kills = Json.to_int (get path "kills" crash) in
  if kills < 25 then
    fail "%s: %d kill(s), the gate wants >= 25" path kills;
  ignore (Json.to_int (get path "seed" crash));
  if Json.to_int (get path "checkpoint_every" crash) < 1 then
    fail "%s: checkpoint_every < 1" path;
  let rows = Json.to_list (get path "rows" crash) in
  if List.length rows <> kills then
    fail "%s: %d row(s), expected %d" path (List.length rows) kills;
  let tears = ref 0 in
  List.iter
    (fun r ->
      let kill = Json.to_int (get path "kill" r) in
      if kill < 1 || kill > events then
        fail "%s: kill boundary %d outside [1, %d]" path kill events;
      let tear = Json.to_str (get path "tear" r) in
      if not (List.mem tear [ "clean"; "chop"; "flip" ]) then
        fail "%s: unknown tear kind %S" path tear;
      let detected =
        match get path "tear_detected" r with
        | Json.Bool b -> b
        | _ -> fail "%s: tear_detected is not a bool" path
      in
      if detected <> (tear <> "clean") then
        fail "%s: kill %d: tear %S but tear_detected %b" path kill tear detected;
      if tear <> "clean" then incr tears;
      let checkpoint_seq = Json.to_int (get path "checkpoint_seq" r) in
      let replayed = Json.to_int (get path "replayed" r) in
      if checkpoint_seq < 0 || checkpoint_seq > kill then
        fail "%s: kill %d: checkpoint seq %d out of range" path kill
          checkpoint_seq;
      if checkpoint_seq + replayed <> kill then
        fail "%s: kill %d: checkpoint %d + replayed %d != kill point" path kill
          checkpoint_seq replayed;
      List.iter
        (fun k ->
          match get path k r with
          | Json.Bool true -> ()
          | _ -> fail "%s: kill %d: %s is not true" path kill k)
        [ "state_match"; "certified"; "outcomes_match"; "ok" ])
    rows;
  if !tears < 1 then
    fail "%s: no torn-tail kills — the seeded tear injection went dark" path;
  (match Json.member "ok" crash with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: crash campaign did not certify (crash.ok != true)" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* The Chrome export of the same trace must pass the strict shape check
   (known phases, balanced B/E per tid, monotone timestamps, ...). *)
let check_chrome path =
  match Dcn_engine.Profile.validate_chrome (parse path) with
  | Ok () -> ()
  | Error m -> fail "%s: invalid Chrome trace: %s" path m

let () =
  match Sys.argv with
  | [| _; "--fuzz"; report |] ->
    check_fuzz report;
    print_endline "check-json: fuzz report OK"
  | [| _; "--certify"; report |] ->
    check_certify report;
    print_endline "check-json: certify report OK"
  | [| _; "--resilience"; report |] ->
    check_resilience report;
    print_endline "check-json: resilience report OK"
  | [| _; "--serve"; report |] ->
    check_serve report;
    print_endline "check-json: serve report OK"
  | [| _; "--coflow"; report |] ->
    check_coflow report;
    print_endline "check-json: coflow report OK"
  | [| _; "--kernel"; trace |] ->
    check_kernel_trace trace;
    print_endline "check-json: kernel trace OK"
  | [| _; "--stats"; snapshots; prom |] ->
    check_stats snapshots prom;
    print_endline "check-json: stats stream and Prometheus exposition OK"
  | [| _; "--durable"; report |] ->
    check_durable report;
    print_endline "check-json: crash campaign report OK"
  | [| _; trace; report |] ->
    check_trace trace;
    check_report report;
    print_endline "check-json: trace and report OK"
  | [| _; trace; report; chrome |] ->
    check_trace trace;
    check_report report;
    check_chrome chrome;
    print_endline "check-json: trace, report and chrome export OK"
  | _ ->
    prerr_endline
      "usage: check_json.exe TRACE.json REPORT.json [CHROME.json]\n\
      \       check_json.exe --fuzz FUZZ-REPORT.json\n\
      \       check_json.exe --certify CERTIFY-REPORT.json\n\
      \       check_json.exe --resilience RESILIENCE-REPORT.json\n\
      \       check_json.exe --serve SERVE-REPORT.json\n\
      \       check_json.exe --kernel KERNEL-TRACE.json\n\
      \       check_json.exe --stats SNAPSHOTS.jsonl METRICS.prom\n\
      \       check_json.exe --durable CRASH-REPORT.json";
    exit 2
