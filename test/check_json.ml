(* Shape validator for the machine-readable outputs of
   [dcn solve --trace FILE --report FILE], run from the root `check-json`
   alias (itself a `runtest` dependency).  Exits non-zero with a message
   on the first violation, so a regression in the trace or report format
   fails tier-1.

   Usage: check_json.exe TRACE.json REPORT.json [CHROME.json] *)

module Json = Dcn_engine.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check-json: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  try Json.of_string (read_file path)
  with Failure m -> fail "%s: not valid JSON: %s" path m

let get path name json =
  match Json.member name json with
  | Some v -> v
  | None -> fail "%s: missing key %S" path name

let check_trace path =
  let json = parse path in
  (match Json.member "version" json with
  | Some (Json.Int 1) -> ()
  | _ -> fail "%s: version is not 1" path);
  let events = Json.to_list (get path "events" json) in
  if events = [] then fail "%s: no events recorded" path;
  (* Every record carries the envelope keys, and seq is strictly
     increasing (records are emitted sorted). *)
  let prev = ref (-1) in
  List.iter
    (fun e ->
      let seq = Json.to_int (get path "seq" e) in
      if seq <= !prev then fail "%s: seq %d out of order" path seq;
      prev := seq;
      ignore (Json.to_int (get path "t_ns" e));
      ignore (Json.to_int (get path "domain" e));
      ignore (Json.to_str (get path "type" e)))
    events;
  (* The solvers a `solve` run goes through must all have spoken up. *)
  let names =
    List.filter_map (fun e -> Option.map Json.to_str (Json.member "name" e)) events
  in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        fail "%s: no %S event — solver instrumentation lost" path required)
    [ "rs.solve"; "fw.iter"; "mcf.group"; "rs.attempt"; "pool.task" ];
  ignore (get path "counters" json)

let check_report path =
  let json = parse path in
  (match Json.member "command" json with
  | Some (Json.Str "solve") -> ()
  | _ -> fail "%s: command is not \"solve\"" path);
  let solutions = Json.to_list (get path "solutions" json) in
  if List.length solutions <> 2 then
    fail "%s: expected 2 solutions (SP+MCF, RS), got %d" path (List.length solutions);
  List.iter
    (fun s ->
      ignore (Json.to_str (get path "algorithm" s));
      let energy = Json.to_float (get path "energy" s) in
      if not (Float.is_finite energy) || energy < 0. then
        fail "%s: non-finite or negative energy" path;
      ignore (Json.to_list (get path "rates" s)))
    solutions;
  let lb = Json.to_float (get path "lower_bound" json) in
  if not (Float.is_finite lb) then fail "%s: non-finite lower bound" path;
  ignore (get path "sim" json);
  (match get path "metrics" json with
  | Json.List (_ :: _) -> ()
  | _ -> fail "%s: metrics section empty" path);
  match get path "counters" json with
  | Json.Obj _ -> ()
  | _ -> fail "%s: counters is not an object" path

(* The Chrome export of the same trace must pass the strict shape check
   (known phases, balanced B/E per tid, monotone timestamps, ...). *)
let check_chrome path =
  match Dcn_engine.Profile.validate_chrome (parse path) with
  | Ok () -> ()
  | Error m -> fail "%s: invalid Chrome trace: %s" path m

let () =
  match Sys.argv with
  | [| _; trace; report |] ->
    check_trace trace;
    check_report report;
    print_endline "check-json: trace and report OK"
  | [| _; trace; report; chrome |] ->
    check_trace trace;
    check_report report;
    check_chrome chrome;
    print_endline "check-json: trace, report and chrome export OK"
  | _ ->
    prerr_endline "usage: check_json.exe TRACE.json REPORT.json [CHROME.json]";
    exit 2
