(* Dcn_engine.Trace and Json: the observability layer's contracts —
   disabled traces are silent, span trees stay well-formed (also under
   exceptions and across worker domains), parallel emission loses
   nothing, and tracing does not perturb solver results. *)

module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Prng = Dcn_util.Prng

exception Boom

(* --- disabled trace ------------------------------------------------- *)

let test_disabled_is_silent () =
  let t = Trace.create () in
  Alcotest.(check bool) "off" false (Trace.on ());
  Trace.event "ignored";
  Trace.counter "ignored" 1.;
  let v = Trace.span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is transparent" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t)

(* --- span nesting --------------------------------------------------- *)

let spans_balanced records =
  (* Every open is closed exactly once, and closes come after opens. *)
  let open_seq = Hashtbl.create 8 and close_seq = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.record) ->
      match r.entry with
      | Trace.Span_open { id; _ } -> Hashtbl.replace open_seq id r.seq
      | Trace.Span_close { id } -> Hashtbl.replace close_seq id r.seq
      | _ -> ())
    records;
  Hashtbl.length open_seq = Hashtbl.length close_seq
  && Hashtbl.fold
       (fun id o acc ->
         acc
         && match Hashtbl.find_opt close_seq id with
            | Some c -> c > o
            | None -> false)
       open_seq true

let test_span_nesting () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Trace.span "outer" (fun () ->
          Trace.event "in-outer";
          Trace.span "inner" (fun () -> Trace.event "in-inner")));
  let records = Trace.records t in
  let find_open name =
    List.find_map
      (fun (r : Trace.record) ->
        match r.entry with
        | Trace.Span_open { id; parent; name = n; _ } when n = name ->
          Some (id, parent)
        | _ -> None)
      records
  in
  let outer_id, outer_parent = Option.get (find_open "outer") in
  let _, inner_parent = Option.get (find_open "inner") in
  Alcotest.(check (option int)) "outer is a root" None outer_parent;
  Alcotest.(check (option int)) "inner nests under outer" (Some outer_id) inner_parent;
  let event_span name =
    List.find_map
      (fun (r : Trace.record) ->
        match r.entry with
        | Trace.Event { span; name = n; _ } when n = name -> Some span
        | _ -> None)
      records
  in
  Alcotest.(check (option (option int)))
    "event attributed to innermost span" (Some (Some outer_id))
    (event_span "in-outer");
  Alcotest.(check bool) "balanced" true (spans_balanced records)

let test_span_closes_on_exception () =
  let t = Trace.create () in
  (try Trace.with_trace t (fun () -> Trace.span "doomed" (fun () -> raise Boom))
   with Boom -> ());
  Alcotest.(check bool) "balanced after raise" true (spans_balanced (Trace.records t));
  (* The per-domain stack is clean: a following span is again a root. *)
  Trace.with_trace t (fun () -> Trace.span "after" (fun () -> ()));
  let after_parent =
    List.find_map
      (fun (r : Trace.record) ->
        match r.entry with
        | Trace.Span_open { parent; name = "after"; _ } -> Some parent
        | _ -> None)
      (Trace.records t)
  in
  Alcotest.(check (option (option int))) "stack popped" (Some None) after_parent

(* --- parallel emission ---------------------------------------------- *)

let test_parallel_no_loss () =
  let n = 64 in
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map pool
               (fun i ->
                 Trace.event "work" ~fields:[ ("index", Json.Int i) ];
                 i)
               (Array.init n Fun.id))));
  let records = Trace.records t in
  let indices =
    List.filter_map
      (fun (r : Trace.record) ->
        match r.entry with
        | Trace.Event { name = "work"; fields; _ } ->
          List.assoc_opt "index" fields
        | _ -> None)
      records
  in
  Alcotest.(check int) "one event per task" n (List.length indices);
  Alcotest.(check bool) "every index present once" true
    (List.sort compare indices = List.init n (fun i -> Json.Int i));
  (* Sequence numbers are unique, and timestamps never go backwards on
     any single domain. *)
  let seqs = List.map (fun (r : Trace.record) -> r.seq) records in
  Alcotest.(check bool) "seqs unique" true
    (List.length (List.sort_uniq compare seqs) = List.length seqs);
  let last = Hashtbl.create 8 in
  Alcotest.(check bool) "time monotone per domain" true
    (List.for_all
       (fun (r : Trace.record) ->
         let ok =
           match Hashtbl.find_opt last r.domain with
           | Some prev -> Int64.compare r.time_ns prev >= 0
           | None -> true
         in
         Hashtbl.replace last r.domain r.time_ns;
         ok)
       records)

(* Tracing must not change what solvers compute: the pool's
   jobs-invariance contract holds with a collector installed, and the
   traced energy equals the untraced one. *)
let test_jobs_invariance_under_tracing () =
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let rng () = Prng.create 77 in
  let flows = Dcn_flow.Workload.paper_random ~rng:(rng ()) ~graph ~n:10 () in
  let inst =
    Dcn_core.Instance.make ~graph ~power:Dcn_power.Model.quadratic ~flows
  in
  let config =
    {
      Dcn_core.Random_schedule.attempts = 4;
      fw_config =
        { Dcn_mcf.Frank_wolfe.default_config with max_iters = 30; line_search_iters = 20 };
    }
  in
  let solve ~jobs ~traced =
    Pool.with_pool ~jobs (fun pool ->
        let run () =
          (* Workload PRNG state is consumed above; the solver gets its
             own fresh stream so runs are comparable. *)
          (Dcn_core.Random_schedule.solve ~config ~instance:inst
             ~workspace:(Dcn_core.Solver_api.workspace ~pool ~rng:(rng ()) ())
             ~deadline:Dcn_engine.Deadline.never ())
            .Dcn_core.Solution.energy
        in
        if traced then (
          let t = Trace.create () in
          let e = Trace.with_trace t run in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d traced solver emitted" jobs)
            true
            (Trace.length t > 0);
          e)
        else run ())
  in
  let baseline = solve ~jobs:1 ~traced:false in
  List.iter
    (fun jobs ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "jobs=%d traced = untraced jobs=1" jobs)
        baseline
        (solve ~jobs ~traced:true))
    [ 1; 2; 4 ]

(* --- counters -------------------------------------------------------- *)

let test_counters_accumulate () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Trace.counter "hits" 2.;
      Trace.counter "hits" 3.;
      Trace.counter "misses" 1.);
  Alcotest.(check (float 0.)) "hits" 5. (Trace.counter_total t "hits");
  Alcotest.(check (float 0.)) "misses" 1. (Trace.counter_total t "misses");
  Alcotest.(check (float 0.)) "absent" 0. (Trace.counter_total t "nope");
  match Json.member "counters" (Trace.to_json t) with
  | Some (Json.Obj kvs) ->
    Alcotest.(check (list string)) "counter names" [ "hits"; "misses" ]
      (List.sort compare (List.map fst kvs))
  | _ -> Alcotest.fail "counters object missing"

(* --- JSON ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 0.1);
        ("s", Json.Str "line\nbreak \"quoted\" \\ slash");
        ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.Float 3.5 ]);
      ]
  in
  Alcotest.(check bool) "compact roundtrip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "pretty roundtrip" true
    (Json.of_string (Json.to_string ~pretty:true v) = v);
  (* Integral floats print without a decimal point (still valid JSON)
     and reparse as ints — the documented collapse. *)
  Alcotest.(check bool) "integral float collapses to int" true
    (Json.of_string (Json.to_string (Json.Float 3.)) = Json.Int 3)

let test_json_non_finite () =
  Alcotest.(check string) "inf" {|"inf"|} (Json.to_string (Json.float infinity));
  Alcotest.(check string) "-inf" {|"-inf"|} (Json.to_string (Json.float neg_infinity));
  Alcotest.(check string) "nan" {|"nan"|} (Json.to_string (Json.float nan));
  Alcotest.(check (float 0.)) "to_float reads it back" infinity
    (Json.to_float (Json.of_string {|"inf"|}))

let test_json_rejects_garbage () =
  let rejects s =
    Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true
      (try ignore (Json.of_string s); false with Failure _ -> true)
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":1} trailing";
  rejects "'single'"

let test_trace_to_json_parses () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Trace.span "s" ~fields:[ ("k", Json.Int 1) ] (fun () ->
          Trace.event "e" ~fields:[ ("v", Json.float 2.5) ];
          Trace.counter "c" 1.));
  let parsed = Json.of_string (Json.to_string (Trace.to_json t)) in
  Alcotest.(check bool) "version 1" true
    (Json.member "version" parsed = Some (Json.Int 1));
  let events = Json.to_list (Json.get "events" parsed) in
  Alcotest.(check int) "four records" 4 (List.length events);
  List.iter
    (fun e ->
      ignore (Json.to_int (Json.get "seq" e));
      ignore (Json.to_int (Json.get "t_ns" e));
      ignore (Json.to_int (Json.get "domain" e));
      ignore (Json.to_str (Json.get "type" e)))
    events

let suite =
  [
    ( "engine-trace",
      [
        Alcotest.test_case "disabled trace is silent" `Quick test_disabled_is_silent;
        Alcotest.test_case "span nesting and attribution" `Quick test_span_nesting;
        Alcotest.test_case "span closes on exception" `Quick test_span_closes_on_exception;
        Alcotest.test_case "parallel emission loses nothing" `Quick test_parallel_no_loss;
        Alcotest.test_case "jobs-invariance holds under tracing" `Quick
          test_jobs_invariance_under_tracing;
        Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
      ] );
    ( "engine-json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite floats as strings" `Quick test_json_non_finite;
        Alcotest.test_case "rejects malformed input" `Quick test_json_rejects_garbage;
        Alcotest.test_case "trace JSON parses" `Quick test_trace_to_json_parses;
      ] );
  ]
