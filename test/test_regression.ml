(* Regression pins: headline numbers of the reproduction, asserted with
   loose tolerances so refactors that change algorithmic behaviour (as
   opposed to cosmetics) fail loudly.  All runs are deterministic. *)

module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Prng = Dcn_util.Prng
open Dcn_core

let close ?(tol = 0.05) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.4f within %g of %.4f" name actual tol expected)
    true
    (Float.abs (actual -. expected) /. Float.max 1e-9 (Float.abs expected) <= tol)

let example1 () =
  let graph = Builders.line 3 in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ]

let test_example1_numbers () =
  let inst = example1 () in
  (* Phi* = (8 + 6 sqrt 2)^2 / 3 = 90.58816732927… *)
  close ~tol:1e-9 "DCFS optimum"
    (((8. +. (6. *. sqrt 2.)) ** 2.) /. 3.)
    (Baselines.sp_mcf inst).Solution.energy;
  let rng = Prng.create 42 in
  let rs = Random_schedule.solve ~instance:inst ~workspace:(Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  close ~tol:1e-6 "RS interval-density energy" 92. rs.Solution.energy

let test_gadget_numbers () =
  let rng = Prng.create 3 in
  let tp = Gadgets.solvable_three_partition ~m:2 ~b:20 ~rng in
  close ~tol:1e-9 "Theorem 2 closed form" 1600. (Gadgets.three_partition_opt_energy tp);
  let p = Gadgets.make_partition ~integers:[ 3; 4; 5; 3; 4; 5 ] in
  close ~tol:1e-9 "Theorem 3 yes energy" 576. (Gadgets.partition_yes_energy p);
  close ~tol:1e-9 "Theorem 3 ratio" (13. /. 12.) (Gadgets.inapprox_ratio ~alpha:2.)

(* The Figure-2 shape on the quick configuration: RS/LB decreasing,
   SP+MCF/LB increasing, RS below SP at every point. *)
let test_fig2_quick_shape () =
  let params =
    {
      (Dcn_experiments.Fig2.quick_params ~alpha:2.) with
      Dcn_experiments.Fig2.seeds = [ 1001; 1002; 1003 ];
    }
  in
  let res = Dcn_experiments.Fig2.run params in
  let pts = Array.of_list res.Dcn_experiments.Fig2.points in
  Alcotest.(check int) "three points" 3 (Array.length pts);
  Array.iter
    (fun (p : Dcn_experiments.Fig2.point) ->
      Alcotest.(check bool) "RS below SP" true (p.rs < p.sp_mcf);
      Alcotest.(check bool) "deadlines" true p.rs_deadlines_met)
    pts;
  Alcotest.(check bool) "RS converging" true
    (pts.(2).Dcn_experiments.Fig2.rs <= pts.(0).Dcn_experiments.Fig2.rs +. 0.02);
  Alcotest.(check bool) "SP growing" true
    (pts.(2).Dcn_experiments.Fig2.sp_mcf >= pts.(0).Dcn_experiments.Fig2.sp_mcf -. 0.02);
  (* Loose pins on the actual values (seeded, deterministic). *)
  close ~tol:0.1 "RS/LB at n=20" 1.551 pts.(0).Dcn_experiments.Fig2.rs;
  close ~tol:0.1 "SP/LB at n=60" 1.858 pts.(2).Dcn_experiments.Fig2.sp_mcf

let test_splitting_monotone () =
  let rows = Dcn_experiments.Ablation.splitting ~parts:[ 1; 8 ] () in
  match rows with
  | [ one; eight ] ->
    Alcotest.(check bool) "8-way split strictly better" true
      (eight.Dcn_experiments.Ablation.rs_over_lb
      < one.Dcn_experiments.Ablation.rs_over_lb);
    close ~tol:0.1 "split-8 near LB" 1.06 eight.Dcn_experiments.Ablation.rs_over_lb
  | _ -> Alcotest.fail "unexpected rows"

let suite =
  [
    ( "regression",
      [
        Alcotest.test_case "Example 1 energies" `Quick test_example1_numbers;
        Alcotest.test_case "gadget closed forms" `Quick test_gadget_numbers;
        Alcotest.test_case "fig2 quick shape" `Slow test_fig2_quick_shape;
        Alcotest.test_case "splitting monotone" `Slow test_splitting_monotone;
      ] );
  ]
