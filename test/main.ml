let () =
  Alcotest.run "dcnsched"
    (List.concat
       [
         Test_util.suite;
         Test_topology.suite;
         Test_power.suite;
         Test_flow.suite;
         Test_speed_scaling.suite;
         Test_mcf.suite;
         Test_sched.suite;
         Test_core.suite;
         Test_sim.suite;
         Test_experiments.suite;
         Test_more.suite;
         Test_more2.suite;
         Test_props.suite;
         Test_regression.suite;
         Test_more3.suite;
         Test_engine.suite;
         Test_trace.suite;
         Test_profile.suite;
         Test_check.suite;
         Test_resilience.suite;
         Test_serve.suite;
         Test_coflow.suite;
         Test_obs.suite;
       ])
