(* Dcn_engine.Profile: histogram algebra (merge is a commutative
   monoid on the bucket state, quantile estimates bracket the exact
   ones), span-tree accounting (self = total - children, nothing lost
   across domains), GC attribution, the Chrome export's validity, and
   the diff's regression verdicts. *)

module Trace = Dcn_engine.Trace
module Profile = Dcn_engine.Profile
module Hist = Dcn_engine.Profile.Hist
module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool

(* --- histograms ------------------------------------------------------ *)

let hist_of values =
  let h = Hist.create () in
  List.iter (Hist.add h) values;
  h

(* Merge must not depend on grouping or order: counts, extremes and
   bucket tables are integer/exact state, the float total is compared
   with a tolerance. *)
let same_hist a b =
  Hist.count a = Hist.count b
  && Hist.buckets a = Hist.buckets b
  && (Hist.count a = 0
      || (Hist.min_value a = Hist.min_value b
         && Hist.max_value a = Hist.max_value b
         && Float.abs (Hist.total a -. Hist.total b)
            <= 1e-9 *. Float.max 1. (Float.abs (Hist.total a))))

let pos_floats = QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pos_float))

let prop_merge_commutative =
  QCheck.Test.make ~name:"hist: merge commutes" ~count:100
    QCheck.(pair pos_floats pos_floats)
    (fun (xs, ys) ->
      same_hist (Hist.merge (hist_of xs) (hist_of ys)) (Hist.merge (hist_of ys) (hist_of xs)))

let prop_merge_associative =
  QCheck.Test.make ~name:"hist: merge associates" ~count:100
    QCheck.(triple pos_floats pos_floats pos_floats)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      same_hist (Hist.merge (Hist.merge a b) c) (Hist.merge a (Hist.merge b c)))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"hist: merge = histogram of concatenation" ~count:100
    QCheck.(pair pos_floats pos_floats)
    (fun (xs, ys) ->
      same_hist (Hist.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)))

(* The estimate and the exact quantile (same rank convention:
   [ceil (q*n)]) sit in the same log bucket, so they differ by at most
   the bucket width. *)
let exact_quantile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let quantile_brackets values =
  let h = hist_of values in
  List.for_all
    (fun q ->
      let est = Hist.quantile h q and exact = exact_quantile values q in
      if exact = 0. then est = 0.
      else est >= exact /. Hist.width -. 1e-12 && est <= exact *. Hist.width +. 1e-12)
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_quantiles_known_distributions () =
  (* Uniform grid, geometric, heavy-tailed, constants, and a single
     sample. *)
  let uniform = List.init 1000 (fun i -> float_of_int (i + 1)) in
  let geometric = List.init 200 (fun i -> 1.5 ** float_of_int (i mod 40)) in
  let heavy = List.init 500 (fun i -> 1. /. (1. -. (float_of_int i /. 501.))) in
  List.iter
    (fun values ->
      Alcotest.(check bool) "estimate within one bucket of exact" true
        (quantile_brackets values))
    [ uniform; geometric; heavy; [ 42.; 42.; 42. ]; [ 7. ] ];
  Alcotest.(check (float 0.)) "empty quantile is nan" nan
    (Hist.quantile (Hist.create ()) 0.5);
  Alcotest.(check (float 0.)) "zero samples land in the zero bucket" 0.
    (Hist.quantile (hist_of [ 0.; 0. ]) 0.9)

let prop_quantile_brackets =
  QCheck.Test.make ~name:"hist: quantiles bracket exact ranks" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) pos_float)
    quantile_brackets

(* --- span accounting ------------------------------------------------- *)

(* Hand-built record lists give exact expected times.  Helper: a record
   with no GC sample. *)
let rec_ seq t domain entry = { Trace.seq; time_ns = Int64.of_int t; domain; entry; gc = None }

let open_ ?parent seq t id name = rec_ seq t 0 (Trace.Span_open { id; parent; name; fields = [] })
let close seq t id = rec_ seq t 0 (Trace.Span_close { id })

let test_self_time_accounting () =
  (* a: [0,100] with children b: [10,30] and c: [40,70]; b has child
     d: [15,25].  Exact: a.self = 100-20-30 = 50, b.self = 20-10 = 10. *)
  let records =
    [
      open_ 0 0 1 "a";
      open_ ~parent:1 1 10 2 "b";
      open_ ~parent:2 2 15 3 "d";
      close 3 25 3;
      close 4 30 2;
      open_ ~parent:1 5 40 4 "c";
      close 6 70 4;
      close 7 100 1;
    ]
  in
  let p = Profile.of_records records in
  let stat name = Option.get (Profile.find p name) in
  Alcotest.(check (float 1e-9)) "a total" 100. (stat "a").Profile.total_ns;
  Alcotest.(check (float 1e-9)) "a self = total - children" 50. (stat "a").Profile.self_ns;
  Alcotest.(check (float 1e-9)) "b total" 20. (stat "b").Profile.total_ns;
  Alcotest.(check (float 1e-9)) "b self" 10. (stat "b").Profile.self_ns;
  Alcotest.(check (float 1e-9)) "d self = total (leaf)" 10. (stat "d").Profile.self_ns;
  Alcotest.(check int) "no unclosed spans" 0 p.Profile.unclosed;
  (* Conservation: summed self time equals the root's total. *)
  let self_sum = List.fold_left (fun acc s -> acc +. s.Profile.self_ns) 0. p.Profile.spans in
  Alcotest.(check (float 1e-9)) "self times sum to root total" 100. self_sum

let test_truncated_trace_closes_spans () =
  (* The close records never made it to disk: both spans are closed at
     the domain's last timestamp and counted as unclosed. *)
  let records = [ open_ 0 0 1 "a"; open_ ~parent:1 1 10 2 "b"; rec_ 2 60 0 (Trace.Event { span = Some 2; name = "last"; fields = [] }) ] in
  let p = Profile.of_records records in
  Alcotest.(check int) "two unclosed" 2 p.Profile.unclosed;
  Alcotest.(check (float 1e-9)) "a charged to last timestamp" 60.
    (Option.get (Profile.find p "a")).Profile.total_ns;
  Alcotest.(check (float 1e-9)) "a self excludes b" 10.
    (Option.get (Profile.find p "a")).Profile.self_ns

(* Profiling a real multi-domain pool trace loses no spans: every
   pool-mapped task wraps one span, and the profile sees all of them. *)
let test_multi_domain_no_span_loss () =
  let n = 64 in
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map pool
               (fun i -> Trace.span "task" (fun () -> i * i))
               (Array.init n Fun.id))));
  let p = Profile.of_trace t in
  let task = Option.get (Profile.find p "task") in
  Alcotest.(check int) "every span profiled" n task.Profile.count;
  Alcotest.(check int) "histogram saw every call" n (Hist.count task.Profile.hist);
  Alcotest.(check int) "none unclosed" 0 p.Profile.unclosed

(* --- GC attribution -------------------------------------------------- *)

let test_gc_attribution () =
  let t = Trace.create () in
  let sink = ref [] in
  Trace.with_trace t (fun () ->
      Trace.span "alloc" (fun () ->
          (* A few hundred kwords of minor allocation. *)
          for _ = 1 to 1000 do
            sink := Array.make 100 0. :: !sink
          done));
  ignore (Sys.opaque_identity !sink);
  let p = Profile.of_trace t in
  let s = Option.get (Profile.find p "alloc") in
  Alcotest.(check bool) "minor words attributed" true (s.Profile.minor_words > 10_000.);
  (* The samples round-trip through the JSON trace format. *)
  let p' = Profile.of_records (Trace.records_of_json (Json.of_string (Json.to_string (Trace.to_json t)))) in
  let s' = Option.get (Profile.find p' "alloc") in
  Alcotest.(check (float 1.)) "GC delta survives JSON round trip"
    s.Profile.minor_words s'.Profile.minor_words

(* --- counters and round trip ----------------------------------------- *)

let test_counter_timeline () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Trace.counter "work" 2.;
      Trace.counter "work" 3.;
      Trace.counter "work" (-1.));
  let p = Profile.of_trace t in
  (match List.assoc_opt "work" p.Profile.counters with
  | Some points ->
    Alcotest.(check (list (float 1e-9))) "cumulative timeline" [ 2.; 5.; 4. ]
      (List.map (fun (pt : Profile.counter_point) -> pt.Profile.total) points)
  | None -> Alcotest.fail "counter series missing");
  Alcotest.(check (list (pair string (float 1e-9)))) "Trace.counters totals"
    [ ("work", 4.) ] (Trace.counters t)

let test_records_json_roundtrip () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Trace.span "s" ~fields:[ ("k", Json.Int 1) ] (fun () ->
          Trace.event "e" ~fields:[ ("v", Json.float 2.5) ];
          Trace.counter "c" 1.5));
  let back = Trace.records_of_json (Json.of_string (Json.to_string (Trace.to_json t))) in
  let strip (r : Trace.record) = (r.Trace.seq, r.Trace.domain, r.Trace.entry) in
  Alcotest.(check bool) "entries identical after round trip" true
    (List.map strip (Trace.records t) = List.map strip back)

(* --- Chrome export --------------------------------------------------- *)

let test_chrome_export_valid () =
  let t = Trace.create () in
  Trace.with_trace t (fun () ->
      Pool.with_pool ~jobs:3 (fun pool ->
          ignore
            (Pool.map pool
               (fun i ->
                 Trace.span "chunk" (fun () ->
                     Trace.event "tick";
                     Trace.counter "done" 1.);
                 i)
               (Array.init 16 Fun.id))));
  let chrome = Profile.to_chrome (Trace.records t) in
  (* Reparse from text: the export must be self-contained JSON. *)
  let reparsed = Json.of_string (Json.to_string chrome) in
  (match Profile.validate_chrome reparsed with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("chrome export invalid: " ^ m));
  let events = Json.to_list (Json.get "traceEvents" reparsed) in
  let count ?name ph =
    List.length
      (List.filter
         (fun e ->
           Json.member "ph" e = Some (Json.Str ph)
           && match name with
              | None -> true
              | Some n -> Json.member "name" e = Some (Json.Str n))
         events)
  in
  Alcotest.(check int) "one B per span" 16 (count ~name:"chunk" "B");
  Alcotest.(check int) "E count matches B count" (count "B") (count "E");
  Alcotest.(check int) "one C per counter bump" 16 (count ~name:"done" "C");
  (* The pool's own pool.map/pool.task instants ride along. *)
  Alcotest.(check int) "one instant per event" 16 (count ~name:"tick" "i")

let test_validate_chrome_rejects () =
  let rejects json =
    match Profile.validate_chrome json with Ok () -> false | Error _ -> true
  in
  let ev fields = Json.Obj fields in
  let wrap l = Json.Obj [ ("traceEvents", Json.List l) ] in
  Alcotest.(check bool) "empty rejected" true (rejects (wrap []));
  Alcotest.(check bool) "unknown phase rejected" true
    (rejects
       (wrap [ ev [ ("name", Json.Str "x"); ("ph", Json.Str "X"); ("ts", Json.Int 0); ("pid", Json.Int 1); ("tid", Json.Int 0) ] ]));
  Alcotest.(check bool) "unbalanced E rejected" true
    (rejects
       (wrap [ ev [ ("ph", Json.Str "E"); ("ts", Json.Int 0); ("pid", Json.Int 1); ("tid", Json.Int 0) ] ]));
  Alcotest.(check bool) "unclosed B rejected" true
    (rejects
       (wrap [ ev [ ("name", Json.Str "x"); ("ph", Json.Str "B"); ("ts", Json.Int 0); ("pid", Json.Int 1); ("tid", Json.Int 0) ] ]))

(* --- diff ------------------------------------------------------------ *)

let test_diff_regressions () =
  let profile_of spans =
    Profile.of_records
      (List.concat
         (List.mapi
            (fun i (name, dur) ->
              let id = i + 1 and base = i * 1_000_000 in
              [ open_ (4 * i) base id name; close ((4 * i) + 1) (base + dur) id ])
            spans))
  in
  (* 1 ms -> 2 ms is a 100% regression; 1 ms -> 1.1 ms is within 25%;
     the 0.1 ms absolute floor forgives the tiny span's tripling (a
     20 us growth is below 25% of the floor). *)
  let a = profile_of [ ("hot", 1_000_000); ("ok", 1_000_000); ("tiny", 10_000) ] in
  let b = profile_of [ ("hot", 2_000_000); ("ok", 1_100_000); ("tiny", 30_000) ] in
  let deltas = Profile.diff ~a ~b in
  let names l = List.map (fun (d : Profile.span_delta) -> d.Profile.d_name) l in
  Alcotest.(check (list string)) "only the hot span regresses at 25%" [ "hot" ]
    (names (Profile.regressions ~tolerance:0.25 deltas));
  Alcotest.(check (list string)) "tighter tolerance catches the rest"
    [ "hot"; "ok"; "tiny" ]
    (List.sort compare (names (Profile.regressions ~tolerance:0.05 deltas)));
  Alcotest.(check (list string)) "identical profiles never regress" []
    (names (Profile.regressions ~tolerance:0. (Profile.diff ~a ~b:a)));
  (* A span new in b is reported but is not a regression. *)
  let b' = profile_of [ ("hot", 1_000_000); ("fresh", 5_000_000) ] in
  let deltas' = Profile.diff ~a ~b:b' in
  Alcotest.(check bool) "new span present in the diff" true
    (List.mem "fresh" (names deltas'));
  Alcotest.(check (list string)) "new span is not a regression" []
    (names (Profile.regressions ~tolerance:0.25 deltas'))

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "engine-profile",
      [
        qt prop_merge_commutative;
        qt prop_merge_associative;
        qt prop_merge_is_concat;
        qt prop_quantile_brackets;
        Alcotest.test_case "quantiles on known distributions" `Quick
          test_quantiles_known_distributions;
        Alcotest.test_case "self time = total - children (exact)" `Quick
          test_self_time_accounting;
        Alcotest.test_case "truncated traces close at last timestamp" `Quick
          test_truncated_trace_closes_spans;
        Alcotest.test_case "multi-domain pool trace loses no spans" `Quick
          test_multi_domain_no_span_loss;
        Alcotest.test_case "GC allocation attributed to spans" `Quick test_gc_attribution;
        Alcotest.test_case "counter timelines accumulate" `Quick test_counter_timeline;
        Alcotest.test_case "records round-trip through trace JSON" `Quick
          test_records_json_roundtrip;
        Alcotest.test_case "chrome export is valid" `Quick test_chrome_export_valid;
        Alcotest.test_case "chrome validator rejects malformed traces" `Quick
          test_validate_chrome_rejects;
        Alcotest.test_case "diff flags only true regressions" `Quick test_diff_regressions;
      ] );
  ]
