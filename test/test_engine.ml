(* Dcn_engine: the domain pool and its determinism contract. *)

module Pool = Dcn_engine.Pool
module Prng = Dcn_util.Prng

exception Boom of int

let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            expected (Pool.map pool f input)))
    [ 1; 2; 4 ]

let test_map_list () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int))
        "map_list preserves order" [ 2; 4; 6; 8 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_map_reduce_order () =
  (* String concatenation is not commutative: a deterministic in-order
     fold is observable. *)
  let input = Array.init 20 string_of_int in
  let expected = String.concat "," (Array.to_list input) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let got =
            Pool.map_reduce pool ~map:Fun.id
              ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
              ~init:"" input
          in
          Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) expected got))
    [ 1; 2; 4 ]

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* The lowest-index failure is the one re-raised. *)
      (match Pool.map pool (fun i -> if i >= 5 then raise (Boom i) else i)
               (Array.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 5 i);
      (* The same pool keeps working afterwards. *)
      Alcotest.(check (array int))
        "pool reusable after error" [| 0; 1; 4; 9 |]
        (Pool.map pool (fun i -> i * i) (Array.init 4 Fun.id)))

let test_nested_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let got =
        Pool.map pool
          (fun i -> Array.fold_left ( + ) 0 (Pool.map pool (fun j -> i + j) [| 1; 2; 3 |]))
          (Array.init 6 Fun.id)
      in
      Alcotest.(check (array int))
        "nested map runs sequentially in the worker"
        (Array.init 6 (fun i -> (3 * i) + 6))
        got)

let test_split_rngs_deterministic () =
  let draws seed =
    let streams = Pool.split_rngs (Prng.create seed) 8 in
    Array.map (fun rng -> Prng.int rng 1_000_000) streams
  in
  Alcotest.(check (array int)) "same seed, same streams" (draws 7) (draws 7);
  Alcotest.(check bool) "streams differ across indices" true
    (Array.length (draws 7) = 8
    &&
    let d = draws 7 in
    Array.exists (fun x -> x <> d.(0)) d)

let test_default_jobs_env () =
  (* DCN_JOBS is read at call time. *)
  Unix.putenv "DCN_JOBS" "3";
  Alcotest.(check int) "DCN_JOBS=3" 3 (Pool.default_jobs ());
  Unix.putenv "DCN_JOBS" "nonsense";
  Alcotest.(check int) "unparsable -> 1" 1 (Pool.default_jobs ());
  Unix.putenv "DCN_JOBS" "0";
  Alcotest.(check bool) "0 -> one per core" true (Pool.default_jobs () >= 1);
  Unix.putenv "DCN_JOBS" ""

(* ------------------------------------------------------------------ *)
(* Solver determinism across pool sizes                               *)
(* ------------------------------------------------------------------ *)

let quick_fw =
  { Dcn_mcf.Frank_wolfe.default_config with max_iters = 40; gap_tol = 1e-3 }

let test_random_schedule_jobs_invariant () =
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.quadratic in
  let solve jobs =
    Pool.with_pool ~jobs (fun pool ->
        let rng = Prng.create 5 in
        let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:12 () in
        let inst = Dcn_core.Instance.make ~graph ~power ~flows in
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config = quick_fw }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~pool ~rng ())
          ~deadline:Dcn_engine.Deadline.never ())
  in
  let base = solve 1 in
  List.iter
    (fun jobs ->
      let rs = solve jobs in
      Alcotest.(check (float 0.)) (Printf.sprintf "energy jobs=%d" jobs)
        base.Dcn_core.Solution.energy rs.Dcn_core.Solution.energy;
      Alcotest.(check bool) (Printf.sprintf "paths jobs=%d" jobs) true
        (Dcn_core.Solution.paths base = Dcn_core.Solution.paths rs);
      Alcotest.(check int) (Printf.sprintf "attempts jobs=%d" jobs)
        (Dcn_core.Solution.attempts_used base)
        (Dcn_core.Solution.attempts_used rs))
    [ 2; 4 ]

let test_fig2_jobs_invariant () =
  (* A trimmed Figure-2 sweep renders identically for every pool size:
     the acceptance criterion of the engine. *)
  let params =
    {
      (Dcn_experiments.Fig2.quick_params ~alpha:2.) with
      Dcn_experiments.Fig2.flow_counts = [ 10; 20 ];
      seeds = [ 1001; 1002 ];
      rs_attempts = 5;
    }
  in
  let render jobs =
    Pool.with_pool ~jobs (fun pool ->
        Dcn_experiments.Fig2.render (Dcn_experiments.Fig2.run ~pool params))
  in
  let base = render 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string) (Printf.sprintf "render jobs=%d" jobs) base
        (render jobs))
    [ 2; 4 ]

let test_fuzz_jobs_invariant () =
  (* The whole fuzz pipeline — generation, every solver, certification,
     cross checks, JSON — is bit-identical for every pool size
     (satellite of the Dcn_check subsystem). *)
  let cases = Dcn_check.Gen.batch ~seed:11 ~n:6 in
  let report jobs =
    Pool.with_pool ~jobs (fun pool ->
        Dcn_engine.Json.to_string
          (Dcn_check.Oracle.batch_to_json (Dcn_check.Oracle.run_batch ~pool cases)))
  in
  let base = report 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string) (Printf.sprintf "fuzz report jobs=%d" jobs) base
        (report jobs))
    [ 2; 4 ]

let test_rs_rejects_bad_attempts () =
  let graph = Dcn_topology.Builders.line 3 in
  let power = Dcn_power.Model.quadratic in
  let f = Dcn_flow.Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows:[ f ] in
  Alcotest.check_raises "attempts = 0 rejected"
    (Invalid_argument "Random_schedule.solve: attempts must be >= 1 (got 0)")
    (fun () ->
      ignore
        (Dcn_core.Random_schedule.solve
           ~config:{ Dcn_core.Random_schedule.attempts = 0; fw_config = quick_fw }
           ~instance:inst
           ~workspace:(Dcn_core.Solver_api.workspace ~rng:(Prng.create 1) ())
           ~deadline:Dcn_engine.Deadline.never ()))

let suite =
  [
    ( "engine-pool",
      [
        Alcotest.test_case "map = sequential map" `Quick test_map_matches_sequential;
        Alcotest.test_case "map_list order" `Quick test_map_list;
        Alcotest.test_case "map_reduce in-order fold" `Quick test_map_reduce_order;
        Alcotest.test_case "exception propagation + reuse" `Quick
          test_exception_propagates_and_pool_survives;
        Alcotest.test_case "nested map" `Quick test_nested_map;
        Alcotest.test_case "split_rngs deterministic" `Quick
          test_split_rngs_deterministic;
        Alcotest.test_case "DCN_JOBS parsing" `Quick test_default_jobs_env;
      ] );
    ( "engine-determinism",
      [
        Alcotest.test_case "random-schedule invariant under jobs" `Slow
          test_random_schedule_jobs_invariant;
        Alcotest.test_case "figure-2 render invariant under jobs" `Slow
          test_fig2_jobs_invariant;
        Alcotest.test_case "fuzz oracle invariant under jobs" `Slow
          test_fuzz_jobs_invariant;
        Alcotest.test_case "attempts < 1 rejected" `Quick test_rs_rejects_bad_attempts;
      ] );
  ]
