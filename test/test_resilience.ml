(* Dcn_resilience: fault injection, schedule repair, the watchdog and
   campaign-level jobs-invariance. *)

module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Deadline = Dcn_engine.Deadline
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Instance = Dcn_core.Instance
module Serialize = Dcn_core.Serialize
module Schedule = Dcn_sched.Schedule
module Fault = Dcn_resilience.Fault
module Repair = Dcn_resilience.Repair
module Watchdog = Dcn_resilience.Watchdog
module Campaign = Dcn_resilience.Campaign

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus name =
  let inst =
    Serialize.instance_of_string (read_file ("corpus/" ^ name ^ ".instance"))
  in
  let sched =
    Serialize.schedule_of_string inst (read_file ("corpus/" ^ name ^ ".schedule"))
  in
  (inst, sched)

let quick_repair =
  { Repair.default_config with attempts = 5 }

(* ------------------------- fault determinism ----------------------- *)

let test_fault_campaign_deterministic () =
  let a = Fault.campaign ~seed:42 ~n:6 in
  let b = Fault.campaign ~seed:42 ~n:6 in
  Array.iter2
    (fun (x : Fault.scenario) (y : Fault.scenario) ->
      Alcotest.(check string) "label" x.Fault.label y.Fault.label;
      Alcotest.(check string)
        "event"
        (Json.to_string (Fault.event_to_json x.Fault.event))
        (Json.to_string (Fault.event_to_json y.Fault.event)))
    a b;
  (* A different seed draws different faults. *)
  let c = Fault.campaign ~seed:43 ~n:6 in
  Alcotest.(check bool) "seed matters" true
    (Array.exists2
       (fun (x : Fault.scenario) (y : Fault.scenario) ->
         Json.to_string (Fault.event_to_json x.Fault.event)
         <> Json.to_string (Fault.event_to_json y.Fault.event))
       a c)

let test_fault_events_well_formed () =
  Array.iter
    (fun (s : Fault.scenario) ->
      let t0, t1 = Instance.horizon s.Fault.instance in
      let at = Fault.at s.Fault.event in
      Alcotest.(check bool) "strike inside horizon" true (at > t0 && at < t1);
      match s.Fault.event with
      | Fault.Cable_cut { cables; _ } | Fault.Degradation { cables; _ } ->
        let total = Graph.num_cables s.Fault.instance.Instance.graph in
        Alcotest.(check bool) "some cable" true (cables <> []);
        Alcotest.(check bool) "never the whole fabric (unless one cable)" true
          (total = 1 || List.length cables < total)
      | Fault.Burst { flows; at } ->
        List.iter
          (fun (f : Flow.t) ->
            Alcotest.(check bool) "burst released after the strike" true
              (f.release >= at))
          flows)
    (Fault.campaign ~seed:7 ~n:20)

(* ------------------------------ repair ----------------------------- *)

let repair_certified ~policy inst committed event =
  match
    Repair.repair ~config:quick_repair ~policy ~rng:(Prng.create 11) ~committed
      ~event inst
  with
  | Repair.Repaired d | Repair.Degraded d ->
    Alcotest.(check (list string))
      "repaired schedule certifies" []
      (List.map Dcn_check.Certify.kind d.Repair.violations);
    d
  | Repair.Irreparable { reason; _ } ->
    Alcotest.failf "unexpectedly irreparable: %s" reason

let test_repair_cable_cut_corpus () =
  let inst, committed = corpus "pass" in
  (* Cut the cable to host 2 mid-schedule: flow 0 (0->2) is stranded
     with volume left, flow 1 (0->1) still has a route. *)
  let cut = Fault.Cable_cut { at = 1.; cables = [ 2 ] } in
  let d = repair_certified ~policy:Repair.Drop_latest_deadline inst committed cut in
  Alcotest.(check (list int)) "stranded flow dropped" [ 0 ]
    (List.map (fun (f : Flow.t) -> f.Flow.id) d.Repair.dropped);
  (* Each flow had delivered half its volume by t=1. *)
  Alcotest.(check (float 1e-9)) "salvage" 3. d.Repair.salvaged;
  (match d.Repair.residual with
  | Some residual ->
    Alcotest.(check int) "flow 1 re-planned" 1 (Instance.num_flows residual)
  | None -> Alcotest.fail "expected a residual instance");
  (* Reject_new refuses to shed a pre-fault flow: irreparable. *)
  match
    Repair.repair ~config:quick_repair ~policy:Repair.Reject_new
      ~rng:(Prng.create 11) ~committed ~event:cut inst
  with
  | Repair.Irreparable _ -> ()
  | o -> Alcotest.failf "expected irreparable, got %s" (Repair.outcome_kind o)

let test_repair_degradation_and_burst () =
  let inst, committed = corpus "pass" in
  (* Degrade capacity: the committed peak rate is 3 (both flows share
     link 0), so a 0.9 clamp forces a re-plan below rate 2.7. *)
  let event = Fault.Degradation { at = 1.; cables = [ 0 ]; factor = 0.9 } in
  let d = repair_certified ~policy:Repair.Drop_largest_residual inst committed event in
  (match d.Repair.residual with
  | Some residual ->
    Alcotest.(check bool) "cap clamped" true
      (residual.Instance.power.Dcn_power.Model.cap < 3.)
  | None -> Alcotest.fail "expected a residual instance");
  (* Burst arrivals are admitted (drop policies) or rejected wholesale
     (Reject_new) — both must certify. *)
  let extra = Flow.make ~id:9 ~src:2 ~dst:0 ~volume:1. ~release:1.2 ~deadline:3. in
  let burst = Fault.Burst { at = 1.; flows = [ extra ] } in
  let d = repair_certified ~policy:Repair.Drop_latest_deadline inst committed burst in
  (match d.Repair.residual with
  | Some residual ->
    Alcotest.(check bool) "burst admitted" true
      (Option.is_some (Instance.find_flow_opt residual 9))
  | None -> Alcotest.fail "expected a residual instance");
  let d = repair_certified ~policy:Repair.Reject_new inst committed burst in
  Alcotest.(check (list int)) "burst rejected" [ 9 ]
    (List.map (fun (f : Flow.t) -> f.Flow.id) d.Repair.dropped)

let test_repair_never_raises () =
  (* A committed schedule interrupted by every fault the generator can
     draw, under every policy: always a typed outcome. *)
  Array.iter
    (fun (s : Fault.scenario) ->
      let committed =
        Dcn_core.Selfcheck.without (fun () ->
            (Dcn_core.Greedy_ear.solve ~instance:s.Fault.instance
               ~workspace:(Dcn_core.Solver_api.workspace ())
               ~deadline:Dcn_engine.Deadline.never ())
              .Dcn_core.Solution.schedule)
      in
      List.iter
        (fun policy ->
          let outcome =
            Repair.repair ~config:quick_repair ~policy ~rng:(Prng.create 3)
              ~committed ~event:s.Fault.event s.Fault.instance
          in
          match outcome with
          | Repair.Repaired d | Repair.Degraded d ->
            Alcotest.(check (list string))
              (s.Fault.label ^ " certifies")
              []
              (List.map Dcn_check.Certify.kind d.Repair.violations)
          | Repair.Irreparable _ -> ())
        [ Repair.Drop_latest_deadline; Repair.Drop_largest_residual; Repair.Reject_new ])
    (Fault.campaign ~seed:5 ~n:6)

(* ----------------------------- watchdog ---------------------------- *)

let test_watchdog_zero_budget_falls_back () =
  let inst, _ = corpus "pass" in
  let config = { Watchdog.default_config with budget_ms = Some 0. } in
  let answer = Watchdog.solve ~config ~rng:(Prng.create 1) inst in
  Alcotest.(check string) "greedy answers" "greedy-ear" answer.Watchdog.algorithm;
  Alcotest.(check (list string))
    "guarded stages expired"
    [ "exact"; "random-schedule" ]
    (Watchdog.timed_out answer);
  Alcotest.(check bool) "feasible" true answer.Watchdog.feasible;
  (* Deterministic: the same structure every run. *)
  let again = Watchdog.solve ~config ~rng:(Prng.create 99) inst in
  Alcotest.(check string) "same json"
    (Json.to_string (Watchdog.answer_to_json answer))
    (Json.to_string (Watchdog.answer_to_json again));
  (* The fallback's schedule still certifies. *)
  Alcotest.(check (list string))
    "fallback certifies" []
    (List.map Dcn_check.Certify.kind
       (Dcn_check.Certify.schedule ~reported_energy:answer.Watchdog.energy inst
          answer.Watchdog.schedule))

let test_watchdog_unbudgeted_answers_exact () =
  let inst, _ = corpus "pass" in
  let answer = Watchdog.solve ~rng:(Prng.create 1) inst in
  Alcotest.(check string) "exact answers" "exact" answer.Watchdog.algorithm;
  Alcotest.(check (list string)) "nothing expired" [] (Watchdog.timed_out answer);
  Alcotest.(check bool) "solution carried" true (Option.is_some answer.Watchdog.solution)

let test_watchdog_honours_ambient_deadline () =
  let inst, _ = corpus "pass" in
  (* An enclosing expired deadline beats the watchdog's own infinite
     budget: the guarded stages fall through, greedy still answers. *)
  let answer =
    Deadline.with_budget ~ms:0. (fun () ->
        Watchdog.solve ~rng:(Prng.create 1) inst)
  in
  Alcotest.(check string) "greedy answers" "greedy-ear" answer.Watchdog.algorithm

(* ----------------------------- campaign ---------------------------- *)

let campaign_json ~jobs =
  let pool = Pool.create ~jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Json.to_string
        (Campaign.to_json
           (Campaign.run ~pool ~policy:Repair.Drop_latest_deadline ~seed:42 ~n:8 ())))

let test_campaign_jobs_invariance () =
  Alcotest.(check string)
    "jobs 1 = jobs 4" (campaign_json ~jobs:1) (campaign_json ~jobs:4)

let test_campaign_certifies () =
  let t = Campaign.run ~policy:Repair.Drop_largest_residual ~seed:9 ~n:6 () in
  Alcotest.(check bool) "campaign ok" true (Campaign.ok t);
  Alcotest.(check int) "counts partition" (Array.length t.Campaign.rows)
    (t.Campaign.repaired + t.Campaign.degraded + t.Campaign.irreparable)

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "fault campaign deterministic" `Quick
          test_fault_campaign_deterministic;
        Alcotest.test_case "fault events well-formed" `Quick
          test_fault_events_well_formed;
        Alcotest.test_case "repair cable cut (corpus)" `Quick
          test_repair_cable_cut_corpus;
        Alcotest.test_case "repair degradation and burst" `Quick
          test_repair_degradation_and_burst;
        Alcotest.test_case "repair never raises" `Quick test_repair_never_raises;
        Alcotest.test_case "watchdog 0ms falls back" `Quick
          test_watchdog_zero_budget_falls_back;
        Alcotest.test_case "watchdog unbudgeted answers exact" `Quick
          test_watchdog_unbudgeted_answers_exact;
        Alcotest.test_case "watchdog honours ambient deadline" `Quick
          test_watchdog_honours_ambient_deadline;
        Alcotest.test_case "campaign jobs-invariance" `Quick
          test_campaign_jobs_invariance;
        Alcotest.test_case "campaign certifies" `Quick test_campaign_certifies;
      ] );
  ]
