(* Dcn_check: certification, generators, differential oracle, shrinking,
   and the selfcheck hooks. *)

module Certify = Dcn_check.Certify
module Gen = Dcn_check.Gen
module Oracle = Dcn_check.Oracle
module Shrink = Dcn_check.Shrink
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Selfcheck = Dcn_core.Selfcheck
module Serialize = Dcn_core.Serialize
module Flow = Dcn_flow.Flow
module Schedule = Dcn_sched.Schedule
module Builders = Dcn_topology.Builders
module Model = Dcn_power.Model
module Prng = Dcn_util.Prng

let quick_fw =
  { Dcn_mcf.Frank_wolfe.default_config with max_iters = 40; gap_tol = 1e-3 }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus name =
  let inst =
    Serialize.instance_of_string (read_file ("corpus/" ^ name ^ ".instance"))
  in
  let sched =
    Serialize.schedule_of_string inst (read_file ("corpus/" ^ name ^ ".schedule"))
  in
  (inst, sched)

let small_instance () =
  let graph = Builders.line 3 in
  let power = Model.quadratic in
  let f0 = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:4. ~release:0. ~deadline:2. in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:2. in
  Instance.make ~graph ~power ~flows:[ f0; f1 ]

let kinds vs = List.sort_uniq compare (List.map Certify.kind vs)

(* ------------------------------ certify ---------------------------- *)

let test_certify_clean_solutions () =
  let inst = small_instance () in
  let sp = Dcn_core.Baselines.sp_mcf inst in
  Alcotest.(check (list string)) "sp+mcf certifies" [] (kinds (Certify.solution inst sp));
  let rs =
    Dcn_core.Random_schedule.solve
      ~config:{ Dcn_core.Random_schedule.attempts = 5; fw_config = quick_fw }
      ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ~rng:(Prng.create 7) ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  Alcotest.(check (list string)) "rs certifies" [] (kinds (Certify.solution inst rs))

let test_certify_missing_flow () =
  let inst = small_instance () in
  let f0 = Option.get (Instance.find_flow_opt inst 0) in
  let plan =
    {
      Schedule.flow = f0;
      path = [ 0; 2 ];
      slots = [ { Schedule.start = 0.; stop = 2.; rate = 2. } ];
    }
  in
  let sched =
    Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
      ~horizon:(Instance.horizon inst) [ plan ]
  in
  Alcotest.(check (list string))
    "flow 1 unplanned" [ "missing_flow" ]
    (kinds (Certify.schedule inst sched));
  Alcotest.(check (list string))
    "partial allows it" []
    (kinds (Certify.schedule ~config:{ Certify.default with partial = true } inst sched))

let test_certify_energy_mismatch () =
  let inst = small_instance () in
  let sp = Dcn_core.Baselines.sp_mcf inst in
  let tampered = { sp with Solution.energy = sp.Solution.energy +. 10. } in
  Alcotest.(check bool)
    "tampered energy caught" true
    (List.mem "energy_mismatch" (kinds (Certify.solution inst tampered)))

let test_certify_lb_violation () =
  let inst = small_instance () in
  let sp = Dcn_core.Baselines.sp_mcf inst in
  let vs =
    Certify.solution ~lower_bound:(sp.Solution.energy *. 2.) inst sp
  in
  Alcotest.(check bool)
    "impossible LB flagged" true
    (List.mem "lb_violated" (kinds vs))

(* --------------------------- corpus replay ------------------------- *)

let expectations =
  [
    ("pass", []);
    ("volume", [ "volume_mismatch" ]);
    ("capacity", [ "capacity_exceeded" ]);
    ("window", [ "slot_outside_window" ]);
  ]

let test_corpus_replay () =
  List.iter
    (fun (name, expected) ->
      let inst, sched = corpus name in
      let got = kinds (Certify.schedule inst sched) in
      if expected = [] then
        Alcotest.(check (list string)) (name ^ " certifies") [] got
      else
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Printf.sprintf "%s yields %s (got: %s)" name k
                 (String.concat "," got))
              true (List.mem k got))
          expected)
    expectations

(* Truncated / malformed fixtures must come back as typed, positioned
   parse errors — never as an escaped exception. *)
let test_corpus_truncated () =
  let instance_error name =
    match
      Serialize.instance_of_string_result
        (read_file ("corpus/" ^ name ^ ".instance"))
    with
    | Ok _ -> Alcotest.failf "%s: parsed despite being malformed" name
    | Error e -> e
  in
  let e = instance_error "truncated-node" in
  Alcotest.(check int) "truncated-node line" 2 e.Serialize.line;
  Alcotest.(check int) "truncated-node position" 21 e.Serialize.position;
  let e = instance_error "truncated-flow" in
  Alcotest.(check int) "truncated-flow line" 6 e.Serialize.line;
  let e = instance_error "bad-window" in
  Alcotest.(check int) "bad-window line" 7 e.Serialize.line;
  (* The schedule parser likewise: a slot with a malformed rate. *)
  let inst, _ = corpus "pass" in
  (match
     Serialize.schedule_of_string_result inst
       (read_file "corpus/truncated-slot.schedule")
   with
  | Ok _ -> Alcotest.fail "truncated-slot: parsed despite being malformed"
  | Error e -> Alcotest.(check int) "truncated-slot line" 3 e.Serialize.line);
  (* Truncating a well-formed fixture at every prefix length must never
     raise — each prefix either parses or yields a typed error. *)
  let text = read_file "corpus/pass.instance" in
  for len = 0 to String.length text - 1 do
    ignore (Serialize.instance_of_string_result (String.sub text 0 len))
  done;
  (* The raising wrapper stays [Failure]-compatible. *)
  Alcotest.(check bool) "wrapper raises Failure" true
    (try
       ignore (Serialize.instance_of_string "dcnsched-instance v1\nnode x");
       false
     with Failure _ -> true)

let test_json_truncated () =
  let module Json = Dcn_engine.Json in
  let err s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S: parsed despite being malformed" s
    | Error e -> e
  in
  let e = err "{\"a\":1," in
  Alcotest.(check int) "object cut after comma" 7 e.Json.offset;
  let e = err "[1,2" in
  Alcotest.(check int) "list cut" 4 e.Json.offset;
  let e = err "\"unterminated" in
  Alcotest.(check bool) "string cut" true (e.Json.offset > 0);
  (* Every prefix of an emitted report parses or errors — never raises. *)
  let text =
    Json.to_string
      (Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.float nan ]); ("s", Json.Str "a\"b") ])
  in
  for len = 0 to String.length text do
    ignore (Json.parse (String.sub text 0 len))
  done;
  match Json.parse text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "full report failed: %s" (Json.parse_error_to_string e)

(* ------------------------------ shrink ----------------------------- *)

(* A predicate that certifies a deliberately under-delivering schedule
   for flow 0: transmit at half the required density over the whole
   window.  Any instance still containing flow 0 (and a route for it)
   keeps the violation. *)
let under_delivery_pred inst =
  match Instance.find_flow_opt inst 0 with
  | None -> false
  | Some f ->
    let path = Dcn_core.Baselines.shortest_path_routing inst 0 in
    let rate = f.Flow.volume /. (2. *. Flow.span_length f) in
    let plan =
      {
        Schedule.flow = f;
        path;
        slots = [ { Schedule.start = f.Flow.release; stop = f.Flow.deadline; rate } ];
      }
    in
    let sched =
      Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
        ~horizon:(Instance.horizon inst) [ plan ]
    in
    List.mem "volume_mismatch"
      (kinds (Certify.schedule ~config:{ Certify.default with partial = true } inst sched))

let test_shrink_corrupt_fixture () =
  let inst, _ = corpus "volume" in
  Alcotest.(check bool) "violates before" true (under_delivery_pred inst);
  let r = Shrink.minimize under_delivery_pred inst in
  let f0, c0 = Shrink.size inst in
  let f1, c1 = Shrink.size r.Shrink.instance in
  Alcotest.(check bool) "no more flows" true (f1 <= f0);
  Alcotest.(check bool) "no more cables" true (c1 <= c0);
  Alcotest.(check bool) "still violates" true (under_delivery_pred r.Shrink.instance);
  Alcotest.(check int) "second flow dropped" 1 f1;
  Alcotest.(check bool) "made progress" true (r.Shrink.steps <> [])

let test_shrink_noop_when_passing () =
  let inst, _ = corpus "pass" in
  let r = Shrink.minimize (fun _ -> false) inst in
  Alcotest.(check bool) "instance untouched" true (r.Shrink.instance == inst);
  Alcotest.(check (list string)) "no steps" []
    (List.map (fun (s : Shrink.step) -> s.Shrink.op) r.Shrink.steps)

let test_shrink_exception_is_false () =
  let inst, _ = corpus "pass" in
  (* The predicate throws on every candidate but holds on the input:
     minimization terminates with the input unchanged. *)
  let calls = ref 0 in
  let pred i =
    incr calls;
    if i == inst then true else failwith "boom"
  in
  let r = Shrink.minimize pred inst in
  Alcotest.(check (list string)) "no steps" []
    (List.map (fun (s : Shrink.step) -> s.Shrink.op) r.Shrink.steps);
  Alcotest.(check bool) "candidates were tried" true (!calls > 1)

let prop_shrink_no_larger =
  QCheck.Test.make ~name:"shrink: minimized no larger, predicate preserved"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let case = Gen.(batch ~seed ~n:1).(0) in
      let inst = case.Gen.instance in
      QCheck.assume (Instance.num_flows inst >= 2);
      let pred i = Instance.num_flows i >= 2 in
      let r = Shrink.minimize pred inst in
      let f0, c0 = Shrink.size inst in
      let f1, c1 = Shrink.size r.Shrink.instance in
      pred r.Shrink.instance && f1 <= f0 && c1 <= c0 && f1 = 2)

(* --------------------------- gen / oracle -------------------------- *)

let test_gen_deterministic () =
  let a = Gen.batch ~seed:5 ~n:6 and b = Gen.batch ~seed:5 ~n:6 in
  Array.iter2
    (fun (x : Gen.case) (y : Gen.case) ->
      Alcotest.(check string) "label" x.Gen.label y.Gen.label;
      Alcotest.(check int) "solver_seed" x.Gen.solver_seed y.Gen.solver_seed;
      Alcotest.(check string) "instance"
        (Serialize.instance_to_string x.Gen.instance)
        (Serialize.instance_to_string y.Gen.instance))
    a b;
  let c = Gen.batch ~seed:6 ~n:6 in
  Alcotest.(check bool) "different seed, different batch" true
    (Array.exists2
       (fun (x : Gen.case) (y : Gen.case) ->
         Serialize.instance_to_string x.Gen.instance
         <> Serialize.instance_to_string y.Gen.instance)
       a c)

let test_oracle_certifies_batch () =
  let reports = Oracle.run_batch (Gen.batch ~seed:7 ~n:5) in
  Array.iteri
    (fun i o ->
      Alcotest.(check (list string))
        (Printf.sprintf "case %d (%s)" i o.Oracle.label)
        [] (Oracle.violation_kinds o))
    reports

let test_oracle_flags_divergence () =
  (* The oracle itself must not be blind: a corrupted certificate input
     shows up through `ok` and `violation_kinds`. *)
  let inst = small_instance () in
  let o = Oracle.run ~solver_seed:3 ~label:"small" inst in
  Alcotest.(check bool) "clean instance ok" true (Oracle.ok o);
  Alcotest.(check (list string)) "no kinds" [] (Oracle.violation_kinds o);
  Alcotest.(check bool) "lower bound positive" true (o.Oracle.lower_bound > 0.)

(* ------------------------- kernel engine --------------------------- *)

(* The per-interval fractional link loads implied by a relaxation: the
   sum of weighted-path weights over the paths crossing each link. *)
let interval_loads (r : Dcn_core.Relaxation.t) =
  Array.map
    (fun (i : Dcn_core.Relaxation.interval_solution) ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (_, paths) ->
          List.iter
            (fun (wp : Dcn_mcf.Decompose.weighted_path) ->
              List.iter
                (fun link ->
                  let prev = try Hashtbl.find tbl link with Not_found -> 0. in
                  Hashtbl.replace tbl link (prev +. wp.Dcn_mcf.Decompose.weight))
                wp.Dcn_mcf.Decompose.links)
            paths)
        i.Dcn_core.Relaxation.flow_paths;
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))
    r.Dcn_core.Relaxation.intervals

let close a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* The flat-kernel Frank-Wolfe engine must reproduce the reference
   engine on generator instances — energy and per-link loads within
   1e-9 (they are in fact bit-identical; see check_kernel.exe) — and
   the agreement must hold on a 1-job and a 4-job pool alike. *)
let prop_kernel_matches_reference =
  QCheck.Test.make
    ~name:"kernel FW = reference FW (energy + per-link loads, jobs 1 and 4)"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let inst = Gen.(batch ~seed ~n:1).(0).Gen.instance in
      let reference_fw = { quick_fw with Dcn_mcf.Frank_wolfe.engine = Dcn_mcf.Frank_wolfe.Reference } in
      List.for_all
        (fun jobs ->
          Dcn_engine.Pool.with_pool ~jobs (fun pool ->
              let k = Dcn_core.Relaxation.solve ~pool ~fw_config:quick_fw inst in
              let r = Dcn_core.Relaxation.solve ~pool ~fw_config:reference_fw inst in
              let lk = interval_loads k and lr = interval_loads r in
              close k.Dcn_core.Relaxation.cost r.Dcn_core.Relaxation.cost
              && Array.length lk = Array.length lr
              && Array.for_all2
                   (fun a b ->
                     List.length a = List.length b
                     && List.for_all2
                          (fun (la, xa) (lb, xb) -> la = lb && close xa xb)
                          a b)
                   lk lr))
        [ 1; 4 ])

(* ----------------------------- selfcheck --------------------------- *)

let test_selfcheck_hooks () =
  Fun.protect ~finally:Selfcheck.clear @@ fun () ->
  Alcotest.(check bool) "disabled by default" false (Selfcheck.enabled ());
  Certify.install_selfcheck ();
  Alcotest.(check bool) "installed" true (Selfcheck.enabled ());
  (* A clean solver run passes through the hook silently. *)
  let inst = small_instance () in
  let _sp = Dcn_core.Baselines.sp_mcf inst in
  (* A corrupted schedule pushed through the hook raises. *)
  let vinst, vsched = corpus "volume" in
  Alcotest.(check bool) "corrupt schedule raises" true
    (try
       Selfcheck.schedule ~label:"corpus" ~partial:false vinst vsched;
       false
     with Failure m -> String.length m > 0);
  (* [without] suppresses the hook. *)
  Selfcheck.without (fun () ->
      Selfcheck.schedule ~label:"corpus" ~partial:false vinst vsched)

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "certify clean solutions" `Quick test_certify_clean_solutions;
        Alcotest.test_case "certify missing flow" `Quick test_certify_missing_flow;
        Alcotest.test_case "certify energy mismatch" `Quick test_certify_energy_mismatch;
        Alcotest.test_case "certify LB violation" `Quick test_certify_lb_violation;
        Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
        Alcotest.test_case "corpus truncated fixtures" `Quick test_corpus_truncated;
        Alcotest.test_case "json truncated input" `Quick test_json_truncated;
        Alcotest.test_case "shrink corrupt fixture" `Quick test_shrink_corrupt_fixture;
        Alcotest.test_case "shrink no-op when passing" `Quick test_shrink_noop_when_passing;
        Alcotest.test_case "shrink exception is false" `Quick test_shrink_exception_is_false;
        QCheck_alcotest.to_alcotest prop_shrink_no_larger;
        Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "oracle certifies batch" `Quick test_oracle_certifies_batch;
        Alcotest.test_case "oracle on the small instance" `Quick test_oracle_flags_divergence;
        QCheck_alcotest.to_alcotest prop_kernel_matches_reference;
        Alcotest.test_case "selfcheck hooks" `Quick test_selfcheck_hooks;
      ] );
  ]
