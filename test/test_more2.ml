(* Second batch of cross-cutting tests: higher-alpha cross-checks,
   tie-breaking, and algebraic identities the main suites don't cover. *)

module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Prng = Dcn_util.Prng
module Iset = Dcn_util.Interval_set
open Dcn_speed_scaling

let check_float = Alcotest.(check (float 1e-6))

(* --- YDS and (P1) at alpha <> 2 ------------------------------------- *)

let test_yds_alpha3_matches_numeric () =
  let jobs =
    [
      Job.make ~id:0 ~weight:7. ~release:0. ~deadline:3.;
      Job.make ~id:1 ~weight:4. ~release:1. ~deadline:5.;
      Job.make ~id:2 ~weight:2. ~release:4. ~deadline:6.;
    ]
  in
  let res = Yds.schedule jobs in
  let e_yds = Yds.energy ~mu:1. ~alpha:3. jobs res in
  let e_num = Numeric_ref.ssp_energy ~alpha:3. jobs in
  Alcotest.(check bool)
    (Printf.sprintf "yds %.4f vs numeric %.4f" e_yds e_num)
    true
    (e_yds <= e_num *. 1.02 && e_yds >= e_num *. 0.9)

let test_mcf_alpha4_matches_numeric () =
  let graph = Builders.line 4 in
  let power = Model.quartic in
  let rng = Prng.create 3 in
  let flows =
    List.init 3 (fun id ->
        let src = Prng.int rng 3 in
        let dst = src + 1 + Prng.int rng (3 - src) in
        let r = Prng.uniform rng ~lo:0. ~hi:5. in
        let d = r +. 1. +. Prng.uniform rng ~lo:0. ~hi:3. in
        Flow.make ~id ~src ~dst ~volume:(2. +. Prng.float rng 6.) ~release:r ~deadline:d)
  in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  let routing = Dcn_core.Baselines.shortest_path_routing inst in
  let res = Dcn_core.Most_critical_first.solve_routed inst ~routing in
  let reference = Numeric_ref.p1_energy ~alpha:4. inst ~routing in
  Alcotest.(check bool)
    (Printf.sprintf "mcf %.4f vs numeric %.4f"
       res.Dcn_core.Solution.energy reference)
    true
    (res.Dcn_core.Solution.energy <= reference *. 1.02
    && res.Dcn_core.Solution.energy >= reference *. 0.85)

(* Virtual-weight sanity: with alpha = 2 a 4-hop flow counts as
   sqrt 4 = 2x weight in the critical-interval competition. *)
let test_mcf_virtual_weight_effect () =
  (* Two flows with identical volume/span compete on link A->B; one
     continues over 3 more hops.  The longer flow gets the lower rate:
     s_long = delta / 4^(1/2), s_short = delta. *)
  let graph = Builders.line 5 in
  let f_short = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:6. ~release:0. ~deadline:2. in
  let f_long = Flow.make ~id:1 ~src:0 ~dst:4 ~volume:6. ~release:0. ~deadline:2. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f_short; f_long ] in
  let res = Dcn_core.Baselines.sp_mcf inst in
  let rate id =
    match Dcn_core.Most_critical_first.find_rate res id with
    | Some r -> r
    | None -> Alcotest.failf "no rate recorded for flow %d" id
  in
  let s_short = rate 0 in
  let s_long = rate 1 in
  check_float "ratio = |P|^(1/alpha) = 2" 2. (s_short /. s_long)

(* --- EDF tie-breaking ------------------------------------------------ *)

let test_edf_identical_deadlines_tiebreak () =
  let tasks =
    [
      { Edf.task_id = 9; release = 0.; deadline = 4.; duration = 1. };
      { Edf.task_id = 2; release = 0.; deadline = 4.; duration = 1. };
    ]
  in
  match Edf.place ~free:[ (0., 4.) ] tasks with
  | Error _ -> Alcotest.fail "feasible"
  | Ok slots ->
    (match slots with
    | first :: _ -> Alcotest.(check int) "lower id first" 2 first.Edf.task_id
    | [] -> Alcotest.fail "no slots")

(* --- interval set pp and add_all ------------------------------------- *)

let test_iset_pp_and_add_all () =
  let s = Iset.add_all Iset.empty [ (0., 1.); (2., 3.) ] in
  let str = Format.asprintf "%a" Iset.pp s in
  Alcotest.(check bool) "prints both" true
    (String.length str > 5 && String.contains str '[')

(* --- gadgets at alpha 4 ----------------------------------------------- *)

let test_gadget_alpha4 () =
  let rng = Prng.create 15 in
  let tp = Dcn_core.Gadgets.solvable_three_partition ~m:2 ~b:20 ~rng in
  let inst = Dcn_core.Gadgets.three_partition_instance ~alpha:4. ~links:3 tp in
  let exact = (Dcn_core.Exact.search ~max_combinations:100_000 inst).Dcn_core.Exact.energy in
  check_float "Theorem 2 closed form at alpha 4"
    (Dcn_core.Gadgets.three_partition_opt_energy ~alpha:4. tp)
    exact

let test_gadget_generator_invalid () =
  let rng = Prng.create 1 in
  Alcotest.(check bool) "b too small" true
    (try ignore (Dcn_core.Gadgets.solvable_three_partition ~m:2 ~b:4 ~rng); false
     with Invalid_argument _ -> true)

(* --- exact solver bounds ---------------------------------------------- *)

let test_exact_max_hops_no_path () =
  let graph = Builders.line 5 in
  let f = Flow.make ~id:0 ~src:0 ~dst:4 ~volume:1. ~release:0. ~deadline:1. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f ] in
  Alcotest.(check bool) "max_hops too small raises" true
    (try ignore (Dcn_core.Exact.search ~max_hops:2 inst); false
     with Invalid_argument _ -> true)

(* --- RS link rates are interval density sums --------------------------- *)

let test_rs_link_rates_are_density_sums () =
  (* Two flows forced onto a line: in their shared interval the link
     rate must be exactly D1 + D2 (Algorithm 2 step 11). *)
  let graph = Builders.line 2 in
  let f1 = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:4. in
  let f2 = Flow.make ~id:1 ~src:0 ~dst:1 ~volume:6. ~release:1. ~deadline:3. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ] in
  let rng = Prng.create 1 in
  let rs = Dcn_core.Random_schedule.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  let profile = Schedule.link_profile rs.Dcn_core.Solution.schedule 0 in
  check_float "outside overlap" 1. (Dcn_sched.Profile.rate_at profile 0.5);
  check_float "during overlap D1+D2" 4. (Dcn_sched.Profile.rate_at profile 2.);
  check_float "after overlap" 1. (Dcn_sched.Profile.rate_at profile 3.5)

(* --- numeric reference self-check -------------------------------------- *)

let test_numeric_ref_single_job_closed_form () =
  (* One job alone: optimum runs at density; energy = w^alpha / span^(alpha-1). *)
  let jobs = [ Dcn_speed_scaling.Job.make ~id:0 ~weight:6. ~release:0. ~deadline:2. ] in
  let e = Numeric_ref.ssp_energy ~alpha:2. jobs in
  Alcotest.(check bool)
    (Printf.sprintf "numeric %.4f vs closed form 18" e)
    true
    (Float.abs (e -. 18.) /. 18. < 0.01)

(* --- schedule energy splits -------------------------------------------- *)

let test_energy_split_consistency () =
  let graph = Builders.fat_tree 4 in
  let power = Model.make ~sigma:3. ~mu:1. ~alpha:2. () in
  let rng = Prng.create 19 in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:10 () in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  let rs = Dcn_core.Random_schedule.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  let s = rs.Dcn_core.Solution.schedule in
  check_float "idle + dynamic = total"
    (Schedule.idle_energy s +. Schedule.dynamic_energy s)
    (Schedule.energy s)

(* --- workload argument validation -------------------------------------- *)

let test_workload_validation () =
  let graph = Builders.star ~leaves:3 in
  let rng = Prng.create 1 in
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> Dcn_flow.Workload.incast ~rng ~graph ~sources:0 ());
  invalid (fun () -> Dcn_flow.Workload.incast ~rng ~graph ~sources:5 ());
  invalid (fun () -> Dcn_flow.Workload.shuffle ~rng ~graph ~mappers:2 ~reducers:2 ());
  invalid (fun () -> Dcn_flow.Workload.stride ~graph ~stride:3 ());
  invalid (fun () -> Dcn_flow.Workload.trace ~load:0. ~rng ~graph ~horizon:(0., 10.) ());
  invalid (fun () -> Dcn_flow.Workload.trace ~rng ~graph ~horizon:(5., 5.) ());
  invalid (fun () ->
      Dcn_flow.Workload.staged ~rng ~graph ~stages:0 ~flows_per_stage:1 ~stage_length:1. ())

let test_workload_horizons_respected () =
  let graph = Builders.star ~leaves:4 in
  let rng = Prng.create 2 in
  let check_span flows lo hi =
    List.iter
      (fun (f : Flow.t) ->
        Alcotest.(check bool) "span" true (f.Flow.release >= lo && f.Flow.deadline <= hi))
      flows
  in
  check_span (Dcn_flow.Workload.all_to_all ~graph ~horizon:(3., 9.) ()) 3. 9.;
  check_span (Dcn_flow.Workload.incast ~rng ~graph ~sources:2 ~horizon:(1., 2.) ()) 1. 2.;
  check_span
    (Dcn_flow.Workload.shuffle ~rng ~graph ~mappers:2 ~reducers:1 ~horizon:(0., 5.) ())
    0. 5.

(* --- bounds edge cases --------------------------------------------------- *)

let test_bounds_single_flow_lambda_one () =
  let graph = Builders.line 3 in
  let f = Flow.make ~id:0 ~src:0 ~dst:2 ~volume:2. ~release:1. ~deadline:5. in
  let inst = Dcn_core.Instance.make ~graph ~power:Model.quadratic ~flows:[ f ] in
  let b = Dcn_core.Bounds.compute inst in
  check_float "lambda 1" 1. b.Dcn_core.Bounds.lambda;
  check_float "D = density" 0.5 b.Dcn_core.Bounds.max_density

(* --- Check.all composition ----------------------------------------------- *)

let test_check_all_modes () =
  (* Interval-density style: exclusive check flags it, non-exclusive
     passes. *)
  let graph = Builders.line 2 in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:2. in
  let p = Option.get (Dcn_topology.Paths.shortest_path graph ~src:0 ~dst:1) in
  let plan f =
    { Schedule.flow = f; path = p; slots = [ { Schedule.start = 0.; stop = 2.; rate = 1. } ] }
  in
  let s =
    Schedule.make ~graph ~power:Model.quadratic ~horizon:(0., 2.)
      [ plan (mk 0); plan (mk 1) ]
  in
  Alcotest.(check bool) "fluid-feasible" true
    (Schedule.Check.is_feasible ~exclusive:false s);
  Alcotest.(check bool) "not circuit-feasible" false
    (Schedule.Check.is_feasible ~exclusive:true s)

let suite =
  [
    ( "more/cross-checks",
      [
        Alcotest.test_case "yds alpha=3 numeric" `Quick test_yds_alpha3_matches_numeric;
        Alcotest.test_case "mcf alpha=4 numeric" `Quick test_mcf_alpha4_matches_numeric;
        Alcotest.test_case "virtual weight effect" `Quick test_mcf_virtual_weight_effect;
        Alcotest.test_case "edf tie-break" `Quick test_edf_identical_deadlines_tiebreak;
        Alcotest.test_case "iset pp" `Quick test_iset_pp_and_add_all;
        Alcotest.test_case "gadget alpha=4" `Quick test_gadget_alpha4;
        Alcotest.test_case "gadget generator invalid" `Quick test_gadget_generator_invalid;
        Alcotest.test_case "exact max_hops" `Quick test_exact_max_hops_no_path;
        Alcotest.test_case "rs density sums" `Quick test_rs_link_rates_are_density_sums;
        Alcotest.test_case "numeric ref closed form" `Quick
          test_numeric_ref_single_job_closed_form;
        Alcotest.test_case "energy split" `Quick test_energy_split_consistency;
        Alcotest.test_case "workload validation" `Quick test_workload_validation;
        Alcotest.test_case "workload horizons" `Quick test_workload_horizons_respected;
        Alcotest.test_case "bounds single flow" `Quick test_bounds_single_flow_lambda_one;
        Alcotest.test_case "check all modes" `Quick test_check_all_modes;
      ] );
  ]
