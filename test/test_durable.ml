(* Dcn_durable: CRC vectors, WAL round-trip and tear handling, session
   snapshot/restore, checkpoint+replay equivalence, recovery
   jobs-invariance, the bounded pending queue, and a small seeded crash
   campaign. *)

module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Builders = Dcn_topology.Builders
module Model = Dcn_power.Model
module Event = Dcn_serve.Event
module Session = Dcn_serve.Session
module Repair = Dcn_resilience.Repair
module Crc = Dcn_durable.Crc
module Wal = Dcn_durable.Wal
module Checkpoint = Dcn_durable.Checkpoint
module Pending = Dcn_durable.Pending
module Store = Dcn_durable.Store
module Crash = Dcn_durable.Crash

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_events ?limit name =
  let lines =
    String.split_on_char '\n' (read_file ("corpus/" ^ name))
    |> List.filter (fun l -> String.trim l <> "")
  in
  let lines =
    match limit with
    | None -> lines
    | Some n -> List.filteri (fun i _ -> i < n) lines
  in
  List.map
    (fun line ->
      match Event.of_json (Json.of_string line) with
      | Ok e -> e
      | Error m -> Alcotest.failf "corpus line rejected: %s" m)
    lines

let graph = Builders.line 5
let power = Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap:6. ()
let policy = Repair.Drop_latest_deadline

let session ?(pool = Pool.sequential) ?(seed = 42) () =
  Session.create ~pool ~graph ~power ~policy ~seed ()

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dcn-durable-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let events20 = lazy (corpus_events ~limit:20 "serve-100.events")

(* -------------------------------- crc ------------------------------ *)

let test_crc_vectors () =
  (* The standard CRC-32 check value, cross-checkable with zlib. *)
  Alcotest.(check string) "check value" "cbf43926"
    (Crc.to_hex (Crc.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc.to_hex (Crc.string ""));
  Alcotest.(check bool) "hex round trip" true
    (Crc.of_hex (Crc.to_hex (Crc.string "wal")) = Some (Crc.string "wal"));
  Alcotest.(check bool) "reject short" true (Crc.of_hex "abc" = None);
  Alcotest.(check bool) "reject non-hex" true (Crc.of_hex "xyzxyzxy" = None)

(* ---------------------------- atomic file -------------------------- *)

let test_atomic_file () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "out.json" in
  Dcn_util.Atomic_file.write ~path "first";
  Alcotest.(check string) "written" "first" (read_file path);
  Dcn_util.Atomic_file.write ~fsync:true ~path "second";
  Alcotest.(check string) "replaced" "second" (read_file path);
  (* No temp litter left behind. *)
  Alcotest.(check (list string)) "only the target" [ "out.json" ]
    (Array.to_list (Sys.readdir dir))

(* -------------------------------- wal ------------------------------ *)

let wal_events =
  lazy
    [
      Event.Advance_clock { clock = 1. };
      Event.Flow_arrival
        (Dcn_flow.Flow.make ~id:1 ~src:0 ~dst:4 ~volume:6. ~release:1.
           ~deadline:5.);
      Event.Flow_cancel { flow = 1 };
      Event.Advance_clock { clock = 2. };
    ]

let write_wal dir events =
  let path = Filename.concat dir "wal.log" in
  let w = Wal.open_writer path in
  List.iteri (fun i e -> Wal.append w ~seq:(i + 1) e) events;
  Wal.close w;
  path

let test_wal_round_trip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let events = Lazy.force wal_events in
  let path = write_wal dir events in
  let scan = Wal.scan path in
  Alcotest.(check bool) "no tear" true (scan.Wal.tear = None);
  Alcotest.(check int) "all records" (List.length events)
    (List.length scan.Wal.records);
  Alcotest.(check int) "valid_bytes covers the file"
    (String.length (read_file path))
    scan.Wal.valid_bytes;
  List.iteri
    (fun i (r : Wal.record) ->
      Alcotest.(check int) "seq" (i + 1) r.Wal.seq;
      Alcotest.(check string) "event round trip"
        (Json.to_string (Event.to_json (List.nth events i)))
        (Json.to_string (Event.to_json r.Wal.event)))
    scan.Wal.records;
  (* A missing file is an empty log, not an error. *)
  let empty = Wal.scan (Filename.concat dir "absent.log") in
  Alcotest.(check int) "absent = empty" 0 (List.length empty.Wal.records)

let test_wal_flipped_byte () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let events = Lazy.force wal_events in
  let path = write_wal dir events in
  let raw = read_file path in
  (* Flip one byte inside the *second* record's JSON. *)
  let first_len = String.length (Wal.encode ~seq:1 (List.nth events 0)) in
  let at = first_len + 30 in
  let b = Bytes.of_string raw in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let scan = Wal.scan path in
  (* The scan stops at the flipped record: everything after a corrupt
     record is suspect. *)
  Alcotest.(check int) "only the first record survives" 1
    (List.length scan.Wal.records);
  Alcotest.(check int) "valid prefix" first_len scan.Wal.valid_bytes;
  match scan.Wal.tear with
  | Some (Wal.Bad_checksum | Wal.Bad_header) -> ()
  | other ->
    Alcotest.failf "expected checksum/header tear, got %s"
      (match other with
      | None -> "no tear"
      | Some t -> Wal.tear_to_string t)

let test_wal_torn_tail_truncation () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let events = Lazy.force wal_events in
  let path = write_wal dir events in
  let raw = read_file path in
  (* Chop the last record mid-line (a torn append). *)
  let keep = String.length raw - 7 in
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 keep);
  close_out oc;
  let scan = Wal.scan path in
  Alcotest.(check int) "prefix survives"
    (List.length events - 1)
    (List.length scan.Wal.records);
  Alcotest.(check bool) "partial-line tear" true
    (scan.Wal.tear = Some Wal.Partial_line);
  (* Truncation repairs the log in place. *)
  Wal.truncate path scan.Wal.valid_bytes;
  let rescan = Wal.scan path in
  Alcotest.(check bool) "clean after truncate" true (rescan.Wal.tear = None);
  Alcotest.(check int) "same records"
    (List.length events - 1)
    (List.length rescan.Wal.records)

(* The committed fixture: three valid records then a chopped fourth —
   scanned through the same reader the recovery path uses, and checked
   against the authoritative encoder. *)
let test_wal_torn_fixture () =
  let scan = Wal.scan "corpus/wal-torn.events" in
  Alcotest.(check int) "three valid records" 3 (List.length scan.Wal.records);
  Alcotest.(check bool) "partial-line tear" true
    (scan.Wal.tear = Some Wal.Partial_line);
  let raw = read_file "corpus/wal-torn.events" in
  Alcotest.(check bool) "tear strictly inside the file" true
    (scan.Wal.valid_bytes < String.length raw);
  (* Each fixture record is byte-identical to the encoder's output. *)
  let off = ref 0 in
  List.iter
    (fun (r : Wal.record) ->
      let line = Wal.encode ~seq:r.Wal.seq r.Wal.event in
      Alcotest.(check string) "fixture bytes = encoder bytes" line
        (String.sub raw !off (String.length line));
      off := !off + String.length line)
    scan.Wal.records;
  Alcotest.(check int) "valid_bytes = sum of record lines" !off
    scan.Wal.valid_bytes

(* -------------------------- snapshot/restore ----------------------- *)

let test_snapshot_restore_round_trip () =
  let events = Lazy.force events20 in
  let s = session () in
  List.iter (fun e -> ignore (Session.apply s e)) events;
  let snap = Session.snapshot s in
  match Session.restore ~graph ~power ~policy snap with
  | Error m -> Alcotest.failf "restore failed: %s" m
  | Ok s' ->
    Alcotest.(check string) "snapshot fixed point"
      (Json.to_string snap)
      (Json.to_string (Session.snapshot s'));
    Alcotest.(check string) "report identical"
      (Json.to_string (Session.report s))
      (Json.to_string (Session.report s'));
    (* The restored session continues the exact stream. *)
    let more = corpus_events ~limit:30 "serve-100.events" in
    let tail = List.filteri (fun i _ -> i >= 20) more in
    List.iter
      (fun e ->
        Alcotest.(check string) "same outcome after restore"
          (Json.to_string (Session.outcome_to_json (Session.apply s e)))
          (Json.to_string (Session.outcome_to_json (Session.apply s' e))))
      tail

let test_restore_rejects_mismatch () =
  let s = session () in
  List.iter (fun e -> ignore (Session.apply s e)) (Lazy.force events20);
  let snap = Session.snapshot s in
  (match
     Session.restore ~graph:(Builders.line 4) ~power ~policy snap
   with
  | Error m ->
    Alcotest.(check bool) "names the fingerprint" true
      (String.length m >= 11 && String.sub m 0 11 = "fingerprint")
  | Ok _ -> Alcotest.fail "restored under a different topology");
  (match Session.restore ~graph ~power ~policy:Repair.Reject_new snap with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restored under a different policy");
  match
    Session.restore ~graph
      ~power:(Model.make ~sigma:2. ~mu:1. ~alpha:2. ~cap:6. ())
      ~policy snap
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restored under a different power model"

let test_uptime_monotone_nonnegative () =
  let s = session () in
  let a = Session.uptime_ms s in
  let b = Session.uptime_ms s in
  Alcotest.(check bool) "non-negative" true (a >= 0.);
  Alcotest.(check bool) "non-decreasing" true (b >= a)

(* ------------------------------- store ----------------------------- *)

let store_dir_with ?(checkpoint_every = 7) events =
  let dir = temp_dir () in
  (match
     Store.open_ ~dir ~checkpoint_every ~graph ~power ~policy ~seed:42 ()
   with
  | Error m -> Alcotest.failf "store open failed: %s" m
  | Ok (store, recovery) ->
    Alcotest.(check bool) "fresh store" false recovery.Store.recovered;
    List.iter (fun e -> ignore (Store.apply store e)) events;
    Store.close store);
  dir

let test_store_checkpoint_replay_equals_full_replay () =
  let events = Lazy.force events20 in
  let dir = store_dir_with events in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Uninterrupted reference. *)
  let reference = session () in
  List.iter (fun e -> ignore (Session.apply reference e)) events;
  (* Recover from checkpoint + WAL tail. *)
  match Store.open_ ~dir ~checkpoint_every:7 ~graph ~power ~policy ~seed:42 ()
  with
  | Error m -> Alcotest.failf "recovery failed: %s" m
  | Ok (store, recovery) ->
    Alcotest.(check bool) "recovered" true recovery.Store.recovered;
    Alcotest.(check int) "seq" 20 (Store.seq store);
    (* close wrote a final checkpoint at seq 20: nothing to replay. *)
    Alcotest.(check int) "checkpoint at close" 20 recovery.Store.checkpoint_seq;
    Alcotest.(check int) "no tail to replay" 0 recovery.Store.replayed;
    Alcotest.(check string) "state = uninterrupted replay"
      (Json.to_string (Session.snapshot reference))
      (Json.to_string (Session.snapshot (Store.session store)));
    Store.close store

let test_store_recovers_without_checkpoint () =
  (* A WAL reaching back to seq 1 with no checkpoint at all — the state
     of a session that crashed before its first checkpoint.  Recovery
     must fall back to a full replay. *)
  let events = Lazy.force events20 in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let _ = write_wal dir events in
  let reference = session () in
  List.iter (fun e -> ignore (Session.apply reference e)) events;
  match Store.open_ ~dir ~checkpoint_every:7 ~graph ~power ~policy ~seed:42 ()
  with
  | Error m -> Alcotest.failf "recovery failed: %s" m
  | Ok (store, recovery) ->
    Alcotest.(check int) "no checkpoint" 0 recovery.Store.checkpoint_seq;
    Alcotest.(check int) "whole log replayed" 20 recovery.Store.replayed;
    Alcotest.(check string) "state = uninterrupted replay"
      (Json.to_string (Session.snapshot reference))
      (Json.to_string (Session.snapshot (Store.session store)));
    Store.close store

let test_store_wal_rotation () =
  let events = Lazy.force events20 in
  let dir = store_dir_with events in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let wal_path = Filename.concat dir "wal.log" in
  (* close checkpointed at seq 20 and rotated: the segment is empty, so
     a long-lived session's log is bounded by the checkpoint interval. *)
  Alcotest.(check int) "wal empty after checkpoint" 0
    (Unix.stat wal_path).Unix.st_size;
  (* A crash between checkpoint write and rotation leaves a stale
     segment of already-checkpointed records; recovery skips them. *)
  let w = Wal.open_writer wal_path in
  List.iteri
    (fun i e -> if i >= 14 then Wal.append w ~seq:(i + 1) e)
    events;
  Wal.close w;
  let scan = Wal.scan wal_path in
  Alcotest.(check bool) "segment may start past seq 1" true
    (scan.Wal.tear = None
    && List.length scan.Wal.records = 6
    && (List.hd scan.Wal.records).Wal.seq = 15);
  (match
     Store.open_ ~dir ~checkpoint_every:7 ~graph ~power ~policy ~seed:42 ()
   with
  | Error m -> Alcotest.failf "recovery over a stale segment failed: %s" m
  | Ok (store, recovery) ->
    Alcotest.(check int) "nothing replayed" 0 recovery.Store.replayed;
    Alcotest.(check int) "seq from the checkpoint" 20 (Store.seq store);
    Store.close store);
  (* A segment starting past what the checkpoint covers is lost
     history: recovery must refuse rather than silently diverge. *)
  Sys.remove (Checkpoint.path ~dir);
  Sys.remove wal_path;
  let w = Wal.open_writer wal_path in
  List.iteri
    (fun i e -> if i >= 14 then Wal.append w ~seq:(i + 1) e)
    events;
  Wal.close w;
  match Store.open_ ~dir ~checkpoint_every:7 ~graph ~power ~policy ~seed:42 ()
  with
  | Error m ->
    let contains_loss =
      let needle = "log bytes lost" in
      let n = String.length needle and h = String.length m in
      let rec go i = i + n <= h && (String.sub m i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the loss" true contains_loss
  | Ok _ -> Alcotest.fail "recovered across rotated-away history"

let test_store_recovery_jobs_invariant () =
  let events = Lazy.force events20 in
  let dir = store_dir_with events in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let recover pool =
    (* Recovery must not advance the durable state: copy the dir. *)
    let copy = temp_dir () in
    Array.iter
      (fun e ->
        let src = Filename.concat dir e in
        let oc = open_out_bin (Filename.concat copy e) in
        output_string oc (read_file src);
        close_out oc)
      (Sys.readdir dir);
    Fun.protect ~finally:(fun () -> rm_rf copy) @@ fun () ->
    match
      Store.open_ ?pool ~dir:copy ~checkpoint_every:7 ~graph ~power ~policy
        ~seed:42 ()
    with
    | Error m -> Alcotest.failf "recovery failed: %s" m
    | Ok (store, _) ->
      let tail = [ Event.Advance_clock { clock = 3. } ] in
      let outs =
        List.map
          (fun e ->
            Json.to_string (Session.outcome_to_json (Store.apply store e)))
          tail
      in
      let snap = Json.to_string (Session.snapshot (Store.session store)) in
      Store.close store;
      (snap, outs)
  in
  let seq = recover None in
  let par = Pool.with_pool ~jobs:4 (fun pool -> recover (Some pool)) in
  Alcotest.(check string) "snapshot byte-identical at --jobs 1 vs 4"
    (fst seq) (fst par);
  List.iter2
    (Alcotest.(check string) "outcome byte-identical at --jobs 1 vs 4")
    (snd seq) (snd par)

(* ------------------------------ pending ---------------------------- *)

let test_pending_shed_newest () =
  let q = Pending.create ~capacity:2 ~policy:Repair.Shed_newest in
  Alcotest.(check bool) "enq a" true (Pending.offer q "a" = Pending.Enqueued);
  Alcotest.(check bool) "enq b" true (Pending.offer q "b" = Pending.Enqueued);
  Alcotest.(check bool) "shed the arrival" true
    (Pending.offer q "c" = Pending.Shed "c");
  Alcotest.(check (option string)) "fifo" (Some "a") (Pending.pop q);
  Alcotest.(check bool) "room again" true
    (Pending.offer q "d" = Pending.Enqueued);
  Alcotest.(check (option string)) "b" (Some "b") (Pending.pop q);
  Alcotest.(check (option string)) "d" (Some "d") (Pending.pop q);
  Alcotest.(check (option string)) "empty" None (Pending.pop q)

let test_pending_shed_oldest () =
  let q = Pending.create ~capacity:2 ~policy:Repair.Shed_oldest in
  ignore (Pending.offer q "a");
  ignore (Pending.offer q "b");
  Alcotest.(check bool) "evict the oldest" true
    (Pending.offer q "c" = Pending.Shed "a");
  Alcotest.(check (option string)) "b first" (Some "b") (Pending.pop q);
  Alcotest.(check (option string)) "then c" (Some "c") (Pending.pop q);
  Alcotest.(check bool) "capacity floor" true
    (match Pending.create ~capacity:0 ~policy:Repair.Shed_newest with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_shed_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "round trip" true
        (Repair.shed_policy_of_string (Repair.shed_policy_to_string p) = Some p))
    [ Repair.Shed_newest; Repair.Shed_oldest ];
  Alcotest.(check bool) "unknown" true
    (Repair.shed_policy_of_string "drop-table" = None)

(* --------------------------- crash campaign ------------------------ *)

let test_crash_campaign () =
  let events = corpus_events ~limit:40 "serve-100.events" in
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t =
    Crash.run ~window:3 ~checkpoint_every:5 ~dir ~graph ~power ~policy ~seed:7
      ~kills:6 events
  in
  Alcotest.(check int) "six kills" 6 (List.length t.Crash.rows);
  Alcotest.(check bool) "campaign ok" true t.Crash.ok;
  List.iter
    (fun (r : Crash.row) ->
      Alcotest.(check bool) "row ok" true r.Crash.ok;
      Alcotest.(check bool) "state bit-identical" true r.Crash.state_match;
      Alcotest.(check bool) "re-certified" true r.Crash.certified)
    t.Crash.rows;
  (* Determinism: the same seed reproduces the identical report. *)
  let t' =
    Crash.run ~window:3 ~checkpoint_every:5 ~dir ~graph ~power ~policy ~seed:7
      ~kills:6 events
  in
  Alcotest.(check string) "seeded campaign reproducible"
    (Json.to_string (Crash.to_json t))
    (Json.to_string (Crash.to_json t'))

let suite =
  [
    ( "durable",
      [
        Alcotest.test_case "crc vectors" `Quick test_crc_vectors;
        Alcotest.test_case "atomic file" `Quick test_atomic_file;
        Alcotest.test_case "wal round trip" `Quick test_wal_round_trip;
        Alcotest.test_case "wal flipped byte" `Quick test_wal_flipped_byte;
        Alcotest.test_case "wal torn tail truncation" `Quick
          test_wal_torn_tail_truncation;
        Alcotest.test_case "wal torn fixture" `Quick test_wal_torn_fixture;
        Alcotest.test_case "snapshot restore round trip" `Quick
          test_snapshot_restore_round_trip;
        Alcotest.test_case "restore rejects mismatch" `Quick
          test_restore_rejects_mismatch;
        Alcotest.test_case "uptime monotone" `Quick
          test_uptime_monotone_nonnegative;
        Alcotest.test_case "checkpoint+replay = full replay" `Quick
          test_store_checkpoint_replay_equals_full_replay;
        Alcotest.test_case "recovery without checkpoint" `Quick
          test_store_recovers_without_checkpoint;
        Alcotest.test_case "wal rotation at checkpoints" `Quick
          test_store_wal_rotation;
        Alcotest.test_case "recovery jobs-invariant" `Quick
          test_store_recovery_jobs_invariant;
        Alcotest.test_case "pending shed-newest" `Quick test_pending_shed_newest;
        Alcotest.test_case "pending shed-oldest" `Quick test_pending_shed_oldest;
        Alcotest.test_case "shed policy strings" `Quick test_shed_policy_strings;
        Alcotest.test_case "crash campaign" `Quick test_crash_campaign;
      ] );
  ]
