(* End-to-end smoke test for durable serving, run from the root
   `check-durable` alias (itself a `runtest` dependency):

   1. serve the corpus over `dcn serve --socket` (with a WAL) and over
      plain stdin, and require the outcome streams byte-identical
      modulo uptime_ms — the one wall-clock field — even at different
      --jobs levels;
   2. kill a client mid-line — and another one between submitting an
      event and reading its reply (the SIGPIPE path) — and prove the
      server survives both;
   3. SIGTERM the server and require a clean drain: exit status 0 and a
      final checkpoint covering every committed event.

   Usage: check_durable.exe DCN_BINARY EVENTS_FILE *)

module Json = Dcn_engine.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check-durable: " ^ m);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let event_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

(* Both serving modes share the session parameters; only the transport
   and --jobs differ, so equality of the outcome streams checks the
   socket path end to end *and* jobs-invariance through the socket. *)
let topo_args = [ "--topology"; "line:5"; "--cap"; "6"; "--sigma"; "1" ]

let strip_uptime line =
  match Json.of_string line with
  | exception Failure m -> fail "unparseable outcome line %S: %s" line m
  | Json.Obj fields ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> k <> "uptime_ms") fields))
  | _ -> fail "outcome line is not an object: %S" line

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s

(* ------------------------- stdin reference ------------------------ *)

let run_stdin ~dcn ~events ~jobs =
  let out_path = Filename.temp_file "dcn-durable-stdin" ".out" in
  let in_fd = Unix.openfile events [ Unix.O_RDONLY ] 0 in
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644
  in
  let argv =
    Array.of_list
      ((dcn :: "serve" :: topo_args) @ [ "--jobs"; string_of_int jobs ])
  in
  let pid = Unix.create_process dcn argv in_fd out_fd Unix.stderr in
  Unix.close in_fd;
  Unix.close out_fd;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, st -> fail "stdin serve died with %s" (status_to_string st));
  let lines = event_lines out_path in
  Sys.remove out_path;
  lines

(* --------------------------- socket mode -------------------------- *)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let send_line fd line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let n = Unix.write fd bytes 0 (Bytes.length bytes) in
  if n <> Bytes.length bytes then fail "short write to the server socket"

let recv_line fd =
  let buf = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> fail "server closed the connection mid-reply"
    | _ ->
      if Bytes.get byte 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
  in
  go ()

let wait_for_socket sock =
  let rec go n =
    if Sys.file_exists sock then ()
    else if n = 0 then fail "server never bound %s" sock
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 100

let () =
  let dcn, events =
    match Sys.argv with
    | [| _; dcn; events |] -> (dcn, events)
    | _ ->
      prerr_endline "usage: check_durable.exe DCN_BINARY EVENTS_FILE";
      exit 2
  in
  let lines = event_lines events in
  let n = List.length lines in
  if n < 100 then fail "%s: %d event(s), the gate wants >= 100" events n;

  (* Reference stream: stdin mode, sequential. *)
  let reference = run_stdin ~dcn ~events ~jobs:1 in
  if List.length reference <> n then
    fail "stdin serve answered %d line(s) for %d events"
      (List.length reference) n;

  (* Socket server: WAL'd, parallel. *)
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dcn-check-durable-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let sock = Filename.concat scratch "serve.sock" in
  let wal_dir = Filename.concat scratch "wal" in
  let argv =
    Array.of_list
      ((dcn :: "serve" :: topo_args)
      @ [ "--socket"; sock; "--wal"; wal_dir; "--jobs"; "2" ])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let server = Unix.create_process dcn argv Unix.stdin null Unix.stderr in
  Unix.close null;
  wait_for_socket sock;

  (* 1: the full corpus, lock-step, must match the stdin stream. *)
  let client = connect sock in
  List.iteri
    (fun i line ->
      send_line client line;
      let reply = recv_line client in
      let want = strip_uptime (List.nth reference i) in
      let got = strip_uptime reply in
      if got <> want then
        fail "socket outcome %d diverges from stdin mode:\n  stdin:  %s\n  socket: %s"
          (i + 1) want got)
    lines;

  (* 2: a client dying mid-line must not take the server down. *)
  let doomed = connect sock in
  let fragment = Bytes.of_string {|{"event":"adva|} in
  ignore (Unix.write doomed fragment 0 (Bytes.length fragment));
  Unix.close doomed;

  (* The first client still gets served after the crash next door; the
     malformed-line path answers with a positioned error reply. *)
  send_line client {|{"event":"advance","to":|};
  (match Json.of_string (recv_line client) with
  | Json.Obj fields
    when List.assoc_opt "error" fields = Some (Json.Str "parse") ->
    if not (List.mem_assoc "line" fields && List.mem_assoc "offset" fields)
    then fail "parse-error reply lacks its position fields"
  | _ -> fail "malformed line did not earn a parse-error reply");
  send_line client {|{"event":"advance","to":99}|};
  (match Json.of_string (recv_line client) with
  | Json.Obj fields when List.mem_assoc "outcome" fields -> ()
  | json ->
    fail "server unresponsive after a mid-line disconnect: %s"
      (Json.to_string json));
  Unix.close client;

  (* 2b: a client that submits a valid event and vanishes without
     reading its reply costs the server an EPIPE, which must be a typed
     disconnect — not a SIGPIPE death. *)
  let ghost = connect sock in
  send_line ghost {|{"event":"advance","to":100}|};
  Unix.close ghost;
  let probe = connect sock in
  send_line probe {|{"event":"advance","to":101}|};
  (match Json.of_string (recv_line probe) with
  | Json.Obj fields when List.mem_assoc "outcome" fields -> ()
  | json ->
    fail "server unresponsive after a reply to a dead client: %s"
      (Json.to_string json));
  Unix.close probe;

  (* 3: graceful drain — exit 0 and a final checkpoint covering every
     committed event (n corpus + the three probes above). *)
  Unix.kill server Sys.sigterm;
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _, st -> fail "SIGTERM drain ended with %s, expected exit 0"
               (status_to_string st));
  let checkpoint = Filename.concat wal_dir "checkpoint.json" in
  if not (Sys.file_exists checkpoint) then
    fail "no final checkpoint after the drain";
  (match Json.member "seq" (Json.of_string (read_file checkpoint)) with
  | Some (Json.Int seq) when seq = n + 3 -> ()
  | Some (Json.Int seq) ->
    fail "final checkpoint at seq %d, expected %d" seq (n + 3)
  | _ -> fail "final checkpoint carries no seq");
  rm_rf scratch;
  Printf.printf
    "check-durable: socket stream matches stdin (%d events, --jobs 2 vs 1), \
     mid-line disconnect and reply-to-dead-client survived, SIGTERM drained \
     cleanly\n"
    n
