(* Tests for Dcn_core: instances, Most-Critical-First (Algorithm 1,
   checked against the paper's Example 1 and an independent numeric
   optimiser for program (P1)), Random-Schedule (Algorithm 2, Theorem 4
   deadline guarantee), the fractional lower bound, baselines, the
   exact enumerator, and the hardness gadgets. *)

open Dcn_core
module Graph = Dcn_topology.Graph
module Builders = Dcn_topology.Builders
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Prng = Dcn_util.Prng

let check_float = Alcotest.(check (float 1e-6))

let rate res id =
  match Solution.find_rate res id with
  | Some r -> r
  | None -> Alcotest.failf "no rate recorded for flow %d" id

let quick_fw =
  { Dcn_mcf.Frank_wolfe.default_config with max_iters = 60; line_search_iters = 24 }

let rs_config = { Random_schedule.attempts = 20; fw_config = quick_fw }

(* Shorthands for the labelled Solver_api entry points used throughout. *)
let never = Dcn_engine.Deadline.never
let ws ?pool ?rng () = Solver_api.workspace ?pool ?rng ()

let rs_solve ?(config = rs_config) ?relaxation ~rng inst =
  Random_schedule.solve ~config ?relaxation ~instance:inst
    ~workspace:(ws ~rng ()) ~deadline:never ()

let ear_solve inst =
  Greedy_ear.solve ~instance:inst ~workspace:(ws ()) ~deadline:never ()

let online_solve inst =
  Online.solve ~instance:inst ~workspace:(ws ()) ~deadline:never ()

(* ------------------------------------------------------------------ *)
(* Instance                                                           *)
(* ------------------------------------------------------------------ *)

let example1 () =
  let graph = Builders.line 3 in
  let power = Model.quadratic in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  Instance.make ~graph ~power ~flows:[ f1; f2 ]

let test_instance_basic () =
  let inst = example1 () in
  Alcotest.(check int) "flows" 2 (Instance.num_flows inst);
  Alcotest.(check (pair (float 0.) (float 0.))) "horizon" (1., 4.) (Instance.horizon inst);
  Alcotest.(check int) "find flow" 6
    (int_of_float (Option.get (Instance.find_flow_opt inst 1)).Flow.volume)

let test_instance_invalid () =
  let graph = Builders.line 3 in
  let invalid expect f =
    let got =
      try
        ignore (f ());
        None
      with Instance.Invalid e -> Some e
    in
    match got with
    | Some e when e = expect -> ()
    | Some e ->
      Alcotest.failf "wrong error: %s (wanted %s)" (Instance.error_to_string e)
        (Instance.error_to_string expect)
    | None -> Alcotest.failf "accepted: %s" (Instance.error_to_string expect)
  in
  invalid Instance.Empty_flows (fun () ->
      Instance.make ~graph ~power:Model.quadratic ~flows:[]);
  invalid (Instance.Bad_endpoint { flow = 0; node = 9 }) (fun () ->
      let f = Flow.make ~id:0 ~src:0 ~dst:9 ~volume:1. ~release:0. ~deadline:1. in
      Instance.make ~graph ~power:Model.quadratic ~flows:[ f ]);
  invalid (Instance.Duplicate_flow_id { flow = 0 }) (fun () ->
      let f = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:1. ~release:0. ~deadline:1. in
      Instance.make ~graph ~power:Model.quadratic ~flows:[ f; f ]);
  (* validate is the non-raising face of the same clauses. *)
  let f = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:1. ~release:0. ~deadline:1. in
  (match Instance.validate ~graph ~power:Model.quadratic ~flows:[ f ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate rejected: %s" (Instance.error_to_string e));
  match Instance.make_result ~graph ~power:Model.quadratic ~flows:[] with
  | Error Instance.Empty_flows -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Instance.error_to_string e)
  | Ok _ -> Alcotest.fail "make_result accepted an empty flow list"

(* ------------------------------------------------------------------ *)
(* Most-Critical-First                                                *)
(* ------------------------------------------------------------------ *)

let test_mcf_example1_rates () =
  (* Example 1 of the paper: sqrt 2 * s1 = s2 = (8 + 6 sqrt 2) / 3. *)
  let res = Baselines.sp_mcf (example1 ()) in
  let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
  check_float "s2" s2 (rate res 2);
  check_float "s1 = s2/sqrt2" (s2 /. sqrt 2.) (rate res 1);
  Alcotest.(check bool) "placement complete" true
    (Solution.placement_complete res)

let test_mcf_example1_energy () =
  let res = Baselines.sp_mcf (example1 ()) in
  let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
  let s1 = s2 /. sqrt 2. in
  (* Phi = 2 * 6 * s1 + 8 * s2 (objective of Example 1). *)
  check_float "energy closed form"
    ((2. *. 6. *. s1) +. (8. *. s2))
    res.Solution.energy;
  (* The analytic energy must agree with the schedule's integral. *)
  check_float "schedule agrees" res.Solution.energy
    (Schedule.energy res.Solution.schedule)

let test_mcf_schedule_feasible () =
  let res = Baselines.sp_mcf (example1 ()) in
  Alcotest.(check bool) "deadlines + exclusivity" true
    (Schedule.Check.is_feasible ~exclusive:true res.Solution.schedule)

let test_mcf_single_flow_density () =
  (* Alone on its path, a flow runs at its density (Lemma 2). *)
  let graph = Builders.line 4 in
  let f = Flow.make ~id:0 ~src:0 ~dst:3 ~volume:9. ~release:1. ~deadline:4. in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows:[ f ] in
  let res = Baselines.sp_mcf inst in
  check_float "rate = density" 3. (rate res 0);
  (* energy = |P| * w * s^(alpha-1) = 3 * 9 * 3 = 81. *)
  check_float "energy" 81. res.Solution.energy

let test_mcf_disjoint_flows_independent () =
  (* Flows on disjoint links do not influence each other. *)
  let graph = Builders.star ~leaves:4 in
  let f1 = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:2. in
  let f2 = Flow.make ~id:1 ~src:2 ~dst:3 ~volume:6. ~release:0. ~deadline:3. in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ] in
  let res = Baselines.sp_mcf inst in
  check_float "f1 density" 2. (rate res 0);
  check_float "f2 density" 2. (rate res 1)

let test_mcf_groups_non_increasing () =
  let graph = Builders.line 3 in
  let rng = Prng.create 5 in
  let flows =
    List.init 6 (fun id ->
        let r = Prng.uniform rng ~lo:0. ~hi:6. in
        let d = r +. 1. +. Prng.uniform rng ~lo:0. ~hi:4. in
        Flow.make ~id ~src:(Prng.int rng 2)
          ~dst:2 ~volume:(1. +. Prng.float rng 9.) ~release:r ~deadline:d)
  in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
  let res = Baselines.sp_mcf inst in
  let rec non_increasing = function
    | (a : Most_critical_first.group) :: b :: rest ->
      a.intensity >= b.Most_critical_first.intensity -. 1e-9 && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "intensities non-increasing" true
    (non_increasing (Solution.groups res))

(* Independent numeric reference for program (P1) — see Numeric_ref. *)
let p1_reference ~alpha inst ~routing = Numeric_ref.p1_energy ~alpha inst ~routing

let test_mcf_matches_p1_example1 () =
  let inst = example1 () in
  let routing = Baselines.shortest_path_routing inst in
  let res = Most_critical_first.solve_routed inst ~routing in
  let reference = p1_reference ~alpha:2. inst ~routing in
  Alcotest.(check bool)
    (Printf.sprintf "mcf %.4f vs numeric %.4f" res.Solution.energy reference)
    true
    (Float.abs (res.Solution.energy -. reference) /. reference < 0.01)

let prop_mcf_close_to_p1 =
  QCheck.Test.make ~name:"most-critical-first: tracks the (P1) numeric optimum" ~count:8
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Prng.create seed in
      let graph = Builders.line 4 in
      let n = 2 + Prng.int rng 2 in
      let flows =
        List.init n (fun id ->
            let src = Prng.int rng 3 in
            let dst = src + 1 + Prng.int rng (3 - src) in
            let r = Prng.uniform rng ~lo:0. ~hi:6. in
            let d = r +. 1. +. Prng.uniform rng ~lo:0. ~hi:4. in
            Flow.make ~id ~src ~dst ~volume:(1. +. Prng.float rng 9.) ~release:r
              ~deadline:d)
      in
      let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
      let routing = Baselines.shortest_path_routing inst in
      let res = Most_critical_first.solve_routed inst ~routing in
      let reference = p1_reference ~alpha:2. inst ~routing in
      (* The numeric solution is feasible for (P1), so MCF (claimed
         optimal) must not exceed it by more than solver slack; and it
         should not be grossly below (the reference converges). *)
      res.Solution.energy <= reference *. 1.02
      && res.Solution.energy >= reference *. 0.9)

let prop_mcf_close_to_p1_fat_tree =
  QCheck.Test.make
    ~name:"most-critical-first: tracks (P1) with multi-hop coupled routes" ~count:6
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Prng.create seed in
      let graph = Builders.fat_tree 4 in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:3 () in
      let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
      let routing = Baselines.shortest_path_routing inst in
      let res = Most_critical_first.solve_routed inst ~routing in
      let reference = p1_reference ~alpha:2. inst ~routing in
      res.Solution.energy <= reference *. 1.02
      && res.Solution.energy >= reference *. 0.9)

let test_mcf_idle_energy_accounting () =
  (* sigma > 0: every directed link on some route pays sigma over the
     whole horizon, used or not at a given moment. *)
  let graph = Builders.line 3 in
  let power = Model.make ~sigma:2. ~mu:1. ~alpha:2. () in
  let f1 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  let inst = Instance.make ~graph ~power ~flows:[ f1; f2 ] in
  let res = Baselines.sp_mcf inst in
  (* 2 active directed links, horizon [1,4] -> idle = 2 * 2 * 3 = 12;
     dynamic part unchanged from the sigma = 0 case. *)
  let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
  let dynamic = (2. *. 6. *. (s2 /. sqrt 2.)) +. (8. *. s2) in
  check_float "energy with idle" (12. +. dynamic) res.Solution.energy

let prop_mcf_schedule_feasible =
  QCheck.Test.make ~name:"most-critical-first: schedules are feasible circuits" ~count:25
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Prng.create seed in
      let graph = Builders.fat_tree 4 in
      let flows =
        Dcn_flow.Workload.paper_random ~rng ~graph ~n:(4 + Prng.int rng 8) ()
      in
      let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
      let res = Baselines.sp_mcf inst in
      (not (Solution.placement_complete res))
      || Schedule.Check.is_feasible ~exclusive:true res.Solution.schedule)

(* ------------------------------------------------------------------ *)
(* Random-Schedule                                                    *)
(* ------------------------------------------------------------------ *)

let small_instance ?(n = 8) ?(alpha = 2.) seed =
  let graph = Builders.fat_tree 4 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha () in
  let rng = Prng.create seed in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n () in
  (Instance.make ~graph ~power ~flows, rng)

let test_rs_example1 () =
  let inst = example1 () in
  let rng = Prng.create 42 in
  let rs = rs_solve ~rng inst in
  Alcotest.(check bool) "feasible" true rs.Solution.feasible;
  (* On a line both flows have exactly one candidate path. *)
  List.iter
    (fun (_, count) -> Alcotest.(check int) "single candidate" 1 count)
    (Solution.candidates rs);
  (* Interval-density energy computed by hand: 92 (see Example 1 trace:
     link A->B at 4 on [1,2], 7 on [2,3], 3 on [3,4]; B->C at 3 on [2,4]). *)
  check_float "energy" 92. rs.Solution.energy

let test_rs_deterministic () =
  let inst, _ = small_instance 3 in
  let run () =
    let rng = Prng.create 99 in
    let rs = rs_solve ~rng inst in
    (rs.Solution.energy, (Solution.paths rs))
  in
  let e1, p1 = run () in
  let e2, p2 = run () in
  check_float "same energy" e1 e2;
  Alcotest.(check bool) "same paths" true (p1 = p2)

let test_rs_schedule_meets_deadlines () =
  let inst, rng = small_instance 17 in
  let rs = rs_solve ~rng inst in
  Alcotest.(check int) "no deadline violations" 0
    (List.length (Schedule.Check.deadlines rs.Solution.schedule))

let prop_rs_theorem4_deadlines =
  QCheck.Test.make ~name:"random-schedule: every deadline met (Theorem 4)" ~count:15
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let inst, rng = small_instance ~n:(4 + (seed mod 8)) seed in
      let rs = rs_solve ~rng inst in
      Schedule.Check.deadlines rs.Solution.schedule = [])

let prop_rs_at_least_lb =
  QCheck.Test.make ~name:"random-schedule: energy >= fractional lower bound" ~count:15
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let inst, rng = small_instance seed in
      let rs = rs_solve ~rng inst in
      let lb = Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)) in
      rs.Solution.energy >= lb.Lower_bound.value -. 1e-6)

let prop_rs_paths_from_candidates =
  QCheck.Test.make ~name:"random-schedule: chosen path connects the endpoints" ~count:15
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let inst, rng = small_instance seed in
      let rs = rs_solve ~rng inst in
      List.for_all
        (fun (id, path) ->
          let f = Option.get (Instance.find_flow_opt inst id) in
          Graph.is_path inst.Instance.graph ~src:f.Flow.src ~dst:f.Flow.dst path)
        (Solution.paths rs))

let test_rs_refine_feasible () =
  (* Seed chosen so the MCF refinement's virtual-circuit placement
     completes (it is a heuristic and fails on roughly half the draws). *)
  let inst, rng = small_instance 24 in
  let rs = rs_solve ~rng inst in
  let refined = Random_schedule.refine inst rs in
  Alcotest.(check bool) "refined schedule meets deadlines" true
    (Schedule.Check.deadlines refined.Solution.schedule = [])

(* ------------------------------------------------------------------ *)
(* Relaxation / Lower bound                                           *)
(* ------------------------------------------------------------------ *)

let test_relaxation_weights_sum_to_density () =
  let inst, _ = small_instance 31 in
  let relax = Relaxation.solve ~fw_config:quick_fw inst in
  Array.iter
    (fun (isol : Relaxation.interval_solution) ->
      List.iter
        (fun (id, paths) ->
          let f = Option.get (Instance.find_flow_opt inst id) in
          let total = Dcn_mcf.Decompose.total_weight paths in
          Alcotest.(check bool)
            (Printf.sprintf "flow %d interval %d weight" id isol.Relaxation.index)
            true
            (Float.abs (total -. Flow.density f) < 1e-4 *. Float.max 1. (Flow.density f)))
        isol.Relaxation.flow_paths)
    relax.Relaxation.intervals

let test_relaxation_active_flows_only () =
  let inst = example1 () in
  let relax = Relaxation.solve ~fw_config:quick_fw inst in
  (* K = 3 intervals; flow 2 active in I1, I2; flow 1 in I2, I3. *)
  Alcotest.(check int) "intervals" 3 (Array.length relax.Relaxation.intervals);
  let ids k =
    List.sort compare (List.map fst relax.Relaxation.intervals.(k).Relaxation.flow_paths)
  in
  Alcotest.(check (list int)) "I1" [ 2 ] (ids 0);
  Alcotest.(check (list int)) "I2" [ 1; 2 ] (ids 1);
  Alcotest.(check (list int)) "I3" [ 1 ] (ids 2)

let test_relaxation_gap_interval () =
  (* Disjoint spans create an interval with no active flow; its cost
     contribution must be zero and everything still runs. *)
  let graph = Builders.line 3 in
  let f1 = Flow.make ~id:0 ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:1. in
  let f2 = Flow.make ~id:1 ~src:1 ~dst:2 ~volume:2. ~release:2. ~deadline:3. in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows:[ f1; f2 ] in
  let relax = Relaxation.solve ~fw_config:quick_fw inst in
  Alcotest.(check int) "3 intervals" 3 (Array.length relax.Relaxation.intervals);
  check_float "gap interval costs nothing" 0. relax.Relaxation.intervals.(1).Relaxation.cost;
  Alcotest.(check (list (pair int (list (list int)))))
    "no paths in the gap" []
    (List.map
       (fun (id, ps) ->
         (id, List.map (fun (p : Dcn_mcf.Decompose.weighted_path) -> p.links) ps))
       relax.Relaxation.intervals.(1).Relaxation.flow_paths);
  (* Random-Schedule still produces a feasible schedule. *)
  let rng = Prng.create 3 in
  let rs = rs_solve ~relaxation:relax ~rng inst in
  Alcotest.(check int) "deadline violations" 0
    (List.length (Schedule.Check.deadlines rs.Solution.schedule))

let test_rs_reuses_relaxation () =
  let inst, _ = small_instance 67 in
  let relax = Relaxation.solve ~fw_config:quick_fw inst in
  let solve () =
    let rng = Prng.create 5 in
    (rs_solve ~relaxation:relax ~rng inst)
      .Solution.energy
  in
  let fresh () =
    let rng = Prng.create 5 in
    (rs_solve ~rng inst).Solution.energy
  in
  (* Same fw config, same rng stream: passing the relaxation must not
     change the outcome. *)
  check_float "same result" (fresh ()) (solve ())

let test_joint_relaxation_single_flow () =
  (* One flow alone: both relaxations coincide with the constant-density
     optimum |P| * w * D^(alpha-1). *)
  let graph = Builders.line 4 in
  let f = Flow.make ~id:0 ~src:0 ~dst:3 ~volume:9. ~release:1. ~deadline:4. in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows:[ f ] in
  let joint = Joint_relaxation.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "joint %.4f close to 81" joint.Joint_relaxation.cost)
    true
    (Float.abs (joint.Joint_relaxation.cost -. 81.) /. 81. < 0.01)

let test_joint_relaxation_below_paper_lb () =
  (* The joint relaxation has strictly more freedom, so its certified
     bound sits below the paper's. *)
  let inst, _ = small_instance 71 in
  let paper = Lower_bound.compute ~fw_config:quick_fw inst in
  let joint = Joint_relaxation.solve inst in
  Alcotest.(check bool) "joint <= paper fractional cost" true
    (joint.Joint_relaxation.lb <= paper.Lower_bound.fractional_cost +. 1e-6)

let test_joint_relaxation_below_mcf_example1 () =
  (* Example 1: the paper's LB (92) exceeds the DCFS optimum (90.588)
     because it pins densities; the joint bound must not. *)
  let inst = example1 () in
  let joint = Joint_relaxation.solve inst in
  let mcf = (Baselines.sp_mcf inst).Solution.energy in
  Alcotest.(check bool)
    (Printf.sprintf "joint lb %.4f <= mcf %.4f" joint.Joint_relaxation.lb mcf)
    true
    (joint.Joint_relaxation.lb <= mcf +. 1e-6)

let test_lower_bound_below_cost () =
  let inst, _ = small_instance 37 in
  let lb = Lower_bound.compute ~fw_config:quick_fw inst in
  Alcotest.(check bool) "lb <= fractional cost" true
    (lb.Lower_bound.value <= lb.Lower_bound.fractional_cost +. 1e-9);
  Alcotest.(check bool) "positive" true (lb.Lower_bound.value > 0.)

(* ------------------------------------------------------------------ *)
(* Baselines / Exact                                                  *)
(* ------------------------------------------------------------------ *)

let test_sp_routing_minimal_hops () =
  let inst, _ = small_instance 41 in
  let routing = Baselines.shortest_path_routing inst in
  List.iter
    (fun (f : Flow.t) ->
      let sp = Dcn_topology.Paths.shortest_path inst.Instance.graph ~src:f.src ~dst:f.dst in
      match sp with
      | None -> Alcotest.fail "disconnected"
      | Some p ->
        Alcotest.(check int)
          (Printf.sprintf "flow %d hops" f.id)
          (List.length p)
          (List.length (routing f.id)))
    inst.Instance.flows

let test_ecmp_routing_min_hop () =
  let inst, rng = small_instance 43 in
  let routing = Baselines.ecmp_routing ~rng inst in
  List.iter
    (fun (f : Flow.t) ->
      let p = routing f.id in
      Alcotest.(check bool) "valid path" true
        (Graph.is_path inst.Instance.graph ~src:f.src ~dst:f.dst p);
      match
        Dcn_topology.Paths.shortest_path inst.Instance.graph ~src:f.src ~dst:f.dst
      with
      | None -> Alcotest.fail "disconnected"
      | Some sp ->
        Alcotest.(check int)
          (Printf.sprintf "flow %d min hops" f.id)
          (List.length sp) (List.length p))
    inst.Instance.flows

let test_ecmp_spreads () =
  (* Cross-pod pair in a fat-tree has 4 equal-cost routes; with enough
     flows between the same pair ECMP should use more than one. *)
  let graph = Builders.fat_tree 4 in
  let flows =
    List.init 12 (fun id ->
        Flow.make ~id ~src:0 ~dst:15 ~volume:4. ~release:0. ~deadline:10.)
  in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows in
  let rng = Prng.create 4 in
  let routing = Baselines.ecmp_routing ~rng inst in
  let distinct =
    List.sort_uniq compare (List.map (fun (f : Flow.t) -> routing f.id) flows)
  in
  Alcotest.(check bool) "uses several routes" true (List.length distinct >= 2)

let test_ecmp_mcf_runs () =
  let inst, rng = small_instance 47 in
  let res = Baselines.ecmp_mcf ~rng inst in
  Alcotest.(check bool) "energy positive" true (res.Solution.energy > 0.)

let test_exact_separates_flows () =
  (* Two identical flows, two parallel links: the optimum uses both. *)
  let graph = Builders.parallel ~links:2 in
  let power = Model.quadratic in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:1. in
  let inst = Instance.make ~graph ~power ~flows:[ mk 0; mk 1 ] in
  let res = Exact.search inst in
  check_float "energy 8 (one flow per link at rate 2)" 8. res.Exact.energy;
  let l0 = List.assoc 0 res.Exact.routing and l1 = List.assoc 1 res.Exact.routing in
  Alcotest.(check bool) "different links" true (l0 <> l1)

let test_exact_combination_budget () =
  let graph = Builders.parallel ~links:10 in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:1. in
  let inst =
    Instance.make ~graph ~power:Model.quadratic ~flows:(List.init 6 mk)
  in
  Alcotest.(check bool) "budget enforced" true
    (try ignore (Exact.search ~max_combinations:1000 inst); false
     with Invalid_argument _ -> true)

let prop_exact_below_heuristics =
  QCheck.Test.make
    ~name:"exact: optimum below SP+MCF and RS on parallel links" ~count:10
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.parallel ~links:3 in
      let power = Model.quadratic in
      let rng = Prng.create seed in
      let flows =
        List.init 3 (fun id ->
            let r = Prng.uniform rng ~lo:0. ~hi:4. in
            let d = r +. 1. +. Prng.uniform rng ~lo:0. ~hi:3. in
            Flow.make ~id ~src:0 ~dst:1 ~volume:(1. +. Prng.float rng 9.) ~release:r
              ~deadline:d)
      in
      let inst = Instance.make ~graph ~power ~flows in
      let exact = (Exact.search inst).Exact.energy in
      let sp = (Baselines.sp_mcf inst).Solution.energy in
      let rs = (rs_solve ~rng inst).Solution.energy in
      (* On single-hop networks any fluid schedule is dominated by the
         circuit optimum, so exact <= both heuristics. *)
      exact <= sp +. 1e-6 && exact <= rs +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Greedy energy-aware routing                                        *)
(* ------------------------------------------------------------------ *)

let test_ear_line_energy () =
  (* Forced routes on Example 1: interval-density scheduling gives the
     same 92 as Random-Schedule there. *)
  let ear = ear_solve (example1 ()) in
  check_float "energy" 92. ear.Solution.energy

let test_ear_spreads_speed_scaling () =
  (* sigma = 0, two identical concurrent flows, two parallel links: the
     second flow must avoid the loaded link (marginal x^2 cost). *)
  let graph = Builders.parallel ~links:2 in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:2. in
  let inst = Instance.make ~graph ~power:Model.quadratic ~flows:[ mk 0; mk 1 ] in
  let ear = ear_solve inst in
  let p0 = List.assoc 0 (Solution.paths ear) and p1 = List.assoc 1 (Solution.paths ear) in
  Alcotest.(check bool) "different links" true (p0 <> p1);
  (* Each link at rate 2 for 2s: energy 2 * 4 * 2 = 16. *)
  check_float "energy" 16. ear.Solution.energy

let test_ear_consolidates_power_down () =
  (* Large sigma: sharing a warm link beats switching on a cold one
     (f(2d) - f(d) < sigma + f(d) here). *)
  let graph = Builders.parallel ~links:2 in
  let power = Model.make ~sigma:100. ~mu:1. ~alpha:2. () in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:4. ~release:0. ~deadline:2. in
  let inst = Instance.make ~graph ~power ~flows:[ mk 0; mk 1 ] in
  let ear = ear_solve inst in
  let p0 = List.assoc 0 (Solution.paths ear) and p1 = List.assoc 1 (Solution.paths ear) in
  Alcotest.(check bool) "same link" true (p0 = p1);
  Alcotest.(check int) "one active direction" 1
    (List.length (Schedule.active_links ear.Solution.schedule))

let test_ear_deadlines () =
  let inst, _ = small_instance 59 in
  let ear = ear_solve inst in
  Alcotest.(check int) "no deadline violations" 0
    (List.length (Schedule.Check.deadlines ear.Solution.schedule))

let prop_ear_above_lb =
  QCheck.Test.make ~name:"greedy-ear: energy at least the fractional LB" ~count:10
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let inst, _ = small_instance seed in
      let ear = ear_solve inst in
      let lb = Lower_bound.compute ~fw_config:quick_fw inst in
      ear.Solution.energy >= lb.Lower_bound.value -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Online admission                                                   *)
(* ------------------------------------------------------------------ *)

let test_online_no_cap_accepts_all () =
  let inst, _ = small_instance 73 in
  let online = online_solve inst in
  Alcotest.(check int) "no rejections" 0 (List.length (Solution.rejected online));
  check_float "acceptance 1" 1. (Solution.acceptance_rate online);
  (* Coincides with Greedy-EAR when nothing is rejected. *)
  let ear = ear_solve inst in
  check_float "same energy as EAR" ear.Solution.energy online.Solution.energy

let test_online_tight_cap_rejects () =
  (* Single link of capacity 1; two concurrent density-1 flows: the
     second must be rejected. *)
  let graph = Builders.parallel ~links:1 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:1. () in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:2. in
  let inst = Instance.make ~graph ~power ~flows:[ mk 0; mk 1 ] in
  let online = online_solve inst in
  Alcotest.(check (list int)) "first accepted" [ 0 ] (Solution.accepted online);
  Alcotest.(check (list int)) "second rejected" [ 1 ] (Solution.rejected online);
  check_float "half accepted" 0.5 (Solution.acceptance_rate online)

let test_online_reroutes_to_fit () =
  (* Two parallel links of capacity 1: both flows fit on separate links. *)
  let graph = Builders.parallel ~links:2 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:1. () in
  let mk id = Flow.make ~id ~src:0 ~dst:1 ~volume:2. ~release:0. ~deadline:2. in
  let inst = Instance.make ~graph ~power ~flows:[ mk 0; mk 1 ] in
  let online = online_solve inst in
  Alcotest.(check int) "all accepted" 2 (List.length (Solution.accepted online))

let prop_online_accepted_feasible =
  QCheck.Test.make ~name:"online: accepted schedule respects caps and deadlines"
    ~count:15
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.fat_tree 4 in
      let power = Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:2. () in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:20 () in
      let inst = Instance.make ~graph ~power ~flows in
      let online = online_solve inst in
      Schedule.Check.is_feasible ~exclusive:false online.Solution.schedule)

(* ------------------------------------------------------------------ *)
(* Bounds                                                             *)
(* ------------------------------------------------------------------ *)

let test_bounds_example1 () =
  let b = Bounds.compute (example1 ()) in
  (* Timeline 1,2,3,4: lambda = 3; n = 2; D = max(3, 4) = 4. *)
  check_float "lambda" 3. b.Bounds.lambda;
  Alcotest.(check int) "n" 2 b.Bounds.n;
  check_float "D" 4. b.Bounds.max_density;
  (* alpha = 2: theorem6 = 9 * (4 * log 4) ... log D = max 1 (ln 4). *)
  check_float "theorem6" (9. *. (4. *. Float.log 4.)) b.Bounds.theorem6;
  check_float "theorem3" (13. /. 12.) b.Bounds.theorem3

let test_bounds_dominate_measured () =
  (* The worst-case term must dominate the measured ratio by a wide
     margin on any reasonable instance. *)
  let inst, rng = small_instance 53 in
  let rs = rs_solve ~rng inst in
  let lb = Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)) in
  let measured = rs.Solution.energy /. lb.Lower_bound.value in
  let b = Bounds.compute inst in
  Alcotest.(check bool) "theorem6 dominates" true (b.Bounds.theorem6 > measured);
  Alcotest.(check bool) "floor sensible" true (b.Bounds.theorem3 > 1.)

(* ------------------------------------------------------------------ *)
(* Gadgets                                                            *)
(* ------------------------------------------------------------------ *)

let test_gadget_three_partition_validation () =
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> Gadgets.make_three_partition ~integers:[ 1; 2 ]);
  invalid (fun () -> Gadgets.make_three_partition ~integers:[ 1; 1; 10 ]);
  let tp = Gadgets.make_three_partition ~integers:[ 6; 7; 7; 6; 7; 7 ] in
  Alcotest.(check int) "m" 2 tp.Gadgets.m;
  Alcotest.(check int) "b" 20 tp.Gadgets.b

let test_gadget_solvable_generator () =
  let rng = Prng.create 8 in
  let tp = Gadgets.solvable_three_partition ~m:3 ~b:40 ~rng in
  Alcotest.(check int) "3m integers" 9 (List.length tp.Gadgets.integers);
  Alcotest.(check int) "sum" (3 * 40) (List.fold_left ( + ) 0 tp.Gadgets.integers)

let test_gadget_instance_r_opt () =
  let rng = Prng.create 8 in
  let tp = Gadgets.solvable_three_partition ~m:2 ~b:20 ~rng in
  let inst = Gadgets.three_partition_instance ~alpha:3. tp in
  check_float "R_opt = B" 20. (Model.r_opt inst.Instance.power)

let test_gadget_exact_matches_closed_form () =
  let rng = Prng.create 12 in
  let tp = Gadgets.solvable_three_partition ~m:2 ~b:20 ~rng in
  let inst = Gadgets.three_partition_instance ~links:3 tp in
  let exact = (Exact.search ~max_combinations:100_000 inst).Exact.energy in
  check_float "Theorem 2 optimum" (Gadgets.three_partition_opt_energy tp) exact

let test_gadget_inapprox_ratio () =
  (* alpha = 2: 3/2 * (1 + ((2/3)^2 - 1)/2) = 13/12. *)
  check_float "alpha 2" (13. /. 12.) (Gadgets.inapprox_ratio ~alpha:2.);
  Alcotest.(check bool) "ratio > 1 for alpha 4" true
    (Gadgets.inapprox_ratio ~alpha:4. > 1.)

let test_gadget_partition_energy () =
  let p = Gadgets.make_partition ~integers:[ 3; 4; 5; 3; 4; 5 ] in
  (* C = 12, sigma = mu (alpha-1) C^alpha = 144 for alpha 2:
     yes energy = 2*144 + 2*144 = 576. *)
  check_float "yes energy" 576. (Gadgets.partition_yes_energy p)

(* ------------------------------------------------------------------ *)
(* Serialize                                                          *)
(* ------------------------------------------------------------------ *)

let same_instance (a : Instance.t) (b : Instance.t) =
  Graph.num_nodes a.Instance.graph = Graph.num_nodes b.Instance.graph
  && Graph.num_links a.Instance.graph = Graph.num_links b.Instance.graph
  && List.init (Graph.num_links a.Instance.graph) (fun l ->
         (Graph.link_src a.Instance.graph l, Graph.link_dst a.Instance.graph l))
     = List.init (Graph.num_links b.Instance.graph) (fun l ->
           (Graph.link_src b.Instance.graph l, Graph.link_dst b.Instance.graph l))
  && a.Instance.power = b.Instance.power
  && a.Instance.flows = b.Instance.flows

let test_serialize_roundtrip_example1 () =
  let inst = example1 () in
  let text = Serialize.instance_to_string inst in
  let back = Serialize.instance_of_string text in
  Alcotest.(check bool) "round trip" true (same_instance inst back);
  (* Solving the reloaded instance gives identical energy. *)
  check_float "same energy"
    (Baselines.sp_mcf inst).Solution.energy
    (Baselines.sp_mcf back).Solution.energy

let test_serialize_roundtrip_infinite_cap () =
  let graph = Builders.fat_tree 4 in
  let power = Model.make ~sigma:3.5 ~mu:2. ~alpha:3. () in
  let rng = Prng.create 61 in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:10 () in
  let inst = Instance.make ~graph ~power ~flows in
  let back = Serialize.instance_of_string (Serialize.instance_to_string inst) in
  Alcotest.(check bool) "round trip" true (same_instance inst back)

let test_serialize_rejects_garbage () =
  let reject s =
    Alcotest.(check bool) ("rejects " ^ s) true
      (try ignore (Serialize.instance_of_string s); false with Failure _ -> true)
  in
  reject "";
  reject "not-a-header\n";
  reject "dcnsched-instance v1\nnode 0 host\nwhatever 1 2\n";
  reject "dcnsched-instance v1\nnode 0 host\nnode 5 host\n";
  reject "dcnsched-instance v1\nnode 0 host\nnode 1 host\ncable 0 1\nflow 0 0 1 1 0 1\n"
  (* missing power *)

let test_serialize_comments_and_blanks () =
  let text =
    "dcnsched-instance v1\n# a comment\n\nnode 0 host a\nnode 1 host b\ncable 0 1\npower 0 1 2 inf\nflow 0 0 1 2.5 0 1\n"
  in
  let inst = Serialize.instance_of_string text in
  Alcotest.(check int) "one flow" 1 (Instance.num_flows inst);
  check_float "volume" 2.5 (Option.get (Instance.find_flow_opt inst 0)).Flow.volume

let test_serialize_schedule_export () =
  let res = Baselines.sp_mcf (example1 ()) in
  let text = Serialize.schedule_to_string res.Solution.schedule in
  Alcotest.(check bool) "has header" true
    (String.length text > 20 && String.sub text 0 18 = "dcnsched-schedule ")

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize: random instances round trip" ~count:25
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.random_fabric ~switches:6 ~degree:3 ~hosts:6 ~seed in
      let power = Model.make ~sigma:1.5 ~mu:0.5 ~alpha:2.5 ~cap:100. () in
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:5 () in
      let inst = Instance.make ~graph ~power ~flows in
      same_instance inst (Serialize.instance_of_string (Serialize.instance_to_string inst)))

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "core/instance",
      [
        Alcotest.test_case "basic" `Quick test_instance_basic;
        Alcotest.test_case "invalid" `Quick test_instance_invalid;
      ] );
    ( "core/most_critical_first",
      [
        Alcotest.test_case "Example 1 rates" `Quick test_mcf_example1_rates;
        Alcotest.test_case "Example 1 energy" `Quick test_mcf_example1_energy;
        Alcotest.test_case "schedule feasible" `Quick test_mcf_schedule_feasible;
        Alcotest.test_case "single flow density" `Quick test_mcf_single_flow_density;
        Alcotest.test_case "disjoint flows" `Quick test_mcf_disjoint_flows_independent;
        Alcotest.test_case "group intensities" `Quick test_mcf_groups_non_increasing;
        Alcotest.test_case "matches (P1) numeric (Example 1)" `Quick
          test_mcf_matches_p1_example1;
        Alcotest.test_case "idle energy accounting" `Quick test_mcf_idle_energy_accounting;
        qt prop_mcf_close_to_p1;
        qt prop_mcf_close_to_p1_fat_tree;
        qt prop_mcf_schedule_feasible;
      ] );
    ( "core/random_schedule",
      [
        Alcotest.test_case "Example 1" `Quick test_rs_example1;
        Alcotest.test_case "deterministic" `Quick test_rs_deterministic;
        Alcotest.test_case "deadlines met" `Quick test_rs_schedule_meets_deadlines;
        Alcotest.test_case "refine feasible" `Quick test_rs_refine_feasible;
        qt prop_rs_theorem4_deadlines;
        qt prop_rs_at_least_lb;
        qt prop_rs_paths_from_candidates;
      ] );
    ( "core/relaxation",
      [
        Alcotest.test_case "weights sum to density" `Quick
          test_relaxation_weights_sum_to_density;
        Alcotest.test_case "active flows per interval" `Quick
          test_relaxation_active_flows_only;
        Alcotest.test_case "gap interval" `Quick test_relaxation_gap_interval;
        Alcotest.test_case "relaxation reuse" `Quick test_rs_reuses_relaxation;
        Alcotest.test_case "lower bound below cost" `Quick test_lower_bound_below_cost;
        Alcotest.test_case "joint: single flow" `Quick test_joint_relaxation_single_flow;
        Alcotest.test_case "joint below paper LB" `Quick
          test_joint_relaxation_below_paper_lb;
        Alcotest.test_case "joint below MCF (Example 1)" `Quick
          test_joint_relaxation_below_mcf_example1;
      ] );
    ( "core/baselines_exact",
      [
        Alcotest.test_case "sp routing minimal" `Quick test_sp_routing_minimal_hops;
        Alcotest.test_case "ecmp min-hop" `Quick test_ecmp_routing_min_hop;
        Alcotest.test_case "ecmp spreads" `Quick test_ecmp_spreads;
        Alcotest.test_case "ecmp+mcf" `Quick test_ecmp_mcf_runs;
        Alcotest.test_case "exact separates flows" `Quick test_exact_separates_flows;
        Alcotest.test_case "combination budget" `Quick test_exact_combination_budget;
        qt prop_exact_below_heuristics;
      ] );
    ( "core/serialize",
      [
        Alcotest.test_case "round trip Example 1" `Quick test_serialize_roundtrip_example1;
        Alcotest.test_case "round trip infinite cap" `Quick
          test_serialize_roundtrip_infinite_cap;
        Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
        Alcotest.test_case "comments and blanks" `Quick test_serialize_comments_and_blanks;
        Alcotest.test_case "schedule export" `Quick test_serialize_schedule_export;
        qt prop_serialize_roundtrip;
      ] );
    ( "core/greedy_ear",
      [
        Alcotest.test_case "line energy" `Quick test_ear_line_energy;
        Alcotest.test_case "spreads under speed scaling" `Quick
          test_ear_spreads_speed_scaling;
        Alcotest.test_case "consolidates under power-down" `Quick
          test_ear_consolidates_power_down;
        Alcotest.test_case "deadlines" `Quick test_ear_deadlines;
        qt prop_ear_above_lb;
      ] );
    ( "core/online",
      [
        Alcotest.test_case "no cap accepts all" `Quick test_online_no_cap_accepts_all;
        Alcotest.test_case "tight cap rejects" `Quick test_online_tight_cap_rejects;
        Alcotest.test_case "reroutes to fit" `Quick test_online_reroutes_to_fit;
        qt prop_online_accepted_feasible;
      ] );
    ( "core/bounds",
      [
        Alcotest.test_case "Example 1 quantities" `Quick test_bounds_example1;
        Alcotest.test_case "dominates measured" `Quick test_bounds_dominate_measured;
      ] );
    ( "core/gadgets",
      [
        Alcotest.test_case "3-partition validation" `Quick
          test_gadget_three_partition_validation;
        Alcotest.test_case "solvable generator" `Quick test_gadget_solvable_generator;
        Alcotest.test_case "R_opt = B" `Quick test_gadget_instance_r_opt;
        Alcotest.test_case "exact = closed form" `Quick
          test_gadget_exact_matches_closed_form;
        Alcotest.test_case "inapprox ratio" `Quick test_gadget_inapprox_ratio;
        Alcotest.test_case "partition energy" `Quick test_gadget_partition_energy;
      ] );
  ]
