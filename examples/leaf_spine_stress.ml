(* Capacity-bound staged coflows on a leaf-spine fabric.

   With finite link capacity C, the randomised rounding of Algorithm 2
   can overload a link; the paper's remedy is to redraw until feasible.
   This example drives a leaf-spine fabric with staged batches of flows
   at increasing load and watches the rounding: attempts used, final
   feasibility, peak link utilisation, and how the deadline guarantee
   holds up in the simulator.

   Run with:  dune exec examples/leaf_spine_stress.exe *)

module Workload = Dcn_flow.Workload
module Schedule = Dcn_sched.Schedule
module RS = Dcn_core.Random_schedule
module Solution = Dcn_core.Solution

let () =
  let graph = Dcn_topology.Builders.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:4 in
  let cap = 8. in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap () in
  Format.printf "leaf-spine 3x4, 16 hosts, link capacity %g@.@." cap;

  List.iter
    (fun flows_per_stage ->
      let rng = Dcn_util.Prng.create (100 + flows_per_stage) in
      let flows =
        Workload.staged ~rng ~graph ~stages:3 ~flows_per_stage ~stage_length:10.
          ~volume:15. ()
      in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let rs =
        RS.solve
          ~config:{ RS.default_config with attempts = 50 }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let peak = Schedule.max_link_rate rs.Solution.schedule in
      let report = Dcn_sim.Fluid.run rs.Solution.schedule in
      Format.printf
        "%2d flows/stage: %s after %2d draw(s), peak link rate %6.2f/%g, deadlines %s@."
        flows_per_stage
        (if rs.Solution.feasible then "feasible  " else "INFEASIBLE")
        (Solution.attempts_used rs) peak cap
        (if report.Dcn_sim.Fluid.all_deadlines_met then "met" else "MISSED"))
    [ 4; 8; 16; 24; 32 ]
