(* Quickstart: the paper's Example 1, end to end.

   A 3-node line network A - B - C with power function f(x) = x^2 and
   two deadline-constrained flows.  We build the instance, run the
   optimal DCFS algorithm (Most-Critical-First) on shortest-path routes,
   inspect the schedule, and validate it in the fluid simulator.

   Run with:  dune exec examples/quickstart.exe *)

module Flow = Dcn_flow.Flow
module Mcf = Dcn_core.Most_critical_first
module Solution = Dcn_core.Solution

let () =
  (* 1. The network: three host nodes in a line (Figure 1). *)
  let graph = Dcn_topology.Builders.line 3 in

  (* 2. The power model: f(x) = x^2 — no idle power, speed scaling only. *)
  let power = Dcn_power.Model.quadratic in

  (* 3. Two flows: j1 = (A, C, r=2, d=4, w=6), j2 = (A, B, r=1, d=3, w=8). *)
  let j1 = Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let j2 = Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows:[ j1; j2 ] in
  Format.printf "%a@.@." Dcn_core.Instance.pp inst;

  (* 4. DCFS: routes are forced on a line; Most-Critical-First finds the
        optimal transmission rates (Theorem 1 / Corollary 1). *)
  let res = Dcn_core.Baselines.sp_mcf inst in
  Format.printf "Optimal rates (paper: sqrt 2 * s1 = s2 = (8 + 6 sqrt 2)/3 = %.6f):@."
    ((8. +. (6. *. sqrt 2.)) /. 3.);
  List.iter
    (fun (id, rate) -> Format.printf "  flow %d -> rate %.6f@." id rate)
    (List.sort compare res.Solution.per_flow_rates);

  (* 5. The critical groups the algorithm discovered. *)
  Format.printf "@.Critical intervals (selection order):@.";
  List.iter
    (fun (g : Mcf.group) ->
      let a, b = g.window in
      Format.printf "  link %d, interval [%g, %g], intensity %.4f, flows %a@." g.link a
        b g.intensity
        Format.(pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ",") pp_print_int)
        g.flow_ids)
    (Solution.groups res);

  (* 6. Energy (Eq. 5) and the concrete transmission slots. *)
  Format.printf "@.Total energy: %.6f@." res.Solution.energy;
  Format.printf "@.Transmission plan:@.";
  List.iter
    (fun (p : Dcn_sched.Schedule.plan) ->
      Format.printf "  flow %d over %d link(s):@." p.flow.Flow.id (List.length p.path);
      List.iter
        (fun (s : Dcn_sched.Schedule.slot) ->
          Format.printf "    [%.4f, %.4f] at rate %.4f@." s.start s.stop s.rate)
        p.slots)
    res.Solution.schedule.Dcn_sched.Schedule.plans;

  (* 7. A picture: per-link and per-flow Gantt charts. *)
  Format.printf "@.Link occupancy:@.%s@.Flow activity ('=' transmitting, '-' waiting):@.%s"
    (Dcn_sched.Gantt.render res.Solution.schedule)
    (Dcn_sched.Gantt.render_flows res.Solution.schedule);

  (* 8. Independent validation in the fluid simulator. *)
  let report = Dcn_sim.Fluid.run res.Solution.schedule in
  Format.printf "@.Simulator: %a@." Dcn_sim.Fluid.pp_report report;
  assert report.Dcn_sim.Fluid.all_deadlines_met
