(* Partition-aggregate search traffic on a fat-tree.

   The paper's introduction motivates deadline-constrained flows with
   interactive services: a front-end fans a query out to many workers
   whose responses must all arrive before a latency budget expires
   (Section I; the D3/D2TCP/pFabric line of work).  This example builds
   that pattern — waves of incast flows on a k = 4 fat-tree — and
   compares joint scheduling + routing (Random-Schedule) with
   shortest-path routing (SP+MCF), checking the deadline guarantee of
   Theorem 4 in the simulator.

   Run with:  dune exec examples/fat_tree_search.exe *)

module Flow = Dcn_flow.Flow
module Workload = Dcn_flow.Workload
module RS = Dcn_core.Random_schedule

let () =
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha:2. () in
  let rng = Dcn_util.Prng.create 2024 in

  (* Three query waves, 50 ms apart, each with an 8-worker fan-in and a
     40 ms deadline (time unit: ms; volume unit: arbitrary). *)
  let waves = 3 and workers = 8 in
  let flows =
    List.concat
      (List.init waves (fun wave ->
           let t0 = 50. *. float_of_int wave in
           let wave_flows =
             Workload.incast ~rng ~graph ~sources:workers
               ~horizon:(t0, t0 +. 40.) ~volume:12. ()
           in
           List.map
             (fun (f : Flow.t) ->
               Flow.make
                 ~id:((wave * workers) + f.id)
                 ~src:f.src ~dst:f.dst ~volume:f.volume ~release:f.release
                 ~deadline:f.deadline)
             wave_flows))
  in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  Format.printf "%a@.@." Dcn_core.Instance.pp inst;

  let sp = Dcn_core.Baselines.sp_mcf inst in
  let rs = RS.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  let lb = Dcn_core.Lower_bound.of_relaxation (Option.get (Dcn_core.Solution.relaxation rs)) in
  Format.printf "Energy:@.";
  Format.printf "  lower bound   %10.2f@." lb.Dcn_core.Lower_bound.value;
  Format.printf "  Random-Sched  %10.2f  (%.3fx LB)@." rs.Dcn_core.Solution.energy
    (rs.Dcn_core.Solution.energy /. lb.Dcn_core.Lower_bound.value);
  Format.printf "  SP + MCF      %10.2f  (%.3fx LB)@."
    sp.Dcn_core.Solution.energy
    (sp.Dcn_core.Solution.energy /. lb.Dcn_core.Lower_bound.value);

  (* Where did Random-Schedule route the fan-in?  Count the distinct
     paths per aggregator. *)
  let distinct_paths =
    List.length (List.sort_uniq compare (List.map snd (Dcn_core.Solution.paths rs)))
  in
  Format.printf "@.%d flows routed over %d distinct paths@." (List.length flows)
    distinct_paths;

  (* Theorem 4: every response meets its wave's deadline. *)
  let report = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
  Format.printf "@.Simulator: %a@." Dcn_sim.Fluid.pp_report report;
  List.iter
    (fun (fs : Dcn_sim.Fluid.flow_stat) ->
      if not fs.met_deadline then
        Format.printf "  !! flow %d missed its deadline@." fs.flow_id)
    report.Dcn_sim.Fluid.flow_stats;
  assert report.Dcn_sim.Fluid.all_deadlines_met;
  Format.printf "All %d worker responses met their deadlines.@." (List.length flows)
