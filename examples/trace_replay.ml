(* Replaying a production-like trace through every algorithm.

   Poisson arrivals, heavy-tailed (bounded-Pareto) flow sizes — the
   mice-and-elephants mix of real data centers — on a leaf-spine fabric.
   All four routing/scheduling policies run on the same trace:

   - SP+MCF      deterministic shortest paths, optimal DCFS rates
   - ECMP+MCF    random minimum-hop paths, optimal DCFS rates
   - Greedy-EAR  online energy-aware routing, density rates
   - RS          the paper's Random-Schedule (relaxation + rounding)

   and the fractional LB normalises everything.

   Run with:  dune exec examples/trace_replay.exe *)

module Workload = Dcn_flow.Workload
module Table = Dcn_util.Table

let () =
  let graph = Dcn_topology.Builders.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:6 in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha:2. () in
  let rng = Dcn_util.Prng.create 99 in
  let flows = Workload.trace ~load:2. ~rng ~graph ~horizon:(0., 120.) () in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  Format.printf "%a@." Dcn_core.Instance.pp inst;
  let vols =
    Array.of_list (List.map (fun (f : Dcn_flow.Flow.t) -> f.volume) flows)
  in
  Format.printf "flow sizes: %a@.@." Dcn_util.Stats.pp_summary
    (Dcn_util.Stats.summarize vols);

  let rs =
    Dcn_core.Random_schedule.solve ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  let lb =
    (Dcn_core.Lower_bound.of_relaxation
       (Option.get (Dcn_core.Solution.relaxation rs)))
      .Dcn_core.Lower_bound.value
  in
  let sp = Dcn_core.Baselines.sp_mcf inst in
  let ecmp = Dcn_core.Baselines.ecmp_mcf ~rng inst in
  let ear =
    Dcn_core.Greedy_ear.solve ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  let rows =
    [
      ("lower bound", lb);
      ("Random-Schedule", rs.Dcn_core.Solution.energy);
      ("Greedy-EAR (online)", ear.Dcn_core.Solution.energy);
      ("ECMP + MCF", ecmp.Dcn_core.Solution.energy);
      ("SP + MCF", sp.Dcn_core.Solution.energy);
    ]
  in
  print_endline
    (Table.render
       ~headers:[ "policy"; "energy"; "vs LB" ]
       ~rows:
         (List.map
            (fun (name, e) ->
              [ name; Table.cell_f ~decimals:1 e; Table.cell_f (e /. lb) ])
            rows)
       ());

  (* The deadline guarantee survives the trace too. *)
  let report = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
  Format.printf "@.Simulator: %a@." Dcn_sim.Fluid.pp_report report;
  assert report.Dcn_sim.Fluid.all_deadlines_met
