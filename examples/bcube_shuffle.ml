(* MapReduce shuffle on a BCube with power-down.

   BCube [15 in the paper] is a server-centric topology with multiple
   links per host — plenty of path diversity for the router to exploit.
   This example runs a mappers-to-reducers shuffle with a non-zero idle
   power (sigma > 0, the full Eq. 1 model), where consolidating traffic
   onto few links and switching the rest off matters as much as speed
   scaling.  It reports the energy split and the active-link counts of
   Random-Schedule vs shortest-path routing.

   Run with:  dune exec examples/bcube_shuffle.exe *)

module Workload = Dcn_flow.Workload
module Schedule = Dcn_sched.Schedule
module RS = Dcn_core.Random_schedule

let () =
  let graph = Dcn_topology.Builders.bcube ~n:4 ~level:1 in
  (* sigma chosen so the optimal operating rate (Lemma 3) is 4: links
     prefer to be either off or reasonably loaded. *)
  let power = Dcn_power.Model.make ~sigma:16. ~mu:1. ~alpha:2. () in
  let rng = Dcn_util.Prng.create 7 in
  let flows =
    Workload.shuffle ~rng ~graph ~mappers:6 ~reducers:4 ~volume:20. ~horizon:(0., 30.) ()
  in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  Format.printf "%a@." Dcn_core.Instance.pp inst;
  Format.printf "optimal operating rate R_opt = %g (Lemma 3)@.@."
    (Dcn_power.Model.r_opt power);

  let sp = Dcn_core.Baselines.sp_mcf inst in
  let rs = RS.solve ~instance:inst ~workspace:(Dcn_core.Solver_api.workspace ~rng ()) ~deadline:Dcn_engine.Deadline.never () in
  let lb = Dcn_core.Lower_bound.of_relaxation (Option.get (Dcn_core.Solution.relaxation rs)) in

  let describe label energy schedule =
    Format.printf "%s: energy %8.1f = idle %8.1f + dynamic %8.1f, %d active links@."
      label energy
      (Schedule.idle_energy schedule)
      (Schedule.dynamic_energy schedule)
      (List.length (Schedule.active_links schedule))
  in
  describe "Random-Schedule" rs.Dcn_core.Solution.energy rs.Dcn_core.Solution.schedule;
  describe "SP + MCF       " sp.Dcn_core.Solution.energy
    sp.Dcn_core.Solution.schedule;
  Format.printf "lower bound    : %8.1f@.@." lb.Dcn_core.Lower_bound.value;

  let report = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
  Format.printf "Simulator: %a@." Dcn_sim.Fluid.pp_report report;
  assert report.Dcn_sim.Fluid.all_deadlines_met
