(** The typed events a scheduler session absorbs.

    A serving session is driven by a stream of these — one JSON object
    per line on [dcn serve]'s stdin, one list element in a replayed
    log.  The wire shapes are:

    {v
    {"event":"arrival","id":1,"src":0,"dst":4,"volume":6,"release":0,"deadline":4}
    {"event":"cancel","id":1}
    {"event":"coflow","id":7,"flows":[{"id":2,"src":0,"dst":4,"volume":6,"release":0,"deadline":4},...]}
    {"event":"coflow-cancel","id":7}
    {"event":"advance","to":2.5}
    v}

    [of_json] is total: malformed shapes and field values that
    {!Dcn_flow.Flow.make} rejects (non-positive volume, empty window,
    equal endpoints, non-finite numbers) come back as [Error] with a
    message, never an exception.  Positioned errors (line and byte
    offset of a malformed stream line) are the transport's job — see
    {!Dcn_engine.Json.parse} and the [dcn serve]/[dcn replay] loop.

    {b Wire note (outcome direction).}  Since the telemetry release the
    per-event outcome lines [dcn serve] writes carry two extra leading
    fields stamped by the CLI layer: a monotone ["seq"] and
    ["uptime_ms"] (wall-clock, the single nondeterministic outcome
    field).  They are not part of this module — session outcomes stay
    byte-identical across [--jobs] — and [of_json] here still accepts
    exactly the three {e input} event shapes above, ignoring nothing:
    readers of the outcome stream should tell stats lines apart by
    their ["stats"] wrapper (see {!Dcn_obs.Snapshot}). *)

type t =
  | Flow_arrival of Dcn_flow.Flow.t
      (** admit this flow (subject to the session's policy) *)
  | Flow_cancel of { flow : int }  (** withdraw a committed flow *)
  | Coflow_arrival of { coflow : int; flows : Dcn_flow.Flow.t list }
      (** admit this flow {e group} all-or-nothing: either every member
          commits or the whole coflow is rejected *)
  | Coflow_cancel of { coflow : int }
      (** withdraw every member of a committed coflow *)
  | Advance_clock of { clock : float }
      (** move the session clock forward; completed flows retire *)

val kind : t -> string
(** ["arrival"], ["cancel"], ["coflow"], ["coflow-cancel"] or
    ["advance"] — the wire tag. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Dcn_engine.Json.t

val of_json : Dcn_engine.Json.t -> (t, string) result
