module Json = Dcn_engine.Json
module Deadline = Dcn_engine.Deadline
module Trace = Dcn_engine.Trace
module Pool = Dcn_engine.Pool
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Fw = Dcn_mcf.Frank_wolfe
module Instance = Dcn_core.Instance
module Relaxation = Dcn_core.Relaxation
module Random_schedule = Dcn_core.Random_schedule
module Schedule = Dcn_sched.Schedule
module Schedule_delta = Dcn_sched.Schedule_delta
module Certify = Dcn_check.Certify
module Repair = Dcn_resilience.Repair

type config = { attempts : int; fw_config : Fw.config; certify : bool }

let default_config =
  {
    attempts = 10;
    fw_config = { Fw.default_config with max_iters = 60; gap_tol = 1e-3 };
    certify = true;
  }

type stats = {
  mutable events : int;
  mutable committed : int;
  mutable degraded : int;
  mutable rejected : int;
  mutable admitted : int;
  mutable cancelled : int;
  mutable retired : int;
  mutable dropped : int;
  mutable resolved_intervals : int;
  mutable reused_intervals : int;
  mutable certified_epochs : int;
  mutable uncertified_epochs : int;
  mutable coflows_admitted : int;
  mutable coflows_rejected : int;
}

(* Live-telemetry handles.  Counters/histograms are updated on the
   caller's domain with values that are pure functions of the event
   sequence (except wall time and allocation, which are genuinely
   nondeterministic), so snapshot totals stay bit-identical at every
   [--jobs].  [serve.resolved_intervals]/[serve.reused_intervals] reach
   the registry through the [Trace.counter] hook instead — the
   emissions in [resolve_relaxation] below are unconditional. *)
let obs_events = Dcn_obs.Registry.counter ~help:"events applied" "serve.events"

let obs_committed =
  Dcn_obs.Registry.counter ~help:"events committed" "serve.committed"

let obs_degraded =
  Dcn_obs.Registry.counter ~help:"events absorbed after shedding" "serve.degraded"

let obs_rejected =
  Dcn_obs.Registry.counter ~help:"events refused" "serve.rejected"

let obs_certified =
  Dcn_obs.Registry.counter ~help:"epochs re-certified clean" "serve.certified"

let obs_uncertified =
  Dcn_obs.Registry.counter ~help:"epochs failing certification"
    "serve.uncertified"

let obs_apply_ms =
  Dcn_obs.Registry.histogram ~help:"per-event apply latency (ms)"
    "serve.apply_ms"

let obs_apply_minor_words =
  Dcn_obs.Registry.counter ~help:"minor-heap words allocated in apply"
    "serve.apply_minor_words"

let obs_energy =
  Dcn_obs.Registry.gauge ~help:"committed schedule energy (Eq. 5)"
    "serve.energy"

let obs_energy_lb =
  Dcn_obs.Registry.gauge ~help:"fractional relaxation lower bound"
    "serve.energy_lb"

let obs_min_slack =
  Dcn_obs.Registry.gauge ~help:"min (deadline - clock) over committed flows"
    "serve.min_slack"

let obs_active_flows =
  Dcn_obs.Registry.gauge ~help:"committed flows" "serve.active_flows"

let obs_coflow_admitted =
  Dcn_obs.Registry.counter ~help:"coflows admitted whole"
    "serve.coflow_admitted"

let obs_coflow_rejected =
  Dcn_obs.Registry.counter ~help:"coflows rejected whole"
    "serve.coflow_rejected"

let obs_coflow_slack =
  Dcn_obs.Registry.histogram
    ~help:"collective slack (deadline - clock) at coflow admission"
    "serve.coflow_slack"

let obs_coflow_min_slack =
  Dcn_obs.Registry.gauge
    ~help:"min (collective deadline - clock) over committed coflows"
    "serve.coflow_min_slack"

type t = {
  graph : Graph.t;
  power : Model.t;
  policy : Repair.policy;
  config : config;
  pool : Pool.t;
  rng : Prng.t;
  (* Flat Frank-Wolfe arenas, reused across every epoch's re-solve. *)
  workspace : Dcn_mcf.Kernel.Workspace.t;
  created : float;  (* wall clock at [create], for [uptime_ms] *)
  mutable clock : float;
  mutable flows : Flow.t list;  (* ascending id *)
  mutable paths : (int * Graph.link list) list;  (* flow id -> committed path *)
  (* Committed coflow membership, ascending coflow id.  Members still in
     flight; a member list only shrinks when members retire (complete),
     because shedding and cancellation always take the whole group. *)
  mutable coflows : (int * int list) list;
  mutable relaxation : Relaxation.t option;
  mutable schedule : Schedule.t option;
  stats : stats;
}

let create ?(config = default_config) ?(pool = Pool.sequential) ~graph ~power
    ~policy ~seed () =
  if config.attempts < 1 then
    invalid_arg "Session.create: config.attempts must be >= 1";
  {
    graph;
    power;
    policy;
    config;
    pool;
    rng = Prng.create seed;
    workspace = Dcn_mcf.Kernel.Workspace.create ();
    created = Deadline.now ();
    clock = 0.;
    flows = [];
    paths = [];
    coflows = [];
    relaxation = None;
    schedule = None;
    stats =
      {
        events = 0;
        committed = 0;
        degraded = 0;
        rejected = 0;
        admitted = 0;
        cancelled = 0;
        retired = 0;
        dropped = 0;
        resolved_intervals = 0;
        reused_intervals = 0;
        certified_epochs = 0;
        uncertified_epochs = 0;
        coflows_admitted = 0;
        coflows_rejected = 0;
      };
  }

type detail = {
  delta : Schedule_delta.t;
  dropped : Flow.t list;
  retired : int list;
  violations : Certify.violation list;
  resolved_intervals : int;
  reused_intervals : int;
  energy : float;
}

type outcome =
  | Committed of detail
  | Degraded of detail
  | Rejected of { reason : string }

let outcome_kind = function
  | Committed _ -> "committed"
  | Degraded _ -> "degraded"
  | Rejected _ -> "rejected"

let pp_outcome ppf = function
  | Committed d ->
    Format.fprintf ppf "committed: %s, %d resolved / %d reused interval(s)"
      (Schedule_delta.summary d.delta)
      d.resolved_intervals d.reused_intervals
  | Degraded d ->
    Format.fprintf ppf "degraded: %s, dropped %s"
      (Schedule_delta.summary d.delta)
      (String.concat ","
         (List.map (fun (f : Flow.t) -> string_of_int f.id) d.dropped))
  | Rejected { reason } -> Format.fprintf ppf "rejected: %s" reason

let outcome_to_json o =
  match o with
  | Committed d | Degraded d ->
    Json.Obj
      [
        ("outcome", Json.Str (outcome_kind o));
        ("delta", Schedule_delta.to_json d.delta);
        ( "dropped",
          Json.List (List.map (fun (f : Flow.t) -> Json.Int f.id) d.dropped) );
        ("retired", Json.List (List.map (fun id -> Json.Int id) d.retired));
        ("certified", Json.Bool (d.violations = []));
        ( "violations",
          Json.List (List.map Certify.violation_to_json d.violations) );
        ("resolved_intervals", Json.Int d.resolved_intervals);
        ("reused_intervals", Json.Int d.reused_intervals);
        ("energy", Json.float d.energy);
      ]
  | Rejected { reason } ->
    Json.Obj [ ("outcome", Json.Str "rejected"); ("reason", Json.Str reason) ]

let clock t = t.clock

(* The clamped clock ([Deadline.now]) is non-decreasing per domain, so
   uptime cannot go negative when NTP steps the wall clock backwards;
   the max is belt-and-braces for a snapshot taken on another domain. *)
let uptime_ms t = Float.max 0. (1e3 *. (Deadline.now () -. t.created))
let active_flows t = t.flows
let active_coflows t = t.coflows
let schedule t = t.schedule

let total_intervals t =
  match t.relaxation with
  | None -> 0
  | Some r -> Array.length r.Relaxation.intervals

let ok t = t.stats.uncertified_epochs = 0

let by_id (a : Flow.t) (b : Flow.t) = compare a.id b.id
let tiny x = 1e-9 *. Float.max 1. (Float.abs x)

(* Interval re-solve against the committed relaxation; a drained session
   (no previous relaxation) solves from scratch. *)
let resolve_relaxation t ~window inst =
  Trace.span "serve.resolve" @@ fun () ->
  let relax, (rs : Relaxation.reuse_stats) =
    match t.relaxation with
    | Some previous ->
      Relaxation.resolve ~pool:t.pool ~fw_config:t.config.fw_config
        ~workspace:t.workspace ~previous ~window inst
    | None ->
      let relax =
        Relaxation.solve ~pool:t.pool ~fw_config:t.config.fw_config
          ~workspace:t.workspace inst
      in
      (relax, { Relaxation.resolved = Array.length relax.intervals; reused = 0 })
  in
  Trace.counter "serve.resolved_intervals" (float_of_int rs.resolved);
  Trace.counter "serve.reused_intervals" (float_of_int rs.reused);
  (relax, rs)

(* Interval-density plan: the flow transmits at D_i over its whole span
   on its one committed path (Algorithm 2's schedule shape). *)
let density_plan (f : Flow.t) path =
  let rate = f.volume /. (f.deadline -. f.release) in
  {
    Schedule.flow = f;
    path;
    slots = [ { Schedule.start = f.release; stop = f.deadline; rate } ];
  }

let build_schedule t inst paths =
  let plans =
    List.map
      (fun (f : Flow.t) -> density_plan f (List.assoc f.id paths))
      inst.Instance.flows
  in
  Schedule.make ~graph:t.graph ~power:t.power ~horizon:(Instance.horizon inst)
    plans

let feasible t sched =
  let cap = t.power.Model.cap in
  (not (Float.is_finite cap))
  || Schedule.max_link_rate sched -. cap <= 1e-6 *. Float.max 1. cap

(* Absorb a committed epoch: mutate the session, account, certify. *)
let commit t ~flows ~paths ~relax ~sched ~inst ~dropped ~retired
    ~(rstats : Relaxation.reuse_stats) =
  let delta = Schedule_delta.diff ~before:t.schedule ~after:sched in
  let violations =
    match (t.config.certify, inst, sched) with
    | true, Some inst, Some sched -> Certify.schedule inst sched
    | _ -> []
  in
  t.flows <- flows;
  t.paths <- paths;
  (* Members that left the committed set retired or were shed as a whole
     group; either way the membership table tracks live members only,
     and a group with none left is done. *)
  t.coflows <-
    List.filter_map
      (fun (cid, ms) ->
        let live =
          List.filter
            (fun id -> List.exists (fun (f : Flow.t) -> f.id = id) flows)
            ms
        in
        if live = [] then None else Some (cid, live))
      t.coflows;
  t.relaxation <- relax;
  t.schedule <- sched;
  let s = t.stats in
  s.resolved_intervals <- s.resolved_intervals + rstats.resolved;
  s.reused_intervals <- s.reused_intervals + rstats.reused;
  s.dropped <- s.dropped + List.length dropped;
  s.retired <- s.retired + List.length retired;
  if t.config.certify && Option.is_some sched then
    if violations = [] then begin
      s.certified_epochs <- s.certified_epochs + 1;
      Dcn_obs.Registry.incr obs_certified
    end
    else begin
      s.uncertified_epochs <- s.uncertified_epochs + 1;
      Dcn_obs.Registry.incr obs_uncertified
    end;
  let energy = match sched with None -> 0. | Some sc -> Schedule.energy sc in
  let detail =
    {
      delta;
      dropped = List.sort by_id dropped;
      retired = List.sort compare retired;
      violations;
      resolved_intervals = rstats.resolved;
      reused_intervals = rstats.reused;
      energy;
    }
  in
  if dropped = [] then Committed detail else Degraded detail

(* All-or-nothing discipline for committed coflows: shedding any member
   sheds the whole group, so a partially planned coflow never survives
   an epoch.  A victim outside every coflow sheds alone (the pre-coflow
   behaviour, bit-identical when no coflows are committed). *)
let shed_set t (victim : Flow.t) candidate =
  match
    List.find_opt (fun (_, ms) -> List.mem victim.Flow.id ms) t.coflows
  with
  | None -> [ victim ]
  | Some (_, ms) ->
    List.filter (fun (f : Flow.t) -> List.mem f.Flow.id ms) candidate

(* Graceful admission: re-solve only the intervals overlapping the
   change window, draw the arrival's path from the warm relaxation, and
   while no feasible draw exists shed one flow per round under the
   session's policy — exactly Repair's degradation loop, live. *)
let admit t (arrival : Flow.t) =
  let rec go candidate dropped ((wlo, whi) as window) =
    match
      Instance.make_result ~graph:t.graph ~power:t.power ~flows:candidate
    with
    | Error e -> Rejected { reason = Instance.error_to_string e }
    | Ok inst -> (
      let relax, rstats = resolve_relaxation t ~window inst in
      let candidates = Random_schedule.candidate_paths relax arrival in
      let keep =
        List.filter
          (fun (id, _) ->
            List.exists (fun (f : Flow.t) -> f.id = id) candidate)
          t.paths
      in
      let draw =
        match candidates with
        | [] -> None
        | _ ->
          let weights = Array.of_list (List.map snd candidates) in
          let paths = Array.of_list (List.map fst candidates) in
          let rngs = Pool.split_rngs (Prng.split t.rng) t.config.attempts in
          let rec try_draw i =
            if i >= t.config.attempts then None
            else
              let idx = Prng.pick_weighted rngs.(i) ~weights in
              let assoc = (arrival.Flow.id, paths.(idx)) :: keep in
              let sched = build_schedule t inst assoc in
              if feasible t sched then Some (sched, assoc)
              else try_draw (i + 1)
          in
          try_draw 0
      in
      match draw with
      | Some (sched, assoc) ->
        t.stats.admitted <- t.stats.admitted + 1;
        commit t ~flows:candidate
          ~paths:(List.sort (fun (a, _) (b, _) -> compare a b) assoc)
          ~relax:(Some relax) ~sched:(Some sched) ~inst:(Some inst) ~dropped
          ~retired:[] ~rstats
      | None -> (
        match
          Repair.next_casualty t.policy
            ~is_new:(fun id -> id = arrival.Flow.id)
            candidate
        with
        | None ->
          Rejected
            { reason = "no feasible plan; the policy refuses to shed" }
        | Some victim when victim.Flow.id = arrival.Flow.id ->
          Rejected
            { reason = "no feasible plan within the redraw budget" }
        | Some victim ->
          let shed = shed_set t victim candidate in
          List.iter
            (fun (f : Flow.t) ->
              Trace.event ~fields:[ ("flow", Json.Int f.Flow.id) ] "serve.drop")
            shed;
          let shed_ids = List.map (fun (f : Flow.t) -> f.Flow.id) shed in
          go
            (List.filter
               (fun (f : Flow.t) -> not (List.mem f.id shed_ids))
               candidate)
            (shed @ dropped)
            (List.fold_left
               (fun (lo, hi) (f : Flow.t) ->
                 (Float.min lo f.Flow.release, Float.max hi f.Flow.deadline))
               (wlo, whi) shed)))
  in
  go
    (List.sort by_id (arrival :: t.flows))
    []
    (arrival.Flow.release, arrival.Flow.deadline)

let on_arrival t (f : Flow.t) =
  let n = Graph.num_nodes t.graph in
  let tn = tiny (Float.max (Float.abs t.clock) (Float.abs f.deadline)) in
  if f.src < 0 || f.src >= n || f.dst < 0 || f.dst >= n then
    Rejected
      { reason = Printf.sprintf "flow %d: endpoint outside the fabric" f.id }
  else if f.deadline <= t.clock +. tn then
    Rejected
      {
        reason =
          Printf.sprintf "flow %d: deadline %g at or before clock %g" f.id
            f.deadline t.clock;
      }
  else if List.exists (fun (g : Flow.t) -> g.id = f.id) t.flows then
    Rejected { reason = Printf.sprintf "flow %d already committed" f.id }
  else if Option.is_none (Paths.shortest_path t.graph ~src:f.src ~dst:f.dst)
  then
    Rejected
      {
        reason =
          Printf.sprintf "flow %d: no path from %d to %d" f.id f.src f.dst;
      }
  else
    (* A release in the past cannot be honoured: clamp to the clock. *)
    let f =
      if f.release < t.clock then
        Flow.make ~id:f.id ~src:f.src ~dst:f.dst ~volume:f.volume
          ~release:t.clock ~deadline:f.deadline
      else f
    in
    admit t f

(* Group admission: the coflow's members commit as one unit.  Each
   round draws a path per member from the warm relaxation (one weighted
   draw each, all from the round's pre-split stream); if no joint draw
   is feasible the policy may shed previously committed flows — whole
   coflows at a time, via [shed_set] — but never a part of the arriving
   group: its members are all new, so a new victim rejects the whole
   coflow.  Either every member commits or none does. *)
let admit_coflow t ~coflow (members : Flow.t list) =
  let member_ids = List.map (fun (f : Flow.t) -> f.Flow.id) members in
  let is_new id = List.mem id member_ids in
  let rec go candidate dropped ((wlo, whi) as window) =
    match
      Instance.make_result ~graph:t.graph ~power:t.power ~flows:candidate
    with
    | Error e -> Rejected { reason = Instance.error_to_string e }
    | Ok inst -> (
      let relax, rstats = resolve_relaxation t ~window inst in
      let member_candidates =
        List.map
          (fun (f : Flow.t) -> (f, Random_schedule.candidate_paths relax f))
          members
      in
      let keep =
        List.filter
          (fun (id, _) ->
            List.exists (fun (f : Flow.t) -> f.id = id) candidate)
          t.paths
      in
      let draw =
        if List.exists (fun (_, c) -> c = []) member_candidates then None
        else
          let prepared =
            List.map
              (fun ((f : Flow.t), cands) ->
                ( f.Flow.id,
                  Array.of_list (List.map fst cands),
                  Array.of_list (List.map snd cands) ))
              member_candidates
          in
          let rngs = Pool.split_rngs (Prng.split t.rng) t.config.attempts in
          let rec try_draw i =
            if i >= t.config.attempts then None
            else
              let assoc =
                List.fold_left
                  (fun acc (id, paths, weights) ->
                    let idx = Prng.pick_weighted rngs.(i) ~weights in
                    (id, paths.(idx)) :: acc)
                  keep prepared
              in
              let sched = build_schedule t inst assoc in
              if feasible t sched then Some (sched, assoc) else try_draw (i + 1)
          in
          try_draw 0
      in
      match draw with
      | Some (sched, assoc) ->
        t.stats.admitted <- t.stats.admitted + List.length members;
        let outcome =
          commit t ~flows:candidate
            ~paths:(List.sort (fun (a, _) (b, _) -> compare a b) assoc)
            ~relax:(Some relax) ~sched:(Some sched) ~inst:(Some inst) ~dropped
            ~retired:[] ~rstats
        in
        (* [commit] pruned shed groups; the new one enters afterwards so
           a [Rejected] round never leaves a trace of it. *)
        t.coflows <-
          List.merge
            (fun (a, _) (b, _) -> compare a b)
            t.coflows
            [ (coflow, member_ids) ];
        outcome
      | None -> (
        match Repair.next_casualty t.policy ~is_new candidate with
        | None ->
          Rejected
            { reason = "no feasible plan; the policy refuses to shed" }
        | Some victim when is_new victim.Flow.id ->
          Rejected
            {
              reason =
                Printf.sprintf
                  "coflow %d: no feasible joint plan within the redraw budget"
                  coflow;
            }
        | Some victim ->
          let shed = shed_set t victim candidate in
          List.iter
            (fun (f : Flow.t) ->
              Trace.event ~fields:[ ("flow", Json.Int f.Flow.id) ] "serve.drop")
            shed;
          let shed_ids = List.map (fun (f : Flow.t) -> f.Flow.id) shed in
          go
            (List.filter
               (fun (f : Flow.t) -> not (List.mem f.id shed_ids))
               candidate)
            (shed @ dropped)
            (List.fold_left
               (fun (lo, hi) (f : Flow.t) ->
                 (Float.min lo f.Flow.release, Float.max hi f.Flow.deadline))
               (wlo, whi) shed)))
  in
  let window =
    List.fold_left
      (fun (lo, hi) (f : Flow.t) ->
        (Float.min lo f.Flow.release, Float.max hi f.Flow.deadline))
      (Float.infinity, Float.neg_infinity)
      members
  in
  go (List.sort by_id (members @ t.flows)) [] window

(* Per-member validation for a coflow arrival: the same clauses as
   [on_arrival], reported with the coflow prefix, and checked for the
   whole group before anything is admitted. *)
let validate_new t (f : Flow.t) =
  let n = Graph.num_nodes t.graph in
  let tn = tiny (Float.max (Float.abs t.clock) (Float.abs f.deadline)) in
  if f.src < 0 || f.src >= n || f.dst < 0 || f.dst >= n then
    Some (Printf.sprintf "flow %d: endpoint outside the fabric" f.id)
  else if f.deadline <= t.clock +. tn then
    Some
      (Printf.sprintf "flow %d: deadline %g at or before clock %g" f.id
         f.deadline t.clock)
  else if List.exists (fun (g : Flow.t) -> g.id = f.id) t.flows then
    Some (Printf.sprintf "flow %d already committed" f.id)
  else if Option.is_none (Paths.shortest_path t.graph ~src:f.src ~dst:f.dst)
  then Some (Printf.sprintf "flow %d: no path from %d to %d" f.id f.src f.dst)
  else None

let on_coflow_arrival t ~coflow members =
  let reject reason =
    t.stats.coflows_rejected <- t.stats.coflows_rejected + 1;
    Dcn_obs.Registry.incr obs_coflow_rejected;
    Rejected { reason }
  in
  if List.mem_assoc coflow t.coflows then
    reject (Printf.sprintf "coflow %d already committed" coflow)
  else if members = [] then
    reject (Printf.sprintf "coflow %d has no members" coflow)
  else begin
    let sorted_ids =
      List.sort compare (List.map (fun (f : Flow.t) -> f.Flow.id) members)
    in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted_ids with
    | Some id ->
      reject (Printf.sprintf "coflow %d: duplicate member flow %d" coflow id)
    | None -> (
      match List.filter_map (validate_new t) members with
      | reason :: _ -> reject (Printf.sprintf "coflow %d: %s" coflow reason)
      | [] -> (
        (* Releases in the past cannot be honoured: clamp to the clock. *)
        let members =
          List.map
            (fun (f : Flow.t) ->
              if f.release < t.clock then
                Flow.make ~id:f.id ~src:f.src ~dst:f.dst ~volume:f.volume
                  ~release:t.clock ~deadline:f.deadline
              else f)
            members
        in
        match admit_coflow t ~coflow members with
        | Rejected { reason } -> reject reason
        | outcome ->
          t.stats.coflows_admitted <- t.stats.coflows_admitted + 1;
          Dcn_obs.Registry.incr obs_coflow_admitted;
          if Dcn_obs.Registry.on () then begin
            let deadline =
              List.fold_left
                (fun acc (f : Flow.t) -> Float.max acc f.deadline)
                neg_infinity members
            in
            Dcn_obs.Registry.observe obs_coflow_slack (deadline -. t.clock)
          end;
          outcome))
  end

let drain t ~cancelled ~retired =
  let delta = Schedule_delta.diff ~before:t.schedule ~after:None in
  t.flows <- [];
  t.paths <- [];
  t.coflows <- [];
  t.relaxation <- None;
  t.schedule <- None;
  let s = t.stats in
  s.cancelled <- s.cancelled + List.length cancelled;
  s.retired <- s.retired + List.length retired;
  Committed
    {
      delta;
      dropped = [];
      retired = List.sort compare retired;
      violations = [];
      resolved_intervals = 0;
      reused_intervals = 0;
      energy = 0.;
    }

let on_cancel t id =
  match List.find_opt (fun (g : Flow.t) -> g.id = id) t.flows with
  | None -> Rejected { reason = Printf.sprintf "unknown flow %d" id }
  | Some _
    when List.exists (fun (_, ms) -> List.mem id ms) t.coflows ->
    let cid, _ =
      List.find (fun (_, ms) -> List.mem id ms) t.coflows
    in
    Rejected
      {
        reason =
          Printf.sprintf
            "flow %d belongs to coflow %d; cancel the coflow instead" id cid;
      }
  | Some f -> (
    let rest = List.filter (fun (g : Flow.t) -> g.id <> id) t.flows in
    match rest with
    | [] -> drain t ~cancelled:[ id ] ~retired:[]
    | _ -> (
      match
        Instance.make_result ~graph:t.graph ~power:t.power ~flows:rest
      with
      | Error e -> Rejected { reason = Instance.error_to_string e }
      | Ok inst ->
        let relax, rstats =
          resolve_relaxation t ~window:(f.release, f.deadline) inst
        in
        let paths = List.filter (fun (pid, _) -> pid <> id) t.paths in
        let sched = build_schedule t inst paths in
        t.stats.cancelled <- t.stats.cancelled + 1;
        commit t ~flows:rest ~paths ~relax:(Some relax) ~sched:(Some sched)
          ~inst:(Some inst) ~dropped:[] ~retired:[] ~rstats))

let on_coflow_cancel t coflow =
  match List.assoc_opt coflow t.coflows with
  | None -> Rejected { reason = Printf.sprintf "unknown coflow %d" coflow }
  | Some ms -> (
    let cancelled_flows, rest =
      List.partition (fun (f : Flow.t) -> List.mem f.id ms) t.flows
    in
    match rest with
    | [] -> drain t ~cancelled:ms ~retired:[]
    | _ -> (
      match
        Instance.make_result ~graph:t.graph ~power:t.power ~flows:rest
      with
      | Error e -> Rejected { reason = Instance.error_to_string e }
      | Ok inst ->
        let window =
          List.fold_left
            (fun (lo, hi) (f : Flow.t) ->
              (Float.min lo f.release, Float.max hi f.deadline))
            (Float.infinity, Float.neg_infinity)
            cancelled_flows
        in
        let relax, rstats = resolve_relaxation t ~window inst in
        let paths = List.filter (fun (pid, _) -> not (List.mem pid ms)) t.paths in
        let sched = build_schedule t inst paths in
        t.stats.cancelled <- t.stats.cancelled + List.length ms;
        commit t ~flows:rest ~paths ~relax:(Some relax) ~sched:(Some sched)
          ~inst:(Some inst) ~dropped:[] ~retired:[] ~rstats))

let on_advance t to_ =
  let tn = tiny (Float.max (Float.abs t.clock) (Float.abs to_)) in
  if to_ < t.clock -. tn then
    Rejected
      {
        reason =
          Printf.sprintf "clock cannot move backwards (%g < %g)" to_ t.clock;
      }
  else begin
    let retired_flows, rest =
      List.partition (fun (g : Flow.t) -> g.deadline <= to_ +. tn) t.flows
    in
    t.clock <- Float.max t.clock to_;
    match retired_flows with
    | [] ->
      (* Nothing completed: the committed schedule stands unchanged. *)
      Committed
        {
          delta = Schedule_delta.diff ~before:t.schedule ~after:t.schedule;
          dropped = [];
          retired = [];
          violations = [];
          resolved_intervals = 0;
          reused_intervals = 0;
          energy =
            (match t.schedule with None -> 0. | Some sc -> Schedule.energy sc);
        }
    | _ -> (
      let retired = List.map (fun (g : Flow.t) -> g.id) retired_flows in
      match rest with
      | [] -> drain t ~cancelled:[] ~retired
      | _ -> (
        match
          Instance.make_result ~graph:t.graph ~power:t.power ~flows:rest
        with
        | Error e -> Rejected { reason = Instance.error_to_string e }
        | Ok inst ->
          let window =
            List.fold_left
              (fun (lo, hi) (g : Flow.t) ->
                (Float.min lo g.release, Float.max hi g.deadline))
              (Float.infinity, Float.neg_infinity)
              retired_flows
          in
          let relax, rstats = resolve_relaxation t ~window inst in
          let keep =
            List.filter (fun (pid, _) -> not (List.mem pid retired)) t.paths
          in
          let sched = build_schedule t inst keep in
          commit t ~flows:rest ~paths:keep ~relax:(Some relax)
            ~sched:(Some sched) ~inst:(Some inst) ~dropped:[] ~retired ~rstats))
  end

(* SLO gauges refreshed after every event; guarded so a disabled
   registry costs one branch and no recomputation.  Energy comes off
   the outcome's detail — the commit path already paid for it, and the
   refresh must not add an O(schedule) walk per event.  A [Rejected]
   outcome leaves the committed state (and so the gauges) unchanged. *)
let refresh_gauges t outcome =
  if Dcn_obs.Registry.on () then begin
    Dcn_obs.Registry.set obs_active_flows (float_of_int (List.length t.flows));
    (match t.flows with
    | [] -> ()
    | fs ->
      Dcn_obs.Registry.set obs_min_slack
        (List.fold_left
           (fun acc (f : Flow.t) -> Float.min acc (f.deadline -. t.clock))
           infinity fs));
    (match outcome with
    | Committed d | Degraded d -> Dcn_obs.Registry.set obs_energy d.energy
    | Rejected _ -> ());
    (match t.coflows with
    | [] -> ()
    | cs ->
      let collective_deadline ms =
        List.fold_left
          (fun acc id ->
            match List.find_opt (fun (f : Flow.t) -> f.id = id) t.flows with
            | Some f -> Float.max acc f.deadline
            | None -> acc)
          neg_infinity ms
      in
      Dcn_obs.Registry.set obs_coflow_min_slack
        (List.fold_left
           (fun acc (_, ms) ->
             Float.min acc (collective_deadline ms -. t.clock))
           infinity cs));
    match t.relaxation with
    | Some r -> Dcn_obs.Registry.set obs_energy_lb r.Relaxation.lb
    | None -> ()
  end

let apply t event =
  t.stats.events <- t.stats.events + 1;
  Dcn_obs.Registry.incr obs_events;
  let telemetry = Dcn_obs.Registry.on () in
  let t0 = if telemetry then Unix.gettimeofday () else 0. in
  let minor0 = if telemetry then Gc.minor_words () else 0. in
  let outcome =
    Trace.span
      ~fields:[ ("kind", Json.Str (Event.kind event)) ]
      "serve.event"
    @@ fun () ->
    try
      match event with
      | Event.Flow_arrival f -> on_arrival t f
      | Event.Flow_cancel { flow } -> on_cancel t flow
      | Event.Coflow_arrival { coflow; flows } ->
        on_coflow_arrival t ~coflow flows
      | Event.Coflow_cancel { coflow } -> on_coflow_cancel t coflow
      | Event.Advance_clock { clock } -> on_advance t clock
    with
    | Deadline.Expired -> raise Deadline.Expired
    | e -> Rejected { reason = Printexc.to_string e }
  in
  (match outcome with
  | Committed _ ->
    t.stats.committed <- t.stats.committed + 1;
    Dcn_obs.Registry.incr obs_committed
  | Degraded _ ->
    t.stats.degraded <- t.stats.degraded + 1;
    Dcn_obs.Registry.incr obs_degraded
  | Rejected _ ->
    t.stats.rejected <- t.stats.rejected + 1;
    Dcn_obs.Registry.incr obs_rejected);
  if telemetry then begin
    Dcn_obs.Registry.observe obs_apply_ms (1e3 *. (Unix.gettimeofday () -. t0));
    Dcn_obs.Registry.add obs_apply_minor_words (Gc.minor_words () -. minor0);
    refresh_gauges t outcome
  end;
  outcome

let report t =
  let s = t.stats in
  Json.Obj
    [
      ("clock", Json.float t.clock);
      ("policy", Json.Str (Repair.policy_to_string t.policy));
      ("flows", Json.Int (List.length t.flows));
      ( "energy",
        Json.float
          (match t.schedule with None -> 0. | Some sc -> Schedule.energy sc) );
      ("events", Json.Int s.events);
      ("committed", Json.Int s.committed);
      ("degraded", Json.Int s.degraded);
      ("rejected", Json.Int s.rejected);
      ("admitted", Json.Int s.admitted);
      ("cancelled", Json.Int s.cancelled);
      ("retired", Json.Int s.retired);
      ("dropped", Json.Int s.dropped);
      ("resolved_intervals", Json.Int s.resolved_intervals);
      ("reused_intervals", Json.Int s.reused_intervals);
      ("certified_epochs", Json.Int s.certified_epochs);
      ("uncertified_epochs", Json.Int s.uncertified_epochs);
      ("coflows", Json.Int (List.length t.coflows));
      ("coflows_admitted", Json.Int s.coflows_admitted);
      ("coflows_rejected", Json.Int s.coflows_rejected);
      ("ok", Json.Bool (s.uncertified_epochs = 0));
    ]

(* ------------------------- snapshot / restore ---------------------- *)

(* The committed state as JSON, for durable-serving checkpoints.  Two
   requirements shape the encoding:

   - {b Bit-exactness.}  [Json.float] emits %.17g, so every float
     round-trips exactly; the PRNG state is carried as a decimal int64
     string.  [restore] therefore resumes the exact stream: subsequent
     events produce byte-identical outcomes to the uninterrupted
     session.

   - {b Minimality.}  Only state that is not a pure function of the
     rest is serialised.  The timeline is recomputed from the flows
     ([Instance.timeline]); the committed schedule is rebuilt from the
     committed paths ([build_schedule]); interval {e solutions} are
     stored verbatim because a cold re-solve would not reproduce the
     warm-started fractional paths the next [resolve] reuses.

   A fingerprint of everything the session was created with guards
   [restore]: resuming under a different topology, power model, policy
   or solver configuration would silently diverge, so it is refused. *)

let snapshot_version = 1

let flow_to_json (f : Flow.t) =
  Json.Obj
    [
      ("id", Json.Int f.id);
      ("src", Json.Int f.src);
      ("dst", Json.Int f.dst);
      ("volume", Json.float f.volume);
      ("release", Json.float f.release);
      ("deadline", Json.float f.deadline);
    ]

let weighted_path_to_json (wp : Dcn_mcf.Decompose.weighted_path) =
  Json.Obj
    [
      ("weight", Json.float wp.weight);
      ("links", Json.List (List.map (fun l -> Json.Int l) wp.links));
    ]

let interval_to_json (s : Relaxation.interval_solution) =
  let lo, hi = s.bounds in
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("lo", Json.float lo);
      ("hi", Json.float hi);
      ("cost", Json.float s.cost);
      ("lb", Json.float s.lb);
      ("max_overload", Json.float s.max_overload);
      ( "flow_paths",
        Json.List
          (List.map
             (fun (id, wps) ->
               Json.Obj
                 [
                   ("flow", Json.Int id);
                   ("paths", Json.List (List.map weighted_path_to_json wps));
                 ])
             s.flow_paths) );
    ]

let fingerprint t =
  Json.Obj
    [
      ("nodes", Json.Int (Graph.num_nodes t.graph));
      ("links", Json.Int (Graph.num_links t.graph));
      ("policy", Json.Str (Repair.policy_to_string t.policy));
      ("sigma", Json.float t.power.Model.sigma);
      ("mu", Json.float t.power.Model.mu);
      ("alpha", Json.float t.power.Model.alpha);
      ("cap", Json.float t.power.Model.cap);
      ("attempts", Json.Int t.config.attempts);
      ("certify", Json.Bool t.config.certify);
      ("fw_max_iters", Json.Int t.config.fw_config.Fw.max_iters);
      ("fw_gap_tol", Json.float t.config.fw_config.Fw.gap_tol);
    ]

let snapshot t =
  let s = t.stats in
  Json.Obj
    [
      ("version", Json.Int snapshot_version);
      ("fingerprint", fingerprint t);
      ("clock", Json.float t.clock);
      ("rng", Json.Str (Int64.to_string (Prng.state t.rng)));
      ("flows", Json.List (List.map flow_to_json t.flows));
      ( "paths",
        Json.List
          (List.map
             (fun (id, links) ->
               Json.Obj
                 [
                   ("flow", Json.Int id);
                   ("links", Json.List (List.map (fun l -> Json.Int l) links));
                 ])
             t.paths) );
      ( "coflows",
        Json.List
          (List.map
             (fun (cid, ms) ->
               Json.Obj
                 [
                   ("coflow", Json.Int cid);
                   ("members", Json.List (List.map (fun m -> Json.Int m) ms));
                 ])
             t.coflows) );
      ( "stats",
        Json.Obj
          [
            ("events", Json.Int s.events);
            ("committed", Json.Int s.committed);
            ("degraded", Json.Int s.degraded);
            ("rejected", Json.Int s.rejected);
            ("admitted", Json.Int s.admitted);
            ("cancelled", Json.Int s.cancelled);
            ("retired", Json.Int s.retired);
            ("dropped", Json.Int s.dropped);
            ("resolved_intervals", Json.Int s.resolved_intervals);
            ("reused_intervals", Json.Int s.reused_intervals);
            ("certified_epochs", Json.Int s.certified_epochs);
            ("uncertified_epochs", Json.Int s.uncertified_epochs);
            ("coflows_admitted", Json.Int s.coflows_admitted);
            ("coflows_rejected", Json.Int s.coflows_rejected);
          ] );
      ( "relaxation",
        match t.relaxation with
        | None -> Json.Null
        | Some r ->
          Json.Obj
            [
              ("cost", Json.float r.Relaxation.cost);
              ("lb", Json.float r.Relaxation.lb);
              ( "intervals",
                Json.List
                  (Array.to_list (Array.map interval_to_json r.intervals)) );
            ] );
    ]

let flow_of_json j =
  Flow.make ~id:(Json.to_int (Json.get "id" j))
    ~src:(Json.to_int (Json.get "src" j))
    ~dst:(Json.to_int (Json.get "dst" j))
    ~volume:(Json.to_float (Json.get "volume" j))
    ~release:(Json.to_float (Json.get "release" j))
    ~deadline:(Json.to_float (Json.get "deadline" j))

let weighted_path_of_json j : Dcn_mcf.Decompose.weighted_path =
  {
    weight = Json.to_float (Json.get "weight" j);
    links = List.map Json.to_int (Json.to_list (Json.get "links" j));
  }

let interval_of_json j : Relaxation.interval_solution =
  {
    index = Json.to_int (Json.get "index" j);
    bounds = (Json.to_float (Json.get "lo" j), Json.to_float (Json.get "hi" j));
    cost = Json.to_float (Json.get "cost" j);
    lb = Json.to_float (Json.get "lb" j);
    max_overload = Json.to_float (Json.get "max_overload" j);
    flow_paths =
      List.map
        (fun p ->
          ( Json.to_int (Json.get "flow" p),
            List.map weighted_path_of_json (Json.to_list (Json.get "paths" p))
          ))
        (Json.to_list (Json.get "flow_paths" j));
  }

let check_fingerprint t j =
  let expected = fingerprint t in
  let actual = Json.get "fingerprint" j in
  List.iter
    (fun (name, want) ->
      let got = Json.get name actual in
      (* Compare serialized forms: a parsed snapshot reads [1] back as
         [Int] where the live fingerprint holds [Float 1.]. *)
      if Json.to_string got <> Json.to_string want then
        failwith
          (Printf.sprintf "fingerprint mismatch on %S: snapshot %s, session %s"
             name (Json.to_string got) (Json.to_string want)))
    (Json.to_obj expected)

let restore ?(config = default_config) ?(pool = Pool.sequential) ~graph ~power
    ~policy json =
  match
    let version = Json.to_int (Json.get "version" json) in
    if version <> snapshot_version then
      failwith (Printf.sprintf "unsupported snapshot version %d" version);
    let t = create ~config ~pool ~graph ~power ~policy ~seed:0 () in
    check_fingerprint t json;
    t.clock <- Json.to_float (Json.get "clock" json);
    (match Int64.of_string_opt (Json.to_str (Json.get "rng" json)) with
    | Some s -> Prng.set_state t.rng s
    | None -> failwith "rng state is not an int64");
    t.flows <-
      List.sort by_id
        (List.map flow_of_json (Json.to_list (Json.get "flows" json)));
    t.paths <-
      List.map
        (fun p ->
          ( Json.to_int (Json.get "flow" p),
            List.map Json.to_int (Json.to_list (Json.get "links" p)) ))
        (Json.to_list (Json.get "paths" json));
    t.coflows <-
      List.map
        (fun c ->
          ( Json.to_int (Json.get "coflow" c),
            List.map Json.to_int (Json.to_list (Json.get "members" c)) ))
        (Json.to_list (Json.get "coflows" json));
    let s = t.stats and sj = Json.get "stats" json in
    let stat name = Json.to_int (Json.get name sj) in
    s.events <- stat "events";
    s.committed <- stat "committed";
    s.degraded <- stat "degraded";
    s.rejected <- stat "rejected";
    s.admitted <- stat "admitted";
    s.cancelled <- stat "cancelled";
    s.retired <- stat "retired";
    s.dropped <- stat "dropped";
    s.resolved_intervals <- stat "resolved_intervals";
    s.reused_intervals <- stat "reused_intervals";
    s.certified_epochs <- stat "certified_epochs";
    s.uncertified_epochs <- stat "uncertified_epochs";
    s.coflows_admitted <- stat "coflows_admitted";
    s.coflows_rejected <- stat "coflows_rejected";
    (* Flows committed => paths committed for each, and a relaxation to
       warm the next re-solve; a drained session has neither. *)
    List.iter
      (fun (f : Flow.t) ->
        if not (List.mem_assoc f.id t.paths) then
          failwith (Printf.sprintf "flow %d has no committed path" f.id))
      t.flows;
    (match (t.flows, Json.get "relaxation" json) with
    | [], Json.Null -> ()
    | [], _ -> failwith "snapshot has a relaxation but no flows"
    | _ :: _, Json.Null -> failwith "snapshot has flows but no relaxation"
    | flows, rj -> (
      match Instance.make_result ~graph ~power ~flows with
      | Error e -> failwith (Instance.error_to_string e)
      | Ok inst ->
        let intervals =
          Array.of_list
            (List.map interval_of_json (Json.to_list (Json.get "intervals" rj)))
        in
        let timeline = Instance.timeline inst in
        t.relaxation <-
          Some
            {
              Relaxation.timeline;
              intervals;
              cost = Json.to_float (Json.get "cost" rj);
              lb = Json.to_float (Json.get "lb" rj);
            };
        t.schedule <- Some (build_schedule t inst t.paths)));
    t
  with
  | t -> Ok t
  | exception Failure m -> Error m
  | exception Invalid_argument m -> Error m
