(** A long-running scheduler session: the event-driven API over the
    batch solvers.

    A session holds the committed state of one fabric under live
    traffic — the admitted flow set, each flow's routing path, the
    breakpoint timeline with the last fractional per-interval F-MCF
    solution, the committed schedule, and a monotone clock.  Events
    ({!Event.t}) drive it through {!apply}:

    - a {b flow arrival} is admitted through the typed policies of
      {!Dcn_resilience.Repair} (shedding one flow per round under
      [Drop_latest_deadline]/[Drop_largest_residual]; [Reject_new]
      refuses the arrival instead of touching committed flows);
    - a {b coflow arrival} admits a whole flow group all-or-nothing:
      every member commits in one epoch (one path draw per member from
      the warm relaxation) or the whole group is rejected — a coflow
      that would miss its collective deadline is worth nothing partly
      delivered.  Once committed the group stays atomic: the shedding
      policy takes whole coflows (never a strict subset), and a plain
      cancel of a member is refused in favour of {b coflow cancel},
      which withdraws every member at once;
    - a {b cancellation} withdraws one committed flow;
    - a {b clock advance} retires flows whose deadline has passed.

    Each committed epoch re-solves {e only} the timeline intervals
    overlapping the changed flow's span ({!Dcn_core.Relaxation.resolve}
    — warm-started from the previous fractional solution, everything
    else reused verbatim), keeps every other flow's committed path,
    draws the new flow's path from the warm relaxation
    ({!Dcn_core.Random_schedule.candidate_paths}), and is independently
    re-certified by {!Dcn_check.Certify}.  The result is a typed
    {!outcome} carrying a {!Dcn_sched.Schedule_delta.t} — never an
    exception, mirroring [Repair]'s [Repaired]/[Degraded]/[Irreparable]
    discipline (only {!Dcn_engine.Deadline.Expired} is re-raised, so a
    watchdog budget above a session still works).

    Determinism: a session is a pure function of
    [(seed, policy, config, event sequence)] — path draws come from a
    pre-split PRNG stream per admission round, and the incremental
    re-solve is index-ordered over the pool — so reports are
    byte-identical at every [--jobs] level. *)

type config = {
  attempts : int;  (** path redraws per admission round, >= 1 *)
  fw_config : Dcn_mcf.Frank_wolfe.config;
  certify : bool;
      (** re-certify every committed epoch with {!Dcn_check.Certify} *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?pool:Dcn_engine.Pool.t ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  policy:Dcn_resilience.Repair.policy ->
  seed:int ->
  unit ->
  t
(** A fresh session at clock 0 with no committed flows.
    @raise Invalid_argument if [config.attempts < 1]. *)

type detail = {
  delta : Dcn_sched.Schedule_delta.t;
      (** what this epoch changed in the committed schedule *)
  dropped : Dcn_flow.Flow.t list;
      (** committed flows shed by the admission policy, id order *)
  retired : int list;  (** flows completed by a clock advance, id order *)
  violations : Dcn_check.Certify.violation list;
      (** certification of the new committed schedule; [[]] = certified *)
  resolved_intervals : int;  (** timeline intervals re-solved this epoch *)
  reused_intervals : int;  (** intervals reused from the previous epoch *)
  energy : float;  (** Eq. (5) energy of the committed schedule; 0 if none *)
}

type outcome =
  | Committed of detail  (** event absorbed, nothing shed *)
  | Degraded of detail  (** absorbed after shedding [detail.dropped] *)
  | Rejected of { reason : string }
      (** event refused; the committed state is unchanged *)

val outcome_kind : outcome -> string
(** ["committed"], ["degraded"] or ["rejected"]. *)

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_to_json : outcome -> Dcn_engine.Json.t

val apply : t -> Event.t -> outcome
(** Absorb one event.  Never raises (see above); a [Rejected] outcome
    leaves the session exactly as it was. *)

val clock : t -> float

val uptime_ms : t -> float
(** Wall-clock milliseconds since {!create}.  Nondeterministic by
    nature; the CLI stamps it onto per-event outcome lines (the
    [uptime_ms] wire field) but it never enters {!outcome_to_json} or
    {!report}, which stay byte-identical across runs and [--jobs]
    levels. *)

val active_flows : t -> Dcn_flow.Flow.t list
(** Committed flows, ascending id. *)

val active_coflows : t -> (int * int list) list
(** Committed coflow membership, ascending coflow id — live members
    only (a member leaves the list when it retires; shedding and
    cancellation always remove whole groups).  Exactly the shape
    {!Dcn_check.Certify.coflow_consistency} consumes, so a session's
    committed schedule can be checked for all-or-nothing consistency at
    any epoch. *)

val schedule : t -> Dcn_sched.Schedule.t option
(** The committed schedule; [None] when no flows are committed. *)

val total_intervals : t -> int
(** Timeline intervals of the committed relaxation (0 when drained). *)

val report : t -> Dcn_engine.Json.t
(** The rolling report: clock, committed flows, energy, event and
    outcome counts, admission casualties, interval re-solve/reuse
    totals, certified epochs.  Deterministic for a given event
    sequence at every pool size. *)

val ok : t -> bool
(** Every committed epoch so far certified clean. *)

val snapshot : t -> Dcn_engine.Json.t
(** The committed state as JSON, for durable-serving checkpoints
    ([Dcn_durable]): clock, PRNG state, flows, committed paths, coflow
    membership, stats, and the per-interval fractional solutions of the
    committed relaxation (verbatim — a cold re-solve would not
    reproduce the warm starts).  Floats are emitted at full precision,
    so {!restore} resumes the exact session: subsequent events yield
    byte-identical outcomes to the uninterrupted run.  Deterministic —
    wall-clock fields like {!uptime_ms} never enter the snapshot — and
    prefixed by a fingerprint of the session's topology, power model,
    policy and solver configuration. *)

val restore :
  ?config:config ->
  ?pool:Dcn_engine.Pool.t ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  policy:Dcn_resilience.Repair.policy ->
  Dcn_engine.Json.t ->
  (t, string) result
(** Rebuild a session from a {!snapshot}.  The caller supplies the same
    graph/power/policy/config the original session was created with;
    the snapshot's fingerprint is checked against them and a mismatch
    is an [Error] (resuming under different parameters would silently
    diverge instead of continuing the committed timeline).  The
    committed schedule and breakpoint timeline are recomputed from the
    restored flows and paths — they are pure functions of them — and
    [uptime_ms] restarts at the moment of restore. *)
