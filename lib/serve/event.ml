module Json = Dcn_engine.Json
module Flow = Dcn_flow.Flow

type t =
  | Flow_arrival of Flow.t
  | Flow_cancel of { flow : int }
  | Advance_clock of { clock : float }

let kind = function
  | Flow_arrival _ -> "arrival"
  | Flow_cancel _ -> "cancel"
  | Advance_clock _ -> "advance"

let pp ppf = function
  | Flow_arrival f -> Format.fprintf ppf "arrival %a" Flow.pp f
  | Flow_cancel { flow } -> Format.fprintf ppf "cancel flow %d" flow
  | Advance_clock { clock } -> Format.fprintf ppf "advance to %g" clock

let to_json = function
  | Flow_arrival (f : Flow.t) ->
    Json.Obj
      [
        ("event", Json.Str "arrival");
        ("id", Json.Int f.id);
        ("src", Json.Int f.src);
        ("dst", Json.Int f.dst);
        ("volume", Json.float f.volume);
        ("release", Json.float f.release);
        ("deadline", Json.float f.deadline);
      ]
  | Flow_cancel { flow } ->
    Json.Obj [ ("event", Json.Str "cancel"); ("id", Json.Int flow) ]
  | Advance_clock { clock } ->
    Json.Obj [ ("event", Json.Str "advance"); ("to", Json.float clock) ]

let of_json json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> err "missing field %S" name
  in
  let num name =
    let* v = field name in
    match v with
    | Json.Int i -> Ok (float_of_int i)
    | Json.Float x -> Ok x
    | _ -> err "field %S is not a number" name
  in
  let int name =
    let* v = field name in
    match v with Json.Int i -> Ok i | _ -> err "field %S is not an integer" name
  in
  match json with
  | Json.Obj _ -> (
    let* tag = field "event" in
    match tag with
    | Json.Str "arrival" ->
      let* id = int "id" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* volume = num "volume" in
      let* release = num "release" in
      let* deadline = num "deadline" in
      (match Flow.make ~id ~src ~dst ~volume ~release ~deadline with
      | f -> Ok (Flow_arrival f)
      | exception Invalid_argument m -> err "bad arrival: %s" m)
    | Json.Str "cancel" ->
      let* flow = int "id" in
      Ok (Flow_cancel { flow })
    | Json.Str "advance" ->
      let* clock = num "to" in
      if Float.is_finite clock then Ok (Advance_clock { clock })
      else err "field \"to\" is not finite"
    | Json.Str other -> err "unknown event kind %S" other
    | _ -> err "field \"event\" is not a string")
  | _ -> Error "event is not a JSON object"
