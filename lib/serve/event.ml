module Json = Dcn_engine.Json
module Flow = Dcn_flow.Flow

type t =
  | Flow_arrival of Flow.t
  | Flow_cancel of { flow : int }
  | Coflow_arrival of { coflow : int; flows : Flow.t list }
  | Coflow_cancel of { coflow : int }
  | Advance_clock of { clock : float }

let kind = function
  | Flow_arrival _ -> "arrival"
  | Flow_cancel _ -> "cancel"
  | Coflow_arrival _ -> "coflow"
  | Coflow_cancel _ -> "coflow-cancel"
  | Advance_clock _ -> "advance"

let pp ppf = function
  | Flow_arrival f -> Format.fprintf ppf "arrival %a" Flow.pp f
  | Flow_cancel { flow } -> Format.fprintf ppf "cancel flow %d" flow
  | Coflow_arrival { coflow; flows } ->
    Format.fprintf ppf "coflow %d arrival (%d flows)" coflow (List.length flows)
  | Coflow_cancel { coflow } -> Format.fprintf ppf "cancel coflow %d" coflow
  | Advance_clock { clock } -> Format.fprintf ppf "advance to %g" clock

let flow_to_fields (f : Flow.t) =
  [
    ("id", Json.Int f.id);
    ("src", Json.Int f.src);
    ("dst", Json.Int f.dst);
    ("volume", Json.float f.volume);
    ("release", Json.float f.release);
    ("deadline", Json.float f.deadline);
  ]

let to_json = function
  | Flow_arrival (f : Flow.t) ->
    Json.Obj (("event", Json.Str "arrival") :: flow_to_fields f)
  | Flow_cancel { flow } ->
    Json.Obj [ ("event", Json.Str "cancel"); ("id", Json.Int flow) ]
  | Coflow_arrival { coflow; flows } ->
    Json.Obj
      [
        ("event", Json.Str "coflow");
        ("id", Json.Int coflow);
        ( "flows",
          Json.List (List.map (fun f -> Json.Obj (flow_to_fields f)) flows) );
      ]
  | Coflow_cancel { coflow } ->
    Json.Obj [ ("event", Json.Str "coflow-cancel"); ("id", Json.Int coflow) ]
  | Advance_clock { clock } ->
    Json.Obj [ ("event", Json.Str "advance"); ("to", Json.float clock) ]

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let field json name =
  match Json.member name json with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let num json name =
  let* v = field json name in
  match v with
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float x -> Ok x
  | _ -> err "field %S is not a number" name

let int json name =
  let* v = field json name in
  match v with Json.Int i -> Ok i | _ -> err "field %S is not an integer" name

let flow_of_json json =
  let* id = int json "id" in
  let* src = int json "src" in
  let* dst = int json "dst" in
  let* volume = num json "volume" in
  let* release = num json "release" in
  let* deadline = num json "deadline" in
  match Flow.make ~id ~src ~dst ~volume ~release ~deadline with
  | f -> Ok f
  | exception Invalid_argument m -> Error m

let of_json json =
  match json with
  | Json.Obj _ -> (
    let* tag = field json "event" in
    match tag with
    | Json.Str "arrival" -> (
      match flow_of_json json with
      | Ok f -> Ok (Flow_arrival f)
      | Error m -> err "bad arrival: %s" m)
    | Json.Str "cancel" ->
      let* flow = int json "id" in
      Ok (Flow_cancel { flow })
    | Json.Str "coflow" -> (
      let* coflow = int json "id" in
      let* members = field json "flows" in
      match members with
      | Json.List members ->
        let* flows =
          List.fold_left
            (fun acc m ->
              let* acc = acc in
              match m with
              | Json.Obj _ -> (
                match flow_of_json m with
                | Ok f -> Ok (f :: acc)
                | Error msg -> err "bad coflow %d member: %s" coflow msg)
              | _ -> err "coflow %d: member is not an object" coflow)
            (Ok []) members
        in
        Ok (Coflow_arrival { coflow; flows = List.rev flows })
      | _ -> err "coflow %d: field \"flows\" is not a list" coflow)
    | Json.Str "coflow-cancel" ->
      let* coflow = int json "id" in
      Ok (Coflow_cancel { coflow })
    | Json.Str "advance" ->
      let* clock = num json "to" in
      if Float.is_finite clock then Ok (Advance_clock { clock })
      else err "field \"to\" is not finite"
    | Json.Str other -> err "unknown event kind %S" other
    | _ -> err "field \"event\" is not a string")
  | _ -> Error "event is not a JSON object"
