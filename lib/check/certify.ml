module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Json = Dcn_engine.Json
module Trace = Dcn_engine.Trace

type violation =
  | Unknown_flow of { flow : int }
  | Missing_flow of { flow : int }
  | Bad_path of { flow : int }
  | Slot_outside_window of { flow : int; start : float; stop : float }
  | Volume_mismatch of { flow : int; delivered : float; expected : float }
  | Capacity_exceeded of {
      link : int;
      window : float * float;
      rate : float;
      cap : float;
    }
  | Link_conflict of { link : int; at : float; flows : int * int }
  | Horizon_mismatch of { expected : float * float; got : float * float }
  | Energy_mismatch of { source : string; reported : float; recomputed : float }
  | Lb_violated of { energy : float; lower_bound : float }
  | Partial_coflow of { coflow : int; planned : int list; missing : int list }

type config = {
  eps : float;
  energy_rtol : float;
  partial : bool;
  exclusive : bool;
  check_capacity : bool;
  check_volume : bool;
  cross_check_sim : bool;
}

let default =
  {
    eps = 1e-6;
    energy_rtol = 1e-6;
    partial = false;
    exclusive = false;
    check_capacity = true;
    check_volume = true;
    cross_check_sim = true;
  }

let kind = function
  | Unknown_flow _ -> "unknown_flow"
  | Missing_flow _ -> "missing_flow"
  | Bad_path _ -> "bad_path"
  | Slot_outside_window _ -> "slot_outside_window"
  | Volume_mismatch _ -> "volume_mismatch"
  | Capacity_exceeded _ -> "capacity_exceeded"
  | Link_conflict _ -> "link_conflict"
  | Horizon_mismatch _ -> "horizon_mismatch"
  | Energy_mismatch _ -> "energy_mismatch"
  | Lb_violated _ -> "lb_violated"
  | Partial_coflow _ -> "partial_coflow"

let pp_violation ppf = function
  | Unknown_flow { flow } -> Format.fprintf ppf "flow %d is not in the instance" flow
  | Missing_flow { flow } -> Format.fprintf ppf "flow %d has no plan" flow
  | Bad_path { flow } ->
    Format.fprintf ppf "flow %d's path does not connect its endpoints" flow
  | Slot_outside_window { flow; start; stop } ->
    Format.fprintf ppf "flow %d transmits in [%g,%g] outside its span" flow start stop
  | Volume_mismatch { flow; delivered; expected } ->
    Format.fprintf ppf "flow %d delivered %g of %g" flow delivered expected
  | Capacity_exceeded { link; window = lo, hi; rate; cap } ->
    Format.fprintf ppf "link %d carries %g > cap %g during [%g,%g]" link rate cap lo hi
  | Link_conflict { link; at; flows = a, b } ->
    Format.fprintf ppf "flows %d and %d share link %d at time %g" a b link at
  | Horizon_mismatch { expected = e0, e1; got = g0, g1 } ->
    Format.fprintf ppf "schedule horizon [%g,%g] differs from instance [%g,%g]" g0 g1
      e0 e1
  | Energy_mismatch { source; reported; recomputed } ->
    Format.fprintf ppf "%s energy %g vs re-integrated %g" source reported recomputed
  | Lb_violated { energy; lower_bound } ->
    Format.fprintf ppf "energy %g below the fractional lower bound %g" energy
      lower_bound
  | Partial_coflow { coflow; planned; missing } ->
    Format.fprintf ppf
      "coflow %d partially admitted: %d member(s) planned, %d missing (%s)"
      coflow (List.length planned) (List.length missing)
      (String.concat "," (List.map string_of_int missing))

let violation_to_json v =
  let base = [ ("kind", Json.Str (kind v)) ] in
  let rest =
    match v with
    | Unknown_flow { flow } | Missing_flow { flow } | Bad_path { flow } ->
      [ ("flow", Json.Int flow) ]
    | Slot_outside_window { flow; start; stop } ->
      [ ("flow", Json.Int flow); ("start", Json.float start); ("stop", Json.float stop) ]
    | Volume_mismatch { flow; delivered; expected } ->
      [
        ("flow", Json.Int flow);
        ("delivered", Json.float delivered);
        ("expected", Json.float expected);
      ]
    | Capacity_exceeded { link; window = lo, hi; rate; cap } ->
      [
        ("link", Json.Int link);
        ("window", Json.List [ Json.float lo; Json.float hi ]);
        ("rate", Json.float rate);
        ("cap", Json.float cap);
      ]
    | Link_conflict { link; at; flows = a, b } ->
      [
        ("link", Json.Int link);
        ("at", Json.float at);
        ("flows", Json.List [ Json.Int a; Json.Int b ]);
      ]
    | Horizon_mismatch { expected = e0, e1; got = g0, g1 } ->
      [
        ("expected", Json.List [ Json.float e0; Json.float e1 ]);
        ("got", Json.List [ Json.float g0; Json.float g1 ]);
      ]
    | Energy_mismatch { source; reported; recomputed } ->
      [
        ("source", Json.Str source);
        ("reported", Json.float reported);
        ("recomputed", Json.float recomputed);
      ]
    | Lb_violated { energy; lower_bound } ->
      [ ("energy", Json.float energy); ("lower_bound", Json.float lower_bound) ]
    | Partial_coflow { coflow; planned; missing } ->
      [
        ("coflow", Json.Int coflow);
        ("planned", Json.List (List.map (fun id -> Json.Int id) planned));
        ("missing", Json.List (List.map (fun id -> Json.Int id) missing));
      ]
  in
  Json.Obj (base @ rest)

let violations_to_json vs =
  Json.Obj
    [
      ("ok", Json.Bool (vs = []));
      ("violations", Json.List (List.map violation_to_json vs));
    ]

(* ------------------------- the certificate ------------------------- *)

(* Per-link activity sweep, independent of [Schedule.link_profile]:
   collect every (start, stop, rate, flow) carried by each link, cut the
   link's own timeline at all slot boundaries, and evaluate each
   elementary segment at its midpoint.  Returns the dynamic energy, the
   number of active links, and the capacity/exclusivity violations. *)
let sweep ~cfg ~(power : Model.t) plans =
  let by_link = Hashtbl.create 64 in
  List.iter
    (fun (p : Schedule.plan) ->
      List.iter
        (fun link ->
          let entries = try Hashtbl.find by_link link with Not_found -> [] in
          let mine =
            List.filter_map
              (fun (s : Schedule.slot) ->
                if s.rate > 0. && s.stop > s.start then
                  Some (s.start, s.stop, s.rate, p.flow.Flow.id)
                else None)
              p.slots
          in
          Hashtbl.replace by_link link (mine @ entries))
        p.path)
    plans;
  let links = List.sort compare (Hashtbl.fold (fun l _ acc -> l :: acc) by_link []) in
  let dynamic = ref 0. in
  let active = ref 0 in
  let violations = ref [] in
  let cap_tol = cfg.eps *. Float.max 1. power.Model.cap in
  List.iter
    (fun link ->
      let entries = Hashtbl.find by_link link in
      let cuts =
        List.concat_map (fun (a, b, _, _) -> [ a; b ]) entries
        |> List.sort_uniq compare |> Array.of_list
      in
      let link_active = ref false in
      let over = ref None in
      (* worst segment *)
      let conflict = ref None in
      for k = 0 to Array.length cuts - 2 do
        let t0 = cuts.(k) and t1 = cuts.(k + 1) in
        let len = t1 -. t0 in
        if len > 0. then begin
          let mid = 0.5 *. (t0 +. t1) in
          let rate = ref 0. in
          let first_flow = ref None in
          List.iter
            (fun (a, b, r, f) ->
              if a <= mid && mid < b then begin
                rate := !rate +. r;
                match !first_flow with
                | None -> first_flow := Some f
                | Some f0 when f0 <> f && !conflict = None ->
                  conflict := Some (Link_conflict { link; at = t0; flows = (f0, f) })
                | Some _ -> ()
              end)
            entries;
          if !rate > 0. then begin
            link_active := true;
            dynamic := !dynamic +. (Model.dynamic power !rate *. len)
          end;
          if !rate > power.Model.cap +. cap_tol then
            match !over with
            | Some (_, _, worst) when worst >= !rate -> ()
            | _ -> over := Some (t0, t1, !rate)
        end
      done;
      if !link_active then incr active;
      (match !over with
      | Some (lo, hi, rate) when cfg.check_capacity ->
        violations :=
          Capacity_exceeded { link; window = (lo, hi); rate; cap = power.Model.cap }
          :: !violations
      | _ -> ());
      match !conflict with
      | Some c when cfg.exclusive -> violations := c :: !violations
      | _ -> ())
    links;
  (!dynamic, !active, List.rev !violations)

let close x y ~rtol = Float.abs (x -. y) <= rtol *. Float.max 1. (Float.max (Float.abs x) (Float.abs y))

let schedule ?(config = default) ?reported_energy ?lower_bound inst
    (sched : Schedule.t) =
  Trace.span "check.certify" @@ fun () ->
  let cfg = config in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let g = inst.Instance.graph in
  (* Horizon: the idle-power window must be the instance's. *)
  let it0, it1 = Instance.horizon inst in
  let st0, st1 = sched.Schedule.horizon in
  if Float.abs (st0 -. it0) > cfg.eps || Float.abs (st1 -. it1) > cfg.eps then
    add (Horizon_mismatch { expected = (it0, it1); got = (st0, st1) });
  (* Per-plan structure: known flow, connecting simple path, windows,
     volume. *)
  let planned = Hashtbl.create 16 in
  List.iter
    (fun (p : Schedule.plan) ->
      let id = p.flow.Flow.id in
      Hashtbl.replace planned id ();
      match Instance.find_flow_opt inst id with
      | None -> add (Unknown_flow { flow = id })
      | Some f ->
        if not (Graph.is_path g ~src:f.src ~dst:f.dst p.path) || p.path = [] then
          add (Bad_path { flow = id });
        if cfg.check_volume then begin
          let tol = cfg.eps *. Float.max 1. f.volume in
          List.iter
            (fun (s : Schedule.slot) ->
              if
                s.rate > 0.
                && (s.start < f.release -. cfg.eps || s.stop > f.deadline +. cfg.eps)
              then add (Slot_outside_window { flow = id; start = s.start; stop = s.stop }))
            p.slots;
          let got = Schedule.delivered p in
          if Float.abs (got -. f.volume) > tol then
            add (Volume_mismatch { flow = id; delivered = got; expected = f.volume })
        end)
    sched.Schedule.plans;
  if (not cfg.partial) && cfg.check_volume then
    List.iter
      (fun (f : Flow.t) ->
        if not (Hashtbl.mem planned f.id) then add (Missing_flow { flow = f.id }))
      inst.Instance.flows;
  (* Full timeline sweep: capacity, exclusivity, dynamic energy, active
     links — then Eq. (5) re-integration and the cross-checks. *)
  let dynamic, active, sweep_violations =
    sweep ~cfg ~power:inst.Instance.power sched.Schedule.plans
  in
  List.iter add sweep_violations;
  let idle =
    float_of_int active *. inst.Instance.power.Model.sigma *. (st1 -. st0)
  in
  let recomputed = idle +. dynamic in
  (match reported_energy with
  | Some e when not (close e recomputed ~rtol:cfg.energy_rtol) ->
    add (Energy_mismatch { source = "solver"; reported = e; recomputed })
  | _ -> ());
  if cfg.cross_check_sim then begin
    let sim = Dcn_sim.Fluid.run sched in
    if not (close sim.Dcn_sim.Fluid.energy recomputed ~rtol:cfg.energy_rtol) then
      add
        (Energy_mismatch
           { source = "fluid-sim"; reported = sim.Dcn_sim.Fluid.energy; recomputed })
  end;
  (match lower_bound with
  | Some lb when recomputed < lb -. (cfg.energy_rtol *. Float.max 1. lb) ->
    add (Lb_violated { energy = recomputed; lower_bound = lb })
  | _ -> ());
  let result = List.rev !violations in
  if result <> [] then
    Trace.counter "check.violations" (float_of_int (List.length result));
  result

let solution ?(eps = default.eps) ?lower_bound inst (sol : Solution.t) =
  let lower_bound =
    match lower_bound with
    | Some _ -> lower_bound
    | None ->
      (* Random-Schedule carries its relaxation; reuse it for the LB
         dominance clause at no extra cost. *)
      Option.map
        (fun r -> (Dcn_core.Lower_bound.of_relaxation r).Dcn_core.Lower_bound.value)
        (Solution.relaxation sol)
  in
  let cfg =
    match sol.Solution.meta with
    | Solution.Mcf _ ->
      (* Virtual circuits: exclusive slots; DCFS does not bind the cap. *)
      { default with eps; exclusive = true; check_capacity = false }
    | Solution.Rounding _ ->
      (* Interval densities: links are shared; Theorem 4 claims
         capacity feasibility (when the draw was feasible). *)
      { default with eps; exclusive = false; check_capacity = true }
    | Solution.Routed _ ->
      (* Same interval-density regime as Rounding.  A feasible Routed
         result admitted every flow (so partial coverage never arises
         here; infeasible ones take the partial branch below). *)
      { default with eps; exclusive = false; check_capacity = true }
  in
  if not sol.Solution.feasible then
    (* An infeasible result claims nothing beyond structure: check the
       paths and windows, skip volumes (placements may be partial, so
       allow missing plans too), capacity, energy and the LB. *)
    schedule
      ~config:
        {
          cfg with
          partial = true;
          check_volume = false;
          check_capacity = false;
          cross_check_sim = false;
        }
      inst sol.Solution.schedule
  else
    schedule ~config:cfg ~reported_energy:sol.Solution.energy ?lower_bound inst
      sol.Solution.schedule

(* ----------------------- coflow consistency ------------------------ *)

(* All-or-nothing admission: a schedule speaks for a coflow only if it
   plans {e every} member — delivering 37 of 40 member flows is worth
   nothing (DCoflow).  The check is purely structural (membership vs
   planned flow ids), so it composes with [schedule ~config:{partial =
   true}] into the conjunction certificate of Dcn_coflow.Certificate:
   member-level clauses come from the member plans, this clause rules
   out the partially admitted middle ground. *)
let coflow_consistency ~members (sched : Schedule.t) =
  let planned = Hashtbl.create 16 in
  List.iter
    (fun (p : Schedule.plan) -> Hashtbl.replace planned p.flow.Flow.id ())
    sched.Schedule.plans;
  List.filter_map
    (fun (coflow, member_ids) ->
      let planned_ids, missing =
        List.partition (fun id -> Hashtbl.mem planned id) member_ids
      in
      if planned_ids <> [] && missing <> [] then
        Some (Partial_coflow { coflow; planned = planned_ids; missing })
      else None)
    members

(* --------------------------- selfcheck ----------------------------- *)

let fail_on label violations =
  match violations with
  | [] -> ()
  | vs ->
    let msgs =
      List.map (fun v -> Format.asprintf "%a" pp_violation v) vs
    in
    failwith
      (Printf.sprintf "selfcheck: %s: %d violation(s): %s" label (List.length vs)
         (String.concat "; " msgs))

let install_selfcheck () =
  Dcn_core.Selfcheck.set
    ~solution:(fun inst sol ->
      fail_on sol.Solution.algorithm (solution inst sol))
    ~schedule:(fun ~label ~partial inst sched ->
      fail_on label (schedule ~config:{ default with partial } inst sched))
    ()

let selfcheck_from_env () =
  if Sys.getenv_opt "DCN_SELFCHECK" = Some "1" then install_selfcheck ()
