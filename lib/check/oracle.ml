module Json = Dcn_engine.Json
module Pool = Dcn_engine.Pool
module Trace = Dcn_engine.Trace
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Frank_wolfe = Dcn_mcf.Frank_wolfe
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Solver_api = Dcn_core.Solver_api
module Baselines = Dcn_core.Baselines
module Most_critical_first = Dcn_core.Most_critical_first
module Random_schedule = Dcn_core.Random_schedule
module Greedy_ear = Dcn_core.Greedy_ear
module Online = Dcn_core.Online
module Exact = Dcn_core.Exact
module Relaxation = Dcn_core.Relaxation
module Lower_bound = Dcn_core.Lower_bound
module Selfcheck = Dcn_core.Selfcheck

type solver_result = {
  solver : string;
  energy : float;
  feasible : bool;
  violations : Certify.violation list;
}

type cross_violation =
  | Exact_beaten of { solver : string; energy : float; exact : float }
  | Lb_violated of { solver : string; energy : float; lower_bound : float }
  | Mcf_not_reproducible of { solver : string; energy : float; resolved : float }
  | Meta_inconsistent of { solver : string; what : string }
  | Kernel_divergence of { what : string; kernel : float; reference : float }

type t = {
  label : string;
  lower_bound : float;
  results : solver_result list;
  cross : cross_violation list;
}

let ok t =
  t.cross = [] && List.for_all (fun r -> r.violations = []) t.results

let cross_kind = function
  | Exact_beaten _ -> "cross_exact_beaten"
  | Lb_violated _ -> "cross_lb_violated"
  | Mcf_not_reproducible _ -> "cross_mcf_not_reproducible"
  | Meta_inconsistent _ -> "cross_meta_inconsistent"
  | Kernel_divergence _ -> "cross_kernel_divergence"

let violation_kinds t =
  let per_solver =
    List.concat_map (fun r -> List.map Certify.kind r.violations) t.results
  in
  let cross = List.map cross_kind t.cross in
  List.sort_uniq String.compare (per_solver @ cross)

let pp_cross ppf = function
  | Exact_beaten { solver; energy; exact } ->
    Format.fprintf ppf "%s beats the exhaustive optimum: %g < %g" solver exact
      energy
  | Lb_violated { solver; energy; lower_bound } ->
    Format.fprintf ppf "%s energy %g below the fractional lower bound %g"
      solver energy lower_bound
  | Mcf_not_reproducible { solver; energy; resolved } ->
    Format.fprintf ppf
      "re-running MCF on %s's own routing gives %g, not the reported %g"
      solver resolved energy
  | Meta_inconsistent { solver; what } ->
    Format.fprintf ppf "%s metadata inconsistent: %s" solver what
  | Kernel_divergence { what; kernel; reference } ->
    Format.fprintf ppf
      "flat-kernel Frank-Wolfe diverges from the reference engine on %s: %h <> %h"
      what kernel reference

(* ----------------------------- helpers ----------------------------- *)

let fuzz_fw_config =
  { Frank_wolfe.default_config with max_iters = 60; gap_tol = 1e-3 }

let rtol = 1e-6
let close a b = Float.abs (a -. b) <= rtol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let flow_ids inst =
  Array.to_list (Array.map (fun f -> f.Dcn_flow.Flow.id) (Instance.flow_array inst))

let sorted_ids ids = List.sort_uniq compare ids

(* Metadata consistency clauses, per solver. *)
let meta_checks inst (sol : Solution.t) ~rs_attempts =
  let add, get =
    let acc = ref [] in
    ( (fun what ->
        acc := Meta_inconsistent { solver = sol.Solution.algorithm; what } :: !acc),
      fun () -> List.rev !acc )
  in
  let ids = flow_ids inst in
  let rate_ids = sorted_ids (List.map fst sol.Solution.per_flow_rates) in
  if rate_ids <> ids then add "per_flow_rates does not cover the flow set";
  (match sol.Solution.meta with
  | Solution.Mcf detail ->
    let group_ids =
      List.sort compare
        (List.concat_map (fun g -> g.Solution.flow_ids) detail.Solution.groups)
    in
    if group_ids <> ids then
      add "critical groups do not partition the flow set"
  | Solution.Rounding detail ->
    let path_ids = sorted_ids (List.map fst detail.Solution.paths) in
    if path_ids <> ids then add "rounding paths do not cover the flow set";
    if detail.Solution.attempts_used < 1
       || detail.Solution.attempts_used > rs_attempts
    then add "attempts_used outside the redraw budget"
  | Solution.Routed detail ->
    let covered =
      List.sort compare (detail.Solution.accepted @ detail.Solution.rejected)
    in
    if covered <> ids then add "accepted + rejected does not cover the flow set";
    if
      sorted_ids (List.map fst detail.Solution.paths)
      <> List.sort compare detail.Solution.accepted
    then add "routed paths do not match the accepted set");
  get ()

(* Theorem 1: MCF is deterministic given its routing — re-solving on the
   solution's own paths must reproduce its energy. *)
let mcf_reproducibility inst (sol : Solution.t) =
  if not sol.Solution.feasible then []
  else
    let paths = Solution.paths sol in
    match
      Most_critical_first.solve_routed inst ~routing:(fun id -> List.assoc id paths)
    with
    | exception _ ->
      [
        Meta_inconsistent
          {
            solver = sol.Solution.algorithm;
            what = "routing read back from the schedule does not re-solve";
          };
      ]
    | re ->
      if close re.Solution.energy sol.Solution.energy then []
      else
        [
          Mcf_not_reproducible
            {
              solver = sol.Solution.algorithm;
              energy = sol.Solution.energy;
              resolved = re.Solution.energy;
            };
        ]

(* The exhaustive search is only attempted where the enumeration budget
   is certainly small. *)
let exact_gate inst =
  Instance.num_flows inst <= 4 && Graph.num_cables inst.Instance.graph <= 10

let run ?(rs_attempts = 10) ?(fw_config = fuzz_fw_config) ?exact ~solver_seed
    ~label inst =
  Trace.span ~fields:[ ("label", Json.Str label) ] "check.oracle" @@ fun () ->
  (* The oracle certifies everything itself; suppress any installed
     selfcheck hook so a violation is recorded rather than thrown
     mid-solve. *)
  Selfcheck.without @@ fun () ->
  let relaxation = Relaxation.solve ~fw_config inst in
  let lb = (Lower_bound.of_relaxation relaxation).Lower_bound.value in
  let rngs = Pool.split_rngs (Prng.create solver_seed) 2 in
  let never = Dcn_engine.Deadline.never in
  let ws ?rng () = Solver_api.workspace ?rng () in
  let sp = Baselines.sp_mcf inst in
  let ecmp =
    Baselines.Ecmp_mcf.solve ~instance:inst ~workspace:(ws ~rng:rngs.(0) ())
      ~deadline:never ()
  in
  let rs =
    Random_schedule.solve
      ~config:{ Random_schedule.attempts = rs_attempts; fw_config }
      ~relaxation ~instance:inst ~workspace:(ws ~rng:rngs.(1) ())
      ~deadline:never ()
  in
  let refined = Random_schedule.refine inst rs in
  let greedy =
    Greedy_ear.solve ~instance:inst ~workspace:(ws ()) ~deadline:never ()
  in
  let online =
    Online.solve ~instance:inst ~workspace:(ws ()) ~deadline:never ()
  in
  let want_exact =
    match exact with Some b -> b | None -> exact_gate inst
  in
  let exact_result =
    if not want_exact then None
    else match Exact.search inst with
      | r -> Some r
      | exception Invalid_argument _ -> None
  in
  let of_solution (sol : Solution.t) =
    {
      solver = sol.Solution.algorithm;
      energy = sol.Solution.energy;
      feasible = sol.Solution.feasible;
      violations = Certify.solution inst sol;
    }
  in
  let greedy_result =
    {
      solver = "greedy-ear";
      energy = greedy.Solution.energy;
      feasible = greedy.Solution.feasible;
      violations =
        Certify.schedule ~reported_energy:greedy.Solution.energy inst
          greedy.Solution.schedule;
    }
  in
  let online_rejects = Solution.rejected online <> [] in
  let online_result =
    {
      solver = "online";
      energy = online.Solution.energy;
      feasible = online.Solution.feasible;
      violations =
        Certify.schedule
          ~config:{ Certify.default with partial = true }
          ~reported_energy:online.Solution.energy inst online.Solution.schedule;
    }
  in
  let solutions =
    [ sp; ecmp; rs; refined ]
    @ (match exact_result with
      | Some e -> [ e.Exact.best ]
      | None -> [])
  in
  let results =
    List.map of_solution solutions @ [ greedy_result; online_result ]
  in
  (* Cross-solver invariants. *)
  let cross = ref [] in
  let add c = cross := c :: !cross in
  (* LB dominance, for interval-density schedules only: such a schedule
     is a feasible point of every per-interval fractional program, so
     its cost dominates the relaxation's certified bound.  The bound
     does NOT hold for virtual-circuit results — the relaxation fixes
     per-interval demands to densities, and MCF's time-shifting can
     legitimately dip below it (the DESIGN.md normaliser caveat) —
     so SP+MCF, ECMP+MCF, refine and the exhaustive optimum are
     exempt.  Random-Schedule's own certificate already carries the
     clause (it derives the bound from its relaxation). *)
  if (not online_rejects)
     && online.Solution.energy < lb -. (rtol *. Float.max 1. lb)
  then
    add (Lb_violated { solver = "online"; energy = online.Solution.energy; lower_bound = lb });
  if greedy.Solution.energy < lb -. (rtol *. Float.max 1. lb) then
    add
      (Lb_violated
         { solver = "greedy-ear"; energy = greedy.Solution.energy; lower_bound = lb });
  (* Corollary 1: the exhaustive minimum over routings bounds every
     fixed-routing virtual-circuit result. *)
  (match exact_result with
  | None -> ()
  | Some e ->
    List.iter
      (fun (sol : Solution.t) ->
        if
          sol.Solution.feasible
          && sol.Solution.energy
             < e.Exact.energy -. (rtol *. Float.max 1. e.Exact.energy)
        then
          add
            (Exact_beaten
               {
                 solver = sol.Solution.algorithm;
                 energy = sol.Solution.energy;
                 exact = e.Exact.energy;
               }))
      [ sp; ecmp; refined ]);
  (* Theorem 1 determinism on the deterministic-routing baseline. *)
  List.iter (fun v -> add v) (mcf_reproducibility inst sp);
  (* Metadata consistency. *)
  List.iter
    (fun sol -> List.iter (fun v -> add v) (meta_checks inst sol ~rs_attempts))
    solutions;
  let all_ids = flow_ids inst in
  if
    List.sort compare (Solution.accepted online @ Solution.rejected online)
    <> all_ids
  then
    add
      (Meta_inconsistent
         { solver = "online"; what = "accepted + rejected != flow set" });
  (* The flat-kernel Frank-Wolfe engine must reproduce the reference
     engine bit for bit (the Dcn_mcf.Kernel contract): re-solve the
     relaxation on the boxed reference path and compare the certified
     series. *)
  let reference_relax =
    Relaxation.solve
      ~fw_config:
        { fw_config with Frank_wolfe.engine = Frank_wolfe.Reference }
      inst
  in
  let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  if not (feq relaxation.Relaxation.cost reference_relax.Relaxation.cost) then
    add
      (Kernel_divergence
         {
           what = "relaxation cost";
           kernel = relaxation.Relaxation.cost;
           reference = reference_relax.Relaxation.cost;
         });
  if not (feq relaxation.Relaxation.lb reference_relax.Relaxation.lb) then
    add
      (Kernel_divergence
         {
           what = "relaxation lower bound";
           kernel = relaxation.Relaxation.lb;
           reference = reference_relax.Relaxation.lb;
         });
  let cross = List.rev !cross in
  if cross <> [] then
    Trace.counter "check.cross_violations" (float_of_int (List.length cross));
  { label; lower_bound = lb; results; cross }

let run_case ?rs_attempts ?fw_config (case : Gen.case) =
  run ?rs_attempts ?fw_config ~solver_seed:case.Gen.solver_seed
    ~label:case.Gen.label case.Gen.instance

let run_batch ?pool ?rs_attempts ?fw_config cases =
  let f case = run_case ?rs_attempts ?fw_config case in
  match pool with
  | None -> Array.map f cases
  | Some pool -> Pool.map pool f cases

(* ------------------------------- JSON ------------------------------ *)

let cross_to_json c =
  let fields =
    match c with
    | Exact_beaten { solver; energy; exact } ->
      [
        ("solver", Json.Str solver);
        ("energy", Json.float energy);
        ("exact", Json.float exact);
      ]
    | Lb_violated { solver; energy; lower_bound } ->
      [
        ("solver", Json.Str solver);
        ("energy", Json.float energy);
        ("lower_bound", Json.float lower_bound);
      ]
    | Mcf_not_reproducible { solver; energy; resolved } ->
      [
        ("solver", Json.Str solver);
        ("energy", Json.float energy);
        ("resolved", Json.float resolved);
      ]
    | Meta_inconsistent { solver; what } ->
      [ ("solver", Json.Str solver); ("what", Json.Str what) ]
    | Kernel_divergence { what; kernel; reference } ->
      [
        ("what", Json.Str what);
        ("kernel", Json.float kernel);
        ("reference", Json.float reference);
      ]
  in
  Json.Obj (("kind", Json.Str (cross_kind c)) :: fields)

let result_to_json r =
  Json.Obj
    [
      ("solver", Json.Str r.solver);
      ("energy", Json.float r.energy);
      ("feasible", Json.Bool r.feasible);
      ("ok", Json.Bool (r.violations = []));
      ( "violations",
        Json.List (List.map Certify.violation_to_json r.violations) );
    ]

let to_json t =
  Json.Obj
    [
      ("label", Json.Str t.label);
      ("ok", Json.Bool (ok t));
      ("lower_bound", Json.float t.lower_bound);
      ("solvers", Json.List (List.map result_to_json t.results));
      ("cross", Json.List (List.map cross_to_json t.cross));
    ]

let batch_to_json ts =
  let oks = Array.fold_left (fun n t -> if ok t then n + 1 else n) 0 ts in
  Json.Obj
    [
      ("cases", Json.Int (Array.length ts));
      ("ok", Json.Bool (oks = Array.length ts));
      ("failures", Json.Int (Array.length ts - oks));
      ("reports", Json.List (Array.to_list (Array.map to_json ts)));
    ]
