module Json = Dcn_engine.Json
module Trace = Dcn_engine.Trace
module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Instance = Dcn_core.Instance
module Selfcheck = Dcn_core.Selfcheck

type step = { op : string; flows : int; cables : int }
type result = { instance : Instance.t; steps : step list }

let size inst =
  (Instance.num_flows inst, Graph.num_cables inst.Instance.graph)

let steps_to_json steps =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("op", Json.Str s.op);
             ("flows", Json.Int s.flows);
             ("cables", Json.Int s.cables);
           ])
       steps)

(* Rebuild the instance with one flow's record replaced. *)
let with_flow inst id f =
  let flows =
    List.map
      (fun (fl : Flow.t) -> if fl.Flow.id = id then f fl else fl)
      inst.Instance.flows
  in
  Instance.make ~graph:inst.Instance.graph ~power:inst.Instance.power ~flows

let remake_flow (fl : Flow.t) ~volume ~release ~deadline =
  Flow.make ~id:fl.Flow.id ~src:fl.Flow.src ~dst:fl.Flow.dst ~volume ~release
    ~deadline

(* One cable per physical pair: the directed link whose id is below its
   reverse. *)
let cables graph =
  List.filter
    (fun l -> l < Graph.reverse graph l)
    (List.init (Graph.num_links graph) Fun.id)

let volume_floor = 0.5

(* Candidate edits, in the fixed scan order.  Every edit either strictly
   shrinks a size metric (fewer flows, smaller volume, fewer cables) or
   is idempotent (window already snapped is not a candidate again), so
   the greedy loop terminates. *)
let candidates inst =
  let flows = Array.to_list (Instance.flow_array inst) in
  let graph = inst.Instance.graph in
  let drop =
    if List.length flows < 2 then []
    else
      List.map
        (fun (fl : Flow.t) ->
          ( Printf.sprintf "drop-flow %d" fl.Flow.id,
            fun () ->
              Instance.make ~graph ~power:inst.Instance.power
                ~flows:(List.filter (fun (g : Flow.t) -> g.Flow.id <> fl.Flow.id) flows)
          ))
        flows
  in
  let halve =
    List.filter_map
      (fun (fl : Flow.t) ->
        if fl.Flow.volume /. 2. < volume_floor then None
        else
          Some
            ( Printf.sprintf "halve-volume %d" fl.Flow.id,
              fun () ->
                with_flow inst fl.Flow.id (fun fl ->
                    remake_flow fl ~volume:(fl.Flow.volume /. 2.)
                      ~release:fl.Flow.release ~deadline:fl.Flow.deadline) ))
      flows
  in
  let t0, t1 = Instance.horizon inst in
  let snap =
    List.filter_map
      (fun (fl : Flow.t) ->
        if fl.Flow.release = t0 && fl.Flow.deadline = t1 then None
        else
          Some
            ( Printf.sprintf "snap-window %d" fl.Flow.id,
              fun () ->
                with_flow inst fl.Flow.id (fun fl ->
                    remake_flow fl ~volume:fl.Flow.volume ~release:t0
                      ~deadline:t1) ))
      flows
  in
  let cut =
    List.map
      (fun link ->
        ( Printf.sprintf "remove-cable %d" link,
          fun () ->
            Instance.make
              ~graph:(Graph.remove_cables graph ~cables:[ link ])
              ~power:inst.Instance.power ~flows ))
      (cables graph)
  in
  drop @ halve @ snap @ cut

let minimize ?(max_rounds = 200) pred inst =
  Trace.span "check.shrink" @@ fun () ->
  let holds candidate =
    try Selfcheck.without (fun () -> pred candidate) with _ -> false
  in
  if not (holds inst) then { instance = inst; steps = [] }
  else begin
    let rec first_success = function
      | [] -> None
      | (op, build) :: rest -> (
        match build () with
        | exception _ -> first_success rest
        | candidate ->
          if holds candidate then Some (op, candidate)
          else first_success rest)
    in
    let rec loop inst steps round =
      if round >= max_rounds then (inst, steps)
      else
        match first_success (candidates inst) with
        | None -> (inst, steps)
        | Some (op, smaller) ->
          let flows, cables = size smaller in
          loop smaller ({ op; flows; cables } :: steps) (round + 1)
    in
    let minimized, steps = loop inst [] 0 in
    Trace.counter "check.shrink.steps" (float_of_int (List.length steps));
    { instance = minimized; steps = List.rev steps }
  end
