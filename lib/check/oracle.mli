(** Differential testing of the solver family on one instance.

    Runs a configurable solver set — SP+MCF, ECMP+MCF, Random-Schedule
    (plus its Most-Critical-First refinement), greedy energy-aware
    routing, online admission control and, on tiny instances, the
    exhaustive {!Dcn_core.Exact} optimum — certifies every output with
    {!Certify}, and asserts the cross-solver invariants the paper
    proves:

    - every interval-density schedule (Random-Schedule, greedy,
      online with no rejections) dominates the fractional lower bound
      (Section V-C normaliser; virtual-circuit results are exempt —
      the relaxation fixes per-interval demands to densities, and
      MCF's time-shifting can legitimately dip below it, see the
      DESIGN.md caveat);
    - the exhaustive optimum is no worse than any fixed-routing
      MCF result (Corollary 1: MCF is optimal per routing, so the
      minimum over routings bounds them all);
    - re-running Most-Critical-First on a virtual-circuit solution's
      own routing reproduces its energy (Theorem 1 determinism);
    - a feasible Random-Schedule draw passes the full certificate
      (Theorem 4);
    - solution metadata is consistent: rounding paths match the
      schedule's plans, MCF groups partition the flow set, rates cover
      every flow. *)

type solver_result = {
  solver : string;
  energy : float;
  feasible : bool;
  violations : Certify.violation list;
}

type cross_violation =
  | Exact_beaten of { solver : string; energy : float; exact : float }
  | Lb_violated of { solver : string; energy : float; lower_bound : float }
  | Mcf_not_reproducible of { solver : string; energy : float; resolved : float }
  | Meta_inconsistent of { solver : string; what : string }
  | Kernel_divergence of { what : string; kernel : float; reference : float }
      (** the flat-kernel Frank–Wolfe engine failed to reproduce the
          boxed reference engine bit for bit on this instance *)

type t = {
  label : string;
  lower_bound : float;
  results : solver_result list;
  cross : cross_violation list;
}

val ok : t -> bool
(** No per-solver certificate violations and no cross-solver ones. *)

val violation_kinds : t -> string list
(** Sorted, distinct taxonomy tags of everything that failed — the
    identity {!Shrink} preserves. *)

val pp_cross : Format.formatter -> cross_violation -> unit

val run :
  ?rs_attempts:int ->
  ?fw_config:Dcn_mcf.Frank_wolfe.config ->
  ?exact:bool ->
  solver_seed:int ->
  label:string ->
  Dcn_core.Instance.t ->
  t
(** Deterministic given its arguments.  [exact] defaults to an
    auto-gate (few flows, tiny graph); the exhaustive solver is skipped
    when its enumeration budget would blow up.  [rs_attempts] defaults
    to 10; [fw_config] to a fuzzing-speed Frank–Wolfe setting. *)

val run_case : ?rs_attempts:int -> ?fw_config:Dcn_mcf.Frank_wolfe.config -> Gen.case -> t

val run_batch :
  ?pool:Dcn_engine.Pool.t ->
  ?rs_attempts:int ->
  ?fw_config:Dcn_mcf.Frank_wolfe.config ->
  Gen.case array ->
  t array
(** One {!run_case} per case, fanned over the pool; results are in case
    order and bit-identical for every pool size. *)

val to_json : t -> Dcn_engine.Json.t

val batch_to_json : t array -> Dcn_engine.Json.t
