module Prng = Dcn_util.Prng
module Builders = Dcn_topology.Builders
module Graph = Dcn_topology.Graph
module Workload = Dcn_flow.Workload
module Model = Dcn_power.Model
module Instance = Dcn_core.Instance

type case = {
  index : int;
  label : string;
  solver_seed : int;
  instance : Dcn_core.Instance.t;
}

(* Topology families, biased towards the tiny graphs the exhaustive
   solver can still certify. *)
let topology rng =
  match Prng.int rng 6 with
  | 0 ->
    let n = 2 + Prng.int rng 3 in
    (Printf.sprintf "line:%d" n, Builders.line n)
  | 1 ->
    let leaves = 2 + Prng.int rng 3 in
    (Printf.sprintf "star:%d" leaves, Builders.star ~leaves)
  | 2 ->
    let links = 1 + Prng.int rng 3 in
    (Printf.sprintf "parallel:%d" links, Builders.parallel ~links)
  | 3 ->
    let spines = 2 and leaves = 2 in
    let hosts_per_leaf = 1 + Prng.int rng 2 in
    ( Printf.sprintf "leaf-spine:%d:%d:%d" spines leaves hosts_per_leaf,
      Builders.leaf_spine ~spines ~leaves ~hosts_per_leaf )
  | 4 -> ("fat-tree:4", Builders.fat_tree 4)
  | _ ->
    let n = 3 + Prng.int rng 2 in
    (Printf.sprintf "line:%d" n, Builders.line n)

let power rng =
  let alpha = float_of_int (2 + Prng.int rng 3) in
  let sigma = if Prng.int rng 3 = 0 then Prng.uniform rng ~lo:1. ~hi:20. else 0. in
  (* A finite cap occasionally, generous enough that feasible draws
     exist but tight enough to exercise redraws and admission control. *)
  let cap = if Prng.int rng 4 = 0 then Prng.uniform rng ~lo:8. ~hi:40. else infinity in
  let label =
    Printf.sprintf "a%g%s%s" alpha
      (if sigma > 0. then "+s" else "")
      (if cap < infinity then "+cap" else "")
  in
  (label, Model.make ~sigma ~mu:1. ~alpha ~cap ())

let flows rng graph =
  let hosts = Array.length (Graph.hosts graph) in
  let spec =
    {
      Workload.horizon = (0., 10.);
      volume_mean = 6.;
      volume_stddev = 2.;
      min_span = 1.;
    }
  in
  match Prng.int rng 4 with
  | 0 | 1 ->
    let n = 2 + Prng.int rng 5 in
    (Printf.sprintf "random:%d" n, Workload.paper_random ~spec ~rng ~graph ~n ())
  | 2 when hosts >= 3 ->
    let sources = min (hosts - 1) (2 + Prng.int rng 2) in
    ( Printf.sprintf "incast:%d" sources,
      Workload.incast ~volume:4. ~horizon:(0., 10.) ~rng ~graph ~sources () )
  | _ ->
    let stages = 1 + Prng.int rng 2 in
    let per = 1 + Prng.int rng 2 in
    ( Printf.sprintf "staged:%dx%d" stages per,
      Workload.staged ~volume:5. ~rng ~graph ~stages ~flows_per_stage:per
        ~stage_length:4. () )

let case ~rng ~index =
  let topo_label, graph = topology rng in
  let power_label, power = power rng in
  let flow_label, fs = flows rng graph in
  let instance = Instance.make ~graph ~power ~flows:fs in
  let solver_seed = Prng.int rng 1_000_000_000 in
  {
    index;
    label = Printf.sprintf "%s/%s/%s" topo_label flow_label power_label;
    solver_seed;
    instance;
  }

let batch ~seed ~n =
  if n < 1 then invalid_arg (Printf.sprintf "Gen.batch: n must be >= 1 (got %d)" n);
  let streams = Dcn_engine.Pool.split_rngs (Prng.create seed) n in
  Array.init n (fun index -> case ~rng:streams.(index) ~index)

(* Coflow instances: grouped workloads over topologies with at least
   four hosts (one 2x2 shuffle), capacity finite half the time so the
   all-or-nothing admission walk actually rejects groups.  Membership
   is plain [(job, members)] data — the oracle layers a coflow library
   on top; this module stays below it. *)

type coflow_case = {
  index : int;
  label : string;
  solver_seed : int;
  graph : Graph.t;
  power : Model.t;
  jobs : (int * Dcn_flow.Flow.t list) list;
}

let coflow_topology rng =
  match Prng.int rng 4 with
  | 0 ->
    let leaves = 4 + Prng.int rng 3 in
    (Printf.sprintf "star:%d" leaves, Builders.star ~leaves)
  | 1 ->
    let hosts_per_leaf = 2 + Prng.int rng 2 in
    ( Printf.sprintf "leaf-spine:2:2:%d" hosts_per_leaf,
      Builders.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf )
  | 2 -> ("fat-tree:4", Builders.fat_tree 4)
  | _ ->
    let n = 4 + Prng.int rng 3 in
    (Printf.sprintf "line:%d" n, Builders.line n)

let coflow_power rng =
  let alpha = float_of_int (2 + Prng.int rng 2) in
  let sigma = if Prng.int rng 3 = 0 then Prng.uniform rng ~lo:1. ~hi:10. else 0. in
  let cap = if Prng.int rng 2 = 0 then Prng.uniform rng ~lo:4. ~hi:20. else infinity in
  let label =
    Printf.sprintf "a%g%s%s" alpha
      (if sigma > 0. then "+s" else "")
      (if cap < infinity then "+cap" else "")
  in
  (label, Model.make ~sigma ~mu:1. ~alpha ~cap ())

let coflow_case ~rng ~index =
  let topo_label, graph = coflow_topology rng in
  let power_label, power = coflow_power rng in
  let hosts = Array.length (Graph.hosts graph) in
  let jobs_n = 2 + Prng.int rng 3 in
  let next_id = ref 0 in
  let jobs =
    List.init jobs_n (fun job ->
        let t0 = Prng.uniform rng ~lo:0. ~hi:6. in
        let t1 = t0 +. 2. +. Prng.float rng 3. in
        let horizon = (t0, t1) in
        let first_flow_id = !next_id in
        let _, flows =
          if hosts >= 4 && Prng.int rng 2 = 0 then
            Workload.shuffle_grouped ~volume:3. ~horizon ~job ~first_flow_id
              ~rng ~graph ~mappers:2 ~reducers:2 ()
          else
            let sources = min (hosts - 1) (2 + Prng.int rng 2) in
            Workload.incast_grouped ~volume:3. ~horizon ~job ~first_flow_id
              ~rng ~graph ~sources ()
        in
        next_id := first_flow_id + List.length flows;
        (job, flows))
  in
  let solver_seed = Prng.int rng 1_000_000_000 in
  {
    index;
    label = Printf.sprintf "%s/jobs:%d/%s" topo_label jobs_n power_label;
    solver_seed;
    graph;
    power;
    jobs;
  }

let coflow_batch ~seed ~n =
  if n < 1 then
    invalid_arg (Printf.sprintf "Gen.coflow_batch: n must be >= 1 (got %d)" n);
  let streams = Dcn_engine.Pool.split_rngs (Prng.create seed) n in
  Array.init n (fun index -> coflow_case ~rng:streams.(index) ~index)
