(** Independent certification of solver output.

    Given an instance and a schedule (or a full {!Dcn_core.Solution.t}),
    re-derive every property the paper's theorems promise — from the raw
    slots, sharing no code with the solvers' own accounting:

    - path endpoints and connectivity in the {e instance's} graph;
    - transmission windows: every slot inside its flow's
      [\[release, deadline\]] span (hard deadlines, Section II-B);
    - volume completion: slot integrals deliver each flow's [w_i];
    - link capacity: a full per-link timeline sweep of summed rates
      against the power model's cap (Theorem 4's feasibility claim);
    - virtual-circuit exclusivity where claimed (Section III-A);
    - energy re-integration: Eq. (5) idle [sigma] + dynamic
      [mu x^alpha] recomputed from the sweep, cross-checked against the
      solver-reported total and against {!Dcn_sim.Fluid.run};
    - lower-bound dominance: [energy >= LB - eps] (the paper's
      normaliser, Section V-C).

    The result is a typed violation list — empty means certified. *)

type violation =
  | Unknown_flow of { flow : int }
      (** the schedule plans a flow the instance does not contain *)
  | Missing_flow of { flow : int }
      (** an instance flow has no plan (only without [partial]) *)
  | Bad_path of { flow : int }
      (** the plan's path is not a simple src→dst path in the graph *)
  | Slot_outside_window of { flow : int; start : float; stop : float }
  | Volume_mismatch of { flow : int; delivered : float; expected : float }
  | Capacity_exceeded of {
      link : int;
      window : float * float;
      rate : float;
      cap : float;
    }
  | Link_conflict of { link : int; at : float; flows : int * int }
      (** two flows transmit simultaneously on a virtual-circuit link *)
  | Horizon_mismatch of { expected : float * float; got : float * float }
  | Energy_mismatch of { source : string; reported : float; recomputed : float }
      (** [source] is ["solver"] or ["fluid-sim"] *)
  | Lb_violated of { energy : float; lower_bound : float }
  | Partial_coflow of { coflow : int; planned : int list; missing : int list }
      (** all-or-nothing admission broken: the schedule plans some but
          not all member flows of a coflow (see {!coflow_consistency}) *)

type config = {
  eps : float;  (** time/volume tolerance (relative), default 1e-6 *)
  energy_rtol : float;  (** energy comparison tolerance, default 1e-6 *)
  partial : bool;
      (** allow instance flows without a plan (online admission) *)
  exclusive : bool;  (** enforce virtual-circuit link exclusivity *)
  check_capacity : bool;  (** enforce the power model's cap *)
  check_volume : bool;  (** enforce volume completion and windows *)
  cross_check_sim : bool;  (** re-integrate energy via {!Dcn_sim.Fluid} *)
}

val default : config
(** [partial = false], [exclusive = false], [check_capacity = true],
    [check_volume = true], [cross_check_sim = true]. *)

val kind : violation -> string
(** Stable taxonomy tag, e.g. ["volume_mismatch"] — the identity the
    shrinker preserves and the JSON reports carry. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_json : violation -> Dcn_engine.Json.t

val violations_to_json : violation list -> Dcn_engine.Json.t
(** [{ "ok": bool, "violations": [...] }]. *)

val schedule :
  ?config:config ->
  ?reported_energy:float ->
  ?lower_bound:float ->
  Dcn_core.Instance.t ->
  Dcn_sched.Schedule.t ->
  violation list
(** Certify a bare schedule against its instance. *)

val coflow_consistency :
  members:(int * int list) list -> Dcn_sched.Schedule.t -> violation list
(** All-or-nothing admission consistency for coflow workloads: for each
    [(coflow id, member flow ids)] pair the schedule must plan either
    every member or none — a partially covered coflow yields a
    {!Partial_coflow} violation.  Purely structural (no volume or
    capacity claims), so it composes with [schedule ~config:{default
    with partial = true}] into a coflow {e conjunction} certificate:
    member clauses certify each planned member, this clause certifies
    the admission decision itself (Dcn_coflow.Certificate does exactly
    that). *)

val solution :
  ?eps:float ->
  ?lower_bound:float ->
  Dcn_core.Instance.t ->
  Dcn_core.Solution.t ->
  violation list
(** Certify a solver result.  The checked claims follow the solution's
    own metadata: MCF results are checked for exclusivity (virtual
    circuits) but not capacity (DCFS does not bind it), Random-Schedule
    results for capacity but not exclusivity (interval-density sharing);
    a result flagged infeasible only has its structural properties
    (paths, windows) checked, since it claims nothing else.  When the
    solution carries a relaxation (Random-Schedule), lower-bound
    dominance is checked against it even if [lower_bound] is omitted. *)

val install_selfcheck : unit -> unit
(** Install {!Dcn_core.Selfcheck} hooks that certify every solver
    result and raise [Failure] (with rendered violations) on the first
    failure. *)

val selfcheck_from_env : unit -> unit
(** {!install_selfcheck} iff the [DCN_SELFCHECK] environment variable
    is ["1"] — call once at program start-up (the CLI and bench do). *)
