(** Greedy delta-debugging of counterexample instances.

    Given an instance on which some predicate holds (typically "the
    oracle reports a violation of kind K"), repeatedly try
    simplifications and keep any that preserve the predicate:

    - drop a flow (while at least two remain);
    - halve a flow's volume (with a floor, so the loop terminates);
    - snap a flow's window to the instance horizon (slack removal);
    - remove a cable the graph can spare.

    Each round scans the candidate edits in a fixed order and restarts
    after the first success, so the result is deterministic; the loop
    ends when no edit preserves the predicate.  The minimized instance
    is never larger than the input (every edit strictly reduces a size
    metric or is idempotent), and still satisfies the predicate. *)

type step = {
  op : string;  (** e.g. ["drop-flow 3"], ["halve-volume 1"] *)
  flows : int;  (** flows remaining after the edit *)
  cables : int;  (** cables remaining after the edit *)
}

type result = {
  instance : Dcn_core.Instance.t;  (** the minimized counterexample *)
  steps : step list;  (** applied edits, in order *)
}

val size : Dcn_core.Instance.t -> int * int
(** [(flows, cables)] — the metric minimization reports. *)

val minimize :
  ?max_rounds:int ->
  (Dcn_core.Instance.t -> bool) ->
  Dcn_core.Instance.t ->
  result
(** [minimize pred inst] assumes [pred inst = true] (if not, the result
    is [inst] unchanged with no steps).  [pred] is called under
    {!Dcn_core.Selfcheck.without} and any exception it raises counts as
    [false], so an oracle that throws on a malformed candidate simply
    rejects the edit.  [max_rounds] (default 200) bounds the loop as a
    backstop; the edits terminate on their own well before it. *)

val steps_to_json : step list -> Dcn_engine.Json.t
