(** Seeded random instance generation for the fuzzing harness.

    Every case derives from its own pre-split PRNG stream
    ({!Dcn_engine.Pool.split_rngs}), so a batch is a pure function of
    [(seed, n)]: the same instances come out whatever [--jobs] level the
    oracle later runs at, and case [i] of a size-[n] batch never depends
    on how cases [0..i-1] consumed randomness.

    Instances mix the topology families of
    {!Dcn_topology.Builders} (line, star, parallel links, leaf–spine,
    fat-tree) with the workload knobs of {!Dcn_flow.Workload}
    (paper-random, incast, shuffle, staged), power exponents
    [alpha in {2, 3, 4}], idle power on or off, and occasionally a
    finite link capacity — small enough that the differential oracle
    (including the exhaustive {!Dcn_core.Exact} solver on the tiniest
    ones) stays fast. *)

type case = {
  index : int;  (** position in the batch *)
  label : string;  (** human-readable: topology × workload × knobs *)
  solver_seed : int;  (** seed for the oracle's randomised solvers *)
  instance : Dcn_core.Instance.t;
}

val case : rng:Dcn_util.Prng.t -> index:int -> case
(** One random case drawn from [rng]. *)

val batch : seed:int -> n:int -> case array
(** [n] independent cases from pre-split streams of [seed].
    @raise Invalid_argument if [n < 1]. *)

type coflow_case = {
  index : int;  (** position in the batch *)
  label : string;  (** topology × job count × power knobs *)
  solver_seed : int;  (** seed for the admission walk's solver streams *)
  graph : Dcn_topology.Graph.t;
  power : Dcn_power.Model.t;
  jobs : (int * Dcn_flow.Flow.t list) list;
      (** [(job id, member flows)] — flow ids globally unique across
          jobs.  Plain data on purpose: this module sits {e below} the
          coflow library, so the fuzz oracle groups these into
          [Dcn_coflow.Coflow.t] values itself and cross-checks the
          all-or-nothing admission walk against them. *)
}

val coflow_case : rng:Dcn_util.Prng.t -> index:int -> coflow_case
(** One random coflow workload: 2–4 grouped jobs (2×2 shuffles and
    incasts from the grouped generators of {!Dcn_flow.Workload}) with
    staggered horizons, on a topology with at least four hosts, with a
    finite link capacity half the time so admission actually rejects. *)

val coflow_batch : seed:int -> n:int -> coflow_case array
(** [n] independent coflow cases from pre-split streams of [seed] — a
    pure function of [(seed, n)] like {!batch}.
    @raise Invalid_argument if [n < 1]. *)
