(** Seeded random instance generation for the fuzzing harness.

    Every case derives from its own pre-split PRNG stream
    ({!Dcn_engine.Pool.split_rngs}), so a batch is a pure function of
    [(seed, n)]: the same instances come out whatever [--jobs] level the
    oracle later runs at, and case [i] of a size-[n] batch never depends
    on how cases [0..i-1] consumed randomness.

    Instances mix the topology families of
    {!Dcn_topology.Builders} (line, star, parallel links, leaf–spine,
    fat-tree) with the workload knobs of {!Dcn_flow.Workload}
    (paper-random, incast, shuffle, staged), power exponents
    [alpha in {2, 3, 4}], idle power on or off, and occasionally a
    finite link capacity — small enough that the differential oracle
    (including the exhaustive {!Dcn_core.Exact} solver on the tiniest
    ones) stays fast. *)

type case = {
  index : int;  (** position in the batch *)
  label : string;  (** human-readable: topology × workload × knobs *)
  solver_seed : int;  (** seed for the oracle's randomised solvers *)
  instance : Dcn_core.Instance.t;
}

val case : rng:Dcn_util.Prng.t -> index:int -> case
(** One random case drawn from [rng]. *)

val batch : seed:int -> n:int -> case array
(** [n] independent cases from pre-split streams of [seed].
    @raise Invalid_argument if [n < 1]. *)
