(* Flat numeric kernels for the Frank–Wolfe hot path.

   The boxed solver walks [Graph.out_links] arrays, allocates a
   [(dist, node)] tuple per heap operation and a fresh tree per Dijkstra
   call; at fat-tree k=16 that is hundreds of megabytes of minor-heap
   churn per FW iteration.  This module mirrors the topology into
   CSR-style flat [Bigarray]s once, and gives the iteration preallocated
   arenas — distance/predecessor/heap buffers, link-load accumulators,
   the dense per-commodity flow matrix and a path-incidence CSR for the
   all-or-nothing step — so the loop allocates (almost) nothing on the
   minor heap after warm-up.

   Bit-identicality contract: every arithmetic consumer in
   {!Frank_wolfe} replays the reference solver's float operations in the
   same order on these buffers, and {!dijkstra} reproduces the boxed
   [Paths.shortest_tree] exactly — both pop the same (dist, node)
   multiset in the same lexicographic order, relax out-links in array
   order, and update predecessors under the same strict [nd < dist]
   test, so the resulting trees are heap-implementation-independent.

   Concurrency: a {!Workspace.t} is a handle over per-domain arenas
   (keyed by [Domain.self ()]), so one workspace threads safely through
   [Pool.map] — across the intervals of a relaxation and across
   Random-Schedule attempt batches — with a single short-lived lock per
   {!acquire} and lock-free arena use afterwards (an arena is only ever
   touched by its owning domain). *)

module Ba = Bigarray
module Graph = Dcn_topology.Graph
module Trace = Dcn_engine.Trace

type fbuf = (float, Ba.float64_elt, Ba.c_layout) Ba.Array1.t
type ibuf = (int, Ba.int_elt, Ba.c_layout) Ba.Array1.t

let fbuf len : fbuf = Ba.Array1.create Ba.float64 Ba.c_layout len
let ibuf len : ibuf = Ba.Array1.create Ba.int Ba.c_layout len

type arena = {
  (* CSR topology mirror: out-links of node [v] occupy adjacency slots
     [row_ptr.(v) .. row_ptr.(v+1) - 1], in [Graph.out_links] order. *)
  mutable graph : Graph.t option;  (* the mirrored graph (physical eq) *)
  mutable n : int;  (* nodes of the mirrored graph *)
  mutable m : int;  (* links of the mirrored graph *)
  mutable row_ptr : ibuf;  (* n+1 *)
  mutable adj_link : ibuf;  (* m: link id per adjacency slot *)
  mutable adj_dst : ibuf;  (* m: head node per adjacency slot *)
  mutable lsrc : ibuf;  (* m: tail node per link id (path walk-back) *)
  (* Dijkstra scratch, per node. *)
  mutable dist : fbuf;
  mutable pred : ibuf;  (* incoming link id, -1 at roots *)
  mutable settled : ibuf;  (* 0/1 *)
  (* Lazy-deletion binary min-heap of (dist, node), lexicographic. *)
  mutable heap_key : fbuf;
  mutable heap_node : ibuf;
  mutable heap_len : int;
  (* Per-link accumulators. *)
  mutable loads : fbuf;
  mutable aon_loads : fbuf;
  mutable weights : fbuf;
  (* Per-commodity vectors. *)
  mutable com_src : ibuf;
  mutable com_dst : ibuf;
  mutable demand : fbuf;
  mutable order : ibuf;  (* evaluation order: src asc, index desc within *)
  mutable count : ibuf;  (* counting-sort scratch, indexed by node *)
  mutable nc : int;  (* commodities of the current problem *)
  (* Dense per-commodity flows, row-major [nc * m]. *)
  mutable flows : fbuf;
  (* All-or-nothing path incidence: commodity [i]'s links occupy slots
     [path_off.(i) .. path_off.(i) + path_len.(i) - 1] (rebuilt every
     iteration; offsets follow evaluation order, not index order). *)
  mutable path_off : ibuf;  (* nc *)
  mutable path_len : ibuf;  (* nc *)
  mutable path_links : ibuf;
  (* Loop-carried float accumulators; a float array cell is unboxed, a
     [float ref] is not, so the hot loops fold through these. *)
  acc : float array;
}

let create_arena () =
  {
    graph = None;
    n = 0;
    m = 0;
    row_ptr = ibuf 1;
    adj_link = ibuf 1;
    adj_dst = ibuf 1;
    lsrc = ibuf 1;
    dist = fbuf 1;
    pred = ibuf 1;
    settled = ibuf 1;
    heap_key = fbuf 1;
    heap_node = ibuf 1;
    heap_len = 0;
    loads = fbuf 1;
    aon_loads = fbuf 1;
    weights = fbuf 1;
    com_src = ibuf 1;
    com_dst = ibuf 1;
    demand = fbuf 1;
    order = ibuf 1;
    count = ibuf 1;
    nc = 0;
    flows = fbuf 1;
    path_off = ibuf 1;
    path_len = ibuf 1;
    path_links = ibuf 1;
    acc = Array.make 12 0.;
  }

module Workspace = struct
  type t = { lock : Mutex.t; mutable arenas : (int * arena) list }

  let create () = { lock = Mutex.create (); arenas = [] }

  (* Shared fallback used when a caller does not thread a workspace:
     arenas grow to the largest problem each domain has seen and are
     reused for the rest of the process. *)
  let default = create ()
end

(* Capacity growth is geometric so a serving session converges to zero
   growth events; [ws.grow] counts them, [ws.reuse] counts acquisitions
   served entirely from the existing arenas. *)
let ensure_f buf needed =
  let cap = Ba.Array1.dim !buf in
  if cap < needed then begin
    buf := fbuf (max needed (2 * cap));
    true
  end
  else false

let ensure_i buf needed =
  let cap = Ba.Array1.dim !buf in
  if cap < needed then begin
    buf := ibuf (max needed (2 * cap));
    true
  end
  else false

let mirror_graph a g =
  let n = Graph.num_nodes g in
  let m = Graph.num_links g in
  let slot = ref 0 in
  for v = 0 to n - 1 do
    Ba.Array1.unsafe_set a.row_ptr v !slot;
    Array.iter
      (fun l ->
        Ba.Array1.unsafe_set a.adj_link !slot l;
        Ba.Array1.unsafe_set a.adj_dst !slot (Graph.link_dst g l);
        Ba.Array1.unsafe_set a.lsrc l v;
        incr slot)
      (Graph.out_links g v)
  done;
  Ba.Array1.unsafe_set a.row_ptr n !slot;
  assert (!slot = m);
  a.graph <- Some g;
  a.n <- n;
  a.m <- m

let acquire ws ~graph ~nc =
  let id = (Domain.self () :> int) in
  let a =
    Mutex.lock ws.Workspace.lock;
    let a =
      match List.assq_opt id ws.Workspace.arenas with
      | Some a -> a
      | None ->
        let a = create_arena () in
        ws.Workspace.arenas <- (id, a) :: ws.Workspace.arenas;
        a
    in
    Mutex.unlock ws.Workspace.lock;
    a
  in
  let n = Graph.num_nodes graph in
  let m = Graph.num_links graph in
  let grew = ref false in
  let gf buf needed = if ensure_f buf needed then grew := true in
  let gi buf needed = if ensure_i buf needed then grew := true in
  let rp = ref a.row_ptr in gi rp (n + 1); a.row_ptr <- !rp;
  let al = ref a.adj_link in gi al (max 1 m); a.adj_link <- !al;
  let ad = ref a.adj_dst in gi ad (max 1 m); a.adj_dst <- !ad;
  let ls = ref a.lsrc in gi ls (max 1 m); a.lsrc <- !ls;
  let di = ref a.dist in gf di n; a.dist <- !di;
  let pr = ref a.pred in gi pr n; a.pred <- !pr;
  let se = ref a.settled in gi se n; a.settled <- !se;
  let hk = ref a.heap_key in gf hk (n + m + 1); a.heap_key <- !hk;
  let hn = ref a.heap_node in gi hn (n + m + 1); a.heap_node <- !hn;
  let lo = ref a.loads in gf lo (max 1 m); a.loads <- !lo;
  let ao = ref a.aon_loads in gf ao (max 1 m); a.aon_loads <- !ao;
  let we = ref a.weights in gf we (max 1 m); a.weights <- !we;
  let cs = ref a.com_src in gi cs (max 1 nc); a.com_src <- !cs;
  let cd = ref a.com_dst in gi cd (max 1 nc); a.com_dst <- !cd;
  let de = ref a.demand in gf de (max 1 nc); a.demand <- !de;
  let ord = ref a.order in gi ord (max 1 nc); a.order <- !ord;
  let cn = ref a.count in gi cn (n + 1); a.count <- !cn;
  let fl = ref a.flows in gf fl (max 1 (nc * m)); a.flows <- !fl;
  let po = ref a.path_off in gi po (max 1 nc); a.path_off <- !po;
  let pn = ref a.path_len in gi pn (max 1 nc); a.path_len <- !pn;
  (* Paths are short (the network diameter); start near 8 hops per
     commodity and let {!push_path_link} double on demand. *)
  let pl = ref a.path_links in gi pl (max 1 (8 * nc)); a.path_links <- !pl;
  let same_graph = match a.graph with Some g -> g == graph | None -> false in
  if not same_graph then mirror_graph a graph;
  a.nc <- nc;
  if Trace.on () then
    Trace.counter (if !grew || not same_graph then "ws.grow" else "ws.reuse") 1.;
  a

(* Binary-heap helpers.  Keys are read from the buffers (never passed as
   float arguments, which would box on every call). *)

let heap_swap a i j =
  let ki = Ba.Array1.unsafe_get a.heap_key i in
  let ni = Ba.Array1.unsafe_get a.heap_node i in
  Ba.Array1.unsafe_set a.heap_key i (Ba.Array1.unsafe_get a.heap_key j);
  Ba.Array1.unsafe_set a.heap_node i (Ba.Array1.unsafe_get a.heap_node j);
  Ba.Array1.unsafe_set a.heap_key j ki;
  Ba.Array1.unsafe_set a.heap_node j ni

let heap_less a i j =
  let ki = Ba.Array1.unsafe_get a.heap_key i in
  let kj = Ba.Array1.unsafe_get a.heap_key j in
  ki < kj
  || (ki = kj
     && Ba.Array1.unsafe_get a.heap_node i < Ba.Array1.unsafe_get a.heap_node j)

(* Push node [v] keyed by its current tentative distance (the snapshot
   the reference pushes as the tuple's first component). *)
let heap_push a v =
  let i = a.heap_len in
  Ba.Array1.unsafe_set a.heap_key i (Ba.Array1.unsafe_get a.dist v);
  Ba.Array1.unsafe_set a.heap_node i v;
  a.heap_len <- i + 1;
  let j = ref i in
  while !j > 0 && heap_less a !j ((!j - 1) / 2) do
    heap_swap a !j ((!j - 1) / 2);
    j := (!j - 1) / 2
  done

(* Pop the minimum node, or -1 on empty.  The popped key is not needed:
   on a node's first (settling) pop it equals [dist.(v)]. *)
let heap_pop a =
  if a.heap_len = 0 then -1
  else begin
    let v = Ba.Array1.unsafe_get a.heap_node 0 in
    let last = a.heap_len - 1 in
    heap_swap a 0 last;
    a.heap_len <- last;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let s = ref !i in
      if l < last && heap_less a l !s then s := l;
      if r < last && heap_less a r !s then s := r;
      if !s <> !i then begin
        heap_swap a !i !s;
        i := !s
      end
      else continue := false
    done;
    v
  end

(* Shortest-path tree from [src] into [dist]/[pred].

   [use_weights]: edge cost is [weights.(l) +. tie] (the FW marginal
   step); otherwise hop count 1.0 (the init/reachability step) — the
   same two weightings the reference feeds [Paths.shortest_tree].
   Replays the reference exactly: lazy deletion with a settled array,
   out-links relaxed in adjacency order, strict [nd < dist.(w)]. *)
let dijkstra a ~src ~use_weights ~tie =
  let n = a.n in
  for v = 0 to n - 1 do
    Ba.Array1.unsafe_set a.dist v infinity;
    Ba.Array1.unsafe_set a.pred v (-1);
    Ba.Array1.unsafe_set a.settled v 0
  done;
  a.heap_len <- 0;
  Ba.Array1.unsafe_set a.dist src 0.;
  heap_push a src;
  let v = ref (heap_pop a) in
  while !v >= 0 do
    if Ba.Array1.unsafe_get a.settled !v = 0 then begin
      Ba.Array1.unsafe_set a.settled !v 1;
      let d = Ba.Array1.unsafe_get a.dist !v in
      let lo = Ba.Array1.unsafe_get a.row_ptr !v in
      let hi = Ba.Array1.unsafe_get a.row_ptr (!v + 1) in
      for s = lo to hi - 1 do
        let w = Ba.Array1.unsafe_get a.adj_dst s in
        if Ba.Array1.unsafe_get a.settled w = 0 then begin
          let l = Ba.Array1.unsafe_get a.adj_link s in
          let c =
            if use_weights then Ba.Array1.unsafe_get a.weights l +. tie else 1.
          in
          let nd = d +. c in
          if nd < Ba.Array1.unsafe_get a.dist w then begin
            Ba.Array1.unsafe_set a.dist w nd;
            Ba.Array1.unsafe_set a.pred w l;
            heap_push a w
          end
        end
      done
    end;
    v := heap_pop a
  done

let reachable a ~dst = Ba.Array1.unsafe_get a.dist dst < infinity

(* Append a link to the path-incidence store at [slot], doubling the
   store if full (allocation happens only until the arena is warm). *)
let push_path_link a ~slot l =
  let cap = Ba.Array1.dim a.path_links in
  if slot >= cap then begin
    let bigger = ibuf (2 * cap) in
    Ba.Array1.blit a.path_links (Ba.Array1.sub bigger 0 cap);
    a.path_links <- bigger
  end;
  Ba.Array1.unsafe_set a.path_links slot l
