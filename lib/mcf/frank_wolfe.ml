module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type problem = {
  graph : Graph.t;
  commodities : Commodity.t array;
  cost : float -> float;
  cost_deriv : float -> float;
  capacity : float;
}

type config = {
  max_iters : int;
  gap_tol : float;
  penalty : float;
  line_search_iters : int;
}

let default_config =
  { max_iters = 200; gap_tol = 1e-4; penalty = 1e3; line_search_iters = 48 }

type solution = {
  flows : float array array;
  loads : float array;
  cost : float;
  gap : float;
  iterations : int;
  max_overload : float;
}

let golden = (sqrt 5. -. 1.) /. 2.

(* Minimise a convex (hence unimodal) function on [0, 1]. *)
let golden_section ~iters f =
  let a = ref 0. and b = ref 1. in
  let x1 = ref (1. -. golden) and x2 = ref golden in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  for _ = 1 to iters do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden *. (!b -. !a));
      f2 := f !x2
    end
  done;
  (!a +. !b) /. 2.

(* One record per Frank–Wolfe iteration: the duality gap, the objective
   it was measured at, and the accepted line-search step (0 on the
   terminating iteration).  One branch when no trace is installed. *)
let trace_iter iter gap objective step =
  if Trace.on () then begin
    Trace.event "fw.iter"
      ~fields:
        [
          ("iter", Json.Int iter);
          ("gap", Json.float gap);
          ("objective", Json.float objective);
          ("step", Json.float step);
        ];
    Trace.counter "fw.iters" 1.
  end

let solve ?(config = default_config) ?(warm_start = fun _ -> []) problem =
  let g = problem.graph in
  let m = Graph.num_links g in
  let commodities = problem.commodities in
  let nc = Array.length commodities in
  if nc = 0 then invalid_arg "Frank_wolfe.solve: no commodities";
  Trace.span "fw.solve"
    ~fields:[ ("commodities", Json.Int nc); ("links", Json.Int m) ]
  @@ fun () ->
  let pen x =
    if problem.capacity = infinity then 0.
    else
      let over = x -. problem.capacity in
      if over > 0. then config.penalty *. over *. over else 0.
  in
  let pen_deriv x =
    if problem.capacity = infinity then 0.
    else
      let over = x -. problem.capacity in
      if over > 0. then 2. *. config.penalty *. over else 0.
  in
  let pc x = problem.cost x +. pen x in
  let pc_deriv x = problem.cost_deriv x +. pen_deriv x in
  (* Commodities grouped by source so one Dijkstra serves them all. *)
  let by_src = Hashtbl.create 16 in
  Array.iter
    (fun (c : Commodity.t) ->
      let prev = try Hashtbl.find by_src c.src with Not_found -> [] in
      Hashtbl.replace by_src c.src (c :: prev))
    commodities;
  let sources = Hashtbl.fold (fun s _ acc -> s :: acc) by_src [] in
  let sources = List.sort compare sources in
  let flows = Array.make_matrix nc m 0. in
  let loads = Array.make m 0. in
  let add_path flows_i amount path =
    List.iter (fun l -> flows_i.(l) <- flows_i.(l) +. amount) path
  in
  (* Initial point: the caller's warm-start paths where given (rescaled
     to the demand, so conservation holds by construction), hop-count
     shortest paths otherwise.  Reachability is validated for every
     commodity either way — the all-or-nothing step needs it. *)
  let warm_used = ref 0 in
  List.iter
    (fun src ->
      let tree = Paths.shortest_tree g ~src in
      List.iter
        (fun (c : Commodity.t) ->
          match Paths.extract_path g tree ~dst:c.dst with
          | None ->
            invalid_arg
              (Printf.sprintf "Frank_wolfe.solve: node %d unreachable from %d" c.dst
                 c.src)
          | Some path -> (
            let warm = warm_start c.index in
            let total =
              List.fold_left
                (fun acc (wp : Decompose.weighted_path) -> acc +. wp.weight)
                0. warm
            in
            if total > 0. then begin
              incr warm_used;
              let scale = c.demand /. total in
              List.iter
                (fun (wp : Decompose.weighted_path) ->
                  add_path flows.(c.index) (wp.weight *. scale) wp.links)
                warm
            end
            else add_path flows.(c.index) c.demand path))
        (Hashtbl.find by_src src))
    sources;
  if !warm_used > 0 && Trace.on () then
    Trace.event "fw.warm_start"
      ~fields:[ ("commodities", Json.Int !warm_used) ];
  for e = 0 to m - 1 do
    loads.(e) <- 0.;
    for i = 0 to nc - 1 do
      loads.(e) <- loads.(e) +. flows.(i).(e)
    done
  done;
  let objective xs = Array.fold_left (fun acc x -> acc +. pc x) 0. xs in
  let aon_loads = Array.make m 0. in
  let aon_paths = Array.make nc [] in
  let weights = Array.make m 0. in
  let final_gap = ref infinity in
  let iterations = ref 0 in
  (try
     for iter = 1 to config.max_iters do
       (* Cooperative cancellation: the watchdog's budget is polled at
          iteration boundaries, so an expired run unwinds with
          [Deadline.Expired] instead of finishing the sweep. *)
       Dcn_engine.Deadline.check ();
       iterations := iter;
       (* Marginal costs at the current loads; a tiny hop bias breaks the
          ties that arise where the derivative vanishes at load 0. *)
       let max_w = ref 0. in
       for e = 0 to m - 1 do
         weights.(e) <- pc_deriv loads.(e);
         max_w := Float.max !max_w weights.(e)
       done;
       let tie = 1e-9 *. Float.max 1. !max_w in
       Array.fill aon_loads 0 m 0.;
       List.iter
         (fun src ->
           let tree = Paths.shortest_tree ~weight:(fun l -> weights.(l) +. tie) g ~src in
           List.iter
             (fun (c : Commodity.t) ->
               match Paths.extract_path g tree ~dst:c.dst with
               | None -> assert false (* reachability checked at init *)
               | Some path ->
                 aon_paths.(c.index) <- path;
                 List.iter
                   (fun l -> aon_loads.(l) <- aon_loads.(l) +. c.demand)
                   path)
             (Hashtbl.find by_src src))
         sources;
       (* Duality gap <grad, x - s>. *)
       let gap = ref 0. in
       for e = 0 to m - 1 do
         gap := !gap +. (weights.(e) *. (loads.(e) -. aon_loads.(e)))
       done;
       final_gap := Float.max 0. !gap;
       let obj_now = objective loads in
       if !final_gap <= config.gap_tol *. Float.max 1e-12 obj_now then begin
         trace_iter iter !final_gap obj_now 0.;
         raise Exit
       end;
       (* Line search over the segment towards the all-or-nothing point. *)
       let blend_obj theta =
         let acc = ref 0. in
         for e = 0 to m - 1 do
           acc := !acc +. pc (((1. -. theta) *. loads.(e)) +. (theta *. aon_loads.(e)))
         done;
         !acc
       in
       let theta = golden_section ~iters:config.line_search_iters blend_obj in
       let theta = if blend_obj theta < obj_now then theta else 0. in
       trace_iter iter !final_gap obj_now theta;
       if theta <= 1e-12 then raise Exit;
       for i = 0 to nc - 1 do
         let fi = flows.(i) in
         for e = 0 to m - 1 do
           fi.(e) <- fi.(e) *. (1. -. theta)
         done;
         add_path fi (theta *. commodities.(i).Commodity.demand) aon_paths.(i)
       done;
       for e = 0 to m - 1 do
         loads.(e) <- ((1. -. theta) *. loads.(e)) +. (theta *. aon_loads.(e))
       done
     done
   with Exit -> ());
  let cost = Array.fold_left (fun acc x -> acc +. problem.cost x) 0. loads in
  let max_overload =
    if problem.capacity = infinity then neg_infinity
    else Array.fold_left (fun acc x -> Float.max acc (x -. problem.capacity)) neg_infinity loads
  in
  if Trace.on () then
    Trace.event "fw.done"
      ~fields:
        [
          ("iterations", Json.Int !iterations);
          ("gap", Json.float !final_gap);
          ("cost", Json.float cost);
          ("max_overload", Json.float max_overload);
        ];
  { flows; loads; cost; gap = !final_gap; iterations = !iterations; max_overload }

let lower_bound_cost _problem solution = Float.max 0. (solution.cost -. solution.gap)
