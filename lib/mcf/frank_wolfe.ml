module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json
module Ba = Bigarray

type problem = {
  graph : Graph.t;
  commodities : Commodity.t array;
  cost : float -> float;
  cost_deriv : float -> float;
  capacity : float;
}

type engine = Kernel | Reference

type config = {
  max_iters : int;
  gap_tol : float;
  penalty : float;
  line_search_iters : int;
  engine : engine;
}

let default_config =
  {
    max_iters = 200;
    gap_tol = 1e-4;
    penalty = 1e3;
    line_search_iters = 48;
    engine = Kernel;
  }

type piecewise = {
  threshold : float;
  slope : float;
  sigma : float;
  mu : float;
  alpha : float;
}

type solution = {
  flows : float array array;
  loads : float array;
  cost : float;
  gap : float;
  iterations : int;
  max_overload : float;
}

let golden = (sqrt 5. -. 1.) /. 2.

(* Minimise a convex (hence unimodal) function on [0, 1]. *)
let golden_section ~iters f =
  let a = ref 0. and b = ref 1. in
  let x1 = ref (1. -. golden) and x2 = ref golden in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  for _ = 1 to iters do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden *. (!b -. !a));
      f2 := f !x2
    end
  done;
  (!a +. !b) /. 2.

(* Per-engine iteration counters for live telemetry; one-branch no-ops
   while the registry is disabled, and incremented unconditionally (the
   trace event below stays gated on an installed trace). *)
let obs_iters_reference =
  Dcn_obs.Registry.counter ~help:"Frank-Wolfe iterations"
    ~labels:[ ("engine", "reference") ] "fw.iterations"

let obs_iters_kernel =
  Dcn_obs.Registry.counter ~help:"Frank-Wolfe iterations"
    ~labels:[ ("engine", "kernel") ] "fw.iterations"

(* One record per Frank–Wolfe iteration: the duality gap, the objective
   it was measured at, and the accepted line-search step (0 on the
   terminating iteration).  One branch when no trace is installed. *)
let trace_iter obs iter gap objective step =
  Dcn_obs.Registry.incr obs;
  if Trace.on () then begin
    Trace.event "fw.iter"
      ~fields:
        [
          ("iter", Json.Int iter);
          ("gap", Json.float gap);
          ("objective", Json.float objective);
          ("step", Json.float step);
        ];
    Trace.counter "fw.iters" 1.
  end

(* ------------------------------------------------------------------ *)
(* Reference path: boxed graph walks and per-call allocations.  Kept
   verbatim as the semantic ground truth; the kernel path below replays
   exactly these float operations, and Dcn_check.Oracle plus the
   @check-kernel alias assert bit-identical agreement. *)

let reference_impl ~config ~warm_start problem =
  let g = problem.graph in
  let m = Graph.num_links g in
  let commodities = problem.commodities in
  let nc = Array.length commodities in
  Trace.span "fw.solve"
    ~fields:[ ("commodities", Json.Int nc); ("links", Json.Int m) ]
  @@ fun () ->
  let pen x =
    if problem.capacity = infinity then 0.
    else
      let over = x -. problem.capacity in
      if over > 0. then config.penalty *. over *. over else 0.
  in
  let pen_deriv x =
    if problem.capacity = infinity then 0.
    else
      let over = x -. problem.capacity in
      if over > 0. then 2. *. config.penalty *. over else 0.
  in
  let pc x = problem.cost x +. pen x in
  let pc_deriv x = problem.cost_deriv x +. pen_deriv x in
  (* Commodities grouped by source so one Dijkstra serves them all. *)
  let by_src = Hashtbl.create 16 in
  Array.iter
    (fun (c : Commodity.t) ->
      let prev = try Hashtbl.find by_src c.src with Not_found -> [] in
      Hashtbl.replace by_src c.src (c :: prev))
    commodities;
  let sources = Hashtbl.fold (fun s _ acc -> s :: acc) by_src [] in
  let sources = List.sort compare sources in
  let flows = Array.make_matrix nc m 0. in
  let loads = Array.make m 0. in
  let add_path flows_i amount path =
    List.iter (fun l -> flows_i.(l) <- flows_i.(l) +. amount) path
  in
  (* Initial point: the caller's warm-start paths where given (rescaled
     to the demand, so conservation holds by construction), hop-count
     shortest paths otherwise.  Reachability is validated for every
     commodity either way — the all-or-nothing step needs it. *)
  let warm_used = ref 0 in
  List.iter
    (fun src ->
      let tree = Paths.shortest_tree g ~src in
      List.iter
        (fun (c : Commodity.t) ->
          match Paths.extract_path g tree ~dst:c.dst with
          | None ->
            invalid_arg
              (Printf.sprintf "Frank_wolfe.solve: node %d unreachable from %d" c.dst
                 c.src)
          | Some path -> (
            let warm = warm_start c.index in
            let total =
              List.fold_left
                (fun acc (wp : Decompose.weighted_path) -> acc +. wp.weight)
                0. warm
            in
            if total > 0. then begin
              incr warm_used;
              let scale = c.demand /. total in
              List.iter
                (fun (wp : Decompose.weighted_path) ->
                  add_path flows.(c.index) (wp.weight *. scale) wp.links)
                warm
            end
            else add_path flows.(c.index) c.demand path))
        (Hashtbl.find by_src src))
    sources;
  if !warm_used > 0 && Trace.on () then
    Trace.event "fw.warm_start"
      ~fields:[ ("commodities", Json.Int !warm_used) ];
  for e = 0 to m - 1 do
    loads.(e) <- 0.;
    for i = 0 to nc - 1 do
      loads.(e) <- loads.(e) +. flows.(i).(e)
    done
  done;
  let objective xs = Array.fold_left (fun acc x -> acc +. pc x) 0. xs in
  let aon_loads = Array.make m 0. in
  let aon_paths = Array.make nc [] in
  let weights = Array.make m 0. in
  let final_gap = ref infinity in
  let iterations = ref 0 in
  (try
     for iter = 1 to config.max_iters do
       (* Cooperative cancellation: the watchdog's budget is polled at
          iteration boundaries, so an expired run unwinds with
          [Deadline.Expired] instead of finishing the sweep. *)
       Dcn_engine.Deadline.check ();
       iterations := iter;
       (* Marginal costs at the current loads; a tiny hop bias breaks the
          ties that arise where the derivative vanishes at load 0. *)
       let max_w = ref 0. in
       for e = 0 to m - 1 do
         weights.(e) <- pc_deriv loads.(e);
         max_w := Float.max !max_w weights.(e)
       done;
       let tie = 1e-9 *. Float.max 1. !max_w in
       Array.fill aon_loads 0 m 0.;
       List.iter
         (fun src ->
           let tree = Paths.shortest_tree ~weight:(fun l -> weights.(l) +. tie) g ~src in
           List.iter
             (fun (c : Commodity.t) ->
               match Paths.extract_path g tree ~dst:c.dst with
               | None -> assert false (* reachability checked at init *)
               | Some path ->
                 aon_paths.(c.index) <- path;
                 List.iter
                   (fun l -> aon_loads.(l) <- aon_loads.(l) +. c.demand)
                   path)
             (Hashtbl.find by_src src))
         sources;
       (* Duality gap <grad, x - s>. *)
       let gap = ref 0. in
       for e = 0 to m - 1 do
         gap := !gap +. (weights.(e) *. (loads.(e) -. aon_loads.(e)))
       done;
       final_gap := Float.max 0. !gap;
       let obj_now = objective loads in
       if !final_gap <= config.gap_tol *. Float.max 1e-12 obj_now then begin
         trace_iter obs_iters_reference iter !final_gap obj_now 0.;
         raise Exit
       end;
       (* Line search over the segment towards the all-or-nothing point. *)
       let blend_obj theta =
         let acc = ref 0. in
         for e = 0 to m - 1 do
           acc := !acc +. pc (((1. -. theta) *. loads.(e)) +. (theta *. aon_loads.(e)))
         done;
         !acc
       in
       let theta = golden_section ~iters:config.line_search_iters blend_obj in
       let theta = if blend_obj theta < obj_now then theta else 0. in
       trace_iter obs_iters_reference iter !final_gap obj_now theta;
       if theta <= 1e-12 then raise Exit;
       for i = 0 to nc - 1 do
         let fi = flows.(i) in
         for e = 0 to m - 1 do
           fi.(e) <- fi.(e) *. (1. -. theta)
         done;
         add_path fi (theta *. commodities.(i).Commodity.demand) aon_paths.(i)
       done;
       for e = 0 to m - 1 do
         loads.(e) <- ((1. -. theta) *. loads.(e)) +. (theta *. aon_loads.(e))
       done
     done
   with Exit -> ());
  let cost = Array.fold_left (fun acc x -> acc +. problem.cost x) 0. loads in
  let max_overload =
    if problem.capacity = infinity then neg_infinity
    else Array.fold_left (fun acc x -> Float.max acc (x -. problem.capacity)) neg_infinity loads
  in
  if Trace.on () then
    Trace.event "fw.done"
      ~fields:
        [
          ("iterations", Json.Int !iterations);
          ("gap", Json.float !final_gap);
          ("cost", Json.float cost);
          ("max_overload", Json.float max_overload);
        ];
  { flows; loads; cost; gap = !final_gap; iterations = !iterations; max_overload }

(* ------------------------------------------------------------------ *)
(* Kernel path: the same float operations in the same order, on the
   flat arenas of {!Kernel}, with the piecewise envelope + capacity
   penalty arithmetic inlined so the loop body neither calls closures
   nor boxes floats.  Loop-carried float state folds through the
   arena's [acc] cells ([float array] stores are unboxed; [float ref]
   assignments are not).  See DESIGN.md for the bit-identicality
   argument. *)

(* How often the flat loop polls the ambient deadline: iterations
   1, 1+N, 1+2N, ... so a zero budget still expires before any work
   and a watchdog preempts within N iterations. *)
let deadline_poll_period = 4

let kernel_impl ~config ~warm_start ~workspace ~(pw : piecewise) problem =
  let g = problem.graph in
  let m = Graph.num_links g in
  let n = Graph.num_nodes g in
  let commodities = problem.commodities in
  let nc = Array.length commodities in
  Trace.span "fw.solve"
    ~fields:[ ("commodities", Json.Int nc); ("links", Json.Int m) ]
  @@ fun () ->
  Trace.span "fw.kernel"
    ~fields:[ ("commodities", Json.Int nc); ("links", Json.Int m) ]
  @@ fun () ->
  let a = Kernel.acquire workspace ~graph:g ~nc in
  let acc = a.Kernel.acc in
  (* Inlined cost arithmetic: constants hoisted, expression trees
     identical to Model.envelope(_deriv) and the reference's penalty. *)
  let cap = problem.capacity in
  let r = pw.threshold in
  let slope = pw.slope in
  let sigma = pw.sigma and mu = pw.mu and alpha = pw.alpha in
  let am = alpha *. mu in
  let alpha1 = alpha -. 1. in
  let penalty = config.penalty in
  let pen2 = 2. *. penalty in
  (* Commodity vectors. *)
  let com_src = a.Kernel.com_src
  and com_dst = a.Kernel.com_dst
  and demand = a.Kernel.demand in
  for i = 0 to nc - 1 do
    let c = commodities.(i) in
    if c.Commodity.index <> i then
      invalid_arg "Frank_wolfe.solve: commodity indices must be dense";
    Ba.Array1.unsafe_set com_src i c.Commodity.src;
    Ba.Array1.unsafe_set com_dst i c.Commodity.dst;
    Ba.Array1.unsafe_set demand i c.Commodity.demand
  done;
  (* Evaluation order: sources ascending, commodity index descending
     within a source — the reference's Hashtbl-of-prepended-lists
     traversal — via a counting sort filled back-to-front. *)
  let order = a.Kernel.order and count = a.Kernel.count in
  for v = 0 to n do
    Ba.Array1.unsafe_set count v 0
  done;
  for i = 0 to nc - 1 do
    let s = Ba.Array1.unsafe_get com_src i in
    Ba.Array1.unsafe_set count s (Ba.Array1.unsafe_get count s + 1)
  done;
  let run = ref 0 in
  for v = 0 to n - 1 do
    let c = Ba.Array1.unsafe_get count v in
    Ba.Array1.unsafe_set count v !run;
    run := !run + c
  done;
  for i = nc - 1 downto 0 do
    let s = Ba.Array1.unsafe_get com_src i in
    let at = Ba.Array1.unsafe_get count s in
    Ba.Array1.unsafe_set order at i;
    Ba.Array1.unsafe_set count s (at + 1)
  done;
  let flows = a.Kernel.flows
  and loads = a.Kernel.loads
  and aon_loads = a.Kernel.aon_loads
  and weights = a.Kernel.weights
  and path_off = a.Kernel.path_off
  and path_len = a.Kernel.path_len in
  for idx = 0 to (nc * m) - 1 do
    Ba.Array1.unsafe_set flows idx 0.
  done;
  (* Initial point (see the reference): warm-start paths rescaled to the
     demand where given, hop-count shortest paths otherwise, with
     reachability validated per commodity. *)
  let warm_used = ref 0 in
  let s = ref 0 in
  while !s < nc do
    let src = Ba.Array1.unsafe_get com_src (Ba.Array1.unsafe_get order !s) in
    Kernel.dijkstra a ~src ~use_weights:false ~tie:0.;
    while
      !s < nc
      && Ba.Array1.unsafe_get com_src (Ba.Array1.unsafe_get order !s) = src
    do
      let i = Ba.Array1.unsafe_get order !s in
      let dst = Ba.Array1.unsafe_get com_dst i in
      if not (Kernel.reachable a ~dst) then
        invalid_arg
          (Printf.sprintf "Frank_wolfe.solve: node %d unreachable from %d" dst src);
      let warm = warm_start i in
      let total =
        List.fold_left
          (fun acc (wp : Decompose.weighted_path) -> acc +. wp.weight)
          0. warm
      in
      let base = i * m in
      if total > 0. then begin
        incr warm_used;
        let scale = Ba.Array1.unsafe_get demand i /. total in
        List.iter
          (fun (wp : Decompose.weighted_path) ->
            let amount = wp.Decompose.weight *. scale in
            List.iter
              (fun l ->
                Ba.Array1.unsafe_set flows (base + l)
                  (Ba.Array1.unsafe_get flows (base + l) +. amount))
              wp.Decompose.links)
          warm
      end
      else begin
        let d = Ba.Array1.unsafe_get demand i in
        let v = ref dst in
        while Ba.Array1.unsafe_get a.Kernel.pred !v >= 0 do
          let l = Ba.Array1.unsafe_get a.Kernel.pred !v in
          Ba.Array1.unsafe_set flows (base + l)
            (Ba.Array1.unsafe_get flows (base + l) +. d);
          v := Ba.Array1.unsafe_get a.Kernel.lsrc l
        done
      end;
      incr s
    done
  done;
  if !warm_used > 0 && Trace.on () then
    Trace.event "fw.warm_start"
      ~fields:[ ("commodities", Json.Int !warm_used) ];
  (* Initial loads; per cell the summands arrive in ascending commodity
     order, as in the reference (the loop nest is swapped for cache
     locality, which permutes only writes to distinct cells). *)
  for e = 0 to m - 1 do
    Ba.Array1.unsafe_set loads e 0.
  done;
  for i = 0 to nc - 1 do
    let base = i * m in
    for e = 0 to m - 1 do
      Ba.Array1.unsafe_set loads e
        (Ba.Array1.unsafe_get loads e +. Ba.Array1.unsafe_get flows (base + e))
    done
  done;
  (* acc cells: 0 scratch (max_w / gap / objective), 1-6 golden-section
     state (a, b, x1, x2, f1, f2), 7 blend argument, 8 blend result. *)
  let final_gap = ref infinity in
  let iterations = ref 0 in
  let minor0 = Gc.minor_words () in
  (* pc(x) at the blend point acc.(7), accumulated into acc.(8); the
     unit argument keeps every float in arrays or registers. *)
  let blend_eval () =
    let theta = acc.(7) in
    let one_t = 1. -. theta in
    acc.(8) <- 0.;
    for e = 0 to m - 1 do
      let x =
        (one_t *. Ba.Array1.unsafe_get loads e)
        +. (theta *. Ba.Array1.unsafe_get aon_loads e)
      in
      let c =
        if x = 0. then 0.
        else if r = 0. then mu *. (x ** alpha)
        else if x <= r then x *. slope
        else sigma +. (mu *. (x ** alpha))
      in
      let p =
        if cap = infinity then 0.
        else
          let over = x -. cap in
          if over > 0. then penalty *. over *. over else 0.
      in
      acc.(8) <- acc.(8) +. (c +. p)
    done
  in
  (try
     for iter = 1 to config.max_iters do
       (* Cooperative cancellation, polled every few iterations (the
          flat loop is fast; the first iteration is always checked so a
          zero budget expires before any work). *)
       if iter mod deadline_poll_period = 1 then Dcn_engine.Deadline.check ();
       iterations := iter;
       (* Marginal costs at the current loads. *)
       acc.(0) <- 0.;
       for e = 0 to m - 1 do
         let x = Ba.Array1.unsafe_get loads e in
         let d =
           if r = 0. then am *. (x ** alpha1)
           else if x <= r then slope
           else am *. (x ** alpha1)
         in
         let p =
           if cap = infinity then 0.
           else
             let over = x -. cap in
             if over > 0. then pen2 *. over else 0.
         in
         let w = d +. p in
         Ba.Array1.unsafe_set weights e w;
         if w > acc.(0) then acc.(0) <- w
       done;
       let tie = 1e-9 *. Float.max 1. acc.(0) in
       for e = 0 to m - 1 do
         Ba.Array1.unsafe_set aon_loads e 0.
       done;
       (* All-or-nothing step: one Dijkstra per source, paths recorded
          in the incidence store and accumulated in evaluation order. *)
       let slot = ref 0 in
       let s = ref 0 in
       while !s < nc do
         let src =
           Ba.Array1.unsafe_get com_src (Ba.Array1.unsafe_get order !s)
         in
         Kernel.dijkstra a ~src ~use_weights:true ~tie;
         while
           !s < nc
           && Ba.Array1.unsafe_get com_src (Ba.Array1.unsafe_get order !s) = src
         do
           let i = Ba.Array1.unsafe_get order !s in
           let d = Ba.Array1.unsafe_get demand i in
           Ba.Array1.unsafe_set path_off i !slot;
           let v = ref (Ba.Array1.unsafe_get com_dst i) in
           while Ba.Array1.unsafe_get a.Kernel.pred !v >= 0 do
             let l = Ba.Array1.unsafe_get a.Kernel.pred !v in
             Kernel.push_path_link a ~slot:!slot l;
             incr slot;
             Ba.Array1.unsafe_set aon_loads l
               (Ba.Array1.unsafe_get aon_loads l +. d);
             v := Ba.Array1.unsafe_get a.Kernel.lsrc l
           done;
           Ba.Array1.unsafe_set path_len i
             (!slot - Ba.Array1.unsafe_get path_off i);
           incr s
         done
       done;
       (* Duality gap <grad, x - s>. *)
       acc.(0) <- 0.;
       for e = 0 to m - 1 do
         acc.(0) <-
           acc.(0)
           +. Ba.Array1.unsafe_get weights e
              *. (Ba.Array1.unsafe_get loads e -. Ba.Array1.unsafe_get aon_loads e)
       done;
       final_gap := Float.max 0. acc.(0);
       (* Objective at the current loads. *)
       acc.(0) <- 0.;
       for e = 0 to m - 1 do
         let x = Ba.Array1.unsafe_get loads e in
         let c =
           if x = 0. then 0.
           else if r = 0. then mu *. (x ** alpha)
           else if x <= r then x *. slope
           else sigma +. (mu *. (x ** alpha))
         in
         let p =
           if cap = infinity then 0.
           else
             let over = x -. cap in
             if over > 0. then penalty *. over *. over else 0.
         in
         acc.(0) <- acc.(0) +. (c +. p)
       done;
       let obj_now = acc.(0) in
       if !final_gap <= config.gap_tol *. Float.max 1e-12 obj_now then begin
         trace_iter obs_iters_kernel iter !final_gap obj_now 0.;
         raise Exit
       end;
       (* Golden-section line search towards the all-or-nothing point;
          same update sequence as [golden_section], state in acc. *)
       acc.(1) <- 0.;
       acc.(2) <- 1.;
       acc.(3) <- 1. -. golden;
       acc.(4) <- golden;
       acc.(7) <- acc.(3);
       blend_eval ();
       acc.(5) <- acc.(8);
       acc.(7) <- acc.(4);
       blend_eval ();
       acc.(6) <- acc.(8);
       for _ = 1 to config.line_search_iters do
         if acc.(5) < acc.(6) then begin
           acc.(2) <- acc.(4);
           acc.(4) <- acc.(3);
           acc.(6) <- acc.(5);
           acc.(3) <- acc.(2) -. (golden *. (acc.(2) -. acc.(1)));
           acc.(7) <- acc.(3);
           blend_eval ();
           acc.(5) <- acc.(8)
         end
         else begin
           acc.(1) <- acc.(3);
           acc.(3) <- acc.(4);
           acc.(5) <- acc.(6);
           acc.(4) <- acc.(1) +. (golden *. (acc.(2) -. acc.(1)));
           acc.(7) <- acc.(4);
           blend_eval ();
           acc.(6) <- acc.(8)
         end
       done;
       let theta0 = (acc.(1) +. acc.(2)) /. 2. in
       acc.(7) <- theta0;
       blend_eval ();
       let theta = if acc.(8) < obj_now then theta0 else 0. in
       trace_iter obs_iters_kernel iter !final_gap obj_now theta;
       if theta <= 1e-12 then raise Exit;
       (* Convex blend of the per-commodity flows and the loads. *)
       for i = 0 to nc - 1 do
         let base = i * m in
         for e = 0 to m - 1 do
           Ba.Array1.unsafe_set flows (base + e)
             (Ba.Array1.unsafe_get flows (base + e) *. (1. -. theta))
         done;
         let amount = theta *. Ba.Array1.unsafe_get demand i in
         let off = Ba.Array1.unsafe_get path_off i in
         for idx = off to off + Ba.Array1.unsafe_get path_len i - 1 do
           let l = Ba.Array1.unsafe_get a.Kernel.path_links idx in
           Ba.Array1.unsafe_set flows (base + l)
             (Ba.Array1.unsafe_get flows (base + l) +. amount)
         done
       done;
       for e = 0 to m - 1 do
         Ba.Array1.unsafe_set loads e
           (((1. -. theta) *. Ba.Array1.unsafe_get loads e)
           +. (theta *. Ba.Array1.unsafe_get aon_loads e))
       done
     done
   with Exit -> ());
  if Trace.on () && !iterations > 0 then
    Trace.counter "fw.kernel_minor_words"
      ((Gc.minor_words () -. minor0) /. float_of_int !iterations);
  (* Copy out in the reference's shapes; the final cost goes through
     the caller's closure, like the reference. *)
  let flows_out =
    Array.init nc (fun i ->
        let base = i * m in
        Array.init m (fun e -> Ba.Array1.unsafe_get flows (base + e)))
  in
  let loads_out = Array.init m (fun e -> Ba.Array1.unsafe_get loads e) in
  let cost = Array.fold_left (fun acc x -> acc +. problem.cost x) 0. loads_out in
  let max_overload =
    if problem.capacity = infinity then neg_infinity
    else
      Array.fold_left
        (fun acc x -> Float.max acc (x -. problem.capacity))
        neg_infinity loads_out
  in
  if Trace.on () then
    Trace.event "fw.done"
      ~fields:
        [
          ("iterations", Json.Int !iterations);
          ("gap", Json.float !final_gap);
          ("cost", Json.float cost);
          ("max_overload", Json.float max_overload);
        ];
  {
    flows = flows_out;
    loads = loads_out;
    cost;
    gap = !final_gap;
    iterations = !iterations;
    max_overload;
  }

let solve_reference ?(config = default_config) ?(warm_start = fun _ -> []) problem
    =
  let nc = Array.length problem.commodities in
  if nc = 0 then invalid_arg "Frank_wolfe.solve: no commodities";
  reference_impl ~config ~warm_start problem

let solve ?(config = default_config) ?(warm_start = fun _ -> []) ?workspace
    ?piecewise problem =
  let nc = Array.length problem.commodities in
  if nc = 0 then invalid_arg "Frank_wolfe.solve: no commodities";
  match (config.engine, piecewise) with
  | Kernel, Some pw ->
    let workspace =
      match workspace with Some w -> w | None -> Kernel.Workspace.default
    in
    kernel_impl ~config ~warm_start ~workspace ~pw problem
  | _ -> reference_impl ~config ~warm_start problem

let lower_bound_cost _problem solution = Float.max 0. (solution.cost -. solution.gap)
