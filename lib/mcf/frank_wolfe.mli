(** Convex-cost fractional multicommodity flow by Frank–Wolfe.

    Minimise [sum over links e of cost(x_e)] where
    [x_e = sum over commodities i of y_(i,e)] and each commodity routes
    its full demand fractionally from its source to its destination.
    The paper assumes an off-the-shelf convex-programming oracle for
    this (the F-MCF subproblem of Algorithm 2); OCaml has none, so this
    module implements the classic flow-deviation method: linearise the
    cost at the current loads, send each commodity along a marginal-cost
    shortest path (the all-or-nothing step), and take the convex
    combination minimising true cost (golden-section line search).

    Convergence is certified by the Frank–Wolfe duality gap
    [<grad cost(x), x - s>], an upper bound on the distance to the
    optimum of the convex objective; the solver stops when the gap falls
    below [gap_tol] relative to the current cost.

    A finite per-link [capacity] is handled by a smooth quadratic
    penalty added to the objective (loads may exceed it slightly; the
    returned [max_overload] reports by how much). *)

type problem = {
  graph : Dcn_topology.Graph.t;
  commodities : Commodity.t array;
  cost : float -> float;  (** per-link cost of a load; convex, cost 0 = 0 *)
  cost_deriv : float -> float;  (** its derivative (right derivative at kinks) *)
  capacity : float;  (** per-link load bound; [infinity] to disable *)
}

type engine =
  | Kernel
      (** Flat-[Bigarray] kernels ({!Kernel}): zero-allocation iteration
          loop, arena-reused workspaces.  Requires a [piecewise] cost
          spec; falls back to [Reference] without one. *)
  | Reference
      (** The boxed solver, kept as semantic ground truth: the kernel
          replays exactly its float operations, so both engines agree
          bit-for-bit (asserted by [Dcn_check.Oracle] and the
          [@check-kernel] alias). *)

type config = {
  max_iters : int;  (** default 200 *)
  gap_tol : float;  (** relative duality-gap target, default 1e-4 *)
  penalty : float;  (** capacity-penalty coefficient, default 1e3 *)
  line_search_iters : int;  (** golden-section refinements, default 48 *)
  engine : engine;  (** default [Kernel] *)
}

val default_config : config

type piecewise = {
  threshold : float;  (** [r_hat]: the envelope's linear/curved kink *)
  slope : float;  (** envelope slope below the threshold *)
  sigma : float;
  mu : float;
  alpha : float;
}
(** The power model's lower convex envelope in closed form, so the
    kernel engine can inline the cost arithmetic instead of calling the
    [cost]/[cost_deriv] closures (a closure call boxes its float
    argument and result — death by allocation in the hot loop).  Must
    describe the same function as the problem's closures; [Relaxation]
    builds it from [Dcn_power.Model]. *)

val deadline_poll_period : int
(** The kernel engine polls [Dcn_engine.Deadline] on iterations
    [1, 1 + p, 1 + 2p, ...]; the reference engine polls every
    iteration. *)

type solution = {
  flows : float array array;  (** [flows.(i).(e)]: commodity i's flow on link e *)
  loads : float array;  (** per-link total load *)
  cost : float;  (** [sum cost(load)], penalty excluded *)
  gap : float;  (** final absolute duality gap of the penalised objective *)
  iterations : int;
  max_overload : float;  (** [max over links of (load - capacity)], <= 0 if respected *)
}

val solve :
  ?config:config ->
  ?warm_start:(int -> Decompose.weighted_path list) ->
  ?workspace:Kernel.Workspace.t ->
  ?piecewise:piecewise ->
  problem ->
  solution
(** [warm_start i] supplies an initial fractional routing for commodity
    [i] as weighted paths (e.g. the decomposition of a previous solve of
    a nearby problem); weights are rescaled so they sum to the
    commodity's demand, which keeps flow conservation by construction.
    An empty list (the default) falls back to the cold start: the
    hop-count shortest path.  Warm starts change only the starting
    point, never the optimum the method converges to — they buy
    iterations, not correctness.

    With [engine = Kernel] and a [piecewise] spec, the solve runs on the
    flat kernels using [workspace]'s arenas (the process-wide
    {!Kernel.Workspace.default} if none is threaded); commodity [index]
    fields must then be dense in [0, n).  Otherwise the reference
    implementation runs.  Both produce bit-identical solutions.

    @raise Invalid_argument if some commodity's destination is
    unreachable from its source, or the commodity array is empty. *)

val solve_reference :
  ?config:config ->
  ?warm_start:(int -> Decompose.weighted_path list) ->
  problem ->
  solution
(** The boxed reference engine, regardless of [config.engine].  The
    differential harnesses compare this against {!solve}. *)

val lower_bound_cost : problem -> solution -> float
(** A certified lower bound on the optimal objective from Frank–Wolfe
    duality: [cost(x) - gap_absolute].  Clamped at 0. *)
