(** Flat numeric kernels for the Frank–Wolfe hot path.

    CSR-style [Bigarray] mirrors of the topology plus preallocated
    arenas — Dijkstra scratch, link-load accumulators, the dense
    per-commodity flow matrix and the all-or-nothing path-incidence CSR
    — so the FW iteration in {!Frank_wolfe} allocates (almost) nothing
    on the minor heap after warm-up.  The arena record is transparent:
    {!Frank_wolfe} is the intended consumer and indexes the buffers
    directly; everyone else should go through {!Frank_wolfe.solve}.

    Determinism: {!dijkstra} reproduces [Paths.shortest_tree] exactly
    (same lexicographic [(dist, node)] pop order, same adjacency-order
    relaxation, same strict improvement test), so kernel and reference
    solvers agree bit-for-bit — {!Dcn_check.Oracle} asserts this
    differentially. *)

type fbuf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ibuf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type arena = {
  mutable graph : Dcn_topology.Graph.t option;
  mutable n : int;
  mutable m : int;
  mutable row_ptr : ibuf;  (** CSR: node [v]'s slots are [row_ptr.(v) ..
                               row_ptr.(v+1) - 1] *)
  mutable adj_link : ibuf;  (** link id per adjacency slot *)
  mutable adj_dst : ibuf;  (** head node per adjacency slot *)
  mutable lsrc : ibuf;  (** tail node per link id *)
  mutable dist : fbuf;
  mutable pred : ibuf;  (** incoming link id, [-1] at roots *)
  mutable settled : ibuf;
  mutable heap_key : fbuf;
  mutable heap_node : ibuf;
  mutable heap_len : int;
  mutable loads : fbuf;
  mutable aon_loads : fbuf;
  mutable weights : fbuf;
  mutable com_src : ibuf;
  mutable com_dst : ibuf;
  mutable demand : fbuf;
  mutable order : ibuf;  (** commodity evaluation order: sources
                             ascending, index descending within one
                             source (the reference's traversal) *)
  mutable count : ibuf;  (** counting-sort scratch *)
  mutable nc : int;
  mutable flows : fbuf;  (** row-major [nc * m] *)
  mutable path_off : ibuf;  (** path-incidence offsets, per commodity *)
  mutable path_len : ibuf;  (** path-incidence lengths, per commodity *)
  mutable path_links : ibuf;
  acc : float array;  (** unboxed loop-carried float accumulators *)
}

module Workspace : sig
  type t
  (** A handle over per-domain arenas.  One workspace may be threaded
      through [Pool.map]: each domain lazily gets its own arena, so use
      after {!acquire} is lock-free and race-free. *)

  val create : unit -> t

  val default : t
  (** Process-wide fallback used when the caller threads no workspace. *)
end

val acquire : Workspace.t -> graph:Dcn_topology.Graph.t -> nc:int -> arena
(** The calling domain's arena, grown (geometrically) to fit [graph]
    and [nc] commodities, with the CSR mirror rebuilt if [graph] is not
    physically the mirrored one.  Emits a [ws.reuse] trace counter when
    served entirely from existing buffers, [ws.grow] otherwise. *)

val dijkstra : arena -> src:int -> use_weights:bool -> tie:float -> unit
(** Shortest-path tree from [src] into [dist]/[pred].  Edge cost is
    [weights.(l) +. tie] when [use_weights], else hop count [1.]. *)

val reachable : arena -> dst:int -> bool
(** Whether the last {!dijkstra} reached [dst]. *)

val push_path_link : arena -> slot:int -> int -> unit
(** Write a link into path-incidence slot [slot], doubling the store if
    full (allocation-free once the arena is warm). *)
