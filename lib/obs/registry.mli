(** Process-global metrics registry: counters, gauges and mergeable
    histograms with lock-free hot-path updates.

    The live-telemetry core of [Dcn_obs].  Metrics are {e registered}
    once (any time, any domain — registration is idempotent on
    [(name, labels)]) and then {e updated} through integer handles.
    Updates write into a per-domain shard ([Domain.DLS] state, the same
    discipline as [Trace]'s span stacks), so the hot path takes no lock
    and shares no cache line between domains; {!Snapshot.scrape} merges
    the shards on demand.

    {b Determinism.}  A scrape is a pure merge of per-domain shards:
    counter totals are sums of per-shard totals and histogram buckets
    are integer-count unions ([Profile.Hist.merge] is exactly
    associative and commutative).  Integer-valued counter totals and
    every histogram bucket count are therefore bit-identical at every
    [--jobs] level whenever the instrumented work itself is
    deterministic (which the engine guarantees); only genuinely
    nondeterministic {e values} — wall-clock seconds, GC words — vary.

    {b Cost discipline.}  While the registry is disabled (the default),
    every update helper returns after a single [Atomic.get] branch and
    allocates nothing — the same zero-cost contract [Trace] meets.
    While enabled, a counter increment is two array writes on
    domain-local state. *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string
(** ["counter"], ["gauge"] or ["histogram"]. *)

val kind_of_string : string -> kind option

(** {1 Registration} *)

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] registers (or looks up) a monotonically accumulated
    metric.  [labels] are sorted; the same [(name, labels)] pair always
    yields the same handle.
    @raise Invalid_argument on an empty name or if [(name, labels)] was
    previously registered with a different kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
(** A last-value-wins metric: {!set} stamps each write with a global
    sequence number and the scrape keeps the latest write across all
    domains.  Unset gauges are omitted from scrapes. *)

val histogram : ?help:string -> ?labels:(string * string) list -> string -> histogram
(** A log-bucketed distribution ([Dcn_engine.Profile.Hist]); per-domain
    partial histograms are merged exactly at scrape time. *)

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Turn the hot path on, zero all totals, record the start time for
    {!uptime_ms}, and install the {!Dcn_engine.Trace.set_counter_hook}
    listener so every [Trace.counter] emission also feeds a registry
    counter of the same name.  Idempotent while already enabled. *)

val disable : unit -> unit
(** Turn the hot path back into a one-branch no-op and remove the trace
    counter hook.  Registrations survive. *)

val on : unit -> bool

val reset : unit -> unit
(** Zero every metric (by advancing the shard generation — shards
    re-zero lazily on their owner domain's next update).  Keeps the
    registry enabled/disabled state and all registrations. *)

val uptime_ms : unit -> float
(** Milliseconds since the last {!enable} (0 when never enabled). *)

(** {1 Hot-path updates}

    All of these are single-branch no-ops while disabled. *)

val incr : ?by:int -> counter -> unit
val add : counter -> float -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val value : counter -> float
(** The counter's current total across all domain shards (0 while
    disabled or before any update). *)

val gauge_value : gauge -> float option
(** The latest {!set} value across all domains, [None] if unset. *)

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_buckets : (int * int) list;
      (** [(log-bucket index, count)] sorted by index — the exactly
          mergeable state ({!Dcn_engine.Profile.Hist.buckets}). *)
}

type value = Value of float | Dist of dist

type sample = {
  s_name : string;
  s_labels : (string * string) list;  (** sorted by key *)
  s_kind : kind;
  s_help : string;
  s_value : value;
}

val samples : unit -> sample list
(** Merge every domain shard and return one sample per registered
    metric, sorted by [(name, labels)].  Unset gauges and empty
    histograms are skipped; counters never are (a registered counter
    reports 0 until touched). *)
