(* Registry scrapes frozen for the wire.  See snapshot.mli. *)

module Json = Dcn_engine.Json

type t = {
  version : int;
  seq : int;
  uptime_ms : float;
  metrics : Registry.sample list;
}

let wire_version = 1

let scrape ~seq () =
  {
    version = wire_version;
    seq;
    uptime_ms = Registry.uptime_ms ();
    metrics = Registry.samples ();
  }

(* ------------------------------ writing --------------------------- *)

let sample_to_json (s : Registry.sample) =
  let base = [ ("name", Json.Str s.s_name) ] in
  let labels =
    match s.s_labels with
    | [] -> []
    | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)) ]
  in
  let help = match s.s_help with "" -> [] | h -> [ ("help", Json.Str h) ] in
  let kind = [ ("kind", Json.Str (Registry.kind_to_string s.s_kind)) ] in
  let value =
    match s.s_value with
    | Registry.Value v -> [ ("value", Json.float v) ]
    | Registry.Dist d ->
      [
        ("count", Json.Int d.d_count);
        ("sum", Json.float d.d_sum);
        ("min", Json.float d.d_min);
        ("max", Json.float d.d_max);
        ("p50", Json.float d.d_p50);
        ("p90", Json.float d.d_p90);
        ("p99", Json.float d.d_p99);
        ( "buckets",
          Json.List
            (List.map
               (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
               d.d_buckets) );
      ]
  in
  Json.Obj (base @ labels @ kind @ help @ value)

let to_json t =
  Json.Obj
    [
      ("version", Json.Int t.version);
      ("seq", Json.Int t.seq);
      ("uptime_ms", Json.float t.uptime_ms);
      ("metrics", Json.List (List.map sample_to_json t.metrics));
    ]

(* ------------------------------ reading --------------------------- *)

let sample_of_json j : Registry.sample =
  let name = Json.to_str (Json.get "name" j) in
  let labels =
    match Json.member "labels" j with
    | None -> []
    | Some o ->
      List.sort compare (List.map (fun (k, v) -> (k, Json.to_str v)) (Json.to_obj o))
  in
  let help =
    match Json.member "help" j with Some h -> Json.to_str h | None -> ""
  in
  let kind =
    let k = Json.to_str (Json.get "kind" j) in
    match Registry.kind_of_string k with
    | Some k -> k
    | None -> failwith (Printf.sprintf "unknown metric kind %S" k)
  in
  let value =
    match kind with
    | Registry.Counter | Registry.Gauge ->
      Registry.Value (Json.to_float (Json.get "value" j))
    | Registry.Histogram ->
      Registry.Dist
        {
          d_count = Json.to_int (Json.get "count" j);
          d_sum = Json.to_float (Json.get "sum" j);
          d_min = Json.to_float (Json.get "min" j);
          d_max = Json.to_float (Json.get "max" j);
          d_p50 = Json.to_float (Json.get "p50" j);
          d_p90 = Json.to_float (Json.get "p90" j);
          d_p99 = Json.to_float (Json.get "p99" j);
          d_buckets =
            List.map
              (fun pair ->
                match Json.to_list pair with
                | [ b; c ] -> (Json.to_int b, Json.to_int c)
                | _ -> failwith "histogram bucket is not a [index, count] pair")
              (Json.to_list (Json.get "buckets" j));
        }
  in
  { s_name = name; s_labels = labels; s_kind = kind; s_help = help; s_value = value }

let of_json j =
  try
    let body = match Json.member "stats" j with Some inner -> inner | None -> j in
    let version =
      match Json.member "version" j, Json.member "version" body with
      | _, Some v | Some v, None -> Json.to_int v
      | None, None -> failwith "missing snapshot version"
    in
    if version <> wire_version then
      failwith (Printf.sprintf "unsupported snapshot version %d" version)
    else
      Ok
        {
          version;
          seq = Json.to_int (Json.get "seq" body);
          uptime_ms = Json.to_float (Json.get "uptime_ms" body);
          metrics = List.map sample_of_json (Json.to_list (Json.get "metrics" body));
        }
  with Failure m -> Error m

(* ------------------------------ lookups --------------------------- *)

let find ?labels t name =
  let labels = Option.map (List.sort compare) labels in
  List.find_opt
    (fun (s : Registry.sample) ->
      s.s_name = name
      && match labels with None -> true | Some ls -> s.s_labels = ls)
    t.metrics

let counter_total t name =
  List.fold_left
    (fun acc (s : Registry.sample) ->
      match s.s_value with
      | Registry.Value v when s.s_name = name -> acc +. v
      | _ -> acc)
    0. t.metrics

let gauge_value t name =
  match find t name with
  | Some { s_value = Registry.Value v; s_kind = Registry.Gauge; _ } -> Some v
  | _ -> None

let dist t name =
  match find t name with
  | Some { s_value = Registry.Dist d; _ } -> Some d
  | _ -> None
