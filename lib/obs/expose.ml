(* Serialisations of a snapshot: wire line, Prometheus text format,
   atomic file write, live table.  See expose.mli. *)

module Json = Dcn_engine.Json

let wire_line snap =
  let body =
    match Snapshot.to_json snap with
    | Json.Obj fields ->
      Json.Obj (fields @ [ ("slo", Slo.to_json (Slo.of_snapshot snap)) ])
    | other -> other
  in
  Json.to_string (Json.Obj [ ("stats", body) ])

(* --------------------------- Prometheus --------------------------- *)

let legal_first c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let legal_rest c = legal_first c || (c >= '0' && c <= '9')

let sanitize_label name =
  let b = Bytes.of_string name in
  Bytes.iteri (fun i c -> if not (legal_rest c) then Bytes.set b i '_') b;
  Bytes.to_string b

let sanitize name = "dcn_" ^ sanitize_label name

let exposed_name (s : Registry.sample) =
  let base = sanitize s.s_name in
  match s.s_kind with Registry.Counter -> base ^ "_total" | _ -> base

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_str pairs =
  match pairs with
  | [] -> ""
  | pairs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_label k) (escape_label_value v))
           pairs)
    ^ "}"

let number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let prometheus snap =
  let buf = Buffer.create 4096 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let header (s : Registry.sample) fam ty =
    if not (Hashtbl.mem typed fam) then begin
      Hashtbl.add typed fam ();
      if s.s_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam (escape_help s.s_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam ty)
    end
  in
  List.iter
    (fun (s : Registry.sample) ->
      let fam = exposed_name s in
      let labels = label_str s.s_labels in
      match s.s_value with
      | Registry.Value v ->
        header s fam
          (match s.s_kind with Registry.Counter -> "counter" | _ -> "gauge");
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" fam labels (number v))
      | Registry.Dist d ->
        header s fam "summary";
        List.iter
          (fun (q, v) ->
            let qlabel = ("quantile", q) in
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" fam
                 (label_str (s.s_labels @ [ qlabel ]))
                 (number v)))
          [ ("0.5", d.Registry.d_p50); ("0.9", d.Registry.d_p90);
            ("0.99", d.Registry.d_p99) ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" fam labels (number d.Registry.d_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" fam labels d.Registry.d_count))
    snap.Snapshot.metrics;
  Buffer.contents buf

(* ------------------------- format validator ----------------------- *)

let known_types = [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]

let legal_name n =
  n <> ""
  && legal_first n.[0]
  && String.for_all legal_rest n

(* [name{labels} value [ts]] -> (name, rest after labels).  Scans the
   label block with quote/escape awareness. *)
let split_metric_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && legal_rest line.[!i] do Stdlib.incr i done;
  if !i = 0 then Error "does not start with a metric name"
  else begin
    let name = String.sub line 0 !i in
    if !i < n && line.[!i] = '{' then begin
      Stdlib.incr i;
      let in_quote = ref false and escaped = ref false and closed = ref false in
      while !i < n && not !closed do
        let c = line.[!i] in
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_quote := not !in_quote
        else if c = '}' && not !in_quote then closed := true;
        Stdlib.incr i
      done;
      if not !closed then Error "unterminated label block"
      else Ok (name, String.sub line !i (n - !i))
    end
    else Ok (name, String.sub line !i (n - !i))
  end

let valid_value tok =
  match tok with
  | "NaN" | "+Inf" | "-Inf" | "Inf" -> true
  | tok -> ( match float_of_string_opt tok with Some _ -> true | None -> false)

let validate_prometheus payload =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let family name =
    let strip suffix =
      if String.length name > String.length suffix
         && String.ends_with ~suffix name
      then Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    if Hashtbl.mem typed name then Some name
    else
      match strip "_sum" with
      | Some base when Hashtbl.find_opt typed base = Some "summary" -> Some base
      | _ -> (
        match strip "_count" with
        | Some base when Hashtbl.find_opt typed base = Some "summary" -> Some base
        | _ -> None)
  in
  let check_line line =
    let line = String.trim line in
    if line = "" then Ok ()
    else if String.length line > 0 && line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | "#" :: "HELP" :: name :: _ when legal_name name -> Ok ()
      | "#" :: "TYPE" :: name :: ty :: [] when legal_name name ->
        if List.mem ty known_types then begin
          Hashtbl.replace typed name ty;
          Ok ()
        end
        else Error (Printf.sprintf "unknown type %S" ty)
      | "#" :: ("HELP" | "TYPE") :: _ -> Error "malformed HELP/TYPE comment"
      | _ -> Ok ()  (* plain comment *)
    end
    else
      match split_metric_line line with
      | Error e -> Error e
      | Ok (name, rest) ->
        if not (legal_name name) then Error (Printf.sprintf "illegal name %S" name)
        else if family name = None then
          Error (Printf.sprintf "sample %S has no preceding # TYPE" name)
        else begin
          match String.split_on_char ' ' (String.trim rest) with
          | [ v ] when valid_value v -> Ok ()
          | [ v; ts ] when valid_value v && int_of_string_opt ts <> None -> Ok ()
          | _ -> Error "malformed sample value"
        end
  in
  let rec walk lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match check_line line with
      | Ok () -> walk (lineno + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s: %s" lineno e (String.trim line)))
  in
  walk 1 (String.split_on_char '\n' payload)

(* --------------------------- file writing ------------------------- *)

let write_atomic ~path content = Dcn_util.Atomic_file.write ~path content

(* ---------------------------- live table -------------------------- *)

let dist_cell (d : Registry.dist) =
  Printf.sprintf "n=%d p50=%.3f p90=%.3f p99=%.3f" d.d_count d.d_p50 d.d_p90
    d.d_p99

let render_table ?(top = 0) snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "snapshot #%d  uptime %.1f s  (%d metrics)\n\n"
       snap.Snapshot.seq
       (snap.Snapshot.uptime_ms /. 1e3)
       (List.length snap.Snapshot.metrics));
  let slo = Slo.of_snapshot snap in
  Buffer.add_string buf
    (Dcn_util.Table.render ~headers:[ "indicator"; "value" ] ~rows:(Slo.rows slo) ());
  Buffer.add_char buf '\n';
  let rows =
    List.map
      (fun (s : Registry.sample) ->
        [
          s.s_name;
          String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels);
          Registry.kind_to_string s.s_kind;
          (match s.s_value with
          | Registry.Value v -> Printf.sprintf "%g" v
          | Registry.Dist d -> dist_cell d);
        ])
      snap.Snapshot.metrics
  in
  Buffer.add_string buf
    (Dcn_util.Table.render_top
       ~align:[ Dcn_util.Table.Left; Dcn_util.Table.Left; Dcn_util.Table.Left;
                Dcn_util.Table.Right ]
       ~top ~what:"metrics by name"
       ~headers:[ "metric"; "labels"; "kind"; "value" ]
       ~rows ());
  Buffer.contents buf
