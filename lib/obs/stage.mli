(** Per-stage wall-clock accounting on top of the {!Registry}.

    The successor of the deleted [Dcn_engine.Metrics]: [time stage f]
    charges [f]'s wall time to [stage], and the snapshot/JSON/table
    shapes are unchanged so existing report consumers keep working.
    Under the hood each stage is a pair of registry counters
    ([stage.calls{stage=...}] and [stage.seconds{stage=...}]), so stage
    timings appear in telemetry snapshots and Prometheus exposition for
    free, and the totals merge across domains like every other counter.

    Unlike the old module, nothing is recorded while the registry is
    disabled — {!time} is then just [f ()] after one branch, meeting
    the layer-wide zero-cost contract.  The CLI and bench enable the
    registry whenever they want stage metrics in a report. *)

type snapshot = {
  stage : string;
  calls : int;
  seconds : float;  (** cumulative wall time, summed across domains *)
}

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()] and charges its wall time to [stage]
    (also on exception).  A one-branch no-op wrapper while the registry
    is disabled. *)

val snapshot : unit -> snapshot list
(** Stages with at least one recorded call, sorted by descending
    cumulative time then stage name. *)

val since : base:snapshot list -> snapshot list -> snapshot list
(** Per-stage delta [now - base]; stages with no new calls are dropped
    (the bench harness attributes each stage's activity to exactly one
    section with a chain of [since] cuts). *)

val snapshot_to_json : snapshot list -> Dcn_engine.Json.t
(** A JSON list of [{stage, calls, seconds}] objects, in list order. *)

val to_json : unit -> Dcn_engine.Json.t
(** [snapshot_to_json (snapshot ())]. *)

val render : unit -> string
(** The snapshot as an aligned text table (empty string when no stage
    has been recorded). *)
