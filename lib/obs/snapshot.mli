(** Self-contained telemetry snapshots: a scrape of the {!Registry}
    frozen with a sequence number, ready for the newline-JSON stream
    [dcn serve --stats-every] emits and [dcn stats] consumes.

    A snapshot is a {e pure merge} of the registry's per-domain shards
    — see {!Registry.samples} for the determinism contract.  The wire
    shape (one JSON object per line, wrapped under a ["stats"] key so a
    stats stream can be interleaved with per-event outcome lines and
    still be told apart) is versioned; {!of_json} is total and ignores
    unknown fields, so older readers survive newer writers. *)

type t = {
  version : int;  (** wire version, currently 1 *)
  seq : int;  (** monotone per emitting process *)
  uptime_ms : float;  (** since {!Registry.enable} *)
  metrics : Registry.sample list;  (** sorted by [(name, labels)] *)
}

val wire_version : int

val scrape : seq:int -> unit -> t
(** Freeze the current registry contents. *)

val to_json : t -> Dcn_engine.Json.t
(** The {e bare} snapshot object
    [{version, seq, uptime_ms, metrics: [...]}] — no ["stats"] wrapper,
    no derived SLO section; [Expose.wire_line] composes the full wire
    line. *)

val of_json : Dcn_engine.Json.t -> (t, string) result
(** Total reader for both the bare {!to_json} object and the wrapped
    [{"stats": {...}}] wire line.  Unknown fields (e.g. ["slo"]) are
    ignored; malformed metric rows, a missing version or an unsupported
    version yield [Error]. *)

(** {1 Lookups} *)

val find : ?labels:(string * string) list -> t -> string -> Registry.sample option
(** First metric with this name (and exactly these labels when
    [labels] is given; label order is normalised). *)

val counter_total : t -> string -> float
(** Sum of the [Value] samples carrying this name across {e all} label
    sets (0 when absent) — e.g. [fw.iterations] over its [engine]
    label. *)

val gauge_value : t -> string -> float option

val dist : t -> string -> Registry.dist option
