(** Telemetry surfaces: the newline-JSON wire line, Prometheus text
    exposition, and the aligned table [dcn stats] renders.

    One module owns every serialisation of a {!Snapshot} so the stream,
    the scrape file and the live table cannot drift apart. *)

val wire_line : Snapshot.t -> string
(** One line (no trailing newline):
    [{"stats": {version, seq, uptime_ms, metrics: [...], slo: {...}}}]
    — the bare snapshot plus its derived {!Slo} section, wrapped under
    ["stats"] so stats lines interleave with per-event outcome lines
    unambiguously. *)

val prometheus : Snapshot.t -> string
(** Prometheus text exposition (version 0.0.4).  Metric names are
    sanitised ([[a-zA-Z0-9_:]], everything else becomes ['_']) and
    prefixed with [dcn_]; counters gain the conventional [_total]
    suffix; histograms are exposed as [summary] metrics (p50/p90/p99
    [quantile] series plus [_sum] and [_count]).  Non-finite values
    render as [+Inf]/[-Inf]/[NaN]. *)

val validate_prometheus : string -> (unit, string) result
(** Line-by-line shape check of a {!prometheus} payload: well-formed
    [# HELP]/[# TYPE] comments with known types, metric lines matching
    [name{label="v",...} value], names in the legal charset, every
    sample preceded by a [# TYPE] for its family.  [Error] carries the
    first offending line. *)

val write_atomic : path:string -> string -> unit
(** {!Dcn_util.Atomic_file.write}: temp file in the target directory
    plus [rename], so a concurrent scraper never observes a torn file.
    Silent (called once per snapshot). *)

val render_table : ?top:int -> Snapshot.t -> string
(** The [dcn stats] rendering: a snapshot header, the {!Slo.rows}
    indicator table, then the raw metrics sorted by name ([top] > 0
    truncates, footer says how many were dropped — the
    {!Dcn_util.Table.render_top} shape [dcn trace summary] uses). *)
