(* Process-global metrics registry.  Hot-path updates go to per-domain
   shards (Domain.DLS) so no lock or shared cache line is touched;
   [samples] merges the shards.  See registry.mli for the contracts. *)

module Hist = Dcn_engine.Profile.Hist

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | _ -> None

type counter = int
type gauge = int
type histogram = int

type meta = {
  id : int;
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  kind : kind;
  help : string;
}

(* ---------------------------- global state ------------------------ *)

(* Registration table: mutex-protected, cold path only. *)
let reg_mutex = Mutex.create ()
let by_key : (string * (string * string) list, meta) Hashtbl.t = Hashtbl.create 64
let metas : meta list ref = ref []  (* reversed registration order *)
let next_id = ref 0

let enabled = Atomic.make false

(* Bumped by [enable]/[reset]; shards lazily re-zero when their stored
   generation falls behind, so a reset needs no cross-domain writes. *)
let generation = Atomic.make 0
let started_at = Atomic.make 0.
let gauge_stamps = Atomic.make 0

(* Per-domain shard: parallel arrays indexed by metric id.  [values]
   holds counter totals and gauge values, [stamps] the global write
   sequence of the last gauge [set] (-1 = unset), [hists] lazily
   created per-domain partial histograms. *)
type shard = {
  mutable s_gen : int;
  mutable values : float array;
  mutable stamps : int array;
  mutable hists : Hist.t option array;
}

(* Every shard that has registered under the current generation; the
   scrape walks this list.  Mutex-protected (shards register rarely). *)
let shards : shard list ref = ref []

let dls : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { s_gen = -1; values = [||]; stamps = [||]; hists = [||] })

let ensure_capacity s id =
  let n = Array.length s.values in
  if id >= n then begin
    let n' = max 16 (max (id + 1) (2 * n)) in
    let values = Array.make n' 0. in
    Array.blit s.values 0 values 0 n;
    let stamps = Array.make n' (-1) in
    Array.blit s.stamps 0 stamps 0 n;
    let hists = Array.make n' None in
    Array.blit s.hists 0 hists 0 n;
    s.values <- values;
    s.stamps <- stamps;
    s.hists <- hists
  end

(* The calling domain's shard, zeroed and (re-)registered if it lags
   the current generation.  Stale-generation shards are pruned from the
   scrape list here rather than eagerly at reset time. *)
let shard () =
  let s = Domain.DLS.get dls in
  let g = Atomic.get generation in
  if s.s_gen <> g then begin
    s.s_gen <- g;
    Array.fill s.values 0 (Array.length s.values) 0.;
    Array.fill s.stamps 0 (Array.length s.stamps) (-1);
    Array.fill s.hists 0 (Array.length s.hists) None;
    Mutex.lock reg_mutex;
    shards := s :: List.filter (fun x -> x != s && x.s_gen = g) !shards;
    Mutex.unlock reg_mutex
  end;
  s

(* ---------------------------- registration ------------------------ *)

let register kind ?(help = "") ?(labels = []) name =
  if name = "" then invalid_arg "Dcn_obs.Registry: empty metric name";
  let labels = List.sort compare labels in
  Mutex.lock reg_mutex;
  let result =
    match Hashtbl.find_opt by_key (name, labels) with
    | Some m -> if m.kind = kind then Ok m.id else Error m.kind
    | None ->
      let id = !next_id in
      next_id := id + 1;
      let m = { id; name; labels; kind; help } in
      Hashtbl.add by_key (name, labels) m;
      metas := m :: !metas;
      Ok id
  in
  Mutex.unlock reg_mutex;
  match result with
  | Ok id -> id
  | Error was ->
    invalid_arg
      (Printf.sprintf "Dcn_obs.Registry: %S already registered as a %s" name
         (kind_to_string was))

let counter ?help ?labels name = register Counter ?help ?labels name
let gauge ?help ?labels name = register Gauge ?help ?labels name
let histogram ?help ?labels name = register Histogram ?help ?labels name

(* --------------------------- hot-path updates --------------------- *)

let incr ?(by = 1) c =
  if Atomic.get enabled then begin
    let s = shard () in
    ensure_capacity s c;
    s.values.(c) <- s.values.(c) +. float_of_int by
  end

let add c v =
  if Atomic.get enabled then begin
    let s = shard () in
    ensure_capacity s c;
    s.values.(c) <- s.values.(c) +. v
  end

let set g v =
  if Atomic.get enabled then begin
    let s = shard () in
    ensure_capacity s g;
    s.values.(g) <- v;
    s.stamps.(g) <- Atomic.fetch_and_add gauge_stamps 1
  end

let observe h v =
  if Atomic.get enabled then begin
    let s = shard () in
    ensure_capacity s h;
    let hist =
      match s.hists.(h) with
      | Some hi -> hi
      | None ->
        let hi = Hist.create () in
        s.hists.(h) <- Some hi;
        hi
    in
    Hist.add hist v
  end

(* ------------------------------ lifecycle ------------------------- *)

(* Trace counters fold into registry counters of the same name; the
   name -> handle map is an immutable [Map] swapped by CAS so the hook
   is safe to call from any domain without a lock. *)
module SMap = Map.Make (String)

let hook_ids : counter SMap.t Atomic.t = Atomic.make SMap.empty

let trace_hook name delta =
  let c =
    match SMap.find_opt name (Atomic.get hook_ids) with
    | Some c -> c
    | None ->
      let c = counter ~help:"trace counter total" name in
      let rec publish () =
        let m = Atomic.get hook_ids in
        if not (Atomic.compare_and_set hook_ids m (SMap.add name c m)) then
          publish ()
      in
      publish ();
      c
  in
  add c delta

let reset () = Atomic.incr generation

let enable () =
  if not (Atomic.get enabled) then begin
    reset ();
    Atomic.set started_at (Unix.gettimeofday ());
    Atomic.set enabled true;
    Dcn_engine.Trace.set_counter_hook (Some trace_hook)
  end

let disable () =
  Dcn_engine.Trace.set_counter_hook None;
  Atomic.set enabled false

let on () = Atomic.get enabled

let uptime_ms () =
  let t0 = Atomic.get started_at in
  if t0 = 0. then 0. else 1e3 *. (Unix.gettimeofday () -. t0)

(* ------------------------------- reading -------------------------- *)

(* Shards of the current generation, plus the registered metas.  A
   scrape is expected to run while updaters are quiescent (between
   events / after a pool barrier); shard arrays are read without the
   owner's cooperation. *)
let current_state () =
  Mutex.lock reg_mutex;
  let g = Atomic.get generation in
  let ss = List.filter (fun s -> s.s_gen = g) !shards in
  let ms = List.rev !metas in
  Mutex.unlock reg_mutex;
  (ms, ss)

let sum_shards ss id =
  List.fold_left
    (fun acc s -> if id < Array.length s.values then acc +. s.values.(id) else acc)
    0. ss

let value c =
  let _, ss = current_state () in
  sum_shards ss c

let latest_gauge ss id =
  List.fold_left
    (fun acc s ->
      if id < Array.length s.stamps && s.stamps.(id) >= 0 then
        match acc with
        | Some (stamp, _) when stamp >= s.stamps.(id) -> acc
        | _ -> Some (s.stamps.(id), s.values.(id))
      else acc)
    None ss

let gauge_value g =
  let _, ss = current_state () in
  Option.map snd (latest_gauge ss g)

let merged_hist ss id =
  List.fold_left
    (fun acc s ->
      if id < Array.length s.hists then
        match s.hists.(id) with
        | Some h -> ( match acc with None -> Some h | Some a -> Some (Hist.merge a h))
        | None -> acc
      else acc)
    None ss

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_buckets : (int * int) list;
}

type value = Value of float | Dist of dist

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_kind : kind;
  s_help : string;
  s_value : value;
}

let dist_of_hist h =
  {
    d_count = Hist.count h;
    d_sum = Hist.total h;
    d_min = Hist.min_value h;
    d_max = Hist.max_value h;
    d_p50 = Hist.quantile h 0.5;
    d_p90 = Hist.quantile h 0.9;
    d_p99 = Hist.quantile h 0.99;
    d_buckets = Hist.buckets h;
  }

let samples () =
  let ms, ss = current_state () in
  let rows =
    List.filter_map
      (fun m ->
        let mk v =
          Some
            {
              s_name = m.name;
              s_labels = m.labels;
              s_kind = m.kind;
              s_help = m.help;
              s_value = v;
            }
        in
        match m.kind with
        | Counter -> mk (Value (sum_shards ss m.id))
        | Gauge -> (
          match latest_gauge ss m.id with
          | None -> None
          | Some (_, v) -> mk (Value v))
        | Histogram -> (
          match merged_hist ss m.id with
          | None -> None
          | Some h -> mk (Dist (dist_of_hist h))))
      ms
  in
  List.sort (fun a b -> compare (a.s_name, a.s_labels) (b.s_name, b.s_labels)) rows
