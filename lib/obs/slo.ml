(* Derived serving-health indicators.  See slo.mli. *)

module Json = Dcn_engine.Json

type t = {
  events : int;
  committed : int;
  degraded : int;
  rejected : int;
  commit_rate : float option;
  apply_count : int;
  apply_p50_ms : float option;
  apply_p90_ms : float option;
  apply_p99_ms : float option;
  resolved_intervals : int;
  reused_intervals : int;
  reuse_ratio : float option;
  min_slack : float option;
  energy : float option;
  energy_lb : float option;
  energy_gap : float option;
  fw_iterations : int;
  minor_words_per_event : float option;
  certified : int;
  uncertified : int;
}

let of_snapshot snap =
  let c name = int_of_float (Snapshot.counter_total snap name) in
  let events = c "serve.events" in
  let committed = c "serve.committed" in
  let degraded = c "serve.degraded" in
  let rejected = c "serve.rejected" in
  let outcomes = committed + degraded + rejected in
  let apply = Snapshot.dist snap "serve.apply_ms" in
  let q f = Option.map f apply in
  let resolved = c "serve.resolved_intervals" in
  let reused = c "serve.reused_intervals" in
  let energy = Snapshot.gauge_value snap "serve.energy" in
  let energy_lb = Snapshot.gauge_value snap "serve.energy_lb" in
  let minor_words = Snapshot.counter_total snap "serve.apply_minor_words" in
  {
    events;
    committed;
    degraded;
    rejected;
    commit_rate =
      (if outcomes = 0 then None
       else Some (float_of_int committed /. float_of_int outcomes));
    apply_count = (match apply with None -> 0 | Some d -> d.Registry.d_count);
    apply_p50_ms = q (fun d -> d.Registry.d_p50);
    apply_p90_ms = q (fun d -> d.Registry.d_p90);
    apply_p99_ms = q (fun d -> d.Registry.d_p99);
    resolved_intervals = resolved;
    reused_intervals = reused;
    reuse_ratio =
      (if resolved + reused = 0 then None
       else Some (float_of_int reused /. float_of_int (resolved + reused)));
    min_slack = Snapshot.gauge_value snap "serve.min_slack";
    energy;
    energy_lb;
    energy_gap =
      (match (energy, energy_lb) with
      | Some e, Some lb when lb > 0. -> Some ((e -. lb) /. lb)
      | _ -> None);
    fw_iterations = c "fw.iterations";
    minor_words_per_event =
      (if events = 0 then None else Some (minor_words /. float_of_int events));
    certified = c "serve.certified";
    uncertified = c "serve.uncertified";
  }

let opt_json f = function None -> Json.Null | Some v -> f v

let to_json t =
  Json.Obj
    [
      ("events", Json.Int t.events);
      ("committed", Json.Int t.committed);
      ("degraded", Json.Int t.degraded);
      ("rejected", Json.Int t.rejected);
      ("commit_rate", opt_json Json.float t.commit_rate);
      ("apply_count", Json.Int t.apply_count);
      ("apply_p50_ms", opt_json Json.float t.apply_p50_ms);
      ("apply_p90_ms", opt_json Json.float t.apply_p90_ms);
      ("apply_p99_ms", opt_json Json.float t.apply_p99_ms);
      ("resolved_intervals", Json.Int t.resolved_intervals);
      ("reused_intervals", Json.Int t.reused_intervals);
      ("reuse_ratio", opt_json Json.float t.reuse_ratio);
      ("min_slack", opt_json Json.float t.min_slack);
      ("energy", opt_json Json.float t.energy);
      ("energy_lb", opt_json Json.float t.energy_lb);
      ("energy_gap", opt_json Json.float t.energy_gap);
      ("fw_iterations", Json.Int t.fw_iterations);
      ("minor_words_per_event", opt_json Json.float t.minor_words_per_event);
      ("certified", Json.Int t.certified);
      ("uncertified", Json.Int t.uncertified);
    ]

let rows t =
  let f = Printf.sprintf "%.3f" in
  let opt fmt = function None -> "-" | Some v -> fmt v in
  let pct = function None -> "-" | Some v -> Printf.sprintf "%.1f%%" (100. *. v) in
  [
    [ "events"; string_of_int t.events ];
    [ "committed"; string_of_int t.committed ];
    [ "degraded"; string_of_int t.degraded ];
    [ "rejected"; string_of_int t.rejected ];
    [ "commit rate"; pct t.commit_rate ];
    [ "apply p50 ms"; opt f t.apply_p50_ms ];
    [ "apply p90 ms"; opt f t.apply_p90_ms ];
    [ "apply p99 ms"; opt f t.apply_p99_ms ];
    [ "resolved intervals"; string_of_int t.resolved_intervals ];
    [ "reused intervals"; string_of_int t.reused_intervals ];
    [ "interval reuse"; pct t.reuse_ratio ];
    [ "min deadline slack"; opt f t.min_slack ];
    [ "energy"; opt f t.energy ];
    [ "energy LB"; opt f t.energy_lb ];
    [ "energy gap"; pct t.energy_gap ];
    [ "FW iterations"; string_of_int t.fw_iterations ];
    [ "minor words/event"; opt (Printf.sprintf "%.0f") t.minor_words_per_event ];
    [ "certified epochs"; string_of_int t.certified ];
    [ "uncertified epochs"; string_of_int t.uncertified ];
  ]
