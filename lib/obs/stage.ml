(* Stage wall-clock accounting as registry counter pairs.  See
   stage.mli. *)

module Json = Dcn_engine.Json

type snapshot = { stage : string; calls : int; seconds : float }

(* stage name -> (calls handle, seconds handle); cold path, mutex is
   fine.  Registration is idempotent, so losing a race only costs a
   duplicate lookup. *)
let mutex = Mutex.create ()
let handles : (string, Registry.counter * Registry.counter) Hashtbl.t =
  Hashtbl.create 16

let handles_for stage =
  Mutex.lock mutex;
  let h =
    match Hashtbl.find_opt handles stage with
    | Some h -> h
    | None ->
      let c =
        Registry.counter ~help:"stage call count" ~labels:[ ("stage", stage) ]
          "stage.calls"
      in
      let s =
        Registry.counter ~help:"stage cumulative wall seconds"
          ~labels:[ ("stage", stage) ] "stage.seconds"
      in
      Hashtbl.replace handles stage (c, s);
      (c, s)
  in
  Mutex.unlock mutex;
  h

let time stage f =
  if not (Registry.on ()) then f ()
  else begin
    let calls, seconds = handles_for stage in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Registry.incr calls;
        Registry.add seconds (Unix.gettimeofday () -. t0))
      f
  end

let snapshot () =
  Mutex.lock mutex;
  let stages = Hashtbl.fold (fun k v acc -> (k, v) :: acc) handles [] in
  Mutex.unlock mutex;
  let all =
    List.filter_map
      (fun (stage, (c, s)) ->
        let calls = int_of_float (Registry.value c) in
        if calls <= 0 then None
        else Some { stage; calls; seconds = Registry.value s })
      stages
  in
  List.sort
    (fun a b ->
      match compare b.seconds a.seconds with 0 -> compare a.stage b.stage | c -> c)
    all

let since ~base now =
  let at_base = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace at_base r.stage (r.calls, r.seconds)) base;
  List.filter_map
    (fun r ->
      let calls0, seconds0 =
        Option.value ~default:(0, 0.) (Hashtbl.find_opt at_base r.stage)
      in
      let calls = r.calls - calls0 and seconds = r.seconds -. seconds0 in
      if calls <= 0 then None else Some { r with calls; seconds })
    now

let snapshot_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("stage", Json.Str r.stage);
             ("calls", Json.Int r.calls);
             ("seconds", Json.float r.seconds);
           ])
       rows)

let to_json () = snapshot_to_json (snapshot ())

let render () =
  match snapshot () with
  | [] -> ""
  | rows ->
    let body =
      List.map
        (fun r ->
          [
            r.stage;
            string_of_int r.calls;
            Printf.sprintf "%.3f" r.seconds;
            Printf.sprintf "%.2f" (1e3 *. r.seconds /. float_of_int (max 1 r.calls));
          ])
        rows
    in
    Dcn_util.Table.render
      ~headers:[ "stage"; "calls"; "total (s)"; "mean (ms)" ]
      ~rows:body ()
