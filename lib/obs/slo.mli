(** SLO accounting: serving health derived from a raw {!Snapshot}.

    The paper's operational question is whether hard deadlines are met
    at minimum energy; for a live [dcn serve] session that turns into a
    handful of derived indicators — admission outcome rates, per-event
    apply latency quantiles, the interval reuse ratio of the
    incremental re-solve, worst-case deadline slack, energy against its
    lower bound, Frank–Wolfe work and allocation pressure.  This module
    owns the derivations so the snapshot stream, the Prometheus file
    and the [dcn stats] table all report the same numbers. *)

type t = {
  events : int;  (** events applied ([serve.events]) *)
  committed : int;
  degraded : int;
  rejected : int;
  commit_rate : float option;
      (** committed / (committed + degraded + rejected); [None] before
          any admission outcome *)
  apply_count : int;  (** samples in the apply-latency histogram *)
  apply_p50_ms : float option;
  apply_p90_ms : float option;
  apply_p99_ms : float option;
  resolved_intervals : int;  (** intervals re-solved from scratch *)
  reused_intervals : int;  (** intervals reused verbatim *)
  reuse_ratio : float option;
      (** reused / (resolved + reused); [None] before any resolve *)
  min_slack : float option;
      (** minimum (deadline - session clock) across committed flows, in
          the instance's time units — how close the tightest committed
          flow is to its deadline; negative would mean a flow still
          committed past its deadline *)
  energy : float option;  (** current schedule energy ([serve.energy]) *)
  energy_lb : float option;  (** fractional lower bound *)
  energy_gap : float option;  (** (energy - lb) / lb when lb > 0 *)
  fw_iterations : int;  (** summed over the [engine] label *)
  minor_words_per_event : float option;  (** GC allocation per apply *)
  certified : int;  (** epochs re-certified clean *)
  uncertified : int;  (** epochs where certification failed *)
}

val of_snapshot : Snapshot.t -> t

val to_json : t -> Dcn_engine.Json.t
(** Flat object; [None] fields are emitted as [null]. *)

val rows : t -> string list list
(** [[indicator; value]] rows for an aligned table — the [dcn stats]
    rendering shape ([None] renders as ["-"]). *)
