(** Typed schedule diffs — the one sanctioned way to compare two
    schedules of the same fabric.

    The serving layer absorbs a stream of flow events; after each
    committed epoch the interesting object is not the whole schedule
    but what {e changed}: which plans appeared, which disappeared, and
    which were re-planned.  [diff] computes that change set, [apply]
    replays it onto the pre-change schedule, and the two are inverses:

    {[ apply ~graph ~power ~before (diff ~before ~after) = after ]}

    (plan-for-plan, for any two schedules of the same graph and power
    model).  Downstream consumers — the [dcn serve] delta stream, the
    replay tests, external dashboards — should diff schedules only
    through this module rather than comparing plan lists by hand. *)

type change = {
  before : Schedule.plan;
  after : Schedule.plan;  (** same flow id, different path or slots *)
}

type t = {
  horizon : (float * float) option;
      (** the post-change schedule's horizon; [None] iff the post-change
          schedule is absent (every plan removed, session drained) *)
  added : Schedule.plan list;  (** plans absent before, ascending flow id *)
  removed : Schedule.plan list;
      (** plans absent after, ascending flow id *)
  changed : change list;  (** ascending flow id *)
}

val equal_plan : Schedule.plan -> Schedule.plan -> bool
(** Structural equality: same flow (all fields), path and slots. *)

val is_empty : t -> bool
(** No added, removed or changed plans (the horizon may still have
    moved — an epoch that only advanced the clock). *)

val diff : before:Schedule.t option -> after:Schedule.t option -> t
(** Change set turning [before] into [after].  [None] stands for the
    empty schedule of a session with no committed flows. *)

val apply :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  before:Schedule.t option ->
  t ->
  (Schedule.t option, string) result
(** Replay a delta: remove [removed], replace [changed], append
    [added], rebuild on [horizon].  A delta that does not match
    [before] — a removed or changed plan that is absent or differs, an
    added plan already present — yields [Error] with the offending flow
    id; it never raises. *)

val summary : t -> string
(** ["+a -r ~c"] counts, e.g. ["+1 -0 ~0"]. *)

val to_json : t -> Dcn_engine.Json.t
(** Added/changed plans in full (flow, path link ids, slots); removed
    plans by flow id. *)
