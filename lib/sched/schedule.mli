(** Concrete schedules: the solution object every algorithm produces.

    A schedule assigns each flow a single routing path and a set of
    transmission slots (Eq. 2 of the paper, with piecewise-constant
    [s_i(t)]).  The same representation covers both schedule styles in
    the paper:

    - {e virtual-circuit} schedules (Most-Critical-First): one constant
      rate per flow, slots exclusive per link;
    - {e interval-density} schedules (Random-Schedule): each flow
      transmits at its density over its whole span, so a link's rate is
      the sum of the active densities — exactly the
      [sum of D_i over J_e(k)] link rates of Algorithm 2.

    Energy is Eq. (5): idle power [sigma] over the whole horizon for
    every link that ever carries traffic, plus the integral of
    [mu x_e(t)^alpha]. *)

type slot = { start : float; stop : float; rate : float }

type plan = {
  flow : Dcn_flow.Flow.t;
  path : Dcn_topology.Graph.link list;
  slots : slot list;
}

type t = private {
  graph : Dcn_topology.Graph.t;
  power : Dcn_power.Model.t;
  horizon : float * float;  (** [(T0, T1)] — the idle-power window *)
  plans : plan list;
}

val make :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  horizon:float * float ->
  plan list ->
  t
(** Structural validation only (paths connect the right endpoints, slots
    are well-formed); semantic checks live in {!Check}.
    @raise Invalid_argument on a malformed plan or duplicate flow ids. *)

val delivered : plan -> float
(** Data carried by the plan's slots. *)

val find_plan : t -> int -> plan option
(** Plan of the flow with the given id, or [None].  To compare two
    schedules plan-by-plan, use {!Schedule_delta.diff} rather than
    paired lookups. *)

val link_profile : t -> Dcn_topology.Graph.link -> Profile.t
(** Aggregate rate profile of one link. *)

val profiles : t -> (Dcn_topology.Graph.link * Profile.t) array
(** Profiles of all links that carry traffic. *)

val active_links : t -> Dcn_topology.Graph.link list
(** [Ea]: links with at least one slot (directed). *)

val idle_energy : t -> float
(** [sigma * |Ea| * (T1 - T0)]. *)

val dynamic_energy : t -> float
(** [integral of sum mu x_e^alpha]. *)

val energy : t -> float
(** [idle_energy + dynamic_energy] — the paper's objective
    [Phi_f]. *)

val max_link_rate : t -> float

module Check : sig
  type violation =
    | Wrong_volume of { flow : int; delivered : float; expected : float }
    | Slot_outside_span of { flow : int; start : float; stop : float }
    | Over_capacity of { link : int; rate : float; cap : float }
    | Link_conflict of { link : int; at : float }
        (** two flows transmit simultaneously on a link — only a
            violation for virtual-circuit schedules *)

  val pp_violation : Format.formatter -> violation -> unit

  val deadlines : ?eps:float -> t -> violation list
  (** Every flow delivers its volume inside its span ([eps] defaults to
      [1e-6], a relative volume tolerance). *)

  val capacity : ?eps:float -> t -> violation list
  (** No link rate exceeds the power model's cap. *)

  val exclusive : ?eps:float -> t -> violation list
  (** No two flows overlap on a link (virtual-circuit property). *)

  val all : ?eps:float -> exclusive:bool -> t -> violation list

  val is_feasible : ?eps:float -> exclusive:bool -> t -> bool
end
