module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model

type slot = { start : float; stop : float; rate : float }

type plan = { flow : Flow.t; path : Graph.link list; slots : slot list }

type t = {
  graph : Graph.t;
  power : Model.t;
  horizon : float * float;
  plans : plan list;
}

let delivered plan =
  List.fold_left (fun acc s -> acc +. ((s.stop -. s.start) *. s.rate)) 0. plan.slots

let make ~graph ~power ~horizon plans =
  let t0, t1 = horizon in
  if t1 < t0 then invalid_arg "Schedule.make: bad horizon";
  let ids = List.map (fun p -> p.flow.Flow.id) plans in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Schedule.make: duplicate flow ids";
  List.iter
    (fun p ->
      if not (Graph.is_path graph ~src:p.flow.Flow.src ~dst:p.flow.Flow.dst p.path) then
        invalid_arg
          (Printf.sprintf "Schedule.make: plan of flow %d has an invalid path"
             p.flow.Flow.id);
      if p.path = [] then invalid_arg "Schedule.make: empty path";
      List.iter
        (fun s ->
          if s.stop < s.start || s.rate < 0. then
            invalid_arg
              (Printf.sprintf "Schedule.make: malformed slot for flow %d" p.flow.Flow.id))
        p.slots)
    plans;
  { graph; power; horizon; plans }

let find_plan t id = List.find_opt (fun p -> p.flow.Flow.id = id) t.plans

(* Slots carried by each link, as (start, stop, rate, flow id). *)
let link_slot_table t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun l ->
          let prev = try Hashtbl.find tbl l with Not_found -> [] in
          let entries =
            List.map (fun s -> (s.start, s.stop, s.rate, p.flow.Flow.id)) p.slots
          in
          Hashtbl.replace tbl l (entries @ prev))
        p.path)
    t.plans;
  tbl

let link_profile t link =
  let slots =
    List.concat_map
      (fun p ->
        if List.mem link p.path then
          List.map (fun s -> (s.start, s.stop, s.rate)) p.slots
        else [])
      t.plans
  in
  Profile.of_slots slots

let profiles t =
  let tbl = link_slot_table t in
  let links = Hashtbl.fold (fun l _ acc -> l :: acc) tbl [] in
  let links = List.sort compare links in
  Array.of_list
    (List.filter_map
       (fun l ->
         let entries = Hashtbl.find tbl l in
         let profile =
           Profile.of_slots (List.map (fun (a, b, r, _) -> (a, b, r)) entries)
         in
         if Profile.is_idle profile then None else Some (l, profile))
       links)

let active_links t = Array.to_list (Array.map fst (profiles t))

let idle_energy t =
  let t0, t1 = t.horizon in
  let n_active = Array.length (profiles t) in
  float_of_int n_active *. t.power.Model.sigma *. (t1 -. t0)

let dynamic_energy t =
  Array.fold_left
    (fun acc (_, p) -> acc +. Profile.dynamic_energy t.power p)
    0. (profiles t)

let energy t = idle_energy t +. dynamic_energy t

let max_link_rate t =
  Array.fold_left (fun acc (_, p) -> Float.max acc (Profile.max_rate p)) 0. (profiles t)

module Check = struct
  type violation =
    | Wrong_volume of { flow : int; delivered : float; expected : float }
    | Slot_outside_span of { flow : int; start : float; stop : float }
    | Over_capacity of { link : int; rate : float; cap : float }
    | Link_conflict of { link : int; at : float }

  let pp_violation ppf = function
    | Wrong_volume { flow; delivered; expected } ->
      Format.fprintf ppf "flow %d delivered %g of %g" flow delivered expected
    | Slot_outside_span { flow; start; stop } ->
      Format.fprintf ppf "flow %d transmits in [%g,%g] outside its span" flow start stop
    | Over_capacity { link; rate; cap } ->
      Format.fprintf ppf "link %d at rate %g above capacity %g" link rate cap
    | Link_conflict { link; at } ->
      Format.fprintf ppf "two flows share link %d at time %g" link at

  let deadlines ?(eps = 1e-6) t =
    List.concat_map
      (fun p ->
        let w = p.flow.Flow.volume in
        let got = delivered p in
        let volume_ok = Float.abs (got -. w) <= eps *. Float.max 1. w in
        let bad_slots =
          List.filter_map
            (fun s ->
              if
                s.start < p.flow.Flow.release -. eps
                || s.stop > p.flow.Flow.deadline +. eps
              then
                Some (Slot_outside_span { flow = p.flow.Flow.id; start = s.start; stop = s.stop })
              else None)
            p.slots
        in
        let volume_violation =
          if volume_ok then []
          else [ Wrong_volume { flow = p.flow.Flow.id; delivered = got; expected = w } ]
        in
        volume_violation @ bad_slots)
      t.plans

  let capacity ?(eps = 1e-6) t =
    let cap = t.power.Model.cap in
    Array.to_list (profiles t)
    |> List.filter_map (fun (l, p) ->
           let r = Profile.max_rate p in
           if r > cap +. (eps *. Float.max 1. cap) then
             Some (Over_capacity { link = l; rate = r; cap })
           else None)

  let exclusive ?(eps = 1e-6) t =
    let tbl = link_slot_table t in
    let conflicts = ref [] in
    Hashtbl.iter
      (fun l entries ->
        let sorted = List.sort compare entries in
        (* Sweep against the furthest-reaching slot seen so far; any
           overlapping different-flow pair produces at least one hit. *)
        let rec scan prev_stop prev_flow = function
          | [] -> ()
          | (a, b, _, f) :: rest ->
            if f <> prev_flow && a < prev_stop -. eps then
              conflicts := Link_conflict { link = l; at = a } :: !conflicts;
            if b > prev_stop then scan b f rest else scan prev_stop prev_flow rest
        in
        (match sorted with
        | [] -> ()
        | (_, b, _, f) :: rest -> scan b f rest))
      tbl;
    !conflicts

  let all ?eps ~exclusive:want_exclusive t =
    deadlines ?eps t @ capacity ?eps t
    @ if want_exclusive then exclusive ?eps t else []

  let is_feasible ?eps ~exclusive t = all ?eps ~exclusive t = []
end
