module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Json = Dcn_engine.Json

type change = { before : Schedule.plan; after : Schedule.plan }

type t = {
  horizon : (float * float) option;
  added : Schedule.plan list;
  removed : Schedule.plan list;
  changed : change list;
}

let equal_slot (a : Schedule.slot) (b : Schedule.slot) =
  a.start = b.start && a.stop = b.stop && a.rate = b.rate

let equal_flow (a : Flow.t) (b : Flow.t) =
  a.id = b.id && a.src = b.src && a.dst = b.dst && a.volume = b.volume
  && a.release = b.release && a.deadline = b.deadline

let equal_plan (a : Schedule.plan) (b : Schedule.plan) =
  equal_flow a.flow b.flow && a.path = b.path
  && List.length a.slots = List.length b.slots
  && List.for_all2 equal_slot a.slots b.slots

let is_empty t = t.added = [] && t.removed = [] && t.changed = []

let plan_id (p : Schedule.plan) = p.Schedule.flow.Flow.id

let by_id a b = compare (plan_id a) (plan_id b)

let plans = function
  | None -> []
  | Some (s : Schedule.t) -> s.Schedule.plans

let diff ~before ~after =
  let old_plans = plans before in
  let new_plans = plans after in
  let added =
    List.filter
      (fun p -> not (List.exists (fun q -> plan_id q = plan_id p) old_plans))
      new_plans
  in
  let removed =
    List.filter
      (fun p -> not (List.exists (fun q -> plan_id q = plan_id p) new_plans))
      old_plans
  in
  let changed =
    List.filter_map
      (fun (p : Schedule.plan) ->
        match List.find_opt (fun q -> plan_id q = plan_id p) new_plans with
        | Some q when not (equal_plan p q) -> Some { before = p; after = q }
        | _ -> None)
      old_plans
  in
  {
    horizon = Option.map (fun (s : Schedule.t) -> s.Schedule.horizon) after;
    added = List.sort by_id added;
    removed = List.sort by_id removed;
    changed = List.sort (fun a b -> by_id a.before b.before) changed;
  }

let apply ~graph ~power ~before t =
  let old_plans = plans before in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec remove acc id = function
    | [] -> err "delta removes flow %d, which has no plan" id
    | p :: ps when plan_id p = id -> Ok (List.rev_append acc ps)
    | p :: ps -> remove (p :: acc) id ps
  in
  let rec replace acc (c : change) = function
    | [] -> err "delta changes flow %d, which has no plan" (plan_id c.before)
    | p :: ps when plan_id p = plan_id c.before ->
      if equal_plan p c.before then Ok (List.rev_append acc (c.after :: ps))
      else err "delta's before-plan of flow %d does not match" (plan_id p)
    | p :: ps -> replace (p :: acc) c ps
  in
  let ( let* ) = Result.bind in
  let* pruned =
    List.fold_left
      (fun acc p ->
        let* ps = acc in
        if equal_plan p (List.find (fun q -> plan_id q = plan_id p) old_plans)
        then remove [] (plan_id p) ps
        else err "delta's removed plan of flow %d does not match" (plan_id p))
      (Ok old_plans)
      (List.filter
         (fun p -> List.exists (fun q -> plan_id q = plan_id p) old_plans)
         t.removed)
  in
  (* A removed plan absent from [before] is itself a mismatch. *)
  let* () =
    match
      List.find_opt
        (fun p -> not (List.exists (fun q -> plan_id q = plan_id p) old_plans))
        t.removed
    with
    | Some p -> err "delta removes flow %d, which has no plan" (plan_id p)
    | None -> Ok ()
  in
  let* replaced =
    List.fold_left
      (fun acc c ->
        let* ps = acc in
        replace [] c ps)
      (Ok pruned) t.changed
  in
  let* () =
    match
      List.find_opt
        (fun p -> List.exists (fun q -> plan_id q = plan_id p) replaced)
        t.added
    with
    | Some p -> err "delta adds flow %d, which already has a plan" (plan_id p)
    | None -> Ok ()
  in
  let final = replaced @ t.added in
  match t.horizon with
  | None ->
    if final = [] then Ok None
    else err "delta drops the horizon but %d plan(s) remain" (List.length final)
  | Some horizon -> (
    match Schedule.make ~graph ~power ~horizon final with
    | s -> Ok (Some s)
    | exception Invalid_argument m -> Error m)

let summary t =
  Printf.sprintf "+%d -%d ~%d" (List.length t.added) (List.length t.removed)
    (List.length t.changed)

let slot_to_json (s : Schedule.slot) =
  Json.Obj
    [
      ("start", Json.float s.start);
      ("stop", Json.float s.stop);
      ("rate", Json.float s.rate);
    ]

let plan_to_json (p : Schedule.plan) =
  let f = p.Schedule.flow in
  Json.Obj
    [
      ("flow", Json.Int f.Flow.id);
      ("src", Json.Int f.src);
      ("dst", Json.Int f.dst);
      ("volume", Json.float f.volume);
      ("release", Json.float f.release);
      ("deadline", Json.float f.deadline);
      ("path", Json.List (List.map (fun l -> Json.Int l) p.path));
      ("slots", Json.List (List.map slot_to_json p.slots));
    ]

let to_json t =
  Json.Obj
    [
      ( "horizon",
        match t.horizon with
        | None -> Json.Null
        | Some (lo, hi) -> Json.List [ Json.float lo; Json.float hi ] );
      ("added", Json.List (List.map plan_to_json t.added));
      ("removed", Json.List (List.map (fun p -> Json.Int (plan_id p)) t.removed));
      ( "changed",
        Json.List (List.map (fun c -> plan_to_json c.after) t.changed) );
    ]
