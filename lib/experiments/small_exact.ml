module Prng = Dcn_util.Prng
module Flow = Dcn_flow.Flow
module Table = Dcn_util.Table

type row = {
  seed : int;
  n_flows : int;
  exact : float;
  rs : float;
  ratio : float;
}

let run ?(alpha = 2.) ?(n_flows = 4) ?(links = 3) ~seeds () =
  Dcn_engine.Trace.span "experiment.small_exact"
    ~fields:
      [
        ("seeds", Dcn_engine.Json.Int (List.length seeds));
        ("flows", Dcn_engine.Json.Int n_flows);
      ]
  @@ fun () ->
  let graph = Dcn_topology.Builders.parallel ~links in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha () in
  List.map
    (fun seed ->
      let rng = Prng.create seed in
      let flows =
        List.init n_flows (fun id ->
            let r = Prng.uniform rng ~lo:0. ~hi:8. in
            let d = r +. 1. +. Prng.uniform rng ~lo:0. ~hi:4. in
            Flow.make ~id ~src:0 ~dst:1
              ~volume:(Prng.gaussian_positive rng ~mean:10. ~stddev:3.)
              ~release:r ~deadline:d)
      in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let exact = (Dcn_core.Exact.search inst).Dcn_core.Exact.energy in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:
            { Dcn_core.Random_schedule.attempts = 20; fw_config = Fig2.experiment_fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let rs_energy = rs.Dcn_core.Solution.energy in
      { seed; n_flows; exact; rs = rs_energy; ratio = rs_energy /. exact })
    seeds

let render rows =
  let headers = [ "seed"; "flows"; "exact OPT"; "RS"; "RS/OPT" ] in
  let row r =
    [
      string_of_int r.seed;
      string_of_int r.n_flows;
      Table.cell_f ~decimals:2 r.exact;
      Table.cell_f ~decimals:2 r.rs;
      Table.cell_f r.ratio;
    ]
  in
  "Random-Schedule vs exact optimum (parallel links, exhaustive routing)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

let to_json rows =
  let module Json = Dcn_engine.Json in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("seed", Json.Int r.seed);
             ("n_flows", Json.Int r.n_flows);
             ("exact", Json.float r.exact);
             ("rs", Json.float r.rs);
             ("ratio", Json.float r.ratio);
           ])
       rows)
