(** Experiment E1/E2: reproduction of Figure 2 of the paper.

    Setup (Section V-C): a DCN of 80 switches with 128 servers (a k = 8
    fat-tree), horizon [\[1, 100\]], flow spans uniform over the horizon,
    volumes from N(10, 3), power function [x^alpha] for
    [alpha in {2, 4}], flow counts 40–200.  Three quantities, normalised
    by the fractional lower bound and averaged over seeds:

    - LB: the fractional relaxation (= 1 after normalisation);
    - SP+MCF: shortest-path routing + Most-Critical-First;
    - RS: Random-Schedule.

    Expected shape (paper's Figure 2): RS close to LB and converging as
    the number of flows grows; SP+MCF above RS and increasing; both
    effects stronger for [alpha = 4]. *)

type params = {
  alpha : float;
  sigma : float;  (** 0 in the paper's Figure 2 (pure speed scaling) *)
  fat_tree_k : int;  (** 8 = the paper's network *)
  flow_counts : int list;
  seeds : int list;
  rs_attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
}

val experiment_fw_config : Dcn_mcf.Frank_wolfe.config
(** Frank–Wolfe settings used across experiments: 40 iterations,
    relative gap target 1e-3 — calibrated so a k = 8 fat-tree interval
    solves in well under a second at ~1% optimality. *)

val default_params : alpha:float -> params
(** The paper's setting: k = 8, counts [40; 80; 120; 160; 200], ten
    seeds, [sigma = 0]. *)

val quick_params : alpha:float -> params
(** Smaller network (k = 4), counts up to 60, three seeds — for smoke
    benches and CI.  (At k = 4 the network has only 16 hosts; beyond
    ~60 long-lived flows the virtual-circuit baseline saturates, which
    is interesting but not Figure 2's regime.) *)

type point = {
  n : int;
  lb : float;  (** mean absolute LB energy *)
  sp_mcf : float;  (** mean normalised SP+MCF energy (>= 1 nominally) *)
  rs : float;  (** mean normalised RS energy *)
  rs_refined : float;  (** ablation: RS routing + Most-Critical-First rates *)
  sp_mcf_sd : float;
  rs_sd : float;
  rs_all_feasible : bool;
  rs_deadlines_met : bool;  (** Theorem 4 check through the fluid simulator *)
}

type result = { params : params; points : point list }

val run :
  ?progress:(string -> unit) -> ?pool:Dcn_engine.Pool.t -> params -> result
(** [pool] fans the seeds × flow-counts cross product across worker
    domains; every cell derives its PRNG from its own seed, so the
    result is bit-identical for every pool size.  [progress] may then be
    called from worker domains, out of order. *)

val render : result -> string
(** The figure as a text table (one row per flow count). *)

val to_csv : result -> string
(** Machine-readable form (header + one row per flow count) for
    external plotting: alpha, sigma, k, seeds, n, lb, rs, rs_sd, sp_mcf,
    sp_mcf_sd, rs_refined. *)

val to_json : result -> Dcn_engine.Json.t
(** The series as JSON: [{params, points: [{n, lb, rs_over_lb, ...}]}]
    — the [fig2] section of CLI/bench [--report] files. *)
