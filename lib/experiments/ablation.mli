(** Ablations beyond the paper's Figure 2 (E7 in DESIGN.md).

    [power_down] turns the idle power on ([sigma > 0], the full Eq. 1
    model) and reports how Random-Schedule consolidates traffic onto
    fewer links than shortest-path routing — the power-down half of the
    paper's model that Figure 2 (with [x^alpha] only) does not
    exercise.

    [capacity_stress] binds the link capacity and reports how often the
    randomised rounding needs redraws and whether it ends feasible —
    the failure mode the paper waves at ("repeat the randomized
    rounding ... until feasible").

    [refinement] quantifies the gain of re-running Most-Critical-First
    on Random-Schedule's chosen paths (RS keeps interval-constant link
    rates; DCFS is rate-optimal for fixed routes).

    Every sweep takes an optional [?pool] ({!Dcn_engine.Pool}) that fans
    its independent cells (sweep values, or [ns x seeds] grids) across
    worker domains; each cell derives its PRNG from its own seed, so
    results are bit-identical for every pool size. *)

type power_down_row = {
  sigma : float;
  rs_energy : float;
  rs_idle : float;
  rs_active_links : int;
  sp_energy : float;
  sp_idle : float;
  sp_active_links : int;
}

val power_down :
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  sigmas:float list ->
  unit ->
  power_down_row list
(** Fixed workload on a k = 4 fat-tree, sweeping [sigma]. *)

val render_power_down : power_down_row list -> string

type capacity_row = {
  cap : float;
  feasible : bool;
  attempts_used : int;
  max_rate : float;
}

val capacity_stress :
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  caps:float list ->
  unit ->
  capacity_row list

val render_capacity : capacity_row list -> string

type refinement_row = {
  n : int;
  rs_over_lb : float;
  refined_over_lb : float;
  gain_percent : float;
}

val refinement :
  ?seeds:int list ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  ns:int list ->
  unit ->
  refinement_row list

val render_refinement : refinement_row list -> string

type failure_row = {
  failed_cables : int;
  rs_over_lb : float;  (** RS on the degraded fabric, vs its own LB *)
  sp_over_lb : float;
  lb : float;  (** absolute LB — rises as redundancy disappears *)
}

val failures :
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  counts:int list ->
  unit ->
  failure_row list
(** Fail random switch-to-switch cables of a k = 4 fat-tree (resampled
    until the fabric stays connected) and re-run everything: how the
    algorithms degrade as path redundancy disappears. *)

val render_failures : failure_row list -> string

type admission_row = {
  load : float;
  offered : int;  (** flows offered *)
  acceptance : float;  (** fraction admitted by the online controller *)
  energy : float;  (** energy of the admitted schedule *)
}

val admission :
  ?seed:int ->
  ?alpha:float ->
  ?cap:float ->
  ?pool:Dcn_engine.Pool.t ->
  loads:float list ->
  unit ->
  admission_row list
(** Online arrival with admission control ({!Dcn_core.Online}) on trace
    workloads at increasing load under a finite link capacity: the
    better-never-than-late operating mode of the deadline-flow systems
    the paper builds on. *)

val render_admission : admission_row list -> string

type rate_row = {
  levels : int;
  hold_overhead : float;  (** energy factor when links hold quantized levels *)
  work_overhead : float;  (** factor in the work-preserving model *)
}

val rate_levels :
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  counts:int list ->
  unit ->
  rate_row list
(** Discrete rate ladders (geometric, topped just above the busiest
    fluid rate) applied to a Random-Schedule run: the continuous-speed
    idealisation's hidden cost, shrinking as the ladder gets finer. *)

val render_rate_levels : rate_row list -> string

type split_row = {
  parts : int;
  rs_over_lb : float;
      (** Random-Schedule on the split workload, normalised by the
          (unchanged) fractional LB of the original instance *)
  distinct_paths : int;  (** distinct (src, dst, path) routes actually used *)
}

val splitting :
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  parts:int list ->
  unit ->
  split_row list
(** Section II-B: splitting big flows into sub-flows approximates
    multi-path routing; the ratio should fall toward 1 as parts grow. *)

val render_splitting : split_row list -> string

type lb_row = {
  n : int;
  paper_lb : float;  (** per-interval-density relaxation (the paper's LB) *)
  joint_lb : float;  (** volume-coupled relaxation (certified, weaker constraints) *)
  overstatement : float;  (** paper_lb / joint_lb, >= 1 up to solver tolerance *)
  rs_over_joint : float;  (** RS ratio against the more honest floor *)
}

val lb_tightness :
  ?seeds:int list ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  ns:int list ->
  unit ->
  lb_row list
(** How much does pinning per-interval densities (the paper's LB)
    overstate the true fractional floor? *)

val render_lb : lb_row list -> string

type routing_row = {
  n : int;
  sp_over_lb : float;  (** deterministic shortest paths *)
  ecmp_over_lb : float;  (** random minimum-hop paths (oblivious ECMP/VLB) *)
  ear_over_lb : float;  (** greedy energy-aware routing (online-capable) *)
  rs_routing_over_lb : float;  (** Random-Schedule's optimised routing *)
}

val routing_comparison :
  ?seeds:int list ->
  ?alpha:float ->
  ?pool:Dcn_engine.Pool.t ->
  ns:int list ->
  unit ->
  routing_row list
(** How much of Random-Schedule's win is just "spread the load" (which
    ECMP gets for free) versus actually energy-aware routing?  All three
    normalised by the fractional LB. *)

val render_routing : routing_row list -> string

(** {1 JSON forms}

    One converter per study, for the [ablation] sections of the CLI's
    [--report] files: a list of objects, one per row, field names
    matching the record labels. *)

val power_down_to_json : power_down_row list -> Dcn_engine.Json.t
val capacity_to_json : capacity_row list -> Dcn_engine.Json.t
val refinement_to_json : refinement_row list -> Dcn_engine.Json.t
val failures_to_json : failure_row list -> Dcn_engine.Json.t
val admission_to_json : admission_row list -> Dcn_engine.Json.t
val rate_levels_to_json : rate_row list -> Dcn_engine.Json.t
val splitting_to_json : split_row list -> Dcn_engine.Json.t
val lb_to_json : lb_row list -> Dcn_engine.Json.t
val routing_to_json : routing_row list -> Dcn_engine.Json.t
