(** Experiment E8: Random-Schedule against the exact optimum.

    On instances small enough for exhaustive routing enumeration, how
    far from optimal is the approximation in practice?  (Theorem 6 only
    bounds it by a polynomial in n; the paper's simulation suggests it
    is close to the fractional bound.) *)

type row = {
  seed : int;
  n_flows : int;
  exact : float;
  rs : float;
  ratio : float;  (** rs / exact, >= 1 up to solver tolerance *)
}

val run :
  ?alpha:float -> ?n_flows:int -> ?links:int -> seeds:int list -> unit -> row list
(** Random flows on a parallel-link network ([links], default 3;
    [n_flows], default 4), exact by enumeration. *)

val render : row list -> string

val to_json : row list -> Dcn_engine.Json.t
(** One object per row — the [small_exact] section of [--report] files. *)
