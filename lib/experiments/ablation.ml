module Model = Dcn_power.Model
module Workload = Dcn_flow.Workload
module Prng = Dcn_util.Prng
module Table = Dcn_util.Table
module Schedule = Dcn_sched.Schedule
module Solution = Dcn_core.Solution
module Pool = Dcn_engine.Pool
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

let fw_config = Fig2.experiment_fw_config

let default_pool pool = Option.value pool ~default:Pool.sequential

(* Every study is one experiment stage in the trace. *)
let study name f = Trace.span ("experiment.ablation." ^ name) f

(* Fan [n * seeds] sample grids across the pool and regroup by [n]:
   each cell derives its PRNG from its own seed, so results are
   bit-identical for every pool size. *)
let by_n pool ~ns ~seeds sample finish =
  let cells =
    Array.of_list (List.concat_map (fun n -> List.map (fun s -> (n, s)) seeds) ns)
  in
  let samples = Pool.map pool (fun (n, seed) -> (n, sample ~n ~seed)) cells in
  List.map
    (fun n ->
      finish n
        (Array.to_list samples
        |> List.filter_map (fun (n', s) -> if n' = n then Some s else None)))
    ns

let make_instance ~seed ~n ~alpha ~sigma ~cap =
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Model.make ~sigma ~mu:1. ~alpha ~cap () in
  let rng = Prng.create seed in
  let flows = Workload.paper_random ~rng ~graph ~n () in
  (Dcn_core.Instance.make ~graph ~power ~flows, rng)

type power_down_row = {
  sigma : float;
  rs_energy : float;
  rs_idle : float;
  rs_active_links : int;
  sp_energy : float;
  sp_idle : float;
  sp_active_links : int;
}

let power_down ?(seed = 7) ?(n = 40) ?(alpha = 2.) ?pool ~sigmas () =
  study "power_down" @@ fun () ->
  Pool.map_list (default_pool pool)
    (fun sigma ->
      let inst, rng = make_instance ~seed ~n ~alpha ~sigma ~cap:infinity in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let sp = Dcn_core.Baselines.sp_mcf inst in
      let rs_sched = rs.Solution.schedule in
      let sp_sched = sp.Solution.schedule in
      {
        sigma;
        rs_energy = rs.Solution.energy;
        rs_idle = Schedule.idle_energy rs_sched;
        rs_active_links = List.length (Schedule.active_links rs_sched);
        sp_energy = sp.Solution.energy;
        sp_idle = Schedule.idle_energy sp_sched;
        sp_active_links = List.length (Schedule.active_links sp_sched);
      })
    sigmas

let render_power_down rows =
  let headers =
    [ "sigma"; "RS energy"; "RS idle"; "RS links"; "SP energy"; "SP idle"; "SP links" ]
  in
  let row (r : power_down_row) =
    [
      Table.cell_f ~decimals:1 r.sigma;
      Table.cell_f ~decimals:1 r.rs_energy;
      Table.cell_f ~decimals:1 r.rs_idle;
      string_of_int r.rs_active_links;
      Table.cell_f ~decimals:1 r.sp_energy;
      Table.cell_f ~decimals:1 r.sp_idle;
      string_of_int r.sp_active_links;
    ]
  in
  "Power-down ablation (fat-tree k=4, Eq. 1 with sigma > 0)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type capacity_row = {
  cap : float;
  feasible : bool;
  attempts_used : int;
  max_rate : float;
}

let capacity_stress ?(seed = 11) ?(n = 40) ?(alpha = 2.) ?pool ~caps () =
  study "capacity_stress" @@ fun () ->
  Pool.map_list (default_pool pool)
    (fun cap ->
      let inst, rng = make_instance ~seed ~n ~alpha ~sigma:0. ~cap in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 50; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      {
        cap;
        feasible = rs.Solution.feasible;
        attempts_used = Solution.attempts_used rs;
        max_rate = Schedule.max_link_rate rs.Solution.schedule;
      })
    caps

let render_capacity rows =
  let headers = [ "capacity"; "feasible"; "attempts"; "max link rate" ] in
  let row (r : capacity_row) =
    [
      Table.cell_f ~decimals:1 r.cap;
      (if r.feasible then "yes" else "NO");
      string_of_int r.attempts_used;
      Table.cell_f r.max_rate;
    ]
  in
  "Capacity-stress ablation (randomised-rounding redraw loop)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type refinement_row = {
  n : int;
  rs_over_lb : float;
  refined_over_lb : float;
  gain_percent : float;
}

let refinement ?(seeds = [ 21; 22; 23 ]) ?(alpha = 2.) ?pool ~ns () =
  study "refinement" @@ fun () ->
  by_n (default_pool pool) ~ns ~seeds
    (fun ~n ~seed ->
      let inst, rng = make_instance ~seed ~n ~alpha ~sigma:0. ~cap:infinity in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let refined = Dcn_core.Random_schedule.refine inst rs in
      let lb =
        (Dcn_core.Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      (rs.Solution.energy /. lb, refined.Solution.energy /. lb))
    (fun n samples ->
      let mean xs = Dcn_util.Stats.mean (Array.of_list xs) in
      let rs_over_lb = mean (List.map fst samples) in
      let refined_over_lb = mean (List.map snd samples) in
      {
        n;
        rs_over_lb;
        refined_over_lb;
        gain_percent = 100. *. (1. -. (refined_over_lb /. rs_over_lb));
      })

type failure_row = {
  failed_cables : int;
  rs_over_lb : float;
  sp_over_lb : float;
  lb : float;
}

let failures ?(seed = 91) ?(n = 20) ?(alpha = 2.) ?pool ~counts () =
  study "failures" @@ fun () ->
  let base = Dcn_topology.Builders.fat_tree 4 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha () in
  (* Only switch-to-switch cables may fail (a failed host uplink just
     disconnects the host, which is not the interesting case). *)
  let module G = Dcn_topology.Graph in
  let candidate_cables =
    List.filter
      (fun c ->
        let l = 2 * c in
        (not (G.is_host base (G.link_src base l))) && not (G.is_host base (G.link_dst base l)))
      (List.init (G.num_cables base) Fun.id)
  in
  Pool.map_list (default_pool pool)
    (fun count ->
      let rng = Prng.create (seed + count) in
      let rec degrade attempts =
        if attempts = 0 then base
        else begin
          let pool = Array.of_list candidate_cables in
          Prng.shuffle rng pool;
          let victims = Array.to_list (Array.sub pool 0 (min count (Array.length pool))) in
          let g = G.remove_cables base ~cables:(List.map (fun c -> 2 * c) victims) in
          if G.connected g then g else degrade (attempts - 1)
        end
      in
      let graph = degrade 50 in
      let wrng = Prng.create seed in
      let flows = Workload.paper_random ~rng:wrng ~graph ~n () in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let rng' = Prng.create (seed + 1000 + count) in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng:rng' ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let lb =
        (Dcn_core.Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      let sp = Dcn_core.Baselines.sp_mcf inst in
      {
        failed_cables = count;
        rs_over_lb = rs.Solution.energy /. lb;
        sp_over_lb = sp.Solution.energy /. lb;
        lb;
      })
    counts

let render_failures rows =
  let headers = [ "failed cables"; "LB"; "RS/LB"; "SP+MCF/LB" ] in
  let row (r : failure_row) =
    [
      string_of_int r.failed_cables;
      Table.cell_f ~decimals:1 r.lb;
      Table.cell_f r.rs_over_lb;
      Table.cell_f r.sp_over_lb;
    ]
  in
  "Failure-resilience ablation (random switch-to-switch cable failures)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type admission_row = {
  load : float;
  offered : int;
  acceptance : float;
  energy : float;
}

let admission ?(seed = 81) ?(alpha = 2.) ?(cap = 6.) ?pool ~loads () =
  study "admission" @@ fun () ->
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Model.make ~sigma:0. ~mu:1. ~alpha ~cap () in
  Pool.map_list (default_pool pool)
    (fun load ->
      let rng = Prng.create seed in
      let flows = Workload.trace ~load ~rng ~graph ~horizon:(0., 60.) () in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let online =
        Dcn_core.Online.solve ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      {
        load;
        offered = List.length flows;
        acceptance = Dcn_core.Solution.acceptance_rate online;
        energy = online.Dcn_core.Solution.energy;
      })
    loads

let render_admission rows =
  let headers = [ "load"; "offered"; "acceptance"; "energy" ] in
  let row (r : admission_row) =
    [
      Table.cell_f ~decimals:1 r.load;
      string_of_int r.offered;
      Table.cell_f r.acceptance;
      Table.cell_f ~decimals:1 r.energy;
    ]
  in
  "Online admission control (finite capacity, better-never-than-late)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type rate_row = {
  levels : int;
  hold_overhead : float;
  work_overhead : float;
}

let rate_levels ?(seed = 61) ?(n = 20) ?(alpha = 2.) ?pool ~counts () =
  study "rate_levels" @@ fun () ->
  let inst, rng = make_instance ~seed ~n ~alpha ~sigma:0. ~cap:infinity in
  let rs =
    Dcn_core.Random_schedule.solve
      ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
      ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ?pool ~rng ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  let sched = rs.Solution.schedule in
  let top = 2. *. Schedule.max_link_rate sched in
  List.map
    (fun count ->
      let ladder =
        Dcn_power.Discrete.geometric inst.Dcn_core.Instance.power ~count ~top
      in
      let q = Dcn_sched.Quantize.report ladder sched in
      {
        levels = count;
        hold_overhead = q.Dcn_sched.Quantize.hold_overhead;
        work_overhead = q.Dcn_sched.Quantize.work_overhead;
      })
    counts

let render_rate_levels rows =
  let headers = [ "levels"; "hold overhead"; "work overhead" ] in
  let row (r : rate_row) =
    [
      string_of_int r.levels;
      Table.cell_f r.hold_overhead;
      Table.cell_f r.work_overhead;
    ]
  in
  "Discrete-rate ablation (geometric speed ladders vs continuous scaling)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type split_row = {
  parts : int;
  rs_over_lb : float;
  distinct_paths : int;
}

let splitting ?(seed = 51) ?(n = 20) ?(alpha = 2.) ?pool ~parts () =
  study "splitting" @@ fun () ->
  let inst0, _ = make_instance ~seed ~n ~alpha ~sigma:0. ~cap:infinity in
  (* The LB is invariant under splitting (identical per-interval
     demands), so the original instance's bound normalises all rows. *)
  let lb =
    (Dcn_core.Lower_bound.compute ~fw_config inst0).Dcn_core.Lower_bound.value
  in
  Pool.map_list (default_pool pool)
    (fun p ->
      let flows = Dcn_flow.Split.workload inst0.Dcn_core.Instance.flows ~parts:p in
      let inst =
        Dcn_core.Instance.make ~graph:inst0.Dcn_core.Instance.graph
          ~power:inst0.Dcn_core.Instance.power ~flows
      in
      let rng = Prng.create (seed + p) in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let distinct =
        List.length
          (List.sort_uniq compare
             (List.map
                (fun (id, path) ->
                  let f = Option.get (Dcn_core.Instance.find_flow_opt inst id) in
                  (f.Dcn_flow.Flow.src, f.Dcn_flow.Flow.dst, path))
                (Solution.paths rs)))
      in
      {
        parts = p;
        rs_over_lb = rs.Solution.energy /. lb;
        distinct_paths = distinct;
      })
    parts

let render_splitting rows =
  let headers = [ "parts"; "RS/LB"; "distinct routes" ] in
  let row (r : split_row) =
    [ string_of_int r.parts; Table.cell_f r.rs_over_lb; string_of_int r.distinct_paths ]
  in
  "Flow-splitting ablation (Section II-B multi-path emulation)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type lb_row = {
  n : int;
  paper_lb : float;
  joint_lb : float;
  overstatement : float;
  rs_over_joint : float;
}

let lb_tightness ?(seeds = [ 41; 42; 43 ]) ?(alpha = 2.) ?pool ~ns () =
  study "lb_tightness" @@ fun () ->
  by_n (default_pool pool) ~ns ~seeds
    (fun ~n ~seed ->
      let inst, rng = make_instance ~seed ~n ~alpha ~sigma:0. ~cap:infinity in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let paper =
        (Dcn_core.Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      let joint = (Dcn_core.Joint_relaxation.solve inst).Dcn_core.Joint_relaxation.lb in
      (paper, joint, rs.Solution.energy))
    (fun n samples ->
      let mean f = Dcn_util.Stats.mean (Array.of_list (List.map f samples)) in
      let paper_lb = mean (fun (p, _, _) -> p) in
      let joint_lb = mean (fun (_, j, _) -> j) in
      {
        n;
        paper_lb;
        joint_lb;
        overstatement = paper_lb /. joint_lb;
        rs_over_joint = mean (fun (_, j, e) -> e /. j);
      })

let render_lb rows =
  let headers = [ "flows"; "paper LB"; "joint LB"; "paper/joint"; "RS/joint LB" ] in
  let row (r : lb_row) =
    [
      string_of_int r.n;
      Table.cell_f ~decimals:1 r.paper_lb;
      Table.cell_f ~decimals:1 r.joint_lb;
      Table.cell_f r.overstatement;
      Table.cell_f r.rs_over_joint;
    ]
  in
  "Lower-bound tightness (per-interval densities vs volume-coupled relaxation)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

type routing_row = {
  n : int;
  sp_over_lb : float;
  ecmp_over_lb : float;
  ear_over_lb : float;
  rs_routing_over_lb : float;
}

let routing_comparison ?(seeds = [ 31; 32; 33 ]) ?(alpha = 2.) ?pool ~ns () =
  study "routing_comparison" @@ fun () ->
  by_n (default_pool pool) ~ns ~seeds
    (fun ~n ~seed ->
      let inst, rng = make_instance ~seed ~n ~alpha ~sigma:0. ~cap:infinity in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let lb =
        (Dcn_core.Lower_bound.of_relaxation (Option.get (Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      let sp = Dcn_core.Baselines.sp_mcf inst in
      let ecmp = Dcn_core.Baselines.ecmp_mcf ~rng inst in
      let ear =
        Dcn_core.Greedy_ear.solve ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      ( sp.Solution.energy /. lb,
        ecmp.Solution.energy /. lb,
        ear.Dcn_core.Solution.energy /. lb,
        rs.Solution.energy /. lb ))
    (fun n samples ->
      let mean f = Dcn_util.Stats.mean (Array.of_list (List.map f samples)) in
      {
        n;
        sp_over_lb = mean (fun (a, _, _, _) -> a);
        ecmp_over_lb = mean (fun (_, b, _, _) -> b);
        ear_over_lb = mean (fun (_, _, c, _) -> c);
        rs_routing_over_lb = mean (fun (_, _, _, d) -> d);
      })

let render_routing rows =
  let headers = [ "flows"; "SP+MCF/LB"; "ECMP+MCF/LB"; "Greedy-EAR/LB"; "RS/LB" ] in
  let row (r : routing_row) =
    [
      string_of_int r.n;
      Table.cell_f r.sp_over_lb;
      Table.cell_f r.ecmp_over_lb;
      Table.cell_f r.ear_over_lb;
      Table.cell_f r.rs_routing_over_lb;
    ]
  in
  "Routing ablation (SP vs ECMP vs greedy energy-aware vs Random-Schedule)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

let render_refinement rows =
  let headers = [ "flows"; "RS/LB"; "RS+refine/LB"; "gain %" ] in
  let row (r : refinement_row) =
    [
      string_of_int r.n;
      Table.cell_f r.rs_over_lb;
      Table.cell_f r.refined_over_lb;
      Table.cell_f ~decimals:1 r.gain_percent;
    ]
  in
  "Refinement ablation (Most-Critical-First on Random-Schedule's routes)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()

(* JSON forms of the study rows — the [ablation] sections of [--report]
   files. *)

let rows_to_json row rows = Json.List (List.map row rows)

let power_down_to_json =
  rows_to_json (fun (r : power_down_row) ->
      Json.Obj
        [
          ("sigma", Json.float r.sigma);
          ("rs_energy", Json.float r.rs_energy);
          ("rs_idle", Json.float r.rs_idle);
          ("rs_active_links", Json.Int r.rs_active_links);
          ("sp_energy", Json.float r.sp_energy);
          ("sp_idle", Json.float r.sp_idle);
          ("sp_active_links", Json.Int r.sp_active_links);
        ])

let capacity_to_json =
  rows_to_json (fun (r : capacity_row) ->
      Json.Obj
        [
          ("cap", Json.float r.cap);
          ("feasible", Json.Bool r.feasible);
          ("attempts_used", Json.Int r.attempts_used);
          ("max_rate", Json.float r.max_rate);
        ])

let refinement_to_json =
  rows_to_json (fun (r : refinement_row) ->
      Json.Obj
        [
          ("n", Json.Int r.n);
          ("rs_over_lb", Json.float r.rs_over_lb);
          ("refined_over_lb", Json.float r.refined_over_lb);
          ("gain_percent", Json.float r.gain_percent);
        ])

let failures_to_json =
  rows_to_json (fun (r : failure_row) ->
      Json.Obj
        [
          ("failed_cables", Json.Int r.failed_cables);
          ("rs_over_lb", Json.float r.rs_over_lb);
          ("sp_over_lb", Json.float r.sp_over_lb);
          ("lb", Json.float r.lb);
        ])

let admission_to_json =
  rows_to_json (fun (r : admission_row) ->
      Json.Obj
        [
          ("load", Json.float r.load);
          ("offered", Json.Int r.offered);
          ("acceptance", Json.float r.acceptance);
          ("energy", Json.float r.energy);
        ])

let rate_levels_to_json =
  rows_to_json (fun (r : rate_row) ->
      Json.Obj
        [
          ("levels", Json.Int r.levels);
          ("hold_overhead", Json.float r.hold_overhead);
          ("work_overhead", Json.float r.work_overhead);
        ])

let splitting_to_json =
  rows_to_json (fun (r : split_row) ->
      Json.Obj
        [
          ("parts", Json.Int r.parts);
          ("rs_over_lb", Json.float r.rs_over_lb);
          ("distinct_paths", Json.Int r.distinct_paths);
        ])

let lb_to_json =
  rows_to_json (fun (r : lb_row) ->
      Json.Obj
        [
          ("n", Json.Int r.n);
          ("paper_lb", Json.float r.paper_lb);
          ("joint_lb", Json.float r.joint_lb);
          ("overstatement", Json.float r.overstatement);
          ("rs_over_joint", Json.float r.rs_over_joint);
        ])

let routing_to_json =
  rows_to_json (fun (r : routing_row) ->
      Json.Obj
        [
          ("n", Json.Int r.n);
          ("sp_over_lb", Json.float r.sp_over_lb);
          ("ecmp_over_lb", Json.float r.ecmp_over_lb);
          ("ear_over_lb", Json.float r.ear_over_lb);
          ("rs_routing_over_lb", Json.float r.rs_routing_over_lb);
        ])
