module Gadgets = Dcn_core.Gadgets
module Prng = Dcn_util.Prng
module Table = Dcn_util.Table
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type three_partition_report = {
  m : int;
  b : int;
  closed_form : float;
  exact : float;
  rs : float;
  rs_feasible : bool;
  rs_over_opt : float;
}

let three_partition ?(seed = 3) ?(m = 2) ?(b = 20) ?(alpha = 2.) () =
  Trace.span "experiment.gadget.three_partition"
    ~fields:[ ("m", Json.Int m); ("b", Json.Int b) ]
  @@ fun () ->
  let rng = Prng.create seed in
  let tp = Gadgets.solvable_three_partition ~m ~b ~rng in
  (* m + 1 links keep the exact solver's path enumeration tractable
     while still allowing a wrong (energy-wasting) spread. *)
  let inst = Gadgets.three_partition_instance ~alpha ~links:(m + 1) tp in
  let closed_form = Gadgets.three_partition_opt_energy ~alpha tp in
  let exact = (Dcn_core.Exact.search ~max_combinations:100_000 inst).Dcn_core.Exact.energy in
  let rs =
    Dcn_core.Random_schedule.solve
      ~config:{ Dcn_core.Random_schedule.attempts = 50; fw_config = Fig2.experiment_fw_config }
      ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  {
    m = tp.Gadgets.m;
    b = tp.Gadgets.b;
    closed_form;
    exact;
    rs = rs.Dcn_core.Solution.energy;
    rs_feasible = rs.Dcn_core.Solution.feasible;
    rs_over_opt = rs.Dcn_core.Solution.energy /. closed_form;
  }

let render_three_partition r =
  let headers = [ "quantity"; "value" ] in
  let rows =
    [
      [ "m (subsets)"; string_of_int r.m ];
      [ "B (subset sum)"; string_of_int r.b ];
      [ "closed form m*alpha*mu*B^alpha"; Table.cell_f ~decimals:1 r.closed_form ];
      [ "exact optimum (enumeration)"; Table.cell_f ~decimals:1 r.exact ];
      [ "Random-Schedule"; Table.cell_f ~decimals:1 r.rs ];
      [ "RS feasible"; (if r.rs_feasible then "yes" else "NO") ];
      [ "RS / OPT"; Table.cell_f r.rs_over_opt ];
    ]
  in
  "Theorem 2 gadget (3-partition reduction, solvable instance)\n"
  ^ Table.render ~headers ~rows ()

type partition_report = {
  total : int;
  yes_energy : float;
  exact : float;
  inapprox_ratio : float;
}

let partition ?(alpha = 2.) ?(integers = [ 3; 4; 5; 3; 4; 5 ]) () =
  Trace.span "experiment.gadget.partition"
    ~fields:[ ("integers", Json.Int (List.length integers)) ]
  @@ fun () ->
  let p = Gadgets.make_partition ~integers in
  let inst = Gadgets.partition_instance ~alpha ~links:4 p in
  let exact = (Dcn_core.Exact.search ~max_combinations:100_000 inst).Dcn_core.Exact.energy in
  {
    total = p.Gadgets.total;
    yes_energy = Gadgets.partition_yes_energy ~alpha p;
    exact;
    inapprox_ratio = Gadgets.inapprox_ratio ~alpha;
  }

let render_partition r =
  let headers = [ "quantity"; "value" ] in
  let rows =
    [
      [ "sum of integers (B)"; string_of_int r.total ];
      [ "yes-instance energy 2(sigma + mu C^alpha)"; Table.cell_f ~decimals:1 r.yes_energy ];
      [ "exact optimum (enumeration)"; Table.cell_f ~decimals:1 r.exact ];
      [ "Theorem 3 inapprox ratio"; Table.cell_f r.inapprox_ratio ];
    ]
  in
  "Theorem 3 gadget (partition reduction, C = B/2)\n" ^ Table.render ~headers ~rows ()

let three_partition_to_json r =
  Json.Obj
    [
      ("m", Json.Int r.m);
      ("b", Json.Int r.b);
      ("closed_form", Json.float r.closed_form);
      ("exact", Json.float r.exact);
      ("rs", Json.float r.rs);
      ("rs_feasible", Json.Bool r.rs_feasible);
      ("rs_over_opt", Json.float r.rs_over_opt);
    ]

let partition_to_json r =
  Json.Obj
    [
      ("total", Json.Int r.total);
      ("yes_energy", Json.float r.yes_energy);
      ("exact", Json.float r.exact);
      ("inapprox_ratio", Json.float r.inapprox_ratio);
    ]
