(** Experiments E4/E5: the hardness gadgets, executed.

    [three_partition] builds a solvable Theorem 2 instance, solves it
    exactly (path enumeration × Most-Critical-First) and with
    Random-Schedule, and compares both to the closed-form optimum
    [m * alpha * mu * B^alpha].  [partition] reports the Theorem 3
    inapproximability ratio alongside the yes-instance optimum, checked
    the same way. *)

type three_partition_report = {
  m : int;
  b : int;
  closed_form : float;  (** m * alpha * mu * B^alpha *)
  exact : float;  (** exhaustive optimum *)
  rs : float;  (** Random-Schedule energy *)
  rs_feasible : bool;
  rs_over_opt : float;
}

val three_partition :
  ?seed:int -> ?m:int -> ?b:int -> ?alpha:float -> unit -> three_partition_report

val render_three_partition : three_partition_report -> string

type partition_report = {
  total : int;
  yes_energy : float;  (** 2 sigma + 2 mu C^alpha *)
  exact : float;
  inapprox_ratio : float;  (** Theorem 3's lower bound for this alpha *)
}

val partition : ?alpha:float -> ?integers:int list -> unit -> partition_report

val render_partition : partition_report -> string

val three_partition_to_json : three_partition_report -> Dcn_engine.Json.t
val partition_to_json : partition_report -> Dcn_engine.Json.t
(** JSON forms for the [gadgets] section of [--report] files. *)
