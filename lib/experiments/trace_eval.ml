module Table = Dcn_util.Table
module Prng = Dcn_util.Prng

type row = {
  load : float;
  n_flows : int;
  sp : float;
  ecmp : float;
  ear : float;
  rs : float;
  deadlines_met : bool;
}

let run ?(alpha = 2.) ?(seed = 77) ?(horizon = 60.) ~loads () =
  let graph = Dcn_topology.Builders.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:4 in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha () in
  List.map
    (fun load ->
      let rng = Prng.create seed in
      let flows = Dcn_flow.Workload.trace ~load ~rng ~graph ~horizon:(0., horizon) () in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:
            { Dcn_core.Random_schedule.attempts = 20; fw_config = Fig2.experiment_fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let lb =
        (Dcn_core.Lower_bound.of_relaxation
           (Option.get (Dcn_core.Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      let sp = Dcn_core.Baselines.sp_mcf inst in
      let ecmp = Dcn_core.Baselines.ecmp_mcf ~rng inst in
      let ear =
        Dcn_core.Greedy_ear.solve ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let sim = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
      {
        load;
        n_flows = List.length flows;
        sp = sp.Dcn_core.Solution.energy /. lb;
        ecmp = ecmp.Dcn_core.Solution.energy /. lb;
        ear = ear.Dcn_core.Solution.energy /. lb;
        rs = rs.Dcn_core.Solution.energy /. lb;
        deadlines_met = sim.Dcn_sim.Fluid.all_deadlines_met;
      })
    loads

let render rows =
  let headers =
    [ "load"; "flows"; "SP+MCF/LB"; "ECMP+MCF/LB"; "Greedy-EAR/LB"; "RS/LB"; "deadlines" ]
  in
  let row r =
    [
      Table.cell_f ~decimals:1 r.load;
      string_of_int r.n_flows;
      Table.cell_f r.sp;
      Table.cell_f r.ecmp;
      Table.cell_f r.ear;
      Table.cell_f r.rs;
      (if r.deadlines_met then "met" else "MISSED");
    ]
  in
  "Production-like traces (Poisson arrivals, bounded-Pareto sizes, leaf-spine)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()
