module Prng = Dcn_util.Prng
module Table = Dcn_util.Table

type row = {
  n : int;
  lambda : float;
  measured : float;
  theorem3_floor : float;
  theorem6_term : float;
}

let run ?(alpha = 2.) ?(seed = 5) ~ns () =
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.make ~sigma:0. ~mu:1. ~alpha () in
  List.map
    (fun n ->
      let rng = Prng.create (seed + n) in
      let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n () in
      let inst = Dcn_core.Instance.make ~graph ~power ~flows in
      let rs =
        Dcn_core.Random_schedule.solve
          ~config:{ Dcn_core.Random_schedule.attempts = 20; fw_config = Fig2.experiment_fw_config }
          ~instance:inst
          ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
          ~deadline:Dcn_engine.Deadline.never ()
      in
      let lb =
        (Dcn_core.Lower_bound.of_relaxation
           (Option.get (Dcn_core.Solution.relaxation rs)))
          .Dcn_core.Lower_bound.value
      in
      let bounds = Dcn_core.Bounds.compute inst in
      {
        n;
        lambda = bounds.Dcn_core.Bounds.lambda;
        measured = rs.Dcn_core.Solution.energy /. lb;
        theorem3_floor = bounds.Dcn_core.Bounds.theorem3;
        theorem6_term = bounds.Dcn_core.Bounds.theorem6;
      })
    ns

let render rows =
  let headers = [ "flows"; "lambda"; "Thm 3 floor"; "measured RS/LB"; "Thm 6 term" ] in
  let row r =
    [
      string_of_int r.n;
      Table.cell_f ~decimals:1 r.lambda;
      Table.cell_f r.theorem3_floor;
      Table.cell_f r.measured;
      Printf.sprintf "%.3g" r.theorem6_term;
    ]
  in
  "Worst-case bounds vs measured approximation (Theorems 3 and 6)\n"
  ^ Table.render ~headers ~rows:(List.map row rows) ()
