module Model = Dcn_power.Model
module Workload = Dcn_flow.Workload
module Prng = Dcn_util.Prng
module Stats = Dcn_util.Stats
module Table = Dcn_util.Table
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type params = {
  alpha : float;
  sigma : float;
  fat_tree_k : int;
  flow_counts : int list;
  seeds : int list;
  rs_attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
}

let experiment_fw_config =
  { Dcn_mcf.Frank_wolfe.default_config with max_iters = 40; gap_tol = 1e-3; line_search_iters = 24 }

let default_params ~alpha =
  {
    alpha;
    sigma = 0.;
    fat_tree_k = 8;
    flow_counts = [ 40; 80; 120; 160; 200 ];
    seeds = List.init 10 (fun i -> 1000 + i);
    rs_attempts = 20;
    fw_config = experiment_fw_config;
  }

let quick_params ~alpha =
  {
    (default_params ~alpha) with
    fat_tree_k = 4;
    flow_counts = [ 20; 40; 60 ];
    seeds = [ 1001; 1002; 1003 ];
  }

type point = {
  n : int;
  lb : float;
  sp_mcf : float;
  rs : float;
  rs_refined : float;
  sp_mcf_sd : float;
  rs_sd : float;
  rs_all_feasible : bool;
  rs_deadlines_met : bool;
}

type result = { params : params; points : point list }

type run_sample = {
  s_lb : float;
  s_sp : float;
  s_rs : float;
  s_refined : float;
  s_feasible : bool;
  s_deadlines : bool;
}

let run_one params ~graph ~n ~seed =
  let power = Model.make ~sigma:params.sigma ~mu:1. ~alpha:params.alpha () in
  let rng = Prng.create seed in
  let flows = Workload.paper_random ~rng ~graph ~n () in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  let rs_config =
    { Dcn_core.Random_schedule.attempts = params.rs_attempts; fw_config = params.fw_config }
  in
  let rs =
    Dcn_core.Random_schedule.solve ~config:rs_config ~instance:inst
      ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
      ~deadline:Dcn_engine.Deadline.never ()
  in
  let relax = Option.get (Dcn_core.Solution.relaxation rs) in
  let lb = Dcn_core.Lower_bound.of_relaxation relax in
  let sp = Dcn_core.Baselines.sp_mcf inst in
  let refined = Dcn_core.Random_schedule.refine inst rs in
  let sim = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
  {
    s_lb = lb.Dcn_core.Lower_bound.value;
    s_sp = sp.Dcn_core.Solution.energy;
    s_rs = rs.Dcn_core.Solution.energy;
    s_refined = refined.Dcn_core.Solution.energy;
    s_feasible = rs.Dcn_core.Solution.feasible;
    s_deadlines = sim.Dcn_sim.Fluid.all_deadlines_met;
  }

let run ?(progress = fun _ -> ()) ?(pool = Dcn_engine.Pool.sequential) params =
  Dcn_obs.Stage.time "experiments.fig2" @@ fun () ->
  Trace.span "experiment.fig2"
    ~fields:
      [
        ("alpha", Json.float params.alpha);
        ("fat_tree_k", Json.Int params.fat_tree_k);
        ("seeds", Json.Int (List.length params.seeds));
        ("flow_counts", Json.List (List.map (fun n -> Json.Int n) params.flow_counts));
      ]
  @@ fun () ->
  let graph = Dcn_topology.Builders.fat_tree params.fat_tree_k in
  (* Every (flow count, seed) cell is an independent end-to-end solve
     with its own PRNG: fan the whole cross product across the pool and
     regroup by flow count afterwards, preserving order. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun n -> List.map (fun seed -> (n, seed)) params.seeds)
         params.flow_counts)
  in
  let samples =
    Dcn_engine.Pool.map pool
      (fun (n, seed) ->
        progress (Printf.sprintf "fig2 alpha=%g n=%d seed=%d" params.alpha n seed);
        if Trace.on () then
          Trace.event "fig2.cell"
            ~fields:[ ("n", Json.Int n); ("seed", Json.Int seed) ];
        ((n, seed), run_one params ~graph ~n ~seed))
      cells
  in
  let points =
    List.map
      (fun n ->
        let samples =
          Array.to_list samples
          |> List.filter_map (fun ((n', _), s) -> if n' = n then Some s else None)
        in
        let arr f = Array.of_list (List.map f samples) in
        let norm f = arr (fun s -> f s /. s.s_lb) in
        let sp_norm = norm (fun s -> s.s_sp) in
        let rs_norm = norm (fun s -> s.s_rs) in
        let refined_norm = norm (fun s -> s.s_refined) in
        {
          n;
          lb = Stats.mean (arr (fun s -> s.s_lb));
          sp_mcf = Stats.mean sp_norm;
          rs = Stats.mean rs_norm;
          rs_refined = Stats.mean refined_norm;
          sp_mcf_sd = Stats.stddev sp_norm;
          rs_sd = Stats.stddev rs_norm;
          rs_all_feasible = List.for_all (fun s -> s.s_feasible) samples;
          rs_deadlines_met = List.for_all (fun s -> s.s_deadlines) samples;
        })
      params.flow_counts
  in
  { params; points }

let render result =
  let headers =
    [ "flows"; "LB"; "RS/LB"; "sd"; "SP+MCF/LB"; "sd"; "RS+refine/LB"; "feasible"; "deadlines" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          Table.cell_f ~decimals:1 p.lb;
          Table.cell_f p.rs;
          Table.cell_f p.rs_sd;
          Table.cell_f p.sp_mcf;
          Table.cell_f p.sp_mcf_sd;
          Table.cell_f p.rs_refined;
          (if p.rs_all_feasible then "yes" else "NO");
          (if p.rs_deadlines_met then "met" else "MISSED");
        ])
      result.points
  in
  Printf.sprintf
    "Figure 2 (alpha = %g, sigma = %g, fat-tree k = %d, %d seeds)\nEnergies normalised by the fractional lower bound.\n%s"
    result.params.alpha result.params.sigma result.params.fat_tree_k
    (List.length result.params.seeds)
    (Table.render ~headers ~rows ())

let to_json result =
  let p = result.params in
  Json.Obj
    [
      ( "params",
        Json.Obj
          [
            ("alpha", Json.float p.alpha);
            ("sigma", Json.float p.sigma);
            ("fat_tree_k", Json.Int p.fat_tree_k);
            ("flow_counts", Json.List (List.map (fun n -> Json.Int n) p.flow_counts));
            ("seeds", Json.List (List.map (fun s -> Json.Int s) p.seeds));
            ("rs_attempts", Json.Int p.rs_attempts);
          ] );
      ( "points",
        Json.List
          (List.map
             (fun pt ->
               Json.Obj
                 [
                   ("n", Json.Int pt.n);
                   ("lb", Json.float pt.lb);
                   ("rs_over_lb", Json.float pt.rs);
                   ("rs_sd", Json.float pt.rs_sd);
                   ("sp_mcf_over_lb", Json.float pt.sp_mcf);
                   ("sp_mcf_sd", Json.float pt.sp_mcf_sd);
                   ("rs_refined_over_lb", Json.float pt.rs_refined);
                   ("rs_all_feasible", Json.Bool pt.rs_all_feasible);
                   ("rs_deadlines_met", Json.Bool pt.rs_deadlines_met);
                 ])
             result.points) );
    ]

let to_csv result =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "alpha,sigma,k,seeds,n,lb,rs,rs_sd,sp_mcf,sp_mcf_sd,rs_refined\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%g,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
           result.params.alpha result.params.sigma result.params.fat_tree_k
           (List.length result.params.seeds)
           p.n p.lb p.rs p.rs_sd p.sp_mcf p.sp_mcf_sd p.rs_refined))
    result.points;
  Buffer.contents buf
