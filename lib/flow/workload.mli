(** Workload generators.

    [paper_random] reproduces the traffic of the paper's numerical
    section: endpoints drawn uniformly from the hosts, release times and
    deadlines uniform over the horizon, volumes from N(10, 3) resampled
    to be positive.  The remaining generators model the application
    patterns the paper's introduction motivates (partition–aggregate
    search traffic, MapReduce shuffles, ...) for the example programs
    and robustness tests. *)

type spec = {
  horizon : float * float;  (** [(T0, T1)], default (1, 100) as in the paper *)
  volume_mean : float;  (** default 10 *)
  volume_stddev : float;  (** default 3 *)
  min_span : float;
      (** spans shorter than this are resampled, keeping densities (and
          hence required rates) bounded; default 1 *)
}

val default_spec : spec

val paper_random :
  ?spec:spec -> rng:Dcn_util.Prng.t -> graph:Dcn_topology.Graph.t -> n:int -> unit -> Flow.t list
(** [n] flows between distinct random hosts.  @raise Invalid_argument if
    the graph has fewer than two hosts or [n < 0]. *)

val all_to_all :
  ?volume:float ->
  ?horizon:float * float ->
  graph:Dcn_topology.Graph.t ->
  unit ->
  Flow.t list
(** One flow per ordered host pair, all sharing the horizon as span.
    Volume defaults to 10. *)

val incast_grouped :
  ?volume:float ->
  ?horizon:float * float ->
  ?job:int ->
  ?first_flow_id:int ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  sources:int ->
  unit ->
  int * Flow.t list
(** One partition–aggregate {e job}: the job id (default 0) together
    with its member flows — [sources] distinct random hosts all sending
    to one random aggregator within a common deadline.  Member ids start
    at [first_flow_id] (default 0), so several jobs can share one trace
    with globally unique flow ids.  This is the membership a coflow
    layer groups by construction; {!incast} is the flat view.
    @raise Invalid_argument if the graph has fewer than [sources + 1]
    hosts. *)

val incast :
  ?volume:float ->
  ?horizon:float * float ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  sources:int ->
  unit ->
  Flow.t list
(** Partition–aggregate: [sources] distinct random hosts all send to one
    random aggregator host within a common deadline — the
    request/response pattern of Section I.  Exactly
    [snd (incast_grouped ...)].  @raise Invalid_argument if the graph
    has fewer than [sources + 1] hosts. *)

val shuffle_grouped :
  ?volume:float ->
  ?horizon:float * float ->
  ?job:int ->
  ?first_flow_id:int ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  mappers:int ->
  reducers:int ->
  unit ->
  int * Flow.t list
(** One MapReduce shuffle {e job}: the job id (default 0) together with
    its [mappers * reducers] member flows, ids starting at
    [first_flow_id].  The membership a coflow layer groups by
    construction; {!shuffle} is the flat view.  @raise Invalid_argument
    if the graph has fewer than [mappers + reducers] hosts. *)

val shuffle :
  ?volume:float ->
  ?horizon:float * float ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  mappers:int ->
  reducers:int ->
  unit ->
  Flow.t list
(** MapReduce shuffle: every one of [mappers] random hosts sends to every
    one of [reducers] other random hosts.  Exactly
    [snd (shuffle_grouped ...)].  @raise Invalid_argument if the
    graph has fewer than [mappers + reducers] hosts. *)

val stride :
  ?volume:float ->
  ?horizon:float * float ->
  graph:Dcn_topology.Graph.t ->
  stride:int ->
  unit ->
  Flow.t list
(** Host [i] sends to host [(i + stride) mod H] — the classic
    cross-section stress pattern.  @raise Invalid_argument if
    [stride mod H = 0]. *)

val trace :
  ?load:float ->
  ?pareto_shape:float ->
  ?mean_volume:float ->
  ?mean_slack:float ->
  ?diurnal:float ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  horizon:float * float ->
  unit ->
  Flow.t list
(** Synthetic production-like trace: Poisson arrivals at rate
    [load * hosts / mean_inter] over the horizon, heavy-tailed
    (bounded-Pareto) volumes with the given [pareto_shape] (default 1.5 —
    the mice-and-elephants mix measured in data centers), and deadlines
    at an exponential slack beyond the minimum transfer time implied by
    a unit-rate transfer of [volume] (so big flows get proportionally
    longer spans).  [load] (default 1.0) scales the arrival rate;
    [diurnal] in [\[0, 1\]] (default 0) modulates it sinusoidally over
    one period spanning the horizon — the day/night swing that
    energy-saving papers exploit.  Deadlines are clipped to the horizon;
    flows that would not fit are dropped, so the result may be slightly
    shorter than the nominal count. *)

val staged :
  ?volume:float ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  stages:int ->
  flows_per_stage:int ->
  stage_length:float ->
  unit ->
  Flow.t list
(** [stages] back-to-back waves of random-pair flows, wave [s] spanning
    [\[s*L, (s+1)*L\]] — a coflow-like batch arrival process. *)
