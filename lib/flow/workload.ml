module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph

type spec = {
  horizon : float * float;
  volume_mean : float;
  volume_stddev : float;
  min_span : float;
}

let default_spec =
  { horizon = (1., 100.); volume_mean = 10.; volume_stddev = 3.; min_span = 1. }

let check_hosts graph needed =
  let hosts = Graph.hosts graph in
  if Array.length hosts < needed then
    invalid_arg (Printf.sprintf "Workload: graph has %d hosts, need %d"
                   (Array.length hosts) needed);
  hosts

let distinct_pair rng hosts =
  let src = Prng.pick rng hosts in
  let rec draw () =
    let dst = Prng.pick rng hosts in
    if dst = src then draw () else dst
  in
  (src, draw ())

let random_span rng ~horizon:(t0, t1) ~min_span =
  if t1 -. t0 < min_span then invalid_arg "Workload: horizon shorter than min_span";
  let rec draw () =
    let a = Prng.uniform rng ~lo:t0 ~hi:t1 in
    let b = Prng.uniform rng ~lo:t0 ~hi:t1 in
    let r = Float.min a b and d = Float.max a b in
    if d -. r >= min_span then (r, d) else draw ()
  in
  draw ()

let paper_random ?(spec = default_spec) ~rng ~graph ~n () =
  if n < 0 then invalid_arg "Workload.paper_random: n < 0";
  let hosts = check_hosts graph 2 in
  List.init n (fun id ->
      let src, dst = distinct_pair rng hosts in
      let release, deadline = random_span rng ~horizon:spec.horizon ~min_span:spec.min_span in
      let volume =
        Prng.gaussian_positive rng ~mean:spec.volume_mean ~stddev:spec.volume_stddev
      in
      Flow.make ~id ~src ~dst ~volume ~release ~deadline)

let all_to_all ?(volume = 10.) ?(horizon = (0., 1.)) ~graph () =
  let hosts = check_hosts graph 2 in
  let release, deadline = horizon in
  let flows = ref [] in
  let id = ref 0 in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            flows := Flow.make ~id:!id ~src ~dst ~volume ~release ~deadline :: !flows;
            incr id
          end)
        hosts)
    hosts;
  List.rev !flows

let sample_distinct rng hosts count =
  let pool = Array.copy hosts in
  Prng.shuffle rng pool;
  Array.sub pool 0 count

(* The grouped generators are the source of truth for job membership:
   one call is one job (one incast fan-in, one shuffle stage), and the
   returned job id travels with the member list so coflow layers group
   by construction instead of re-deriving membership from flow ids.
   [first_flow_id] keeps ids unique when several jobs share a trace. *)

let incast_grouped ?(volume = 10.) ?(horizon = (0., 1.)) ?(job = 0)
    ?(first_flow_id = 0) ~rng ~graph ~sources () =
  if sources < 1 then invalid_arg "Workload.incast: sources must be >= 1";
  let hosts = check_hosts graph (sources + 1) in
  let chosen = sample_distinct rng hosts (sources + 1) in
  let sink = chosen.(0) in
  let release, deadline = horizon in
  ( job,
    List.init sources (fun i ->
        Flow.make ~id:(first_flow_id + i) ~src:chosen.(i + 1) ~dst:sink ~volume
          ~release ~deadline) )

let incast ?volume ?horizon ~rng ~graph ~sources () =
  snd (incast_grouped ?volume ?horizon ~rng ~graph ~sources ())

let shuffle_grouped ?(volume = 10.) ?(horizon = (0., 1.)) ?(job = 0)
    ?(first_flow_id = 0) ~rng ~graph ~mappers ~reducers () =
  if mappers < 1 || reducers < 1 then
    invalid_arg "Workload.shuffle: mappers and reducers must be >= 1";
  let hosts = check_hosts graph (mappers + reducers) in
  let chosen = sample_distinct rng hosts (mappers + reducers) in
  let release, deadline = horizon in
  let flows = ref [] in
  let id = ref first_flow_id in
  for m = 0 to mappers - 1 do
    for r = 0 to reducers - 1 do
      flows :=
        Flow.make ~id:!id ~src:chosen.(m) ~dst:chosen.(mappers + r) ~volume ~release
          ~deadline
        :: !flows;
      incr id
    done
  done;
  (job, List.rev !flows)

let shuffle ?volume ?horizon ~rng ~graph ~mappers ~reducers () =
  snd (shuffle_grouped ?volume ?horizon ~rng ~graph ~mappers ~reducers ())

let stride ?(volume = 10.) ?(horizon = (0., 1.)) ~graph ~stride () =
  let hosts = check_hosts graph 2 in
  let h = Array.length hosts in
  if stride mod h = 0 then invalid_arg "Workload.stride: stride is a multiple of host count";
  let release, deadline = horizon in
  List.init h (fun i ->
      let j = ((i + stride) mod h + h) mod h in
      Flow.make ~id:i ~src:hosts.(i) ~dst:hosts.(j) ~volume ~release ~deadline)

(* Bounded Pareto on [lo, hi] with shape a, by inverse transform. *)
let bounded_pareto rng ~shape ~lo ~hi =
  let u = Prng.float rng 1. in
  let la = lo ** shape and ha = hi ** shape in
  let x = -.((u *. ha) -. u *. la -. ha) /. (ha *. la) in
  (* inverse CDF of bounded Pareto: ( -(u*H^a - u*L^a - H^a) / (H^a L^a) )^(-1/a) *)
  x ** (-1. /. shape)

let exponential rng ~mean = -.mean *. Float.log (1. -. Prng.float rng 1.)

let trace ?(load = 1.0) ?(pareto_shape = 1.5) ?(mean_volume = 10.) ?(mean_slack = 5.)
    ?(diurnal = 0.) ~rng ~graph ~horizon:(t0, t1) () =
  if not (load > 0.) then invalid_arg "Workload.trace: load must be > 0";
  if diurnal < 0. || diurnal > 1. then
    invalid_arg "Workload.trace: diurnal amplitude must be in [0, 1]";
  if t1 <= t0 then invalid_arg "Workload.trace: empty horizon";
  let hosts = check_hosts graph 2 in
  (* Bounded Pareto with mean ~ mean_volume: for shape a in (1, 2), mean
     = a L / (a - 1) for the unbounded law; pick L accordingly and cap
     at 100 L. *)
  let lo = mean_volume *. (pareto_shape -. 1.) /. pareto_shape in
  let hi = 100. *. lo in
  let rate = load *. float_of_int (Array.length hosts) /. 10. in
  let flows = ref [] in
  let id = ref 0 in
  let t = ref t0 in
  let continue = ref true in
  while !continue do
    t := !t +. exponential rng ~mean:(1. /. rate);
    (* Thinning turns the homogeneous process into a sinusoidally
       modulated one (one period over the horizon). *)
    let keep =
      diurnal = 0.
      ||
      let phase = 2. *. Float.pi *. (!t -. t0) /. (t1 -. t0) in
      Prng.float rng 1. < (1. +. (diurnal *. sin phase)) /. (1. +. diurnal)
    in
    if !t >= t1 then continue := false
    else if keep then begin
      let volume = bounded_pareto rng ~shape:pareto_shape ~lo ~hi in
      (* Minimum transfer time at unit rate plus exponential slack. *)
      let span = volume +. exponential rng ~mean:mean_slack in
      let deadline = Float.min t1 (!t +. span) in
      if deadline -. !t >= 0.5 then begin
        let src, dst = distinct_pair rng hosts in
        flows := Flow.make ~id:!id ~src ~dst ~volume ~release:!t ~deadline :: !flows;
        incr id
      end
    end
  done;
  List.rev !flows

let staged ?(volume = 10.) ~rng ~graph ~stages ~flows_per_stage ~stage_length () =
  if stages < 1 || flows_per_stage < 1 then
    invalid_arg "Workload.staged: counts must be >= 1";
  if not (stage_length > 0.) then invalid_arg "Workload.staged: stage_length must be > 0";
  let hosts = check_hosts graph 2 in
  let flows = ref [] in
  let id = ref 0 in
  for s = 0 to stages - 1 do
    let release = float_of_int s *. stage_length in
    let deadline = release +. stage_length in
    for _ = 1 to flows_per_stage do
      let src, dst = distinct_pair rng hosts in
      flows := Flow.make ~id:!id ~src ~dst ~volume ~release ~deadline :: !flows;
      incr id
    done
  done;
  List.rev !flows
