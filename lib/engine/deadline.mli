(** Wall-clock budgets with cooperative cancellation — the primitive
    under the resilience watchdog ([Dcn_resilience.Watchdog]).

    A deadline is an absolute point on the process clock.  Long-running
    solver loops poll {!check} at their natural iteration boundaries
    (Frank–Wolfe iterations, Random-Schedule attempt batches, exact
    enumeration leaves); when the {e ambient} deadline of the calling
    domain has passed, {!check} raises {!Expired} and the caller
    unwinds.  Nothing is pre-empted: cancellation is cooperative, so a
    stage that never polls is never interrupted.

    {b Ambient deadlines are per-domain} (domain-local storage, like
    the span stacks of {!Trace}).  {!Pool.map} bridges the gap: it
    captures the caller's ambient deadline when a batch is submitted
    and re-installs it around every task, whichever worker domain runs
    it, checking once more before each task starts — the pool-level
    per-task deadline.  Without an ambient deadline {!check} costs one
    branch, so instrumented loops are free in normal runs.

    The clock is [Unix.gettimeofday] clamped non-decreasing per domain
    (the same discipline as {!Trace} timestamps), so a stepping
    wall-clock can delay an expiry but never un-expire a deadline. *)

type t
(** An absolute deadline.  Immutable. *)

exception Expired
(** Raised by {!check} (and {!check_t}) when the deadline has passed. *)

val now : unit -> float
(** The clamped process clock: [Unix.gettimeofday] made non-decreasing
    per domain.  Anything deriving durations from wall-clock samples
    (session uptime, drain timing) should read this instead of the raw
    clock so an NTP step can never produce a negative elapsed time. *)

val after : ms:float -> t
(** A deadline [ms] milliseconds from now.  Non-positive budgets yield
    an already-expired deadline (the watchdog's 0 ms determinism case).
    @raise Invalid_argument if [ms] is NaN. *)

val never : t
(** A deadline that never expires. *)

val expired : t -> bool

val remaining_ms : t -> float
(** Milliseconds until expiry; negative once passed, [infinity] for
    {!never}. *)

val check_t : t -> unit
(** @raise Expired if [t] has passed. *)

val ambient : unit -> t option
(** The calling domain's installed deadline, if any. *)

val check : unit -> unit
(** {!check_t} on the ambient deadline; one branch when none is
    installed.  The polling point solvers call. *)

val with_deadline : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's ambient deadline, run, restore
    the previous one (also on exception).  Nested deadlines do not
    merge: the innermost wins — a watchdog stage that wants to honour
    an enclosing budget should pass the tighter of the two. *)

val with_budget : ms:float -> (unit -> 'a) -> 'a
(** [with_deadline (after ~ms)]. *)
