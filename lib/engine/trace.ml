type field = string * Json.t

type entry =
  | Span_open of { id : int; parent : int option; name : string; fields : field list }
  | Span_close of { id : int }
  | Event of { span : int option; name : string; fields : field list }
  | Counter of { name : string; delta : float }

type record = { seq : int; time_ns : int64; domain : int; entry : entry }

type t = {
  uid : int;  (* distinguishes traces in per-domain state *)
  mutex : Mutex.t;
  mutable entries : record list;  (* reversed *)
  mutable count : int;
  seq : int Atomic.t;
  span_ids : int Atomic.t;
  t0 : float;  (* wall-clock origin of time_ns *)
}

let uids = Atomic.make 0

let create () =
  {
    uid = Atomic.fetch_and_add uids 1;
    mutex = Mutex.create ();
    entries = [];
    count = 0;
    seq = Atomic.make 0;
    span_ids = Atomic.make 0;
    t0 = Unix.gettimeofday ();
  }

(* The process-global collector.  An [Atomic.t] so worker domains spawned
   before the trace was installed still observe it. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let on () = Atomic.get current <> None

let with_trace t f =
  let previous = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current previous) f

(* Per-domain emission state: the open-span stack (for parent links) and
   a clamp making timestamps non-decreasing per domain.  Keyed by the
   trace's [uid] so state left over from a previous trace is discarded. *)
type domain_state = {
  mutable for_uid : int;
  mutable stack : int list;
  mutable last_ns : int64;
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { for_uid = -1; stack = []; last_ns = 0L })

let domain_state t =
  let st = Domain.DLS.get dls in
  if st.for_uid <> t.uid then begin
    st.for_uid <- t.uid;
    st.stack <- [];
    st.last_ns <- 0L
  end;
  st

let now t st =
  let ns = Int64.of_float ((Unix.gettimeofday () -. t.t0) *. 1e9) in
  let ns = if Int64.compare ns st.last_ns < 0 then st.last_ns else ns in
  st.last_ns <- ns;
  ns

let add t st entry =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let r = { seq; time_ns = now t st; domain = (Domain.self () :> int); entry } in
  Mutex.lock t.mutex;
  t.entries <- r :: t.entries;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let event ?(fields = []) name =
  match Atomic.get current with
  | None -> ()
  | Some t ->
    let st = domain_state t in
    let span = match st.stack with [] -> None | s :: _ -> Some s in
    add t st (Event { span; name; fields })

let counter name delta =
  match Atomic.get current with
  | None -> ()
  | Some t -> add t (domain_state t) (Counter { name; delta })

let span ?(fields = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
    let id = Atomic.fetch_and_add t.span_ids 1 in
    let st = domain_state t in
    let parent = match st.stack with [] -> None | s :: _ -> Some s in
    add t st (Span_open { id; parent; name; fields });
    st.stack <- id :: st.stack;
    Fun.protect
      ~finally:(fun () ->
        (* The trace may have been swapped while the span was open; close
           into the trace that opened it, popping exactly this span. *)
        let st = domain_state t in
        (match st.stack with
        | s :: rest when s = id -> st.stack <- rest
        | stack -> st.stack <- List.filter (fun s -> s <> id) stack);
        add t st (Span_close { id }))
      f

let records t =
  Mutex.lock t.mutex;
  let entries = t.entries in
  Mutex.unlock t.mutex;
  List.sort (fun (a : record) (b : record) -> compare a.seq b.seq) entries

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  t.entries <- [];
  t.count <- 0;
  Mutex.unlock t.mutex

let counter_total t name =
  List.fold_left
    (fun acc r ->
      match r.entry with
      | Counter { name = n; delta } when n = name -> acc +. delta
      | _ -> acc)
    0. (records t)

let reserved =
  [ "seq"; "t_ns"; "domain"; "type"; "id"; "parent"; "span"; "name"; "delta" ]

let record_to_json (r : record) =
  let base =
    [
      ("seq", Json.Int r.seq);
      ("t_ns", Json.Int (Int64.to_int r.time_ns));
      ("domain", Json.Int r.domain);
    ]
  in
  let opt = function None -> Json.Null | Some i -> Json.Int i in
  let typed, fields =
    match r.entry with
    | Span_open { id; parent; name; fields } ->
      ( [
          ("type", Json.Str "span_open");
          ("id", Json.Int id);
          ("parent", opt parent);
          ("name", Json.Str name);
        ],
        fields )
    | Span_close { id } -> ([ ("type", Json.Str "span_close"); ("id", Json.Int id) ], [])
    | Event { span; name; fields } ->
      ( [ ("type", Json.Str "event"); ("span", opt span); ("name", Json.Str name) ],
        fields )
    | Counter { name; delta } ->
      ( [ ("type", Json.Str "counter"); ("name", Json.Str name); ("delta", Json.float delta) ],
        [] )
  in
  let extra = List.filter (fun (k, _) -> not (List.mem k reserved)) fields in
  Json.Obj (base @ typed @ extra)

let to_json t =
  let rs = records t in
  let counters = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r.entry with
      | Counter { name; delta } ->
        (match Hashtbl.find_opt counters name with
        | None ->
          order := name :: !order;
          Hashtbl.add counters name delta
        | Some total -> Hashtbl.replace counters name (total +. delta))
      | _ -> ())
    rs;
  Json.Obj
    [
      ("version", Json.Int 1);
      ("events", Json.List (List.map record_to_json rs));
      ( "counters",
        Json.Obj
          (List.rev_map
             (fun name -> (name, Json.float (Hashtbl.find counters name)))
             !order) );
    ]
