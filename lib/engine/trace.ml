type field = string * Json.t

type entry =
  | Span_open of { id : int; parent : int option; name : string; fields : field list }
  | Span_close of { id : int }
  | Event of { span : int option; name : string; fields : field list }
  | Counter of { name : string; delta : float }

type gc = { minor_words : float; major_words : float }

type record = {
  seq : int;
  time_ns : int64;
  domain : int;
  entry : entry;
  gc : gc option;
}

type t = {
  uid : int;  (* distinguishes traces in per-domain state *)
  mutex : Mutex.t;
  mutable entries : record list;  (* reversed *)
  mutable count : int;
  seq : int Atomic.t;
  span_ids : int Atomic.t;
  t0 : float;  (* wall-clock origin of time_ns *)
}

let uids = Atomic.make 0

let create () =
  {
    uid = Atomic.fetch_and_add uids 1;
    mutex = Mutex.create ();
    entries = [];
    count = 0;
    seq = Atomic.make 0;
    span_ids = Atomic.make 0;
    t0 = Unix.gettimeofday ();
  }

(* The process-global collector.  An [Atomic.t] so worker domains spawned
   before the trace was installed still observe it. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let on () = Atomic.get current <> None

let with_trace t f =
  let previous = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current previous) f

(* Per-domain emission state: the open-span stack (for parent links) and
   a clamp making timestamps non-decreasing per domain.  Keyed by the
   trace's [uid] so state left over from a previous trace is discarded. *)
type domain_state = {
  mutable for_uid : int;
  mutable stack : int list;
  mutable last_ns : int64;
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { for_uid = -1; stack = []; last_ns = 0L })

let domain_state t =
  let st = Domain.DLS.get dls in
  if st.for_uid <> t.uid then begin
    st.for_uid <- t.uid;
    st.stack <- [];
    st.last_ns <- 0L
  end;
  st

let now t st =
  let ns = Int64.of_float ((Unix.gettimeofday () -. t.t0) *. 1e9) in
  let ns = if Int64.compare ns st.last_ns < 0 then st.last_ns else ns in
  st.last_ns <- ns;
  ns

let add ?gc t st entry =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let r = { seq; time_ns = now t st; domain = (Domain.self () :> int); entry; gc } in
  Mutex.lock t.mutex;
  t.entries <- r :: t.entries;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

(* Only sampled while a collector is installed, so the disabled path
   stays a single branch.  [Gc.counters] rather than [Gc.quick_stat]:
   on OCaml 5 the latter's allocation fields only refresh at
   collections, while [counters] reads the live allocation pointers. *)
let sample_gc () =
  let minor_words, _promoted, major_words = Gc.counters () in
  Some { minor_words; major_words }

let event ?(fields = []) name =
  match Atomic.get current with
  | None -> ()
  | Some t ->
    let st = domain_state t in
    let span = match st.stack with [] -> None | s :: _ -> Some s in
    add t st (Event { span; name; fields })

(* A process-global listener for counter emissions, independent of any
   installed trace: the metrics registry subscribes here so trace
   counters feed live telemetry without double bookkeeping.  Fires
   before the trace so a hook observes every delta even when no
   collector is installed. *)
let counter_hook : (string -> float -> unit) option Atomic.t = Atomic.make None

let set_counter_hook h = Atomic.set counter_hook h

let counter name delta =
  (match Atomic.get counter_hook with None -> () | Some h -> h name delta);
  match Atomic.get current with
  | None -> ()
  | Some t -> add t (domain_state t) (Counter { name; delta })

let span ?(fields = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
    let id = Atomic.fetch_and_add t.span_ids 1 in
    let st = domain_state t in
    let parent = match st.stack with [] -> None | s :: _ -> Some s in
    add ?gc:(sample_gc ()) t st (Span_open { id; parent; name; fields });
    st.stack <- id :: st.stack;
    Fun.protect
      ~finally:(fun () ->
        (* The trace may have been swapped while the span was open; close
           into the trace that opened it, popping exactly this span. *)
        let st = domain_state t in
        (match st.stack with
        | s :: rest when s = id -> st.stack <- rest
        | stack -> st.stack <- List.filter (fun s -> s <> id) stack);
        add ?gc:(sample_gc ()) t st (Span_close { id }))
      f

let records t =
  Mutex.lock t.mutex;
  let entries = t.entries in
  Mutex.unlock t.mutex;
  List.sort (fun (a : record) (b : record) -> compare a.seq b.seq) entries

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  t.entries <- [];
  t.count <- 0;
  Mutex.unlock t.mutex

let counters t =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.entry with
      | Counter { name; delta } ->
        Hashtbl.replace totals name
          (delta +. Option.value ~default:0. (Hashtbl.find_opt totals name))
      | _ -> ())
    (records t);
  List.sort compare (Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals [])

let counter_total t name =
  Option.value ~default:0. (List.assoc_opt name (counters t))

let reserved =
  [
    "seq"; "t_ns"; "domain"; "type"; "id"; "parent"; "span"; "name"; "delta";
    "gc_minor_w"; "gc_major_w";
  ]

let record_to_json (r : record) =
  let base =
    [
      ("seq", Json.Int r.seq);
      ("t_ns", Json.Int (Int64.to_int r.time_ns));
      ("domain", Json.Int r.domain);
    ]
  in
  let opt = function None -> Json.Null | Some i -> Json.Int i in
  let typed, fields =
    match r.entry with
    | Span_open { id; parent; name; fields } ->
      ( [
          ("type", Json.Str "span_open");
          ("id", Json.Int id);
          ("parent", opt parent);
          ("name", Json.Str name);
        ],
        fields )
    | Span_close { id } -> ([ ("type", Json.Str "span_close"); ("id", Json.Int id) ], [])
    | Event { span; name; fields } ->
      ( [ ("type", Json.Str "event"); ("span", opt span); ("name", Json.Str name) ],
        fields )
    | Counter { name; delta } ->
      ( [ ("type", Json.Str "counter"); ("name", Json.Str name); ("delta", Json.float delta) ],
        [] )
  in
  let gc_fields =
    match r.gc with
    | None -> []
    | Some g ->
      [
        ("gc_minor_w", Json.float g.minor_words);
        ("gc_major_w", Json.float g.major_words);
      ]
  in
  let extra = List.filter (fun (k, _) -> not (List.mem k reserved)) fields in
  Json.Obj (base @ typed @ gc_fields @ extra)

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("events", Json.List (List.map record_to_json (records t)));
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.float v)) (counters t)) );
    ]

(* ------------------------- reading back --------------------------- *)

let record_of_json j =
  let opt_int = function
    | None | Some Json.Null -> None
    | Some v -> Some (Json.to_int v)
  in
  let extras =
    match j with
    | Json.Obj fields -> List.filter (fun (k, _) -> not (List.mem k reserved)) fields
    | _ -> []
  in
  let entry =
    match Json.to_str (Json.get "type" j) with
    | "span_open" ->
      Span_open
        {
          id = Json.to_int (Json.get "id" j);
          parent = opt_int (Json.member "parent" j);
          name = Json.to_str (Json.get "name" j);
          fields = extras;
        }
    | "span_close" -> Span_close { id = Json.to_int (Json.get "id" j) }
    | "event" ->
      Event
        {
          span = opt_int (Json.member "span" j);
          name = Json.to_str (Json.get "name" j);
          fields = extras;
        }
    | "counter" ->
      Counter
        {
          name = Json.to_str (Json.get "name" j);
          delta = Json.to_float (Json.get "delta" j);
        }
    | ty -> failwith (Printf.sprintf "Trace.records_of_json: unknown record type %S" ty)
  in
  let gc =
    match (Json.member "gc_minor_w" j, Json.member "gc_major_w" j) with
    | Some mi, Some ma ->
      Some { minor_words = Json.to_float mi; major_words = Json.to_float ma }
    | _ -> None
  in
  {
    seq = Json.to_int (Json.get "seq" j);
    time_ns = Int64.of_int (Json.to_int (Json.get "t_ns" j));
    domain = Json.to_int (Json.get "domain" j);
    entry;
    gc;
  }

let records_of_json j =
  (match Json.member "version" j with
  | Some (Json.Int 1) -> ()
  | _ -> failwith "Trace.records_of_json: unsupported or missing trace version");
  List.map record_of_json (Json.to_list (Json.get "events" j))
