(** A minimal JSON tree, emitter and parser — no external dependency.

    The machine-readable surface of the engine: {!Trace.to_json},
    [Dcn_obs.Stage.to_json], [Dcn_core.Serialize.solution_to_json] and
    the CLI's [--report] files all build values of this type and print
    them with {!to_string}.  The parser exists so tests (and the [check-json]
    alias) can validate emitted reports without a third-party library.

    Floats are emitted with full [%.17g] precision so numbers
    round-trip bit-exactly.  JSON has no literal for non-finite
    numbers; [inf], [-inf] and [nan] are emitted as the strings
    ["inf"], ["-inf"] and ["nan"] (the same convention as the v1 text
    format of [Dcn_core.Serialize]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

type field = string * t

val float : float -> t
(** [Float x] for finite [x]; the string encoding otherwise. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

type parse_error = { offset : int;  (** byte offset of the failure *) message : string }

val parse_error_to_string : parse_error -> string

val parse : string -> (t, parse_error) result
(** Strict parser for the JSON subset {!to_string} emits plus standard
    escapes and [\uXXXX] (decoded to UTF-8).  Numbers without [.], [e]
    or a leading [-0] prefix that fit an OCaml [int] parse as [Int].
    Truncated or malformed input yields a typed error carrying the byte
    offset of the failure — it never raises. *)

val of_string : string -> t
(** {!parse}, raising.
    @raise Failure with the byte offset on malformed input. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields or non-objects. *)

val get : string -> t -> t
(** Like {!member}. @raise Failure when the field is missing. *)

val to_float : t -> float
(** [Float], [Int], or the non-finite string encodings.
    @raise Failure otherwise. *)

val to_int : t -> int
(** @raise Failure unless [Int]. *)

val to_str : t -> string
(** @raise Failure unless [Str]. *)

val to_list : t -> t list
(** @raise Failure unless [List]. *)

val to_obj : t -> (string * t) list
(** @raise Failure unless [Obj]. *)
