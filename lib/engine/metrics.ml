type snapshot = { stage : string; calls : int; seconds : float }

let mutex = Mutex.create ()
let table : (string, int * float) Hashtbl.t = Hashtbl.create 16

let record stage seconds =
  Mutex.lock mutex;
  let calls, total =
    match Hashtbl.find_opt table stage with Some c -> c | None -> (0, 0.)
  in
  Hashtbl.replace table stage (calls + 1, total +. seconds);
  Mutex.unlock mutex

let time stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record stage (Unix.gettimeofday () -. t0)) f

let snapshot () =
  Mutex.lock mutex;
  let all =
    Hashtbl.fold
      (fun stage (calls, seconds) acc -> { stage; calls; seconds } :: acc)
      table []
  in
  Mutex.unlock mutex;
  List.sort
    (fun a b ->
      match compare b.seconds a.seconds with 0 -> compare a.stage b.stage | c -> c)
    all

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex

let since ~base now =
  let at_base = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace at_base r.stage (r.calls, r.seconds)) base;
  List.filter_map
    (fun r ->
      let calls0, seconds0 =
        Option.value ~default:(0, 0.) (Hashtbl.find_opt at_base r.stage)
      in
      let calls = r.calls - calls0 and seconds = r.seconds -. seconds0 in
      if calls <= 0 then None else Some { r with calls; seconds })
    now

let snapshot_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("stage", Json.Str r.stage);
             ("calls", Json.Int r.calls);
             ("seconds", Json.float r.seconds);
           ])
       rows)

let to_json () = snapshot_to_json (snapshot ())

let render () =
  match snapshot () with
  | [] -> ""
  | rows ->
    let body =
      List.map
        (fun r ->
          [
            r.stage;
            string_of_int r.calls;
            Printf.sprintf "%.3f" r.seconds;
            Printf.sprintf "%.2f" (1e3 *. r.seconds /. float_of_int (max 1 r.calls));
          ])
        rows
    in
    Dcn_util.Table.render
      ~headers:[ "stage"; "calls"; "total (s)"; "mean (ms)" ]
      ~rows:body ()
