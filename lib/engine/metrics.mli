(** Lightweight per-stage wall-clock counters.

    Stages ({!time} calls) accumulate into a global, mutex-protected
    table, so instrumented code may run on any domain.  Times are
    cumulative across calls: a stage executed by [k] domains in parallel
    accumulates up to [k] seconds per wall-clock second, which is the
    usual convention for cumulative profilers. *)

type snapshot = {
  stage : string;
  calls : int;
  seconds : float;  (** cumulative wall time *)
}

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()] and charges its wall time to [stage]
    (also on exception). *)

val snapshot : unit -> snapshot list
(** Current counters, sorted by descending cumulative time. *)

val reset : unit -> unit

val since : base:snapshot list -> snapshot list -> snapshot list
(** [since ~base now] is the per-stage delta [now - base] — what was
    recorded between the two snapshots.  Stages with no new calls are
    dropped, so a sequence of [since] cuts attributes each stage's
    activity to exactly one interval (the bench harness uses this to
    report per-experiment metrics instead of cumulative ones). *)

val snapshot_to_json : snapshot list -> Json.t
(** A snapshot (or {!since} delta) as a JSON list of
    [{stage, calls, seconds}] objects, in list order. *)

val to_json : unit -> Json.t
(** The snapshot as a JSON list of [{stage, calls, seconds}] objects,
    in snapshot order. *)

val render : unit -> string
(** The snapshot as an aligned text table (empty string when no stage
    has been recorded). *)
