(* Single-pass aggregation of Trace.record lists into per-span-name
   profiles, counter timelines, a Chrome trace-event export and a
   profile diff.  See profile.mli for the contracts. *)

module Hist = struct
  (* Log-bucketed histogram: bucket [b] covers
     [2^(b/sub), 2^((b+1)/sub)) with [sub] buckets per octave, so any
     sample and its bucket's representative differ by at most a factor
     of 2^(1/sub).  Counts are integers, which makes [merge] exactly
     associative and commutative on the bucket table. *)

  let sub_buckets = 8
  let width = Float.exp2 (1. /. float_of_int sub_buckets)

  type t = {
    mutable n : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    counts : (int, int) Hashtbl.t;
  }

  let create () =
    { n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity; counts = Hashtbl.create 32 }

  (* Zero and negative samples share one dedicated bucket below every
     log bucket. *)
  let zero_bucket = min_int

  let bucket_of v =
    if v <= 0. then zero_bucket
    else int_of_float (Float.floor (Float.log2 v *. float_of_int sub_buckets))

  let representative b =
    if b = zero_bucket then 0.
    else Float.exp2 ((float_of_int b +. 0.5) /. float_of_int sub_buckets)

  let add h v =
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    let b = bucket_of v in
    Hashtbl.replace h.counts b (1 + Option.value ~default:0 (Hashtbl.find_opt h.counts b))

  let count h = h.n
  let total h = h.sum
  let mean h = if h.n = 0 then nan else h.sum /. float_of_int h.n
  let min_value h = if h.n = 0 then nan else h.min_v
  let max_value h = if h.n = 0 then nan else h.max_v

  let buckets h =
    List.sort compare (Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.counts [])

  let merge a b =
    let m = create () in
    m.n <- a.n + b.n;
    m.sum <- a.sum +. b.sum;
    m.min_v <- Float.min a.min_v b.min_v;
    m.max_v <- Float.max a.max_v b.max_v;
    let pour h =
      Hashtbl.iter
        (fun k c ->
          Hashtbl.replace m.counts k
            (c + Option.value ~default:0 (Hashtbl.find_opt m.counts k)))
        h.counts
    in
    pour a;
    pour b;
    m

  let quantile h q =
    if h.n = 0 then nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
      let rec walk cum = function
        | [] -> h.max_v
        | (b, c) :: rest ->
          let cum = cum + c in
          if cum >= rank then Float.min h.max_v (Float.max h.min_v (representative b))
          else walk cum rest
      in
      walk 0 (buckets h)
    end
end

type span_stat = {
  name : string;
  count : int;
  total_ns : float;
  self_ns : float;
  hist : Hist.t;
  minor_words : float;
  major_words : float;
}

type counter_point = { at_ns : float; total : float }

type t = {
  spans : span_stat list;
  counters : (string * counter_point list) list;
  events : (string * int) list;
  domains : int list;
  record_count : int;
  duration_ns : float;
  unclosed : int;
}

(* ----------------------------- building --------------------------- *)

type open_span = {
  o_name : string;
  o_parent : int option;
  o_time : float;
  o_gc : Trace.gc option;
  o_domain : int;
  mutable o_children : float;  (* summed total time of direct children *)
}

type acc = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_self : float;
  a_hist : Hist.t;
  mutable a_minor : float;
  mutable a_major : float;
}

let of_records records =
  let records =
    List.sort (fun (a : Trace.record) b -> compare a.Trace.seq b.Trace.seq) records
  in
  let stats : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let opens : (int, open_span) Hashtbl.t = Hashtbl.create 64 in
  let last_time : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let event_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let counter_series : (string, counter_point list ref) Hashtbl.t = Hashtbl.create 8 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let unclosed = ref 0 in
  let stat name =
    match Hashtbl.find_opt stats name with
    | Some a -> a
    | None ->
      let a =
        { a_count = 0; a_total = 0.; a_self = 0.; a_hist = Hist.create ();
          a_minor = 0.; a_major = 0. }
      in
      Hashtbl.add stats name a;
      a
  in
  let close_span id time gc =
    match Hashtbl.find_opt opens id with
    | None -> ()  (* close without an open: tolerated, dropped *)
    | Some o ->
      Hashtbl.remove opens id;
      let total = Float.max 0. (time -. o.o_time) in
      (match o.o_parent with
      | Some p -> (
        match Hashtbl.find_opt opens p with
        | Some po -> po.o_children <- po.o_children +. total
        | None -> ())
      | None -> ());
      let self = Float.max 0. (total -. o.o_children) in
      let minor, major =
        match (o.o_gc, gc) with
        | Some a, Some b ->
          (Float.max 0. (b.Trace.minor_words -. a.Trace.minor_words),
           Float.max 0. (b.Trace.major_words -. a.Trace.major_words))
        | _ -> (0., 0.)
      in
      let a = stat o.o_name in
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. total;
      a.a_self <- a.a_self +. self;
      Hist.add a.a_hist total;
      a.a_minor <- a.a_minor +. minor;
      a.a_major <- a.a_major +. major
  in
  List.iter
    (fun (r : Trace.record) ->
      let time = Int64.to_float r.Trace.time_ns in
      Hashtbl.replace last_time r.Trace.domain time;
      if time < !t_min then t_min := time;
      if time > !t_max then t_max := time;
      match r.Trace.entry with
      | Trace.Span_open { id; parent; name; _ } ->
        Hashtbl.replace opens id
          { o_name = name; o_parent = parent; o_time = time; o_gc = r.Trace.gc;
            o_domain = r.Trace.domain; o_children = 0. }
      | Trace.Span_close { id } -> close_span id time r.Trace.gc
      | Trace.Event { name; _ } ->
        Hashtbl.replace event_counts name
          (1 + Option.value ~default:0 (Hashtbl.find_opt event_counts name))
      | Trace.Counter { name; delta } ->
        let series =
          match Hashtbl.find_opt counter_series name with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add counter_series name s;
            s
        in
        let prev = match !series with [] -> 0. | p :: _ -> p.total in
        series := { at_ns = time; total = prev +. delta } :: !series)
    records;
  (* A truncated trace can leave spans open; close them at their
     domain's last seen timestamp so no time disappears.  Children have
     larger ids than their parents, so closing in descending id order
     propagates child totals before the parent's self time is fixed. *)
  let leftovers =
    List.sort (fun (a, _) (b, _) -> compare b a)
      (Hashtbl.fold (fun id o acc -> (id, o) :: acc) opens [])
  in
  List.iter
    (fun (id, (o : open_span)) ->
      incr unclosed;
      close_span id
        (Option.value ~default:o.o_time (Hashtbl.find_opt last_time o.o_domain))
        None)
    leftovers;
  let spans =
    Hashtbl.fold
      (fun name a acc ->
        { name; count = a.a_count; total_ns = a.a_total; self_ns = a.a_self;
          hist = a.a_hist; minor_words = a.a_minor; major_words = a.a_major }
        :: acc)
      stats []
  in
  {
    spans =
      List.sort
        (fun a b ->
          match compare b.self_ns a.self_ns with
          | 0 -> compare a.name b.name
          | c -> c)
        spans;
    counters =
      List.sort compare
        (Hashtbl.fold
           (fun name series acc -> (name, List.rev !series) :: acc)
           counter_series []);
    events =
      List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) event_counts []);
    domains =
      List.sort_uniq compare
        (List.map (fun (r : Trace.record) -> r.Trace.domain) records);
    record_count = List.length records;
    duration_ns = (if !t_max >= !t_min then !t_max -. !t_min else 0.);
    unclosed = !unclosed;
  }

let of_trace t = of_records (Trace.records t)

let find p name = List.find_opt (fun s -> s.name = name) p.spans

(* ------------------------------ summary --------------------------- *)

let ms ns = ns /. 1e6

let summary ?(top = 0) p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d record(s), %d domain(s), %.3f ms span%s\n"
       p.record_count (List.length p.domains) (ms p.duration_ns)
       (if p.unclosed > 0 then Printf.sprintf " (%d unclosed span(s))" p.unclosed
        else ""));
  if p.spans <> [] then begin
    let rows =
      List.map
        (fun s ->
          [
            s.name;
            string_of_int s.count;
            Printf.sprintf "%.3f" (ms s.total_ns);
            Printf.sprintf "%.3f" (ms s.self_ns);
            Printf.sprintf "%.3f" (ms (Hist.quantile s.hist 0.5));
            Printf.sprintf "%.3f" (ms (Hist.quantile s.hist 0.9));
            Printf.sprintf "%.3f" (ms (Hist.quantile s.hist 0.99));
            Printf.sprintf "%.0f" s.minor_words;
            Printf.sprintf "%.0f" s.major_words;
          ])
        p.spans
    in
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Dcn_util.Table.render_top ~top ~what:"span names by self time"
         ~headers:
           [ "span"; "calls"; "total ms"; "self ms"; "p50 ms"; "p90 ms";
             "p99 ms"; "minor w"; "major w" ]
         ~rows ())
  end;
  if p.events <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Dcn_util.Table.render ~headers:[ "event"; "count" ]
         ~rows:(List.map (fun (n, c) -> [ n; string_of_int c ]) p.events)
         ())
  end;
  if p.counters <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Dcn_util.Table.render
         ~headers:[ "counter"; "final"; "points" ]
         ~rows:
           (List.map
              (fun (n, series) ->
                let final = match List.rev series with [] -> 0. | p :: _ -> p.total in
                [ n; Printf.sprintf "%g" final; string_of_int (List.length series) ])
              p.counters)
         ())
  end;
  Buffer.contents buf

(* The machine-readable twin of [summary]: same aggregates, same order,
   no truncation.  [dcn trace summary --format json] and [dcn stats]
   both build on this shape. *)
let to_json ?(top = 0) p =
  let spans = if top > 0 then List.filteri (fun i _ -> i < top) p.spans else p.spans in
  Json.Obj
    [
      ("records", Json.Int p.record_count);
      ("domains", Json.List (List.map (fun d -> Json.Int d) p.domains));
      ("duration_ms", Json.float (ms p.duration_ns));
      ("unclosed", Json.Int p.unclosed);
      ("span_names", Json.Int (List.length p.spans));
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.name);
                   ("calls", Json.Int s.count);
                   ("total_ms", Json.float (ms s.total_ns));
                   ("self_ms", Json.float (ms s.self_ns));
                   ("p50_ms", Json.float (ms (Hist.quantile s.hist 0.5)));
                   ("p90_ms", Json.float (ms (Hist.quantile s.hist 0.9)));
                   ("p99_ms", Json.float (ms (Hist.quantile s.hist 0.99)));
                   ("minor_words", Json.float s.minor_words);
                   ("major_words", Json.float s.major_words);
                 ])
             spans) );
      ( "events",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj [ ("name", Json.Str n); ("count", Json.Int c) ])
             p.events) );
      ( "counters",
        Json.List
          (List.map
             (fun (n, series) ->
               let final = match List.rev series with [] -> 0. | p :: _ -> p.total in
               Json.Obj
                 [
                   ("name", Json.Str n);
                   ("final", Json.float final);
                   ("points", Json.Int (List.length series));
                 ])
             p.counters) );
    ]

(* --------------------------- Chrome export ------------------------ *)

(* Chrome trace-event / Perfetto JSON ("JSON Array Format" wrapped in
   an object).  Spans become ph:B/E duration events, point events
   ph:i instants, counters ph:C with the cumulative value; ts is in
   microseconds.  One pid for the process, one tid per domain, named
   via ph:M metadata. *)
let to_chrome records =
  let records =
    List.sort (fun (a : Trace.record) b -> compare a.Trace.seq b.Trace.seq) records
  in
  let pid = ("pid", Json.Int 1) in
  let common (r : Trace.record) =
    [
      ("ts", Json.float (Int64.to_float r.Trace.time_ns /. 1e3));
      pid;
      ("tid", Json.Int r.Trace.domain);
    ]
  in
  let args fields = match fields with [] -> [] | f -> [ ("args", Json.Obj f) ] in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let event (r : Trace.record) =
    match r.Trace.entry with
    | Trace.Span_open { name; fields; _ } ->
      Some
        (Json.Obj
           ((("name", Json.Str name) :: ("ph", Json.Str "B") :: common r)
           @ args fields))
    | Trace.Span_close _ -> Some (Json.Obj (("ph", Json.Str "E") :: common r))
    | Trace.Event { name; fields; _ } ->
      Some
        (Json.Obj
           ((("name", Json.Str name) :: ("ph", Json.Str "i")
             :: ("s", Json.Str "t") :: common r)
           @ args fields))
    | Trace.Counter { name; delta } ->
      let total = delta +. Option.value ~default:0. (Hashtbl.find_opt totals name) in
      Hashtbl.replace totals name total;
      Some
        (Json.Obj
           ((("name", Json.Str name) :: ("ph", Json.Str "C") :: common r)
           @ [ ("args", Json.Obj [ ("value", Json.float total) ]) ]))
  in
  let domains =
    List.sort_uniq compare (List.map (fun (r : Trace.record) -> r.Trace.domain) records)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        pid;
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str "dcn") ]);
      ]
    :: List.map
         (fun d ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               pid;
               ("tid", Json.Int d);
               ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" d)) ]);
             ])
         domains
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.filter_map event records));
      ("displayTimeUnit", Json.Str "ms");
    ]

let validate_chrome json =
  let phases = [ "B"; "E"; "i"; "C"; "M" ] in
  try
    let events = Json.to_list (Json.get "traceEvents" json) in
    if events = [] then failwith "traceEvents is empty";
    let depth : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
    let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let ph = Json.to_str (Json.get "ph" e) in
        if not (List.mem ph phases) then
          failwith (Printf.sprintf "unsupported ph %S" ph);
        let pid = Json.to_int (Json.get "pid" e) in
        let tid = Json.to_int (Json.get "tid" e) in
        let key = (pid, tid) in
        if ph <> "M" then begin
          let ts = Json.to_float (Json.get "ts" e) in
          if not (Float.is_finite ts) || ts < 0. then failwith "bad ts";
          (match Hashtbl.find_opt last_ts key with
          | Some prev when ts < prev -> failwith "ts not monotone within a tid"
          | _ -> ());
          Hashtbl.replace last_ts key ts
        end;
        let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
        match ph with
        | "B" ->
          ignore (Json.to_str (Json.get "name" e));
          Hashtbl.replace depth key (d + 1)
        | "E" ->
          if d <= 0 then failwith "E without a matching B";
          Hashtbl.replace depth key (d - 1)
        | "i" | "M" -> ignore (Json.to_str (Json.get "name" e))
        | "C" -> (
          ignore (Json.to_str (Json.get "name" e));
          match Json.to_obj (Json.get "args" e) with
          | [] -> failwith "counter with empty args"
          | kvs -> List.iter (fun (_, v) -> ignore (Json.to_float v)) kvs)
        | _ -> assert false)
      events;
    Hashtbl.iter
      (fun (pid, tid) d ->
        if d <> 0 then
          failwith (Printf.sprintf "pid %d tid %d: %d unclosed B span(s)" pid tid d))
      depth;
    Ok ()
  with Failure m -> Error m

(* ------------------------------- diff ------------------------------ *)

type span_delta = {
  d_name : string;
  count_a : int;
  count_b : int;
  total_a : float;
  total_b : float;
  self_a : float;
  self_b : float;
}

let diff ~a ~b =
  let of_profile p =
    List.map (fun s -> (s.name, (s.count, s.total_ns, s.self_ns))) p.spans
  in
  let sa = of_profile a and sb = of_profile b in
  let names =
    List.sort_uniq compare (List.map fst sa @ List.map fst sb)
  in
  let look l n = Option.value ~default:(0, 0., 0.) (List.assoc_opt n l) in
  List.sort
    (fun x y -> compare (y.self_b -. y.self_a) (x.self_b -. x.self_a))
    (List.map
       (fun n ->
         let count_a, total_a, self_a = look sa n in
         let count_b, total_b, self_b = look sb n in
         { d_name = n; count_a; count_b; total_a; total_b; self_a; self_b })
       names)

(* A span regresses when its new self or total time exceeds the old by
   more than [tolerance], relative, with a 0.1 ms absolute floor so
   microsecond jitter on tiny spans never trips the gate.  Spans absent
   from the baseline are new code, not regressions. *)
let regressed ~tolerance d =
  let worse now was = now -. was > tolerance *. Float.max was 1e5 in
  d.count_a > 0 && (worse d.self_b d.self_a || worse d.total_b d.total_a)

let regressions ?(tolerance = 0.25) deltas =
  List.filter (regressed ~tolerance) deltas

let render_diff ?(tolerance = 0.25) deltas =
  let pct now was =
    if was <= 0. then "-" else Printf.sprintf "%+.1f%%" (100. *. (now -. was) /. was)
  in
  let rows =
    List.map
      (fun d ->
        [
          d.d_name;
          Printf.sprintf "%d/%d" d.count_a d.count_b;
          Printf.sprintf "%.3f/%.3f" (ms d.total_a) (ms d.total_b);
          pct d.total_b d.total_a;
          Printf.sprintf "%.3f/%.3f" (ms d.self_a) (ms d.self_b);
          pct d.self_b d.self_a;
          (if regressed ~tolerance d then "REGRESSED" else "");
        ])
      deltas
  in
  Dcn_util.Table.render
    ~headers:
      [ "span"; "calls a/b"; "total ms a/b"; "total"; "self ms a/b"; "self"; "" ]
    ~rows ()
