(** Fixed-size domain pool for the embarrassingly parallel stages of the
    pipeline (per-interval F-MCF programs, Random-Schedule draw batches,
    experiment seed sweeps).

    A pool of [jobs] ways of parallelism is [jobs - 1] worker domains
    plus the calling domain, which participates while it waits — so
    [jobs = 1] spawns no domains at all and every operation runs
    sequentially in the caller, with identical results.

    Determinism: [map]/[map_list]/[map_reduce] preserve input order in
    their results regardless of which domain computed each element, and
    tasks receive no shared mutable state from the pool itself.  As long
    as the task function is deterministic per element (derive per-task
    randomness with {!split_rngs}, never share one
    {!Dcn_util.Prng.t} across elements), results are bit-identical for
    every [jobs] value.

    Nested calls are safe: a [map] issued from inside a pool task runs
    sequentially in that worker rather than deadlocking the pool. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}[ ()].
    @raise Invalid_argument if [jobs < 1]. *)

val sequential : t
(** A shared [jobs = 1] pool (no domains); the implicit default of every
    [?pool] parameter downstream. *)

val default_jobs : unit -> int
(** The [DCN_JOBS] environment variable: a positive integer is taken as
    is, [0] (or a negative value) means "one per core"
    ([Domain.recommended_domain_count]), unset or unparsable means 1. *)

val jobs : t -> int
(** The parallelism the pool was created with (1 after {!shutdown}). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  If any tasks raise, the exception of
    the lowest-index failing element is re-raised in the caller (with
    its backtrace) after all tasks have finished; the pool remains
    usable.

    The caller's ambient {!Deadline} (if any) is re-installed around
    every task on whichever domain runs it, and checked once before
    each task starts — so a pool fan-out honours the watchdog budget
    per task, and an expired budget surfaces as {!Deadline.Expired} in
    the caller like any other task failure. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
(** Parallel map followed by a sequential left fold in input order (so
    the reduction is deterministic even when [reduce] is not
    commutative). *)

val split_rngs : Dcn_util.Prng.t -> int -> Dcn_util.Prng.t array
(** [split_rngs rng n] deterministically splits [n] independent PRNG
    streams off [rng] (advancing it), for one-stream-per-task use. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; subsequent [map]s on the pool
    run sequentially. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
