(** Trace analytics: span profiles, latency histograms, GC attribution,
    counter timelines, Chrome-trace export and profile diffs.

    {!Trace} records what happened; this module makes a 100k-record log
    answerable in one pass: which span names dominate (by {e self} time
    — total minus time spent in child spans), how their per-call
    latency distributes, how much they allocate, and how counters
    evolve over the run.  It consumes [Trace.record list]s, so it works
    on a live collector ({!of_trace}) and on trace files read back via
    [Trace.records_of_json] alike — the `dcn trace` subcommands are
    thin wrappers over this module. *)

(** Mergeable log-bucketed histograms.

    Buckets grow geometrically ([sub_buckets] per octave), so a
    quantile estimate is within a factor of {!width} of the exact
    sample quantile at the same rank; min/max are exact.  {!merge} sums
    integer bucket counts and is associative and commutative (the
    floating [total] is commutative and associative up to rounding). *)
module Hist : sig
  type t

  val sub_buckets : int
  (** Buckets per octave (8: ~9% relative bucket width). *)

  val width : float
  (** Worst-case ratio between a sample and its bucket's representative:
      [2^(1/sub_buckets)]. *)

  val create : unit -> t
  val add : t -> float -> unit
  val merge : t -> t -> t
  val count : t -> int
  val total : t -> float
  val mean : t -> float  (** [nan] when empty. *)

  val min_value : t -> float  (** exact; [nan] when empty *)

  val max_value : t -> float  (** exact; [nan] when empty *)

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile (rank [ceil (q*n)],
      clamped to [[min, max]]); [nan] when empty.  Within a factor of
      {!width} of the exact quantile. *)

  val buckets : t -> (int * int) list
  (** [(bucket index, count)] sorted by index — the mergeable state,
      exposed for tests. *)
end

type span_stat = {
  name : string;
  count : int;  (** closed span instances *)
  total_ns : float;  (** summed wall time *)
  self_ns : float;  (** total minus direct children's totals *)
  hist : Hist.t;  (** per-call total duration, ns *)
  minor_words : float;  (** summed minor-heap allocation delta *)
  major_words : float;  (** summed major-heap allocation delta *)
}

type counter_point = { at_ns : float; total : float (** cumulative *) }

type t = {
  spans : span_stat list;  (** descending self time *)
  counters : (string * counter_point list) list;
      (** per counter name, cumulative value over time (emission
          order); sorted by name *)
  events : (string * int) list;  (** point-event counts, sorted by name *)
  domains : int list;
  record_count : int;
  duration_ns : float;  (** last minus first timestamp *)
  unclosed : int;
      (** spans force-closed at their domain's last timestamp (a
          truncated trace); 0 for any trace {!Trace.span} wrote *)
}

val of_records : Trace.record list -> t
(** Single pass over the records (sorted by [seq]).  Span open/close
    pairs are matched by id; a parent's self time is charged only what
    its direct children leave behind; GC deltas come from the samples
    {!Trace.span} takes at open and close. *)

val of_trace : Trace.t -> t

val find : t -> string -> span_stat option

val summary : ?top:int -> t -> string
(** Aligned text tables: spans by self time ([top] > 0 truncates),
    event counts, counter totals. *)

val to_json : ?top:int -> t -> Json.t
(** The same aggregates as {!summary}, machine-readable: a
    [{records, domains, duration_ms, unclosed, span_names, spans,
    events, counters}] object where [spans] rows carry
    [{name, calls, total_ms, self_ms, p50_ms, p90_ms, p99_ms,
    minor_words, major_words}].  [top] > 0 truncates [spans] (the
    untruncated name count stays in [span_names]). *)

val to_chrome : Trace.record list -> Json.t
(** Chrome trace-event JSON (load in Perfetto / [chrome://tracing]):
    spans as [ph:"B"]/[ph:"E"] pairs, point events as instants,
    counters as [ph:"C"] with the cumulative value, [ts] in
    microseconds, one [tid] per domain under a single [pid] (named via
    [ph:"M"] metadata). *)

val validate_chrome : Json.t -> (unit, string) result
(** Strict shape check of a {!to_chrome} value: known phases only,
    finite non-negative [ts] monotone per [tid], balanced B/E per
    [tid], named instants/counters, numeric counter args. *)

type span_delta = {
  d_name : string;
  count_a : int;
  count_b : int;
  total_a : float;
  total_b : float;
  self_a : float;
  self_b : float;
}

val diff : a:t -> b:t -> span_delta list
(** Per-span-name comparison of two profiles (union of names, absent =
    zero), sorted by worst self-time growth first. *)

val regressions : ?tolerance:float -> span_delta list -> span_delta list
(** Deltas whose self or total time grew by more than [tolerance]
    (relative, default 0.25) over a baseline entry, with a 0.1 ms
    absolute floor; names absent from the baseline never regress. *)

val render_diff : ?tolerance:float -> span_delta list -> string
