type t = { expires_at : float }  (* absolute, on the clamped process clock *)

exception Expired

(* Per-domain clock clamp: gettimeofday can step backwards (NTP); a
   deadline that was observed expired must stay expired, so each domain
   never reports a time earlier than one it already reported. *)
let last_now : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.)

let now () =
  let last = Domain.DLS.get last_now in
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let after ~ms =
  if Float.is_nan ms then invalid_arg "Deadline.after: ms is NaN";
  { expires_at = now () +. (ms /. 1000.) }

let never = { expires_at = infinity }

let expired t = t.expires_at < infinity && now () >= t.expires_at

let remaining_ms t =
  if t.expires_at = infinity then infinity else (t.expires_at -. now ()) *. 1000.

let check_t t = if expired t then raise Expired

(* The ambient deadline of each domain.  [Pool.map] re-installs the
   caller's ambient around every task it fans out. *)
let dls : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () = Domain.DLS.get dls

let check () =
  match Domain.DLS.get dls with None -> () | Some t -> check_t t

let with_deadline t f =
  let previous = Domain.DLS.get dls in
  Domain.DLS.set dls (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls previous) f

let with_budget ~ms f = with_deadline (after ~ms) f
