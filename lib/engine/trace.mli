(** Structured, domain-safe run tracing: spans, typed events, counters.

    A trace is an append-only log of records that any code — on any
    domain of a {!Pool} — can emit into while it is {e installed}.
    Solvers use it to expose per-iteration behaviour that the final
    solution cannot carry: Most-Critical-First group selections,
    Frank–Wolfe convergence, Random-Schedule attempt outcomes, pool
    task scheduling, experiment-stage boundaries.

    {b Cost discipline.}  At most one trace is installed at a time (a
    process-global atomic).  When none is installed, {!on} is [false]
    and every emission helper returns after a single branch; callers of
    {!event} with non-trivial fields should guard with
    [if Trace.on () then ...] so field lists are only built when a
    collector is listening.  Emission under an installed trace costs
    one timestamp read and one mutex-protected list push.

    {b Records} carry a global sequence number (atomic), a timestamp in
    nanoseconds since the trace was created — monotone per emitting
    domain — and the emitting domain's id.  Span nesting is tracked
    per domain (a worker's spans nest under whatever span was open on
    that worker, not under the caller's), and {!span} always closes
    what it opened, so a trace's span tree is well-formed even when
    the traced code raises. *)

type t

type field = string * Json.t

type entry =
  | Span_open of { id : int; parent : int option; name : string; fields : field list }
  | Span_close of { id : int }
  | Event of { span : int option; name : string; fields : field list }
  | Counter of { name : string; delta : float }

type gc = {
  minor_words : float;  (** cumulative minor-heap words ({!Gc.counters}) *)
  major_words : float;  (** cumulative major-heap words *)
}

type record = {
  seq : int;  (** global emission order *)
  time_ns : int64;  (** since {!create}; non-decreasing per domain *)
  domain : int;  (** emitting domain id *)
  entry : entry;
  gc : gc option;
      (** allocation counters sampled at emission — only for span
          open/close records, and only while a collector is installed
          (so the disabled path stays one branch).  [Profile] turns the
          open/close pair into a per-span allocation delta. *)
}

val create : unit -> t
(** A fresh, empty collector (not yet installed). *)

val install : t -> unit
(** Make [t] the process-global collector.  Replaces any previous one. *)

val uninstall : unit -> unit

val with_trace : t -> (unit -> 'a) -> 'a
(** [install t], run, then restore the previously installed trace (also
    on exception). *)

val on : unit -> bool
(** Whether a trace is installed — the one branch a disabled trace
    costs.  Emission helpers check it themselves; guard explicitly only
    to avoid constructing field lists. *)

val span : ?fields:field list -> string -> (unit -> 'a) -> 'a
(** [span name f] wraps [f] in [Span_open]/[Span_close] records (the
    close also on exception).  Without an installed trace this is
    [f ()]. *)

val event : ?fields:field list -> string -> unit
(** A point event, attributed to the innermost open span of the
    emitting domain. *)

val counter : string -> float -> unit
(** [counter name delta] accumulates into a named counter; totals are
    summed per name in {!to_json} (and by {!counter_total}).  Every
    call is also forwarded to the hook installed by
    {!set_counter_hook}, whether or not a trace is installed. *)

val set_counter_hook : (string -> float -> unit) option -> unit
(** Install (or clear, with [None]) a process-global listener invoked
    by every {!counter} emission before — and independently of — any
    installed trace.  The metrics registry ([Dcn_obs.Registry]) uses
    this to fold trace counters into live telemetry without a second
    tally path.  With neither a hook nor a trace installed, {!counter}
    still costs only branch checks. *)

val records : t -> record list
(** Everything emitted so far, in sequence order. *)

val length : t -> int

val clear : t -> unit

val counters : t -> (string * float) list
(** Every counter's total (sum of its deltas), sorted by name.  The
    single source of counter totalling: {!to_json}'s ["counters"]
    object, {!counter_total} and the CLI's report envelope all read
    this. *)

val counter_total : t -> string -> float
(** Sum of all [Counter] deltas with this name (0 if none). *)

val to_json : t -> Json.t
(** {v
    { "version": 1,
      "events": [ { "seq", "t_ns", "domain", "type",
                    "id"|"span", "parent", "name", fields... } ... ],
      "counters": { name: total, ... } }
    v}
    Event fields are inlined into the record object under their own
    names (reserved keys win on clash); span records with a GC sample
    carry [gc_minor_w]/[gc_major_w]. *)

val records_of_json : Json.t -> record list
(** Parse a version-1 trace file (the {!to_json} shape) back into its
    records, so [dcn trace summary/export/diff] and {!Profile} can
    consume traces written by an earlier run.
    @raise Failure on an unsupported version or a malformed record. *)
