type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

type field = string * t

let float x =
  if Float.is_finite x then Float x
  else if x = infinity then Str "inf"
  else if x = neg_infinity then Str "-inf"
  else Str "nan"

(* ----------------------------- emitter ---------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g may print an integral float without '.' or exponent; that is
   still a valid JSON number.  A [Float] built without {!float} is
   normalised to the string encoding rather than emitting invalid JSON. *)
let float_literal buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.17g" x)
  else escape buf (if x = infinity then "inf" else if x = neg_infinity then "-inf" else "nan")

let to_string ?(pretty = false) json =
  let buf = Buffer.create 1024 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> float_literal buf x
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          emit (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          escape buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          emit (depth + 1) v)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  emit 0 json;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ----------------------------- parser ----------------------------- *)

exception Bad of int * string

type parse_error = { offset : int; message : string }

let parse_error_to_string e =
  Printf.sprintf "at byte %d: %s" e.offset e.message

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* Encode a Unicode scalar value (from \uXXXX) as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = text.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub text !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
           in
           add_utf8 buf code
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num_char c =
      match c with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if s = "" || s = "-" then fail "expected number";
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
    if is_float then
      match float_of_string_opt s with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some x -> Float x
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    Ok v
  with Bad (at, msg) -> Error { offset = at; message = msg }

let of_string text =
  match parse text with
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Json.of_string: at %d: %s" e.offset e.message)

(* ---------------------------- accessors --------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let get name json =
  match member name json with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Json.get: missing field %S" name)

let to_float = function
  | Float x -> x
  | Int i -> float_of_int i
  | Str "inf" -> infinity
  | Str "-inf" -> neg_infinity
  | Str "nan" -> nan
  | _ -> failwith "Json.to_float: not a number"

let to_int = function Int i -> i | _ -> failwith "Json.to_int: not an int"
let to_str = function Str s -> s | _ -> failwith "Json.to_str: not a string"
let to_list = function List l -> l | _ -> failwith "Json.to_list: not a list"
let to_obj = function Obj f -> f | _ -> failwith "Json.to_obj: not an object"
