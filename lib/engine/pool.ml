(* A fixed-size domain pool: [jobs - 1] worker domains around a shared
   task queue, with the caller of [map] helping to drain the queue while
   its batch is in flight.  Results are written by index, so ordering is
   deterministic no matter which domain ran which element.  Tasks are
   wrapped to capture exceptions; the lowest-index failure is re-raised
   in the caller once the whole batch has settled, which leaves the
   queue clean and the pool reusable. *)

type task = unit -> unit

type t = {
  requested_jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;  (* task enqueued, or stop *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : int list;
}

let default_jobs () =
  match Sys.getenv_opt "DCN_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ -> Domain.recommended_domain_count ()
    | None -> 1)

let worker_loop pool () =
  Mutex.lock pool.mutex;
  pool.worker_ids <- (Domain.self () :> int) :: pool.worker_ids;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.mutex
    else if Queue.is_empty pool.queue then begin
      Condition.wait pool.cond pool.mutex;
      loop ()
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (try task () with _ -> ());
      Mutex.lock pool.mutex;
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      requested_jobs = jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      worker_ids = [];
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let sequential = create ~jobs:1 ()

let jobs pool = if pool.stop then 1 else pool.requested_jobs

let shutdown pool =
  let workers =
    Mutex.lock pool.mutex;
    let ws = pool.workers in
    pool.stop <- true;
    pool.workers <- [];
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    ws
  in
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let in_worker pool =
  let id = (Domain.self () :> int) in
  Mutex.lock pool.mutex;
  let r = List.mem id pool.worker_ids in
  Mutex.unlock pool.mutex;
  r

let map pool f xs =
  let n = Array.length xs in
  if n <= 1 || jobs pool <= 1 || in_worker pool then Array.map f xs
  else begin
    if Trace.on () then
      Trace.event "pool.map"
        ~fields:[ ("tasks", Json.Int n); ("jobs", Json.Int (jobs pool)) ];
    (* Ambient deadlines are domain-local; carry the caller's over to
       whichever worker runs each task, and refuse to start a task at
       all once it has passed (the per-task deadline).  The [Expired]
       raised either way surfaces in the caller like any task error. *)
    let f =
      match Deadline.ambient () with
      | None -> f
      | Some d ->
        fun x ->
          Deadline.check_t d;
          Deadline.with_deadline d (fun () -> f x)
    in
    let results = Array.make n None in
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      (* The emitting-domain tag of this event is the scheduling record:
         which of the [jobs] ways ran task [i]. *)
      if Trace.on () then Trace.event "pool.task" ~fields:[ ("index", Json.Int i) ];
      let r =
        try Ok (f xs.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock batch_mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) pool.queue
    done;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    (* The caller is one of the [jobs] ways: help drain the queue. *)
    let rec help () =
      Mutex.lock pool.mutex;
      let next =
        if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
      in
      Mutex.unlock pool.mutex;
      match next with
      | Some task ->
        task ();
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

let map_reduce pool ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map pool f xs)

let split_rngs rng n =
  if n < 0 then invalid_arg "Pool.split_rngs: negative count";
  let streams = Array.make n rng in
  for i = 0 to n - 1 do
    streams.(i) <- Dcn_util.Prng.split rng
  done;
  streams
