type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~headers ~rows () =
  let ncols = List.length headers in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Array.iter
    (fun w ->
      Buffer.add_string buf (String.make w '-');
      Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let render_top ?align ?(top = 0) ~what ~headers ~rows () =
  let total = List.length rows in
  let truncated = top > 0 && total > top in
  let shown = if truncated then List.filteri (fun i _ -> i < top) rows else rows in
  let table = render ?align ~headers ~rows:shown () in
  if truncated then table ^ Printf.sprintf "(top %d of %d %s)\n" top total what
  else table

let cell_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

type series = { label : string; values : float array }

let render_series ~x_label ~xs ~series () =
  let n = Array.length xs in
  List.iter
    (fun s ->
      if Array.length s.values <> n then
        invalid_arg
          (Printf.sprintf "Table.render_series: series %S has %d points, expected %d"
             s.label (Array.length s.values) n))
    series;
  let headers = x_label :: List.map (fun s -> s.label) series in
  let rows =
    List.init n (fun i ->
        cell_f ~decimals:0 xs.(i) :: List.map (fun s -> cell_f s.values.(i)) series)
  in
  render ~headers ~rows ()
