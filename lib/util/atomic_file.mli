(** Atomic whole-file writes via temp-file-plus-rename.

    Several surfaces rewrite a file that another process may be reading
    at the same moment — the Prometheus exposition a scraper polls, the
    run reports [dcn observe] diffs, bench baselines, and the durable
    serving checkpoint.  POSIX [rename] within one directory is atomic,
    so writing to a temporary file in the {e target's} directory and
    renaming over the destination guarantees a reader sees either the
    old bytes or the new bytes, never a torn mix.  This module is the
    single implementation all of them share. *)

val write : ?fsync:bool -> path:string -> string -> unit
(** [write ~path content] replaces [path] with [content] atomically.
    The temporary file is created next to [path] (a cross-device rename
    would silently lose atomicity) and removed on any failure.

    With [~fsync:true] the data is flushed to stable storage before the
    rename and the parent directory entry is flushed after it — the
    crash-consistency discipline checkpoint writers need: after a power
    cut the file holds either the previous or the new content.  The
    default ([false]) is the cheap variant for monitoring surfaces where
    losing the very last rewrite to a crash is acceptable.

    @raise Sys_error (or [Unix.Unix_error]) on I/O failure; the
    destination is untouched in that case. *)
