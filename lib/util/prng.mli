(** Deterministic pseudo-random number generation.

    Experiments must be reproducible bit-for-bit across runs and machines,
    so we avoid [Stdlib.Random] (whose algorithm changed across OCaml
    releases) and implement splitmix64, a small, well-studied generator
    with 64 bits of state.  Every consumer of randomness in this project
    receives an explicit [t]; there is no hidden global state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] initialises a generator from an integer seed.  Equal
    seeds yield identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will produce the same
    future stream as [g]. *)

val state : t -> int64
(** The full 64-bit internal state.  Together with {!of_state} this
    makes a generator checkpointable: persisting [state g] and later
    resuming from [of_state] continues the exact stream, which durable
    serving relies on for bit-identical crash recovery. *)

val of_state : int64 -> t
(** Rebuild a generator from a persisted {!state}. *)

val set_state : t -> int64 -> unit
(** Overwrite [g]'s state in place (restore into an existing handle). *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream.  Used to
    give sub-components their own streams without coupling draw counts. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)].  [bound] must be
    positive and finite. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  @raise Invalid_argument if [hi < lo]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Marsaglia polar method. *)

val gaussian_positive : t -> mean:float -> stddev:float -> float
(** Normal deviate resampled until strictly positive; used for flow
    volumes drawn from N(10,3) as in the paper, where a non-positive
    volume would be meaningless.  @raise Invalid_argument if [mean <= 0]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val pick_weighted : t -> weights:float array -> int
(** [pick_weighted g ~weights] returns index [i] with probability
    proportional to [weights.(i)].  Weights must be non-negative with a
    positive sum.  @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
