let fsync_dir dir =
  (* Persist the rename itself: fsync the directory containing the
     entry.  Directories cannot be opened O_WRONLY; O_RDONLY is the
     portable spelling.  Some filesystems refuse fsync on a directory
     fd — treat that as best-effort rather than failing the write. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write ?(fsync = false) ~path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "dcn-atomic" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc content;
          flush oc;
          if fsync then Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path;
      ok := true;
      if fsync then fsync_dir dir)
