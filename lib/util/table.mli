(** Plain-text tables and series for experiment reports.

    The benchmark harness prints the same rows/series the paper reports;
    this module does the formatting so every experiment renders
    consistently. *)

type align = Left | Right

val render : ?align:align list -> headers:string list -> rows:string list list -> unit -> string
(** ASCII table with a header rule.  [align] defaults to [Left] for the
    first column and [Right] for the rest (label + numeric columns).
    Rows shorter than the header are padded with empty cells. *)

val render_top :
  ?align:align list ->
  ?top:int ->
  what:string ->
  headers:string list ->
  rows:string list list ->
  unit ->
  string
(** {!render} showing at most [top] rows (all when [top <= 0]); when
    rows were dropped a ["(top N of M <what>)"] footer says so.  The
    shared shape of every top-N style listing ([dcn trace summary],
    [dcn stats]). *)

val cell_f : ?decimals:int -> float -> string
(** Format a float for a table cell ([decimals] defaults to 3). *)

type series = { label : string; values : float array }

val render_series :
  x_label:string -> xs:float array -> series:series list -> unit -> string
(** Table with the x column first and one column per series — the shape of
    a paper figure rendered as text.  All series must have the same length
    as [xs].  @raise Invalid_argument otherwise. *)
