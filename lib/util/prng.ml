type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let state g = g.state

let of_state s = { state = s }

let set_state g s = g.state <- s

(* splitmix64 finaliser: mixes the incremented counter into an output. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = mix s }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 g) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float g bound =
  if not (bound > 0.) then invalid_arg "Prng.float: bound must be positive";
  (* 53 uniform mantissa bits. *)
  let r = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let uniform g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  if hi = lo then lo else lo +. float g (hi -. lo)

let rec gaussian g ~mean ~stddev =
  let u = uniform g ~lo:(-1.) ~hi:1. in
  let v = uniform g ~lo:(-1.) ~hi:1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then gaussian g ~mean ~stddev
  else mean +. (stddev *. u *. sqrt (-2. *. log s /. s))

let gaussian_positive g ~mean ~stddev =
  if mean <= 0. then invalid_arg "Prng.gaussian_positive: mean must be positive";
  let rec draw () =
    let x = gaussian g ~mean ~stddev in
    if x > 0. then x else draw ()
  in
  draw ()

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_weighted g ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Prng.pick_weighted: empty weights";
  let total = Array.fold_left (fun acc w ->
      if w < 0. then invalid_arg "Prng.pick_weighted: negative weight";
      acc +. w)
      0. weights
  in
  if not (total > 0.) then invalid_arg "Prng.pick_weighted: zero total weight";
  let target = float g total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
