module Json = Dcn_engine.Json
module Event = Dcn_serve.Event
module Repair = Dcn_resilience.Repair

type disconnect =
  | Eof
  | Mid_line
  | Idle
  | Write_failed
  | Read_failed of string

let disconnect_to_string = function
  | Eof -> "eof"
  | Mid_line -> "eof-mid-line"
  | Idle -> "idle-timeout"
  | Write_failed -> "write-failed"
  | Read_failed m -> Printf.sprintf "read-failed (%s)" m

type stats = {
  accepted : int;
  events : int;
  replies : int;
  parse_errors : int;
  shed : int;
  disconnects : (disconnect * int) list;
  drained : bool;
}

let stats_to_json s =
  Json.Obj
    [
      ("accepted", Json.Int s.accepted);
      ("events", Json.Int s.events);
      ("replies", Json.Int s.replies);
      ("parse_errors", Json.Int s.parse_errors);
      ("shed", Json.Int s.shed);
      ( "disconnects",
        Json.Obj
          (List.map
             (fun (d, n) -> (disconnect_to_string d, Json.Int n))
             s.disconnects) );
      ("drained", Json.Bool s.drained);
    ]

exception Stop

let obs_connections =
  Dcn_obs.Registry.counter ~help:"socket connections accepted"
    "serve.connections"

let now () = Dcn_engine.Deadline.now ()

(* One client: its fd, the unterminated tail of its input, and the
   per-connection positions that make parse errors reportable. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable line_no : int;  (** lines completed so far on this connection *)
  mutable base : int;  (** stream offset of the first buffered byte *)
  mutable last_active : float;
  mutable alive : bool;
}

(* An event parsed off a connection, waiting its turn at the session. *)
type pending_event = { conn : conn; event : Event.t }

type loop = {
  listen_fd : Unix.file_descr;
  socket : string;
  idle_timeout : float;
  mutable conns : conn list;
  queue : pending_event Pending.t;
  mutable next_conn : int;
  (* tallies *)
  mutable accepted : int;
  mutable events : int;
  mutable replies : int;
  mutable parse_errors : int;
  mutable shed_count : int;
  mutable disconnects : (disconnect * int) list;
}

let tally t kind =
  let n = try List.assoc kind t.disconnects with Not_found -> 0 in
  t.disconnects <- (kind, n + 1) :: List.remove_assoc kind t.disconnects

let drop t conn kind =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c.id <> conn.id) t.conns;
    tally t kind
  end

(* A reply is one JSON line.  A client that died under the write is
   dropped; queued events it already submitted still apply (they are
   committed work), only their replies go nowhere. *)
let reply t conn json =
  if conn.alive then begin
    let line = Json.to_string json ^ "\n" in
    let bytes = Bytes.of_string line in
    match Unix.write conn.fd bytes 0 (Bytes.length bytes) with
    | n when n = Bytes.length bytes -> t.replies <- t.replies + 1
    | _ -> drop t conn Write_failed
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      drop t conn Write_failed
  end

let parse_error_reply ~line ~byte ~offset message =
  Json.Obj
    [
      ("error", Json.Str "parse");
      ("line", Json.Int line);
      ("byte", Json.Int byte);
      ("offset", Json.Int offset);
      ("message", Json.Str message);
    ]

let shed_reply policy event =
  Json.Obj
    [
      ("shed", Json.Bool true);
      ("policy", Json.Str (Repair.shed_policy_to_string policy));
      ("event", Json.Str (Event.kind event));
    ]

(* One complete line from [conn]: parse, then enqueue — or answer the
   parse error / shed verdict right away. *)
let handle_line t conn ~line_base line =
  conn.line_no <- conn.line_no + 1;
  if String.trim line <> "" then begin
    let bad ~byte msg =
      t.parse_errors <- t.parse_errors + 1;
      reply t conn
        (parse_error_reply ~line:conn.line_no ~byte ~offset:(line_base + byte)
           msg)
    in
    match Json.parse line with
    | Error e -> bad ~byte:e.Json.offset e.Json.message
    | Ok json -> (
      match Event.of_json json with
      | Error m -> bad ~byte:0 m
      | Ok event -> (
        match Pending.offer t.queue { conn; event } with
        | Pending.Enqueued -> ()
        | Pending.Shed victim ->
          t.shed_count <- t.shed_count + 1;
          reply t victim.conn
            (shed_reply (Pending.policy t.queue) victim.event)))
  end

(* Split every complete line out of the connection buffer, keeping the
   unterminated tail (and its stream offset) for the next read. *)
let drain_buffer t conn =
  let data = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let n = String.length data in
  let off = ref 0 in
  while
    conn.alive
    &&
    match String.index_from_opt data !off '\n' with
    | None -> false
    | Some nl ->
      let line = String.sub data !off (nl - !off) in
      let line_base = conn.base in
      conn.base <- conn.base + (nl - !off) + 1;
      off := nl + 1;
      handle_line t conn ~line_base line;
      true
  do
    ()
  done;
  if conn.alive && !off < n then
    Buffer.add_substring conn.buf data !off (n - !off)

let read_chunk = Bytes.create 4096

let handle_readable t conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
    (* EOF.  A non-empty buffer means the client died mid-line: the
       fragment is dropped (it was never committed), typed as such. *)
    drop t conn (if Buffer.length conn.buf > 0 then Mid_line else Eof)
  | n ->
    conn.last_active <- now ();
    Buffer.add_subbytes conn.buf read_chunk 0 n;
    drain_buffer t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (e, _, _) ->
    drop t conn (Read_failed (Unix.error_message e))

let accept t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    t.accepted <- t.accepted + 1;
    Dcn_obs.Registry.incr obs_connections;
    t.next_conn <- t.next_conn + 1;
    t.conns <-
      {
        id = t.next_conn;
        fd;
        buf = Buffer.create 256;
        line_no = 0;
        base = 0;
        last_active = now ();
        alive = true;
      }
      :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()

let sweep_idle t =
  if t.idle_timeout > 0. then begin
    let deadline = now () -. t.idle_timeout in
    List.iter
      (fun c -> if c.last_active < deadline then drop t c Idle)
      t.conns
  end

(* Apply exactly one queued event; returns false when the queue was
   empty.  This is the only place [apply] runs, so WAL order = reply
   order = the one global sequence. *)
let apply_one t ~seq ~apply =
  match Pending.pop t.queue with
  | None -> false
  | Some { conn; event } ->
    incr seq;
    let out = apply ~seq:!seq event in
    t.events <- t.events + 1;
    reply t conn out;
    true

let serve ?(idle_timeout = 30.) ?(queue_capacity = 64)
    ?(shed_policy = Repair.Shed_newest) ?(backlog = 8) ~socket ~drain ~apply ()
    =
  (* A stale socket file from a dead server would make bind fail. *)
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  let t =
    {
      listen_fd;
      socket;
      idle_timeout;
      conns = [];
      queue = Pending.create ~capacity:queue_capacity ~policy:shed_policy;
      next_conn = 0;
      accepted = 0;
      events = 0;
      replies = 0;
      parse_errors = 0;
      shed_count = 0;
      disconnects = [];
    }
  in
  let seq = ref 0 in
  let drained = ref false in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    t.conns <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      while not !drained do
        if drain () then begin
          (* Graceful drain: no new connections, no new reads; finish
             the in-flight backlog so every accepted event is answered,
             then let the caller checkpoint. *)
          while apply_one t ~seq ~apply do
            ()
          done;
          drained := true
        end
        else begin
          let timeout = if Pending.length t.queue > 0 then 0. else 0.2 in
          let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
          (match Unix.select fds [] [] timeout with
          | readable, _, _ ->
            if List.memq t.listen_fd readable then accept t;
            List.iter
              (fun c -> if List.memq c.fd readable then handle_readable t c)
              t.conns
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          sweep_idle t;
          ignore (apply_one t ~seq ~apply)
        end
      done;
      {
        accepted = t.accepted;
        events = t.events;
        replies = t.replies;
        parse_errors = t.parse_errors;
        shed = t.shed_count;
        disconnects =
          List.sort
            (fun (a, _) (b, _) -> compare a b)
            t.disconnects;
        drained = true;
      })
