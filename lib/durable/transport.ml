module Json = Dcn_engine.Json
module Event = Dcn_serve.Event
module Repair = Dcn_resilience.Repair

type disconnect =
  | Eof
  | Mid_line
  | Idle
  | Write_failed
  | Write_stalled
  | Read_failed of string

let disconnect_to_string = function
  | Eof -> "eof"
  | Mid_line -> "eof-mid-line"
  | Idle -> "idle-timeout"
  | Write_failed -> "write-failed"
  | Write_stalled -> "write-stalled"
  | Read_failed m -> Printf.sprintf "read-failed (%s)" m

type stats = {
  accepted : int;
  events : int;
  replies : int;
  parse_errors : int;
  shed : int;
  disconnects : (disconnect * int) list;
  drained : bool;
}

let stats_to_json s =
  Json.Obj
    [
      ("accepted", Json.Int s.accepted);
      ("events", Json.Int s.events);
      ("replies", Json.Int s.replies);
      ("parse_errors", Json.Int s.parse_errors);
      ("shed", Json.Int s.shed);
      ( "disconnects",
        Json.Obj
          (List.map
             (fun (d, n) -> (disconnect_to_string d, Json.Int n))
             s.disconnects) );
      ("drained", Json.Bool s.drained);
    ]

exception Stop

let obs_connections =
  Dcn_obs.Registry.counter ~help:"socket connections accepted"
    "serve.connections"

let now () = Dcn_engine.Deadline.now ()

(* One client: its (non-blocking) fd, the unterminated tail of its
   input, replies not yet accepted by its socket buffer, and the
   per-connection positions that make parse errors reportable. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  out : Buffer.t;  (** reply bytes waiting for the fd to be writable *)
  mutable line_no : int;  (** lines completed so far on this connection *)
  mutable base : int;  (** stream offset of the first buffered byte *)
  mutable last_active : float;
  mutable alive : bool;
}

(* An event parsed off a connection, waiting its turn at the session. *)
type pending_event = { conn : conn; event : Event.t }

type loop = {
  listen_fd : Unix.file_descr;
  socket : string;
  idle_timeout : float;
  mutable conns : conn list;
  queue : pending_event Pending.t;
  mutable next_conn : int;
  (* tallies *)
  mutable accepted : int;
  mutable events : int;
  mutable replies : int;
  mutable parse_errors : int;
  mutable shed_count : int;
  mutable disconnects : (disconnect * int) list;
}

let tally t kind =
  let n = try List.assoc kind t.disconnects with Not_found -> 0 in
  t.disconnects <- (kind, n + 1) :: List.remove_assoc kind t.disconnects

let drop t conn kind =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c.id <> conn.id) t.conns;
    tally t kind
  end

(* A client that never reads its replies may not hold reply bytes — and
   with them the whole single-threaded loop — hostage forever: past this
   many buffered bytes it is dropped as stalled. *)
let max_out_bytes = 1 lsl 20

(* Push as much buffered output as the (non-blocking) fd will take;
   what it refuses waits for the next writable-fd round of the select
   loop.  A client that died under the write is dropped; queued events
   it already submitted still apply (they are committed work), only
   their replies go nowhere. *)
let flush_out t conn =
  if conn.alive && Buffer.length conn.out > 0 then begin
    let data = Buffer.contents conn.out in
    Buffer.clear conn.out;
    let len = String.length data in
    let off = ref 0 in
    let blocked = ref false in
    while conn.alive && (not !blocked) && !off < len do
      match Unix.write_substring conn.fd data !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        blocked := true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET and anything else fatal: the client is gone
           (SIGPIPE itself is ignored by [serve]). *)
        drop t conn Write_failed
    done;
    if conn.alive && !off < len then begin
      Buffer.add_substring conn.out data !off (len - !off);
      if Buffer.length conn.out > max_out_bytes then drop t conn Write_stalled
    end
  end

(* A reply is one JSON line, buffered then flushed opportunistically —
   a stalled client's full socket buffer must never block the loop. *)
let reply t conn json =
  if conn.alive then begin
    Buffer.add_string conn.out (Json.to_string json);
    Buffer.add_char conn.out '\n';
    t.replies <- t.replies + 1;
    flush_out t conn
  end

let parse_error_reply ~line ~byte ~offset message =
  Json.Obj
    [
      ("error", Json.Str "parse");
      ("line", Json.Int line);
      ("byte", Json.Int byte);
      ("offset", Json.Int offset);
      ("message", Json.Str message);
    ]

let shed_reply policy event =
  Json.Obj
    [
      ("shed", Json.Bool true);
      ("policy", Json.Str (Repair.shed_policy_to_string policy));
      ("event", Json.Str (Event.kind event));
    ]

(* One complete line from [conn]: parse, then enqueue — or answer the
   parse error / shed verdict right away. *)
let handle_line t conn ~line_base line =
  conn.line_no <- conn.line_no + 1;
  if String.trim line <> "" then begin
    let bad ~byte msg =
      t.parse_errors <- t.parse_errors + 1;
      reply t conn
        (parse_error_reply ~line:conn.line_no ~byte ~offset:(line_base + byte)
           msg)
    in
    match Json.parse line with
    | Error e -> bad ~byte:e.Json.offset e.Json.message
    | Ok json -> (
      match Event.of_json json with
      | Error m -> bad ~byte:0 m
      | Ok event -> (
        match Pending.offer t.queue { conn; event } with
        | Pending.Enqueued -> ()
        | Pending.Shed victim ->
          t.shed_count <- t.shed_count + 1;
          reply t victim.conn
            (shed_reply (Pending.policy t.queue) victim.event)))
  end

(* Split every complete line out of the connection buffer, keeping the
   unterminated tail (and its stream offset) for the next read. *)
let drain_buffer t conn =
  let data = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let n = String.length data in
  let off = ref 0 in
  while
    conn.alive
    &&
    match String.index_from_opt data !off '\n' with
    | None -> false
    | Some nl ->
      let line = String.sub data !off (nl - !off) in
      let line_base = conn.base in
      conn.base <- conn.base + (nl - !off) + 1;
      off := nl + 1;
      handle_line t conn ~line_base line;
      true
  do
    ()
  done;
  if conn.alive && !off < n then
    Buffer.add_substring conn.buf data !off (n - !off)

let read_chunk = Bytes.create 4096

let handle_readable t conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
    (* EOF.  A non-empty buffer means the client died mid-line: the
       fragment is dropped (it was never committed), typed as such. *)
    drop t conn (if Buffer.length conn.buf > 0 then Mid_line else Eof)
  | n ->
    conn.last_active <- now ();
    Buffer.add_subbytes conn.buf read_chunk 0 n;
    drain_buffer t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (e, _, _) ->
    drop t conn (Read_failed (Unix.error_message e))

let accept t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    t.accepted <- t.accepted + 1;
    Dcn_obs.Registry.incr obs_connections;
    t.next_conn <- t.next_conn + 1;
    t.conns <-
      {
        id = t.next_conn;
        fd;
        buf = Buffer.create 256;
        out = Buffer.create 256;
        line_no = 0;
        base = 0;
        last_active = now ();
        alive = true;
      }
      :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()

let sweep_idle t =
  if t.idle_timeout > 0. then begin
    let deadline = now () -. t.idle_timeout in
    List.iter
      (fun c -> if c.last_active < deadline then drop t c Idle)
      t.conns
  end

(* Apply exactly one queued event; returns false when the queue was
   empty.  This is the only place [apply] runs, so WAL order = reply
   order = the one global sequence. *)
let apply_one t ~seq ~apply =
  match Pending.pop t.queue with
  | None -> false
  | Some { conn; event } ->
    incr seq;
    let out = apply ~seq:!seq event in
    t.events <- t.events + 1;
    reply t conn out;
    true

let serve ?(idle_timeout = 30.) ?(queue_capacity = 64)
    ?(shed_policy = Repair.Shed_newest) ?(backlog = 8) ?(initial_seq = 0)
    ~socket ~drain ~apply () =
  (* A client that closes before reading its reply must surface as
     EPIPE from write(2), not as a SIGPIPE whose default disposition
     kills the whole server.  Guarded for platforms without it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* A stale socket file from a dead server would make bind fail. *)
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  Unix.set_nonblock listen_fd;
  let t =
    {
      listen_fd;
      socket;
      idle_timeout;
      conns = [];
      queue = Pending.create ~capacity:queue_capacity ~policy:shed_policy;
      next_conn = 0;
      accepted = 0;
      events = 0;
      replies = 0;
      parse_errors = 0;
      shed_count = 0;
      disconnects = [];
    }
  in
  let seq = ref initial_seq in
  let drained = ref false in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    t.conns <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.socket with Unix.Unix_error _ -> ()
  in
  (* Give clients with undelivered replies a bounded window of
     writability rounds, then cut the stragglers loose as stalled —
     drain must terminate even against a client that never reads. *)
  let flush_pending_out ?(window = 5.) t =
    let deadline = now () +. window in
    let rec go () =
      match List.filter (fun c -> Buffer.length c.out > 0) t.conns with
      | [] -> ()
      | laggards ->
        if now () >= deadline then
          List.iter (fun c -> drop t c Write_stalled) laggards
        else begin
          let wfds = List.map (fun c -> c.fd) laggards in
          (match Unix.select [] wfds [] 0.2 with
          | _, writable, _ ->
            List.iter
              (fun c -> if List.memq c.fd writable then flush_out t c)
              laggards
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
        end
    in
    go ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      while not !drained do
        if drain () then begin
          (* Graceful drain: no new connections, no new reads; finish
             the in-flight backlog so every accepted event is answered
             and its reply handed off, then let the caller checkpoint. *)
          while apply_one t ~seq ~apply do
            ()
          done;
          flush_pending_out t;
          drained := true
        end
        else begin
          let timeout = if Pending.length t.queue > 0 then 0. else 0.2 in
          let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
          let wfds =
            List.filter_map
              (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
              t.conns
          in
          (match Unix.select fds wfds [] timeout with
          | readable, writable, _ ->
            if List.memq t.listen_fd readable then accept t;
            List.iter
              (fun c -> if List.memq c.fd writable then flush_out t c)
              t.conns;
            List.iter
              (fun c -> if List.memq c.fd readable then handle_readable t c)
              t.conns
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          sweep_idle t;
          ignore (apply_one t ~seq ~apply)
        end
      done;
      {
        accepted = t.accepted;
        events = t.events;
        replies = t.replies;
        parse_errors = t.parse_errors;
        shed = t.shed_count;
        disconnects =
          List.sort
            (fun (a, _) (b, _) -> compare a b)
            t.disconnects;
        drained = true;
      })
