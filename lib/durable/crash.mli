(** Deterministic crash-injection campaign over the durable store —
    the harness behind [dcn crash] and the [@check-durable] gate, in
    the seeded-campaign style of {!Dcn_resilience.Fault}.

    One uninterrupted {e reference} session applies the whole event log
    and records, at every event boundary, the committed-state snapshot
    and the outcome line.  One {e durable} pass applies the same log
    through a {!Store}, capturing the WAL length and checkpoint bytes
    at every boundary.  Each seeded kill then reconstructs the store
    directory exactly as a crash at that boundary would leave it —
    optionally with a torn tail: the next record chopped mid-line or
    with a flipped byte — recovers with {!Store.open_}, and checks:

    - the recovered committed state is {b bit-identical} to the
      reference snapshot at that boundary (same flows, paths, coflows,
      PRNG stream, stats, fractional relaxation);
    - the recovered schedule {b re-certifies} clean under
      {!Dcn_check.Certify.schedule};
    - redelivering the next [window] events produces outcome lines
      {b byte-identical} to the reference stream (for torn kills this
      includes the event whose append was interrupted — at-least-once
      redelivery is exact);
    - torn tails are {b detected} (and repaired by truncation), never
      crashed on.

    Determinism: kill boundaries, tear kinds and chop offsets all come
    from pre-split {!Dcn_util.Prng} streams of the campaign seed, so a
    report is byte-identical across runs and [--jobs]. *)

type tear_kind =
  | Clean  (** crash exactly between append and the next event *)
  | Chop  (** next record truncated mid-line (torn append) *)
  | Flip  (** one byte of the next record flipped (bit rot) *)

val tear_kind_to_string : tear_kind -> string

type row = {
  kill : int;  (** event boundary the crash strikes after (1-based) *)
  tear : tear_kind;
  checkpoint_seq : int;  (** checkpoint the recovery started from *)
  replayed : int;  (** WAL records replayed on top of it *)
  tear_detected : bool;  (** a [Chop]/[Flip] tail was caught by checksum *)
  state_match : bool;  (** recovered snapshot = reference snapshot *)
  certified : bool;  (** recovered schedule re-certified clean *)
  window : int;  (** follow-up events redelivered *)
  outcomes_match : bool;  (** their outcome lines = reference lines *)
  ok : bool;
}

type t = {
  events : int;
  kills : int;
  seed : int;
  window : int;
  checkpoint_every : int;
  rows : row list;
  ok : bool;
}

val run :
  ?config:Dcn_serve.Session.config ->
  ?pool:Dcn_engine.Pool.t ->
  ?window:int ->
  ?checkpoint_every:int ->
  dir:string ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  policy:Dcn_resilience.Repair.policy ->
  seed:int ->
  kills:int ->
  Dcn_serve.Event.t list ->
  t
(** Run the campaign in scratch directory [dir] (created if missing,
    kill sub-directories removed as they are verified).  [kills] is
    clamped to the number of events; [window] (default 5) bounds the
    redelivery check — determinism makes window-equality imply
    full-suffix equality.  [checkpoint_every] defaults to 10.
    @raise Invalid_argument on an empty event list. *)

val to_json : t -> Dcn_engine.Json.t
val pp_row : Format.formatter -> row -> unit
