(** CRC-32 (the IEEE 802.3 / zlib polynomial, reflected, init and
    xor-out [0xFFFFFFFF]) — the per-record checksum of the write-ahead
    log and the checkpoint envelope.

    Chosen over a hand-rolled sum because torn WAL tails are exactly
    the adversary a CRC is designed for (bit flips, truncated bytes),
    and because the zlib convention means fixtures can be cross-checked
    with any external tool ([python3 -c "import binascii; ..."],
    [cksum -o 3], zlib itself). *)

val string : string -> int32
(** CRC-32 of all bytes of the string. *)

val to_hex : int32 -> string
(** Eight lowercase hex digits, zero-padded — the WAL's wire form. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly eight hex digits. *)
