(** The bounded pending-event queue between the transport and the
    session — backpressure for arrivals that outpace the incremental
    re-solve.

    The accept loop enqueues parsed events here and applies one per
    loop turn; when the queue is full the configured
    {!Dcn_resilience.Repair.shed_policy} picks a victim, which the
    transport answers with a typed [Shed] outcome instead of silently
    growing the heap.  Shed events never reach the WAL: shedding is a
    refusal, not a commitment. *)

type 'a t

val create : capacity:int -> policy:Dcn_resilience.Repair.shed_policy -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val capacity : 'a t -> int
val policy : 'a t -> Dcn_resilience.Repair.shed_policy

type 'a admission =
  | Enqueued
  | Shed of 'a
      (** the victim: the offered item under [Shed_newest], the evicted
          oldest item under [Shed_oldest] (the offered item was
          enqueued in its place) *)

val offer : 'a t -> 'a -> 'a admission
(** Enqueue, or shed per policy when full.  Counts [serve.shed]. *)

val pop : 'a t -> 'a option
(** Oldest item, FIFO order. *)
