module Json = Dcn_engine.Json
module Prng = Dcn_util.Prng
module Session = Dcn_serve.Session
module Instance = Dcn_core.Instance
module Certify = Dcn_check.Certify

type tear_kind = Clean | Chop | Flip

let tear_kind_to_string = function
  | Clean -> "clean"
  | Chop -> "chop"
  | Flip -> "flip"

type row = {
  kill : int;
  tear : tear_kind;
  checkpoint_seq : int;
  replayed : int;
  tear_detected : bool;
  state_match : bool;
  certified : bool;
  window : int;
  outcomes_match : bool;
  ok : bool;
}

type t = {
  events : int;
  kills : int;
  seed : int;
  window : int;
  checkpoint_every : int;
  rows : row list;
  ok : bool;
}

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let read_file_opt path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> Some content
  | exception Sys_error _ -> None

(* The recovered schedule, re-certified from scratch against an
   instance rebuilt from the recovered flows — the independent check
   that bit-identical state is also still a *valid* state. *)
let recertify ~graph ~power session =
  match Session.schedule session with
  | None -> true
  | Some sched -> (
    match
      Instance.make_result ~graph ~power ~flows:(Session.active_flows session)
    with
    | Error _ -> false
    | Ok inst -> Certify.schedule inst sched = [])

let outcome_line o = Json.to_string (Session.outcome_to_json o)

let run ?config ?pool ?(window = 5) ?(checkpoint_every = 10) ~dir ~graph ~power
    ~policy ~seed ~kills events =
  if events = [] then invalid_arg "Crash.run: empty event list";
  let events = Array.of_list events in
  let n = Array.length events in
  let kills = max 1 (min kills n) in
  mkdir_p dir;

  (* Reference pass: the uninterrupted session, snapshot + outcome line
     at every boundary.  Index i = state after events 1..i. *)
  let ref_snap = Array.make (n + 1) "" in
  let ref_out = Array.make (n + 1) "" in
  let reference = Session.create ?config ?pool ~graph ~power ~policy ~seed () in
  ref_snap.(0) <- Json.to_string (Session.snapshot reference);
  for i = 1 to n do
    ref_out.(i) <- outcome_line (Session.apply reference events.(i - 1));
    ref_snap.(i) <- Json.to_string (Session.snapshot reference)
  done;

  (* Durable pass: same log through a Store, capturing the WAL bytes
     and checkpoint bytes at every boundary so any crash point can be
     reconstructed exactly.  (Byte snapshots, not length slices: the
     WAL rotates at each checkpoint, so the final file is only the last
     segment.) *)
  let full_dir = Filename.concat dir "full" in
  rm_rf full_dir;
  let wal_snap = Array.make (n + 1) "" in
  let ckpt = Array.make (n + 1) None in
  (match
     Store.open_ ?config ?pool ~dir:full_dir ~checkpoint_every ~graph ~power
       ~policy ~seed ()
   with
  | Error m -> failwith ("Crash.run: durable pass failed to open: " ^ m)
  | Ok (store, _) ->
    let wal_path = Filename.concat full_dir "wal.log" in
    let ckpt_path = Checkpoint.path ~dir:full_dir in
    for i = 1 to n do
      let out = outcome_line (Store.apply store events.(i - 1)) in
      if out <> ref_out.(i) then
        failwith
          (Printf.sprintf
             "Crash.run: durable pass diverged from reference at event %d" i);
      wal_snap.(i) <- Option.value ~default:"" (read_file_opt wal_path);
      ckpt.(i) <- read_file_opt ckpt_path
    done;
    Store.close store);

  (* Seeded kill schedule: distinct boundaries, tear kinds, chop sizes
     — all from pre-split streams so the campaign is reproducible. *)
  let root = Prng.create seed in
  let boundary_rng = Prng.split root in
  let kind_rng = Prng.split root in
  let mangle_rng = Prng.split root in
  let boundaries = Array.init n (fun i -> i + 1) in
  Prng.shuffle boundary_rng boundaries;
  let chosen = Array.sub boundaries 0 kills in
  Array.sort compare chosen;
  let rows =
    Array.to_list chosen
    |> List.map (fun kill ->
           let tear =
             if kill >= n then Clean
             else
               match Prng.int kind_rng 3 with
               | 0 -> Chop
               | 1 -> Flip
               | _ -> Clean
           in
           let kill_dir = Filename.concat dir (Printf.sprintf "kill-%d" kill) in
           rm_rf kill_dir;
           mkdir_p kill_dir;
           (* The store directory exactly as the crash leaves it: the
              committed WAL segment, plus (for torn kills) the next
              record's bytes damaged mid-append — [Wal.append] writes
              exactly [Wal.encode], so the synthesized tail is
              byte-identical to a real torn append. *)
           let prefix = wal_snap.(kill) in
           let tail =
             match tear with
             | Clean -> ""
             | Chop | Flip ->
               let record = Wal.encode ~seq:(kill + 1) events.(kill) in
               let len = String.length record in
               (match tear with
               | Chop ->
                 let keep = 1 + Prng.int mangle_rng (len - 1) in
                 String.sub record 0 keep
               | Flip ->
                 let at = Prng.int mangle_rng (len - 1) in
                 let b = Bytes.of_string record in
                 Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
                 Bytes.to_string b
               | Clean -> assert false)
           in
           write_file (Filename.concat kill_dir "wal.log") (prefix ^ tail);
           (match ckpt.(kill) with
           | Some bytes -> write_file (Checkpoint.path ~dir:kill_dir) bytes
           | None -> ());
           let row =
             match
               Store.open_ ?config ?pool ~dir:kill_dir ~checkpoint_every ~graph
                 ~power ~policy ~seed ()
             with
             | Error _ ->
               {
                 kill;
                 tear;
                 checkpoint_seq = 0;
                 replayed = 0;
                 tear_detected = false;
                 state_match = false;
                 certified = false;
                 window = 0;
                 outcomes_match = false;
                 ok = false;
               }
             | Ok (store, recovery) ->
               let tear_detected = recovery.Store.tear <> None in
               let state_match =
                 Store.seq store = kill
                 && Json.to_string (Session.snapshot (Store.session store))
                    = ref_snap.(kill)
               in
               let certified = recertify ~graph ~power (Store.session store) in
               let upto = min n (kill + window) in
               let outcomes_match = ref true in
               for j = kill + 1 to upto do
                 let out = outcome_line (Store.apply store events.(j - 1)) in
                 if out <> ref_out.(j) then outcomes_match := false
               done;
               Store.close store;
               let ok =
                 recovery.Store.recovered
                 && tear_detected = (tear <> Clean)
                 && state_match && certified && !outcomes_match
               in
               {
                 kill;
                 tear;
                 checkpoint_seq = recovery.Store.checkpoint_seq;
                 replayed = recovery.Store.replayed;
                 tear_detected;
                 state_match;
                 certified;
                 window = upto - kill;
                 outcomes_match = !outcomes_match;
                 ok;
               }
           in
           rm_rf kill_dir;
           row)
  in
  rm_rf full_dir;
  {
    events = n;
    kills;
    seed;
    window;
    checkpoint_every;
    rows;
    ok = List.for_all (fun (r : row) -> r.ok) rows;
  }

let row_to_json (r : row) =
  Json.Obj
    [
      ("kill", Json.Int r.kill);
      ("tear", Json.Str (tear_kind_to_string r.tear));
      ("checkpoint_seq", Json.Int r.checkpoint_seq);
      ("replayed", Json.Int r.replayed);
      ("tear_detected", Json.Bool r.tear_detected);
      ("state_match", Json.Bool r.state_match);
      ("certified", Json.Bool r.certified);
      ("window", Json.Int r.window);
      ("outcomes_match", Json.Bool r.outcomes_match);
      ("ok", Json.Bool r.ok);
    ]

let to_json t =
  Json.Obj
    [
      ("events", Json.Int t.events);
      ("kills", Json.Int t.kills);
      ("seed", Json.Int t.seed);
      ("window", Json.Int t.window);
      ("checkpoint_every", Json.Int t.checkpoint_every);
      ("rows", Json.List (List.map row_to_json t.rows));
      ("ok", Json.Bool t.ok);
    ]

let pp_row ppf (r : row) =
  Format.fprintf ppf
    "kill@%-3d %-5s ckpt %-3d +%-2d replayed  %s%s%s%s  window %d"
    r.kill
    (tear_kind_to_string r.tear)
    r.checkpoint_seq r.replayed
    (if r.tear_detected then "tear-detected " else "")
    (if r.state_match then "state-ok " else "STATE-MISMATCH ")
    (if r.certified then "certified " else "UNCERTIFIED ")
    (if r.outcomes_match then "outcomes-ok" else "OUTCOME-MISMATCH")
    r.window
