module Repair = Dcn_resilience.Repair

let obs_shed =
  Dcn_obs.Registry.counter ~help:"events shed by the bounded pending queue"
    "serve.shed"

type 'a t = {
  queue : 'a Queue.t;
  capacity : int;
  shed_policy : Repair.shed_policy;
}

let create ~capacity ~policy =
  if capacity < 1 then invalid_arg "Pending.create: capacity must be >= 1";
  { queue = Queue.create (); capacity; shed_policy = policy }

let length t = Queue.length t.queue
let capacity t = t.capacity
let policy t = t.shed_policy

type 'a admission = Enqueued | Shed of 'a

let offer t item =
  if Queue.length t.queue < t.capacity then begin
    Queue.add item t.queue;
    Enqueued
  end
  else begin
    Dcn_obs.Registry.incr obs_shed;
    match t.shed_policy with
    | Repair.Shed_newest -> Shed item
    | Repair.Shed_oldest ->
      let victim = Queue.pop t.queue in
      Queue.add item t.queue;
      Shed victim
  end

let pop t = Queue.take_opt t.queue
