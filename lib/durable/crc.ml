(* Standard table-driven reflected CRC-32, poly 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int32.of_string_opt ("0x" ^ s) with
    | Some _ as v when String.for_all (function
        | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
        | _ -> false) s -> v
    | _ -> None
