(** A crash-safe serving session: {!Dcn_serve.Session} behind a
    write-ahead log and periodic checkpoints.

    Layout of a store directory:

    {v
      <dir>/wal.log          current WAL segment (Wal); rotated — reset
                             to empty — at every checkpoint, so it holds
                             only records past the checkpoint and stays
                             bounded by [checkpoint_every]
      <dir>/checkpoint.json  latest checkpoint (Checkpoint)
    v}

    {b Write-ahead invariant.}  {!apply} appends the event to the WAL
    and [fsync]s {e before} handing it to [Session.apply].  A crash at
    any byte boundary therefore loses at most an uncommitted suffix of
    the log, never a committed event; because a session is a pure
    function of [(seed, policy, config, event sequence)], replaying the
    recovered log reproduces the committed state {e bit-identically} —
    at-least-once redelivery is exact, not merely idempotent.

    {b Recovery} ({!open_}) = latest valid checkpoint + WAL tail:
    restore the checkpointed session if one loads cleanly (fall back to
    a fresh session and a full replay when it is absent or corrupt),
    truncate any torn WAL tail detected by checksum, then replay every
    record past the checkpoint's sequence number.  Two inconsistencies
    cannot be repaired and are refused as errors: a WAL segment
    beginning {e past} what the checkpoint covers (the rotated-away
    history cannot be replayed and the checkpoint cannot stand in for
    it — e.g. a deleted or corrupted checkpoint next to a rotated
    log), and a non-empty segment ending {e before} the checkpoint
    (synced log bytes lost). *)

type t

type recovery = {
  recovered : bool;  (** the directory held prior state *)
  checkpoint_seq : int;  (** 0 when no checkpoint was used *)
  checkpoint_invalid : string option;
      (** a checkpoint existed but failed validation; full replay used *)
  replayed : int;  (** WAL records replayed past the checkpoint *)
  tear : Wal.tear option;  (** torn tail truncated during recovery *)
}

val recovery_to_json : recovery -> Dcn_engine.Json.t

val open_ :
  ?config:Dcn_serve.Session.config ->
  ?pool:Dcn_engine.Pool.t ->
  dir:string ->
  checkpoint_every:int ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  policy:Dcn_resilience.Repair.policy ->
  seed:int ->
  unit ->
  (t * recovery, string) result
(** Open (creating the directory if needed) and recover.  The session
    parameters must match the ones the store was created with — the
    checkpoint fingerprint is checked by [Session.restore], and a WAL
    replayed under different parameters would diverge silently, so a
    fingerprint mismatch surfaces as an [Error].  [checkpoint_every]
    checkpoints every N committed events (>= 1); the final state is
    also checkpointed by {!close}.  Counts [serve.recoveries] and
    [serve.replayed_events]. *)

val session : t -> Dcn_serve.Session.t
val seq : t -> int
(** Sequence number of the last committed event (0 = none yet). *)

val apply : t -> Dcn_serve.Event.t -> Dcn_serve.Session.outcome
(** WAL-append + fsync, then [Session.apply], then a checkpoint if due.
    @raise Unix.Unix_error/[Failure] only on I/O failure of the log
    itself — scheduling outcomes, including rejections, are values. *)

val checkpoint_now : t -> unit
(** Force a checkpoint of the current committed state. *)

val close : t -> unit
(** Final checkpoint + close the WAL.  The store must not be used
    afterwards. *)
