module Json = Dcn_engine.Json

let obs_seq =
  Dcn_obs.Registry.gauge ~help:"committed event seq of the last checkpoint"
    "serve.checkpoint_seq"

let obs_bytes =
  Dcn_obs.Registry.gauge ~help:"size of the last checkpoint (bytes)"
    "serve.checkpoint_bytes"

let path ~dir = Filename.concat dir "checkpoint.json"

let version = 1

let write ~dir ~seq state =
  let body = Json.to_string state in
  let envelope =
    Json.to_string
      (Json.Obj
         [
           ("version", Json.Int version);
           ("seq", Json.Int seq);
           ("crc", Json.Str (Crc.to_hex (Crc.string body)));
           ("state", state);
         ])
  in
  Dcn_util.Atomic_file.write ~fsync:true ~path:(path ~dir) envelope;
  Dcn_obs.Registry.set obs_seq (float_of_int seq);
  Dcn_obs.Registry.set obs_bytes (float_of_int (String.length envelope))

type loaded =
  | Absent
  | Invalid of string
  | Loaded of { seq : int; state : Json.t }

let load ~dir =
  let file = path ~dir in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> Absent
  | raw -> (
    match Json.parse raw with
    | Error e -> Invalid (Json.parse_error_to_string e)
    | Ok j -> (
      match
        ( Json.member "version" j,
          Json.member "seq" j,
          Json.member "crc" j,
          Json.member "state" j )
      with
      | Some (Json.Int v), Some (Json.Int seq), Some (Json.Str crc), Some state
        ->
        if v <> version then Invalid (Printf.sprintf "unsupported version %d" v)
        else if seq < 0 then Invalid "negative seq"
        else
          let body = Json.to_string state in
          if Crc.to_hex (Crc.string body) <> String.lowercase_ascii crc then
            Invalid "state checksum mismatch"
          else Loaded { seq; state }
      | _ -> Invalid "missing envelope field"))
