module Json = Dcn_engine.Json
module Session = Dcn_serve.Session
module Event = Dcn_serve.Event

let obs_recoveries =
  Dcn_obs.Registry.counter ~help:"store recoveries (checkpoint and/or WAL replay)"
    "serve.recoveries"

let obs_replayed =
  Dcn_obs.Registry.counter ~help:"WAL records replayed during recovery"
    "serve.replayed_events"

let obs_ckpt_age =
  Dcn_obs.Registry.gauge ~help:"committed events since the last checkpoint"
    "serve.checkpoint_age_events"

type t = {
  dir : string;
  wal : Wal.writer;
  session : Session.t;
  checkpoint_every : int;
  mutable seq : int;
  mutable since_checkpoint : int;
}

type recovery = {
  recovered : bool;
  checkpoint_seq : int;
  checkpoint_invalid : string option;
  replayed : int;
  tear : Wal.tear option;
}

let recovery_to_json r =
  Json.Obj
    [
      ("recovered", Json.Bool r.recovered);
      ("checkpoint_seq", Json.Int r.checkpoint_seq);
      ( "checkpoint_invalid",
        match r.checkpoint_invalid with
        | None -> Json.Null
        | Some m -> Json.Str m );
      ("replayed", Json.Int r.replayed);
      ( "tear",
        match r.tear with
        | None -> Json.Null
        | Some tear -> Json.Str (Wal.tear_to_string tear) );
    ]

let wal_path dir = Filename.concat dir "wal.log"

let ( let* ) = Result.bind

let open_ ?config ?pool ~dir ~checkpoint_every ~graph ~power ~policy ~seed () =
  if checkpoint_every < 1 then
    Error "checkpoint_every must be >= 1"
  else begin
    (match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    (* Checkpoint first: a valid one short-circuits most of the replay. *)
    let* restored, checkpoint_seq, checkpoint_invalid =
      match Checkpoint.load ~dir with
      | Checkpoint.Absent -> Ok (None, 0, None)
      | Checkpoint.Invalid m -> Ok (None, 0, Some m)
      | Checkpoint.Loaded { seq; state } -> (
        match Session.restore ?config ?pool ~graph ~power ~policy state with
        | Ok session -> Ok (Some session, seq, None)
        | Error m ->
          (* A fingerprint mismatch is not recoverable by replay either:
             the WAL was committed under the mismatched parameters. *)
          if String.length m >= 11 && String.sub m 0 11 = "fingerprint" then
            Error m
          else Ok (None, 0, Some m))
    in
    let scan = Wal.scan (wal_path dir) in
    (match scan.Wal.tear with
    | Some _ -> Wal.truncate (wal_path dir) scan.Wal.valid_bytes
    | None -> ());
    let first_seq =
      match scan.Wal.records with
      | [] -> 0
      | r :: _ -> r.Wal.seq
    in
    let last_seq =
      match List.rev scan.Wal.records with
      | [] -> 0
      | r :: _ -> r.Wal.seq
    in
    (* The WAL is a segment rotated at each checkpoint, so an empty log
       (or one ending exactly at the checkpoint) is the normal
       post-checkpoint state.  What cannot be repaired: a segment whose
       first record is past what the checkpoint covers (the rotated-away
       history is gone and this checkpoint cannot stand in for it), or a
       segment that ends before the checkpoint (synced bytes lost). *)
    if first_seq > checkpoint_seq + 1 then
      Error
        (Printf.sprintf
           "store %s is inconsistent: the WAL segment begins at seq %d but \
            the %s covers only seq %d (log bytes lost)"
           dir first_seq
           (if checkpoint_seq = 0 then "(absent or invalid) checkpoint"
            else "checkpoint")
           checkpoint_seq)
    else if first_seq > 0 && last_seq < checkpoint_seq then
      Error
        (Printf.sprintf
           "store %s is inconsistent: checkpoint at seq %d but the WAL ends \
            at %d (log bytes lost)"
           dir checkpoint_seq last_seq)
    else begin
      let session =
        match restored with
        | Some s -> s
        | None ->
          Session.create ?config ?pool ~graph ~power ~policy ~seed ()
      in
      let replayed = ref 0 in
      List.iter
        (fun (r : Wal.record) ->
          if r.seq > checkpoint_seq then begin
            ignore (Session.apply session r.event);
            incr replayed
          end)
        scan.Wal.records;
      let seq = max last_seq checkpoint_seq in
      let recovered = seq > 0 in
      if recovered then begin
        Dcn_obs.Registry.incr obs_recoveries;
        Dcn_obs.Registry.add obs_replayed (float_of_int !replayed)
      end;
      let t =
        {
          dir;
          wal = Wal.open_writer (wal_path dir);
          session;
          checkpoint_every;
          seq;
          since_checkpoint = seq - checkpoint_seq;
        }
      in
      Ok
        ( t,
          {
            recovered;
            checkpoint_seq;
            checkpoint_invalid;
            replayed = !replayed;
            tear = scan.Wal.tear;
          } )
    end
  end

let session t = t.session
let seq t = t.seq

let checkpoint_now t =
  Checkpoint.write ~dir:t.dir ~seq:t.seq (Session.snapshot t.session);
  (* Every logged record is now redundant with the checkpoint: rotate
     so the WAL stays bounded by the checkpoint interval.  A crash
     between the two leaves records <= checkpoint_seq, which recovery
     skips — the rotation is advisory, never load-bearing. *)
  Wal.reset t.wal;
  t.since_checkpoint <- 0;
  Dcn_obs.Registry.set obs_ckpt_age 0.

let apply t event =
  let seq = t.seq + 1 in
  (* Write-ahead: the event must be on stable storage before any state
     it produces exists. *)
  Wal.append t.wal ~seq event;
  t.seq <- seq;
  let outcome = Session.apply t.session event in
  t.since_checkpoint <- t.since_checkpoint + 1;
  Dcn_obs.Registry.set obs_ckpt_age (float_of_int t.since_checkpoint);
  if t.since_checkpoint >= t.checkpoint_every then checkpoint_now t;
  outcome

let close t =
  checkpoint_now t;
  Wal.close t.wal
