(** Periodic checkpoints of the committed session state.

    One file, [<dir>/checkpoint.json], atomically replaced
    ({!Dcn_util.Atomic_file.write} with [fsync]) so it always holds a
    complete previous or complete new checkpoint.  The envelope is

    {v
      {"version":1, "seq":N, "crc":"<crc32>", "state":{...}}
    v}

    with [crc] the {!Crc} of the compact serialisation of [state]
    (a {!Dcn_serve.Session.snapshot}) — a half-written or bit-rotted
    checkpoint is detected on load and recovery falls back to replaying
    the whole WAL, which is always sufficient (the log is never
    compacted past what the checkpoint covers). *)

val path : dir:string -> string

val write : dir:string -> seq:int -> Dcn_engine.Json.t -> unit
(** Checkpoint [state] as of committed event [seq].  Durable (fsync'd
    temp file + rename + directory sync) before returning.  Updates the
    [serve.checkpoint_seq]/[serve.checkpoint_bytes] gauges. *)

type loaded =
  | Absent
  | Invalid of string
      (** unreadable, unparsable, wrong version, or checksum mismatch —
          recovery treats this as [Absent] plus a warning, never an
          error: the WAL alone can rebuild the session *)
  | Loaded of { seq : int; state : Dcn_engine.Json.t }

val load : dir:string -> loaded
