(** The Unix-domain-socket transport behind [dcn serve --socket]: one
    single-threaded accept/read/apply loop multiplexed with
    [Unix.select], serving the same newline-delimited JSON event
    protocol as the stdin loop — concurrently, to any number of
    clients, without threads.

    Framing and replies are {e per connection}: each client writes one
    JSON event per line and reads one JSON reply line per event, in
    order.  A malformed line earns a positioned error reply
    ([{"error":"parse","line":L,"byte":B,"offset":O,"message":...}] —
    line numbers and stream offsets are counted per connection, byte
    offsets come from {!Dcn_engine.Json.parse}) and the connection
    stays up; a client that disconnects — cleanly, mid-line, or by
    dying under a write — is dropped with its typed {!disconnect}
    recorded, and never takes the session down with it.

    Parsed events flow through a bounded {!Pending} queue between the
    read phase and the apply phase; when it overflows, the configured
    {!Dcn_resilience.Repair.shed_policy} picks a victim whose client
    is answered with a typed [{"shed":...}] reply instead of the heap
    growing without bound.  One event is applied per loop turn, so
    accepts and reads stay responsive under a heavy client; the select
    timeout drops to zero while the queue is non-empty, so a backlog
    still drains at full speed.

    The loop polls [drain] at every turn: once it returns [true] the
    listener closes, reading stops, the queued backlog is applied and
    answered, and {!serve} returns — the graceful half of SIGTERM
    handling, with the final checkpoint left to the caller. *)

type disconnect =
  | Eof  (** clean shutdown, buffer empty *)
  | Mid_line  (** EOF with an unterminated line still buffered *)
  | Idle  (** no traffic for [idle_timeout] seconds *)
  | Write_failed  (** client vanished under a reply ([EPIPE]/reset) *)
  | Write_stalled
      (** client stopped reading: its buffered replies outgrew the cap,
          or it never took its final replies during drain *)
  | Read_failed of string  (** read(2) error other than EOF *)

val disconnect_to_string : disconnect -> string

type stats = {
  accepted : int;  (** connections accepted over the loop's lifetime *)
  events : int;  (** events applied *)
  replies : int;
      (** reply lines produced (outcomes, sheds and errors) — queued to
          the connection, though a client dropped before its buffer
          flushed may never have read the tail of them *)
  parse_errors : int;  (** malformed lines answered with an error reply *)
  shed : int;  (** events refused by the pending queue *)
  disconnects : (disconnect * int) list;  (** tally by kind *)
  drained : bool;  (** the loop exited through [drain], not [Stop] *)
}

val stats_to_json : stats -> Dcn_engine.Json.t

exception Stop
(** Raise from [apply] to abort the loop immediately (fatal condition;
    queued events are dropped).  Prefer [drain] for an orderly exit. *)

val serve :
  ?idle_timeout:float ->
  ?queue_capacity:int ->
  ?shed_policy:Dcn_resilience.Repair.shed_policy ->
  ?backlog:int ->
  ?initial_seq:int ->
  socket:string ->
  drain:(unit -> bool) ->
  apply:(seq:int -> Dcn_serve.Event.t -> Dcn_engine.Json.t) ->
  unit ->
  stats
(** Bind [socket] (an existing socket file is replaced), accept and
    serve until [drain] reports true, then finish the backlog and
    return.  [SIGPIPE] is set to ignore for the process (where the
    signal exists), so a client closing under a reply surfaces as a
    typed disconnect instead of killing the server.  Connection fds
    are non-blocking: replies are buffered per connection and flushed
    as the fd accepts them, so a stalled client cannot freeze the
    loop — past 1 MiB of undelivered replies (or a bounded grace
    window at drain) it is dropped as [Write_stalled].

    [apply] is called with a global 1-based sequence number counting
    up from [initial_seq] (default 0 — pass {!Store.seq} so replies
    resume the durable sequence after recovery) and must return the
    reply object for that event — it is the only place session (or
    {!Store}) state is touched, and calls are strictly sequential.
    [idle_timeout] (default 30 s, [<= 0] disables) bounds silence per
    connection; [queue_capacity] (default 64) bounds the pending queue
    under [shed_policy] (default [Shed_newest]).  The socket file is
    unlinked on exit.
    @raise Unix.Unix_error if the socket cannot be bound. *)
