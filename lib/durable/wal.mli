(** The write-ahead event log of durable serving.

    One record per line, append-only:

    {v
      w1 <crc32> <seq> <event-json>\n
    v}

    where [<crc32>] is {!Crc.to_hex} of the bytes
    ["<seq> <event-json>"], [<seq>] is the 1-based position of the
    event in the session's committed sequence (consecutive within the
    file; the first record may start past 1, because the log is
    {!reset} to a fresh segment at every checkpoint), and
    [<event-json>] is the {e canonical}
    {!Dcn_serve.Event.to_json} encoding (re-serialised on append, so
    the log is byte-reproducible regardless of how clients formatted
    the event).  Every append is flushed and [fsync]'d before the
    caller may commit the event — the write-ahead invariant: a
    committed event is always recoverable.

    A crash can leave a {e torn tail}: a final record missing its
    newline, or with bytes garbled between write and sync.  {!scan}
    detects this with the per-record checksum and reports the longest
    valid prefix; recovery truncates the file there ({!truncate}) and
    replays the prefix.  Corruption is never an exception — a WAL is
    read after a crash, when raising would turn a survivable tear into
    an unrecoverable store. *)

type record = {
  seq : int;
  event : Dcn_serve.Event.t;
  json : string;  (** the canonical event JSON exactly as logged *)
}

type tear =
  | Partial_line  (** final record missing its newline (torn append) *)
  | Bad_header  (** malformed framing or out-of-sequence [seq] *)
  | Bad_checksum  (** record bytes do not match their CRC *)
  | Bad_event of string
      (** checksum valid but the JSON no longer parses as an event —
          only reachable if the log was edited, kept for totality *)

val tear_to_string : tear -> string

type scan = {
  records : record list;  (** the longest valid prefix, in order *)
  valid_bytes : int;  (** byte length of that prefix in the file *)
  tear : tear option;
      (** why scanning stopped before the end of the file, if it did *)
}

val scan : string -> scan
(** Scan a WAL file.  A missing file is an empty log.  Scanning stops
    at the first invalid record; everything after it is suspect (the
    crash-consistency note in DESIGN.md) and excluded from
    [valid_bytes].  Records must carry consecutive sequence numbers —
    a gap stops the scan like any other tear.  The first record may
    carry any positive [seq]: whether the segment's start is
    consistent with the checkpoint is the caller's ({!Store}'s)
    judgement, not the scanner's. *)

val truncate : string -> int -> unit
(** [truncate path valid_bytes] chops a torn tail off, after which
    {!scan} returns a clean log.  Recovery calls this before the writer
    re-opens the file for append. *)

val encode : seq:int -> Dcn_serve.Event.t -> string
(** The full record line including the trailing newline — exposed so
    tests and fixtures are built from the one authoritative encoder. *)

type writer

val open_writer : string -> writer
(** Open (creating if needed) for append.  The caller is responsible
    for scanning/truncating first; the writer never reads. *)

val append : writer -> seq:int -> Dcn_serve.Event.t -> unit
(** Append one record and [fsync].  Returns only once the record is on
    stable storage; short writes and [EINTR] are retried until the
    whole record is down.  Counts
    [serve.wal_appends]/[serve.wal_bytes]. *)

val reset : writer -> unit
(** Truncate the log to an empty segment — called right after a
    checkpoint has made every logged record redundant, so a long-lived
    session's WAL stays bounded by the checkpoint interval instead of
    growing (and being re-scanned on recovery) without limit.  The
    next {!append} starts the new segment at the caller's current
    sequence number. *)

val close : writer -> unit
