module Json = Dcn_engine.Json
module Event = Dcn_serve.Event

type record = { seq : int; event : Event.t; json : string }

type tear =
  | Partial_line
  | Bad_header
  | Bad_checksum
  | Bad_event of string

let tear_to_string = function
  | Partial_line -> "torn final record (missing newline)"
  | Bad_header -> "malformed record framing"
  | Bad_checksum -> "record checksum mismatch"
  | Bad_event m -> Printf.sprintf "checksummed record is not an event: %s" m

type scan = { records : record list; valid_bytes : int; tear : tear option }

let obs_appends =
  Dcn_obs.Registry.counter ~help:"WAL records appended (fsync'd)"
    "serve.wal_appends"

let obs_bytes =
  Dcn_obs.Registry.counter ~help:"WAL bytes appended" "serve.wal_bytes"

let magic = "w1"

let encode ~seq event =
  let json = Json.to_string (Event.to_json event) in
  let body = Printf.sprintf "%d %s" seq json in
  Printf.sprintf "%s %s %s\n" magic (Crc.to_hex (Crc.string body)) body

(* One record starting at [off] in [buf] (the whole file).  Returns the
   parsed record and the offset one past its newline, or the tear that
   stops the scan.  [expected] is the sequence number this record must
   carry — [None] for the first record of a segment, which may start
   anywhere after a rotation. *)
let parse_record buf ~off ~expected =
  match String.index_from_opt buf off '\n' with
  | None -> Error Partial_line
  | Some nl -> (
    let line = String.sub buf off (nl - off) in
    (* "w1 <crc8> <seq> <json>" — split off the first three tokens. *)
    match String.split_on_char ' ' line with
    | m :: crc_hex :: seq_str :: _ when m = magic -> (
      match (Crc.of_hex crc_hex, int_of_string_opt seq_str) with
      | None, _ | _, None -> Error Bad_header
      | Some crc, Some seq ->
        if seq < 1 || (match expected with Some e -> seq <> e | None -> false)
        then Error Bad_header
        else
          let body_off = String.length magic + 1 + 8 + 1 in
          let body = String.sub line body_off (String.length line - body_off) in
          if Crc.string body <> crc then Error Bad_checksum
          else
            let json_off = String.length seq_str + 1 in
            let json = String.sub body json_off (String.length body - json_off) in
            (match Json.parse json with
            | Error e -> Error (Bad_event (Json.parse_error_to_string e))
            | Ok j -> (
              match Event.of_json j with
              | Error m -> Error (Bad_event m)
              | Ok event -> Ok ({ seq; event; json }, nl + 1))))
    | _ -> Error Bad_header)

let scan path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> { records = []; valid_bytes = 0; tear = None }
  | buf ->
    let n = String.length buf in
    let rec go acc off expected =
      if off >= n then { records = List.rev acc; valid_bytes = off; tear = None }
      else
        match parse_record buf ~off ~expected with
        | Ok (r, off') -> go (r :: acc) off' (Some (r.seq + 1))
        | Error tear ->
          { records = List.rev acc; valid_bytes = off; tear = Some tear }
    in
    go [] 0 None

let truncate path valid_bytes = Unix.truncate path valid_bytes

type writer = { fd : Unix.file_descr }

let open_writer path =
  { fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 }

(* write(2) may write less than asked (quota boundary, signal after a
   partial transfer); a short write is a loop iteration, not an error. *)
let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let append w ~seq event =
  let line = encode ~seq event in
  let len = String.length line in
  write_all w.fd line 0 len;
  Unix.fsync w.fd;
  Dcn_obs.Registry.incr obs_appends;
  Dcn_obs.Registry.add obs_bytes (float_of_int len)

let reset w =
  Unix.ftruncate w.fd 0;
  Unix.fsync w.fd

let close w = Unix.close w.fd
