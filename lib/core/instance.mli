(** A problem instance: network, power model and deadline-constrained
    flows — the common input of DCFS and DCFSR. *)

type t = private {
  graph : Dcn_topology.Graph.t;
  power : Dcn_power.Model.t;
  flows : Dcn_flow.Flow.t list;
}

(** Why an instance was rejected at construction time.  Catching bad
    inputs here — not deep inside a solver dividing by a zero-length
    window — is what lets the parsers and the fault-repair pipeline
    return typed errors instead of crashing. *)
type error =
  | Empty_flows  (** the flow list is empty *)
  | Duplicate_flow_id of { flow : int }
  | Bad_endpoint of { flow : int; node : int }
      (** an endpoint is not a node of the graph *)
  | Empty_window of { flow : int; release : float; deadline : float }
      (** [release >= deadline]: the flow's density would divide by
          zero (defence in depth over [Flow.make], which rejects such
          windows too — this clause fires for windows so short the
          density is not finite) *)
  | Nonpositive_volume of { flow : int; volume : float }
  | Nonpositive_capacity of { cap : float }

exception Invalid of error

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val validate :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  flows:Dcn_flow.Flow.t list ->
  (unit, error) result
(** The first violated clause, if any; {!make} is [validate] plus
    construction. *)

val make :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  flows:Dcn_flow.Flow.t list ->
  t
(** @raise Invalid when {!validate} rejects the parts. *)

val make_result :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  flows:Dcn_flow.Flow.t list ->
  (t, error) result
(** Non-raising {!make}. *)

val horizon : t -> float * float
(** [(T0, T1)] = (earliest release, latest deadline). *)

val num_flows : t -> int

val flow_array : t -> Dcn_flow.Flow.t array
(** Flows sorted by id; ids need not be dense. *)

val find_flow_opt : t -> int -> Dcn_flow.Flow.t option
(** The flow with the given id, or [None]. *)


val timeline : t -> Dcn_flow.Timeline.t
(** Interval structure of the instance (computed fresh). *)

val pp : Format.formatter -> t -> unit
