(** A problem instance: network, power model and deadline-constrained
    flows — the common input of DCFS and DCFSR. *)

type t = private {
  graph : Dcn_topology.Graph.t;
  power : Dcn_power.Model.t;
  flows : Dcn_flow.Flow.t list;
}

val make :
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  flows:Dcn_flow.Flow.t list ->
  t
(** @raise Invalid_argument if the flow list is empty, flow ids are not
    distinct, or some endpoint is not a node of the graph. *)

val horizon : t -> float * float
(** [(T0, T1)] = (earliest release, latest deadline). *)

val num_flows : t -> int

val flow_array : t -> Dcn_flow.Flow.t array
(** Flows sorted by id; ids need not be dense. *)

val find_flow_opt : t -> int -> Dcn_flow.Flow.t option
(** The flow with the given id, or [None]. *)

val find_flow : t -> int -> Dcn_flow.Flow.t
(** @deprecated Use {!find_flow_opt}; this partial version remains for
    existing callers.
    @raise Not_found for an unknown flow id. *)

val timeline : t -> Dcn_flow.Timeline.t
(** Interval structure of the instance (computed fresh). *)

val pp : Format.formatter -> t -> unit
