(** Algorithm 2 of the paper: {b Random-Schedule}, the approximation
    algorithm for DCFSR (joint flow scheduling and routing).

    Pipeline (Section V-A):

    + relax to a multi-step fractional MCF and solve each interval's
      convex program ({!Relaxation});
    + extract candidate paths per flow by Raghavan–Tompson decomposition
      and weight each path by
      [w̄_P = sum over k of w_P(k) |I_k| / (d_i - r_i)];
    + choose one path per flow at random with probability proportional
      to [w̄_P];
    + in every interval run each used link at rate
      [sum of D_i over J_e(k)] with EDF among the flows — realised here
      by letting each flow transmit at its density [D_i] across its span
      on the chosen path, which yields exactly those link rates and
      meets every deadline (Theorem 4).

    The rounding does not guarantee the capacity constraint; as the
    paper notes, the draw can be repeated.  [solve] redraws up to
    [attempts] times, returning the first feasible draw (or the
    least-overloaded draw if none is feasible within the budget) and
    reporting what happened. *)

type config = {
  attempts : int;  (** rounding redraws, default 20; must be >= 1 *)
  fw_config : Dcn_mcf.Frank_wolfe.config;
}

val default_config : config

val candidate_paths :
  Relaxation.t ->
  Dcn_flow.Flow.t ->
  (Dcn_topology.Graph.link list * float) list
(** The flow's candidate routing paths across all intervals of the
    relaxation, each with the paper's combined weight
    [w̄_P = sum over k of w_P(k) |I_k| / (d_i - r_i)] — the sampling
    distribution of step 3.  Deterministically ordered.  Exposed for
    the serving layer, which draws a path for a newly admitted flow
    from the warm relaxation without re-rounding committed flows. *)

val name : string
(** ["random-schedule"] *)

val solve :
  ?config:config ->
  ?relaxation:Relaxation.t ->
  instance:Instance.t ->
  workspace:Solver_api.workspace ->
  deadline:Dcn_engine.Deadline.t ->
  ?previous:Solution.t ->
  unit ->
  Solution.t
(** Returns a {!Solution.t} whose [meta] is {!Solution.Rounding}: the
    chosen paths, redraws consumed and the fractional relaxation (for LB
    reuse).  [per_flow_rates] are the interval densities [D_i].

    [relaxation] short-circuits step 1 when the caller already solved it
    (e.g. to share it with {!Lower_bound}).  Otherwise, a [previous]
    solution carrying a relaxation (an earlier Random-Schedule run on a
    nearby instance) warm-starts step 1 through
    {!Relaxation.resolve} over the full horizon: every interval is
    re-solved, seeded from the previous fractional paths of the flows
    both instances share.

    [workspace.pool] parallelises both the per-interval relaxation
    programs and the rounding redraws; [workspace.kernel] supplies the
    flat Frank–Wolfe arenas, reused across calls.  Redraws get one
    pre-split PRNG stream each (off [workspace.rng]) and are evaluated
    in index-ordered batches, keeping the paper's first-feasible
    semantics (the lowest-index feasible draw wins), so the solution is
    bit-identical for every pool size — including the sequential
    default.  [deadline] is polled between attempt batches and inside
    Frank–Wolfe.

    @raise Invalid_argument if [config.attempts < 1]. *)

module Api : Solver_api.S
(** [solve] with default [config] and no pre-solved relaxation. *)

val refine : Instance.t -> Solution.t -> Solution.t
(** Ablation (not in the paper): keep Random-Schedule's routing but
    replace the interval-density rates by the DCFS schedule on those
    paths (Most-Critical-First).  Wins under light load (one constant
    rate per flow, Lemma 1); can lose under congestion, where DCFS's
    virtual-circuit serialisation forces higher rates than RS's fluid
    link sharing. *)
