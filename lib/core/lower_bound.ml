type t = {
  value : float;
  fractional_cost : float;
  relaxation : Relaxation.t;
}

let of_relaxation relaxation =
  { value = relaxation.Relaxation.lb; fractional_cost = relaxation.Relaxation.cost; relaxation }

let compute ?pool ?fw_config inst =
  of_relaxation (Relaxation.solve ?pool ?fw_config inst)
