(** Greedy energy-aware routing — an online-capable competitor.

    The energy-aware-routing line of work the paper compares against
    (Shang et al. [2], GreenDCN [5]) routes flows one at a time on the
    path that increases energy the least.  This module implements that
    greedy for the paper's model: flows are processed in release order
    (so the algorithm never looks at flows that have not arrived — it
    can run online); each flow picks the path minimising the marginal
    increase of [sum over k of |I_k| * f(X_e(k))] where [X_e(k)] are the
    interval link loads of the flows already routed, all transmitting at
    their densities.  Scheduling is the same interval-density scheme as
    Random-Schedule, so deadlines are met by the Theorem 4 argument.

    Against Random-Schedule it isolates the value of the fractional
    relaxation: both spread load energy-aware, but the greedy commits
    per flow with no global view and no randomisation.

    Implements {!Solver_api.S} directly. *)

val name : string
(** ["greedy-ear"] *)

val solve :
  instance:Instance.t ->
  workspace:Solver_api.workspace ->
  deadline:Dcn_engine.Deadline.t ->
  ?previous:Solution.t ->
  unit ->
  Solution.t
(** Deterministic (ties broken by Dijkstra's fixed order); [workspace]
    and [previous] are ignored.  [meta] is {!Solution.Routed} with
    every flow accepted; [feasible] reports whether the greedy's loads
    happen to respect link capacity (it is not capacity-aware).  Polls
    [deadline] once per routed flow.
    @raise Invalid_argument if some flow's endpoints are disconnected. *)
