module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

let name = "greedy-ear"

let solve ~instance:inst ~workspace:(_ : Solver_api.workspace) ~deadline
    ?previous:(_ : Solution.t option) () =
  Solver_api.under_deadline deadline @@ fun () ->
  Dcn_engine.Trace.span "greedy_ear.solve"
    ~fields:[ ("flows", Dcn_engine.Json.Int (Instance.num_flows inst)) ]
  @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let tl = Instance.timeline inst in
  let k = Timeline.num_intervals tl in
  let m = Graph.num_links g in
  (* loads.(e).(j): density already committed to link e in interval j. *)
  let loads = Array.make_matrix m k 0. in
  (* Release order makes the algorithm online-implementable. *)
  let ordered =
    List.sort
      (fun (f1 : Flow.t) f2 -> compare (f1.release, f1.id) (f2.Flow.release, f2.Flow.id))
      inst.Instance.flows
  in
  let chosen = Hashtbl.create 16 in
  List.iter
    (fun (f : Flow.t) ->
      (* One watchdog poll per routed flow. *)
      Dcn_engine.Deadline.check ();
      let d = Flow.density f in
      let my_intervals = Timeline.interval_indices_of tl f in
      (* Marginal energy of adding density d to link e across the flow's
         intervals, with f evaluated through the real fixed-charge power
         function (so switching on a cold link pays sigma). *)
      let weight e =
        List.fold_left
          (fun acc j ->
            let x = loads.(e).(j) in
            acc
            +. (Timeline.length tl j
               *. (Model.total power (x +. d) -. Model.total power x)))
          0. my_intervals
      in
      let tree = Paths.shortest_tree ~weight g ~src:f.src in
      match Paths.extract_path g tree ~dst:f.dst with
      | None ->
        invalid_arg (Printf.sprintf "Greedy_ear.solve: flow %d disconnected" f.id)
      | Some path ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "greedy_ear.route"
            ~fields:
              [
                ("flow", Dcn_engine.Json.Int f.id);
                ("hops", Dcn_engine.Json.Int (List.length path));
              ];
        Hashtbl.replace chosen f.id path;
        List.iter
          (fun e -> List.iter (fun j -> loads.(e).(j) <- loads.(e).(j) +. d) my_intervals)
          path)
    ordered;
  let t0, t1 = Instance.horizon inst in
  let plans =
    List.map
      (fun (f : Flow.t) ->
        {
          Schedule.flow = f;
          path = Hashtbl.find chosen f.id;
          slots =
            [ { Schedule.start = f.release; stop = f.deadline; rate = Flow.density f } ];
        })
      inst.Instance.flows
  in
  let schedule = Schedule.make ~graph:g ~power ~horizon:(t0, t1) plans in
  Selfcheck.schedule ~label:"greedy-ear" ~partial:false inst schedule;
  let paths =
    List.map
      (fun (f : Flow.t) -> (f.id, Hashtbl.find chosen f.id))
      inst.Instance.flows
  in
  (* The greedy admits every flow; it may overshoot link capacity where
     a capacity-aware solver would have spread the load. *)
  let cap = power.Model.cap in
  let overload = Schedule.max_link_rate schedule -. cap in
  {
    Solution.algorithm = name;
    energy = Schedule.energy schedule;
    feasible = overload <= 1e-6 *. Float.max 1. cap;
    schedule;
    per_flow_rates =
      List.map (fun (f : Flow.t) -> (f.id, Flow.density f)) inst.Instance.flows;
    meta =
      Solution.Routed
        {
          paths;
          accepted = List.sort compare (List.map fst paths);
          rejected = [];
        };
  }
