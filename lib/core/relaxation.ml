(* The multi-step fractional MCF relaxation of Algorithm 2 (steps 1-5):
   per interval I_k, route every active flow's density D_i fractionally,
   minimising the sum of convex link costs.  The convex surrogate for the
   paper's fixed-charge f is its lower convex envelope (see
   Dcn_power.Model.envelope and DESIGN.md); capacities are enforced by
   the Frank-Wolfe penalty.  Shared by Random_schedule (which rounds the
   fractional paths) and Lower_bound (which just takes the cost).

   [resolve] is the incremental entry point of the serving layer: given
   the relaxation of a nearby instance (one flow added, cancelled or
   retired), only the intervals overlapping the change's window are
   re-solved — warm-started from the previous fractional paths — and
   every other interval's solution is reused verbatim.  All per-interval
   quantities (cost, lb) are per unit time, so an interval split by a
   new breakpoint outside the window reuses the old solution on both
   halves unchanged. *)

module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Fw = Dcn_mcf.Frank_wolfe
module Decompose = Dcn_mcf.Decompose
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type interval_solution = {
  index : int;
  bounds : float * float;
  cost : float;  (* envelope cost of the fractional loads (per unit time) *)
  lb : float;  (* certified lower bound on the interval's convex optimum *)
  max_overload : float;
  flow_paths : (int * Decompose.weighted_path list) list;
      (* flow id -> weighted paths, weights summing to the density *)
}

type t = {
  timeline : Timeline.t;
  intervals : interval_solution array;
  cost : float;  (* sum over k of |I_k| * cost_k *)
  lb : float;  (* sum over k of |I_k| * lb_k *)
}

type reuse_stats = { resolved : int; reused : int }

let trace_interval (s : interval_solution) ~active ~iterations =
  if Trace.on () then
    let lo, hi = s.bounds in
    Trace.event "relaxation.interval"
      ~fields:
        [
          ("index", Json.Int s.index);
          ("lo", Json.float lo);
          ("hi", Json.float hi);
          ("active", Json.Int active);
          ("cost", Json.float s.cost);
          ("lb", Json.float s.lb);
          ("max_overload", Json.float s.max_overload);
          ("fw_iterations", Json.Int iterations);
        ]

(* The power model's envelope in closed form, so the kernel engine can
   inline the cost arithmetic (see Frank_wolfe.piecewise). *)
let piecewise_of power =
  let r = Model.r_hat power in
  {
    Fw.threshold = r;
    slope = (if r > 0. then Model.power_rate power r else 0.);
    sigma = power.Model.sigma;
    mu = power.Model.mu;
    alpha = power.Model.alpha;
  }

(* One interval's F-MCF program.  [warm] supplies a previous fractional
   routing per flow (an empty list means cold-start that flow). *)
let solve_interval ~g ~power ~tl ~flows ~fw_config ~workspace ~warm k =
  let bounds = Timeline.bounds tl k in
  let active = Timeline.active tl flows k in
  match active with
  | [] ->
    let s =
      {
        index = k;
        bounds;
        cost = 0.;
        lb = 0.;
        max_overload = neg_infinity;
        flow_paths = [];
      }
    in
    trace_interval s ~active:0 ~iterations:0;
    s
  | _ ->
    let commodities =
      List.mapi
        (fun index (f : Flow.t) ->
          Dcn_mcf.Commodity.make ~index ~src:f.src ~dst:f.dst
            ~demand:(Flow.density f))
        active
    in
    let active_arr = Array.of_list active in
    let warm_start i = warm active_arr.(i) in
    let problem =
      {
        Fw.graph = g;
        commodities = Array.of_list commodities;
        cost = Model.envelope power;
        cost_deriv = Model.envelope_deriv power;
        capacity = power.Model.cap;
      }
    in
    let sol =
      Fw.solve ~config:fw_config ~warm_start ?workspace
        ~piecewise:(piecewise_of power) problem
    in
    let flow_paths =
      List.mapi
        (fun i (f : Flow.t) ->
          let paths =
            Decompose.run g ~src:f.src ~dst:f.dst ~flow:sol.Fw.flows.(i)
          in
          (f.id, paths))
        active
    in
    let s =
      {
        index = k;
        bounds;
        cost = sol.Fw.cost;
        lb = Fw.lower_bound_cost problem sol;
        max_overload = sol.Fw.max_overload;
        flow_paths;
      }
    in
    trace_interval s ~active:(List.length active) ~iterations:sol.Fw.iterations;
    s

(* Live-telemetry counters (one-branch no-ops unless the registry is
   enabled); incremented on the caller's domain after the pool barrier
   so totals are identical at every [--jobs]. *)
let obs_solved =
  Dcn_obs.Registry.counter ~help:"intervals solved from scratch"
    "relaxation.intervals_solved"

let obs_reused =
  Dcn_obs.Registry.counter ~help:"intervals reused verbatim"
    "relaxation.intervals_reused"

let weighted intervals part =
  Array.fold_left
    (fun acc s ->
      let lo, hi = s.bounds in
      acc +. ((hi -. lo) *. part s))
    0. intervals

let solve ?(pool = Dcn_engine.Pool.sequential) ?(fw_config = Fw.default_config)
    ?workspace inst =
  Dcn_obs.Stage.time "core.relaxation" @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let tl = Instance.timeline inst in
  let flows = inst.Instance.flows in
  Trace.span "relaxation.solve"
    ~fields:[ ("intervals", Json.Int (Timeline.num_intervals tl)) ]
  @@ fun () ->
  let cold _ = [] in
  (* The per-interval F-MCF programs are independent; fan them across
     the pool (the result array is index-ordered, so the outcome does
     not depend on the pool size). *)
  let intervals =
    Dcn_engine.Pool.map pool
      (solve_interval ~g ~power ~tl ~flows ~fw_config ~workspace ~warm:cold)
      (Array.init (Timeline.num_intervals tl) Fun.id)
  in
  Dcn_obs.Registry.incr ~by:(Array.length intervals) obs_solved;
  {
    timeline = tl;
    intervals;
    cost = weighted intervals (fun s -> s.cost);
    lb = weighted intervals (fun s -> s.lb);
  }

let resolve ?(pool = Dcn_engine.Pool.sequential) ?(fw_config = Fw.default_config)
    ?workspace ~previous ~window inst =
  Dcn_obs.Stage.time "core.relaxation" @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let tl = Instance.timeline inst in
  let flows = inst.Instance.flows in
  let wlo, whi = window in
  let _, t1 = Timeline.horizon tl in
  let tiny = 1e-9 *. Float.max 1. (Float.abs t1) in
  Trace.span "relaxation.resolve"
    ~fields:
      [
        ("intervals", Json.Int (Timeline.num_intervals tl));
        ("window_lo", Json.float wlo);
        ("window_hi", Json.float whi);
      ]
  @@ fun () ->
  (* The previous interval covering a time point, if any. *)
  let previous_at mid =
    match Timeline.index_at previous.timeline mid with
    | None -> None
    | Some j -> Some previous.intervals.(j)
  in
  let ids_of_paths fps = List.sort_uniq compare (List.map fst fps) in
  let solve_one k =
    let lo, hi = Timeline.bounds tl k in
    let mid = 0.5 *. (lo +. hi) in
    let prev = previous_at mid in
    let dirty = hi > wlo +. tiny && lo < whi -. tiny in
    let reusable =
      (* Outside the change's window the active set is unchanged by
         construction — but verify against the previous solution's flow
         ids rather than trust the caller's window: a mismatch falls
         back to a fresh solve, never to a stale reuse. *)
      if dirty then None
      else
        match prev with
        | None -> None
        | Some p ->
          let active_ids =
            List.sort_uniq compare
              (List.map (fun (f : Flow.t) -> f.Flow.id) (Timeline.active tl flows k))
          in
          if active_ids = ids_of_paths p.flow_paths then Some p else None
    in
    match reusable with
    | Some p -> ({ p with index = k; bounds = (lo, hi) }, true)
    | None ->
      let warm (f : Flow.t) =
        match prev with
        | None -> []
        | Some p -> Option.value ~default:[] (List.assoc_opt f.id p.flow_paths)
      in
      (solve_interval ~g ~power ~tl ~flows ~fw_config ~workspace ~warm k, false)
  in
  let results =
    Dcn_engine.Pool.map pool solve_one
      (Array.init (Timeline.num_intervals tl) Fun.id)
  in
  let intervals = Array.map fst results in
  let reused =
    Array.fold_left (fun acc (_, r) -> if r then acc + 1 else acc) 0 results
  in
  let stats = { resolved = Array.length results - reused; reused } in
  Dcn_obs.Registry.incr ~by:stats.resolved obs_solved;
  Dcn_obs.Registry.incr ~by:stats.reused obs_reused;
  ( {
      timeline = tl;
      intervals;
      cost = weighted intervals (fun s -> s.cost);
      lb = weighted intervals (fun s -> s.lb);
    },
    stats )
