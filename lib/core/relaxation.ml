(* The multi-step fractional MCF relaxation of Algorithm 2 (steps 1-5):
   per interval I_k, route every active flow's density D_i fractionally,
   minimising the sum of convex link costs.  The convex surrogate for the
   paper's fixed-charge f is its lower convex envelope (see
   Dcn_power.Model.envelope and DESIGN.md); capacities are enforced by
   the Frank-Wolfe penalty.  Shared by Random_schedule (which rounds the
   fractional paths) and Lower_bound (which just takes the cost). *)

module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Fw = Dcn_mcf.Frank_wolfe
module Decompose = Dcn_mcf.Decompose
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type interval_solution = {
  index : int;
  bounds : float * float;
  cost : float;  (* envelope cost of the fractional loads (per unit time) *)
  lb : float;  (* certified lower bound on the interval's convex optimum *)
  max_overload : float;
  flow_paths : (int * Decompose.weighted_path list) list;
      (* flow id -> weighted paths, weights summing to the density *)
}

type t = {
  timeline : Timeline.t;
  intervals : interval_solution array;
  cost : float;  (* sum over k of |I_k| * cost_k *)
  lb : float;  (* sum over k of |I_k| * lb_k *)
}

let solve ?(pool = Dcn_engine.Pool.sequential) ?(fw_config = Fw.default_config) inst =
  Dcn_engine.Metrics.time "core.relaxation" @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let tl = Instance.timeline inst in
  let flows = inst.Instance.flows in
  Trace.span "relaxation.solve"
    ~fields:[ ("intervals", Json.Int (Timeline.num_intervals tl)) ]
  @@ fun () ->
  let trace_interval (s : interval_solution) ~active ~iterations =
    if Trace.on () then
      let lo, hi = s.bounds in
      Trace.event "relaxation.interval"
        ~fields:
          [
            ("index", Json.Int s.index);
            ("lo", Json.float lo);
            ("hi", Json.float hi);
            ("active", Json.Int active);
            ("cost", Json.float s.cost);
            ("lb", Json.float s.lb);
            ("max_overload", Json.float s.max_overload);
            ("fw_iterations", Json.Int iterations);
          ]
  in
  let solve_interval k =
    let bounds = Timeline.bounds tl k in
    let active = Timeline.active tl flows k in
    match active with
    | [] ->
      let s =
        {
          index = k;
          bounds;
          cost = 0.;
          lb = 0.;
          max_overload = neg_infinity;
          flow_paths = [];
        }
      in
      trace_interval s ~active:0 ~iterations:0;
      s
    | _ ->
      let commodities =
        List.mapi
          (fun index (f : Flow.t) ->
            Dcn_mcf.Commodity.make ~index ~src:f.src ~dst:f.dst
              ~demand:(Flow.density f))
          active
      in
      let problem =
        {
          Fw.graph = g;
          commodities = Array.of_list commodities;
          cost = Model.envelope power;
          cost_deriv = Model.envelope_deriv power;
          capacity = power.Model.cap;
        }
      in
      let sol = Fw.solve ~config:fw_config problem in
      let flow_paths =
        List.mapi
          (fun i (f : Flow.t) ->
            let paths =
              Decompose.run g ~src:f.src ~dst:f.dst ~flow:sol.Fw.flows.(i)
            in
            (f.id, paths))
          active
      in
      let s =
        {
          index = k;
          bounds;
          cost = sol.Fw.cost;
          lb = Fw.lower_bound_cost problem sol;
          max_overload = sol.Fw.max_overload;
          flow_paths;
        }
      in
      trace_interval s ~active:(List.length active) ~iterations:sol.Fw.iterations;
      s
  in
  (* The per-interval F-MCF programs are independent; fan them across
     the pool (the result array is index-ordered, so the outcome does
     not depend on the pool size). *)
  let intervals =
    Dcn_engine.Pool.map pool solve_interval
      (Array.init (Timeline.num_intervals tl) Fun.id)
  in
  let weighted part =
    Array.fold_left
      (fun acc s ->
        let lo, hi = s.bounds in
        acc +. ((hi -. lo) *. part s))
      0. intervals
  in
  {
    timeline = tl;
    intervals;
    cost = weighted (fun s -> s.cost);
    lb = weighted (fun s -> s.lb);
  }
