module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

let header = "dcnsched-instance v1"

let float_to_string x = if x = infinity then "inf" else Printf.sprintf "%.17g" x

let instance_to_string (inst : Instance.t) =
  let g = inst.graph in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s" header;
  for v = 0 to Graph.num_nodes g - 1 do
    match Graph.node_kind g v with
    | Graph.Host -> line "node %d host %s" v (Graph.node_name g v)
    | Graph.Switch { tier } -> line "node %d switch:%d %s" v tier (Graph.node_name g v)
  done;
  (* Cables are link pairs (fwd, bwd); emit each once, in id order, so a
     rebuilt graph assigns identical link ids. *)
  for l = 0 to Graph.num_links g - 1 do
    if l mod 2 = 0 then line "cable %d %d" (Graph.link_src g l) (Graph.link_dst g l)
  done;
  let p = inst.power in
  line "power %s %s %s %s" (float_to_string p.Model.sigma) (float_to_string p.Model.mu)
    (float_to_string p.Model.alpha) (float_to_string p.Model.cap);
  List.iter
    (fun (f : Flow.t) ->
      line "flow %d %d %d %s %s %s" f.id f.src f.dst (float_to_string f.volume)
        (float_to_string f.release) (float_to_string f.deadline))
    inst.flows;
  Buffer.contents buf

type parse_error = { line : int; position : int; message : string }

let parse_error_to_string e =
  if e.line = 0 then e.message
  else Printf.sprintf "line %d (byte %d): %s" e.line e.position e.message

exception Bad of parse_error

let bad ~at ~position fmt =
  Printf.ksprintf (fun message -> raise (Bad { line = at; position; message })) fmt

(* Iterate the input line by line, tracking each line's starting byte
   offset so errors can point at the exact position of the defect.
   Nothing [f] raises except [Bad] escapes: [Invalid_argument] from the
   graph builder / [Flow.make] and the typed [Instance.Invalid] are
   rewritten into positioned errors, so truncated or corrupted input
   yields a typed result, never an exception leak. *)
let iter_lines text f =
  let n = String.length text in
  let offset = ref 0 in
  let at = ref 0 in
  while !offset <= n do
    let stop =
      match String.index_from_opt text !offset '\n' with Some i -> i | None -> n
    in
    incr at;
    let raw = String.sub text !offset (stop - !offset) in
    let position = !offset in
    (try f ~at:!at ~position raw with
    | Bad _ as e -> raise e
    | Invalid_argument m | Failure m -> bad ~at:!at ~position "%s" m
    | Instance.Invalid e -> bad ~at:!at ~position "%s" (Instance.error_to_string e));
    offset := stop + 1
  done

let parse_float ~at ~position s =
  if s = "inf" then infinity
  else
    match float_of_string_opt s with
    | Some x -> x
    | None -> bad ~at ~position "bad number %S" s

let parse_int ~at ~position s =
  match int_of_string_opt s with
  | Some x -> x
  | None -> bad ~at ~position "bad integer %S" s

let instance_of_string_result text =
  let builder = Graph.Builder.create () in
  let next_node = ref 0 in
  let power = ref None in
  let flows = ref [] in
  let seen_header = ref false in
  let last = ref { line = 0; position = 0; message = "" } in
  try
    iter_lines text (fun ~at ~position raw ->
        last := { line = at; position; message = "" };
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed.[0] = '#' then ()
        else if not !seen_header then
          if trimmed = header then seen_header := true
          else bad ~at ~position "expected %S" header
        else
          let parse_float = parse_float ~at ~position in
          let parse_int = parse_int ~at ~position in
          match String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "") with
          | "node" :: id :: kind :: rest ->
            let id = parse_int id in
            if id <> !next_node then
              bad ~at ~position "node ids must be dense (got %d)" id;
            let name = match rest with [] -> None | n :: _ -> Some n in
            let kind =
              if kind = "host" then Graph.Host
              else
                match String.split_on_char ':' kind with
                | [ "switch"; tier ] -> Graph.Switch { tier = parse_int tier }
                | _ -> bad ~at ~position "bad node kind %S" kind
            in
            ignore (Graph.Builder.add_node builder ?name kind);
            incr next_node
          | [ "cable"; u; v ] ->
            ignore (Graph.Builder.add_cable builder (parse_int u) (parse_int v))
          | [ "power"; sigma; mu; alpha; cap ] ->
            power :=
              Some
                (Model.make ~sigma:(parse_float sigma) ~mu:(parse_float mu)
                   ~alpha:(parse_float alpha) ~cap:(parse_float cap) ())
          | [ "flow"; id; src; dst; volume; release; deadline ] ->
            flows :=
              Flow.make ~id:(parse_int id) ~src:(parse_int src) ~dst:(parse_int dst)
                ~volume:(parse_float volume) ~release:(parse_float release)
                ~deadline:(parse_float deadline)
              :: !flows
          | token :: _ -> bad ~at ~position "unknown directive %S" token
          | [] -> ());
    if not !seen_header then
      Error { line = 0; position = 0; message = "empty input: missing header" }
    else
      let graph = Graph.Builder.finish builder in
      match !power with
      | None -> Error { line = 0; position = 0; message = "missing 'power' line" }
      | Some power -> (
        match Instance.make_result ~graph ~power ~flows:(List.rev !flows) with
        | Ok inst -> Ok inst
        | Error e ->
          Error
            { !last with message = Instance.error_to_string e })
  with Bad e -> Error e

let instance_of_string text =
  match instance_of_string_result text with
  | Ok inst -> inst
  | Error e -> failwith (parse_error_to_string e)

let schedule_header = "dcnsched-schedule v1"

let schedule_to_string (sched : Schedule.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s" schedule_header;
  List.iter
    (fun (p : Schedule.plan) ->
      line "plan %d %s" p.flow.Flow.id
        (String.concat " " (List.map string_of_int p.path));
      List.iter
        (fun (s : Schedule.slot) ->
          line "slot %s %s %s" (float_to_string s.start) (float_to_string s.stop)
            (float_to_string s.rate))
        p.slots)
    sched.plans;
  Buffer.contents buf

let schedule_of_string_result (inst : Instance.t) text =
  let seen_header = ref false in
  let plans = ref [] in
  (* The plan being assembled: flow, path, slots in reverse. *)
  let current = ref None in
  let last = ref { line = 0; position = 0; message = "" } in
  let flush () =
    match !current with
    | None -> ()
    | Some (flow, path, slots) ->
      plans := { Schedule.flow; path; slots = List.rev slots } :: !plans;
      current := None
  in
  try
    iter_lines text (fun ~at ~position raw ->
        last := { line = at; position; message = "" };
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed.[0] = '#' then ()
        else if not !seen_header then
          if trimmed = schedule_header then seen_header := true
          else bad ~at ~position "expected %S" schedule_header
        else
          let parse_float = parse_float ~at ~position in
          let parse_int = parse_int ~at ~position in
          match String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "") with
          | "plan" :: id :: path ->
            flush ();
            let id = parse_int id in
            let flow =
              match Instance.find_flow_opt inst id with
              | Some f -> f
              | None -> bad ~at ~position "unknown flow id %d" id
            in
            current := Some (flow, List.map parse_int path, [])
          | [ "slot"; start; stop; rate ] -> (
            match !current with
            | None -> bad ~at ~position "slot before any plan"
            | Some (flow, path, slots) ->
              current :=
                Some
                  ( flow,
                    path,
                    {
                      Schedule.start = parse_float start;
                      stop = parse_float stop;
                      rate = parse_float rate;
                    }
                    :: slots ))
          | token :: _ -> bad ~at ~position "unknown directive %S" token
          | [] -> ());
    if not !seen_header then
      Error { line = 0; position = 0; message = "empty input: missing header" }
    else begin
      flush ();
      (* [Schedule.make] validates paths against the graph; rewrite its
         [Invalid_argument] into a typed error pointing at the last
         parsed line rather than letting it escape. *)
      match
        Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
          ~horizon:(Instance.horizon inst) (List.rev !plans)
      with
      | sched -> Ok sched
      | exception (Invalid_argument m | Failure m) ->
        Error { !last with message = m }
    end
  with Bad e -> Error e

let schedule_of_string inst text =
  match schedule_of_string_result inst text with
  | Ok sched -> sched
  | Error e -> failwith (parse_error_to_string e)

(* ------------------------- JSON reports --------------------------- *)

module Json = Dcn_engine.Json

let schedule_to_json (sched : Schedule.t) =
  let t0, t1 = sched.Schedule.horizon in
  Json.Obj
    [
      ("horizon", Json.List [ Json.float t0; Json.float t1 ]);
      ( "plans",
        Json.List
          (List.map
             (fun (p : Schedule.plan) ->
               Json.Obj
                 [
                   ("flow", Json.Int p.flow.Flow.id);
                   ("links", Json.List (List.map (fun l -> Json.Int l) p.path));
                   ( "slots",
                     Json.List
                       (List.map
                          (fun (s : Schedule.slot) ->
                            Json.Obj
                              [
                                ("start", Json.float s.start);
                                ("stop", Json.float s.stop);
                                ("rate", Json.float s.rate);
                              ])
                          p.slots) );
                 ])
             sched.plans) );
    ]

let solution_to_json (s : Solution.t) =
  Json.Obj
    [
      ("algorithm", Json.Str s.Solution.algorithm);
      ("energy", Json.float s.Solution.energy);
      ("feasible", Json.Bool s.Solution.feasible);
      ("placement_complete", Json.Bool (Solution.placement_complete s));
      ("attempts_used", Json.Int (Solution.attempts_used s));
      ( "rates",
        Json.List
          (List.map
             (fun (id, r) ->
               Json.Obj [ ("flow", Json.Int id); ("rate", Json.float r) ])
             s.Solution.per_flow_rates) );
      ( "paths",
        Json.List
          (List.map
             (fun (id, path) ->
               Json.Obj
                 [
                   ("flow", Json.Int id);
                   ("links", Json.List (List.map (fun l -> Json.Int l) path));
                 ])
             (Solution.paths s)) );
      ( "groups",
        Json.List
          (List.map
             (fun (g : Solution.mcf_group) ->
               let lo, hi = g.window in
               Json.Obj
                 [
                   ("link", Json.Int g.link);
                   ("window", Json.List [ Json.float lo; Json.float hi ]);
                   ("intensity", Json.float g.intensity);
                   ("flow_ids", Json.List (List.map (fun i -> Json.Int i) g.flow_ids));
                 ])
             (Solution.groups s)) );
      ("schedule", schedule_to_json s.Solution.schedule);
    ]
