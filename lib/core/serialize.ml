module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

let header = "dcnsched-instance v1"

let float_to_string x = if x = infinity then "inf" else Printf.sprintf "%.17g" x

let instance_to_string (inst : Instance.t) =
  let g = inst.graph in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s" header;
  for v = 0 to Graph.num_nodes g - 1 do
    match Graph.node_kind g v with
    | Graph.Host -> line "node %d host %s" v (Graph.node_name g v)
    | Graph.Switch { tier } -> line "node %d switch:%d %s" v tier (Graph.node_name g v)
  done;
  (* Cables are link pairs (fwd, bwd); emit each once, in id order, so a
     rebuilt graph assigns identical link ids. *)
  for l = 0 to Graph.num_links g - 1 do
    if l mod 2 = 0 then line "cable %d %d" (Graph.link_src g l) (Graph.link_dst g l)
  done;
  let p = inst.power in
  line "power %s %s %s %s" (float_to_string p.Model.sigma) (float_to_string p.Model.mu)
    (float_to_string p.Model.alpha) (float_to_string p.Model.cap);
  List.iter
    (fun (f : Flow.t) ->
      line "flow %d %d %d %s %s %s" f.id f.src f.dst (float_to_string f.volume)
        (float_to_string f.release) (float_to_string f.deadline))
    inst.flows;
  Buffer.contents buf

let parse_float ~at s =
  if s = "inf" then infinity
  else
    match float_of_string_opt s with
    | Some x -> x
    | None -> failwith (Printf.sprintf "line %d: bad number %S" at s)

let parse_int ~at s =
  match int_of_string_opt s with
  | Some x -> x
  | None -> failwith (Printf.sprintf "line %d: bad integer %S" at s)

let instance_of_string text =
  let lines = String.split_on_char '\n' text in
  let builder = Graph.Builder.create () in
  let next_node = ref 0 in
  let power = ref None in
  let flows = ref [] in
  let seen_header = ref false in
  List.iteri
    (fun idx raw ->
      let at = idx + 1 in
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else if not !seen_header then
        if trimmed = header then seen_header := true
        else failwith (Printf.sprintf "line %d: expected %S" at header)
      else
        match String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "") with
        | "node" :: id :: kind :: rest ->
          let id = parse_int ~at id in
          if id <> !next_node then
            failwith (Printf.sprintf "line %d: node ids must be dense (got %d)" at id);
          let name = match rest with [] -> None | n :: _ -> Some n in
          let kind =
            if kind = "host" then Graph.Host
            else
              match String.split_on_char ':' kind with
              | [ "switch"; tier ] -> Graph.Switch { tier = parse_int ~at tier }
              | _ -> failwith (Printf.sprintf "line %d: bad node kind %S" at kind)
          in
          ignore (Graph.Builder.add_node builder ?name kind);
          incr next_node
        | [ "cable"; u; v ] ->
          ignore (Graph.Builder.add_cable builder (parse_int ~at u) (parse_int ~at v))
        | [ "power"; sigma; mu; alpha; cap ] ->
          power :=
            Some
              (Model.make ~sigma:(parse_float ~at sigma) ~mu:(parse_float ~at mu)
                 ~alpha:(parse_float ~at alpha) ~cap:(parse_float ~at cap) ())
        | [ "flow"; id; src; dst; volume; release; deadline ] ->
          flows :=
            Flow.make ~id:(parse_int ~at id) ~src:(parse_int ~at src)
              ~dst:(parse_int ~at dst) ~volume:(parse_float ~at volume)
              ~release:(parse_float ~at release) ~deadline:(parse_float ~at deadline)
            :: !flows
        | token :: _ -> failwith (Printf.sprintf "line %d: unknown directive %S" at token)
        | [] -> ())
    lines;
  if not !seen_header then failwith "empty input: missing header";
  let graph = Graph.Builder.finish builder in
  match !power with
  | None -> failwith "missing 'power' line"
  | Some power -> Instance.make ~graph ~power ~flows:(List.rev !flows)

let schedule_header = "dcnsched-schedule v1"

let schedule_to_string (sched : Schedule.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s" schedule_header;
  List.iter
    (fun (p : Schedule.plan) ->
      line "plan %d %s" p.flow.Flow.id
        (String.concat " " (List.map string_of_int p.path));
      List.iter
        (fun (s : Schedule.slot) ->
          line "slot %s %s %s" (float_to_string s.start) (float_to_string s.stop)
            (float_to_string s.rate))
        p.slots)
    sched.plans;
  Buffer.contents buf

let schedule_of_string (inst : Instance.t) text =
  let lines = String.split_on_char '\n' text in
  let seen_header = ref false in
  let plans = ref [] in
  (* The plan being assembled: flow, path, slots in reverse. *)
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (flow, path, slots) ->
      plans := { Schedule.flow; path; slots = List.rev slots } :: !plans;
      current := None
  in
  List.iteri
    (fun idx raw ->
      let at = idx + 1 in
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else if not !seen_header then
        if trimmed = schedule_header then seen_header := true
        else failwith (Printf.sprintf "line %d: expected %S" at schedule_header)
      else
        match String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "") with
        | "plan" :: id :: path ->
          flush ();
          let id = parse_int ~at id in
          let flow =
            match Instance.find_flow_opt inst id with
            | Some f -> f
            | None -> failwith (Printf.sprintf "line %d: unknown flow id %d" at id)
          in
          current := Some (flow, List.map (parse_int ~at) path, [])
        | [ "slot"; start; stop; rate ] -> (
          match !current with
          | None -> failwith (Printf.sprintf "line %d: slot before any plan" at)
          | Some (flow, path, slots) ->
            current :=
              Some
                ( flow,
                  path,
                  {
                    Schedule.start = parse_float ~at start;
                    stop = parse_float ~at stop;
                    rate = parse_float ~at rate;
                  }
                  :: slots ))
        | token :: _ -> failwith (Printf.sprintf "line %d: unknown directive %S" at token)
        | [] -> ())
    lines;
  if not !seen_header then failwith "empty input: missing header";
  flush ();
  Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
    ~horizon:(Instance.horizon inst) (List.rev !plans)

(* ------------------------- JSON reports --------------------------- *)

module Json = Dcn_engine.Json

let schedule_to_json (sched : Schedule.t) =
  let t0, t1 = sched.Schedule.horizon in
  Json.Obj
    [
      ("horizon", Json.List [ Json.float t0; Json.float t1 ]);
      ( "plans",
        Json.List
          (List.map
             (fun (p : Schedule.plan) ->
               Json.Obj
                 [
                   ("flow", Json.Int p.flow.Flow.id);
                   ("links", Json.List (List.map (fun l -> Json.Int l) p.path));
                   ( "slots",
                     Json.List
                       (List.map
                          (fun (s : Schedule.slot) ->
                            Json.Obj
                              [
                                ("start", Json.float s.start);
                                ("stop", Json.float s.stop);
                                ("rate", Json.float s.rate);
                              ])
                          p.slots) );
                 ])
             sched.plans) );
    ]

let solution_to_json (s : Solution.t) =
  Json.Obj
    [
      ("algorithm", Json.Str s.Solution.algorithm);
      ("energy", Json.float s.Solution.energy);
      ("feasible", Json.Bool s.Solution.feasible);
      ("placement_complete", Json.Bool (Solution.placement_complete s));
      ("attempts_used", Json.Int (Solution.attempts_used s));
      ( "rates",
        Json.List
          (List.map
             (fun (id, r) ->
               Json.Obj [ ("flow", Json.Int id); ("rate", Json.float r) ])
             s.Solution.per_flow_rates) );
      ( "paths",
        Json.List
          (List.map
             (fun (id, path) ->
               Json.Obj
                 [
                   ("flow", Json.Int id);
                   ("links", Json.List (List.map (fun l -> Json.Int l) path));
                 ])
             (Solution.paths s)) );
      ( "groups",
        Json.List
          (List.map
             (fun (g : Solution.mcf_group) ->
               let lo, hi = g.window in
               Json.Obj
                 [
                   ("link", Json.Int g.link);
                   ("window", Json.List [ Json.float lo; Json.float hi ]);
                   ("intensity", Json.float g.intensity);
                   ("flow_ids", Json.List (List.map (fun i -> Json.Int i) g.flow_ids));
                 ])
             (Solution.groups s)) );
      ("schedule", schedule_to_json s.Solution.schedule);
    ]
