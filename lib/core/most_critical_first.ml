module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Iset = Dcn_util.Interval_set
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type group = Solution.mcf_group = {
  link : Graph.link;
  window : float * float;
  intensity : float;
  flow_ids : int list;
}

let eps = 1e-9

(* Rate assignment solves program (P1) exactly, in the YDS
   time-debit formulation: per link, a scheduled flow j with rate s_j
   owes w_j / s_j units of time inside its span, and the availability of
   a window [a, b] is its length minus the debts of the scheduled flows
   whose spans lie inside it — precisely the left-hand side of (P1)'s
   interval constraints.  Windows range over the release times and
   deadlines of ALL flows on the link (scheduled and pending), which is
   what makes the per-link process equal to classic YDS; cross-link
   coupling enters only through the shared rates (the same [s_i] is
   debited on every link of the path), exactly as in (P1).

   Constructing concrete transmission slots (the virtual-circuit
   realisation) is a separate best-effort phase afterwards; under heavy
   congestion a consistent placement may not exist — (P1) is "the lower
   bound of the energy consumption by SP routing" in the paper's own
   words — and the result is then flagged via [placement_complete]. *)
let solve_routed ?(algorithm = "mcf") inst ~routing =
  Dcn_obs.Stage.time "core.mcf" @@ fun () ->
  Trace.span "mcf.solve"
    ~fields:
      [
        ("algorithm", Json.Str algorithm);
        ("flows", Json.Int (Instance.num_flows inst));
      ]
  @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let alpha = power.Model.alpha in
  let flows = Instance.flow_array inst in
  let n = Array.length flows in
  let paths =
    Array.map
      (fun (f : Flow.t) ->
        let p = routing f.id in
        if not (Graph.is_path g ~src:f.src ~dst:f.dst p) then
          invalid_arg
            (Printf.sprintf "Most_critical_first.solve_routed: bad route for flow %d" f.id);
        Array.of_list p)
      flows
  in
  let hops = Array.map Array.length paths in
  let vweight =
    Array.mapi
      (fun i (f : Flow.t) -> f.volume *. (float_of_int hops.(i) ** (1. /. alpha)))
      flows
  in
  let pending = Array.make n true in
  let pending_count = ref n in
  let rate = Array.make n 0. in
  let flows_on_link = Array.make (Graph.num_links g) [] in
  Array.iteri
    (fun i path ->
      Array.iter (fun l -> flows_on_link.(l) <- i :: flows_on_link.(l)) path)
    paths;
  let used_links =
    List.filter
      (fun l -> flows_on_link.(l) <> [])
      (List.init (Graph.num_links g) Fun.id)
  in
  let spans_window i a b =
    flows.(i).Flow.release >= a -. eps && flows.(i).Flow.deadline <= b +. eps
  in
  (* Availability of [a, b] on link e: length minus the time debts of
     scheduled flows living inside the window. *)
  let avail e a b =
    List.fold_left
      (fun acc i ->
        if (not pending.(i)) && spans_window i a b then
          acc -. (flows.(i).Flow.volume /. rate.(i))
        else acc)
      (b -. a) flows_on_link.(e)
  in
  let groups = ref [] in
  let order = ref [] in
  (* selection order of flows, for placement *)
  while !pending_count > 0 do
    let best = ref None in
    List.iter
      (fun e ->
        let members_all = List.filter (fun i -> pending.(i)) flows_on_link.(e) in
        if members_all <> [] then begin
          (* Window endpoints come from every flow on the link,
             scheduled or pending (the YDS-equivalence requirement). *)
          let releases =
            List.sort_uniq compare
              (List.map (fun i -> flows.(i).Flow.release) flows_on_link.(e))
          in
          let deadlines =
            List.sort_uniq compare
              (List.map (fun i -> flows.(i).Flow.deadline) flows_on_link.(e))
          in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if b > a then begin
                    let members = List.filter (fun i -> spans_window i a b) members_all in
                    if members <> [] then begin
                      let vw =
                        List.fold_left (fun acc i -> acc +. vweight.(i)) 0. members
                      in
                      (* In exact arithmetic availability stays positive
                         whenever a pending member exists; the epsilon
                         floor only guards float drift. *)
                      let av = Float.max 1e-12 (avail e a b) in
                      let intensity = vw /. av in
                      match !best with
                      | Some (bi, _, _, _, _) when bi >= intensity -> ()
                      | _ -> best := Some (intensity, e, a, b, members)
                    end
                  end)
                deadlines)
            releases
        end)
      used_links;
    match !best with
    | None -> assert false (* a pending flow's own span is always a window *)
    | Some (intensity, e, a, b, members) ->
      let member_ids =
        List.sort compare (List.map (fun i -> flows.(i).Flow.id) members)
      in
      (* One record per critical-group selection — the iteration
         structure of Algorithm 1. *)
      if Trace.on () then
        Trace.event "mcf.group"
          ~fields:
            [
              ("link", Json.Int e);
              ("window_lo", Json.float a);
              ("window_hi", Json.float b);
              ("intensity", Json.float intensity);
              ("members", Json.Int (List.length member_ids));
              ("flow_ids", Json.List (List.map (fun id -> Json.Int id) member_ids));
            ];
      groups := { link = e; window = (a, b); intensity; flow_ids = member_ids } :: !groups;
      (* Rates per Theorem 1: s_i = delta / |P_i|^(1/alpha); members in
         EDF order for the placement phase. *)
      let members_edf =
        List.sort
          (fun i j ->
            compare (flows.(i).Flow.deadline, flows.(i).Flow.id)
              (flows.(j).Flow.deadline, flows.(j).Flow.id))
          members
      in
      List.iter
        (fun i ->
          rate.(i) <- intensity /. (float_of_int hops.(i) ** (1. /. alpha));
          pending.(i) <- false;
          order := i :: !order;
          decr pending_count)
        members_edf
  done;
  let order = List.rev !order in
  (* Best-effort virtual-circuit placement: flows in selection order,
     greedy earliest-fit into time free on every link of the path. *)
  let busy = Array.make (Graph.num_links g) Iset.empty in
  let slots_of_flow = Array.make n [] in
  let placement_complete = ref true in
  List.iter
    (fun i ->
      let f = flows.(i) in
      let needed = f.Flow.volume /. rate.(i) in
      let blocked =
        Array.fold_left
          (fun acc l -> Iset.add_all acc (Iset.intervals busy.(l)))
          Iset.empty paths.(i)
      in
      let free = Iset.free_within blocked ~lo:f.Flow.release ~hi:f.Flow.deadline in
      let remaining = ref needed in
      let my_slots = ref [] in
      List.iter
        (fun (lo, hi) ->
          if !remaining > eps && hi > lo then begin
            let take = Float.min (hi -. lo) !remaining in
            my_slots := { Schedule.start = lo; stop = lo +. take; rate = rate.(i) } :: !my_slots;
            remaining := !remaining -. take
          end)
        free;
      if !remaining > 1e-6 *. Float.max 1. needed then placement_complete := false;
      let my_slots = List.rev !my_slots in
      slots_of_flow.(i) <- my_slots;
      Array.iter
        (fun l ->
          busy.(l) <-
            List.fold_left
              (fun acc (s : Schedule.slot) -> Iset.add acc ~lo:s.start ~hi:s.stop)
              busy.(l) my_slots)
        paths.(i))
    order;
  if Trace.on () then
    Trace.event "mcf.placement"
      ~fields:
        [
          ("complete", Json.Bool !placement_complete);
          ("groups", Json.Int (List.length !groups));
        ];
  let t0, t1 = Instance.horizon inst in
  let plans =
    Array.to_list
      (Array.mapi
         (fun i (f : Flow.t) ->
           { Schedule.flow = f; path = Array.to_list paths.(i); slots = slots_of_flow.(i) })
         flows)
  in
  let schedule = Schedule.make ~graph:g ~power ~horizon:(t0, t1) plans in
  (* Eq. (5) with the analytic per-flow rates — the (P1) objective. *)
  let dynamic = ref 0. in
  Array.iteri
    (fun i (f : Flow.t) ->
      dynamic :=
        !dynamic
        +. (float_of_int hops.(i) *. f.volume *. power.Model.mu
           *. (rate.(i) ** (alpha -. 1.))))
    flows;
  let idle =
    float_of_int (List.length used_links) *. power.Model.sigma *. (t1 -. t0)
  in
  let rates =
    Array.to_list (Array.mapi (fun i (f : Flow.t) -> (f.id, rate.(i))) flows)
  in
  let sol =
    {
      Solution.algorithm;
      energy = idle +. !dynamic;
      feasible = !placement_complete;
      schedule;
      per_flow_rates = rates;
      meta =
        Solution.Mcf
          {
            Solution.groups = List.rev !groups;
            placement_complete = !placement_complete;
          };
    }
  in
  Selfcheck.solution inst sol;
  sol

let find_rate = Solution.find_rate
