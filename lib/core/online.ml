module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

let name = "online"

let solve ~instance:inst ~workspace:(_ : Solver_api.workspace) ~deadline
    ?previous:(_ : Solution.t option) () =
  Solver_api.under_deadline deadline @@ fun () ->
  Dcn_engine.Trace.span "online.solve"
    ~fields:[ ("flows", Dcn_engine.Json.Int (Instance.num_flows inst)) ]
  @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let cap = power.Model.cap in
  let tl = Instance.timeline inst in
  let k = Timeline.num_intervals tl in
  let m = Graph.num_links g in
  let loads = Array.make_matrix m k 0. in
  let ordered =
    List.sort
      (fun (f1 : Flow.t) f2 -> compare (f1.release, f1.id) (f2.Flow.release, f2.Flow.id))
      inst.Instance.flows
  in
  let accepted = ref [] and rejected = ref [] in
  let plans = ref [] in
  List.iter
    (fun (f : Flow.t) ->
      (* One watchdog poll per arrival. *)
      Dcn_engine.Deadline.check ();
      let d = Flow.density f in
      let my_intervals = Timeline.interval_indices_of tl f in
      (* A link is admissible if the flow's density fits under the cap
         throughout the span. *)
      let banned e =
        List.exists (fun j -> loads.(e).(j) +. d > cap *. (1. +. 1e-9)) my_intervals
      in
      let weight e =
        List.fold_left
          (fun acc j ->
            let x = loads.(e).(j) in
            acc
            +. (Timeline.length tl j
               *. (Model.total power (x +. d) -. Model.total power x)))
          0. my_intervals
      in
      let tree = Paths.shortest_tree ~weight ~banned_links:banned g ~src:f.src in
      match Paths.extract_path g tree ~dst:f.dst with
      | None ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "online.reject"
            ~fields:[ ("flow", Dcn_engine.Json.Int f.id) ];
        rejected := f.id :: !rejected
      | Some path ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "online.admit"
            ~fields:
              [
                ("flow", Dcn_engine.Json.Int f.id);
                ("hops", Dcn_engine.Json.Int (List.length path));
              ];
        accepted := f.id :: !accepted;
        List.iter
          (fun e -> List.iter (fun j -> loads.(e).(j) <- loads.(e).(j) +. d) my_intervals)
          path;
        plans :=
          {
            Schedule.flow = f;
            path;
            slots =
              [ { Schedule.start = f.release; stop = f.deadline; rate = d } ];
          }
          :: !plans)
    ordered;
  let t0, t1 = Instance.horizon inst in
  let plans = List.rev !plans in
  let schedule = Schedule.make ~graph:g ~power ~horizon:(t0, t1) plans in
  Selfcheck.schedule ~label:"online" ~partial:true inst schedule;
  let rejected = List.sort compare !rejected in
  {
    Solution.algorithm = name;
    energy = Schedule.energy schedule;
    (* Capacity holds by construction; feasibility means nothing was
       turned away. *)
    feasible = rejected = [];
    schedule;
    per_flow_rates =
      List.map
        (fun (p : Schedule.plan) ->
          (p.flow.Flow.id, Flow.density p.flow))
        plans;
    meta =
      Solution.Routed
        {
          paths =
            List.map (fun (p : Schedule.plan) -> (p.flow.Flow.id, p.path)) plans;
          accepted = List.sort compare !accepted;
          rejected;
        };
  }
