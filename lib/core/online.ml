module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

type t = {
  schedule : Schedule.t;
  accepted : int list;
  rejected : int list;
  energy : float;
  acceptance_rate : float;
}

let solve inst =
  Dcn_engine.Trace.span "online.solve"
    ~fields:[ ("flows", Dcn_engine.Json.Int (Instance.num_flows inst)) ]
  @@ fun () ->
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let cap = power.Model.cap in
  let tl = Instance.timeline inst in
  let k = Timeline.num_intervals tl in
  let m = Graph.num_links g in
  let loads = Array.make_matrix m k 0. in
  let ordered =
    List.sort
      (fun (f1 : Flow.t) f2 -> compare (f1.release, f1.id) (f2.Flow.release, f2.Flow.id))
      inst.Instance.flows
  in
  let accepted = ref [] and rejected = ref [] in
  let plans = ref [] in
  List.iter
    (fun (f : Flow.t) ->
      let d = Flow.density f in
      let my_intervals = Timeline.interval_indices_of tl f in
      (* A link is admissible if the flow's density fits under the cap
         throughout the span. *)
      let banned e =
        List.exists (fun j -> loads.(e).(j) +. d > cap *. (1. +. 1e-9)) my_intervals
      in
      let weight e =
        List.fold_left
          (fun acc j ->
            let x = loads.(e).(j) in
            acc
            +. (Timeline.length tl j
               *. (Model.total power (x +. d) -. Model.total power x)))
          0. my_intervals
      in
      let tree = Paths.shortest_tree ~weight ~banned_links:banned g ~src:f.src in
      match Paths.extract_path g tree ~dst:f.dst with
      | None ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "online.reject"
            ~fields:[ ("flow", Dcn_engine.Json.Int f.id) ];
        rejected := f.id :: !rejected
      | Some path ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "online.admit"
            ~fields:
              [
                ("flow", Dcn_engine.Json.Int f.id);
                ("hops", Dcn_engine.Json.Int (List.length path));
              ];
        accepted := f.id :: !accepted;
        List.iter
          (fun e -> List.iter (fun j -> loads.(e).(j) <- loads.(e).(j) +. d) my_intervals)
          path;
        plans :=
          {
            Schedule.flow = f;
            path;
            slots =
              [ { Schedule.start = f.release; stop = f.deadline; rate = d } ];
          }
          :: !plans)
    ordered;
  let t0, t1 = Instance.horizon inst in
  let schedule = Schedule.make ~graph:g ~power ~horizon:(t0, t1) (List.rev !plans) in
  Selfcheck.schedule ~label:"online" ~partial:true inst schedule;
  let n_acc = List.length !accepted and n_rej = List.length !rejected in
  {
    schedule;
    accepted = List.sort compare !accepted;
    rejected = List.sort compare !rejected;
    energy = Schedule.energy schedule;
    acceptance_rate = float_of_int n_acc /. float_of_int (max 1 (n_acc + n_rej));
  }
