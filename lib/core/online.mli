(** Online arrival with admission control.

    The deadline-flow systems the paper builds on (D3, D2TCP, PDQ)
    operate online: a flow reveals itself at its release time and the
    network must either guarantee its deadline or reject it up front.
    This module processes flows in release order over a
    capacity-limited network: each flow is routed on the cheapest
    marginal-energy path among those that can absorb its density in
    every interval of its span without breaching the link capacity;
    if no such path exists the flow is rejected (better never than
    late).  Accepted flows transmit at their densities, so all accepted
    deadlines are met (Theorem 4 reasoning) and the capacity constraint
    holds by construction.

    Implements {!Solver_api.S} directly. *)

val name : string
(** ["online"] *)

val solve :
  instance:Instance.t ->
  workspace:Solver_api.workspace ->
  deadline:Dcn_engine.Deadline.t ->
  ?previous:Solution.t ->
  unit ->
  Solution.t
(** Deterministic; [workspace] and [previous] are ignored.  The
    schedule, [per_flow_rates] and [Routed.paths] cover accepted flows
    only; [Solution.rejected] lists the declined ids and [feasible]
    means nothing was rejected (capacity always holds by construction).
    Polls [deadline] once per arrival.  With infinite capacity nothing
    is rejected and the result coincides with {!Greedy_ear}. *)
