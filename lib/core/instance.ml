module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow

type t = {
  graph : Graph.t;
  power : Dcn_power.Model.t;
  flows : Flow.t list;
}

type error =
  | Empty_flows
  | Duplicate_flow_id of { flow : int }
  | Bad_endpoint of { flow : int; node : int }
  | Empty_window of { flow : int; release : float; deadline : float }
  | Nonpositive_volume of { flow : int; volume : float }
  | Nonpositive_capacity of { cap : float }

exception Invalid of error

let pp_error ppf = function
  | Empty_flows -> Format.fprintf ppf "no flows"
  | Duplicate_flow_id { flow } -> Format.fprintf ppf "duplicate flow id %d" flow
  | Bad_endpoint { flow; node } ->
    Format.fprintf ppf "flow %d: endpoint %d is not a node of the graph" flow node
  | Empty_window { flow; release; deadline } ->
    Format.fprintf ppf
      "flow %d: empty transmission window [%g,%g] (release must precede the \
       deadline)"
      flow release deadline
  | Nonpositive_volume { flow; volume } ->
    Format.fprintf ppf "flow %d: non-positive volume %g" flow volume
  | Nonpositive_capacity { cap } ->
    Format.fprintf ppf "non-positive link capacity %g" cap

let error_to_string e = Format.asprintf "%a" pp_error e

let validate ~graph ~power ~flows =
  let ( let* ) = Result.bind in
  let* () = if flows = [] then Error Empty_flows else Ok () in
  let* () =
    let cap = power.Dcn_power.Model.cap in
    if cap > 0. then Ok () else Error (Nonpositive_capacity { cap })
  in
  let* () =
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (f : Flow.t) ->
        let* () = acc in
        if Hashtbl.mem seen f.Flow.id then
          Error (Duplicate_flow_id { flow = f.Flow.id })
        else begin
          Hashtbl.add seen f.Flow.id ();
          Ok ()
        end)
      (Ok ()) flows
  in
  let n = Graph.num_nodes graph in
  List.fold_left
    (fun acc (f : Flow.t) ->
      let* () = acc in
      let bad_node v = v < 0 || v >= n in
      if bad_node f.Flow.src then
        Error (Bad_endpoint { flow = f.Flow.id; node = f.Flow.src })
      else if bad_node f.Flow.dst then
        Error (Bad_endpoint { flow = f.Flow.id; node = f.Flow.dst })
      else if not (f.Flow.volume > 0.) then
        Error (Nonpositive_volume { flow = f.Flow.id; volume = f.Flow.volume })
      else if
        (* [Flow.make] already rejects [release >= deadline]; this also
           catches windows so short the density overflows, which is the
           division the solvers would otherwise blow up on. *)
        f.Flow.deadline <= f.Flow.release
        || not (Float.is_finite (Flow.density f))
      then
        Error
          (Empty_window
             { flow = f.Flow.id; release = f.Flow.release; deadline = f.Flow.deadline })
      else Ok ())
    (Ok ()) flows

let make_result ~graph ~power ~flows =
  Result.map (fun () -> { graph; power; flows }) (validate ~graph ~power ~flows)

let make ~graph ~power ~flows =
  match make_result ~graph ~power ~flows with
  | Ok t -> t
  | Error e -> raise (Invalid e)

let horizon t = Flow.horizon t.flows

let num_flows t = List.length t.flows

let flow_array t =
  let a = Array.of_list t.flows in
  Array.sort (fun (f : Flow.t) g -> compare f.id g.Flow.id) a;
  a

let find_flow_opt t id = List.find_opt (fun f -> f.Flow.id = id) t.flows

let timeline t = Dcn_flow.Timeline.make t.flows

let pp ppf t =
  let t0, t1 = horizon t in
  Format.fprintf ppf "instance: %a; %d flows on [%g,%g]; %a" Graph.pp t.graph
    (num_flows t) t0 t1 Dcn_power.Model.pp t.power
