module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow

type t = {
  graph : Graph.t;
  power : Dcn_power.Model.t;
  flows : Flow.t list;
}

let make ~graph ~power ~flows =
  if flows = [] then invalid_arg "Instance.make: no flows";
  let ids = List.map (fun f -> f.Flow.id) flows in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Instance.make: duplicate flow ids";
  let n = Graph.num_nodes graph in
  List.iter
    (fun f ->
      if f.Flow.src < 0 || f.Flow.src >= n || f.Flow.dst < 0 || f.Flow.dst >= n then
        invalid_arg
          (Printf.sprintf "Instance.make: flow %d has endpoints outside the graph"
             f.Flow.id))
    flows;
  { graph; power; flows }

let horizon t = Flow.horizon t.flows

let num_flows t = List.length t.flows

let flow_array t =
  let a = Array.of_list t.flows in
  Array.sort (fun (f : Flow.t) g -> compare f.id g.Flow.id) a;
  a

let find_flow t id = List.find (fun f -> f.Flow.id = id) t.flows
let find_flow_opt t id = List.find_opt (fun f -> f.Flow.id = id) t.flows

let timeline t = Dcn_flow.Timeline.make t.flows

let pp ppf t =
  let t0, t1 = horizon t in
  Format.fprintf ppf "instance: %a; %d flows on [%g,%g]; %a" Graph.pp t.graph
    (num_flows t) t0 t1 Dcn_power.Model.pp t.power
