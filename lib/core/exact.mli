(** Exact DCFSR on small instances, by exhaustion over routings.

    Given the routes, optimal scheduling is DCFS, solved exactly by
    Most-Critical-First (Corollary 1); so the DCFSR optimum under the
    virtual-circuit model is the minimum of Most-Critical-First over all
    routing combinations.  Exponential, of course — Theorem 2 says no
    better is possible — but fine as ground truth for approximation
    tests on gadget-sized instances. *)

type result = {
  energy : float;
  routing : (int * Dcn_topology.Graph.link list) list;  (** flow id -> best path *)
  best : Solution.t;
  combinations : int;  (** routing combinations explored *)
}

val search : ?max_hops:int -> ?max_combinations:int -> Instance.t -> result
(** Enumerates every simple path per flow (up to [max_hops], default 8)
    and every combination (up to [max_combinations], default 50_000),
    polling the ambient deadline once per combination.
    @raise Invalid_argument if a flow has no path within [max_hops] or
    the product of path counts exceeds the budget. *)

val name : string
(** ["exact"] *)

val solve :
  ?max_hops:int ->
  ?max_combinations:int ->
  instance:Instance.t ->
  workspace:Solver_api.workspace ->
  deadline:Dcn_engine.Deadline.t ->
  ?previous:Solution.t ->
  unit ->
  Solution.t
(** The {!Solver_api.S}-shaped entry: [{(search ...).best}] under
    [deadline].  [workspace] and [previous] are ignored (the
    enumeration has nothing to warm-start from). *)
