module Graph = Dcn_topology.Graph
module Schedule = Dcn_sched.Schedule

type mcf_group = {
  link : Graph.link;
  window : float * float;
  intensity : float;
  flow_ids : int list;
}

type mcf_detail = {
  groups : mcf_group list;
  placement_complete : bool;
}

type rounding_detail = {
  paths : (int * Graph.link list) list;
  attempts_used : int;
  candidates : (int * int) list;
  relaxation : Relaxation.t;
}

type routed_detail = {
  paths : (int * Graph.link list) list;
  accepted : int list;
  rejected : int list;
}

type meta =
  | Mcf of mcf_detail
  | Rounding of rounding_detail
  | Routed of routed_detail

type t = {
  algorithm : string;
  energy : float;
  feasible : bool;
  schedule : Schedule.t;
  per_flow_rates : (int * float) list;
  meta : meta;
}

let find_rate t id = List.assoc_opt id t.per_flow_rates

let placement_complete t =
  match t.meta with
  | Mcf { placement_complete; _ } -> placement_complete
  | Rounding _ -> true
  | Routed { rejected; _ } -> rejected = []

let groups t = match t.meta with Mcf { groups; _ } -> groups | _ -> []

let paths t =
  match t.meta with
  | Rounding { paths; _ } -> paths
  | Routed { paths; _ } -> paths
  | Mcf _ ->
    List.map
      (fun (p : Schedule.plan) -> (p.flow.Dcn_flow.Flow.id, p.path))
      t.schedule.Schedule.plans

let candidates t =
  match t.meta with Rounding { candidates; _ } -> candidates | _ -> []

let attempts_used t =
  match t.meta with Rounding { attempts_used; _ } -> attempts_used | _ -> 1

let relaxation t =
  match t.meta with Rounding { relaxation; _ } -> Some relaxation | _ -> None

let accepted t =
  match t.meta with
  | Routed { accepted; _ } -> accepted
  | Mcf _ | Rounding _ -> List.sort compare (List.map fst t.per_flow_rates)

let rejected t = match t.meta with Routed { rejected; _ } -> rejected | _ -> []

let acceptance_rate t =
  let a = List.length (accepted t) and r = List.length (rejected t) in
  float_of_int a /. float_of_int (max 1 (a + r))

let pp ppf t =
  Format.fprintf ppf "%s: energy %.4f (%s)" t.algorithm t.energy
    (if t.feasible then "feasible" else "INFEASIBLE")
