module Graph = Dcn_topology.Graph
module Schedule = Dcn_sched.Schedule

type mcf_group = {
  link : Graph.link;
  window : float * float;
  intensity : float;
  flow_ids : int list;
}

type mcf_detail = {
  groups : mcf_group list;
  placement_complete : bool;
}

type rounding_detail = {
  paths : (int * Graph.link list) list;
  attempts_used : int;
  candidates : (int * int) list;
  relaxation : Relaxation.t;
}

type meta =
  | Mcf of mcf_detail
  | Rounding of rounding_detail

type t = {
  algorithm : string;
  energy : float;
  feasible : bool;
  schedule : Schedule.t;
  per_flow_rates : (int * float) list;
  meta : meta;
}

let find_rate t id = List.assoc_opt id t.per_flow_rates

let placement_complete t =
  match t.meta with
  | Mcf { placement_complete; _ } -> placement_complete
  | Rounding _ -> true

let groups t = match t.meta with Mcf { groups; _ } -> groups | Rounding _ -> []

let paths t =
  match t.meta with
  | Rounding { paths; _ } -> paths
  | Mcf _ ->
    List.map
      (fun (p : Schedule.plan) -> (p.flow.Dcn_flow.Flow.id, p.path))
      t.schedule.Schedule.plans

let candidates t =
  match t.meta with Rounding { candidates; _ } -> candidates | Mcf _ -> []

let attempts_used t =
  match t.meta with Rounding { attempts_used; _ } -> attempts_used | Mcf _ -> 1

let relaxation t =
  match t.meta with Rounding { relaxation; _ } -> Some relaxation | Mcf _ -> None

let pp ppf t =
  Format.fprintf ppf "%s: energy %.4f (%s)" t.algorithm t.energy
    (if t.feasible then "feasible" else "INFEASIBLE")
