type solution_hook = Instance.t -> Solution.t -> unit

type schedule_hook =
  label:string -> partial:bool -> Instance.t -> Dcn_sched.Schedule.t -> unit

type hooks = {
  on_solution : solution_hook option;
  on_schedule : schedule_hook option;
}

let hooks : hooks Atomic.t = Atomic.make { on_solution = None; on_schedule = None }

(* Suppression depth, not a flag, so nested [without] calls compose. *)
let suppressed = Atomic.make 0

let set ?solution ?schedule () =
  Atomic.set hooks { on_solution = solution; on_schedule = schedule }

let clear () = Atomic.set hooks { on_solution = None; on_schedule = None }

let enabled () =
  let h = Atomic.get hooks in
  (h.on_solution <> None || h.on_schedule <> None) && Atomic.get suppressed = 0

let solution inst sol =
  match (Atomic.get hooks).on_solution with
  | Some f when Atomic.get suppressed = 0 -> f inst sol
  | _ -> ()

let schedule ~label ~partial inst sched =
  match (Atomic.get hooks).on_schedule with
  | Some f when Atomic.get suppressed = 0 -> f ~label ~partial inst sched
  | _ -> ()

let without f =
  Atomic.incr suppressed;
  Fun.protect ~finally:(fun () -> Atomic.decr suppressed) f
