(** The unified result of every solver in this library.

    Every {!Solver_api.S} implementation — the baselines, the
    Most-Critical-First pipeline, {!Random_schedule}, {!Greedy_ear},
    {!Online} and {!Exact} — returns a {!t}: callers read [energy],
    [feasible], [schedule] and [per_flow_rates] uniformly instead of
    reaching into algorithm-specific records.  Algorithm-specific detail
    (MCF's critical groups, Random-Schedule's chosen paths and
    relaxation, admission-control outcomes) lives in [meta], with total
    accessors below. *)

type mcf_group = {
  link : Dcn_topology.Graph.link;  (** the critical link *)
  window : float * float;  (** the critical interval *)
  intensity : float;  (** [delta(I*, e)] in virtual-weight units *)
  flow_ids : int list;  (** members, ascending *)
}

type mcf_detail = {
  groups : mcf_group list;  (** selection order; intensities non-increasing *)
  placement_complete : bool;
      (** the virtual-circuit slot placement succeeded for every flow *)
}

type rounding_detail = {
  paths : (int * Dcn_topology.Graph.link list) list;
      (** flow id -> chosen path *)
  attempts_used : int;
  candidates : (int * int) list;  (** flow id -> number of candidate paths *)
  relaxation : Relaxation.t;  (** the fractional solution (for LB reuse) *)
}

type routed_detail = {
  paths : (int * Dcn_topology.Graph.link list) list;
      (** flow id -> chosen path, admitted flows only *)
  accepted : int list;  (** flow ids served by the schedule, ascending *)
  rejected : int list;
      (** flow ids declined up front (admission control), ascending;
          [[]] for solvers that admit everything *)
}

type meta =
  | Mcf of mcf_detail  (** Most-Critical-First (Algorithm 1) *)
  | Rounding of rounding_detail  (** Random-Schedule (Algorithm 2) *)
  | Routed of routed_detail
      (** one-path-per-flow heuristics ({!Greedy_ear}, {!Online}) *)

type t = {
  algorithm : string;  (** short human-readable name, e.g. ["sp+mcf"] *)
  energy : float;  (** Eq. (5) objective of the returned schedule *)
  feasible : bool;
      (** MCF: the slot placement is complete; RS: the draw respects
          link capacity; Routed: every flow admitted and capacity
          respected *)
  schedule : Dcn_sched.Schedule.t;
  per_flow_rates : (int * float) list;
      (** flow id -> constant transmission rate *)
  meta : meta;
}

val find_rate : t -> int -> float option
(** The flow's constant transmission rate, or [None] for an unknown
    flow id. *)


val placement_complete : t -> bool
(** MCF detail; [true] for Random-Schedule results (Theorem 4 packs
    every flow by construction). *)

val groups : t -> mcf_group list
(** MCF selection order; [[]] for Random-Schedule results. *)

val paths : t -> (int * Dcn_topology.Graph.link list) list
(** Chosen routing.  For MCF results this is read back from the
    schedule's plans. *)

val candidates : t -> (int * int) list
(** Flow id -> number of candidate paths the rounding sampled from;
    [[]] for deterministic algorithms. *)

val attempts_used : t -> int
(** Rounding redraws consumed; [1] for deterministic algorithms. *)

val relaxation : t -> Relaxation.t option
(** The fractional relaxation, when the algorithm solved one. *)

val accepted : t -> int list
(** Flow ids the schedule serves, ascending.  The whole flow set for
    solvers without admission control. *)

val rejected : t -> int list
(** Flow ids declined up front; [[]] for solvers without admission
    control. *)

val acceptance_rate : t -> float
(** [|accepted| / (|accepted| + |rejected|)]; [1.] when nothing was
    rejected. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: algorithm, energy, feasibility. *)
