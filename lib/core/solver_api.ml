(* The one entry-point shape every solver in this library implements.
   See solver_api.mli for the contract; Solvers holds the registry. *)

module Deadline = Dcn_engine.Deadline

type workspace = {
  pool : Dcn_engine.Pool.t;
  kernel : Dcn_mcf.Kernel.Workspace.t;
  rng : Dcn_util.Prng.t;
}

let workspace ?(pool = Dcn_engine.Pool.sequential) ?rng
    ?(kernel = Dcn_mcf.Kernel.Workspace.default) () =
  let rng = match rng with Some r -> r | None -> Dcn_util.Prng.create 0 in
  { pool; kernel; rng }

module type S = sig
  val name : string

  val solve :
    instance:Instance.t ->
    workspace:workspace ->
    deadline:Deadline.t ->
    ?previous:Solution.t ->
    unit ->
    Solution.t
end

(* Install the tighter of [deadline] and the ambient one: a solver run
   under a watchdog stage must never loosen the stage's budget by
   installing its own [Deadline.never]. *)
let under_deadline deadline f =
  let d =
    match Deadline.ambient () with
    | Some outer
      when Deadline.remaining_ms outer < Deadline.remaining_ms deadline ->
      outer
    | _ -> deadline
  in
  Deadline.with_deadline d f
