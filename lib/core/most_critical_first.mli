(** Algorithm 1 of the paper: {b Most-Critical-First}, the optimal
    combinatorial algorithm for DCFS (flow scheduling with given
    routes).

    The algorithm generalises YDS to a network: every flow gets the
    virtual weight [w'_i = w_i * |P_i|^(1/alpha)]; repeatedly the
    (interval, link) pair maximising the intensity

    {v delta(I, e) = sum of w'_i over flows living inside I on e
                     / available time of I on e v}

    is selected (the {e critical interval} / {e critical link}); its
    flows are scheduled EDF at rates [s_i = delta / |P_i|^(1/alpha)]
    (Theorem 1), their transmission windows become unavailable on every
    link of their paths, and the process repeats (Corollary 1:
    optimality for DCFS under the virtual-circuit assumption of
    Section III-A).

    Rates are computed by solving program (P1) exactly, in the YDS
    time-debit formulation: a scheduled flow debits [w_j / s_j] time
    units from every window of every link of its path that contains its
    span — precisely the left-hand sides of (P1)'s interval constraints,
    with no cross-link slot coupling (the paper calls the result "the
    lower bound of the energy consumption by SP routing").  Concrete
    transmission slots for the virtual-circuit realisation are packed
    afterwards, greedily in group/EDF order avoiding busy time on all
    path links; when heavy congestion admits no consistent placement the
    result is flagged via [placement_complete] while the energy remains
    the (P1) objective (Eq. 5 with the computed rates). *)

type group = Solution.mcf_group = {
  link : Dcn_topology.Graph.link;  (** the critical link *)
  window : float * float;  (** the critical interval *)
  intensity : float;  (** [delta(I*, e)] in virtual-weight units *)
  flow_ids : int list;  (** members, ascending *)
}

val solve_routed :
  ?algorithm:string ->
  Instance.t ->
  routing:(int -> Dcn_topology.Graph.link list) ->
  Solution.t
(** The routing-specific core: schedule optimally {e given} a routing.
    Complete solvers built on it ({!Baselines.Sp_mcf},
    {!Baselines.Ecmp_mcf}, {!Exact}) implement {!Solver_api.S} by
    choosing the routing first.

    [routing id] is the path of the flow with that id.  The result's
    [energy] is Eq. (5),
    [sigma |Ea| (T1-T0) + sum_i |P_i| w_i mu s_i^(alpha-1)], which
    equals [Schedule.energy] of the returned schedule when placement is
    complete; [feasible] is {!Solution.placement_complete}; [meta] is
    {!Solution.Mcf} with the selection groups.  [algorithm] labels the
    solution (default ["mcf"]).
    @raise Invalid_argument if a routing path does not connect the
    flow's endpoints. *)

val find_rate : Solution.t -> int -> float option
(** Alias of {!Solution.find_rate}, kept for callers reading Algorithm 1
    results. *)

