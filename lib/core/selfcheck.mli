(** Solver self-certification hooks (the [DCN_SELFCHECK] mechanism).

    The certification subsystem ([Dcn_check.Certify]) lives {e above}
    this library, yet every solver should be able to certify its own
    output before returning it.  This module is the seam: solvers call
    {!solution}/{!schedule} on their results, which are no-ops until a
    checker installs its hooks ([Dcn_check.Certify.install_selfcheck],
    normally triggered by [DCN_SELFCHECK=1] at CLI/bench start-up).  An
    installed hook raises [Failure] on a certification violation, so a
    buggy solver fails loudly at the point of the bug rather than
    corrupting an experiment silently. *)

type solution_hook = Instance.t -> Solution.t -> unit

type schedule_hook =
  label:string -> partial:bool -> Instance.t -> Dcn_sched.Schedule.t -> unit
(** [partial] marks schedules that legitimately cover only a subset of
    the instance's flows (online admission control rejects some). *)

val set : ?solution:solution_hook -> ?schedule:schedule_hook -> unit -> unit
(** Install hooks (replacing any previous ones).  Omitted hooks are
    cleared. *)

val clear : unit -> unit

val enabled : unit -> bool
(** Whether any hook is installed and not {!suppressed} — the one
    branch self-checking costs when off. *)

val solution : Instance.t -> Solution.t -> unit
(** Run the solution hook, if installed and not suppressed. *)

val schedule :
  label:string -> partial:bool -> Instance.t -> Dcn_sched.Schedule.t -> unit
(** Run the schedule hook, if installed and not suppressed. *)

val without : (unit -> 'a) -> 'a
(** Run [f] with self-checking suppressed (restored afterwards, also on
    exception).  {!Exact.search} uses this around its enumeration so only
    the winning routing is certified, not all 50k candidates. *)
