(* The registry of Solver_api implementations, in the order the
   evaluation tables print them. *)

(* Exact.solve carries extra optional budgets, so it needs an explicit
   default-budget face to match the signature. *)
module Exact_api = struct
  let name = Exact.name

  let solve ~instance ~workspace ~deadline ?previous () =
    Exact.solve ~instance ~workspace ~deadline ?previous ()
end

let all : (module Solver_api.S) list =
  [
    (module Random_schedule.Api);
    (module Baselines.Sp_mcf);
    (module Baselines.Ecmp_mcf);
    (module Greedy_ear);
    (module Online);
    (module Exact_api);
  ]

let names = List.map (fun (module M : Solver_api.S) -> M.name) all

let find name =
  List.find_opt (fun (module M : Solver_api.S) -> M.name = name) all
