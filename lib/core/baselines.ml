module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow

let shortest_path_routing inst =
  let g = inst.Instance.graph in
  let by_src = Hashtbl.create 16 in
  List.iter
    (fun (f : Flow.t) ->
      let prev = try Hashtbl.find by_src f.src with Not_found -> [] in
      Hashtbl.replace by_src f.src (f :: prev))
    inst.Instance.flows;
  let routes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun src flows ->
      let tree = Paths.shortest_tree g ~src in
      List.iter
        (fun (f : Flow.t) ->
          match Paths.extract_path g tree ~dst:f.dst with
          | Some p -> Hashtbl.replace routes f.id p
          | None ->
            invalid_arg
              (Printf.sprintf "Baselines.shortest_path_routing: flow %d disconnected"
                 f.id))
        flows)
    by_src;
  fun id ->
    match Hashtbl.find_opt routes id with
    | Some p -> p
    | None -> raise Not_found

let sp_mcf inst =
  let routing = shortest_path_routing inst in
  Most_critical_first.solve_routed ~algorithm:"sp+mcf" inst ~routing

let ecmp_routing ?(fanout = 16) ~rng inst =
  let g = inst.Instance.graph in
  (* Minimum-hop candidates per (src, dst), computed once per pair. *)
  let cache = Hashtbl.create 16 in
  let candidates src dst =
    match Hashtbl.find_opt cache (src, dst) with
    | Some c -> c
    | None ->
      let all = Paths.k_shortest g ~k:fanout ~src ~dst in
      let c =
        match all with
        | [] ->
          invalid_arg
            (Printf.sprintf "Baselines.ecmp_routing: %d and %d disconnected" src dst)
        | first :: _ ->
          let best = List.length first in
          Array.of_list (List.filter (fun p -> List.length p = best) all)
      in
      Hashtbl.add cache (src, dst) c;
      c
  in
  let routes = Hashtbl.create 16 in
  List.iter
    (fun (f : Flow.t) ->
      let c = candidates f.src f.dst in
      Hashtbl.replace routes f.id (Dcn_util.Prng.pick rng c))
    inst.Instance.flows;
  fun id ->
    match Hashtbl.find_opt routes id with Some p -> p | None -> raise Not_found

let ecmp_mcf ?fanout ~rng inst =
  let routing = ecmp_routing ?fanout ~rng inst in
  Most_critical_first.solve_routed ~algorithm:"ecmp+mcf" inst ~routing

(* Solver_api faces for the registry. *)

module Sp_mcf = struct
  let name = "sp+mcf"

  let solve ~instance ~workspace:(_ : Solver_api.workspace) ~deadline
      ?previous:(_ : Solution.t option) () =
    Solver_api.under_deadline deadline @@ fun () -> sp_mcf instance
end

module Ecmp_mcf = struct
  let name = "ecmp+mcf"

  let solve ~instance ~workspace:(ws : Solver_api.workspace) ~deadline
      ?previous:(_ : Solution.t option) () =
    Solver_api.under_deadline deadline @@ fun () ->
    ecmp_mcf ~rng:ws.Solver_api.rng instance
end
