module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Decompose = Dcn_mcf.Decompose
module Prng = Dcn_util.Prng
module Pool = Dcn_engine.Pool
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json

type config = {
  attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
}

let default_config = { attempts = 20; fw_config = Dcn_mcf.Frank_wolfe.default_config }

(* Candidate paths of one flow across all intervals, with the paper's
   combined weights w̄_P (keyed by the link list to merge duplicates). *)
let candidate_paths relax (f : Flow.t) =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (isol : Relaxation.interval_solution) ->
      let lo, hi = isol.bounds in
      let frac = (hi -. lo) /. Flow.span_length f in
      match List.assoc_opt f.id isol.flow_paths with
      | None -> ()
      | Some paths ->
        List.iter
          (fun (wp : Decompose.weighted_path) ->
            let prev = try Hashtbl.find tbl wp.links with Not_found -> 0. in
            Hashtbl.replace tbl wp.links (prev +. (wp.weight *. frac)))
          paths)
    relax.Relaxation.intervals;
  let all = Hashtbl.fold (fun links w acc -> (links, w) :: acc) tbl [] in
  (* Deterministic order for reproducible sampling. *)
  List.sort compare all

(* Exposed (see mli): the serving layer samples a path for one new flow
   from the warm relaxation with exactly this distribution. *)
let build_schedule inst chosen =
  let t0, t1 = Instance.horizon inst in
  let plans =
    List.map
      (fun (f : Flow.t) ->
        let path = List.assoc f.Flow.id chosen in
        {
          Schedule.flow = f;
          path;
          slots =
            [
              {
                Schedule.start = f.Flow.release;
                stop = f.Flow.deadline;
                rate = Flow.density f;
              };
            ];
        })
      inst.Instance.flows
  in
  Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
    ~horizon:(t0, t1) plans

(* One fully evaluated rounding attempt. *)
type attempt = {
  a_index : int;
  a_chosen : (int * Graph.link list) list;
  a_schedule : Schedule.t;
  a_energy : float;
  a_feasible : bool;
  a_overload : float;
}

let name = "random-schedule"

let solve ?(config = default_config) ?relaxation ~instance:inst
    ~workspace:(ws : Solver_api.workspace) ~deadline ?previous () =
  if config.attempts < 1 then
    invalid_arg
      (Printf.sprintf "Random_schedule.solve: attempts must be >= 1 (got %d)"
         config.attempts);
  Solver_api.under_deadline deadline @@ fun () ->
  let pool = ws.Solver_api.pool and rng = ws.Solver_api.rng in
  let relax =
    match relaxation with
    | Some r -> r
    | None -> (
      (* A previous solution of a nearby instance warm-starts the
         relaxation: every interval is re-solved (the full-horizon
         window marks them all dirty), seeded from the previous
         fractional paths of every flow both instances share. *)
      match Option.bind previous Solution.relaxation with
      | Some prev ->
        fst
          (Relaxation.resolve ~pool ~fw_config:config.fw_config
             ~workspace:ws.Solver_api.kernel ~previous:prev
             ~window:(Instance.horizon inst) inst)
      | None ->
        Relaxation.solve ~pool ~fw_config:config.fw_config
          ~workspace:ws.Solver_api.kernel inst)
  in
  Dcn_obs.Stage.time "core.rounding" @@ fun () ->
  Trace.span "rs.solve"
    ~fields:
      [
        ("attempts", Json.Int config.attempts);
        ("flows", Json.Int (Instance.num_flows inst));
      ]
  @@ fun () ->
  let flows = inst.Instance.flows in
  let candidates =
    List.map (fun (f : Flow.t) -> (f.id, candidate_paths relax f)) flows
  in
  List.iter
    (fun (id, cands) ->
      if cands = [] then
        invalid_arg
          (Printf.sprintf "Random_schedule.solve: no candidate path for flow %d" id))
    candidates;
  (* One independent PRNG stream per attempt, split off the caller's
     generator up front: attempt k makes the same draw whether it is
     evaluated sequentially or on any pool, so the solution is
     bit-identical for every jobs value. *)
  let rngs = Pool.split_rngs rng config.attempts in
  let cap = inst.Instance.power.Model.cap in
  let evaluate k =
    let rng = rngs.(k) in
    let chosen =
      List.map
        (fun (id, cands) ->
          let weights = Array.of_list (List.map snd cands) in
          let idx = Prng.pick_weighted rng ~weights in
          (id, fst (List.nth cands idx)))
        candidates
    in
    let schedule = build_schedule inst chosen in
    let overload = Schedule.max_link_rate schedule -. cap in
    let feasible = overload <= 1e-6 *. Float.max 1. cap in
    let energy = Schedule.energy schedule in
    (* Per-attempt outcome, emitted on whichever domain evaluated the
       draw (the trace is where the parallel schedule is visible; the
       returned solution stays jobs-invariant). *)
    if Trace.on () then begin
      Trace.event "rs.attempt"
        ~fields:
          [
            ("index", Json.Int k);
            ("feasible", Json.Bool feasible);
            ("overload", Json.float overload);
            ("energy", Json.float energy);
          ];
      Trace.counter "rs.attempts" 1.;
      if feasible then Trace.counter "rs.feasible_attempts" 1.
    end;
    {
      a_index = k;
      a_chosen = chosen;
      a_schedule = schedule;
      a_energy = energy;
      a_feasible = feasible;
      a_overload = overload;
    }
  in
  (* The paper's semantics: take the first feasible draw; if the budget
     runs out, the least-overloaded one.  Attempts are evaluated in
     index-ordered batches of the pool width, and the selection scans
     each batch in index order, so the chosen draw — and therefore the
     whole solution — does not depend on the batch size. *)
  let batch = max 1 (Pool.jobs pool) in
  let first_feasible = ref None in
  let best_infeasible = ref None in
  let k = ref 0 in
  while !first_feasible = None && !k < config.attempts do
    (* Watchdog poll between attempt batches (the draws themselves are
       cheap; the budget-heavy relaxation polls inside Frank–Wolfe). *)
    Dcn_engine.Deadline.check ();
    let hi = min config.attempts (!k + batch) in
    let evals = Pool.map pool evaluate (Array.init (hi - !k) (fun i -> !k + i)) in
    Array.iter
      (fun a ->
        if a.a_feasible then begin
          if !first_feasible = None then first_feasible := Some a
        end
        else
          match !best_infeasible with
          | Some b when b.a_overload <= a.a_overload -> ()
          | _ -> best_infeasible := Some a)
      evals;
    k := hi
  done;
  let chosen_attempt, attempts_used =
    match (!first_feasible, !best_infeasible) with
    | Some a, _ -> (a, a.a_index + 1)
    | None, Some b -> (b, config.attempts)
    | None, None -> assert false (* attempts >= 1 *)
  in
  if Trace.on () then
    Trace.event "rs.selected"
      ~fields:
        [
          ("index", Json.Int chosen_attempt.a_index);
          ("attempts_used", Json.Int attempts_used);
          ("feasible", Json.Bool chosen_attempt.a_feasible);
          ("energy", Json.float chosen_attempt.a_energy);
        ];
  let sol =
    {
      Solution.algorithm = "random-schedule";
      energy = chosen_attempt.a_energy;
      feasible = chosen_attempt.a_feasible;
      schedule = chosen_attempt.a_schedule;
      per_flow_rates = List.map (fun (f : Flow.t) -> (f.id, Flow.density f)) flows;
      meta =
        Solution.Rounding
          {
            Solution.paths = chosen_attempt.a_chosen;
            attempts_used;
            candidates =
              List.map (fun (id, cands) -> (id, List.length cands)) candidates;
            relaxation = relax;
          };
    }
  in
  Selfcheck.solution inst sol;
  sol

let refine inst (t : Solution.t) =
  match t.Solution.meta with
  | Solution.Rounding { paths; _ } ->
    let routing id = List.assoc id paths in
    Most_critical_first.solve_routed ~algorithm:"rs+refine" inst ~routing
  | Solution.Mcf _ | Solution.Routed _ ->
    invalid_arg "Random_schedule.refine: expected a Random-Schedule solution"

(* The Solver_api face: default config, no pre-solved relaxation. *)
module Api = struct
  let name = name

  let solve ~instance ~workspace ~deadline ?previous () =
    solve ~instance ~workspace ~deadline ?previous ()
end
