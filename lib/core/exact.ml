module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow

type result = {
  energy : float;
  routing : (int * Graph.link list) list;
  best : Solution.t;
  combinations : int;
}

let search ?(max_hops = 8) ?(max_combinations = 50_000) inst =
  Dcn_engine.Trace.span "exact.search"
    ~fields:[ ("flows", Dcn_engine.Json.Int (Instance.num_flows inst)) ]
  @@ fun () ->
  let g = inst.Instance.graph in
  let flows = Instance.flow_array inst in
  let choices =
    Array.map
      (fun (f : Flow.t) ->
        let ps =
          Paths.all_simple_paths ~max_hops ~limit:max_combinations g ~src:f.src
            ~dst:f.dst
        in
        if ps = [] then
          invalid_arg
            (Printf.sprintf "Exact.search: flow %d has no path within %d hops" f.id
               max_hops);
        Array.of_list ps)
      flows
  in
  let total =
    Array.fold_left
      (fun acc ps ->
        let acc = acc * Array.length ps in
        if acc > max_combinations then
          invalid_arg
            (Printf.sprintf "Exact.search: more than %d routing combinations"
               max_combinations)
        else acc)
      1 choices
  in
  let n = Array.length flows in
  let current = Array.make n 0 in
  let best = ref None in
  let explored = ref 0 in
  let rec enumerate i =
    if i = n then begin
      (* One watchdog poll per routing combination: the exhaustive
         search is the stage most likely to blow a wall-clock budget. *)
      Dcn_engine.Deadline.check ();
      incr explored;
      let routing id =
        (* flows are sorted by id; binary search is overkill here *)
        let rec find k =
          if flows.(k).Flow.id = id then choices.(k).(current.(k))
          else find (k + 1)
        in
        find 0
      in
      let res = Most_critical_first.solve_routed ~algorithm:"exact" inst ~routing in
      match !best with
      | Some (e, _, _) when e <= res.Solution.energy -> ()
      | _ ->
        if Dcn_engine.Trace.on () then
          Dcn_engine.Trace.event "exact.incumbent"
            ~fields:
              [
                ("combination", Dcn_engine.Json.Int !explored);
                ("energy", Dcn_engine.Json.float res.Solution.energy);
              ];
        best := Some (res.Solution.energy, Array.copy current, res)
    end
    else
      for c = 0 to Array.length choices.(i) - 1 do
        current.(i) <- c;
        enumerate (i + 1)
      done
  in
  (* Certify only the winner, not all [max_combinations] candidates. *)
  Selfcheck.without (fun () -> enumerate 0);
  ignore total;
  Dcn_engine.Trace.counter "exact.combinations" (float_of_int !explored);
  match !best with
  | None -> assert false
  | Some (energy, pick, best_res) ->
    Selfcheck.solution inst best_res;
    {
      energy;
      routing =
        Array.to_list
          (Array.mapi
             (fun i (f : Flow.t) -> (f.id, choices.(i).(pick.(i))))
             flows);
      best = best_res;
      combinations = !explored;
    }

let name = "exact"

let solve ?max_hops ?max_combinations ~instance ~workspace:(_ : Solver_api.workspace)
    ~deadline ?previous:(_ : Solution.t option) () =
  Solver_api.under_deadline deadline @@ fun () ->
  (search ?max_hops ?max_combinations instance).best
