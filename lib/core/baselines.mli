(** Baselines of the paper's evaluation (Section V-C).

    SP+MCF — "Shortest-Path routing plus Most-Critical-First" — is the
    paper's stand-in for how data centers route today: fix hop-count
    shortest paths, then schedule optimally on them.  Its energy is "the
    lower bound of the energy consumption by SP routing". *)

val shortest_path_routing : Instance.t -> int -> Dcn_topology.Graph.link list
(** Deterministic hop-count shortest path per flow id (one Dijkstra per
    distinct source).  @raise Invalid_argument if some flow's endpoints
    are disconnected; @raise Not_found for an unknown id. *)

val sp_mcf : Instance.t -> Solution.t
(** Shortest-path routing followed by Most-Critical-First. *)

val ecmp_routing :
  ?fanout:int ->
  rng:Dcn_util.Prng.t ->
  Instance.t ->
  int ->
  Dcn_topology.Graph.link list
(** Equal-cost multi-path style routing: each flow picks uniformly among
    its minimum-hop paths (up to [fanout] candidates per flow, default
    16, found by Yen's algorithm) — the oblivious load balancing data
    centers deploy today, as a second point of comparison between
    deterministic shortest paths and the paper's optimised routing. *)

val ecmp_mcf : ?fanout:int -> rng:Dcn_util.Prng.t -> Instance.t -> Solution.t
(** ECMP routing followed by Most-Critical-First. *)

module Sp_mcf : Solver_api.S
(** {!sp_mcf} as a {!Solver_api.S}; deterministic, ignores the
    workspace and [previous]. *)

module Ecmp_mcf : Solver_api.S
(** {!ecmp_mcf} as a {!Solver_api.S}; draws path choices from
    [workspace.rng]. *)
