(** Registry of every {!Solver_api.S} implementation.

    Drivers that let the user pick an algorithm by name (the CLI, the
    differential oracle's sweep) resolve it here instead of hard-coding
    the module list. *)

val all : (module Solver_api.S) list
(** Every registered solver, in presentation order. *)

val names : string list
(** Their {!Solver_api.S.name}s, same order. *)

val find : string -> (module Solver_api.S) option
(** Look a solver up by name. *)
