(** The multi-step fractional MCF relaxation of Algorithm 2.

    Per interval [I_k] of the instance's timeline, every active flow's
    density [D_i] is routed fractionally at minimum total convex link
    cost — the F-MCF subproblem of the paper, solved here by
    {!Dcn_mcf.Frank_wolfe} with the power model's lower convex envelope
    as the per-link cost (the convexification of the fixed-charge
    Eq. 1; see DESIGN.md).  The fractional per-flow link flows are
    decomposed into weighted paths (Raghavan–Tompson), ready for the
    randomised rounding of {!Random_schedule}; the certified objective
    lower bounds feed {!Lower_bound}. *)

type interval_solution = {
  index : int;
  bounds : float * float;
  cost : float;
      (** envelope cost of the fractional loads, per unit time *)
  lb : float;  (** certified lower bound on the interval's convex optimum *)
  max_overload : float;  (** worst link-load excess over capacity *)
  flow_paths : (int * Dcn_mcf.Decompose.weighted_path list) list;
      (** flow id → weighted paths; weights sum to the flow's density *)
}

type t = {
  timeline : Dcn_flow.Timeline.t;
  intervals : interval_solution array;
  cost : float;  (** [sum over k of |I_k| * cost_k] *)
  lb : float;  (** [sum over k of |I_k| * lb_k] — the paper's LB series *)
}

val piecewise_of : Dcn_power.Model.t -> Dcn_mcf.Frank_wolfe.piecewise
(** The model's lower convex envelope in the closed form the kernel
    engine inlines; describes exactly [Model.envelope(_deriv)]. *)

val solve :
  ?pool:Dcn_engine.Pool.t ->
  ?fw_config:Dcn_mcf.Frank_wolfe.config ->
  ?workspace:Dcn_mcf.Kernel.Workspace.t ->
  Instance.t ->
  t
(** [pool] fans the independent per-interval F-MCF programs across
    worker domains (default: sequential).  The result is bit-identical
    for every pool size and either FW engine.  [workspace] supplies the
    kernel engine's arenas, reused across the intervals (and safely
    across the pool's domains); without one the process-wide default
    workspace is used. *)

type reuse_stats = {
  resolved : int;  (** intervals whose F-MCF was (re-)solved *)
  reused : int;  (** intervals copied verbatim from [previous] *)
}

val resolve :
  ?pool:Dcn_engine.Pool.t ->
  ?fw_config:Dcn_mcf.Frank_wolfe.config ->
  ?workspace:Dcn_mcf.Kernel.Workspace.t ->
  previous:t ->
  window:float * float ->
  Instance.t ->
  t * reuse_stats
(** Incremental re-solve after a local change to the flow set (an
    arrival, cancellation or retirement whose span is [window]), given
    the [previous] relaxation of the pre-change instance.

    Intervals of the {e new} timeline that do not overlap [window]
    reuse the previous solution of the interval covering their midpoint
    — per-interval quantities are per unit time, so intervals split by
    new breakpoints outside the window inherit the old solution on both
    halves exactly.  Reuse is guarded: if the previous solution's flow
    set does not match the interval's active set (a caller gave too
    narrow a window), the interval is re-solved rather than reused, so
    [resolve] never returns a stale solution.  Overlapping intervals
    are re-solved with {!Dcn_mcf.Frank_wolfe}'s warm start seeded from
    the previous fractional paths of every flow both instances share.

    Bit-identical for every pool size, like {!solve}. *)
