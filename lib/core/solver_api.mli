(** The unified solver entry-point signature.

    Every complete solver in this library — {!Random_schedule} (the
    paper's Algorithm 2), the SP+MCF / ECMP+MCF baselines of
    {!Baselines}, {!Greedy_ear}, {!Online} and {!Exact} — exposes a
    [solve] of exactly this shape, so drivers (the CLI, the serving
    layer, the watchdog, the differential oracle) can hold a
    [(module Solver_api.S)] and treat algorithms uniformly.  The
    registry lives in {!Solvers}.

    The inputs every solver receives:

    - [instance] — the problem (topology, power model, flow set);
    - [workspace] — the reusable execution resources: the domain
      {!Dcn_engine.Pool} for fan-out, the {!Dcn_mcf.Kernel.Workspace}
      arenas of the flat Frank–Wolfe engine (reused across calls so the
      hot loop allocates nothing), and the PRNG stream for randomised
      solvers;
    - [deadline] — a wall-clock budget the solver polls cooperatively
      ({!Dcn_engine.Deadline.check}); deterministic solvers without
      inner loops may finish regardless;
    - [?previous] — an earlier solution of a {e nearby} instance.
      Solvers that can warm-start (Random-Schedule re-solving after a
      local change reuses the previous fractional relaxation) exploit
      it; others ignore it.  Correctness never depends on it. *)

type workspace = {
  pool : Dcn_engine.Pool.t;  (** worker domains for per-interval fan-out *)
  kernel : Dcn_mcf.Kernel.Workspace.t;
      (** flat-kernel Frank–Wolfe arenas, reused across calls *)
  rng : Dcn_util.Prng.t;  (** stream for randomised solvers *)
}

val workspace :
  ?pool:Dcn_engine.Pool.t ->
  ?rng:Dcn_util.Prng.t ->
  ?kernel:Dcn_mcf.Kernel.Workspace.t ->
  unit ->
  workspace
(** Defaults: sequential pool, [Prng.create 0], the process-wide
    {!Dcn_mcf.Kernel.Workspace.default}.  Deterministic solvers ignore
    [rng], so the default seed only matters for randomised ones. *)

module type S = sig
  val name : string
  (** Stable identifier, e.g. ["random-schedule"]; equals the
      [algorithm] field of returned solutions. *)

  val solve :
    instance:Instance.t ->
    workspace:workspace ->
    deadline:Dcn_engine.Deadline.t ->
    ?previous:Solution.t ->
    unit ->
    Solution.t
  (** May raise {!Dcn_engine.Deadline.Expired} (budget blown) or
      [Invalid_argument] (malformed instance for this solver, e.g.
      disconnected endpoints). *)
end

val under_deadline : Dcn_engine.Deadline.t -> (unit -> 'a) -> 'a
(** Run under the {e tighter} of [deadline] and the caller's ambient
    deadline.  Solvers wrap their body in this: passing
    [Deadline.never] inside a watchdog stage must not loosen the
    stage's budget (nested [with_deadline] alone would — the innermost
    wins). *)
