(** The paper's LB normaliser (Section V-C).

    The "lower bound for the optimum (solution given by y*)": the cost
    of the multi-step fractional relaxation, in which every flow is
    spread at its density over its span, may use many paths at once and
    links turn on and off freely.  As in the paper it is used to
    normalise the energies of Random-Schedule and SP+MCF.  (It fixes
    per-interval demands to the densities, so it is the paper's
    normaliser rather than a certified bound over every conceivable
    schedule — see DESIGN.md.) *)

type t = {
  value : float;  (** certified lower bound of the relaxation objective *)
  fractional_cost : float;  (** the relaxation's achieved objective *)
  relaxation : Relaxation.t;
}

val compute :
  ?pool:Dcn_engine.Pool.t -> ?fw_config:Dcn_mcf.Frank_wolfe.config -> Instance.t -> t

val of_relaxation : Relaxation.t -> t
(** Reuse an already-solved relaxation (Random-Schedule computes one). *)
