(** Plain-text serialisation of instances and schedules.

    A small, versioned, line-oriented format so instances can be
    generated once, shared, and re-solved (`dcn solve --instance file`),
    and so schedules can be exported for external plotting.  Graphs are
    written structurally (nodes and cables), so any topology round-trips
    regardless of which builder produced it.

    {v
    dcnsched-instance v1
    # comment
    node <id> host|switch:<tier> [name]
    cable <node> <node>
    power <sigma> <mu> <alpha> <cap|inf>
    flow <id> <src> <dst> <volume> <release> <deadline>
    v} *)

val instance_to_string : Instance.t -> string

type parse_error = {
  line : int;  (** 1-based line of the defect; [0] for whole-input errors *)
  position : int;  (** byte offset of that line's start in the input *)
  message : string;
}
(** Where and why parsing failed.  Produced by the [_result] parsers for
    any malformed, truncated or semantically invalid input — including
    defects only caught by downstream validation ({!Instance.validate},
    [Schedule.make]), which are rewritten into a positioned error rather
    than escaping as an exception. *)

val parse_error_to_string : parse_error -> string

val instance_of_string_result : string -> (Instance.t, parse_error) result
(** Never raises on malformed input. *)

val instance_of_string : string -> Instance.t
(** {!instance_of_string_result}, raising.
    @raise Failure with the position on malformed input. *)

val schedule_to_string : Dcn_sched.Schedule.t -> string
(** One [plan] line per flow (id, path link ids) followed by its
    [slot] lines (start stop rate).  (CSV export of experiment series
    lives next to the experiments, see {!Dcn_experiments.Fig2}.) *)

val schedule_of_string_result :
  Instance.t -> string -> (Dcn_sched.Schedule.t, parse_error) result
(** Re-import a schedule against the instance it was solved from: flow
    ids resolve through the instance, and the graph, power model and
    horizon are the instance's, so
    [schedule_of_string_result inst (schedule_to_string s)] round-trips
    any schedule of [inst].  Malformed input, unknown flow ids and plans
    whose path does not connect their flow's endpoints all yield a typed
    error — never an exception. *)

val schedule_of_string : Instance.t -> string -> Dcn_sched.Schedule.t
(** {!schedule_of_string_result}, raising.
    @raise Failure with the position on malformed input. *)

val schedule_to_json : Dcn_sched.Schedule.t -> Dcn_engine.Json.t
(** Horizon + plans (flow, links, slots) as JSON. *)

val solution_to_json : Solution.t -> Dcn_engine.Json.t
(** The whole {!Solution.t} as JSON: algorithm, energy, feasibility,
    per-flow rates, chosen paths, MCF critical groups (empty for
    rounding results) and the full schedule — the [solutions] section
    of CLI [--report] files. *)
