module Json = Dcn_engine.Json
module Deadline = Dcn_engine.Deadline
module Pool = Dcn_engine.Pool
module Trace = Dcn_engine.Trace
module Prng = Dcn_util.Prng

type row = {
  index : int;
  label : string;
  event : Fault.event;
  committed : Watchdog.answer;
  outcome : Repair.outcome;
}

let row_certified row =
  match row.outcome with
  | Repair.Repaired d | Repair.Degraded d -> d.Repair.violations = []
  | Repair.Irreparable _ -> false

type t = {
  seed : int;
  policy : Repair.policy;
  rows : row array;
  repaired : int;
  degraded : int;
  irreparable : int;
  uncertified : int;
}

let ok t =
  t.uncertified = 0
  && Array.for_all
       (fun row ->
         match row.outcome with
         | Repair.Irreparable _ -> true
         | _ -> row_certified row)
       t.rows

let run_scenario ~watchdog ~repair ~policy (s : Fault.scenario) =
  Trace.span ~fields:[ ("label", Json.Str s.Fault.label) ] "resilience.scenario"
  @@ fun () ->
  (* The scenario's own streams: commit solve and repair never share
     randomness, so neither phase perturbs the other. *)
  let rngs = Pool.split_rngs (Prng.create s.Fault.solver_seed) 2 in
  let committed =
    Dcn_core.Selfcheck.without (fun () ->
        Watchdog.solve ~config:watchdog ~rng:rngs.(0) s.Fault.instance)
  in
  let outcome =
    match
      Repair.repair ~config:repair ~policy ~rng:rngs.(1)
        ~committed:committed.Watchdog.schedule ~event:s.Fault.event
        s.Fault.instance
    with
    | outcome -> outcome
    | exception Deadline.Expired ->
      Repair.Irreparable { reason = "budget expired during repair"; salvaged = 0. }
  in
  { index = s.Fault.index; label = s.Fault.label; event = s.Fault.event; committed; outcome }

let run ?pool ?budget_ms ?(watchdog = Watchdog.default_config)
    ?(repair = Repair.default_config) ~policy ~seed ~n () =
  let watchdog =
    match budget_ms with
    | None -> watchdog
    | Some ms -> { watchdog with Watchdog.budget_ms = Some ms }
  in
  let scenarios = Fault.campaign ~seed ~n in
  let f = run_scenario ~watchdog ~repair ~policy in
  let rows =
    match pool with
    | None -> Array.map f scenarios
    | Some pool -> Pool.map pool f scenarios
  in
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 rows in
  let kind_is k r = Repair.outcome_kind r.outcome = k in
  let t =
    {
      seed;
      policy;
      rows;
      repaired = count (kind_is "repaired");
      degraded = count (kind_is "degraded");
      irreparable = count (kind_is "irreparable");
      uncertified =
        count (fun r -> (not (kind_is "irreparable" r)) && not (row_certified r));
    }
  in
  Trace.counter "resilience.irreparable" (float_of_int t.irreparable);
  t

let row_to_json row =
  Json.Obj
    [
      ("index", Json.Int row.index);
      ("label", Json.Str row.label);
      ("event", Fault.event_to_json row.event);
      ("watchdog", Watchdog.answer_to_json row.committed);
      ("repair", Repair.outcome_to_json row.outcome);
    ]

let to_json t =
  Json.Obj
    [
      ("scenarios", Json.Int (Array.length t.rows));
      ("seed", Json.Int t.seed);
      ("policy", Json.Str (Repair.policy_to_string t.policy));
      ("ok", Json.Bool (ok t));
      ("repaired", Json.Int t.repaired);
      ("degraded", Json.Int t.degraded);
      ("irreparable", Json.Int t.irreparable);
      ("uncertified", Json.Int t.uncertified);
      ("rows", Json.List (Array.to_list (Array.map row_to_json t.rows)));
    ]
