(** Schedule repair after a fault — salvage, re-plan, degrade gracefully.

    Given a committed schedule and a {!Fault.event} striking at time
    [t], repair proceeds in three steps:

    + {b salvage}: everything the committed schedule delivered before
      [t] is kept — per flow, the residual volume is
      [w_i - delivered_before_t];
    + {b residual instance}: flows with volume left become fresh flows
      released at [max r_i t] on the post-fault topology (cables
      removed, capacity clamped, burst arrivals admitted per policy);
    + {b re-solve}: the residual instance goes back through the normal
      pipeline ({!Dcn_core.Relaxation} + {!Dcn_core.Random_schedule});
      while no feasible draw exists the admission {!policy} drops one
      flow at a time — graceful degradation rather than failure.

    The result is a typed {!outcome} — never an exception: even solver
    blow-ups on pathological residuals are folded into [Irreparable]
    (only {!Dcn_engine.Deadline.Expired} is re-raised, so a watchdog
    budget above a repair still works).  A repaired schedule is a
    schedule {e of the residual instance}: certify it with
    {!Dcn_check.Certify.solution} against [detail.residual] — the
    salvaged prefix needs no new certificate, it is the committed
    schedule the fault interrupted. *)

type policy =
  | Drop_latest_deadline
      (** shed the flow with the most distant deadline first *)
  | Drop_largest_residual
      (** shed the flow with the most volume left first *)
  | Reject_new
      (** never shed a pre-fault flow; refuse burst arrivals instead,
          and report [Irreparable] if the old flows cannot be served *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type shed_policy =
  | Shed_newest
      (** refuse the arriving event when the queue is full — committed
          work is never displaced (the overload analogue of
          [Reject_new]) *)
  | Shed_oldest
      (** evict the oldest queued (not yet committed) event to make
          room — freshest traffic wins under sustained overload *)
(** Overload shedding for the serving layer's bounded pending-event
    queue ([Dcn_durable.Pending]): when arrivals outpace the
    incremental re-solve, the transport must refuse {e some} event with
    a typed [Shed] outcome rather than queue without bound.  Lives here
    beside the admission {!policy} vocabulary so both degradation axes
    — not enough capacity, not enough solver throughput — are chosen
    from one place. *)

val shed_policy_to_string : shed_policy -> string
val shed_policy_of_string : string -> shed_policy option

val next_casualty :
  policy -> is_new:(int -> bool) -> Dcn_flow.Flow.t list -> Dcn_flow.Flow.t option
(** The policy's next victim among the given flows — the admission
    decision {!repair}'s degradation loop takes one round at a time,
    exposed so other admission loops (the serving layer's per-arrival
    admit/degrade cycle) shed flows under exactly the same typed
    policies.  [is_new] marks flows that arrived after commitment
    (burst arrivals, live arrivals); [None] means the policy refuses to
    shed further — [Reject_new] never sheds a pre-existing flow. *)

type detail = {
  residual : Dcn_core.Instance.t option;
      (** the re-solved instance; [None] when nothing was left to do *)
  solution : Dcn_core.Solution.t option;
      (** the re-plan; [None] iff [residual] is [None] or every
          residual flow was dropped *)
  salvaged : float;  (** volume delivered before the fault, kept as-is *)
  dropped : Dcn_flow.Flow.t list;  (** admission casualties, id order *)
  violations : Dcn_check.Certify.violation list;
      (** certification of [solution] against [residual]; [[]] when
          there is no solution to certify *)
}

type outcome =
  | Repaired of detail  (** every residual flow re-planned; no drops *)
  | Degraded of detail  (** re-planned after shedding [detail.dropped] *)
  | Irreparable of { reason : string; salvaged : float }
      (** no admissible re-plan exists under the policy *)

val outcome_kind : outcome -> string
(** ["repaired"], ["degraded"] or ["irreparable"]. *)

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_to_json : outcome -> Dcn_engine.Json.t

type config = {
  attempts : int;  (** Random-Schedule redraws per admission round *)
  fw_config : Dcn_mcf.Frank_wolfe.config;
  volume_eps : float;
      (** relative slack below which a residual counts as delivered *)
}

val default_config : config

val repair :
  ?config:config ->
  policy:policy ->
  rng:Dcn_util.Prng.t ->
  committed:Dcn_sched.Schedule.t ->
  event:Fault.event ->
  Dcn_core.Instance.t ->
  outcome
(** Deterministic given [(rng, committed, event, instance, policy)].
    Solvers run sequentially so repairs parallelise at the campaign
    level without nesting pools. *)
