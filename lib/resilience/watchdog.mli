(** A wall-clock budget guard over a fallback chain of solvers.

    The watchdog walks [exact -> random-schedule -> greedy-ear] under a
    single {!Dcn_engine.Deadline}: each guarded stage runs with the
    budget's deadline installed as the ambient deadline of the calling
    domain, and the instrumented solver loops (Frank–Wolfe iterations,
    Random-Schedule attempt batches, exact enumeration leaves) poll it
    cooperatively.  A stage that expires — or fails, or is gated out —
    is recorded and the chain falls through; the final greedy stage
    runs {e unguarded}, so the watchdog always answers with a schedule
    instead of hanging or raising.  With a 0 ms budget every guarded
    stage deterministically times out before its first poll completes,
    which is the degradation path the tests pin down.

    Outcomes are typed ({!attempt} per stage) and serialise into the
    run report, so an expired stage is visible in JSON rather than a
    stack trace. *)

type status =
  | Answered
  | Timed_out  (** the budget expired inside the stage *)
  | Skipped  (** gated out (e.g. the instance is too big for exact) *)
  | Failed of string  (** the stage ran but produced no usable answer *)

type attempt = { stage : string; status : status }

type answer = {
  algorithm : string;  (** the stage that answered *)
  attempts : attempt list;  (** the chain walk, in order *)
  schedule : Dcn_sched.Schedule.t;
  energy : float;
  feasible : bool;
  solution : Dcn_core.Solution.t option;
      (** [None] when the greedy fallback answered *)
}

val timed_out : answer -> string list
(** Stages whose budget expired, in chain order. *)

type config = {
  budget_ms : float option;  (** [None]: no deadline, stages run to completion *)
  rs_attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
  exact : bool option;
      (** force the exhaustive stage on/off; [None] gates it by size
          as {!Dcn_check.Oracle} does *)
}

val default_config : config

val solve :
  ?config:config -> rng:Dcn_util.Prng.t -> Dcn_core.Instance.t -> answer
(** Deterministic for a fixed [(config, rng, instance)] {e outcome
    structure} under a 0 ms or absent budget; with a finite positive
    budget the stage that answers may vary with machine speed, which
    is the point of a watchdog.
    @raise Invalid_argument if even the greedy fallback cannot route a
    flow (disconnected endpoints). *)

val status_to_string : status -> string

val answer_to_json : answer -> Dcn_engine.Json.t
(** Algorithm, per-stage statuses, energy, feasibility — the
    [watchdog] section of run reports.  Timings live in the trace
    spans, keeping the report bit-deterministic. *)
