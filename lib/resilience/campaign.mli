(** Fault campaigns: commit, strike, repair, certify — N times.

    A campaign replays [n] independent {!Fault.scenario}s.  Each
    scenario solves its instance through the {!Watchdog} (committing a
    schedule the fault will interrupt), injects its fault, runs
    {!Repair} under the campaign's admission policy, and certifies any
    re-plan against the residual instance.

    Scenarios parallelise over a {!Dcn_engine.Pool}; every scenario is
    a pure function of its own pre-split PRNG streams, so the campaign
    result is bit-identical at every [--jobs] level (the same
    invariance contract as the fuzzing oracle). *)

type row = {
  index : int;
  label : string;
  event : Fault.event;
  committed : Watchdog.answer;  (** the pre-fault plan *)
  outcome : Repair.outcome;
}

val row_certified : row -> bool
(** No violations on the repaired schedule (vacuously true when there
    is nothing left to certify); [false] for [Irreparable]. *)

type t = {
  seed : int;
  policy : Repair.policy;
  rows : row array;
  repaired : int;
  degraded : int;
  irreparable : int;
  uncertified : int;  (** rows whose re-plan failed certification *)
}

val ok : t -> bool
(** Every repaired or degraded schedule certified. *)

val run :
  ?pool:Dcn_engine.Pool.t ->
  ?budget_ms:float ->
  ?watchdog:Watchdog.config ->
  ?repair:Repair.config ->
  policy:Repair.policy ->
  seed:int ->
  n:int ->
  unit ->
  t
(** [budget_ms] overrides [watchdog.budget_ms] for the commit phase.
    Repairs degrade on their own; should an enclosing ambient deadline
    ({!Dcn_engine.Deadline}) expire inside one, the row folds into
    [Irreparable] rather than raising.
    @raise Invalid_argument if [n < 1]. *)

val row_to_json : row -> Dcn_engine.Json.t

val to_json : t -> Dcn_engine.Json.t
(** Summary counts plus one entry per scenario — the [resilience]
    section of run reports. *)
