module Json = Dcn_engine.Json
module Deadline = Dcn_engine.Deadline
module Trace = Dcn_engine.Trace
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Random_schedule = Dcn_core.Random_schedule
module Schedule = Dcn_sched.Schedule
module Certify = Dcn_check.Certify

type policy = Drop_latest_deadline | Drop_largest_residual | Reject_new

let policy_to_string = function
  | Drop_latest_deadline -> "drop-latest-deadline"
  | Drop_largest_residual -> "drop-largest-residual"
  | Reject_new -> "reject-new"

let policy_of_string = function
  | "drop-latest-deadline" -> Some Drop_latest_deadline
  | "drop-largest-residual" -> Some Drop_largest_residual
  | "reject-new" -> Some Reject_new
  | _ -> None

type shed_policy = Shed_newest | Shed_oldest

let shed_policy_to_string = function
  | Shed_newest -> "shed-newest"
  | Shed_oldest -> "shed-oldest"

let shed_policy_of_string = function
  | "shed-newest" -> Some Shed_newest
  | "shed-oldest" -> Some Shed_oldest
  | _ -> None

type detail = {
  residual : Instance.t option;
  solution : Solution.t option;
  salvaged : float;
  dropped : Flow.t list;
  violations : Certify.violation list;
}

type outcome =
  | Repaired of detail
  | Degraded of detail
  | Irreparable of { reason : string; salvaged : float }

let outcome_kind = function
  | Repaired _ -> "repaired"
  | Degraded _ -> "degraded"
  | Irreparable _ -> "irreparable"

let pp_outcome ppf = function
  | Repaired d ->
    Format.fprintf ppf "repaired: %d residual flow(s), %g salvaged"
      (match d.residual with None -> 0 | Some i -> Instance.num_flows i)
      d.salvaged
  | Degraded d ->
    Format.fprintf ppf "degraded: dropped %s, %g salvaged"
      (String.concat ","
         (List.map (fun (f : Flow.t) -> string_of_int f.id) d.dropped))
      d.salvaged
  | Irreparable { reason; salvaged } ->
    Format.fprintf ppf "irreparable: %s (%g salvaged)" reason salvaged

let detail_to_json d =
  Json.Obj
    [
      ("salvaged", Json.float d.salvaged);
      ( "dropped",
        Json.List (List.map (fun (f : Flow.t) -> Json.Int f.id) d.dropped) );
      ( "residual_flows",
        Json.Int (match d.residual with None -> 0 | Some i -> Instance.num_flows i) );
      ( "energy",
        match d.solution with
        | None -> Json.Null
        | Some s -> Json.float s.Solution.energy );
      ("certified", Json.Bool (d.violations = []));
      ("violations", Json.List (List.map Certify.violation_to_json d.violations));
    ]

let outcome_to_json o =
  match o with
  | Repaired d | Degraded d ->
    Json.Obj (("outcome", Json.Str (outcome_kind o)) :: (match detail_to_json d with Json.Obj fs -> fs | _ -> []))
  | Irreparable { reason; salvaged } ->
    Json.Obj
      [
        ("outcome", Json.Str "irreparable");
        ("reason", Json.Str reason);
        ("salvaged", Json.float salvaged);
      ]

type config = {
  attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
  volume_eps : float;
}

let default_config =
  {
    attempts = 10;
    fw_config = { Dcn_mcf.Frank_wolfe.default_config with max_iters = 60; gap_tol = 1e-3 };
    volume_eps = 1e-6;
  }

(* Volume a plan delivers strictly before [t]. *)
let delivered_before (plan : Schedule.plan) t =
  List.fold_left
    (fun acc (s : Schedule.slot) ->
      let len = Float.min s.stop t -. s.start in
      if len > 0. then acc +. (s.rate *. len) else acc)
    0. plan.Schedule.slots

(* Directed reachability on the surviving graph (the builders pair
   links, but a repair must not assume the fault left them paired). *)
let reaches graph ~src ~dst =
  let n = Graph.num_nodes graph in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun l ->
        let w = Graph.link_dst graph l in
        if not seen.(w) then begin
          seen.(w) <- true;
          if w = dst then found := true;
          Queue.add w queue
        end)
      (Graph.out_links graph v)
  done;
  !found

(* The post-fault fabric.  The power model carries one capacity for all
   links, so a degradation anywhere clamps fabric-wide: the base is the
   model's cap when finite, else the committed schedule's peak rate
   (an infinite-cap model gives a degradation nothing to bite on). *)
let post_fault_fabric inst ~committed ~event =
  let graph = inst.Instance.graph in
  let power = inst.Instance.power in
  match event with
  | Fault.Cable_cut { cables; _ } ->
    (Graph.remove_cables graph ~cables, power)
  | Fault.Degradation { factor; _ } ->
    let base =
      if Float.is_finite power.Model.cap then power.Model.cap
      else Schedule.max_link_rate committed
    in
    let power =
      if base <= 0. then power
      else
        Model.make ~sigma:power.Model.sigma ~mu:power.Model.mu
          ~alpha:power.Model.alpha ~cap:(factor *. base) ()
    in
    (graph, power)
  | Fault.Burst _ -> (graph, power)

let by_id (a : Flow.t) (b : Flow.t) = compare a.id b.id

(* The admission policy's next casualty among [flows]; [is_new] marks
   burst arrivals.  [None] means the policy refuses to shed further. *)
let casualty policy ~is_new flows =
  let last cmp = function
    | [] -> None
    | f :: fs -> Some (List.fold_left (fun a b -> if cmp a b >= 0 then a else b) f fs)
  in
  let latest_deadline (a : Flow.t) (b : Flow.t) =
    compare (a.deadline, a.id) (b.deadline, b.id)
  in
  let largest_volume (a : Flow.t) (b : Flow.t) =
    compare (a.volume, a.id) (b.volume, b.id)
  in
  match policy with
  | Drop_latest_deadline -> last latest_deadline flows
  | Drop_largest_residual -> last largest_volume flows
  | Reject_new -> last latest_deadline (List.filter (fun (f : Flow.t) -> is_new f.id) flows)

let next_casualty = casualty

(* Live telemetry: one increment per repair, labelled by outcome.
   ([Deadline.Expired] escapes are not outcomes and stay uncounted.) *)
let obs_outcome =
  let mk outcome =
    Dcn_obs.Registry.counter ~help:"schedule repair outcomes"
      ~labels:[ ("outcome", outcome) ] "repair.outcomes"
  in
  let repaired = mk "repaired" in
  let degraded = mk "degraded" in
  let irreparable = mk "irreparable" in
  fun r ->
    Dcn_obs.Registry.incr
      (match r with
      | Repaired _ -> repaired
      | Degraded _ -> degraded
      | Irreparable _ -> irreparable);
    r

let repair ?(config = default_config) ~policy ~rng ~committed ~event inst =
  obs_outcome
  @@ Trace.span
    ~fields:[ ("event", Json.Str (Fault.kind event)) ]
    "resilience.repair"
  @@ fun () ->
  let t = Fault.at event in
  let _, t1 = Instance.horizon inst in
  let tiny = 1e-9 *. Float.max 1. (Float.abs t1) in
  (* Salvage: per pre-fault flow, what the committed schedule already
     delivered; flows with nothing left drop out of the residual. *)
  let salvaged = ref 0. in
  let residual_old =
    List.filter_map
      (fun (f : Flow.t) ->
        let done_ =
          match Schedule.find_plan committed f.id with
          | None -> 0.
          | Some plan -> Float.min f.volume (delivered_before plan t)
        in
        salvaged := !salvaged +. done_;
        let rem = f.volume -. done_ in
        if rem <= config.volume_eps *. f.volume then None
        else
          Some
            (Flow.make ~id:f.id ~src:f.src ~dst:f.dst ~volume:rem
               ~release:(Float.max f.release t) ~deadline:f.deadline))
      inst.Instance.flows
  in
  let salvaged = !salvaged in
  try
    let graph, power = post_fault_fabric inst ~committed ~event in
    let burst =
      match event with Fault.Burst { flows; _ } -> flows | _ -> []
    in
    let new_ids =
      List.fold_left
        (fun acc (f : Flow.t) -> f.id :: acc)
        [] burst
    in
    let is_new id = List.mem id new_ids in
    let admitted, rejected_new =
      match policy with
      | Reject_new -> (residual_old, burst)
      | _ -> (residual_old @ burst, [])
    in
    (* Forced drops: a flow whose window closed at the cut, or whose
       endpoints the surviving fabric no longer connects, cannot be
       served by any re-plan.  [Reject_new] treats a forced drop of a
       pre-fault flow as irreparable — the policy's promise is exactly
       that old flows are never shed. *)
    let serviceable (f : Flow.t) =
      f.deadline -. Float.max f.release t > tiny
      && reaches graph ~src:f.src ~dst:f.dst
    in
    let viable, forced = List.partition serviceable admitted in
    (match (policy, List.filter (fun (f : Flow.t) -> not (is_new f.id)) forced) with
    | Reject_new, (f : Flow.t) :: _ ->
      raise
        (Failure
           (Printf.sprintf "flow %d cannot be served on the degraded fabric" f.id))
    | _ -> ());
    let solve flows =
      match Instance.make_result ~graph ~power ~flows with
      | Error e -> Error (Instance.error_to_string e)
      | Ok residual -> (
        match
          Random_schedule.solve
            ~config:
              { Random_schedule.attempts = config.attempts; fw_config = config.fw_config }
            ~instance:residual
            ~workspace:(Dcn_core.Solver_api.workspace ~rng:(Prng.split rng) ())
            ~deadline:Deadline.never ()
        with
        | sol when sol.Solution.feasible -> Ok (residual, sol)
        | _ -> Error "no feasible draw within the redraw budget"
        | exception Deadline.Expired -> raise Deadline.Expired
        | exception e -> Error (Printexc.to_string e))
    in
    (* Graceful degradation: shed one flow per round until a feasible
       re-plan exists or the policy refuses. *)
    let rec admit flows dropped =
      match flows with
      | [] ->
        let dropped = List.sort by_id dropped in
        if dropped = [] then
          Repaired
            { residual = None; solution = None; salvaged; dropped; violations = [] }
        else
          Degraded
            { residual = None; solution = None; salvaged; dropped; violations = [] }
      | _ -> (
        match solve flows with
        | Ok (residual, sol) ->
          let violations = Certify.solution residual sol in
          let detail =
            {
              residual = Some residual;
              solution = Some sol;
              salvaged;
              dropped = List.sort by_id dropped;
              violations;
            }
          in
          if dropped = [] then Repaired detail else Degraded detail
        | Error reason -> (
          match casualty policy ~is_new flows with
          | None -> Irreparable { reason; salvaged }
          | Some victim ->
            Trace.event
              ~fields:[ ("flow", Json.Int victim.Flow.id) ]
              "resilience.drop";
            admit
              (List.filter (fun (f : Flow.t) -> f.id <> victim.Flow.id) flows)
              (victim :: dropped)))
    in
    admit viable (forced @ rejected_new)
  with
  | Deadline.Expired -> raise Deadline.Expired
  | e -> Irreparable { reason = Printexc.to_string e; salvaged }
