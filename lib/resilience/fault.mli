(** Deterministic, seeded fault injection.

    A fault is an event hitting a running data center at a point [at]
    inside the committed schedule's horizon: a cable failure, a
    capacity degradation on a link set, or a burst of unplanned flow
    arrivals.  {!Repair} consumes the event together with the committed
    schedule and re-plans what remains.

    Determinism follows the {!Dcn_check.Gen} discipline: every
    scenario of a campaign derives from its own pre-split PRNG stream
    ({!Dcn_engine.Pool.split_rngs}), so {!campaign} is a pure function
    of [(seed, n)] — the same faults come out whatever [--jobs] level
    later replays them, and scenario [i] never depends on how scenarios
    [0..i-1] consumed randomness. *)

type event =
  | Cable_cut of { at : float; cables : Dcn_topology.Graph.link list }
      (** the cables (each named by one directed link) vanish at [at] *)
  | Degradation of {
      at : float;
      cables : Dcn_topology.Graph.link list;  (** the links observed failing *)
      factor : float;  (** in (0, 1): the surviving fraction of capacity *)
    }
      (** fabric-wide rate limit from time [at] on — the power model
          carries a single capacity, so a degradation anywhere clamps
          every link (see DESIGN.md) *)
  | Burst of { at : float; flows : Dcn_flow.Flow.t list }
      (** unplanned arrivals released at or after [at] *)

val at : event -> float
(** When the fault strikes. *)

val kind : event -> string
(** Stable tag: ["cable_cut"], ["degradation"] or ["burst"]. *)

val pp_event : Format.formatter -> event -> unit

val event_to_json : event -> Dcn_engine.Json.t

val draw : rng:Dcn_util.Prng.t -> Dcn_core.Instance.t -> event
(** One random fault for the instance: the strike time lands in the
    middle half of the horizon (so traffic exists on both sides), cable
    cuts never remove the whole fabric, burst flows connect distinct
    hosts with fresh ids.  Pure function of the [rng] stream. *)

type scenario = {
  index : int;  (** position in the campaign *)
  label : string;  (** {!Dcn_check.Gen} case label + fault kind *)
  solver_seed : int;  (** seed for the scenario's solvers *)
  instance : Dcn_core.Instance.t;
  event : event;
}

val scenario : rng:Dcn_util.Prng.t -> index:int -> scenario
(** A {!Dcn_check.Gen.case} plus one fault drawn from the same stream. *)

val campaign : seed:int -> n:int -> scenario array
(** [n] independent scenarios from pre-split streams of [seed].
    @raise Invalid_argument if [n < 1]. *)
