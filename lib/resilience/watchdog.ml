module Json = Dcn_engine.Json
module Deadline = Dcn_engine.Deadline
module Trace = Dcn_engine.Trace
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Random_schedule = Dcn_core.Random_schedule
module Greedy_ear = Dcn_core.Greedy_ear
module Exact = Dcn_core.Exact
module Solver_api = Dcn_core.Solver_api

type status = Answered | Timed_out | Skipped | Failed of string

type attempt = { stage : string; status : status }

type answer = {
  algorithm : string;
  attempts : attempt list;
  schedule : Dcn_sched.Schedule.t;
  energy : float;
  feasible : bool;
  solution : Solution.t option;
}

let timed_out answer =
  List.filter_map
    (fun a -> if a.status = Timed_out then Some a.stage else None)
    answer.attempts

type config = {
  budget_ms : float option;
  rs_attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
  exact : bool option;
}

let default_config =
  {
    budget_ms = None;
    rs_attempts = 10;
    fw_config =
      { Dcn_mcf.Frank_wolfe.default_config with max_iters = 60; gap_tol = 1e-3 };
    exact = None;
  }

let status_to_string = function
  | Answered -> "answered"
  | Timed_out -> "timed_out"
  | Skipped -> "skipped"
  | Failed m -> Printf.sprintf "failed: %s" m

(* Live telemetry: solves started and stages lost to their budget. *)
let obs_solves =
  Dcn_obs.Registry.counter ~help:"watchdog fallback-chain solves"
    "watchdog.solves"

let obs_timeouts =
  Dcn_obs.Registry.counter ~help:"watchdog stage timeouts" "watchdog.timeouts"

(* Same gate as the differential oracle: exhaustion only where the
   enumeration budget is certainly small. *)
let exact_gate inst =
  Instance.num_flows inst <= 4 && Graph.num_cables inst.Instance.graph <= 10

(* Run one guarded stage under the budget's deadline.  The deadline is
   installed as the domain's ambient deadline, so the solver's polling
   points — and any {!Dcn_engine.Pool.map} it fans out through — see
   it without threading a parameter. *)
let guarded deadline stage f =
  match Deadline.with_deadline deadline f with
  | v -> (v, { stage; status = Answered })
  | exception Deadline.Expired ->
    Dcn_obs.Registry.incr obs_timeouts;
    Trace.event ~fields:[ ("stage", Json.Str stage) ] "watchdog.timeout";
    (None, { stage; status = Timed_out })

let solve ?(config = default_config) ~rng inst =
  Dcn_obs.Registry.incr obs_solves;
  Trace.span "watchdog.solve" @@ fun () ->
  (* Honour an enclosing budget: the guarded stages run under the
     tighter of the watchdog's own deadline and the ambient one. *)
  let deadline =
    let own =
      match config.budget_ms with
      | None -> Deadline.never
      | Some ms -> Deadline.after ~ms
    in
    match Deadline.ambient () with
    | Some outer when Deadline.remaining_ms outer < Deadline.remaining_ms own ->
      outer
    | _ -> own
  in
  let attempts = ref [] in
  let record a = attempts := a :: !attempts in
  let answered ~algorithm ~solution ~schedule ~energy ~feasible =
    {
      algorithm;
      attempts = List.rev !attempts;
      schedule;
      energy;
      feasible;
      solution;
    }
  in
  let of_solution (sol : Solution.t) =
    answered ~algorithm:sol.Solution.algorithm ~solution:(Some sol)
      ~schedule:sol.Solution.schedule ~energy:sol.Solution.energy
      ~feasible:sol.Solution.feasible
  in
  (* Stage 1: exhaustive optimum, where gated in. *)
  let exact_wanted =
    match config.exact with Some b -> b | None -> exact_gate inst
  in
  let exact_answer =
    if not exact_wanted then begin
      record { stage = "exact"; status = Skipped };
      None
    end
    else
      let v, a =
        guarded deadline "exact" (fun () ->
            match Exact.search inst with
            | r -> Some (Ok r)
            | exception Invalid_argument m -> Some (Error m))
      in
      match v with
      | Some (Ok r) ->
        record a;
        Some (of_solution r.Exact.best)
      | Some (Error m) ->
        record { stage = "exact"; status = Failed m };
        None
      | None ->
        record a;
        None
  in
  match exact_answer with
  | Some answer -> answer
  | None -> (
    (* Stage 2: the approximation pipeline. *)
    let v, a =
      guarded deadline "random-schedule" (fun () ->
          Some
            (Random_schedule.solve
               ~config:
                 {
                   Random_schedule.attempts = config.rs_attempts;
                   fw_config = config.fw_config;
                 }
               ~instance:inst
               ~workspace:(Solver_api.workspace ~rng:(Prng.split rng) ())
               ~deadline ()))
    in
    let rs_answer =
      match v with
      | Some sol when sol.Solution.feasible ->
        record a;
        Some (of_solution sol)
      | Some _ ->
        record
          {
            stage = "random-schedule";
            status = Failed "no feasible draw within the redraw budget";
          };
        None
      | None ->
        record a;
        None
    in
    match rs_answer with
    | Some answer -> answer
    | None ->
      (* Stage 3: the unguarded fallback — always answers.  [feasible]
         keeps its historical meaning here (deadlines met; the greedy
         is not capacity-aware, its own flag lives in the solution). *)
      let g =
        (* Escape the ambient budget entirely (solvers take the tighter
           of their argument and the ambient deadline, and the fallback
           must answer even when the enclosing budget has expired). *)
        Deadline.with_deadline Deadline.never (fun () ->
            Greedy_ear.solve ~instance:inst
              ~workspace:(Solver_api.workspace ())
              ~deadline:Deadline.never ())
      in
      record { stage = "greedy-ear"; status = Answered };
      answered ~algorithm:"greedy-ear" ~solution:(Some g)
        ~schedule:g.Solution.schedule ~energy:g.Solution.energy
        ~feasible:true)

let answer_to_json t =
  Json.Obj
    [
      ("algorithm", Json.Str t.algorithm);
      ("energy", Json.float t.energy);
      ("feasible", Json.Bool t.feasible);
      ( "attempts",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("stage", Json.Str a.stage);
                   ("status", Json.Str (status_to_string a.status));
                 ])
             t.attempts) );
      ( "timed_out",
        Json.List (List.map (fun s -> Json.Str s) (timed_out t)) );
    ]
