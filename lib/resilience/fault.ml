module Json = Dcn_engine.Json
module Prng = Dcn_util.Prng
module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Instance = Dcn_core.Instance
module Gen = Dcn_check.Gen

type event =
  | Cable_cut of { at : float; cables : Graph.link list }
  | Degradation of { at : float; cables : Graph.link list; factor : float }
  | Burst of { at : float; flows : Flow.t list }

let at = function
  | Cable_cut { at; _ } | Degradation { at; _ } | Burst { at; _ } -> at

let kind = function
  | Cable_cut _ -> "cable_cut"
  | Degradation _ -> "degradation"
  | Burst _ -> "burst"

let pp_event ppf = function
  | Cable_cut { at; cables } ->
    Format.fprintf ppf "cable cut at t=%g: links %s" at
      (String.concat "," (List.map string_of_int cables))
  | Degradation { at; cables; factor } ->
    Format.fprintf ppf "degradation at t=%g: links %s at %g capacity" at
      (String.concat "," (List.map string_of_int cables))
      factor
  | Burst { at; flows } ->
    Format.fprintf ppf "burst at t=%g: %d flow(s)" at (List.length flows)

let event_to_json e =
  let links cables = Json.List (List.map (fun l -> Json.Int l) cables) in
  let fields =
    match e with
    | Cable_cut { at; cables } ->
      [ ("at", Json.float at); ("cables", links cables) ]
    | Degradation { at; cables; factor } ->
      [ ("at", Json.float at); ("cables", links cables); ("factor", Json.float factor) ]
    | Burst { at; flows } ->
      [
        ("at", Json.float at);
        ( "flows",
          Json.List
            (List.map
               (fun (f : Flow.t) ->
                 Json.Obj
                   [
                     ("id", Json.Int f.id);
                     ("src", Json.Int f.src);
                     ("dst", Json.Int f.dst);
                     ("volume", Json.float f.volume);
                     ("release", Json.float f.release);
                     ("deadline", Json.float f.deadline);
                   ])
               flows) );
      ]
  in
  Json.Obj (("kind", Json.Str (kind e)) :: fields)

(* Strike inside the middle half of the horizon: flows exist on both
   sides of the cut, so both the salvage and the residual are
   non-trivial. *)
let strike_time rng inst =
  let t0, t1 = Instance.horizon inst in
  let span = t1 -. t0 in
  Prng.uniform rng ~lo:(t0 +. (0.25 *. span)) ~hi:(t0 +. (0.75 *. span))

(* Distinct cables (identified by their forward link, the even id of
   the pair), never the whole fabric. *)
let pick_cables rng graph =
  let cables = Graph.num_cables graph in
  let want =
    if cables <= 1 then 1 else 1 + Prng.int rng (min 2 (cables - 1))
  in
  let ids = Array.init cables (fun c -> 2 * c) in
  Prng.shuffle rng ids;
  Array.to_list (Array.sub ids 0 (min want cables))

let burst_flows rng inst ~at =
  let graph = inst.Instance.graph in
  let hosts = Graph.hosts graph in
  let _, t1 = Instance.horizon inst in
  let next_id =
    1 + List.fold_left (fun m (f : Flow.t) -> max m f.id) (-1) inst.Instance.flows
  in
  let n = 1 + Prng.int rng 3 in
  List.init n (fun i ->
      let src = Prng.pick rng hosts in
      let dst =
        let rec pick () =
          let d = Prng.pick rng hosts in
          if d = src then pick () else d
        in
        pick ()
      in
      let release = Prng.uniform rng ~lo:at ~hi:(at +. (0.5 *. Float.max 1. (t1 -. at))) in
      let span = Prng.uniform rng ~lo:1. ~hi:4. in
      Flow.make ~id:(next_id + i) ~src ~dst
        ~volume:(Prng.gaussian_positive rng ~mean:4. ~stddev:1.5)
        ~release ~deadline:(release +. span))

let draw ~rng inst =
  let graph = inst.Instance.graph in
  let at = strike_time rng inst in
  let can_burst = Array.length (Graph.hosts graph) >= 2 in
  match Prng.int rng (if can_burst then 3 else 2) with
  | 0 -> Cable_cut { at; cables = pick_cables rng graph }
  | 1 ->
    Degradation
      {
        at;
        cables = pick_cables rng graph;
        factor = Prng.uniform rng ~lo:0.3 ~hi:0.9;
      }
  | _ -> Burst { at; flows = burst_flows rng inst ~at }

type scenario = {
  index : int;
  label : string;
  solver_seed : int;
  instance : Dcn_core.Instance.t;
  event : event;
}

let scenario ~rng ~index =
  let case = Gen.case ~rng ~index in
  let event = draw ~rng case.Gen.instance in
  {
    index;
    label = Printf.sprintf "%s/%s" case.Gen.label (kind event);
    solver_seed = case.Gen.solver_seed;
    instance = case.Gen.instance;
    event;
  }

let campaign ~seed ~n =
  if n < 1 then
    invalid_arg (Printf.sprintf "Fault.campaign: n must be >= 1 (got %d)" n);
  let streams = Dcn_engine.Pool.split_rngs (Prng.create seed) n in
  Array.init n (fun index -> scenario ~rng:streams.(index) ~index)
