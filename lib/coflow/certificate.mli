(** The coflow conjunction certificate.

    A coflow's certificate is the {e conjunction} of two kinds of
    clause, both re-derived from the raw schedule:

    - {e member clauses}: every planned member flow certifies under
      {!Dcn_check.Certify.schedule} — paths, windows, volumes, link
      capacity, energy re-integration;
    - {e admission clause}: {!Dcn_check.Certify.coflow_consistency} —
      the schedule plans either every member of a coflow or none, so an
      all-or-nothing admission decision was actually honoured.

    The default configuration sets [partial = true]: an instance may
    carry the full workload (rejected coflows included) against a
    schedule that only serves the admitted set — unplanned flows are
    legal as long as no coflow is {e partially} planned.  A schedule
    that quietly dropped 3 of a coflow's 40 members passes every member
    clause and still fails the certificate, which is the point. *)

type report = {
  violations : Dcn_check.Certify.violation list;
      (** the full conjunction — member clauses then admission clauses;
          empty means certified *)
  per_coflow : (int * Dcn_check.Certify.violation list) list;
      (** violations attributed to a coflow (via member flow ids, or
          directly for [Partial_coflow]); coflows with none are
          omitted *)
  ok : bool;
}

val conjunction :
  ?config:Dcn_check.Certify.config ->
  ?reported_energy:float ->
  ?lower_bound:float ->
  coflows:Coflow.t list ->
  Dcn_core.Instance.t ->
  Dcn_sched.Schedule.t ->
  report
(** Certify [schedule] against [instance] as a coflow workload.
    [config] defaults to {!Dcn_check.Certify.default} with
    [partial = true] (see above); pass an explicit config to tighten. *)

val admission_result :
  ?config:Dcn_check.Certify.config ->
  coflows:Coflow.t list ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  Admission.t ->
  report
(** Certify an {!Admission.run} result: builds the admitted-set
    instance, checks the solution's schedule under {!conjunction}
    (cross-checking the solver-reported energy), and additionally
    verifies the bookkeeping — every admitted member planned, no
    rejected member planned.  An empty admitted set certifies
    trivially. *)

val to_json : report -> Dcn_engine.Json.t
(** [{ "ok", "violations", "per_coflow" }]. *)
