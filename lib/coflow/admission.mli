(** Sigma-order all-or-nothing coflow admission.

    DCoflow's admission discipline, ported to the energy model: walk the
    coflows in {!Coflow.sigma_order} and, for each one, try to schedule
    the {e whole} admitted set plus every member of the candidate.  If a
    capacity-feasible schedule exists the coflow is admitted as a unit;
    otherwise the whole group is rejected — no member of a rejected
    coflow ever transmits, because a coflow that misses its collective
    deadline is worth nothing regardless of how many members finished.

    Two variants share the walk and differ only in the solver answering
    "does the admitted set + candidate fit?":

    - {!Baseline} asks {!Dcn_core.Greedy_ear} — deterministic earliest-
      admissible-rate packing, the sigma-order baseline;
    - {!Energy_aware} asks {!Dcn_core.Random_schedule} — the paper's
      Relaxation + randomised rounding, so the admitted set is also
      scheduled energy-efficiently (Eq. (5)).

    Both are resolved through {!Dcn_core.Solvers}, so the result is an
    ordinary {!Dcn_core.Solution.t} and certifies with the conjunction
    certificate of {!Certificate}.  Each admission decision draws from
    its own pre-split PRNG stream: the outcome is a pure function of
    [(seed, coflows)] at every [--jobs] level. *)

type variant = Baseline | Energy_aware

val variant_name : variant -> string
(** ["sigma-greedy"] / ["sigma-energy"] — the labels reports carry. *)

val variant_of_string : string -> (variant, string) result
(** Accepts the {!variant_name} forms plus ["baseline"] and
    ["energy"]. *)

type decision = {
  coflow : int;
  label : string;
  admitted : bool;
  reason : string;  (** why it was rejected; [""] when admitted *)
  slack : float;  (** collective deadline minus earliest release *)
}

type t = {
  variant : string;  (** {!variant_name} of the variant that ran *)
  solver : string;  (** underlying solver, e.g. ["random-schedule"] *)
  order : int list;  (** coflow ids in sigma order *)
  decisions : decision list;  (** one per coflow, sigma order *)
  admitted : Coflow.t list;  (** sigma order *)
  rejected : (Coflow.t * string) list;  (** sigma order, with reasons *)
  solution : Dcn_core.Solution.t option;
      (** schedule of the final admitted set; [None] when it is empty *)
  energy : float;  (** its Eq. (5) energy; [0.] when nothing admitted *)
  completion_rate : float;
      (** admitted coflows / total coflows ([1.] on an empty workload) —
          the {e coflow} completion rate, the DCoflow metric *)
}

val run :
  ?seed:int ->
  ?pool:Dcn_engine.Pool.t ->
  ?deadline:Dcn_engine.Deadline.t ->
  variant:variant ->
  graph:Dcn_topology.Graph.t ->
  power:Dcn_power.Model.t ->
  Coflow.t list ->
  t
(** Run the sigma-order walk.  [seed] (default 0) feeds the randomised
    solver's streams; [pool] defaults to the sequential pool; [deadline]
    (default {!Dcn_engine.Deadline.never}) bounds each solve.
    @raise Invalid_argument if two coflows share a member flow id. *)

val to_json : t -> Dcn_engine.Json.t
(** Full report: variant, solver, order, per-coflow decisions, admitted
    and rejected ids, completion rate and energy. *)

val pareto_json : t list -> Dcn_engine.Json.t
(** The Pareto view across variants:
    [[{"variant", "solver", "completion_rate", "energy", "admitted"}]]. *)
