(** Coflows: groups of flows sharing one collective deadline.

    Real datacenter jobs are {e coflows} (DCoflow, arXiv:2205.01229): a
    MapReduce shuffle or a partition–aggregate fan-in is one semantic
    unit, and delivering 37 of its 40 member flows is worth nothing.
    This module is the workload layer over {!Dcn_flow.Flow}: a {!t}
    groups member flows under one job id and collective deadline, the
    generators below build shuffle-/incast-heavy coflow traces from the
    grouped generators of {!Dcn_flow.Workload} (membership carried by
    construction, never re-derived from flow ids), and {!sigma_order}
    is the admission order of DCoflow's sigma heuristic that
    {!Admission} consumes. *)

type t = private {
  id : int;  (** job id, unique within a trace *)
  label : string;  (** human-readable: e.g. ["shuffle:3x2"] *)
  deadline : float;  (** the collective deadline: max member deadline *)
  flows : Dcn_flow.Flow.t list;  (** members, ascending id, non-empty *)
}

val make : id:int -> ?label:string -> flows:Dcn_flow.Flow.t list -> unit -> t
(** Group [flows] into one coflow; the collective deadline is the
    latest member deadline.  @raise Invalid_argument on an empty member
    list or duplicate member ids. *)

val release : t -> float
(** Earliest member release. *)

val volume : t -> float
(** Total member volume. *)

val member_ids : t -> int list
(** Member flow ids, ascending. *)

val slack : t -> at:float -> float
(** [deadline - at] — how much collective headroom is left. *)

val members : t list -> (int * int list) list
(** The membership table [(coflow id, member flow ids)] — the shape
    {!Dcn_check.Certify.coflow_consistency} and the [--coflows] wire
    format consume. *)

val flatten : t list -> Dcn_flow.Flow.t list
(** Every member flow of every coflow, ascending id.
    @raise Invalid_argument if two coflows share a member id. *)

val sigma_order : t list -> t list
(** DCoflow's admission order: ascending collective deadline, ties by
    total volume (smaller first — cheapest to fit), then id.  A stable
    pure function of the list contents. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Dcn_engine.Json.t

val members_to_json : t list -> Dcn_engine.Json.t
(** [{"coflows":[{"id":1,"flows":[...]},...]}] — the membership file
    [dcn certify --coflows] reads. *)

val members_of_json :
  Dcn_engine.Json.t -> ((int * int list) list, string) result
(** Total parser of the {!members_to_json} shape (bare list of
    [{"id","flows"}] objects also accepted). *)

val shuffle_trace :
  ?volume:float ->
  ?mean_span:float ->
  rng:Dcn_util.Prng.t ->
  graph:Dcn_topology.Graph.t ->
  jobs:int ->
  horizon:float * float ->
  unit ->
  t list
(** A shuffle-heavy coflow trace: [jobs] staggered jobs over the
    horizon, each a MapReduce shuffle (2–3 mappers × 2 reducers, ~2/3
    of jobs) or a partition–aggregate incast (2–3 sources), released
    uniformly over the horizon with a span of roughly [mean_span]
    (default 4) clipped to the horizon.  Flow ids are globally unique;
    job [j] draws from its own pre-split PRNG stream, so the trace is a
    pure function of the [rng] state and [jobs] at every later [--jobs]
    level.  @raise Invalid_argument if [jobs < 1], the horizon is
    empty, or the graph has fewer than 5 hosts. *)
