module Prng = Dcn_util.Prng
module Json = Dcn_engine.Json
module Deadline = Dcn_engine.Deadline
module Pool = Dcn_engine.Pool
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution
module Solver_api = Dcn_core.Solver_api
module Solvers = Dcn_core.Solvers

type variant = Baseline | Energy_aware

let variant_name = function
  | Baseline -> "sigma-greedy"
  | Energy_aware -> "sigma-energy"

let variant_of_string = function
  | "sigma-greedy" | "baseline" -> Ok Baseline
  | "sigma-energy" | "energy" -> Ok Energy_aware
  | s ->
      Error
        (Printf.sprintf
           "unknown admission variant %S (expected sigma-greedy or \
            sigma-energy)" s)

let solver_of_variant variant =
  let name =
    match variant with
    | Baseline -> "greedy-ear"
    | Energy_aware -> "random-schedule"
  in
  match Solvers.find name with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Admission: solver %S not registered" name)

type decision = {
  coflow : int;
  label : string;
  admitted : bool;
  reason : string;
  slack : float;
}

type t = {
  variant : string;
  solver : string;
  order : int list;
  decisions : decision list;
  admitted : Coflow.t list;
  rejected : (Coflow.t * string) list;
  solution : Solution.t option;
  energy : float;
  completion_rate : float;
}

let run ?(seed = 0) ?pool ?(deadline = Deadline.never) ~variant ~graph ~power
    coflows =
  ignore (Coflow.flatten coflows);
  let (module Solver : Solver_api.S) = solver_of_variant variant in
  let sigma = Coflow.sigma_order coflows in
  (* One PRNG stream per position in the sigma order: decision [i]'s
     randomness is a pure function of (seed, i), independent of how many
     draws earlier solves consumed. *)
  let streams =
    let root = Prng.create seed in
    Array.init (List.length sigma) (fun _ -> Prng.split root)
  in
  let admitted = ref [] (* reversed sigma order *) in
  let rejected = ref [] in
  let decisions = ref [] in
  let solution = ref None in
  List.iteri
    (fun i (c : Coflow.t) ->
      let candidate = List.rev (c :: !admitted) in
      let verdict =
        match
          Instance.make_result ~graph ~power ~flows:(Coflow.flatten candidate)
        with
        | Error e -> Error (Instance.error_to_string e)
        | Ok instance -> (
            let workspace =
              Solver_api.workspace ?pool ~rng:streams.(i) ()
            in
            match Solver.solve ~instance ~workspace ~deadline () with
            | sol when sol.Solution.feasible -> Ok sol
            | _ -> Error "no capacity-feasible schedule for the group"
            | exception Invalid_argument msg -> Error msg)
      in
      let slack = Coflow.slack c ~at:(Coflow.release c) in
      match verdict with
      | Ok sol ->
          admitted := c :: !admitted;
          solution := Some sol;
          decisions :=
            { coflow = c.Coflow.id; label = c.Coflow.label; admitted = true;
              reason = ""; slack }
            :: !decisions
      | Error reason ->
          rejected := (c, reason) :: !rejected;
          decisions :=
            { coflow = c.Coflow.id; label = c.Coflow.label; admitted = false;
              reason; slack }
            :: !decisions)
    sigma;
  let admitted = List.rev !admitted in
  let total = List.length sigma in
  {
    variant = variant_name variant;
    solver = Solver.name;
    order = List.map (fun (c : Coflow.t) -> c.Coflow.id) sigma;
    decisions = List.rev !decisions;
    admitted;
    rejected = List.rev !rejected;
    solution = !solution;
    energy =
      (match !solution with Some s -> s.Solution.energy | None -> 0.);
    completion_rate =
      (if total = 0 then 1.
       else float_of_int (List.length admitted) /. float_of_int total);
  }

let decision_to_json d =
  Json.Obj
    [
      ("coflow", Json.Int d.coflow);
      ("label", Json.Str d.label);
      ("admitted", Json.Bool d.admitted);
      ("reason", Json.Str d.reason);
      ("slack", Json.float d.slack);
    ]

let to_json t =
  Json.Obj
    [
      ("variant", Json.Str t.variant);
      ("solver", Json.Str t.solver);
      ("coflows", Json.Int (List.length t.order));
      ("order", Json.List (List.map (fun id -> Json.Int id) t.order));
      ("decisions", Json.List (List.map decision_to_json t.decisions));
      ( "admitted",
        Json.List
          (List.map (fun (c : Coflow.t) -> Json.Int c.Coflow.id) t.admitted) );
      ( "rejected",
        Json.List
          (List.map
             (fun ((c : Coflow.t), reason) ->
               Json.Obj
                 [ ("coflow", Json.Int c.Coflow.id); ("reason", Json.Str reason) ])
             t.rejected) );
      ("completion_rate", Json.float t.completion_rate);
      ("energy", Json.float t.energy);
      ("feasible", Json.Bool (match t.solution with
         | Some s -> s.Solution.feasible
         | None -> true));
    ]

let pareto_json results =
  Json.List
    (List.map
       (fun t ->
         Json.Obj
           [
             ("variant", Json.Str t.variant);
             ("solver", Json.Str t.solver);
             ("completion_rate", Json.float t.completion_rate);
             ("energy", Json.float t.energy);
             ("admitted", Json.Int (List.length t.admitted));
           ])
       results)
