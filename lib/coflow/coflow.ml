module Prng = Dcn_util.Prng
module Json = Dcn_engine.Json
module Flow = Dcn_flow.Flow
module Workload = Dcn_flow.Workload
module Graph = Dcn_topology.Graph

type t = {
  id : int;
  label : string;
  deadline : float;
  flows : Flow.t list;
}

let make ~id ?(label = "coflow") ~flows () =
  if flows = [] then invalid_arg "Coflow.make: empty member list";
  let flows =
    List.sort (fun (a : Flow.t) (b : Flow.t) -> compare a.Flow.id b.Flow.id) flows
  in
  let rec dup = function
    | (a : Flow.t) :: (b :: _ as rest) ->
        if a.Flow.id = b.Flow.id then
          invalid_arg
            (Printf.sprintf "Coflow.make: duplicate member flow id %d" a.Flow.id)
        else dup rest
    | _ -> ()
  in
  dup flows;
  let deadline =
    List.fold_left (fun acc (f : Flow.t) -> Float.max acc f.Flow.deadline)
      neg_infinity flows
  in
  { id; label; deadline; flows }

let release t =
  List.fold_left (fun acc (f : Flow.t) -> Float.min acc f.Flow.release) infinity
    t.flows

let volume t =
  List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.volume) 0. t.flows

let member_ids t = List.map (fun (f : Flow.t) -> f.Flow.id) t.flows

let slack t ~at = t.deadline -. at

let members coflows = List.map (fun c -> (c.id, member_ids c)) coflows

let flatten coflows =
  let flows = List.concat_map (fun c -> c.flows) coflows in
  let flows =
    List.sort (fun (a : Flow.t) (b : Flow.t) -> compare a.Flow.id b.Flow.id) flows
  in
  let rec dup = function
    | (a : Flow.t) :: (b :: _ as rest) ->
        if a.Flow.id = b.Flow.id then
          invalid_arg
            (Printf.sprintf "Coflow.flatten: flow id %d belongs to two coflows"
               a.Flow.id)
        else dup rest
    | _ -> ()
  in
  dup flows;
  flows

(* DCoflow's sigma: earliest collective deadline first; among equals the
   lighter coflow is cheaper to fit, so it goes first; id breaks the
   remaining ties to keep the order a pure function of the contents. *)
let sigma_order coflows =
  List.stable_sort
    (fun a b ->
      let c = Float.compare a.deadline b.deadline in
      if c <> 0 then c
      else
        let c = Float.compare (volume a) (volume b) in
        if c <> 0 then c else compare a.id b.id)
    coflows

let pp ppf t =
  Format.fprintf ppf "coflow %d (%s): %d flows, volume %g, deadline %g" t.id
    t.label (List.length t.flows) (volume t) t.deadline

let to_json t =
  Json.Obj
    [
      ("id", Json.Int t.id);
      ("label", Json.Str t.label);
      ("deadline", Json.float t.deadline);
      ("release", Json.float (release t));
      ("volume", Json.float (volume t));
      ("flows", Json.List (List.map (fun id -> Json.Int id) (member_ids t)));
    ]

let members_to_json coflows =
  Json.Obj
    [
      ( "coflows",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("id", Json.Int c.id);
                   ( "flows",
                     Json.List
                       (List.map (fun id -> Json.Int id) (member_ids c)) );
                 ])
             coflows) );
    ]

let members_of_json json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let entries =
    match json with
    | Json.List entries -> Ok entries
    | Json.Obj _ as obj -> (
        match Json.member "coflows" obj with
        | Some (Json.List entries) -> Ok entries
        | Some _ -> err "coflows: \"coflows\" must be a list"
        | None -> err "coflows: missing \"coflows\" field")
    | _ -> err "coflows: expected an object or a list"
  in
  let* entries = entries in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest ->
        let* id =
          match Json.member "id" entry with
          | Some (Json.Int id) -> Ok id
          | _ -> err "coflows: entry missing integer \"id\""
        in
        let* flows =
          match Json.member "flows" entry with
          | Some (Json.List flows) ->
              List.fold_left
                (fun acc f ->
                  let* acc = acc in
                  match f with
                  | Json.Int f -> Ok (f :: acc)
                  | _ -> err "coflows: coflow %d has a non-integer flow id" id)
                (Ok []) flows
              |> Result.map List.rev
          | _ -> err "coflows: coflow %d missing \"flows\" list" id
        in
        parse ((id, flows) :: acc) rest
  in
  parse [] entries

let shuffle_trace ?(volume = 10.) ?(mean_span = 4.) ~rng ~graph ~jobs
    ~horizon:(t0, t1) () =
  if jobs < 1 then invalid_arg "Coflow.shuffle_trace: jobs must be >= 1";
  if t1 <= t0 then invalid_arg "Coflow.shuffle_trace: empty horizon";
  if Array.length (Graph.hosts graph) < 5 then
    invalid_arg "Coflow.shuffle_trace: graph needs at least 5 hosts";
  (* One pre-split stream per job: job j's draws depend only on the
     incoming rng state and j, never on how many draws earlier jobs
     made, so the trace survives generator tweaks and --jobs levels. *)
  let streams = Array.init jobs (fun _ -> Prng.split rng) in
  let next_flow_id = ref 0 in
  List.init jobs (fun job ->
      let rng = streams.(job) in
      let release = Prng.uniform rng ~lo:t0 ~hi:t1 in
      let span = mean_span *. (0.5 +. Prng.float rng 1.0) in
      let deadline = Float.min t1 (release +. Float.max 0.5 span) in
      let release = Float.min release (deadline -. 0.25 *. Float.max 0.5 span) in
      let release = Float.max t0 release in
      let horizon = (release, deadline) in
      let first_flow_id = !next_flow_id in
      let label, (_, flows) =
        if Prng.int rng 3 < 2 then
          let mappers = 2 + Prng.int rng 2 and reducers = 2 in
          ( Printf.sprintf "shuffle:%dx%d" mappers reducers,
            Workload.shuffle_grouped ~volume ~horizon ~job ~first_flow_id ~rng
              ~graph ~mappers ~reducers () )
        else
          let sources = 2 + Prng.int rng 2 in
          ( Printf.sprintf "incast:%d" sources,
            Workload.incast_grouped ~volume ~horizon ~job ~first_flow_id ~rng
              ~graph ~sources () )
      in
      next_flow_id := first_flow_id + List.length flows;
      make ~id:job ~label ~flows ())
