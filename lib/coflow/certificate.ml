module Json = Dcn_engine.Json
module Certify = Dcn_check.Certify
module Instance = Dcn_core.Instance
module Solution = Dcn_core.Solution

type report = {
  violations : Certify.violation list;
  per_coflow : (int * Certify.violation list) list;
  ok : bool;
}

(* Which member flows a violation speaks about — the attribution key
   mapping member clauses back to their coflow. *)
let flows_of = function
  | Certify.Unknown_flow { flow }
  | Certify.Missing_flow { flow }
  | Certify.Bad_path { flow }
  | Certify.Slot_outside_window { flow; _ }
  | Certify.Volume_mismatch { flow; _ } ->
      [ flow ]
  | Certify.Link_conflict { flows = a, b; _ } -> [ a; b ]
  | Certify.Partial_coflow _ | Certify.Capacity_exceeded _
  | Certify.Horizon_mismatch _ | Certify.Energy_mismatch _
  | Certify.Lb_violated _ ->
      []

let attribute coflows violations =
  let owner = Hashtbl.create 64 in
  List.iter
    (fun (c : Coflow.t) ->
      List.iter (fun f -> Hashtbl.replace owner f c.Coflow.id)
        (Coflow.member_ids c))
    coflows;
  let by_coflow = Hashtbl.create 16 in
  let record id v =
    let prev = Option.value (Hashtbl.find_opt by_coflow id) ~default:[] in
    Hashtbl.replace by_coflow id (v :: prev)
  in
  List.iter
    (fun v ->
      match v with
      | Certify.Partial_coflow { coflow; _ } -> record coflow v
      | _ ->
          List.iter
            (fun f ->
              match Hashtbl.find_opt owner f with
              | Some id -> record id v
              | None -> ())
            (flows_of v))
    violations;
  List.filter_map
    (fun (c : Coflow.t) ->
      match Hashtbl.find_opt by_coflow c.Coflow.id with
      | Some vs -> Some (c.Coflow.id, List.rev vs)
      | None -> None)
    coflows

let default_config = { Certify.default with Certify.partial = true }

let conjunction ?(config = default_config) ?reported_energy ?lower_bound
    ~coflows instance schedule =
  let member_clauses =
    Certify.schedule ~config ?reported_energy ?lower_bound instance schedule
  in
  let admission_clauses =
    Certify.coflow_consistency ~members:(Coflow.members coflows) schedule
  in
  let violations = member_clauses @ admission_clauses in
  {
    violations;
    per_coflow = attribute coflows violations;
    ok = violations = [];
  }

let admission_result ?config ~coflows ~graph ~power (adm : Admission.t) =
  match adm.Admission.solution with
  | None -> { violations = []; per_coflow = []; ok = true }
  | Some sol ->
      (* The instance is exactly the admitted set, so the strict default
         config applies: an unplanned admitted member is Missing_flow, a
         planned rejected member is Unknown_flow — the admission
         bookkeeping is checked by construction. *)
      let instance =
        Instance.make ~graph ~power
          ~flows:(Coflow.flatten adm.Admission.admitted)
      in
      let config = Option.value config ~default:Certify.default in
      conjunction ~config ~reported_energy:sol.Solution.energy ~coflows
        instance sol.Solution.schedule

let to_json t =
  Json.Obj
    [
      ("ok", Json.Bool t.ok);
      ( "violations",
        Json.List (List.map Certify.violation_to_json t.violations) );
      ( "per_coflow",
        Json.List
          (List.map
             (fun (id, vs) ->
               Json.Obj
                 [
                   ("coflow", Json.Int id);
                   ( "violations",
                     Json.List (List.map Certify.violation_to_json vs) );
                 ])
             t.per_coflow) );
    ]
