(* dcn — command-line front end.

   Subcommands map to the experiments of DESIGN.md: `fig2` regenerates
   the paper's Figure 2 series, `gadgets` runs the Theorem 2/3
   reductions, `ablation` the extra studies, `small-exact` the
   approximation-vs-optimum comparison, `example1` the paper's worked
   example, and `solve` runs the algorithms on a configurable
   topology/workload. *)

open Cmdliner

let parse_topology s =
  match String.split_on_char ':' s with
  | [ "fat-tree"; k ] -> Ok (Dcn_topology.Builders.fat_tree (int_of_string k))
  | [ "bcube"; n; l ] ->
    Ok (Dcn_topology.Builders.bcube ~n:(int_of_string n) ~level:(int_of_string l))
  | [ "dcell"; n; l ] ->
    Ok (Dcn_topology.Builders.dcell ~n:(int_of_string n) ~level:(int_of_string l))
  | [ "leaf-spine"; s; l; h ] ->
    Ok
      (Dcn_topology.Builders.leaf_spine ~spines:(int_of_string s)
         ~leaves:(int_of_string l) ~hosts_per_leaf:(int_of_string h))
  | [ "line"; n ] -> Ok (Dcn_topology.Builders.line (int_of_string n))
  | [ "parallel"; k ] -> Ok (Dcn_topology.Builders.parallel ~links:(int_of_string k))
  | [ "star"; n ] -> Ok (Dcn_topology.Builders.star ~leaves:(int_of_string n))
  | _ ->
    Error
      (`Msg
        "expected fat-tree:K | bcube:N:L | dcell:N:L | leaf-spine:S:L:H | line:N | parallel:K | star:N")

let topology_conv =
  Arg.conv
    ( (fun s -> try parse_topology s with Failure _ -> Error (`Msg "bad topology spec")),
      fun ppf g -> Dcn_topology.Graph.pp ppf g )

let alpha_t =
  Arg.(value & opt float 2. & info [ "alpha" ] ~doc:"Power exponent $(docv) (> 1)." ~docv:"A")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_t =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ]
        ~doc:
          "Parallelism (worker domains + the caller). 0 reads the DCN_JOBS \
           environment variable (a positive integer, or 0 for one per core) and \
           falls back to 1. Results are bit-identical for every value.")

let policy_conv =
  Arg.conv
    ( (fun s ->
        match Dcn_resilience.Repair.policy_of_string s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
              "expected drop-latest-deadline | drop-largest-residual | \
               reject-new")),
      fun ppf p ->
        Format.pp_print_string ppf (Dcn_resilience.Repair.policy_to_string p) )

let policy_t =
  Arg.(
    value
    & opt policy_conv Dcn_resilience.Repair.Drop_latest_deadline
    & info [ "policy" ]
        ~doc:
          "Admission policy under degradation: $(b,drop-latest-deadline), \
           $(b,drop-largest-residual) or $(b,reject-new)."
        ~docv:"POLICY")

(* Every subcommand resolves --jobs the same way and tears the pool down
   on the way out.  Returns a [result] so commands plug into
   [Term.term_result] and bad arguments exit through cmdliner's standard
   error path (usage + status 124) instead of a raw [exit]. *)
let with_jobs jobs f =
  if jobs < 0 then Error (`Msg (Printf.sprintf "--jobs must be >= 0 (got %d)" jobs))
  else
    let jobs = if jobs = 0 then Dcn_engine.Pool.default_jobs () else jobs in
    Ok (Dcn_engine.Pool.with_pool ~jobs f)

(* Every command body runs under this guard so predictable failures —
   unreadable or malformed files, invalid model parameters, workloads a
   topology cannot host — exit through cmdliner's error path (message +
   status 124) instead of escaping as a raw exception and a backtrace.
   Genuine bugs still escape: only the typed, user-input-shaped
   exceptions are translated. *)
let guard f =
  match f () with
  | v -> v
  | exception Sys_error m -> Error (`Msg m)
  | exception Failure m -> Error (`Msg m)
  | exception Invalid_argument m -> Error (`Msg m)
  | exception Dcn_core.Instance.Invalid e ->
    Error (`Msg ("invalid instance: " ^ Dcn_core.Instance.error_to_string e))

module Json = Dcn_engine.Json

(* ----------------------------- fig2 ------------------------------- *)

let fig2_cmd =
  let quick_t =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small network (k=4) and fewer seeds.")
  in
  let seeds_t =
    Arg.(value & opt int 0 & info [ "seeds" ] ~doc:"Number of seeds (0 = preset default).")
  in
  let counts_t =
    Arg.(
      value
      & opt (list int) []
      & info [ "counts" ] ~doc:"Comma-separated flow counts (empty = preset).")
  in
  let csv_t =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write the series as CSV to $(docv)." ~docv:"FILE")
  in
  let run alpha quick seeds counts csv trace report jobs =
    guard @@ fun () ->
    let params =
      if quick then Dcn_experiments.Fig2.quick_params ~alpha
      else Dcn_experiments.Fig2.default_params ~alpha
    in
    let params =
      { params with
        Dcn_experiments.Fig2.seeds =
          (if seeds = 0 then params.Dcn_experiments.Fig2.seeds
           else List.init seeds (fun i -> 1000 + i));
        flow_counts = (if counts = [] then params.Dcn_experiments.Fig2.flow_counts else counts);
      }
    in
    with_jobs jobs @@ fun pool ->
    Observe.run ~command:"fig2" ~trace ~report @@ fun () ->
    let res =
      Dcn_experiments.Fig2.run
        ~progress:(fun msg -> Printf.eprintf "[fig2] %s\n%!" msg)
        ~pool params
    in
    print_endline (Dcn_experiments.Fig2.render res);
    (match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Dcn_experiments.Fig2.to_csv res);
      close_out oc;
      Printf.eprintf "wrote %s\n%!" path);
    [ ("fig2", Dcn_experiments.Fig2.to_json res) ]
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Regenerate Figure 2 of the paper (E1/E2).")
    Term.(
      term_result
        (const run $ alpha_t $ quick_t $ seeds_t $ counts_t $ csv_t
       $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* ---------------------------- gadgets ----------------------------- *)

let gadgets_cmd =
  let run alpha seed trace report =
    guard @@ fun () ->
    Result.ok
    @@ Observe.run ~command:"gadgets" ~trace ~report
    @@ fun () ->
    let tp = Dcn_experiments.Gadget_runs.three_partition ~seed ~alpha () in
    print_endline (Dcn_experiments.Gadget_runs.render_three_partition tp);
    let p = Dcn_experiments.Gadget_runs.partition ~alpha () in
    print_endline (Dcn_experiments.Gadget_runs.render_partition p);
    [
      ( "gadgets",
        Json.Obj
          [
            ("three_partition", Dcn_experiments.Gadget_runs.three_partition_to_json tp);
            ("partition", Dcn_experiments.Gadget_runs.partition_to_json p);
          ] );
    ]
  in
  Cmd.v
    (Cmd.info "gadgets" ~doc:"Run the Theorem 2/3 hardness gadgets (E4/E5).")
    Term.(term_result (const run $ alpha_t $ seed_t $ Observe.trace_t $ Observe.report_t))

(* ---------------------------- ablation ---------------------------- *)

let ablation_cmd =
  let run alpha trace report jobs =
    guard @@ fun () ->
    with_jobs jobs @@ fun pool ->
    Observe.run ~command:"ablation" ~trace ~report @@ fun () ->
    let module A = Dcn_experiments.Ablation in
    let show render rows =
      print_endline (render rows);
      print_newline ();
      rows
    in
    let pd = show A.render_power_down (A.power_down ~alpha ~pool ~sigmas:[ 0.; 10.; 50.; 200. ] ()) in
    let cap = show A.render_capacity (A.capacity_stress ~alpha ~pool ~caps:[ infinity; 10.; 6.; 4. ] ()) in
    let refi = show A.render_refinement (A.refinement ~alpha ~pool ~ns:[ 10; 20; 40 ] ()) in
    let rout = show A.render_routing (A.routing_comparison ~alpha ~pool ~ns:[ 10; 20; 40 ] ()) in
    let lb = show A.render_lb (A.lb_tightness ~alpha ~pool ~ns:[ 10; 20; 40 ] ()) in
    let spl = show A.render_splitting (A.splitting ~alpha ~pool ~parts:[ 1; 2; 4; 8 ] ()) in
    let rl = show A.render_rate_levels (A.rate_levels ~alpha ~pool ~counts:[ 2; 4; 8; 16 ] ()) in
    let adm = show A.render_admission (A.admission ~alpha ~pool ~loads:[ 0.5; 1.; 2.; 4. ] ()) in
    let fl = show A.render_failures (A.failures ~alpha ~pool ~counts:[ 0; 4; 8; 12 ] ()) in
    [
      ( "ablation",
        Json.Obj
          [
            ("power_down", A.power_down_to_json pd);
            ("capacity", A.capacity_to_json cap);
            ("refinement", A.refinement_to_json refi);
            ("routing", A.routing_to_json rout);
            ("lb_tightness", A.lb_to_json lb);
            ("splitting", A.splitting_to_json spl);
            ("rate_levels", A.rate_levels_to_json rl);
            ("admission", A.admission_to_json adm);
            ("failures", A.failures_to_json fl);
          ] );
    ]
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run all the E7 ablations (power-down, capacity, refinement, routing, LB tightness, splitting, discrete rates, admission, failures).")
    Term.(term_result (const run $ alpha_t $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* --------------------------- small-exact -------------------------- *)

let small_exact_cmd =
  let run alpha trace report =
    guard @@ fun () ->
    Result.ok
    @@ Observe.run ~command:"small-exact" ~trace ~report
    @@ fun () ->
    let rows =
      Dcn_experiments.Small_exact.run ~alpha ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ()
    in
    print_endline (Dcn_experiments.Small_exact.render rows);
    [ ("small_exact", Dcn_experiments.Small_exact.to_json rows) ]
  in
  Cmd.v
    (Cmd.info "small-exact" ~doc:"Compare Random-Schedule with the exact optimum (E8).")
    Term.(term_result (const run $ alpha_t $ Observe.trace_t $ Observe.report_t))

(* ---------------------------- example1 ---------------------------- *)

let example1_cmd =
  let run trace report =
    guard @@ fun () ->
    Result.ok
    @@ Observe.run ~command:"example1" ~trace ~report
    @@ fun () ->
    let graph = Dcn_topology.Builders.line 3 in
    let power = Dcn_power.Model.quadratic in
    let f1 = Dcn_flow.Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
    let f2 = Dcn_flow.Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
    let inst = Dcn_core.Instance.make ~graph ~power ~flows:[ f1; f2 ] in
    let res = Dcn_core.Baselines.sp_mcf inst in
    let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
    Printf.printf "Example 1 (Figure 1): line A-B-C, f(x) = x^2\n";
    Printf.printf "  flow 1: A->C, w=6, span [2,4]   flow 2: A->B, w=8, span [1,3]\n";
    Printf.printf "  computed rates: s1 = %.6f, s2 = %.6f\n"
      (Option.value ~default:nan (Dcn_core.Solution.find_rate res 1))
      (Option.value ~default:nan (Dcn_core.Solution.find_rate res 2));
    Printf.printf "  paper's optimum: s1 = %.6f, s2 = %.6f (sqrt 2 * s1 = s2 = (8+6*sqrt 2)/3)\n"
      (s2 /. sqrt 2.) s2;
    Printf.printf "  energy: %.6f\n" res.Dcn_core.Solution.energy;
    [ ("example1", Dcn_core.Serialize.solution_to_json res) ]
  in
  Cmd.v
    (Cmd.info "example1" ~doc:"Run the paper's worked Example 1 (E3).")
    Term.(term_result (const run $ Observe.trace_t $ Observe.report_t))

(* -------------------------- generate / solve ----------------------- *)

let topo_t =
  Arg.(
    value
    & opt topology_conv (Dcn_topology.Builders.fat_tree 4)
    & info [ "topology" ] ~doc:"Network: fat-tree:K, bcube:N:L, leaf-spine:S:L:H, ...")

let flows_t = Arg.(value & opt int 20 & info [ "flows" ] ~doc:"Number of flows.")

let sigma_t = Arg.(value & opt float 0. & info [ "sigma" ] ~doc:"Idle power per link.")

let pattern_t =
  Arg.(
    value
    & opt
        (enum
           [
             ("random", `Random);
             ("incast", `Incast);
             ("shuffle", `Shuffle);
             ("stride", `Stride);
             ("trace", `Trace);
           ])
        `Random
    & info [ "pattern" ] ~doc:"Workload pattern: random, incast, shuffle, stride, trace.")

let build_instance graph n alpha sigma pattern seed =
  let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha () in
  let rng = Dcn_util.Prng.create seed in
  let flows =
    match pattern with
    | `Random -> Dcn_flow.Workload.paper_random ~rng ~graph ~n ()
    | `Incast -> Dcn_flow.Workload.incast ~rng ~graph ~sources:n ~horizon:(0., 10.) ()
    | `Shuffle ->
      Dcn_flow.Workload.shuffle ~rng ~graph ~mappers:(max 1 (n / 4)) ~reducers:4
        ~horizon:(0., 10.) ()
    | `Stride -> Dcn_flow.Workload.stride ~graph ~stride:1 ~horizon:(0., 10.) ()
    | `Trace -> Dcn_flow.Workload.trace ~rng ~graph ~horizon:(0., 50.) ()
  in
  Dcn_core.Instance.make ~graph ~power ~flows

let generate_cmd =
  let out_t =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Output file (default stdout).")
  in
  let run graph n alpha sigma pattern seed out trace report =
    guard @@ fun () ->
    Result.ok
    @@ Observe.run ~command:"generate" ~trace ~report
    @@ fun () ->
    let inst = build_instance graph n alpha sigma pattern seed in
    let text = Dcn_core.Serialize.instance_to_string inst in
    (match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "wrote %s (%a)@." path Dcn_core.Instance.pp inst);
    [
      ( "instance",
        Json.Obj
          [
            ("nodes", Json.Int (Dcn_topology.Graph.num_nodes graph));
            ("links", Json.Int (Dcn_topology.Graph.num_links graph));
            ("flows", Json.Int (Dcn_core.Instance.num_flows inst));
          ] );
    ]
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an instance file (see `solve --instance`).")
    Term.(
      term_result
        (const run $ topo_t $ flows_t $ alpha_t $ sigma_t $ pattern_t $ seed_t
       $ out_t $ Observe.trace_t $ Observe.report_t))

let solve_cmd =
  let instance_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "instance" ] ~doc:"Read the instance from a file instead of generating one.")
  in
  let gantt_t =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print ASCII Gantt charts of the RS schedule.")
  in
  let run graph n alpha sigma pattern seed instance_file gantt trace report jobs =
    guard @@ fun () ->
    with_jobs jobs @@ fun pool ->
    Observe.run ~command:"solve" ~trace ~report @@ fun () ->
    let rng = Dcn_util.Prng.create seed in
    let inst =
      match instance_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Dcn_core.Serialize.instance_of_string text
      | None -> build_instance graph n alpha sigma pattern seed
    in
    Format.printf "%a@." Dcn_core.Instance.pp inst;
    let sp = Dcn_core.Baselines.sp_mcf inst in
    Printf.printf "SP+MCF : energy %.4f (placement %s)\n" sp.Dcn_core.Solution.energy
      (if Dcn_core.Solution.placement_complete sp then "complete" else "partial");
    let rs =
      Dcn_core.Random_schedule.solve ~instance:inst
        ~workspace:(Dcn_core.Solver_api.workspace ~pool ~rng ())
        ~deadline:Dcn_engine.Deadline.never ()
    in
    Printf.printf "RS     : energy %.4f (%s, %d attempt(s))\n"
      rs.Dcn_core.Solution.energy
      (if rs.Dcn_core.Solution.feasible then "feasible" else "INFEASIBLE")
      (Dcn_core.Solution.attempts_used rs);
    let lb =
      Dcn_core.Lower_bound.of_relaxation
        (Option.get (Dcn_core.Solution.relaxation rs))
    in
    Printf.printf "LB     : %.4f  =>  RS/LB %.3f, SP+MCF/LB %.3f\n"
      lb.Dcn_core.Lower_bound.value
      (rs.Dcn_core.Solution.energy /. lb.Dcn_core.Lower_bound.value)
      (sp.Dcn_core.Solution.energy /. lb.Dcn_core.Lower_bound.value);
    let sim = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
    Format.printf "sim    : %a@." Dcn_sim.Fluid.pp_report sim;
    if gantt then begin
      print_newline ();
      print_string (Dcn_sched.Gantt.render rs.Dcn_core.Solution.schedule);
      print_newline ();
      print_string (Dcn_sched.Gantt.render_flows rs.Dcn_core.Solution.schedule)
    end;
    [
      ( "solutions",
        Json.List
          [
            Dcn_core.Serialize.solution_to_json sp;
            Dcn_core.Serialize.solution_to_json rs;
          ] );
      ("lower_bound", Json.float lb.Dcn_core.Lower_bound.value);
      ( "sim",
        Json.Obj
          [
            ("energy", Json.float sim.Dcn_sim.Fluid.energy);
            ("all_deadlines_met", Json.Bool sim.Dcn_sim.Fluid.all_deadlines_met);
            ("capacity_respected", Json.Bool sim.Dcn_sim.Fluid.capacity_respected);
          ] );
    ]
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a configurable instance with both algorithms.")
    Term.(
      term_result
        (const run $ topo_t $ flows_t $ alpha_t $ sigma_t $ pattern_t $ seed_t
       $ instance_t $ gantt_t $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* ------------------------- trace analytics ------------------------ *)

(* `dcn trace {summary,export,diff}`: consume --trace files via
   Dcn_engine.Profile. *)

let load_records path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Dcn_engine.Trace.records_of_json (Json.of_string text)

(* Cmdliner's `file` converter already rejects missing paths; this
   catches unparsable ones. *)
let with_records path f =
  match load_records path with
  | records -> f records
  | exception Failure m -> Error (`Msg (Printf.sprintf "%s: %s" path m))

let trace_file_t index name =
  Arg.(
    required
    & pos index (some file) None
    & info [] ~docv:name ~doc:"A trace file written by $(b,--trace).")

let trace_summary_cmd =
  let top_t =
    Arg.(
      value
      & opt int 0
      & info [ "top" ] ~doc:"Show only the top $(docv) spans by self time (0 = all)."
          ~docv:"N")
  in
  let format_t =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) (human-readable) or $(b,json) (the \
             same profile, machine-readable — the shape `dcn stats` shares).")
  in
  let run file top format =
    guard @@ fun () ->
    with_records file @@ fun records ->
    let profile = Dcn_engine.Profile.of_records records in
    (match format with
    | `Table -> print_string (Dcn_engine.Profile.summary ~top profile)
    | `Json ->
      print_endline
        (Json.to_string ~pretty:true (Dcn_engine.Profile.to_json ~top profile)));
    Ok ()
  in
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Profile a trace: per-span call counts, total/self time, latency \
          quantiles, GC allocation, counters.")
    Term.(term_result (const run $ trace_file_t 0 "TRACE.json" $ top_t $ format_t))

let trace_export_cmd =
  let format_t =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome) ]) `Chrome
      & info [ "format" ] ~doc:"Output format; only $(b,chrome) (trace-event JSON, \
                                loadable in Perfetto) for now.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Write to $(docv) instead of stdout." ~docv:"FILE")
  in
  let run file `Chrome out =
    guard @@ fun () ->
    with_records file @@ fun records ->
    let text =
      Json.to_string ~pretty:true (Dcn_engine.Profile.to_chrome records)
    in
    (match out with
    | None -> print_string text
    | Some path -> Observe.write_file path text);
    Ok ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Convert a trace to a standard viewer format.")
    Term.(term_result (const run $ trace_file_t 0 "TRACE.json" $ format_t $ out_t))

let trace_diff_cmd =
  let tolerance_t =
    Arg.(
      value
      & opt float 0.25
      & info [ "tolerance" ]
          ~doc:
            "Relative self/total time growth above which a span counts as a \
             regression (exit is then non-zero)."
          ~docv:"FRAC")
  in
  let run a b tolerance =
    guard @@ fun () ->
    if tolerance < 0. then Error (`Msg "--tolerance must be >= 0")
    else
      with_records a @@ fun ra ->
      with_records b @@ fun rb ->
      let module P = Dcn_engine.Profile in
      let deltas = P.diff ~a:(P.of_records ra) ~b:(P.of_records rb) in
      print_string (P.render_diff ~tolerance deltas);
      match P.regressions ~tolerance deltas with
      | [] -> Ok ()
      | bad ->
        Error
          (`Msg
            (Printf.sprintf "%d span(s) regressed beyond %.0f%%: %s"
               (List.length bad)
               (100. *. tolerance)
               (String.concat ", " (List.map (fun (d : P.span_delta) -> d.P.d_name) bad))))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two traces span-by-span (A is the baseline); non-zero exit \
          when B regressed beyond --tolerance.")
    Term.(
      term_result
        (const run $ trace_file_t 0 "A.json" $ trace_file_t 1 "B.json" $ tolerance_t))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Analyse --trace files: profile summary, Chrome export, diff.")
    [ trace_summary_cmd; trace_export_cmd; trace_diff_cmd ]

(* ------------------------- certify / fuzz ------------------------- *)

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let certify_cmd =
  let instance_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "instance" ] ~doc:"The instance file the schedule solves." ~docv:"FILE")
  in
  let schedule_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ]
          ~doc:
            "Certify this schedule file against the instance.  Without it, run \
             the full differential oracle (every solver) on the instance."
          ~docv:"FILE")
  in
  let partial_t =
    Arg.(
      value & flag
      & info [ "partial" ] ~doc:"Allow instance flows without a plan (online admission).")
  in
  let exclusive_t =
    Arg.(
      value & flag
      & info [ "exclusive" ] ~doc:"Enforce virtual-circuit link exclusivity.")
  in
  let coflows_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "coflows" ]
          ~doc:
            "Membership file ({\"coflows\":[{\"id\":..,\"flows\":[..]},..]}); \
             the certificate then also requires all-or-nothing admission: a \
             schedule planning part of a coflow is a typed partial_coflow \
             violation.  Requires --schedule; combine with --partial when \
             the instance carries rejected coflows too."
          ~docv:"FILE")
  in
  let run instance_file schedule_file coflows_file partial exclusive seed trace
      report =
    guard @@ fun () ->
    let inst = Dcn_core.Serialize.instance_of_string (read_text instance_file) in
    let members =
      match coflows_file with
      | None -> None
      | Some path -> (
        match
          Dcn_coflow.Coflow.members_of_json (Json.of_string (read_text path))
        with
        | Ok members -> Some members
        | Error m -> failwith (Printf.sprintf "%s: %s" path m))
    in
    if members <> None && schedule_file = None then
      failwith "--coflows requires --schedule";
    let failed = ref "" in
    Observe.run ~command:"certify" ~trace ~report (fun () ->
        match schedule_file with
        | Some path ->
          let sched = Dcn_core.Serialize.schedule_of_string inst (read_text path) in
          let config = { Dcn_check.Certify.default with partial; exclusive } in
          let violations =
            Dcn_check.Certify.schedule ~config inst sched
            @
            match members with
            | None -> []
            | Some members ->
              Dcn_check.Certify.coflow_consistency ~members sched
          in
          if violations = [] then Printf.printf "certificate OK: %s\n" path
          else begin
            failed :=
              Printf.sprintf "%d violation(s)" (List.length violations);
            List.iter
              (fun v ->
                Format.printf "violation: %a@." Dcn_check.Certify.pp_violation v)
              violations
          end;
          [
            ( "certify",
              Json.Obj
                ([
                   ("instance", Json.Str instance_file);
                   ("schedule", Json.Str path);
                 ]
                @ (match coflows_file with
                  | None -> []
                  | Some f -> [ ("coflows", Json.Str f) ])
                @ [
                    ( "certificate",
                      Dcn_check.Certify.violations_to_json violations );
                  ]) );
          ]
        | None ->
          let label = Filename.basename instance_file in
          let oracle =
            Dcn_check.Oracle.run ~solver_seed:seed ~label inst
          in
          List.iter
            (fun (r : Dcn_check.Oracle.solver_result) ->
              Printf.printf "%-14s energy %10.4f  %s\n" r.Dcn_check.Oracle.solver
                r.Dcn_check.Oracle.energy
                (if r.Dcn_check.Oracle.violations = [] then "certified"
                 else
                   String.concat "; "
                     (List.map Dcn_check.Certify.kind r.Dcn_check.Oracle.violations)))
            oracle.Dcn_check.Oracle.results;
          Printf.printf "lower bound    %10.4f\n" oracle.Dcn_check.Oracle.lower_bound;
          List.iter
            (fun c ->
              Format.printf "cross: %a@." Dcn_check.Oracle.pp_cross c)
            oracle.Dcn_check.Oracle.cross;
          if not (Dcn_check.Oracle.ok oracle) then
            failed :=
              Printf.sprintf "kinds: %s"
                (String.concat ", " (Dcn_check.Oracle.violation_kinds oracle));
          [ ("certify", Dcn_check.Oracle.to_json oracle) ]);
    if !failed = "" then Ok ()
    else Error (`Msg (Printf.sprintf "certification failed (%s)" !failed))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Independently re-verify a schedule (paths, windows, volumes, \
          capacity, energy, lower bound) or differential-test every solver on \
          an instance; non-zero exit on any violation.")
    Term.(
      term_result
        (const run $ instance_t $ schedule_t $ coflows_t $ partial_t
       $ exclusive_t $ seed_t $ Observe.trace_t $ Observe.report_t))

let fuzz_cmd =
  let runs_t =
    Arg.(value & opt int 50 & info [ "runs" ] ~doc:"Number of random instances." ~docv:"N")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ]
          ~doc:
            "Directory for counterexample artifacts (instance, shrunk instance, \
             report) of every failing case."
          ~docv:"DIR")
  in
  let no_shrink_t =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Skip delta-debugging of failing cases.")
  in
  let ensure_dir path =
    if not (Sys.file_exists path) then Sys.mkdir path 0o755
  in
  let faults_t =
    Arg.(
      value
      & opt int 0
      & info [ "faults" ]
          ~doc:
            "Additionally replay $(docv) fault-injection scenarios (commit, \
             strike, repair, certify) from the same seed; uncertified repairs \
             fail the run.  See $(b,dcn resilience) for the dedicated command."
          ~docv:"N")
  in
  let coflows_t =
    Arg.(
      value
      & opt int 0
      & info [ "coflows" ]
          ~doc:
            "Additionally draw $(docv) seeded coflow workloads and cross-check \
             the all-or-nothing admission walk: both variants (sigma-greedy, \
             sigma-energy) run on each case and every admitted set must pass \
             the conjunction certificate — member clauses plus admission \
             consistency.  A partially planned coflow fails the run."
          ~docv:"N")
  in
  let run runs seed out no_shrink faults coflows trace report jobs =
    guard @@ fun () ->
    if runs < 1 then Error (`Msg "--runs must be >= 1")
    else if faults < 0 then Error (`Msg "--faults must be >= 0")
    else if coflows < 0 then Error (`Msg "--coflows must be >= 0")
    else
      Result.join
      @@ with_jobs jobs
      @@ fun pool ->
      let failures = ref 0 in
      let campaign_failures = ref 0 in
      let coflow_failures = ref 0 in
      Observe.run ~command:"fuzz" ~trace ~report (fun () ->
          let cases = Dcn_check.Gen.batch ~seed ~n:runs in
          let reports = Dcn_check.Oracle.run_batch ~pool cases in
          let shrunk = ref [] in
          Array.iteri
            (fun i oracle ->
              if not (Dcn_check.Oracle.ok oracle) then begin
                incr failures;
                let case = cases.(i) in
                let kinds = Dcn_check.Oracle.violation_kinds oracle in
                Printf.eprintf "[fuzz] case %d (%s) FAILED: %s\n%!" i
                  case.Dcn_check.Gen.label
                  (String.concat ", " kinds);
                let min_result =
                  if no_shrink then None
                  else
                    (* Shrink while the oracle still reports at least one
                       of the original violation kinds. *)
                    let pred inst =
                      let o =
                        Dcn_check.Oracle.run
                          ~solver_seed:case.Dcn_check.Gen.solver_seed
                          ~label:case.Dcn_check.Gen.label inst
                      in
                      List.exists
                        (fun k -> List.mem k (Dcn_check.Oracle.violation_kinds o))
                        kinds
                    in
                    Some
                      (Dcn_check.Shrink.minimize pred case.Dcn_check.Gen.instance)
                in
                (match out with
                | None -> ()
                | Some dir ->
                  ensure_dir dir;
                  let base = Filename.concat dir (Printf.sprintf "case-%03d" i) in
                  Observe.write_file (base ^ ".instance")
                    (Dcn_core.Serialize.instance_to_string
                       case.Dcn_check.Gen.instance);
                  (match min_result with
                  | Some m ->
                    Observe.write_file (base ^ ".min.instance")
                      (Dcn_core.Serialize.instance_to_string
                         m.Dcn_check.Shrink.instance)
                  | None -> ());
                  Observe.write_file (base ^ ".json")
                    (Json.to_string ~pretty:true
                       (Json.Obj
                          [
                            ("oracle", Dcn_check.Oracle.to_json oracle);
                            ( "shrink",
                              match min_result with
                              | None -> Json.Null
                              | Some m ->
                                Dcn_check.Shrink.steps_to_json
                                  m.Dcn_check.Shrink.steps );
                          ])));
                match min_result with
                | Some m ->
                  let flows, cables = Dcn_check.Shrink.size m.Dcn_check.Shrink.instance in
                  Printf.eprintf
                    "[fuzz]   shrunk to %d flow(s), %d cable(s) in %d step(s)\n%!"
                    flows cables
                    (List.length m.Dcn_check.Shrink.steps);
                  shrunk :=
                    (i, List.length m.Dcn_check.Shrink.steps, flows, cables)
                    :: !shrunk
                | None -> ()
              end)
            reports;
          Printf.printf "fuzz: %d/%d case(s) certified (seed %d)\n"
            (runs - !failures) runs seed;
          let resilience_section =
            if faults = 0 then []
            else begin
              let t =
                Dcn_resilience.Campaign.run ~pool
                  ~policy:Dcn_resilience.Repair.Drop_latest_deadline ~seed
                  ~n:faults ()
              in
              campaign_failures := t.Dcn_resilience.Campaign.uncertified;
              Printf.printf
                "fuzz: %d/%d fault repair(s) certified (%d repaired, %d \
                 degraded, %d irreparable)\n"
                (faults - t.Dcn_resilience.Campaign.uncertified)
                faults t.Dcn_resilience.Campaign.repaired
                t.Dcn_resilience.Campaign.degraded
                t.Dcn_resilience.Campaign.irreparable;
              [ ("resilience", Dcn_resilience.Campaign.to_json t) ]
            end
          in
          let coflow_section =
            if coflows = 0 then []
            else begin
              let cases = Dcn_check.Gen.coflow_batch ~seed ~n:coflows in
              let rows =
                Array.map
                  (fun (case : Dcn_check.Gen.coflow_case) ->
                    let cs =
                      List.map
                        (fun (job, flows) ->
                          Dcn_coflow.Coflow.make ~id:job ~flows ())
                        case.Dcn_check.Gen.jobs
                    in
                    let check variant =
                      let adm =
                        Dcn_coflow.Admission.run
                          ~seed:case.Dcn_check.Gen.solver_seed ~pool ~variant
                          ~graph:case.Dcn_check.Gen.graph
                          ~power:case.Dcn_check.Gen.power cs
                      in
                      let cert =
                        Dcn_coflow.Certificate.admission_result ~coflows:cs
                          ~graph:case.Dcn_check.Gen.graph
                          ~power:case.Dcn_check.Gen.power adm
                      in
                      if not cert.Dcn_coflow.Certificate.ok then
                        Printf.eprintf "[fuzz] coflow case %d (%s) %s FAILED: %s\n%!"
                          case.Dcn_check.Gen.index case.Dcn_check.Gen.label
                          adm.Dcn_coflow.Admission.variant
                          (String.concat ", "
                             (List.map Dcn_check.Certify.kind
                                cert.Dcn_coflow.Certificate.violations));
                      (adm, cert)
                    in
                    let results =
                      List.map check
                        [
                          Dcn_coflow.Admission.Baseline;
                          Dcn_coflow.Admission.Energy_aware;
                        ]
                    in
                    if
                      not
                        (List.for_all
                           (fun (_, c) -> c.Dcn_coflow.Certificate.ok)
                           results)
                    then incr coflow_failures;
                    Json.Obj
                      [
                        ("case", Json.Int case.Dcn_check.Gen.index);
                        ("label", Json.Str case.Dcn_check.Gen.label);
                        ( "pareto",
                          Dcn_coflow.Admission.pareto_json (List.map fst results)
                        );
                        ( "ok",
                          Json.Bool
                            (List.for_all
                               (fun (_, c) -> c.Dcn_coflow.Certificate.ok)
                               results) );
                      ])
                  cases
              in
              Printf.printf "fuzz: %d/%d coflow case(s) certified (both variants)\n"
                (coflows - !coflow_failures) coflows;
              [
                ( "coflow",
                  Json.Obj
                    [
                      ("runs", Json.Int coflows);
                      ("seed", Json.Int seed);
                      ("cases", Json.List (Array.to_list rows));
                    ] );
              ]
            end
          in
          resilience_section @ coflow_section
          @ [
            ( "fuzz",
              Json.Obj
                [
                  ("runs", Json.Int runs);
                  ("seed", Json.Int seed);
                  ("batch", Dcn_check.Oracle.batch_to_json reports);
                  ( "shrunk",
                    Json.List
                      (List.rev_map
                         (fun (i, steps, flows, cables) ->
                           Json.Obj
                             [
                               ("case", Json.Int i);
                               ("steps", Json.Int steps);
                               ("flows", Json.Int flows);
                               ("cables", Json.Int cables);
                             ])
                         !shrunk) );
                ] );
          ]);
      if !failures = 0 && !campaign_failures = 0 && !coflow_failures = 0 then
        Ok ()
      else if !failures > 0 then
        Error
          (`Msg
            (Printf.sprintf "fuzz: %d/%d case(s) failed certification" !failures
               runs))
      else if !campaign_failures > 0 then
        Error
          (`Msg
            (Printf.sprintf "fuzz: %d/%d fault repair(s) failed certification"
               !campaign_failures faults))
      else
        Error
          (`Msg
            (Printf.sprintf "fuzz: %d/%d coflow case(s) failed certification"
               !coflow_failures coflows))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the solver family on random instances; failing \
          cases are delta-debugged to minimal counterexamples.  Deterministic \
          for a given --runs/--seed at every --jobs level.")
    Term.(
      term_result
        (const run $ runs_t $ seed_t $ out_t $ no_shrink_t $ faults_t
       $ coflows_t $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* ---------------------------- resilience -------------------------- *)

let resilience_cmd =
  let module Campaign = Dcn_resilience.Campaign in
  let module Repair = Dcn_resilience.Repair in
  let faults_t =
    Arg.(
      value & opt int 50
      & info [ "faults" ] ~doc:"Number of fault scenarios." ~docv:"N")
  in
  let budget_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ]
          ~doc:
            "Wall-clock budget in milliseconds for each scenario's commit \
             solve; expired stages fall down the watchdog chain (exact -> \
             random-schedule -> greedy-ear).  0 deterministically exercises \
             the full fallback path."
          ~docv:"MS")
  in
  let run faults seed policy budget trace report jobs =
    guard @@ fun () ->
    if faults < 1 then Error (`Msg "--faults must be >= 1")
    else
      Result.join
      @@ with_jobs jobs
      @@ fun pool ->
      let campaign = ref None in
      Observe.run ~command:"resilience" ~trace ~report (fun () ->
          let t =
            Campaign.run ~pool ?budget_ms:budget ~policy ~seed ~n:faults ()
          in
          campaign := Some t;
          Array.iter
            (fun (row : Campaign.row) ->
              Printf.printf "%3d  %-44s %-12s %-11s %s\n" row.Campaign.index
                row.Campaign.label
                (Dcn_resilience.Fault.kind row.Campaign.event)
                (Repair.outcome_kind row.Campaign.outcome)
                (match row.Campaign.outcome with
                | Repair.Repaired d | Repair.Degraded d ->
                  Printf.sprintf "salvaged %.2f, dropped %d%s" d.Repair.salvaged
                    (List.length d.Repair.dropped)
                    (if d.Repair.violations = [] then ""
                     else Printf.sprintf ", %d VIOLATION(S)"
                         (List.length d.Repair.violations))
                | Repair.Irreparable { reason; _ } -> reason))
            t.Campaign.rows;
          Printf.printf
            "resilience: %d scenario(s): %d repaired, %d degraded, %d \
             irreparable (policy %s, seed %d)\n"
            faults t.Campaign.repaired t.Campaign.degraded t.Campaign.irreparable
            (Repair.policy_to_string policy)
            seed;
          [ ("resilience", Campaign.to_json t) ]);
      match !campaign with
      | Some t when not (Campaign.ok t) ->
        Error
          (`Msg
            (Printf.sprintf "resilience: %d repair(s) failed certification"
               t.Campaign.uncertified))
      | _ -> Ok ()
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Run a deterministic fault-injection campaign: commit a schedule \
          (under an optional watchdog budget), strike it with a seeded fault \
          (cable cut, capacity degradation, flow burst), repair with graceful \
          degradation, and certify every re-plan.  Bit-identical for a given \
          --faults/--seed at every --jobs level; non-zero exit if any repair \
          fails certification.")
    Term.(
      term_result
        (const run $ faults_t $ seed_t $ policy_t $ budget_t $ Observe.trace_t
       $ Observe.report_t $ jobs_t))

(* --------------------------- serve / replay ----------------------- *)

(* One newline-delimited JSON event per line.  Positioned diagnostics:
   a malformed line is reported with its line number, the byte offset of
   the failure within the line (from Json.parse), and the absolute
   offset in the stream.  --strict stops at the first bad line; the
   default skips it and keeps serving. *)
let serve_stream ?(stop = fun () -> false) ~apply ~strict ~on_outcome ic =
  let line_no = ref 0 and base = ref 0 in
  let parse_errors = ref 0 and fatal = ref None in
  (try
     while !fatal = None && not (stop ()) do
       let line = input_line ic in
       incr line_no;
       let line_base = !base in
       base := !base + String.length line + 1;
       if String.trim line <> "" then
         let bad msg =
           incr parse_errors;
           if strict then fatal := Some msg
           else Printf.eprintf "[serve] skipping event at %s\n%!" msg
         in
         match Json.parse line with
         | Error e ->
           bad
             (Printf.sprintf "line %d, byte %d (stream offset %d): %s" !line_no
                e.Json.offset
                (line_base + e.Json.offset)
                e.Json.message)
         | Ok json -> (
           match Dcn_serve.Event.of_json json with
           | Error m -> bad (Printf.sprintf "line %d: %s" !line_no m)
           | Ok event -> on_outcome ~seq:!line_no event (apply event))
     done
   with End_of_file -> ());
  (!parse_errors, !fatal)

let cap_t =
  Arg.(
    value
    & opt float infinity
    & info [ "cap" ]
        ~doc:
          "Link capacity; arrivals that would push a link beyond it go \
           through the admission policy.  Default: unbounded."
        ~docv:"C")

let strict_t =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Stop at the first malformed event line (default: report the \
           position on stderr and keep going).")

(* Live telemetry surfaces (ROADMAP: observability).  --stats-every N
   emits one snapshot line every N events; --stats FILE sends those
   lines to FILE instead of interleaving with the outcome stream;
   --metrics FILE rewrites a Prometheus text exposition atomically at
   each snapshot.  Any of the three enables the registry; a final
   snapshot always closes the run so short streams still yield data. *)

let stats_every_t =
  Arg.(
    value
    & opt int 0
    & info [ "stats-every" ]
        ~doc:
          "Emit a telemetry snapshot (one $(i,{\"stats\":...}) JSON line) \
           every $(docv) events.  0 emits only the final snapshot (when \
           --stats or --metrics is set)."
        ~docv:"N")

let stats_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ]
        ~doc:
          "Write snapshot lines to $(docv) instead of stdout; flushed per \
           line, so $(b,dcn stats) can tail it live."
        ~docv:"FILE")

let metrics_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:
          "Rewrite $(docv) atomically with the registry's Prometheus text \
           exposition at every snapshot."
        ~docv:"FILE")

(* SIGUSR1 requests an immediate snapshot at the next event boundary;
   guarded because not every platform exposes the signal. *)
let usr1_snapshot = Atomic.make false

let install_usr1 () =
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set usr1_snapshot true))
  with Invalid_argument _ | Sys_error _ -> ()

(* SIGTERM/SIGINT request a graceful drain: the serving loop stops
   taking input at the next event boundary, finishes in-flight events,
   writes a final checkpoint (with --wal) and snapshot, and exits 0 — a
   clean drain is a success, distinct from the guard's error statuses.
   A second signal forces an immediate exit with status 130, skipping
   the final checkpoint.  Guarded like SIGUSR1 for platforms without
   the signals. *)
let drain_requested = Atomic.make false
let drain_since = ref Float.nan

let obs_drain_ms =
  Dcn_obs.Registry.gauge ~help:"graceful drain duration" "serve.drain_ms"

let install_drain () =
  let handle _ =
    if Atomic.exchange drain_requested true then Stdlib.exit 130
    else drain_since := Dcn_engine.Deadline.now ()
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

(* Stamp [serve.drain_ms] once the loop has wound down. *)
let finish_drain () =
  if Atomic.get drain_requested then
    Dcn_obs.Registry.set obs_drain_ms
      (Float.max 0. (1e3 *. (Dcn_engine.Deadline.now () -. !drain_since)))

(* Run [f] with an [after_event] hook that drives the snapshot cadence.
   When no stats surface was requested the hook is [ignore] and the
   registry stays disabled — the serving loop pays one closure call per
   event and {!Dcn_obs.Registry} ops stay one-branch no-ops. *)
let with_stats ~stats_every ~stats_file ~metrics_file f =
  if stats_every <= 0 && stats_file = None && metrics_file = None then
    f ~after_event:ignore
  else begin
    Dcn_obs.Registry.enable ();
    Atomic.set usr1_snapshot false;
    install_usr1 ();
    let oc, close =
      match stats_file with
      | None -> (stdout, ignore)
      | Some path ->
        let oc = open_out path in
        (oc, fun () -> close_out oc)
    in
    let seq = ref 0 in
    let snapshot () =
      incr seq;
      let snap = Dcn_obs.Snapshot.scrape ~seq:!seq () in
      output_string oc (Dcn_obs.Expose.wire_line snap);
      output_char oc '\n';
      flush oc;
      match metrics_file with
      | None -> ()
      | Some path ->
        Dcn_obs.Expose.write_atomic ~path (Dcn_obs.Expose.prometheus snap)
    in
    let events = ref 0 in
    let after_event () =
      incr events;
      if Atomic.exchange usr1_snapshot false then snapshot ()
      else if stats_every > 0 && !events mod stats_every = 0 then snapshot ()
    in
    Fun.protect ~finally:close (fun () ->
        let result = f ~after_event in
        snapshot ();
        result)
  end

let serve_session_result ~command ~strict ~parse_errors ~fatal session =
  match fatal with
  | Some msg -> Error (`Msg (Printf.sprintf "%s: malformed event at %s" command msg))
  | None ->
    if not (Dcn_serve.Session.ok session) then
      Error (`Msg (Printf.sprintf "%s: some committed epochs failed certification" command))
    else if strict && parse_errors > 0 then
      Error (`Msg (Printf.sprintf "%s: %d malformed event line(s)" command parse_errors))
    else Ok ()

let serve_section ~strict ~parse_errors session =
  Json.Obj
    [
      ("strict", Json.Bool strict);
      ("parse_errors", Json.Int parse_errors);
      ("session", Dcn_serve.Session.report session);
    ]

(* ----------------------- durable serve flags ---------------------- *)

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ]
        ~doc:
          "Serve the event protocol on a Unix-domain socket at $(docv) \
           instead of stdin: any number of clients, one JSON event per line \
           in, one JSON reply line per event out, per connection.  Malformed \
           lines earn a positioned error reply; a client disconnecting — \
           even mid-line — never ends the session.  The server runs until \
           SIGTERM/SIGINT."
        ~docv:"PATH")

let wal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ]
        ~doc:
          "Make the session crash-safe: append every accepted event to a \
           write-ahead log in $(docv), fsync'd $(i,before) it is applied, \
           and checkpoint periodically.  On start, recover the previous \
           session from the latest checkpoint plus the WAL tail — \
           bit-identical to an uninterrupted run; torn tails are detected by \
           checksum and truncated, never crashed on."
        ~docv:"DIR")

let checkpoint_every_t =
  Arg.(
    value
    & opt int 50
    & info [ "checkpoint-every" ]
        ~doc:"With --wal: checkpoint the session every $(docv) committed events."
        ~docv:"N")

let queue_t =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ]
        ~doc:
          "Socket mode: pending-event queue capacity; overflow is shed per \
           --shed-policy with a typed reply."
        ~docv:"N")

let shed_policy_conv =
  Arg.conv
    ( (fun s ->
        match Dcn_resilience.Repair.shed_policy_of_string s with
        | Some p -> Ok p
        | None -> Error (`Msg "expected shed-newest | shed-oldest")),
      fun ppf p ->
        Format.pp_print_string ppf
          (Dcn_resilience.Repair.shed_policy_to_string p) )

let shed_policy_t =
  Arg.(
    value
    & opt shed_policy_conv Dcn_resilience.Repair.Shed_newest
    & info [ "shed-policy" ]
        ~doc:
          "Overload-shedding policy when the socket queue is full: \
           $(b,shed-newest) refuses the arriving event, $(b,shed-oldest) \
           evicts the oldest queued one."
        ~docv:"POLICY")

let idle_timeout_t =
  Arg.(
    value
    & opt float 30.
    & info [ "idle-timeout" ]
        ~doc:
          "Socket mode: drop a connection silent for more than $(docv) \
           seconds (0 disables)."
        ~docv:"SECONDS")

let serve_cmd =
  let run graph alpha sigma cap policy seed strict stats_every stats_file
      metrics_file socket wal checkpoint_every queue shed_policy idle_timeout
      trace report jobs =
    guard @@ fun () ->
    Result.join
    @@ with_jobs jobs
    @@ fun pool ->
    with_stats ~stats_every ~stats_file ~metrics_file
    @@ fun ~after_event ->
    let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
    install_drain ();
    (* The session either lives bare in memory or behind a durable
       store; everything downstream goes through [apply_event] so the
       two modes share the outcome path. *)
    let backend =
      match wal with
      | None ->
        `Session (Dcn_serve.Session.create ~pool ~graph ~power ~policy ~seed ())
      | Some dir -> (
        match
          Dcn_durable.Store.open_ ~pool ~dir ~checkpoint_every ~graph ~power
            ~policy ~seed ()
        with
        | Error m -> failwith ("serve: " ^ m)
        | Ok (store, recovery) ->
          if recovery.Dcn_durable.Store.recovered then
            Printf.eprintf "[serve] recovered %s: %s\n%!" dir
              (Json.to_string (Dcn_durable.Store.recovery_to_json recovery));
          `Store (store, recovery))
    in
    let session =
      match backend with
      | `Session s -> s
      | `Store (st, _) -> Dcn_durable.Store.session st
    in
    let apply_event =
      match backend with
      | `Session s -> Dcn_serve.Session.apply s
      | `Store (st, _) -> Dcn_durable.Store.apply st
    in
    let close_backend () =
      match backend with
      | `Session _ -> ()
      | `Store (st, _) -> Dcn_durable.Store.close st
    in
    let recovery_section () =
      match backend with
      | `Session _ -> []
      | `Store (_, r) -> [ ("recovery", Dcn_durable.Store.recovery_to_json r) ]
    in
    let outcome_line ~seq event out =
      Json.Obj
        (("seq", Json.Int seq)
         :: ("uptime_ms", Json.float (Dcn_serve.Session.uptime_ms session))
         :: ("event", Json.Str (Dcn_serve.Event.kind event))
         ::
         (match Dcn_serve.Session.outcome_to_json out with
         | Json.Obj fields -> fields
         | j -> [ ("outcome", j) ]))
    in
    (* [close_backend] writes the final checkpoint — on every clean
       path including drain, but not on a forced (second-signal) exit:
       the WAL alone still recovers the committed state. *)
    Fun.protect ~finally:close_backend @@ fun () ->
    match socket with
    | None ->
      let outcome = ref (0, None) in
      Observe.run ~command:"serve" ~trace ~report (fun () ->
          let on_outcome ~seq event out =
            print_endline (Json.to_string (outcome_line ~seq event out));
            after_event ()
          in
          outcome :=
            serve_stream
              ~stop:(fun () -> Atomic.get drain_requested)
              ~apply:apply_event ~strict ~on_outcome stdin;
          finish_drain ();
          let parse_errors, _ = !outcome in
          [ ("serve", serve_section ~strict ~parse_errors session) ]
          @ recovery_section ());
      let parse_errors, fatal = !outcome in
      serve_session_result ~command:"serve" ~strict ~parse_errors ~fatal
        session
    | Some path ->
      let tstats = ref None in
      (* After a recovery the reply seq must continue the durable
         sequence, not restart from 1 — clients correlate replies with
         WAL/checkpoint state by it. *)
      let initial_seq =
        match backend with
        | `Session _ -> 0
        | `Store (st, _) -> Dcn_durable.Store.seq st
      in
      Observe.run ~command:"serve" ~trace ~report (fun () ->
          let stats =
            Dcn_durable.Transport.serve ~idle_timeout ~queue_capacity:queue
              ~shed_policy ~initial_seq ~socket:path
              ~drain:(fun () -> Atomic.get drain_requested)
              ~apply:(fun ~seq event ->
                let out = apply_event event in
                let line = outcome_line ~seq event out in
                after_event ();
                line)
              ()
          in
          finish_drain ();
          tstats := Some stats;
          [
            ( "serve",
              serve_section ~strict
                ~parse_errors:stats.Dcn_durable.Transport.parse_errors session
            );
            ("transport", Dcn_durable.Transport.stats_to_json stats);
          ]
          @ recovery_section ());
      let parse_errors =
        match !tstats with
        | Some s -> s.Dcn_durable.Transport.parse_errors
        | None -> 0
      in
      serve_session_result ~command:"serve" ~strict ~parse_errors ~fatal:None
        session
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived scheduler session: newline-delimited JSON events \
          (arrival, cancel, advance) on stdin — or on a Unix-domain socket \
          with $(b,--socket), serving any number of clients — one JSON \
          outcome (schedule delta, drops, certification) per event.  \
          Arrivals are admitted under --policy; each event re-solves only \
          the timeline intervals its flow's span overlaps, warm-started from \
          the previous fractional solution; every committed epoch is \
          independently re-certified.  $(b,--wal) makes the session \
          crash-safe (write-ahead log + checkpoints; recovery is \
          bit-identical).  Bit-identical for a given event stream and --seed \
          at every --jobs level (outcome lines carry a wall-clock uptime_ms \
          field, which is the one exception); non-zero exit if any epoch \
          fails certification.  --stats-every/--stats/--metrics stream live \
          telemetry (see $(b,dcn stats)); SIGUSR1 forces a snapshot at the \
          next event; SIGTERM/SIGINT drain gracefully (finish in-flight \
          events, final checkpoint, exit 0 — a second signal forces exit \
          130).")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ cap_t $ policy_t $ seed_t
       $ strict_t $ stats_every_t $ stats_file_t $ metrics_file_t $ socket_t
       $ wal_t $ checkpoint_every_t $ queue_t $ shed_policy_t $ idle_timeout_t
       $ Observe.trace_t $ Observe.report_t $ jobs_t))

let replay_cmd =
  let events_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS"
          ~doc:"An event log: one JSON event per line (see $(b,dcn serve)).")
  in
  let run graph alpha sigma cap policy seed strict stats_every stats_file
      metrics_file events_file trace report jobs =
    guard @@ fun () ->
    Result.join
    @@ with_jobs jobs
    @@ fun pool ->
    with_stats ~stats_every ~stats_file ~metrics_file
    @@ fun ~after_event ->
    let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
    let session =
      Dcn_serve.Session.create ~pool ~graph ~power ~policy ~seed ()
    in
    let outcome = ref (0, None) in
    let committed = ref 0 and degraded = ref 0 and rejected = ref 0 in
    Observe.run ~command:"replay" ~trace ~report (fun () ->
        let on_outcome ~seq event out =
          (match out with
          | Dcn_serve.Session.Committed _ -> incr committed
          | Dcn_serve.Session.Degraded _ -> incr degraded
          | Dcn_serve.Session.Rejected _ -> incr rejected);
          Format.printf "%4d  %-8s %a@." seq
            (Dcn_serve.Event.kind event)
            Dcn_serve.Session.pp_outcome out;
          after_event ()
        in
        let ic = open_in events_file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            outcome :=
              serve_stream
                ~apply:(Dcn_serve.Session.apply session)
                ~strict ~on_outcome ic);
        let parse_errors, _ = !outcome in
        Printf.printf
          "replay: %d committed, %d degraded, %d rejected, %d malformed \
           (policy %s, seed %d)\n"
          !committed !degraded !rejected parse_errors
          (Dcn_resilience.Repair.policy_to_string policy)
          seed;
        [ ("replay", serve_section ~strict ~parse_errors session) ]);
    let parse_errors, fatal = !outcome in
    serve_session_result ~command:"replay" ~strict ~parse_errors ~fatal session
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded event log through a scheduler session offline — \
          same admission, incremental re-solve and per-epoch certification as \
          $(b,dcn serve), with a human-readable outcome per event.  \
          Bit-identical for a given log and --seed at every --jobs level.  \
          --stats-every/--stats/--metrics stream the same live telemetry as \
          $(b,dcn serve).")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ cap_t $ policy_t $ seed_t
       $ strict_t $ stats_every_t $ stats_file_t $ metrics_file_t $ events_t
       $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* ------------------------------ crash ----------------------------- *)

let crash_cmd =
  let events_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS"
          ~doc:"An event log: one JSON event per line (see $(b,dcn serve)).")
  in
  let kills_t =
    Arg.(
      value
      & opt int 25
      & info [ "kills" ]
          ~doc:"Number of crash points to inject (clamped to the log length)."
          ~docv:"N")
  in
  let window_t =
    Arg.(
      value
      & opt int 5
      & info [ "window" ]
          ~doc:
            "Events redelivered after each recovery and compared \
             byte-for-byte to the reference outcome stream."
          ~docv:"N")
  in
  let crash_every_t =
    Arg.(
      value
      & opt int 10
      & info [ "checkpoint-every" ]
          ~doc:"Checkpoint cadence of the durable store under test." ~docv:"N")
  in
  let dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ]
          ~doc:
            "Scratch directory for the campaign's store directories \
             (default: under the system temp dir, keyed by --seed)."
          ~docv:"DIR")
  in
  let run graph alpha sigma cap policy seed kills window checkpoint_every dir
      events_file trace report jobs =
    guard @@ fun () ->
    Result.join
    @@ with_jobs jobs
    @@ fun pool ->
    let module C = Dcn_durable.Crash in
    let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
    let events =
      read_text events_file |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
      |> List.mapi (fun i line ->
             match Json.parse line with
             | Error e ->
               failwith
                 (Printf.sprintf "%s: line %d, byte %d: %s" events_file (i + 1)
                    e.Json.offset e.Json.message)
             | Ok j -> (
               match Dcn_serve.Event.of_json j with
               | Error m ->
                 failwith
                   (Printf.sprintf "%s: line %d: %s" events_file (i + 1) m)
               | Ok e -> e))
    in
    let dir =
      match dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "dcn-crash-%d" seed)
    in
    let result = ref None in
    Observe.run ~command:"crash" ~trace ~report (fun () ->
        let c =
          C.run ~pool ~window ~checkpoint_every ~dir ~graph ~power ~policy
            ~seed ~kills events
        in
        result := Some c;
        List.iter (fun r -> Format.printf "%a@." C.pp_row r) c.C.rows;
        let survived =
          List.length (List.filter (fun (r : C.row) -> r.C.ok) c.C.rows)
        in
        Printf.printf
          "crash: %d/%d kills recovered bit-identical and re-certified over \
           %d events (seed %d, checkpoint every %d, window %d)\n"
          survived c.C.kills c.C.events seed c.C.checkpoint_every c.C.window;
        [ ("crash", C.to_json c) ]);
    match !result with
    | Some c when not c.C.ok ->
      Error (`Msg "crash: some kills failed to recover bit-identically")
    | _ -> Ok ()
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Crash-injection campaign against the durable serving store: replay \
          $(i,EVENTS) through a write-ahead-logged session, kill it at \
          --kills seeded event boundaries (some with torn or bit-flipped WAL \
          tails), recover each from checkpoint + log tail, and verify the \
          recovered state is bit-identical to an uninterrupted run, the \
          recovered schedule re-certifies clean, and redelivered events \
          produce byte-identical outcomes.  Deterministic for a given log, \
          --seed and flags, at every --jobs level; non-zero exit if any kill \
          fails.")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ cap_t $ policy_t $ seed_t
       $ kills_t $ window_t $ crash_every_t $ dir_t $ events_t
       $ Observe.trace_t $ Observe.report_t $ jobs_t))

(* ------------------------------ coflow ---------------------------- *)

let coflow_count_t =
  Arg.(
    value
    & opt int 6
    & info [ "coflows" ]
        ~doc:"Number of coflow jobs in the generated shuffle trace." ~docv:"N")

let coflow_variant_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "variant" ]
        ~doc:
          "Run only $(docv): $(b,sigma-greedy) (the DCoflow-style baseline) \
           or $(b,sigma-energy) (Relaxation + randomised rounding over the \
           admitted set).  Default: both, for the completion/energy Pareto \
           comparison."
        ~docv:"V")

let coflow_variants = function
  | None ->
    [ Dcn_coflow.Admission.Baseline; Dcn_coflow.Admission.Energy_aware ]
  | Some s -> (
    match Dcn_coflow.Admission.variant_of_string s with
    | Ok v -> [ v ]
    | Error m -> failwith m)

(* The seeded shuffle-heavy trace every coflow subcommand shares: a pure
   function of (topology, seed, count), so solve/report runs on the same
   arguments see the same workload. *)
let coflow_trace ~graph ~seed ~count =
  let rng = Dcn_util.Prng.create seed in
  Dcn_coflow.Coflow.shuffle_trace ~rng ~graph ~jobs:count ~horizon:(0., 10.) ()

let coflow_run_variants ~pool ~graph ~power ~seed ~variants cs =
  List.map
    (fun variant ->
      let adm = Dcn_coflow.Admission.run ~seed ~pool ~variant ~graph ~power cs in
      let cert =
        Dcn_coflow.Certificate.admission_result ~coflows:cs ~graph ~power adm
      in
      (adm, cert))
    variants

let render_admission (adm : Dcn_coflow.Admission.t)
    (cert : Dcn_coflow.Certificate.report) =
  Printf.printf
    "%-12s  admitted %d/%d (completion %.0f%%), energy %.4f, certificate %s\n"
    adm.Dcn_coflow.Admission.variant
    (List.length adm.Dcn_coflow.Admission.admitted)
    (List.length adm.Dcn_coflow.Admission.order)
    (100. *. adm.Dcn_coflow.Admission.completion_rate)
    adm.Dcn_coflow.Admission.energy
    (if cert.Dcn_coflow.Certificate.ok then "OK"
     else
       Printf.sprintf "%d VIOLATION(S)"
         (List.length cert.Dcn_coflow.Certificate.violations));
  List.iter
    (fun ((c : Dcn_coflow.Coflow.t), reason) ->
      Printf.printf "              rejected coflow %d (%s): %s\n"
        c.Dcn_coflow.Coflow.id c.Dcn_coflow.Coflow.label reason)
    adm.Dcn_coflow.Admission.rejected

let coflow_result_json (adm, cert) =
  Json.Obj
    [
      ("admission", Dcn_coflow.Admission.to_json adm);
      ("certificate", Dcn_coflow.Certificate.to_json cert);
    ]

let certs_ok results =
  List.for_all (fun (_, c) -> c.Dcn_coflow.Certificate.ok) results

let coflow_solve_cmd =
  let dump_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ]
          ~doc:
            "Write the full-workload instance, the membership file and one \
             schedule per variant under $(docv) — the inputs of $(b,dcn \
             certify --partial --coflows)."
          ~docv:"DIR")
  in
  let run graph alpha sigma cap count variant dump seed trace report jobs =
    guard @@ fun () ->
    if count < 1 then Error (`Msg "--coflows must be >= 1")
    else
      Result.join
      @@ with_jobs jobs
      @@ fun pool ->
      let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
      let failed = ref false in
      Observe.run ~command:"coflow-solve" ~trace ~report (fun () ->
          let cs = coflow_trace ~graph ~seed ~count in
          List.iter
            (fun c -> Format.printf "%a@." Dcn_coflow.Coflow.pp c)
            cs;
          let results =
            coflow_run_variants ~pool ~graph ~power ~seed
              ~variants:(coflow_variants variant) cs
          in
          List.iter (fun (adm, cert) -> render_admission adm cert) results;
          failed := not (certs_ok results);
          (match dump with
          | None -> ()
          | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let write name text =
              let path = Filename.concat dir name in
              Observe.write_file path text;
              Printf.eprintf "wrote %s\n%!" path
            in
            let inst =
              Dcn_core.Instance.make ~graph ~power
                ~flows:(Dcn_coflow.Coflow.flatten cs)
            in
            write "coflow.instance" (Dcn_core.Serialize.instance_to_string inst);
            write "coflow.members.json"
              (Json.to_string ~pretty:true
                 (Dcn_coflow.Coflow.members_to_json cs));
            List.iter
              (fun ((adm : Dcn_coflow.Admission.t), _) ->
                match adm.Dcn_coflow.Admission.solution with
                | None -> ()
                | Some sol ->
                  write
                    (Printf.sprintf "coflow.%s.schedule"
                       adm.Dcn_coflow.Admission.variant)
                    (Dcn_core.Serialize.schedule_to_string
                       sol.Dcn_core.Solution.schedule))
              results);
          [
            ( "coflow",
              Json.Obj
                [
                  ("coflows", Json.Int count);
                  ("seed", Json.Int seed);
                  ( "trace",
                    Json.List (List.map Dcn_coflow.Coflow.to_json cs) );
                  ("results", Json.List (List.map coflow_result_json results));
                  ( "pareto",
                    Dcn_coflow.Admission.pareto_json (List.map fst results) );
                ] );
          ]);
      if !failed then
        Error (`Msg "coflow solve: some admitted sets failed certification")
      else Ok ()
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Generate a seeded shuffle/incast coflow trace and run sigma-order \
          all-or-nothing admission on it — the DCoflow-style baseline \
          (greedy-ear) and the energy-aware variant (Relaxation + randomised \
          rounding) — reporting coflow completion rate and Eq. (5) energy \
          for each, with every admitted set's conjunction certificate \
          re-verified.  Deterministic for a given --seed at every --jobs \
          level; non-zero exit on any violation.")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ cap_t $ coflow_count_t
       $ coflow_variant_t $ dump_t $ seed_t $ Observe.trace_t
       $ Observe.report_t $ jobs_t))

let coflow_replay_cmd =
  let events_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS"
          ~doc:
            "An event log: one JSON event per line, including coflow \
             arrivals/cancels (see $(b,dcn serve)).")
  in
  let run graph alpha sigma cap policy seed strict events_file trace report
      jobs =
    guard @@ fun () ->
    Result.join
    @@ with_jobs jobs
    @@ fun pool ->
    let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
    let session =
      Dcn_serve.Session.create ~pool ~graph ~power ~policy ~seed ()
    in
    let outcome = ref (0, None) in
    Observe.run ~command:"coflow-replay" ~trace ~report (fun () ->
        let on_outcome ~seq event out =
          Format.printf "%4d  %-13s %a@." seq
            (Dcn_serve.Event.kind event)
            Dcn_serve.Session.pp_outcome out
        in
        let ic = open_in events_file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            outcome :=
              serve_stream
                ~apply:(Dcn_serve.Session.apply session)
                ~strict ~on_outcome ic);
        let parse_errors, _ = !outcome in
        let report_json = Dcn_serve.Session.report session in
        let live = Dcn_serve.Session.active_coflows session in
        Printf.printf
          "coflow replay: %d admitted, %d rejected, %d live coflow(s), %d \
           malformed (policy %s, seed %d)\n"
          (match Json.member "coflows_admitted" report_json with
          | Some (Json.Int n) -> n
          | _ -> 0)
          (match Json.member "coflows_rejected" report_json with
          | Some (Json.Int n) -> n
          | _ -> 0)
          (List.length live) parse_errors
          (Dcn_resilience.Repair.policy_to_string policy)
          seed;
        (* All-or-nothing consistency of the live schedule, re-checked
           from the raw plans against the session's membership table. *)
        (match Dcn_serve.Session.schedule session with
        | Some sched ->
          let violations =
            Dcn_check.Certify.coflow_consistency ~members:live sched
          in
          List.iter
            (fun v ->
              Format.printf "violation: %a@." Dcn_check.Certify.pp_violation v)
            violations
        | None -> ());
        [ ("coflow-replay", serve_section ~strict ~parse_errors session) ]);
    let parse_errors, fatal = !outcome in
    serve_session_result ~command:"coflow-replay" ~strict ~parse_errors ~fatal
      session
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay an event log with coflow arrivals through a scheduler \
          session: groups admit all-or-nothing (one epoch commits every \
          member or the coflow is rejected), shedding takes whole coflows, \
          and the final schedule's admission consistency is re-checked.  \
          Bit-identical for a given log and --seed at every --jobs level.")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ cap_t $ policy_t $ seed_t
       $ strict_t $ events_t $ Observe.trace_t $ Observe.report_t $ jobs_t))

let coflow_report_cmd =
  let caps_t =
    Arg.(
      value
      & opt (list float) [ infinity ]
      & info [ "caps" ]
          ~doc:
            "Comma-separated link capacities to sweep; each level runs both \
             variants on the same trace, tracing the completion-rate / \
             energy Pareto frontier as capacity tightens."
          ~docv:"C1,C2,..")
  in
  let run graph alpha sigma caps count seed trace report jobs =
    guard @@ fun () ->
    if count < 1 then Error (`Msg "--coflows must be >= 1")
    else if caps = [] then Error (`Msg "--caps must not be empty")
    else
      Result.join
      @@ with_jobs jobs
      @@ fun pool ->
      let failed = ref false in
      Observe.run ~command:"coflow-report" ~trace ~report (fun () ->
          let cs = coflow_trace ~graph ~seed ~count in
          Printf.printf "%-10s %-12s %10s %12s %9s\n" "cap" "variant"
            "admitted" "completion" "energy";
          let sections =
            List.map
              (fun cap ->
                let power = Dcn_power.Model.make ~sigma ~mu:1. ~alpha ~cap () in
                let results =
                  coflow_run_variants ~pool ~graph ~power ~seed
                    ~variants:(coflow_variants None) cs
                in
                if not (certs_ok results) then failed := true;
                List.iter
                  (fun ((adm : Dcn_coflow.Admission.t), _) ->
                    Printf.printf "%-10s %-12s %6d/%-3d %11.0f%% %9.3f\n"
                      (if Float.is_finite cap then Printf.sprintf "%g" cap
                       else "inf")
                      adm.Dcn_coflow.Admission.variant
                      (List.length adm.Dcn_coflow.Admission.admitted)
                      (List.length adm.Dcn_coflow.Admission.order)
                      (100. *. adm.Dcn_coflow.Admission.completion_rate)
                      adm.Dcn_coflow.Admission.energy)
                  results;
                Json.Obj
                  [
                    ("cap", Json.float cap);
                    ( "pareto",
                      Dcn_coflow.Admission.pareto_json (List.map fst results) );
                  ])
              caps
          in
          [
            ( "coflow",
              Json.Obj
                [
                  ("coflows", Json.Int count);
                  ("seed", Json.Int seed);
                  ("sweep", Json.List sections);
                ] );
          ]);
      if !failed then
        Error (`Msg "coflow report: some admitted sets failed certification")
      else Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Sweep link capacity over a seeded coflow trace and report the \
          completion-rate / energy Pareto frontier of both admission \
          variants; every admitted set is certificate-checked.  \
          Deterministic at every --jobs level.")
    Term.(
      term_result
        (const run $ topo_t $ alpha_t $ sigma_t $ caps_t $ coflow_count_t
       $ seed_t $ Observe.trace_t $ Observe.report_t $ jobs_t))

let coflow_cmd =
  Cmd.group
    (Cmd.info "coflow"
       ~doc:
         "Coflow workloads: groups of flows under one collective deadline, \
          admitted all-or-nothing (solve, replay, report).")
    [ coflow_solve_cmd; coflow_replay_cmd; coflow_report_cmd ]

let stats_cmd =
  let file_t =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:
            "A snapshot stream: the stdout of $(b,dcn serve --stats-every) \
             or its --stats file.  $(b,-) reads stdin (the default), so \
             $(b,dcn serve ... | dcn stats) renders live.")
  in
  let top_t =
    Arg.(
      value
      & opt int 0
      & info [ "top" ]
          ~doc:"Show only the first $(docv) metrics by name (0 = all)."
          ~docv:"N")
  in
  let last_t =
    Arg.(
      value & flag
      & info [ "last" ] ~doc:"Render only the final snapshot of the stream.")
  in
  let run file top last strict =
    guard @@ fun () ->
    let render snap =
      print_string (Dcn_obs.Expose.render_table ~top snap);
      print_newline ()
    in
    (* Same line discipline as `dcn serve` reading events: malformed
       stats lines are skipped with a position on stderr, --strict stops
       at the first one.  Lines that are valid JSON but not stats lines
       (interleaved per-event outcomes) are passed over silently. *)
    let process ic =
      let line_no = ref 0 and seen = ref 0 and fatal = ref None in
      let last_snap = ref None in
      (try
         while !fatal = None do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then
             let bad msg =
               if strict then fatal := Some msg
               else Printf.eprintf "[stats] skipping %s\n%!" msg
             in
             match Json.parse line with
             | Error e ->
               bad
                 (Printf.sprintf "line %d, byte %d: %s" !line_no e.Json.offset
                    e.Json.message)
             | Ok (Json.Obj fields) when List.mem_assoc "stats" fields -> (
               match Dcn_obs.Snapshot.of_json (Json.Obj fields) with
               | Error m -> bad (Printf.sprintf "line %d: %s" !line_no m)
               | Ok snap ->
                 incr seen;
                 if last then last_snap := Some snap else render snap)
             | Ok _ -> ()
         done
       with End_of_file -> ());
      (match !last_snap with Some snap -> render snap | None -> ());
      (!seen, !fatal)
    in
    let seen, fatal =
      if file = "-" then process stdin
      else
        let ic = open_in file in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> process ic)
    in
    match fatal with
    | Some msg ->
      Error (`Msg (Printf.sprintf "stats: malformed snapshot at %s" msg))
    | None ->
      if seen = 0 then Error (`Msg "stats: no snapshot lines in the stream")
      else Ok ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Render a telemetry snapshot stream (from $(b,dcn serve \
          --stats-every) or $(b,dcn replay)) as aligned tables: the SLO \
          indicators — apply-latency quantiles, admission outcome rates, \
          interval reuse, deadline slack, energy against the fractional \
          lower bound — then the raw metrics.  Interleaved per-event \
          outcome lines are skipped; --strict fails at the first malformed \
          snapshot line.")
    Term.(term_result (const run $ file_t $ top_t $ last_t $ strict_t))

let () =
  (* DCN_SELFCHECK=1 makes every solver certify its own output. *)
  Dcn_check.Certify.selfcheck_from_env ();
  let doc = "energy-efficient deadline-constrained flow scheduling and routing" in
  let info = Cmd.info "dcn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd;
            gadgets_cmd;
            ablation_cmd;
            small_exact_cmd;
            example1_cmd;
            generate_cmd;
            solve_cmd;
            trace_cmd;
            certify_cmd;
            fuzz_cmd;
            resilience_cmd;
            serve_cmd;
            replay_cmd;
            crash_cmd;
            coflow_cmd;
            stats_cmd;
          ]))
