(* Observability plumbing shared by every `dcn` subcommand: the
   --trace/--report options, and a wrapper that installs an ambient
   {!Dcn_engine.Trace} around the command body and writes both files on
   the way out.

   The command body returns the report's sections (a [Json.field list]);
   the wrapper prepends the command name and appends the engine's
   {!Dcn_engine.Metrics} snapshot and the trace's counter totals, so
   every report has the same envelope:

   {v
   { "command": "...", <sections>, "metrics": [...], "counters": {...} }
   v} *)

open Cmdliner
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json
module Metrics = Dcn_engine.Metrics

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Write a structured event trace (spans, events, counters; JSON) to \
           $(docv)."
        ~docv:"FILE")

let report_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ]
        ~doc:"Write a machine-readable run report (JSON) to $(docv)."
        ~docv:"FILE")

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text);
  Printf.eprintf "wrote %s\n%!" path

(* Counter totals, one object keyed by counter name. *)
let counters_json t =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.entry with
      | Trace.Counter { name; delta } ->
        Hashtbl.replace totals name
          (delta +. Option.value ~default:0. (Hashtbl.find_opt totals name))
      | _ -> ())
    (Trace.records t);
  Json.Obj
    (List.sort compare
       (Hashtbl.fold (fun name v acc -> (name, Json.float v) :: acc) totals []))

let run ~command ~trace ~report f =
  match (trace, report) with
  | None, None -> ignore (f ())
  | _ ->
    let t = Trace.create () in
    Trace.install t;
    let sections = Fun.protect ~finally:Trace.uninstall f in
    (match trace with
    | Some path -> write_file path (Json.to_string ~pretty:true (Trace.to_json t))
    | None -> ());
    (match report with
    | Some path ->
      let json =
        Json.Obj
          ((("command", Json.Str command) :: sections)
          @ [ ("metrics", Metrics.to_json ()); ("counters", counters_json t) ])
      in
      write_file path (Json.to_string ~pretty:true json)
    | None -> ())
