(* Observability plumbing shared by every `dcn` subcommand: the
   --trace/--report options, and a wrapper that installs an ambient
   {!Dcn_engine.Trace} around the command body and writes both files on
   the way out.

   The command body returns the report's sections (a [Json.field list]);
   the wrapper prepends the command name and appends the stage
   wall-time snapshot ({!Dcn_obs.Stage}) and the trace's counter
   totals, so every report has the same envelope:

   {v
   { "command": "...", <sections>, "metrics": [...], "counters": {...} }
   v}

   Counter accounting is unified in the metrics registry: the wrapper
   enables {!Dcn_obs.Registry}, stage timings are registry counters,
   and every [Trace.counter] emission feeds the registry through the
   counter hook.  The envelope's ["counters"] object still reads
   {!Trace.counters} — the trace is the record of {e this} command's
   emissions, and its totals are deterministic where the registry also
   carries wall-time metrics. *)

open Cmdliner
module Trace = Dcn_engine.Trace
module Json = Dcn_engine.Json
module Stage = Dcn_obs.Stage

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Write a structured event trace (spans, events, counters; JSON) to \
           $(docv)."
        ~docv:"FILE")

let report_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ]
        ~doc:"Write a machine-readable run report (JSON) to $(docv)."
        ~docv:"FILE")

(* Atomic, so an interrupted run never leaves a truncated JSON for
   `dcn trace` or the bench gate to choke on. *)
let write_file path text =
  Dcn_util.Atomic_file.write ~path text;
  Printf.eprintf "wrote %s\n%!" path

(* Counter totals, one object keyed by counter name. *)
let counters_json t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.float v)) (Trace.counters t))

let run ~command ~trace ~report f =
  match (trace, report) with
  | None, None -> ignore (f ())
  | _ ->
    (* Stage metrics for the report come from the registry; idempotent
       if the subcommand (e.g. serve --stats-every) enabled it already. *)
    Dcn_obs.Registry.enable ();
    let t = Trace.create () in
    Trace.install t;
    let sections = Fun.protect ~finally:Trace.uninstall f in
    (match trace with
    | Some path -> write_file path (Json.to_string ~pretty:true (Trace.to_json t))
    | None -> ());
    (match report with
    | Some path ->
      let json =
        Json.Obj
          ((("command", Json.Str command) :: sections)
          @ [ ("metrics", Stage.to_json ()); ("counters", counters_json t) ])
      in
      write_file path (Json.to_string ~pretty:true json)
    | None -> ())
